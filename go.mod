module github.com/haechi-qos/haechi

go 1.22
