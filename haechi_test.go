package haechi

import (
	"strings"
	"testing"
)

// fastConfig keeps public-API tests quick: 1/100 capacity.
func fastConfig(mode Mode) Config {
	return Config{
		Mode:           mode,
		Scale:          100,
		WarmupPeriods:  1,
		MeasurePeriods: 3,
		Records:        256,
		Seed:           3,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(fastConfig(ModeHaechi), nil); err == nil {
		t.Error("no tenants accepted")
	}
	if _, err := New(Config{Mode: "bogus"}, []Tenant{{Reservation: 1}}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := New(fastConfig(ModeHaechi), []Tenant{{Reservation: -1}}); err == nil {
		t.Error("negative reservation accepted")
	}
	if _, err := New(fastConfig(ModeHaechi), []Tenant{{Reservation: 1 << 40}}); err == nil {
		t.Error("admission violation not surfaced")
	}
	if _, err := New(fastConfig(ModeHaechi), []Tenant{{Pattern: "warp"}}); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := New(fastConfig(ModeHaechi), []Tenant{{Pattern: PatternBurst}}); err == nil {
		t.Error("saturating demand with post-all burst accepted")
	}
	if _, err := New(fastConfig(ModeHaechi), []Tenant{{Pattern: PatternConstantRate}}); err == nil {
		t.Error("saturating demand with constant-rate accepted")
	}
	if _, err := New(fastConfig(ModeHaechi), []Tenant{{DemandPerPeriod: 10, KeyDistribution: "bogus"}}); err == nil {
		t.Error("unknown key distribution accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	cap := DefaultCapacity(100)
	gold := int64(0.2 * cap.AggregateOneSided) // within C_L (= 25.5% of C_G)
	silver := int64(0.1 * cap.AggregateOneSided)
	sys, err := New(fastConfig(ModeHaechi), []Tenant{
		{Name: "gold", Reservation: gold, DemandPerPeriod: uint64(gold) + 2000},
		{Name: "silver", Reservation: silver, DemandPerPeriod: uint64(silver) + 2000},
		{Reservation: 0, DemandPerPeriod: 3000}, // best-effort tenant, auto-named
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 3 {
		t.Fatalf("tenants = %d", len(rep.Tenants))
	}
	if rep.Tenants[0].Name != "gold" || rep.Tenants[2].Name != "tenant-3" {
		t.Errorf("names = %v, %v", rep.Tenants[0].Name, rep.Tenants[2].Name)
	}
	for _, tn := range rep.Tenants[:2] {
		if !tn.MetReservation {
			t.Errorf("%s missed reservation: min %d < %d", tn.Name, tn.MinPeriod, tn.Reservation)
		}
		if tn.Latency.P99 <= 0 {
			t.Errorf("%s: no latency recorded", tn.Name)
		}
	}
	if rep.EstimatedCapacity <= 0 {
		t.Error("no capacity estimate in QoS mode")
	}
	if rep.QoSOverheadFraction <= 0 || rep.QoSOverheadFraction > 0.05 {
		t.Errorf("overhead fraction = %v", rep.QoSOverheadFraction)
	}
	s := rep.String()
	if !strings.Contains(s, "gold") || !strings.Contains(s, "reservation met") {
		t.Errorf("report rendering: %q", s)
	}
	// Run consumes the system.
	if _, err := sys.Run(); err == nil {
		t.Error("second Run accepted")
	}
}

func TestBareModeNoQoS(t *testing.T) {
	sys, err := New(fastConfig(ModeBare), []Tenant{
		{Name: "a"}, {Name: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.EstimatedCapacity != 0 {
		t.Error("bare mode has a capacity estimate")
	}
	// Two saturating tenants split ~C_G at this scale.
	if rep.ThroughputPerPeriod < 7000 {
		t.Errorf("bare throughput %.0f too low", rep.ThroughputPerPeriod)
	}
}

func TestBasicModeWastesTokens(t *testing.T) {
	build := func(mode Mode) float64 {
		res := int64(1413)
		tenants := make([]Tenant, 10)
		for i := range tenants {
			d := uint64(res) + 1570
			if i < 2 {
				d = uint64(res) / 2
			}
			tenants[i] = Tenant{Reservation: res, DemandPerPeriod: d}
		}
		sys, err := New(fastConfig(mode), tenants)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.ThroughputPerPeriod
	}
	full := build(ModeHaechi)
	basic := build(ModeBasic)
	if full <= basic*1.02 {
		t.Errorf("conversion gain missing: haechi %.0f vs basic %.0f", full, basic)
	}
}

func TestLimitsInPublicAPI(t *testing.T) {
	sys, err := New(fastConfig(ModeHaechi), []Tenant{
		{Name: "capped", Reservation: 1000, Limit: 1500, DemandPerPeriod: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for p, n := range rep.Tenants[0].PerPeriod {
		if n > 1500+64 {
			t.Errorf("period %d: %d exceeds limit", p, n)
		}
	}
}

func TestScheduleCongestion(t *testing.T) {
	cfg := fastConfig(ModeHaechi)
	cfg.MeasurePeriods = 8
	tenants := make([]Tenant, 10)
	for i := range tenants {
		tenants[i] = Tenant{Reservation: 1100, DemandPerPeriod: 2700}
	}
	sys, err := New(cfg, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ScheduleCongestion(4, 0, 3, 64); err != nil {
		t.Fatal(err)
	}
	if err := sys.ScheduleCongestion(0, 0, 0, 64); err == nil {
		t.Error("zero jobs accepted")
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	var before, after float64
	for _, tn := range rep.Tenants {
		for p := 0; p < 3; p++ {
			before += float64(tn.PerPeriod[p])
		}
		for p := 5; p < 8; p++ {
			after += float64(tn.PerPeriod[p])
		}
	}
	if after >= before {
		t.Errorf("congestion had no effect: before=%.0f after=%.0f", before, after)
	}
	if err := sys.ScheduleCongestion(1, 0, 1, 64); err == nil {
		t.Error("ScheduleCongestion after Run accepted")
	}
}

func TestPatternsAndKeyDistributions(t *testing.T) {
	for _, p := range []Pattern{PatternBurst, PatternBurst64, PatternConstantRate} {
		for _, kd := range []string{"", "uniform", "zipfian", "latest", "sequential"} {
			sys, err := New(fastConfig(ModeHaechi), []Tenant{
				{Reservation: 2000, DemandPerPeriod: 2500, Pattern: p, KeyDistribution: kd},
			})
			if err != nil {
				t.Fatalf("pattern %q keys %q: %v", p, kd, err)
			}
			rep, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Tenants[0].Total == 0 {
				t.Errorf("pattern %q keys %q: no completions", p, kd)
			}
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := DefaultCapacity(1)
	if c.AggregateOneSided != 1570e3 || c.PerClientOneSided != 400e3 || c.AggregateTwoSided != 430e3 {
		t.Errorf("full-scale capacities wrong: %+v", c)
	}
	d := DefaultCapacity(0) // defaults to 10
	if d.AggregateOneSided != 157e3 {
		t.Errorf("default-scale capacity wrong: %+v", d)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (Config{}).withDefaults()
	if c.Mode != ModeHaechi || c.Scale != 10 || c.WarmupPeriods != 2 || c.MeasurePeriods != 5 || c.Records != 4096 || c.Seed != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestPublicTracing(t *testing.T) {
	cfg := fastConfig(ModeHaechi)
	cfg.TraceEvents = 2048
	sys, err := New(cfg, []Tenant{
		{Name: "a", Reservation: 2000, DemandPerPeriod: 4000},
		{Name: "b", Reservation: 2000, DemandPerPeriod: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.TraceSummary() != "trace: empty" {
		t.Errorf("pre-run summary = %q", sys.TraceSummary())
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	sum := sys.TraceSummary()
	for _, want := range []string{"period-start", "token-push", "claim", "yield"} {
		if !strings.Contains(sum, want) {
			t.Errorf("trace summary missing %q: %s", want, sum)
		}
	}
	var b strings.Builder
	if err := sys.DumpTrace(&b); err != nil {
		t.Fatal(err)
	}
	if len(b.String()) == 0 {
		t.Error("empty trace dump")
	}
}

func TestTracingRequiresQoS(t *testing.T) {
	cfg := fastConfig(ModeBare)
	cfg.TraceEvents = 128
	if _, err := New(cfg, []Tenant{{}}); err == nil {
		t.Error("bare-mode tracing accepted")
	}
	// DumpTrace without tracing is a no-op.
	sys, err := New(fastConfig(ModeBare), []Tenant{{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.DumpTrace(nil); err != nil {
		t.Errorf("no-op DumpTrace errored: %v", err)
	}
}

func TestUpdateFractionValidation(t *testing.T) {
	if _, err := New(fastConfig(ModeHaechi), []Tenant{{DemandPerPeriod: 10, UpdateFraction: 1.5}}); err == nil {
		t.Error("update fraction > 1 accepted")
	}
	if _, err := New(fastConfig(ModeHaechi), []Tenant{{DemandPerPeriod: 10, UpdateFraction: -0.1}}); err == nil {
		t.Error("negative update fraction accepted")
	}
	sys, err := New(fastConfig(ModeHaechi), []Tenant{
		{Reservation: 2000, DemandPerPeriod: 2500, UpdateFraction: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tenants[0].MetReservation {
		t.Error("reservation missed with update mix")
	}
}
