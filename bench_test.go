package haechi

// One benchmark per table and figure of the paper's evaluation (Section
// III). Each bench regenerates its artifact through the experiments
// harness at a reduced scale and reports the headline quantity as a
// custom metric in full-scale-equivalent units, so `go test -bench=.`
// doubles as a quick reproduction sweep. cmd/haechibench prints the full
// rows; EXPERIMENTS.md records paper-vs-measured values.

import (
	"strconv"
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/experiments"
)

// benchOptions are sized so each figure regenerates in roughly a second.
func benchOptions(b *testing.B) experiments.Options {
	b.Helper()
	return experiments.Options{
		Scale:          50,
		WarmupPeriods:  1,
		MeasurePeriods: 3,
		Clients:        10,
		Records:        1024,
		Seed:           42,
	}
}

// cell parses a report cell like "1.57M", "400K", "93%" or "830".
func cell(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSpace(s)
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1e3, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "%"):
		s = strings.TrimSuffix(s, "%")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("unparseable cell %q", s)
	}
	return v * mult
}

func runExperiment(b *testing.B, id string) *experiments.Report {
	b.Helper()
	rep, err := experiments.Run(id, benchOptions(b))
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkTableI_Config regenerates the testbed-configuration table.
func BenchmarkTableI_Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = runExperiment(b, "config")
	}
}

// BenchmarkFig6_ClientSaturation measures per-client saturation
// throughput, 1- vs 2-sided (Experiment 1A).
func BenchmarkFig6_ClientSaturation(b *testing.B) {
	var one, two float64
	for i := 0; i < b.N; i++ {
		o := benchOptions(b)
		o.Clients = 2 // two single-client runs suffice for the metric
		rep, err := experiments.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		one = cell(b, rep.Tables[0].Rows[0][1])
		two = cell(b, rep.Tables[0].Rows[0][2])
	}
	b.ReportMetric(one/1000, "oneSidedKIOPS")
	b.ReportMetric(two/1000, "twoSidedKIOPS")
}

// BenchmarkFig7_SystemScaling measures data-node throughput vs client
// count (Experiment 1B).
func BenchmarkFig7_SystemScaling(b *testing.B) {
	var sat float64
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig7")
		rows := rep.Tables[0].Rows
		sat = cell(b, rows[len(rows)-1][1])
	}
	b.ReportMetric(sat/1000, "saturatedKIOPS")
}

// BenchmarkFig8_DemandPatterns regenerates the three demand/pattern
// panels (Experiment 1C) and reports the spike-burst throughput drop.
func BenchmarkFig8_DemandPatterns(b *testing.B) {
	var uniform, spikeBurst float64
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig8")
		uniform = cell(b, rep.Tables[0].Rows[len(rep.Tables[0].Rows)-1][2])
		spikeBurst = cell(b, rep.Tables[1].Rows[len(rep.Tables[1].Rows)-1][2])
	}
	b.ReportMetric(100*(1-spikeBurst/uniform), "spikeBurstDropPct")
}

// BenchmarkFig9_HaechiQoS regenerates Haechi-vs-bare under both
// reservation distributions (Experiment 2A).
func BenchmarkFig9_HaechiQoS(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig9")
		// The uniform table's total row carries the throughput loss.
		last := rep.Tables[0].Rows[len(rep.Tables[0].Rows)-1]
		loss = cell(b, strings.TrimSuffix(strings.TrimPrefix(last[4], "loss "), "%"))
	}
	b.ReportMetric(loss, "qosLossPct")
}

// BenchmarkFig10_TokenConversion regenerates the insufficient-demand
// comparison (Experiment 2B) and reports the conversion gain.
func BenchmarkFig10_TokenConversion(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig10")
		basic := cell(b, rep.Tables[1].Rows[0][1])
		haechi := cell(b, rep.Tables[1].Rows[1][1])
		gain = 100 * (haechi/basic - 1)
	}
	b.ReportMetric(gain, "conversionGainPct")
}

// BenchmarkFig11_Throughput reports the three-system totals of Fig. 11.
func BenchmarkFig11_Throughput(b *testing.B) {
	var haechi, bare float64
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig10")
		haechi = cell(b, rep.Tables[1].Rows[1][1])
		bare = cell(b, rep.Tables[1].Rows[2][1])
	}
	b.ReportMetric(haechi/1000, "haechiKIOPS")
	b.ReportMetric(bare/1000, "bareKIOPS")
}

// BenchmarkFig12_ReservedSweep sweeps the reserved fraction (Experiment
// 2C) and reports the zipf 90%-reserved dip.
func BenchmarkFig12_ReservedSweep(b *testing.B) {
	var z50, z90 float64
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig12")
		rows := rep.Tables[0].Rows
		z50 = cell(b, rows[0][2])
		z90 = cell(b, rows[len(rows)-1][2])
	}
	b.ReportMetric(100*(1-z90/z50), "zipfDipPct")
}

// BenchmarkFig13to15_RequestPatterns regenerates Set 3 (Figs. 13-15) and
// reports the burst-vs-constant-rate throughput drop.
func BenchmarkFig13to15_RequestPatterns(b *testing.B) {
	var burst, constRate float64
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig13")
		burst = cell(b, rep.Tables[1].Rows[0][1])
		constRate = cell(b, rep.Tables[1].Rows[1][1])
	}
	b.ReportMetric(burst/1000, "burstKIOPS")
	b.ReportMetric(constRate/1000, "constantRateKIOPS")
}

// BenchmarkFig16_17_Overestimate regenerates the congestion-onset
// adaptation timelines (Figs. 16-17).
func BenchmarkFig16_17_Overestimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = runExperiment(b, "fig16")
	}
}

// BenchmarkFig18_19_Underestimate regenerates the congestion-stop
// adaptation timelines (Figs. 18-19).
func BenchmarkFig18_19_Underestimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = runExperiment(b, "fig18")
	}
}

// BenchmarkSimulatorEventRate measures the discrete-event kernel's raw
// throughput driving the full stack (diagnostic, not a paper artifact).
func BenchmarkSimulatorEventRate(b *testing.B) {
	var completed uint64
	for i := 0; i < b.N; i++ {
		sys, err := New(Config{Scale: 50, WarmupPeriods: 1, MeasurePeriods: 2, Records: 256, Seed: 9},
			[]Tenant{
				{Name: "t1", Reservation: 8000, DemandPerPeriod: 12000},
				{Name: "t2", Reservation: 8000, DemandPerPeriod: 12000},
			})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		completed += rep.TotalCompleted
	}
	b.ReportMetric(float64(completed)/float64(b.N), "IOsPerRun")
}
