#!/usr/bin/env python3
"""Bench regression gate: fresh CI measurements vs committed baselines.

Usage: bench_gate.py <ci_kernel.json> <ci_shard.json> [<ci_fleet.json>]

Compares the freshly measured BENCH_kernel/BENCH_shard (and optionally
BENCH_fleet) artifacts against the committed BENCH_kernel.json /
BENCH_shard.json / BENCH_fleet.json at the repo root.
Absolute events/sec is machine-dependent, so the gate checks the
machine-independent quantities instead:

  - the timing wheel's speedup over the heap baseline (median of
    interleaved reps, so runner noise hits both engines equally);
  - the shard coordinator's throughput relative to a bare kernel running
    the same load in the same process (coordination_ratio, also a median
    of interleaved reps);
  - the fully observed sharded cluster run's events-per-wall-second
    relative to its blind twin (observe_overhead: per-shard recorders,
    metrics sampling and the sanitizer all on — the cost of watching);
  - the sharded bench's deterministic event accounting (event, quantum,
    cross-message and idle-quanta counts), which must match the baseline
    exactly — any drift is a determinism regression, not noise;
  - the fleet bench's events-per-client ratio (aggregate events/sec at
    10^5 clients relative to 10^3, cache off): both sides run in one
    process so runner speed cancels, and the ratio falling means
    per-event cost grows with fleet size — the SoA hot path regressing;
  - the fleet bench's per-point simulated event counts, which are
    deterministic and must match the baseline exactly.

A ratio more than 20% below its baseline fails. Refresh the committed
baselines deliberately (rerun the TestWrite*BenchJSON hooks) when the
kernels genuinely change.
"""
import json
import sys

FLOOR = 0.8  # fail on >20% regression


def gate(name, got, want):
    print(f"{name}: {got:.3f} (baseline {want:.3f}, floor {FLOOR * want:.3f})")
    if got < FLOOR * want:
        sys.exit(f"FAIL: {name} regressed >20%: {got:.3f} < {FLOOR:.1f}*{want:.3f}")


def main():
    ci_kernel_path, ci_shard_path = sys.argv[1], sys.argv[2]
    base_k = json.load(open("BENCH_kernel.json"))
    base_s = json.load(open("BENCH_shard.json"))
    ci_k = json.load(open(ci_kernel_path))
    ci_s = json.load(open(ci_shard_path))

    gate("wheel-vs-heap speedup", ci_k["speedup"], base_k["speedup"])
    gate("shard coordination ratio", ci_s["coordination_ratio"],
         base_s["coordination_ratio"])
    gate("observe overhead", ci_k["observe_overhead"],
         base_k["observe_overhead"])

    for f in ("events", "shards", "quanta", "cross_messages"):
        if ci_s[f] != base_s[f]:
            sys.exit(f"FAIL: sharded bench determinism drift: "
                     f"{f} {ci_s[f]} != baseline {base_s[f]}")
    for p, bp in zip(ci_s["points"], base_s["points"]):
        if p["idle_quanta_total"] != bp["idle_quanta_total"]:
            sys.exit(f"FAIL: idle quanta drift at workers={p['workers']}: "
                     f"{p['idle_quanta_total']} != {bp['idle_quanta_total']}")

    if len(sys.argv) > 3:
        base_f = json.load(open("BENCH_fleet.json"))
        ci_f = json.load(open(sys.argv[3]))
        gate("fleet events-per-client ratio", ci_f["events_per_client_ratio"],
             base_f["events_per_client_ratio"])
        for p, bp in zip(ci_f["points"], base_f["points"]):
            if (p["clients"], p["qp_cache"]) != (bp["clients"], bp["qp_cache"]):
                sys.exit(f"FAIL: fleet bench point mismatch: "
                         f"{p['clients']}/{p['qp_cache']} != "
                         f"{bp['clients']}/{bp['qp_cache']}")
            if p["events"] != bp["events"]:
                sys.exit(f"FAIL: fleet bench determinism drift at "
                         f"clients={p['clients']} qp_cache={p['qp_cache']}: "
                         f"{p['events']} events != baseline {bp['events']}")

    print("bench gate passed")


if __name__ == "__main__":
    main()
