module wheelmod

go 1.22
