// Package sim stands in for the timing-wheel kernel: it exercises every
// allocation-avoidance idiom the real event queue uses — intrusive
// singly-linked slot chains, fixed slot arrays with occupancy bitmaps,
// an event freelist threaded through the same link field, and
// generation-checked value handles — and must produce zero findings.
package sim

import "math/bits"

// Time is virtual nanoseconds.
type Time int64

const (
	slotBits = 3
	slots    = 1 << slotBits
	slotMask = slots - 1
)

// event is pooled: next links it into a slot chain or the freelist, and
// gen invalidates stale Timer handles across recycling.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	next *event
	gen  uint32
}

// Timer is a value handle; the generation check makes a handle held past
// its event's recycling an inert no-op.
type Timer struct {
	ev  *event
	gen uint32
}

// Cancel prevents the callback from running, if the handle is current.
func (t Timer) Cancel() bool {
	if t.ev == nil || t.gen != t.ev.gen || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// Kernel is a single-level timing wheel with a freelist.
type Kernel struct {
	now      Time
	seq      uint64
	wheel    [slots]*event
	tails    [slots]*event
	occupied uint8
	free     *event
}

// Now returns the virtual clock.
func (k *Kernel) Now() Time { return k.now }

// Schedule queues fn after delay and returns a cancelable handle.
func (k *Kernel) Schedule(delay Time, fn func()) Timer {
	ev := k.alloc()
	ev.at = k.now + delay
	ev.seq = k.seq
	ev.fn = fn
	k.seq++
	idx := int(uint64(ev.at) & slotMask)
	if k.tails[idx] == nil {
		k.wheel[idx] = ev
	} else {
		k.tails[idx].next = ev
	}
	k.tails[idx] = ev
	k.occupied |= 1 << idx
	return Timer{ev: ev, gen: ev.gen}
}

// Run drains every slot in occupancy order until the wheel is empty.
func (k *Kernel) Run() {
	for k.occupied != 0 {
		idx := bits.TrailingZeros8(k.occupied)
		ev := k.wheel[idx]
		k.wheel[idx] = nil
		k.tails[idx] = nil
		k.occupied &^= 1 << idx
		for ev != nil {
			next := ev.next
			if fn := ev.fn; fn != nil {
				if ev.at > k.now {
					k.now = ev.at
				}
				fn()
			}
			k.recycle(ev)
			ev = next
		}
	}
}

func (k *Kernel) alloc() *event {
	if ev := k.free; ev != nil {
		k.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{}
}

func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.next = k.free
	k.free = ev
}
