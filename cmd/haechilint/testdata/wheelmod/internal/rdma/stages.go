// Package rdma stands in for the closure-free completion pipeline: ops
// are value types moved through per-stage FIFOs, and each stage's
// completion is one method bound once at setup rather than a closure
// allocated per I/O — the idiom must produce zero findings.
package rdma

import "wheelmod/internal/sim"

// op is a value-type operation; the FIFO below never holds pointers.
type op struct {
	id     uint64
	doneCB func(uint64)
}

// fifo is a growable queue with lazy head compaction.
type fifo struct {
	ops  []op
	head int
}

func (q *fifo) push(o op) { q.ops = append(q.ops, o) }

func (q *fifo) pop() op {
	o := q.ops[q.head]
	q.ops[q.head] = op{}
	q.head++
	if q.head == len(q.ops) {
		q.ops = q.ops[:0]
		q.head = 0
	}
	return o
}

// Pipe runs ops through two stages. The stage callbacks are bound once
// in Bind; per-op state travels in the FIFOs, so issuing an op
// allocates nothing beyond FIFO growth.
type Pipe struct {
	k        *sim.Kernel
	wire     fifo
	serve    fifo
	onWireFn func()
	onDoneFn func()
}

// Bind installs the stage completions as bound methods.
func (p *Pipe) Bind(k *sim.Kernel) {
	p.k = k
	p.onWireFn = p.onWire
	p.onDoneFn = p.onDone
}

// Issue schedules one op through both stages.
func (p *Pipe) Issue(id uint64, done func(uint64)) {
	p.wire.push(op{id: id, doneCB: done})
	p.k.Schedule(1, p.onWireFn)
}

func (p *Pipe) onWire() {
	o := p.wire.pop()
	p.serve.push(o)
	p.k.Schedule(1, p.onDoneFn)
}

func (p *Pipe) onDone() {
	o := p.serve.pop()
	if o.doneCB != nil {
		o.doneCB(o.id)
	}
}
