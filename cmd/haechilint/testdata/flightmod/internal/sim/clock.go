// Package sim stands in for the simulation kernel: a virtual clock and
// an event list, with no wall-clock time anywhere.
package sim

// Time is virtual nanoseconds.
type Time int64

// Kernel is a minimal single-threaded event loop.
type Kernel struct {
	now    Time
	events []event
}

type event struct {
	at Time
	fn func()
}

// Now returns the virtual clock.
func (k *Kernel) Now() Time { return k.now }

// Schedule queues fn to run after delay.
func (k *Kernel) Schedule(delay Time, fn func()) {
	k.events = append(k.events, event{at: k.now + delay, fn: fn})
}

// Run drains the event list in order.
func (k *Kernel) Run() {
	for len(k.events) > 0 {
		best := 0
		for i, ev := range k.events[1:] {
			if ev.at < k.events[best].at {
				best = i + 1
			}
		}
		ev := k.events[best]
		k.events = append(k.events[:best], k.events[best+1:]...)
		k.now = ev.at
		ev.fn()
	}
}
