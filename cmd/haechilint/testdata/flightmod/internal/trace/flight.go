// Package trace stands in for the flight-recorder layer: it exercises
// every span-recording idiom the real kernel packages use — clock
// stamping inside scheduled callbacks, completion-callback wrapping,
// and collect-then-sort iteration over a per-actor stats map — and must
// produce zero findings.
package trace

import (
	"sort"

	"flightmod/internal/sim"
)

// Span carries the stage timestamps of one simulated I/O.
type Span struct {
	Actor  string
	Posted sim.Time
	Served sim.Time
	Done   sim.Time
}

// Recorder accumulates finished spans per actor.
type Recorder struct {
	stats map[string]int
	spans []Span
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{stats: make(map[string]int)}
}

// Track runs op on the kernel with its service stamped at serve time and
// its completion callback wrapped to stamp the finish — the idiom the
// real fabric uses: timestamps are taken inside callbacks the kernel
// executes anyway, never from the wall clock.
func (r *Recorder) Track(k *sim.Kernel, actor string, serviceTime sim.Time, complete func()) {
	sp := Span{Actor: actor, Posted: k.Now()}
	k.Schedule(serviceTime, func() {
		sp.Served = k.Now()
		k.Schedule(1, func() {
			sp.Done = k.Now()
			r.finish(sp)
			if complete != nil {
				complete()
			}
		})
	})
}

func (r *Recorder) finish(sp Span) {
	r.spans = append(r.spans, sp)
	r.stats[sp.Actor]++
}

// Actors returns the recorded actors in deterministic order: collect
// the keys, sort, iterate the slice.
func (r *Recorder) Actors() []string {
	actors := make([]string, 0, len(r.stats))
	for a := range r.stats {
		actors = append(actors, a)
	}
	sort.Strings(actors)
	return actors
}

// Counts renders per-actor span counts in sorted-actor order.
func (r *Recorder) Counts() []int {
	out := make([]int, 0, len(r.stats))
	for _, a := range r.Actors() {
		out = append(out, r.stats[a])
	}
	return out
}
