module flightmod

go 1.22
