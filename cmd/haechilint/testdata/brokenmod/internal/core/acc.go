// Package core stands in for QoS math with a seeded map-order
// violation.
package core

// Mean accumulates floats in map order on purpose.
func Mean(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum / float64(len(m))
}
