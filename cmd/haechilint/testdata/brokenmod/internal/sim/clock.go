// Package sim stands in for a simulation kernel package with a seeded
// wall-clock violation.
package sim

import "time"

// Now leaks the machine clock into the simulation.
func Now() int64 { return time.Now().UnixNano() }
