package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/lint"
)

// chdir switches the working directory for one test.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCleanTree: the lint gate holds on the repository itself — the
// whole module loads, type-checks, and produces zero diagnostics.
func TestCleanTree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("haechilint ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree produced output:\n%s", stdout.String())
	}
}

// TestSeededViolations: on the broken fixture module the tool exits
// non-zero and reports correct file:line diagnostics. Running the
// shipped rule set against a foreign module also makes every DefaultRules
// waiver dead (none of the waived packages exist there), so waiverdrift
// reports all six standing excludes first — doubling as the pin on its
// output format and on the (file, line, col, analyzer, message) order.
func TestSeededViolations(t *testing.T) {
	chdir(t, filepath.Join("testdata", "brokenmod"))
	var stdout, stderr bytes.Buffer
	code := run(nil, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d diagnostics, want 8:\n%s", len(lines), out)
	}
	wantFrags := [][]string{
		{"(waivers):1:1", "waiverdrift", `noconcurrency waiver "cmd/haechibench" matches no package`},
		{"(waivers):1:1", "waiverdrift", `noconcurrency waiver "internal/parallel" matches no package`},
		{"(waivers):1:1", "waiverdrift", `parallelimport waiver "internal/cluster" matches no package`},
		{"(waivers):1:1", "waiverdrift", `parallelimport waiver "internal/experiments" matches no package`},
		{"(waivers):1:1", "waiverdrift", `parallelimport waiver "internal/sim/shard" matches no package`},
		{"(waivers):1:1", "waiverdrift", `walltime waiver "cmd/haechibench" matches no package`},
		{filepath.Join("internal", "core", "acc.go") + ":8:2", "maporder", "accumulates floating-point values"},
		{filepath.Join("internal", "sim", "clock.go") + ":8:27", "walltime", "time.Now"},
	}
	for i, frags := range wantFrags {
		for _, frag := range frags {
			if !strings.Contains(lines[i], frag) {
				t.Errorf("diagnostic %d = %q, missing %q", i, lines[i], frag)
			}
		}
	}
	if !strings.Contains(stderr.String(), "8 issue(s)") {
		t.Errorf("stderr = %q, want issue count", stderr.String())
	}
}

// TestPatternFilter: patterns restrict which packages are reported.
func TestPatternFilter(t *testing.T) {
	chdir(t, filepath.Join("testdata", "brokenmod"))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"internal/core"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if out := stdout.String(); strings.Contains(out, "clock.go") || !strings.Contains(out, "acc.go") {
		t.Errorf("pattern internal/core selected wrong packages:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"no/such/pkg"}, &stdout, &stderr); code != 2 {
		t.Errorf("unmatched pattern: exit = %d, want 2 (stderr %q)", code, stderr.String())
	}
}

// TestFlightFixtureClean: the span-recording idioms the observability
// layer relies on — clock stamping inside scheduled callbacks,
// completion-callback wrapping, collect-then-sort over a per-actor
// stats map — pass the full kernel-package rule set with zero findings.
func TestFlightFixtureClean(t *testing.T) {
	chdir(t, filepath.Join("testdata", "flightmod"))
	var stdout, stderr bytes.Buffer
	// internal/... scopes reporting to the fixture's packages; the
	// DefaultRules waivers reference packages of the home module, so the
	// module-level waiverdrift audit does not apply to a foreign fixture.
	if code := run([]string{"internal/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean fixture produced findings:\n%s", stdout.String())
	}
}

func TestMatchPattern(t *testing.T) {
	tests := []struct {
		pat, rel string
		want     bool
	}{
		{"./...", "internal/sim", true},
		{"...", ".", true},
		{".", "internal/sim", true},
		{"internal/...", "internal/sim", true},
		{"internal/...", "internal", true},
		{"internal/...", "cmd/haechikv", false},
		{"./internal/sim", "internal/sim", true},
		{"internal/sim", "internal/sim/sub", false},
		{"internal/sim/", "internal/sim", true},
	}
	for _, tt := range tests {
		if got := matchPattern(tt.pat, tt.rel); got != tt.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", tt.pat, tt.rel, got, tt.want)
		}
	}
}

// TestWheelFixtureClean: the allocation-avoidance idioms the fast
// kernel relies on — intrusive freelist chains, fixed slot arrays with
// occupancy bitmaps, generation-checked value Timer handles, and
// stage completions bound once as methods instead of per-I/O closures —
// pass the full rule set with zero findings.
func TestWheelFixtureClean(t *testing.T) {
	chdir(t, filepath.Join("testdata", "wheelmod"))
	var stdout, stderr bytes.Buffer
	// See TestFlightFixtureClean for why reporting is scoped to internal/...
	if code := run([]string{"internal/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean fixture produced findings:\n%s", stdout.String())
	}
}

// TestScopeFlag: -scope prints one line per shipped rule, and the
// noconcurrency line records the module's only two standing concurrency
// waivers. A rule-scope change that widens or narrows the waiver set
// must show up here (and so in review) before it lands.
func TestScopeFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scope"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 9 {
		t.Errorf("want 9 scope lines, got %d:\n%s", got, out)
	}
	want := "noconcurrency   all packages; exclude internal/parallel, cmd/haechibench"
	if !strings.Contains(out, want) {
		t.Errorf("scope output missing %q:\n%s", want, out)
	}
	want = "parallelimport  all packages; exclude internal/experiments, internal/cluster, internal/sim/shard"
	if !strings.Contains(out, want) {
		t.Errorf("scope output missing %q:\n%s", want, out)
	}
}

// TestJSONOutput: -json renders the brokenmod diagnostics as a sorted
// JSON array with module-relative paths and the same exit status.
func TestJSONOutput(t *testing.T) {
	chdir(t, filepath.Join("testdata", "brokenmod"))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var diags []struct {
		Pkg      string `json:"package"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(diags) != 8 {
		t.Fatalf("got %d diagnostics, want 8:\n%s", len(diags), stdout.String())
	}
	// The six waiverdrift findings sort first ("(waivers)" < any path).
	for i := 0; i < 6; i++ {
		if diags[i].Analyzer != "waiverdrift" || diags[i].File != "(waivers)" || diags[i].Pkg != "." {
			t.Errorf("diag %d = %+v, want a waiverdrift module-level finding", i, diags[i])
		}
	}
	if d := diags[6]; d.Analyzer != "maporder" || d.File != "internal/core/acc.go" || d.Line != 8 || d.Col != 2 || d.Pkg != "internal/core" {
		t.Errorf("diag 6 = %+v, want maporder at internal/core/acc.go:8:2", d)
	}
	if d := diags[7]; d.Analyzer != "walltime" || d.File != "internal/sim/clock.go" || d.Line != 8 {
		t.Errorf("diag 7 = %+v, want walltime at internal/sim/clock.go:8", d)
	}
}

// TestJSONOutputClean: a clean selection emits an empty JSON array, not
// empty output, so downstream tooling can always json.Unmarshal.
func TestJSONOutputClean(t *testing.T) {
	chdir(t, filepath.Join("testdata", "wheelmod"))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "internal/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestWaiverInventoryCommitted: `haechilint -scope -json` must equal the
// committed lint_waivers.json byte for byte — adding, widening, or
// dropping a waiver requires an explicit commit to that file (CI diffs
// the same pair).
func TestWaiverInventoryCommitted(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scope", "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	committed, err := os.ReadFile(filepath.Join("..", "..", "lint_waivers.json"))
	if err != nil {
		t.Fatalf("reading committed inventory: %v", err)
	}
	if stdout.String() != string(committed) {
		t.Errorf("waiver inventory drifted from lint_waivers.json; regenerate it with "+
			"`go run ./cmd/haechilint -scope -json > lint_waivers.json`\ngot:\n%s\ncommitted:\n%s",
			stdout.String(), committed)
	}
}

// TestFixtureModulesTypeCheck: every fixture module under testdata must
// still load and type-check through the same loader the CLI uses.
func TestFixtureModulesTypeCheck(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		root, err := filepath.Abs(filepath.Join("testdata", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := lint.NewLoader().LoadModule(root); err != nil {
			t.Errorf("fixture module %s does not type-check: %v", e.Name(), err)
		}
	}
}
