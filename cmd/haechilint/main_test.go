package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir switches the working directory for one test.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCleanTree: the lint gate holds on the repository itself — the
// whole module loads, type-checks, and produces zero diagnostics.
func TestCleanTree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("haechilint ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree produced output:\n%s", stdout.String())
	}
}

// TestSeededViolations: on the broken fixture module the tool exits
// non-zero and reports correct file:line diagnostics.
func TestSeededViolations(t *testing.T) {
	chdir(t, filepath.Join("testdata", "brokenmod"))
	var stdout, stderr bytes.Buffer
	code := run(nil, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(lines), out)
	}
	wantFrags := [][]string{
		{filepath.Join("internal", "core", "acc.go") + ":8:2", "maporder", "accumulates floating-point values"},
		{filepath.Join("internal", "sim", "clock.go") + ":8:27", "walltime", "time.Now"},
	}
	for i, frags := range wantFrags {
		for _, frag := range frags {
			if !strings.Contains(lines[i], frag) {
				t.Errorf("diagnostic %d = %q, missing %q", i, lines[i], frag)
			}
		}
	}
	if !strings.Contains(stderr.String(), "2 issue(s)") {
		t.Errorf("stderr = %q, want issue count", stderr.String())
	}
}

// TestPatternFilter: patterns restrict which packages are reported.
func TestPatternFilter(t *testing.T) {
	chdir(t, filepath.Join("testdata", "brokenmod"))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"internal/core"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if out := stdout.String(); strings.Contains(out, "clock.go") || !strings.Contains(out, "acc.go") {
		t.Errorf("pattern internal/core selected wrong packages:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"no/such/pkg"}, &stdout, &stderr); code != 2 {
		t.Errorf("unmatched pattern: exit = %d, want 2 (stderr %q)", code, stderr.String())
	}
}

// TestFlightFixtureClean: the span-recording idioms the observability
// layer relies on — clock stamping inside scheduled callbacks,
// completion-callback wrapping, collect-then-sort over a per-actor
// stats map — pass the full kernel-package rule set with zero findings.
func TestFlightFixtureClean(t *testing.T) {
	chdir(t, filepath.Join("testdata", "flightmod"))
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean fixture produced findings:\n%s", stdout.String())
	}
}

func TestMatchPattern(t *testing.T) {
	tests := []struct {
		pat, rel string
		want     bool
	}{
		{"./...", "internal/sim", true},
		{"...", ".", true},
		{".", "internal/sim", true},
		{"internal/...", "internal/sim", true},
		{"internal/...", "internal", true},
		{"internal/...", "cmd/haechikv", false},
		{"./internal/sim", "internal/sim", true},
		{"internal/sim", "internal/sim/sub", false},
		{"internal/sim/", "internal/sim", true},
	}
	for _, tt := range tests {
		if got := matchPattern(tt.pat, tt.rel); got != tt.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", tt.pat, tt.rel, got, tt.want)
		}
	}
}

// TestWheelFixtureClean: the allocation-avoidance idioms the fast
// kernel relies on — intrusive freelist chains, fixed slot arrays with
// occupancy bitmaps, generation-checked value Timer handles, and
// stage completions bound once as methods instead of per-I/O closures —
// pass the full rule set with zero findings.
func TestWheelFixtureClean(t *testing.T) {
	chdir(t, filepath.Join("testdata", "wheelmod"))
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean fixture produced findings:\n%s", stdout.String())
	}
}

// TestScopeFlag: -scope prints one line per shipped rule, and the
// noconcurrency line records the module's only two standing concurrency
// waivers. A rule-scope change that widens or narrows the waiver set
// must show up here (and so in review) before it lands.
func TestScopeFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scope"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 6 {
		t.Errorf("want 6 scope lines, got %d:\n%s", got, out)
	}
	want := "noconcurrency   all packages; exclude internal/parallel, cmd/haechibench"
	if !strings.Contains(out, want) {
		t.Errorf("scope output missing %q:\n%s", want, out)
	}
	want = "parallelimport  all packages; exclude internal/experiments, internal/cluster, internal/sim/shard"
	if !strings.Contains(out, want) {
		t.Errorf("scope output missing %q:\n%s", want, out)
	}
}
