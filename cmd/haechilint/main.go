// Command haechilint runs the determinism & invariant lint suite over
// the module (see internal/lint and DESIGN.md "Determinism contract").
//
// Usage:
//
//	haechilint [package patterns]
//
// Patterns are module-relative directories; `dir/...` matches a subtree
// and `./...` (the default) analyzes every package. The whole module is
// always loaded — patterns only select which packages are reported on.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on
// load or usage errors.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/haechi-qos/haechi/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "haechilint:", err)
		return 2
	}
	ld := lint.NewLoader()
	pkgs, err := ld.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "haechilint:", err)
		return 2
	}
	selected, err := filterPackages(pkgs, args)
	if err != nil {
		fmt.Fprintln(stderr, "haechilint:", err)
		return 2
	}
	diags := lint.Run(selected, lint.DefaultRules())
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "haechilint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// filterPackages selects the packages matching the command-line
// patterns. No patterns (or "./...") means every package.
func filterPackages(pkgs []*lint.Package, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, p := range pkgs {
			if matchPattern(pat, p.Rel) {
				matched = true
				if !seen[p.Rel] {
					seen[p.Rel] = true
					out = append(out, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "..." || pat == "." || pat == "" {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == sub || strings.HasPrefix(rel, sub+"/")
	}
	return rel == pat
}
