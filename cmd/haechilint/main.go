// Command haechilint runs the determinism & invariant lint suite over
// the module (see internal/lint and DESIGN.md "Determinism contract").
//
// Usage:
//
//	haechilint [package patterns]
//	haechilint -scope
//
// Patterns are module-relative directories; `dir/...` matches a subtree
// and `./...` (the default) analyzes every package. The whole module is
// always loaded — patterns only select which packages are reported on.
// -scope prints each shipped rule's include/exclude scope (the standing
// waivers) without analyzing anything.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on
// load or usage errors.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/haechi-qos/haechi/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 && args[0] == "-scope" {
		printScopes(stdout)
		return 0
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "haechilint:", err)
		return 2
	}
	ld := lint.NewLoader()
	pkgs, err := ld.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "haechilint:", err)
		return 2
	}
	selected, err := filterPackages(pkgs, args)
	if err != nil {
		fmt.Fprintln(stderr, "haechilint:", err)
		return 2
	}
	diags := lint.Run(selected, lint.DefaultRules())
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "haechilint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// printScopes lists each default rule with its scope, making the
// standing waivers auditable from the command line (CI prints this next
// to the lint run so scope changes show up in logs).
func printScopes(w io.Writer) {
	for _, r := range lint.DefaultRules() {
		scope := "all packages"
		if len(r.Include) > 0 {
			scope = "include " + strings.Join(r.Include, ", ")
		}
		if len(r.Exclude) > 0 {
			scope += "; exclude " + strings.Join(r.Exclude, ", ")
		}
		fmt.Fprintf(w, "%-15s %s\n", r.Analyzer.Name, scope)
	}
}

// filterPackages selects the packages matching the command-line
// patterns. No patterns (or "./...") means every package.
func filterPackages(pkgs []*lint.Package, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, p := range pkgs {
			if matchPattern(pat, p.Rel) {
				matched = true
				if !seen[p.Rel] {
					seen[p.Rel] = true
					out = append(out, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "..." || pat == "." || pat == "" {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == sub || strings.HasPrefix(rel, sub+"/")
	}
	return rel == pat
}
