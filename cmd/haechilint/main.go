// Command haechilint runs the determinism & invariant lint suite over
// the module (see internal/lint and DESIGN.md "Determinism contract").
//
// Usage:
//
//	haechilint [-json] [package patterns]
//	haechilint -scope [-json]
//
// Patterns are module-relative directories; `dir/...` matches a subtree
// and `./...` (the default) analyzes every package. The whole module is
// always loaded and analyzed — the interprocedural analyzers need every
// package — and patterns only select which packages are reported on.
// -scope prints each shipped rule's include/exclude scope (the standing
// waivers) without analyzing anything; with -json it emits the waiver
// inventory that CI diffs against the committed lint_waivers.json.
// -json renders diagnostics as a sorted JSON array with module-relative
// file paths.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on
// load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/haechi-qos/haechi/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("haechilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scope := fs.Bool("scope", false, "print each rule's include/exclude scope and exit")
	jsonOut := fs.Bool("json", false, "machine-readable JSON output (diagnostics, or the waiver inventory with -scope)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scope {
		if *jsonOut {
			if err := writeScopesJSON(stdout); err != nil {
				fmt.Fprintln(stderr, "haechilint:", err)
				return 2
			}
		} else {
			printScopes(stdout)
		}
		return 0
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "haechilint:", err)
		return 2
	}
	ld := lint.NewLoader()
	pkgs, err := ld.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "haechilint:", err)
		return 2
	}
	diags := lint.Run(pkgs, lint.DefaultRules())
	if patterns := fs.Args(); len(patterns) > 0 {
		selected, err := filterPackages(pkgs, patterns)
		if err != nil {
			fmt.Fprintln(stderr, "haechilint:", err)
			return 2
		}
		keep := make(map[string]bool, len(selected))
		for _, p := range selected {
			keep[p.Rel] = true
		}
		var kept []lint.Diagnostic
		for _, d := range diags {
			// Module-level diagnostics (waiverdrift, allowlist audits)
			// carry Pkg "." and are reported when the root matches.
			if keep[d.Pkg] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	if *jsonOut {
		if err := writeDiagsJSON(stdout, root, diags); err != nil {
			fmt.Fprintln(stderr, "haechilint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "haechilint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// printScopes lists each default rule with its scope, making the
// standing waivers auditable from the command line (CI prints this next
// to the lint run so scope changes show up in logs).
func printScopes(w io.Writer) {
	for _, r := range lint.DefaultRules() {
		scope := "all packages"
		if len(r.Include) > 0 {
			scope = "include " + strings.Join(r.Include, ", ")
		}
		if len(r.Exclude) > 0 {
			scope += "; exclude " + strings.Join(r.Exclude, ", ")
		}
		fmt.Fprintf(w, "%-15s %s\n", r.Analyzer.Name, scope)
	}
}

// ruleScope is one entry of the JSON waiver inventory. Include/Exclude
// are never null so the committed lint_waivers.json diffs cleanly.
type ruleScope struct {
	Analyzer string   `json:"analyzer"`
	Include  []string `json:"include"`
	Exclude  []string `json:"exclude"`
}

func writeScopesJSON(w io.Writer) error {
	scopes := make([]ruleScope, 0, len(lint.DefaultRules()))
	for _, r := range lint.DefaultRules() {
		s := ruleScope{Analyzer: r.Analyzer.Name, Include: []string{}, Exclude: []string{}}
		s.Include = append(s.Include, r.Include...)
		s.Exclude = append(s.Exclude, r.Exclude...)
		scopes = append(scopes, s)
	}
	return writeJSON(w, scopes)
}

// jsonDiag is the machine-readable diagnostic form: file paths are
// module-relative (synthetic positions like "(waivers)" pass through).
type jsonDiag struct {
	Pkg      string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeDiagsJSON(w io.Writer, root string, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonDiag{
			Pkg:      d.Pkg,
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return writeJSON(w, out)
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// filterPackages selects the packages matching the command-line
// patterns. No patterns (or "./...") means every package.
func filterPackages(pkgs []*lint.Package, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, p := range pkgs {
			if matchPattern(pat, p.Rel) {
				matched = true
				if !seen[p.Rel] {
					seen[p.Rel] = true
					out = append(out, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "..." || pat == "." || pat == "" {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == sub || strings.HasPrefix(rel, sub+"/")
	}
	return rel == pat
}
