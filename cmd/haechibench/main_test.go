package main

import "testing"

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("-list exit = %d", code)
	}
}

func TestRunNoArgs(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code != 2 {
		t.Errorf("bad-flag exit = %d, want 2", code)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if code := run([]string{"-experiment", "figX"}); code != 1 {
		t.Errorf("unknown experiment exit = %d, want 1", code)
	}
}

func TestRunConfigExperiment(t *testing.T) {
	if code := run([]string{"-experiment", "config", "-scale", "100", "-periods", "2", "-warmup", "1",
		"-clients", "4", "-records", "64", "-seed", "9"}); code != 0 {
		t.Errorf("config experiment exit = %d", code)
	}
}

func TestRunAlias(t *testing.T) {
	// Alias "1c" resolves to fig8; keep it tiny.
	if code := run([]string{"-experiment", "1c", "-scale", "100", "-periods", "2", "-warmup", "1",
		"-records", "64"}); code != 0 {
		t.Errorf("alias experiment exit = %d", code)
	}
}
