// Command haechibench regenerates the paper's evaluation tables and
// figures (Section III) on the simulated testbed.
//
// Usage:
//
//	haechibench -experiment fig9           # one experiment (see -list)
//	haechibench -all                       # every experiment in order
//	haechibench -all -paper                # full-scale, paper-length runs
//	haechibench -experiment fig12 -scale 5 -periods 10
//
// Experiment ids accept both figure names (fig6..fig18) and the paper's
// experiment numbering (1a, 1b, 1c, 2a, 2b, 2c, 3, 4over, 4under).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/core"
	"github.com/haechi-qos/haechi/internal/experiments"
	"github.com/haechi-qos/haechi/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("haechibench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "", "experiment id to run (see -list)")
		all        = fs.Bool("all", false, "run every experiment")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		paper      = fs.Bool("paper", false, "paper dimensions: full scale, 30+30 periods (slow)")
		scale      = fs.Float64("scale", 0, "fabric scale divisor (default 10; 1 = full scale)")
		warmup     = fs.Int("warmup", 0, "warm-up periods (default 2; paper uses 30)")
		periods    = fs.Int("periods", 0, "measured periods (default 5; paper uses 30)")
		clients    = fs.Int("clients", 0, "client nodes (default 10)")
		records    = fs.Int("records", 0, "records populated in the KV store (default 4096)")
		seed       = fs.Int64("seed", 0, "random seed (default 42)")
		par        = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent cluster runs per experiment sweep (output is identical at any value)")
		shards     = fs.Int("shards", 0, "partition each cluster onto this many shard kernels (0/1 = single kernel; changes output like -scale does)")
		shardWork  = fs.Int("shard-workers", 0, "worker pool driving the shard kernels (0 = GOMAXPROCS; output is identical at any value)")
		sanitize   = fs.Bool("sanitize", false, "enable runtime invariant checks (token conservation, pool floor, event order; output is identical, violations fail the run)")
		chaosSpec  = fs.String("chaos", "", "inject a fault scenario into every cluster run (a preset such as set5, or a grammar string like 'crash@2.25:c=0;restart@5.5:c=0'; deterministic)")
		csvDir     = fs.String("csv", "", "also write each table as CSV into this directory")
		traceOut   = fs.String("trace", "", "write per-I/O spans as Chrome trace_event JSON (open in Perfetto); multi-run experiments get -NN suffixes")
		traceSpans = fs.Int("trace-spans", 10000, "span ring capacity for -trace (histograms always cover every span)")
		metricsOut = fs.String("metrics", "", "write sampled metrics as CSV; multi-run experiments get -NN suffixes")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile (after GC) to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		fmt.Println("experiments:", strings.Join(experiments.Known(), " "))
		fmt.Println("aliases: tablei 1a 1b 1c 2a 2b 2c 3 4over 4under fig11 fig14 fig15 fig17 fig19")
		return 0
	}
	// Wall-clock profiling of the simulator itself. Orthogonal to the
	// virtual-time attribution profile in Results: pprof says where host
	// CPU goes, Attribution says which simulated work the kernel executed.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "haechibench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "haechibench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "cpu profile: %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeFile(*memProfile, func(f *os.File) error {
				runtime.GC() // materialize the retained-heap picture
				return pprof.WriteHeapProfile(f)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "haechibench: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "heap profile: %s\n", *memProfile)
		}()
	}

	opts := experiments.NewDefaultOptions()
	if *paper {
		opts = experiments.PaperOptions()
	}
	if *scale != 0 {
		opts.Scale = *scale
	}
	if *warmup != 0 {
		opts.WarmupPeriods = *warmup
	}
	if *periods != 0 {
		opts.MeasurePeriods = *periods
	}
	if *clients != 0 {
		opts.Clients = *clients
	}
	if *records != 0 {
		opts.Records = *records
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.Parallel = *par
	opts.Shards = *shards
	opts.ShardWorkers = *shardWork
	opts.Sanitize = *sanitize
	opts.Chaos = *chaosSpec

	exp := &exporter{traceOut: *traceOut, metricsOut: *metricsOut}
	if *traceOut != "" || *metricsOut != "" {
		// Artifact export works at any -parallel and -shard-workers value:
		// each run carries a deterministic RunTag, the exporter orders
		// artifacts by it at flush time, and sharded runs keep one
		// recorder per shard (merged after the run), so neither knob
		// changes the bytes written.
		ob := &cluster.Observe{OnResults: exp.capture}
		if *traceOut != "" {
			ob.FlightSpans = *traceSpans
		}
		if *metricsOut != "" {
			ob.MetricsInterval = cluster.DefaultMetricsInterval(core.NewDefaultParams().Period)
		}
		opts.Observe = ob
	} else {
		// Events-per-wall-second accounting: every cluster run reports its
		// deterministic kernel event count; the sum is divided by the
		// experiment's wall time. The counter is atomic because parallel
		// sweeps complete runs concurrently.
		opts.Observe = &cluster.Observe{OnResults: func(res *cluster.Results) {
			atomic.AddUint64(&exp.events, res.EventsExecuted)
		}}
	}

	switch {
	case *all:
		for _, id := range experiments.Order {
			if err := runOne(id, opts, *csvDir, exp); err != nil {
				fmt.Fprintf(os.Stderr, "haechibench: %s: %v\n", id, err)
				return 1
			}
		}
		return 0
	case *experiment != "":
		if err := runOne(*experiment, opts, *csvDir, exp); err != nil {
			fmt.Fprintf(os.Stderr, "haechibench: %v\n", err)
			return 1
		}
		return 0
	default:
		fmt.Fprintln(os.Stderr, "haechibench: need -experiment <id>, -all or -list")
		fs.Usage()
		return 2
	}
}

func runOne(id string, opts experiments.Options, csvDir string, exp *exporter) error {
	start := time.Now()
	atomic.StoreUint64(&exp.events, 0)
	rep, err := experiments.Run(id, opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if csvDir != "" {
		paths, err := rep.WriteCSV(csvDir)
		if err != nil {
			return fmt.Errorf("writing CSV: %w", err)
		}
		fmt.Printf("csv: %v"+"\n", paths)
	}
	if err := exp.flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	status := fmt.Sprintf("[%s completed in %v at scale %.0f, %d+%d periods",
		rep.ID, elapsed.Round(time.Millisecond), opts.Scale, opts.WarmupPeriods, opts.MeasurePeriods)
	if ev := atomic.LoadUint64(&exp.events); ev > 0 {
		status += fmt.Sprintf("; %d kernel events, %.1fM events/wall-sec",
			ev, float64(ev)/elapsed.Seconds()/1e6)
	}
	fmt.Printf("%s]\n\n", status)
	return nil
}

// exporter captures each cluster run's Results through the Observe hook
// and writes the observability artifacts after the experiment finishes.
// Experiments that compare modes run several clusters; runs are ordered
// by their deterministic RunTag, the first gets the exact
// -trace/-metrics filename, later ones a -NN suffix.
type exporter struct {
	traceOut   string
	metricsOut string
	written    int
	// mu guards pending: under a parallel sweep the Observe hook fires
	// concurrently from worker goroutines.
	mu      sync.Mutex
	pending []*cluster.Results
	// events sums Results.EventsExecuted across the current experiment's
	// cluster runs; accessed atomically (parallel sweeps report
	// concurrently).
	events uint64
}

func (e *exporter) capture(res *cluster.Results) {
	if e.traceOut == "" && e.metricsOut == "" {
		return
	}
	e.mu.Lock()
	e.pending = append(e.pending, res)
	e.mu.Unlock()
}

// suffixed numbers artifact paths past the first: out.json, out-02.json…
func suffixed(path string, n int) string {
	if n == 0 {
		return path
	}
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s-%02d%s", strings.TrimSuffix(path, ext), n+1, ext)
}

func (e *exporter) flush() error {
	// Order by the experiment's deterministic run index, not completion
	// order, so a parallel sweep writes the same files as a sequential
	// one.
	sort.SliceStable(e.pending, func(i, j int) bool {
		return e.pending[i].RunTag < e.pending[j].RunTag
	})
	for _, res := range e.pending {
		if e.traceOut != "" && res.Flight != nil {
			path := suffixed(e.traceOut, e.written)
			if err := writeFile(path, func(f *os.File) error {
				return trace.WriteChromeTrace(f, res.Flight, nil)
			}); err != nil {
				return err
			}
			fmt.Printf("trace: %s (%d spans, mode=%s)\n", path, res.Flight.Finished(), res.Mode)
		}
		if e.metricsOut != "" && res.Metrics != nil {
			path := suffixed(e.metricsOut, e.written)
			if err := writeFile(path, func(f *os.File) error {
				return res.Metrics.WriteCSV(f)
			}); err != nil {
				return err
			}
			fmt.Printf("metrics: %s (%d samples, mode=%s)\n", path, res.Metrics.Samples(), res.Mode)
		}
		if tbl := res.StageBreakdown(); tbl != "" {
			fmt.Printf("mode=%s %s", res.Mode, tbl)
		}
		// The deterministic executed-work profile: what the kernel ran,
		// by verb kind and pipeline stage, independent of workers and of
		// observability itself.
		fmt.Printf("mode=%s attribution: %+v\n", res.Mode, res.Attribution)
		e.written++
	}
	e.pending = e.pending[:0]
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
