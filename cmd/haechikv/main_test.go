package main

import "testing"

func TestParseTenants(t *testing.T) {
	tenants, err := parseTenants("gold:40000:0:60000,silver:20000, probe:0:5000:30000")
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 3 {
		t.Fatalf("got %d tenants", len(tenants))
	}
	g := tenants[0]
	if g.Name != "gold" || g.Reservation != 40000 || g.Limit != 0 || g.DemandPerPeriod != 60000 {
		t.Errorf("gold = %+v", g)
	}
	s := tenants[1]
	if s.Name != "silver" || s.Reservation != 20000 {
		t.Errorf("silver = %+v", s)
	}
	// Default demand: 120% of reservation.
	if s.DemandPerPeriod != 24000 {
		t.Errorf("silver default demand = %d, want 24000", s.DemandPerPeriod)
	}
	p := tenants[2]
	if p.Name != "probe" || p.Reservation != 0 || p.Limit != 5000 || p.DemandPerPeriod != 30000 {
		t.Errorf("probe = %+v", p)
	}
}

func TestParseTenantsErrors(t *testing.T) {
	cases := []string{
		"",
		"noreservation",
		"x:abc",
		"x:1:2:3:4",
		",,,",
	}
	for _, c := range cases {
		if _, err := parseTenants(c); err == nil {
			t.Errorf("parseTenants(%q) accepted", c)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if code := run([]string{"-tenants", "bad"}, nil); code != 2 {
		t.Errorf("bad tenants exit = %d, want 2", code)
	}
	if code := run([]string{"-bogus-flag"}, nil); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}
