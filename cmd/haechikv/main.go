// Command haechikv is an interactive demo of the Haechi-protected KV
// store: it assembles a data node plus a set of tenants described on the
// command line, runs the configured windows, and prints each tenant's QoS
// attainment.
//
// Tenants are described as name:reservation[:limit[:demand]], e.g.
//
//	haechikv -scale 10 -tenants gold:40000:0:60000,silver:20000,probe:0:0:30000
//
// Reservations and demands are I/Os per QoS period at the chosen scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	haechi "github.com/haechi-qos/haechi"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("haechikv", flag.ContinueOnError)
	var (
		tenantsFlag = fs.String("tenants", "gold:30000:0:45000,silver:15000:0:30000,bronze:8000:0:20000",
			"comma-separated tenants: name:reservation[:limit[:demand]]")
		mode      = fs.String("mode", "haechi", "haechi | basic | bare")
		scale     = fs.Float64("scale", 10, "fabric scale divisor (1 = full scale)")
		warmup    = fs.Int("warmup", 2, "warm-up periods")
		periods   = fs.Int("periods", 5, "measured periods")
		records   = fs.Int("records", 4096, "records populated")
		seed      = fs.Int64("seed", 1, "random seed")
		congest   = fs.Int("congest-at", 0, "start background congestion at this measured period (0 = none)")
		chaosSpec = fs.String("chaos", "", "inject a deterministic fault scenario (a preset such as set5, or e.g. 'crash@2.25:c=0;restart@5.5:c=0'; times in periods from run start, clients in tenant order)")
		traceCap  = fs.Int("trace", 0, "record and dump the last N protocol events (QoS modes)")
		traceDump = fs.String("trace-dump", "", "record per-I/O spans and write them as Chrome trace_event JSON to this file (open in Perfetto)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tenants, err := parseTenants(*tenantsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haechikv: %v\n", err)
		return 2
	}
	cfg := haechi.Config{
		Mode:           haechi.Mode(*mode),
		Scale:          *scale,
		WarmupPeriods:  *warmup,
		MeasurePeriods: *periods,
		Records:        *records,
		Seed:           *seed,
		TraceEvents:    *traceCap,
		Chaos:          *chaosSpec,
	}
	if *traceDump != "" {
		cfg.FlightSpans = 10000
	}
	sys, err := haechi.New(cfg, tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haechikv: %v\n", err)
		return 1
	}
	if *congest > 0 {
		if err := sys.ScheduleCongestion(*congest, 0, 4, 32); err != nil {
			fmt.Fprintf(os.Stderr, "haechikv: %v\n", err)
			return 1
		}
	}
	cap := haechi.DefaultCapacity(*scale)
	fmt.Fprintf(out, "capacity at scale %.0f: C_G=%.0f IOPS one-sided, C_L=%.0f per client\n\n",
		*scale, cap.AggregateOneSided, cap.PerClientOneSided)
	rep, err := sys.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "haechikv: %v\n", err)
		return 1
	}
	fmt.Fprint(out, rep.String())
	if *traceCap > 0 {
		fmt.Fprintln(out)
		fmt.Fprintln(out, sys.TraceSummary())
		if err := sys.DumpTrace(out); err != nil {
			fmt.Fprintf(os.Stderr, "haechikv: dumping trace: %v"+"\n", err)
			return 1
		}
	}
	if *traceDump != "" {
		if tbl := sys.StageBreakdown(); tbl != "" {
			fmt.Fprintln(out)
			fmt.Fprint(out, tbl)
		}
		f, err := os.Create(*traceDump)
		if err != nil {
			fmt.Fprintf(os.Stderr, "haechikv: %v\n", err)
			return 1
		}
		err = sys.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "haechikv: writing trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "trace written to %s (open in ui.perfetto.dev)\n", *traceDump)
	}
	return 0
}

func parseTenants(s string) ([]haechi.Tenant, error) {
	var tenants []haechi.Tenant
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("tenant %q: want name:reservation[:limit[:demand]]", item)
		}
		t := haechi.Tenant{Name: parts[0]}
		vals := make([]int64, 0, 3)
		for _, p := range parts[1:] {
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad number %q", item, p)
			}
			vals = append(vals, v)
		}
		t.Reservation = vals[0]
		if len(vals) > 1 {
			t.Limit = vals[1]
		}
		if len(vals) > 2 {
			t.DemandPerPeriod = uint64(vals[2])
		} else {
			// Default demand: 120% of the reservation (finite, so the
			// burst pattern applies); pure best-effort tenants saturate.
			if t.Reservation > 0 {
				t.DemandPerPeriod = uint64(t.Reservation + t.Reservation/5)
			}
		}
		tenants = append(tenants, t)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("no tenants given")
	}
	return tenants, nil
}
