// Command haechiprofile runs the paper's capacity-profiling procedure
// (Section II-E): saturating one-sided 4 KB reads from N clients against a
// bare data node, sampled per QoS period, yielding the profiled capacity
// Omega_prof, its standard deviation sigma, and the capacity lower bound
// Omega_prof - k*sigma used by the adaptive capacity estimator.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/kvstore"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("haechiprofile", flag.ContinueOnError)
	var (
		clients = fs.Int("clients", 10, "saturating clients (the paper uses 10)")
		periods = fs.Int("periods", 50, "profiled QoS periods (the paper uses 1000 one-period runs)")
		scale   = fs.Float64("scale", 10, "fabric scale divisor (1 = full scale)")
		sigmaK  = fs.Float64("k", 3, "lower-bound multiplier on sigma")
		seed    = fs.Int64("seed", 1, "random seed")
		shards  = fs.Int("shards", 1, "independent profiling runs splitting the periods (seeds seed..seed+shards-1; part of the result)")
		par     = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent kernels for sharded profiling (never changes the result)")
		clShard = fs.Int("cluster-shards", 0, "shard kernels inside each profiled cluster (0/1 = single kernel; part of the result, unlike -shard-workers)")
		clWork  = fs.Int("shard-workers", 0, "worker pool driving the cluster shard kernels (0 = GOMAXPROCS; never changes the result)")
		san     = fs.Bool("sanitize", false, "enable runtime invariant checks (never changes the result; violations fail the run)")
		cpuProf = fs.String("cpuprofile", "", "write a pprof CPU profile of the profiling run to this file")
		memProf = fs.String("memprofile", "", "write a pprof heap profile (after GC) to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "haechiprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "haechiprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "cpu profile: %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "haechiprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize the retained-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "haechiprofile: %v\n", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "heap profile: %s\n", *memProf)
		}()
	}
	cfg := cluster.NewDefaultConfig()
	cfg.Mode = cluster.Bare
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Store = kvstore.Options{Capacity: 1 << 12, RecordSize: 4096}
	cfg.Records = 1 << 11
	cfg.Shards = *clShard
	cfg.ShardWorkers = *clWork
	cfg.Sanitize = *san

	prof, err := cluster.ProfileCapacitySharded(cfg, *clients, *periods, *shards, *par)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haechiprofile: %v\n", err)
		return 1
	}
	fmt.Printf("profiling: %d clients, %d periods, %d shard(s), scale %.0f\n", *clients, *periods, *shards, *scale)
	fmt.Printf("Omega_prof     = %.0f I/Os per period (full-scale equivalent %.0fK IOPS)\n",
		prof.MeanPerPeriod, prof.MeanPerPeriod**scale/1000)
	fmt.Printf("sigma          = %.1f (%.3f%% of Omega_prof)\n",
		prof.Sigma, 100*prof.Sigma/prof.MeanPerPeriod)
	fmt.Printf("lower bound    = %d (Omega_prof - %.0f*sigma)\n", prof.LowerBound(*sigmaK), *sigmaK)
	return 0
}
