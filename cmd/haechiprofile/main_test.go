package main

import "testing"

func TestRunDefaultsScaledDown(t *testing.T) {
	if code := run([]string{"-scale", "100", "-periods", "3", "-clients", "4"}); code != 0 {
		t.Errorf("profile run exit = %d", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-zap"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

func TestRunInvalidArguments(t *testing.T) {
	if code := run([]string{"-clients", "0"}); code != 1 {
		t.Errorf("zero clients exit = %d, want 1", code)
	}
}
