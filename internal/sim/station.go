package sim

import "fmt"

// Station models a single-server FIFO queueing station with a fixed mean
// service time and optional multiplicative jitter. It is the building block
// for NIC and CPU processing pipelines in the simulated fabric.
//
// Submissions are served in arrival order. The implementation keeps only a
// "busy until" horizon instead of an explicit queue: the completion time of
// a submission arriving at time a is max(a, busyUntil) + serviceTime, which
// is exactly FIFO single-server semantics with O(1) state and a single
// kernel event per operation.
//
// Completion callbacks are not captured in per-operation closures.
// Within each class (bulk, priority) completions happen in submission
// order — the class's busy horizon is monotone and the kernel breaks
// same-instant ties by scheduling order — so each class keeps a FIFO of
// pending done callbacks and schedules one pre-bound method per
// completion. Submitting an operation therefore allocates nothing beyond
// the kernel's pooled event.
type Station struct {
	k *Kernel
	// service is the mean service time per operation.
	service Time
	// jitter is the maximum fractional deviation of a single service time;
	// each operation's service time is drawn uniformly from
	// [service*(1-jitter), service*(1+jitter)]. Zero disables jitter.
	jitter float64
	// busyUntil is the virtual time at which the server becomes free.
	busyUntil Time
	// prioBusyUntil serializes priority (control) operations among
	// themselves; see SubmitPriority.
	prioBusyUntil Time
	// served counts operations completed.
	served uint64
	// name identifies the station in diagnostics.
	name string

	// bulkDone and prioDone hold the done callbacks of in-flight
	// operations, one FIFO per completion class; completeBulk and
	// completePrio are the corresponding bound completion methods,
	// created once at construction.
	bulkDone     callbackFIFO
	prioDone     callbackFIFO
	completeBulk func()
	completePrio func()
}

// NewStation creates a station served at rate opsPerSec with the given
// fractional jitter (0 <= jitter < 1).
func NewStation(k *Kernel, name string, opsPerSec float64, jitter float64) (*Station, error) {
	if opsPerSec <= 0 {
		return nil, fmt.Errorf("sim: station %q: rate must be positive, got %v", name, opsPerSec)
	}
	if jitter < 0 || jitter >= 1 {
		return nil, fmt.Errorf("sim: station %q: jitter must be in [0,1), got %v", name, jitter)
	}
	s := &Station{
		k:       k,
		name:    name,
		service: Time(float64(Second) / opsPerSec),
		jitter:  jitter,
	}
	s.completeBulk = s.onBulkComplete
	s.completePrio = s.onPrioComplete
	return s, nil
}

// Name returns the station's diagnostic name.
func (s *Station) Name() string { return s.name }

// Rate returns the station's mean service rate in operations per second.
func (s *Station) Rate() float64 { return float64(Second) / float64(s.service) }

// SetRate changes the mean service rate. Pending (already scheduled)
// completions are unaffected.
func (s *Station) SetRate(opsPerSec float64) error {
	if opsPerSec <= 0 {
		return fmt.Errorf("sim: station %q: rate must be positive, got %v", s.name, opsPerSec)
	}
	s.service = Time(float64(Second) / opsPerSec)
	return nil
}

// Served returns the number of operations the station has completed.
func (s *Station) Served() uint64 { return s.served }

// QueueDelay returns how long a submission made now would wait before its
// service begins.
func (s *Station) QueueDelay() Time {
	if d := s.busyUntil - s.k.Now(); d > 0 {
		return d
	}
	return 0
}

// Submit enqueues one operation with service-time weight 1 and invokes done
// when it completes. It returns the completion time.
func (s *Station) Submit(done func()) Time {
	return s.SubmitWeighted(1, done)
}

// SubmitPriority processes one small operation ahead of the bulk FIFO
// queue while still charging its service time to the station's capacity.
// It models NIC arbitration across queue pairs: a tiny control verb (an
// atomic, an 8-byte write) is scheduled within its own service time plus
// any earlier priority work, instead of waiting behind every queued bulk
// transfer — but the processing time it consumes still delays bulk work.
func (s *Station) SubmitPriority(weight float64, done func()) Time {
	if weight < 0 {
		weight = 0
	}
	svc := Time(float64(s.service) * weight)
	if s.jitter > 0 && svc > 0 {
		f := 1 + s.jitter*(2*s.k.Rand().Float64()-1)
		svc = Time(float64(svc) * f)
	}
	// Charge the capacity: bulk work behind us is pushed back.
	if s.busyUntil < s.k.Now() {
		s.busyUntil = s.k.Now()
	}
	s.busyUntil += svc
	// Complete after our own service time, serialized only with earlier
	// priority operations.
	start := s.k.Now()
	if s.prioBusyUntil > start {
		start = s.prioBusyUntil
	}
	completion := start + svc
	s.prioBusyUntil = completion
	s.prioDone.push(done)
	s.k.At(completion, s.completePrio)
	return completion
}

// SubmitWeighted enqueues one operation whose service time is weight times
// the station's per-op service time (e.g. a doorbell-batched verb may be
// cheaper than a full 4 KB transfer). done may be nil.
func (s *Station) SubmitWeighted(weight float64, done func()) Time {
	if weight < 0 {
		weight = 0
	}
	svc := Time(float64(s.service) * weight)
	if s.jitter > 0 && svc > 0 {
		f := 1 + s.jitter*(2*s.k.Rand().Float64()-1)
		svc = Time(float64(svc) * f)
	}
	start := s.k.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	completion := start + svc
	s.busyUntil = completion
	s.bulkDone.push(done)
	s.k.At(completion, s.completeBulk)
	return completion
}

func (s *Station) onBulkComplete() {
	done := s.bulkDone.pop()
	s.served++
	if done != nil {
		done()
	}
}

func (s *Station) onPrioComplete() {
	done := s.prioDone.pop()
	s.served++
	if done != nil {
		done()
	}
}

// callbackFIFO is a queue of completion callbacks backed by a reusable
// slice; pop compacts lazily so steady-state traffic stops allocating
// once the buffer has grown to the high-water mark.
type callbackFIFO struct {
	fns  []func()
	head int
}

func (q *callbackFIFO) push(fn func()) { q.fns = append(q.fns, fn) }

func (q *callbackFIFO) pop() func() {
	fn := q.fns[q.head]
	q.fns[q.head] = nil
	q.head++
	if q.head >= len(q.fns) {
		q.fns = q.fns[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.fns) {
		n := copy(q.fns, q.fns[q.head:])
		q.fns = q.fns[:n]
		q.head = 0
	}
	return fn
}
