package sim

import "fmt"

// noTag marks a completion entry that carries a callback instead of a
// dispatch tag.
const noTag = ^uint32(0)

// Station models a single-server FIFO queueing station with a fixed mean
// service time and optional multiplicative jitter. It is the building block
// for NIC and CPU processing pipelines in the simulated fabric.
//
// Submissions are served in arrival order. The implementation keeps only a
// "busy until" horizon instead of an explicit queue: the completion time of
// a submission arriving at time a is max(a, busyUntil) + serviceTime, which
// is exactly FIFO single-server semantics with O(1) state and at most one
// kernel event per distinct completion instant.
//
// Completion callbacks are not captured in per-operation closures.
// Within each class (bulk, priority) completions happen in submission
// order — the class's busy horizon is monotone and the kernel breaks
// same-instant ties by scheduling order — so each class keeps a FIFO of
// pending completion entries and schedules one pre-bound method per
// distinct completion time. When several submissions of one class land on
// the same completion instant (weight-zero verbs, coarse service times),
// they coalesce onto a single wakeup that drains every due entry, instead
// of one kernel event each. Submitting an operation therefore allocates
// nothing beyond the kernel's pooled event.
//
// Instead of a callback, a submission may carry a 32-bit dispatch tag
// (SubmitTagged / SubmitPriorityTagged): on completion the station calls
// the dispatch function installed with SetDispatch. Tags let a fabric
// encode (queue-pair, stage) pairs as values and resolve them through one
// bound function per node, rather than holding per-object completion
// closures for every stage of every queue pair.
type Station struct {
	k *Kernel
	// service is the mean service time per operation.
	service Time
	// jitter is the maximum fractional deviation of a single service time;
	// each operation's service time is drawn uniformly from
	// [service*(1-jitter), service*(1+jitter)]. Zero disables jitter.
	jitter float64
	// busyUntil is the virtual time at which the server becomes free.
	busyUntil Time
	// prioBusyUntil serializes priority (control) operations among
	// themselves; see SubmitPriority.
	prioBusyUntil Time
	// served counts operations completed.
	served uint64
	// name identifies the station in diagnostics.
	name string

	// dispatch resolves tagged completions; see SetDispatch.
	dispatch func(tag uint32)

	// bulkDone and prioDone hold the pending completion entries, one FIFO
	// per completion class; completeBulk and completePrio are the
	// corresponding bound wakeup methods, created once at construction.
	// Per class, sched counts outstanding kernel wakeups and lastAt is the
	// latest scheduled wakeup instant: a submission completing exactly at
	// lastAt rides the already-scheduled wakeup.
	bulkDone     entryFIFO
	prioDone     entryFIFO
	bulkSched    int
	prioSched    int
	bulkLastAt   Time
	prioLastAt   Time
	completeBulk func()
	completePrio func()
}

// NewStation creates a station served at rate opsPerSec with the given
// fractional jitter (0 <= jitter < 1).
func NewStation(k *Kernel, name string, opsPerSec float64, jitter float64) (*Station, error) {
	if opsPerSec <= 0 {
		return nil, fmt.Errorf("sim: station %q: rate must be positive, got %v", name, opsPerSec)
	}
	if jitter < 0 || jitter >= 1 {
		return nil, fmt.Errorf("sim: station %q: jitter must be in [0,1), got %v", name, jitter)
	}
	s := &Station{
		k:       k,
		name:    name,
		service: Time(float64(Second) / opsPerSec),
		jitter:  jitter,
	}
	s.completeBulk = s.onBulkComplete
	s.completePrio = s.onPrioComplete
	return s, nil
}

// Name returns the station's diagnostic name.
func (s *Station) Name() string { return s.name }

// Rate returns the station's mean service rate in operations per second.
func (s *Station) Rate() float64 { return float64(Second) / float64(s.service) }

// SetRate changes the mean service rate. Pending (already scheduled)
// completions are unaffected.
func (s *Station) SetRate(opsPerSec float64) error {
	if opsPerSec <= 0 {
		return fmt.Errorf("sim: station %q: rate must be positive, got %v", s.name, opsPerSec)
	}
	s.service = Time(float64(Second) / opsPerSec)
	return nil
}

// SetDispatch installs the resolver for tagged completions. It must be set
// before the first SubmitTagged/SubmitPriorityTagged and not changed while
// tagged operations are in flight.
func (s *Station) SetDispatch(fn func(tag uint32)) { s.dispatch = fn }

// Served returns the number of operations the station has completed.
func (s *Station) Served() uint64 { return s.served }

// QueueDelay returns how long a submission made now would wait before its
// service begins.
func (s *Station) QueueDelay() Time {
	if d := s.busyUntil - s.k.Now(); d > 0 {
		return d
	}
	return 0
}

// Submit enqueues one operation with service-time weight 1 and invokes done
// when it completes. It returns the completion time.
func (s *Station) Submit(done func()) Time {
	return s.submitBulk(1, done, noTag)
}

// SubmitPriority processes one small operation ahead of the bulk FIFO
// queue while still charging its service time to the station's capacity.
// It models NIC arbitration across queue pairs: a tiny control verb (an
// atomic, an 8-byte write) is scheduled within its own service time plus
// any earlier priority work, instead of waiting behind every queued bulk
// transfer — but the processing time it consumes still delays bulk work.
func (s *Station) SubmitPriority(weight float64, done func()) Time {
	return s.submitPrio(weight, done, noTag)
}

// SubmitWeighted enqueues one operation whose service time is weight times
// the station's per-op service time (e.g. a doorbell-batched verb may be
// cheaper than a full 4 KB transfer). done may be nil.
func (s *Station) SubmitWeighted(weight float64, done func()) Time {
	return s.submitBulk(weight, done, noTag)
}

// SubmitTagged is SubmitWeighted with a dispatch tag instead of a
// callback: on completion the station calls the SetDispatch resolver with
// tag. The tag must not equal the reserved sentinel ^uint32(0).
func (s *Station) SubmitTagged(weight float64, tag uint32) Time {
	return s.submitBulk(weight, nil, tag)
}

// SubmitPriorityTagged is SubmitPriority with a dispatch tag.
func (s *Station) SubmitPriorityTagged(weight float64, tag uint32) Time {
	return s.submitPrio(weight, nil, tag)
}

func (s *Station) svcTime(weight float64) Time {
	if weight < 0 {
		weight = 0
	}
	svc := Time(float64(s.service) * weight)
	if s.jitter > 0 && svc > 0 {
		f := 1 + s.jitter*(2*s.k.Rand().Float64()-1)
		svc = Time(float64(svc) * f)
	}
	return svc
}

func (s *Station) submitBulk(weight float64, done func(), tag uint32) Time {
	svc := s.svcTime(weight)
	start := s.k.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	completion := start + svc
	s.busyUntil = completion
	s.bulkDone.push(entry{at: completion, fn: done, tag: tag})
	if s.bulkSched == 0 || completion != s.bulkLastAt {
		s.k.At(completion, s.completeBulk)
		s.bulkSched++
		s.bulkLastAt = completion
	}
	return completion
}

func (s *Station) submitPrio(weight float64, done func(), tag uint32) Time {
	svc := s.svcTime(weight)
	// Charge the capacity: bulk work behind us is pushed back.
	if s.busyUntil < s.k.Now() {
		s.busyUntil = s.k.Now()
	}
	s.busyUntil += svc
	// Complete after our own service time, serialized only with earlier
	// priority operations.
	start := s.k.Now()
	if s.prioBusyUntil > start {
		start = s.prioBusyUntil
	}
	completion := start + svc
	s.prioBusyUntil = completion
	s.prioDone.push(entry{at: completion, fn: done, tag: tag})
	if s.prioSched == 0 || completion != s.prioLastAt {
		s.k.At(completion, s.completePrio)
		s.prioSched++
		s.prioLastAt = completion
	}
	return completion
}

// onBulkComplete is one bulk-class wakeup: it drains every entry due at or
// before the current instant. The due count is captured before the first
// callback runs, so entries pushed by a callback at the same instant keep
// their own (later-scheduled) wakeup and fire in submission order, exactly
// as the unbatched kernel would.
func (s *Station) onBulkComplete() {
	s.bulkSched--
	now := s.k.Now()
	for n := s.bulkDone.dueCount(now); n > 0; n-- {
		e := s.bulkDone.pop()
		s.served++
		if e.tag != noTag {
			s.dispatch(e.tag)
		} else if e.fn != nil {
			e.fn()
		}
	}
}

func (s *Station) onPrioComplete() {
	s.prioSched--
	now := s.k.Now()
	for n := s.prioDone.dueCount(now); n > 0; n-- {
		e := s.prioDone.pop()
		s.served++
		if e.tag != noTag {
			s.dispatch(e.tag)
		} else if e.fn != nil {
			e.fn()
		}
	}
}

// entry is one pending completion: the instant it is due and either a
// callback or a dispatch tag (tag == noTag means callback form).
type entry struct {
	at  Time
	fn  func()
	tag uint32
}

// entryFIFO is a queue of completion entries backed by a reusable slice;
// pop compacts lazily so steady-state traffic stops allocating once the
// buffer has grown to the high-water mark.
type entryFIFO struct {
	es   []entry
	head int
}

func (q *entryFIFO) push(e entry) { q.es = append(q.es, e) }

// dueCount returns how many consecutive entries from the head are due at
// or before now.
func (q *entryFIFO) dueCount(now Time) int {
	n := 0
	for i := q.head; i < len(q.es) && q.es[i].at <= now; i++ {
		n++
	}
	return n
}

func (q *entryFIFO) pop() entry {
	e := q.es[q.head]
	q.es[q.head] = entry{}
	q.head++
	if q.head >= len(q.es) {
		q.es = q.es[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.es) {
		n := copy(q.es, q.es[q.head:])
		q.es = q.es[:n]
		q.head = 0
	}
	return e
}
