package sim

import (
	"math/rand"
	"testing"
)

// TestStationBatchedMatchesReference is a 300-seed differential for the
// batched completion path: random submission schedules (both classes,
// random positive weights, callback and tagged forms, and submissions
// made from inside completion callbacks) must complete at exactly the
// instants and in exactly the order of the analytic FIFO single-server
// model the pre-batching station implemented one kernel event at a time.
// Positive weights keep each class's completion instants strictly
// increasing, where batched and unbatched semantics provably coincide;
// the zero-weight coalescing path has its own semantics test below.
func TestStationBatchedMatchesReference(t *testing.T) {
	const service = Time(Microsecond) // 1e6 ops/sec
	for seed := int64(1); seed <= 300; seed++ {
		k := New(seed)
		st, err := NewStation(k, "nic", 1e6, 0)
		if err != nil {
			t.Fatal(err)
		}

		type completion struct {
			id int
			at Time
		}
		var got, want []completion
		var shadowBulk, shadowPrio Time
		rng := rand.New(rand.NewSource(seed * 7919))
		nextID := 0

		st.SetDispatch(func(tag uint32) {
			got = append(got, completion{id: int(tag), at: k.Now()})
		})

		// submit issues one operation and records the model's predicted
		// completion; chain ops resubmit from inside their callback.
		var submit func(depth int)
		submit = func(depth int) {
			id := nextID
			nextID++
			w := float64(1+rng.Intn(4)) / 2 // 0.5, 1, 1.5, 2
			svc := Time(float64(service) * w)
			now := k.Now()
			prio := rng.Intn(3) == 0
			var at Time
			if prio {
				start := now
				if shadowPrio > start {
					start = shadowPrio
				}
				at = start + svc
				shadowPrio = at
				if shadowBulk < now {
					shadowBulk = now
				}
				shadowBulk += svc
			} else {
				start := now
				if shadowBulk > start {
					start = shadowBulk
				}
				at = start + svc
				shadowBulk = at
			}
			want = append(want, completion{id: id, at: at})

			chain := depth < 2 && rng.Intn(4) == 0
			if rng.Intn(2) == 0 {
				// Tagged form; chained resubmission needs a callback, so
				// tags only carry leaf operations.
				if chain {
					fn := func() {
						got = append(got, completion{id: id, at: k.Now()})
						submit(depth + 1)
					}
					if prio {
						st.SubmitPriority(w, fn)
					} else {
						st.SubmitWeighted(w, fn)
					}
					return
				}
				if prio {
					st.SubmitPriorityTagged(w, uint32(id))
				} else {
					st.SubmitTagged(w, uint32(id))
				}
				return
			}
			fn := func() {
				got = append(got, completion{id: id, at: k.Now()})
				if chain {
					submit(depth + 1)
				}
			}
			if prio {
				st.SubmitPriority(w, fn)
			} else {
				st.SubmitWeighted(w, fn)
			}
		}

		for i := 0; i < 40; i++ {
			at := Time(rng.Intn(60)) * service / 2
			n := 1 + rng.Intn(4)
			k.At(at, func() {
				for j := 0; j < n; j++ {
					submit(0)
				}
			})
		}
		k.Run()

		// want is appended in submission order per the model; the station
		// must complete in (at, submission) lexicographic order across the
		// two independent class FIFOs (with positive weights every entry
		// gets its own wakeup, scheduled at submission time, so kernel
		// same-instant tie-breaking is submission order).
		order := make([]int, len(want))
		for i := range order {
			order[i] = i
		}
		// Stable insertion sort by predicted completion instant keeps
		// submission order among equal instants.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && want[order[j-1]].at > want[order[j]].at; j-- {
				order[j-1], order[j] = order[j], order[j-1]
			}
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d completions, want %d", seed, len(got), len(want))
		}
		for i, oi := range order {
			w := want[oi]
			if got[i].id != w.id || got[i].at != w.at {
				t.Fatalf("seed %d: completion %d = (id=%d, at=%v), model wants (id=%d, at=%v)",
					seed, i, got[i].id, got[i].at, w.id, w.at)
			}
		}
		if st.Served() != uint64(len(want)) {
			t.Fatalf("seed %d: Served() = %d, want %d", seed, st.Served(), len(want))
		}
	}
}

// TestStationSameInstantCoalescing pins the batched drain semantics:
// zero-weight submissions landing on one completion instant share a
// single kernel wakeup, drain in submission order, and an operation
// submitted from inside the drain at the same instant fires on its own
// later wakeup — after every operation that was already due.
func TestStationSameInstantCoalescing(t *testing.T) {
	k := New(1)
	st, err := NewStation(k, "nic", 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	st.SetDispatch(func(tag uint32) { order = append(order, int(tag)) })
	var before uint64
	k.At(10*Microsecond, func() {
		st.SubmitTagged(0, 0)
		st.SubmitWeighted(0, func() {
			order = append(order, 1)
			// Submitted mid-drain at the same instant: must not jump the
			// queue ahead of already-due entry 2.
			st.SubmitWeighted(0, func() { order = append(order, 3) })
		})
		st.SubmitTagged(0, 2)
		before = k.Executed()
	})
	k.Run()
	if want := []int{0, 1, 2, 3}; len(order) != len(want) {
		t.Fatalf("completions %v, want %v", order, want)
	} else {
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("completions %v, want %v", order, want)
			}
		}
	}
	// The three pre-drain submissions coalesced onto one wakeup; the
	// mid-drain submission scheduled exactly one more.
	if got := k.Executed() - before; got != 2 {
		t.Errorf("drain used %d kernel events, want 2 (coalesced wakeup + mid-drain wakeup)", got)
	}
	if st.Served() != 4 {
		t.Errorf("Served() = %d, want 4", st.Served())
	}
}
