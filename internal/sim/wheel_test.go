package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// refKernel is the pre-timing-wheel event queue: a plain binary min-heap
// keyed on (at, seq). It is kept verbatim as the reference model for the
// differential tests below and as the baseline for the kernel benchmarks:
// the timing wheel must deliver events in exactly this order.
type refKernel struct {
	now     Time
	heap    []*refEvent
	seq     uint64
	stopped bool
}

type refEvent struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
}

type refTimer struct {
	k  *refKernel
	ev *refEvent
}

func (t *refTimer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.fn == nil {
		return false
	}
	t.ev.canceled = true
	t.ev.fn = nil
	return true
}

func newRefKernel() *refKernel { return &refKernel{} }

func (k *refKernel) Now() Time { return k.now }

func (k *refKernel) Schedule(d Time, fn func()) *refTimer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

func (k *refKernel) At(t Time, fn func()) *refTimer {
	if t < k.now {
		t = k.now
	}
	ev := &refEvent{at: t, seq: k.seq, fn: fn}
	k.seq++
	k.push(ev)
	return &refTimer{k: k, ev: ev}
}

func (k *refKernel) Step() bool {
	for {
		if k.stopped || len(k.heap) == 0 {
			return false
		}
		ev := k.pop()
		if ev.canceled {
			continue
		}
		if ev.at > k.now {
			k.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
}

func (k *refKernel) Run() {
	for k.Step() {
	}
}

func (k *refKernel) RunUntil(t Time) {
	for !k.stopped {
		ev := k.peekEv()
		if ev == nil || ev.at > t {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

func (k *refKernel) peekEv() *refEvent {
	for len(k.heap) > 0 {
		if k.heap[0].canceled {
			k.pop()
			continue
		}
		return k.heap[0]
	}
	return nil
}

func (ev *refEvent) less(other *refEvent) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

func (k *refKernel) push(ev *refEvent) {
	k.heap = append(k.heap, ev)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.heap[i].less(k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

func (k *refKernel) pop() *refEvent {
	n := len(k.heap)
	top := k.heap[0]
	k.heap[0] = k.heap[n-1]
	k.heap[n-1] = nil
	k.heap = k.heap[:n-1]
	n--
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && k.heap[right].less(k.heap[left]) {
			smallest = right
		}
		if !k.heap[smallest].less(k.heap[i]) {
			break
		}
		k.heap[i], k.heap[smallest] = k.heap[smallest], k.heap[i]
		i = smallest
	}
	return top
}

// traceKernel abstracts the two engines so one randomized program can
// drive both.
type traceKernel interface {
	Now() Time
	Schedule(d Time, fn func()) func() bool // returns the timer's Cancel
	RunUntil(t Time)
	Run()
}

type wheelAdapter struct{ k *Kernel }

func (a wheelAdapter) Now() Time { return a.k.Now() }
func (a wheelAdapter) Schedule(d Time, fn func()) func() bool {
	t := a.k.Schedule(d, fn)
	return t.Cancel
}
func (a wheelAdapter) RunUntil(t Time) { a.k.RunUntil(t) }
func (a wheelAdapter) Run()            { a.k.Run() }

type refAdapter struct{ k *refKernel }

func (a refAdapter) Now() Time { return a.k.Now() }
func (a refAdapter) Schedule(d Time, fn func()) func() bool {
	t := a.k.Schedule(d, fn)
	return t.Cancel
}
func (a refAdapter) RunUntil(t Time) { a.k.RunUntil(t) }
func (a refAdapter) Run()            { a.k.Run() }

type fireRec struct {
	id int
	at Time
}

// traceDelays mixes the time scales the simulator actually uses: control
// ops (sub-µs), propagation (µs), service times (tens of µs), periods
// (ms), and far-future horizons that exercise the overflow heap.
var traceDelays = []Time{
	0, 1, 3, 700,
	Microsecond, 2 * Microsecond, 17 * Microsecond,
	Millisecond / 2, Millisecond, 7 * Millisecond,
	Second / 4, Second, 19 * Second, 120 * Second,
}

// runTrace executes one randomized schedule/cancel/run-until program
// against k and returns the fired (id, time) log. The same seed always
// produces the same program, so the log from the wheel kernel and from
// the reference heap must match exactly.
func runTrace(k traceKernel, seed int64) []fireRec {
	rng := rand.New(rand.NewSource(seed))
	var log []fireRec
	var cancels []func() bool
	nextID := 0

	// A dense 1 s tick chain spanning ~40 s keeps wheel slots occupied
	// all the way across the ~17 s overflow horizon, so the far-future
	// events scheduled below (19 s, 120 s delays) still coexist with
	// occupied slots when the cursor reaches them — the interaction
	// between the overflow heap and a populated slot is exercised on
	// every seed, not just when the wheel happens to drain empty first.
	ticks := 0
	var tick func()
	tick = func() {
		log = append(log, fireRec{id: -1 - ticks, at: k.Now()})
		if ticks < 40 {
			ticks++
			k.Schedule(Second, tick)
		}
	}
	k.Schedule(Second, tick)

	var schedule func(depth int)
	schedule = func(depth int) {
		id := nextID
		nextID++
		d := traceDelays[rng.Intn(len(traceDelays))]
		if rng.Intn(4) == 0 {
			d += Time(rng.Intn(5000))
		}
		cancels = append(cancels, k.Schedule(d, func() {
			log = append(log, fireRec{id: id, at: k.Now()})
			if depth < 4 {
				for n := rng.Intn(3); n > 0; n-- {
					schedule(depth + 1)
				}
			}
			if len(cancels) > 0 && rng.Intn(3) == 0 {
				cancels[rng.Intn(len(cancels))]()
			}
		}))
	}

	for phase := 0; phase < 4; phase++ {
		for i := 0; i < 40; i++ {
			schedule(0)
		}
		for i := 0; i < 5; i++ {
			cancels[rng.Intn(len(cancels))]()
		}
		k.RunUntil(k.Now() + traceDelays[rng.Intn(len(traceDelays))])
	}
	k.Run()
	return log
}

// TestWheelMatchesReferenceHeap replays randomized traces on the timing
// wheel and on the old binary heap and requires identical delivery.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 300; seed++ {
		got := runTrace(wheelAdapter{New(seed)}, seed)
		want := runTrace(refAdapter{newRefKernel()}, seed)
		if err := compareTraces(got, want); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// overflowSlotTrace pins the interleaving the randomized programs
// almost never produced: an event parked in the overflow heap whose
// time falls *inside* the span of an occupied wheel slot — past the
// slot's start — when the cursor reaches it. A self-rescheduling 1 s
// tick keeps the wheel continuously occupied across the ~17 s horizon;
// once the far-future instant is within a second, a second event is
// landed 300 ns after the overflow event, in the same level-0 bucket.
// Draining that bucket's slot must not let the later event overtake the
// overflow event.
func overflowSlotTrace(k traceKernel) []fireRec {
	const base = Time(1) << 35 // ~34 s: well past the wheel horizon, slot-aligned at every level
	var log []fireRec
	k.Schedule(base+100, func() { log = append(log, fireRec{id: 1, at: k.Now()}) })
	var tick func()
	tick = func() {
		log = append(log, fireRec{id: 0, at: k.Now()})
		if k.Now()+Second < base {
			k.Schedule(Second, tick)
			return
		}
		k.Schedule(base+400-k.Now(), func() { log = append(log, fireRec{id: 2, at: k.Now()}) })
	}
	k.Schedule(Second, tick)
	k.Run()
	return log
}

// TestWheelOverflowInsideOccupiedSlot is the regression test for the
// overflow-vs-occupied-slot ordering bug: advance() must consult the
// overflow heap on every cursor move, not only when the overflow
// minimum is at or before the earliest occupied slot's start.
func TestWheelOverflowInsideOccupiedSlot(t *testing.T) {
	got := overflowSlotTrace(wheelAdapter{New(1)})
	want := overflowSlotTrace(refAdapter{newRefKernel()})
	if err := compareTraces(got, want); err != nil {
		t.Fatal(err)
	}
	// Belt and braces, independent of the reference engine: the overflow
	// event (id 1, base+100) must fire before the wheel event (id 2,
	// base+400).
	const base = Time(1) << 35
	n := len(got)
	if n < 2 || got[n-2] != (fireRec{id: 1, at: base + 100}) || got[n-1] != (fireRec{id: 2, at: base + 400}) {
		t.Fatalf("overflow event overtaken: trace tail %v", got[max(0, n-3):])
	}
}

func compareTraces(got, want []fireRec) error {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return fmt.Errorf("fire %d: wheel got id=%d at=%v, heap expected id=%d at=%v",
				i, got[i].id, got[i].at, want[i].id, want[i].at)
		}
	}
	if len(got) != len(want) {
		return fmt.Errorf("wheel fired %d events, heap fired %d", len(got), len(want))
	}
	return nil
}
