package sim

import (
	"encoding/json"
	"math"
	"os"
	"sort"
	"testing"
	"time"
)

// The benchmarks drive both engines (timing wheel and the reference
// binary heap kept in wheel_test.go) with the same self-sustaining event
// churn, shaped like the simulator's steady state: a few hundred live
// chains rescheduling themselves at the delay scales the RDMA model
// uses, with a sprinkle of schedule-then-cancel churn (flow-control
// timeouts that never fire). ns/op is per executed event, so
// events-per-second is 1e9 / (ns/op).

// benchDelays matches traceDelays' spread but weights the short end the
// way the simulator does: most events are sub-100µs hops, a few are
// period-scale, and a couple land in the overflow horizon.
var benchDelays = [16]Time{
	1, 3, 700, 900,
	Microsecond, 2 * Microsecond, 5 * Microsecond, 17 * Microsecond,
	40 * Microsecond, 80 * Microsecond, 120 * Microsecond, 300 * Microsecond,
	Millisecond, 4 * Millisecond, Second / 4, 19 * Second,
}

// benchFlows is how many self-rescheduling chains stay live at once —
// the queue's steady-state depth. A default-scale cluster run peaks near
// 700 pending events; full-scale sweeps run deeper.
const benchFlows = 1024

// The churn drivers below are intentionally duplicated per engine rather
// than shared through traceKernel: the adapter's Schedule returns a
// bound-method closure, which allocates per event and would charge both
// engines identical overhead the real kernel API does not have. Each
// engine is driven through its native schedule/cancel path.

func benchRngNext(rng *uint64) uint64 {
	*rng ^= *rng << 13
	*rng ^= *rng >> 7
	*rng ^= *rng << 17
	return *rng
}

// wheelChurn executes exactly n events on the timing-wheel kernel.
// Deterministic: delays come from a fixed xorshift stream, so both
// engines see the identical program.
func wheelChurn(k *Kernel, n int) {
	rng := uint64(0x9e3779b97f4a7c15)
	executed := 0
	var fire func()
	fire = func() {
		executed++
		if executed > n {
			return // let the chain die; Run drains the stragglers
		}
		if executed&15 == 0 {
			t := k.Schedule(benchDelays[benchRngNext(&rng)&15]+1, nop)
			t.Cancel()
		}
		k.Schedule(benchDelays[benchRngNext(&rng)&15], fire)
	}
	for i := 0; i < benchFlows; i++ {
		k.Schedule(benchDelays[benchRngNext(&rng)&15], fire)
	}
	k.Run()
}

// refChurn is wheelChurn against the reference binary heap.
func refChurn(k *refKernel, n int) {
	rng := uint64(0x9e3779b97f4a7c15)
	executed := 0
	var fire func()
	fire = func() {
		executed++
		if executed > n {
			return
		}
		if executed&15 == 0 {
			t := k.Schedule(benchDelays[benchRngNext(&rng)&15]+1, nop)
			t.Cancel()
		}
		k.Schedule(benchDelays[benchRngNext(&rng)&15], fire)
	}
	for i := 0; i < benchFlows; i++ {
		k.Schedule(benchDelays[benchRngNext(&rng)&15], fire)
	}
	k.Run()
}

// BenchmarkKernelEvents measures the timing-wheel kernel. This is the
// figure CI tracks: events/sec = 1e9 / (ns/op).
func BenchmarkKernelEvents(b *testing.B) {
	b.ReportAllocs()
	wheelChurn(New(1), b.N)
}

// BenchmarkKernelEventsHeapBaseline measures the retired binary heap on
// the identical churn; the wheel's speedup is this bench's ns/op over
// BenchmarkKernelEvents'.
func BenchmarkKernelEventsHeapBaseline(b *testing.B) {
	b.ReportAllocs()
	refChurn(newRefKernel(), b.N)
}

// installOrderProbe arms the kernel with the sanitizer's (at, seq)
// monotonicity check, exactly as cluster.armEventOrder wires it: state
// lives in the closure and the violation branch (never taken here)
// builds no arguments.
func installOrderProbe(k *Kernel) {
	var seen bool
	var lastAt Time
	var lastSeq uint64
	k.SetEventCheck(func(at Time, seq uint64) {
		if seen && (at < lastAt || (at == lastAt && seq <= lastSeq)) {
			panic("kernel event order violated")
		}
		seen = true
		lastAt, lastSeq = at, seq
	})
}

// BenchmarkKernelEventsSanitized measures the wheel with the sanitizer's
// monotonicity probe installed — the only sanitizer hook on the kernel
// hot path. The delta against BenchmarkKernelEvents is the full cost of
// sanitizing the kernel; with sanitizing off the kernel pays a single
// nil comparison per event instead (TestSanitizerHotPathNoAlloc pins
// that neither path allocates).
func BenchmarkKernelEventsSanitized(b *testing.B) {
	b.ReportAllocs()
	k := New(1)
	installOrderProbe(k)
	wheelChurn(k, b.N)
}

// TestSanitizerHotPathNoAlloc proves the sanitizer costs no allocations
// on the event hot path: the schedule+fire cycle allocates nothing in
// steady state whether the probe is absent (sanitize off — one nil
// comparison) or installed and clean (the violation branch never builds
// its arguments).
func TestSanitizerHotPathNoAlloc(t *testing.T) {
	measure := func(probe bool) float64 {
		k := New(1)
		if probe {
			installOrderProbe(k)
		}
		// Warm the freelist so steady state is measured.
		k.Schedule(1, nop)
		k.Run()
		return testing.AllocsPerRun(1000, func() {
			k.Schedule(1, nop)
			k.Step()
		})
	}
	if got := measure(false); got != 0 {
		t.Errorf("sanitize-off schedule+fire allocates %.1f per event, want 0", got)
	}
	if got := measure(true); got != 0 {
		t.Errorf("sanitized schedule+fire allocates %.1f per event, want 0", got)
	}
}

// BenchmarkKernelScheduleCancel isolates the schedule+cancel lifecycle:
// no callbacks ever fire. Cancelled events are reaped lazily on pop, so
// the loop periodically runs the kernel past the longest delay to cycle
// them back through the freelist (that reap cost is part of the figure).
func BenchmarkKernelScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	k := New(1)
	for i := 0; i < b.N; i++ {
		t := k.Schedule(benchDelays[i&15], nop)
		t.Cancel()
		if i&1023 == 1023 {
			k.RunUntil(k.Now() + 20*Second)
		}
	}
}

func nop() {}

// TestWriteKernelBenchJSON is the CI hook behind the BENCH_kernel.json
// artifact: when BENCH_KERNEL_JSON names a path, it times a fixed-size
// churn on both engines and writes the events-per-second comparison.
// Without the env var it skips, so normal `go test` runs are unaffected.
func TestWriteKernelBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_KERNEL_JSON")
	if path == "" {
		t.Skip("set BENCH_KERNEL_JSON=<path> to write the kernel benchmark artifact")
	}
	const n = 2_000_000
	// Warm-up pass so neither engine pays first-run costs in the timed run.
	wheelChurn(New(1), n/10)
	refChurn(newRefKernel(), n/10)
	// The CI gate compares the wheel/heap ratio against a committed
	// baseline, so the measurement must be robust to shared-runner
	// noise: interleave the engines (a slow phase of the host then hits
	// both sides of a rep about equally), take each rep's ratio, and
	// report the median ratio with each engine's peak throughput.
	const reps = 5
	var ratios, sanRatios []float64
	var wheel, heap, sanitized float64
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		wheelChurn(New(1), n)
		w := float64(n) / time.Since(start).Seconds()
		start = time.Now()
		refChurn(newRefKernel(), n)
		h := float64(n) / time.Since(start).Seconds()
		// The sanitized wheel interleaves with the plain one for the same
		// noise-robustness; its ratio to the plain wheel is the probe's
		// overhead (sanitize OFF is the plain wheel itself — the off
		// path's only cost is Step's nil comparison).
		sk := New(1)
		installOrderProbe(sk)
		start = time.Now()
		wheelChurn(sk, n)
		s := float64(n) / time.Since(start).Seconds()
		wheel = math.Max(wheel, w)
		heap = math.Max(heap, h)
		sanitized = math.Max(sanitized, s)
		ratios = append(ratios, w/h)
		sanRatios = append(sanRatios, w/s)
	}
	sort.Float64s(ratios)
	sort.Float64s(sanRatios)
	speedup := ratios[reps/2]
	out := struct {
		Events                int     `json:"events"`
		WheelEventsPerSec     float64 `json:"wheel_events_per_sec"`
		HeapEventsPerSec      float64 `json:"heap_events_per_sec"`
		Speedup               float64 `json:"speedup"`
		SanitizedEventsPerSec float64 `json:"sanitized_events_per_sec"`
		SanitizeOverhead      float64 `json:"sanitize_overhead"`
	}{n, wheel, heap, speedup, sanitized, sanRatios[reps/2]}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wheel %.2fM ev/s, heap %.2fM ev/s, speedup %.2fx; sanitized %.2fM ev/s (%.3fx overhead)",
		wheel/1e6, heap/1e6, out.Speedup, sanitized/1e6, out.SanitizeOverhead)
}
