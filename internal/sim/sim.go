// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue ordered by (time, sequence), cancellable
// timers, periodic tickers, and a seeded random source.
//
// All Haechi components are driven by this kernel, which makes experiment
// runs reproducible and decoupled from wall-clock time. The kernel is
// single-threaded by design: every event handler runs to completion before
// the next event fires, so components need no internal locking.
//
// The event queue is a hierarchical timing wheel with an intrusive event
// freelist (see wheel.go and DESIGN.md §8): pushes and pops are O(1) in
// the common case and Schedule/At/Cancel are allocation-free in steady
// state, while the delivery order remains exactly the (at, seq) total
// order of the original binary heap.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It doubles as a duration; arithmetic on Time values is plain
// integer arithmetic.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds converts a floating-point number of seconds to virtual time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is a scheduled callback. Events are ordered by time, with the
// scheduling sequence number breaking ties so that events scheduled earlier
// for the same instant run first (deterministic FIFO semantics).
//
// Events are pooled: after firing (or after a cancelled event is reaped)
// the event returns to the kernel's freelist and gen is bumped, which
// invalidates every Timer handle still referring to it. next links the
// event into a wheel slot or the freelist.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	next     *event
	gen      uint32
	canceled bool
}

// Timer is a handle to a scheduled event that can be canceled. It is a
// value: the zero Timer is valid and inert, and a handle outlives its
// event — once the event has fired and been recycled (and possibly reused
// for a later scheduling) the generation check makes the old handle a
// no-op, so holding a Timer past its firing is always safe.
type Timer struct {
	k   *Kernel
	ev  *event
	gen uint32
}

// Cancel prevents the timer's callback from running. Canceling an already
// fired or canceled timer is a no-op. Cancel reports whether the callback
// was prevented from running.
func (t Timer) Cancel() bool {
	if t.ev == nil || t.gen != t.ev.gen || t.ev.canceled || t.ev.fn == nil {
		return false
	}
	t.ev.canceled = true
	t.ev.fn = nil // release the closure
	if t.k != nil {
		t.k.cancelled++
		t.k.live--
	}
	return true
}

// At reports the virtual time the timer is scheduled for; zero once the
// timer has fired and its event has been recycled.
func (t Timer) At() Time {
	if t.ev == nil || t.gen != t.ev.gen {
		return 0
	}
	return t.ev.at
}

// Kernel is the discrete-event simulation engine. The zero value is not
// usable; construct one with New.
type Kernel struct {
	now     Time
	q       timerWheel
	seq     uint64
	stopped bool
	rng     *rand.Rand
	// live counts scheduled events that have neither fired nor been
	// cancelled; it backs Pending.
	live int
	// executed counts events that have fired, for diagnostics.
	executed uint64
	// cancelled counts timers cancelled before firing, for diagnostics.
	cancelled uint64
	// eventCheck, when set, observes every fired event's (at, seq) just
	// before its callback runs. It is the sanitizer's monotonicity probe
	// (internal/sanitize): the wheel must pop events in strictly
	// increasing lexicographic (at, seq) order. Nil in production runs —
	// Step pays one pointer comparison.
	eventCheck func(at Time, seq uint64)
}

// New returns a kernel whose random source is seeded with seed. The same
// seed always yields the same simulation outcome.
func New(seed int64) *Kernel {
	return &Kernel{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Executed returns the number of events that have fired so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Cancelled returns the number of timers cancelled before firing.
func (k *Kernel) Cancelled() uint64 { return k.cancelled }

// Pending returns the number of events still scheduled to fire. Cancelled
// events awaiting reaping are not counted.
func (k *Kernel) Pending() int { return k.live }

// Schedule runs fn after delay d (>= 0). A negative delay is treated as
// zero. It returns a Timer that can cancel the callback.
func (k *Kernel) Schedule(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// At runs fn at absolute virtual time t. If t is in the past it runs at the
// current time (after already queued events for that instant).
func (k *Kernel) At(t Time, fn func()) Timer {
	if t < k.now {
		t = k.now
	}
	ev := k.q.alloc()
	ev.at = t
	ev.seq = k.seq
	ev.fn = fn
	k.seq++
	k.q.push(ev)
	k.live++
	return Timer{k: k, ev: ev, gen: ev.gen}
}

// Ticker repeatedly invokes a callback at a fixed interval until stopped.
type Ticker struct {
	k        *Kernel
	interval Time
	fn       func()
	timer    Timer
	stopped  bool
}

// Every schedules fn to run first after start, then every interval.
// Interval must be positive.
func (k *Kernel) Every(start, interval Time, fn func()) (*Ticker, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("sim: ticker interval must be positive, got %v", interval)
	}
	t := &Ticker{k: k, interval: interval, fn: fn}
	t.timer = k.Schedule(start, t.tick)
	return t, nil
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped the ticker
		t.timer = t.k.Schedule(t.interval, t.tick)
	}
}

// Stop prevents all future ticks.
func (t *Ticker) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.timer.Cancel()
}

// SetEventCheck installs (or clears, with nil) the per-event observer
// called by Step with each fired event's (at, seq). The observer must
// not schedule events or mutate kernel state.
func (k *Kernel) SetEventCheck(fn func(at Time, seq uint64)) { k.eventCheck = fn }

// Step fires the next event. It reports false when the queue is empty or
// the kernel has been stopped.
func (k *Kernel) Step() bool {
	for {
		if k.stopped {
			return false
		}
		ev := k.q.popMin()
		if ev == nil {
			return false
		}
		if ev.canceled {
			k.q.recycle(ev)
			continue
		}
		if ev.at > k.now {
			k.now = ev.at
		}
		if k.eventCheck != nil {
			k.eventCheck(ev.at, ev.seq)
		}
		fn := ev.fn
		k.q.recycle(ev)
		k.live--
		k.executed++
		fn()
		return true
	}
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled for later instants remain queued.
//
// If Stop is called (by an event handler, or before RunUntil), execution
// halts where it stands: remaining events — including ones due at or
// before t — stay queued and never fire, and the clock is NOT advanced
// to t; it stays at the last fired event's time. A later RunUntil on a
// stopped kernel is a no-op. The shard coordinator
// (internal/sim/shard.Group) relies on exactly these semantics to keep
// a stop deterministic across worker counts; see Group.RunUntil.
func (k *Kernel) RunUntil(t Time) {
	for !k.stopped {
		ev := k.peek()
		if ev == nil || ev.at > t {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// RunBefore executes events with timestamps strictly before t. Unlike
// RunUntil it neither fires events at exactly t nor advances the clock
// to t: the clock is left at the last fired event's time. It is the
// quantum step of the shard coordinator — a shard may safely execute
// everything below the synchronization horizon, but the horizon itself
// belongs to the next quantum.
func (k *Kernel) RunBefore(t Time) {
	for !k.stopped {
		ev := k.peek()
		if ev == nil || ev.at >= t {
			break
		}
		k.Step()
	}
}

// NextAt reports the timestamp of the earliest pending event. ok is
// false when the queue is empty (cancelled events awaiting reaping do
// not count). The shard coordinator uses it to compute the global
// lower bound across shards.
func (k *Kernel) NextAt() (at Time, ok bool) {
	ev := k.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Stop halts the simulation: no further events fire. Pending events remain
// queued but are never executed.
//
// Stop is single-kernel: under the shard coordinator, an event handler
// may only stop its own shard's kernel. The coordinator observes the
// stop at the next quantum barrier; peers complete the full current
// quantum (they exchange no state mid-quantum, so the outcome is
// identical at any worker count) and the group then halts with every
// remaining event unfired. See internal/sim/shard.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// peek returns the earliest non-canceled event without firing it, reaping
// canceled events along the way.
func (k *Kernel) peek() *event {
	for {
		ev := k.q.min()
		if ev == nil {
			return nil
		}
		if !ev.canceled {
			return ev
		}
		k.q.popMin()
		k.q.recycle(ev)
	}
}
