// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue ordered by (time, sequence), cancellable
// timers, periodic tickers, and a seeded random source.
//
// All Haechi components are driven by this kernel, which makes experiment
// runs reproducible and decoupled from wall-clock time. The kernel is
// single-threaded by design: every event handler runs to completion before
// the next event fires, so components need no internal locking.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It doubles as a duration; arithmetic on Time values is plain
// integer arithmetic.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds converts a floating-point number of seconds to virtual time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is a scheduled callback. Events are ordered by time, with the
// scheduling sequence number breaking ties so that events scheduled earlier
// for the same instant run first (deterministic FIFO semantics).
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
}

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct {
	k  *Kernel
	ev *event
}

// Cancel prevents the timer's callback from running. Canceling an already
// fired or canceled timer is a no-op. Cancel reports whether the callback
// was prevented from running.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.fn == nil {
		return false
	}
	t.ev.canceled = true
	t.ev.fn = nil // release the closure
	if t.k != nil {
		t.k.cancelled++
	}
	return true
}

// At reports the virtual time the timer is scheduled for.
func (t *Timer) At() Time {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// Kernel is the discrete-event simulation engine. The zero value is not
// usable; construct one with New.
type Kernel struct {
	now     Time
	heap    []*event
	seq     uint64
	stopped bool
	rng     *rand.Rand
	// executed counts events that have fired, for diagnostics.
	executed uint64
	// cancelled counts timers cancelled before firing, for diagnostics.
	cancelled uint64
}

// New returns a kernel whose random source is seeded with seed. The same
// seed always yields the same simulation outcome.
func New(seed int64) *Kernel {
	return &Kernel{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Executed returns the number of events that have fired so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Cancelled returns the number of timers cancelled before firing.
func (k *Kernel) Cancelled() uint64 { return k.cancelled }

// Pending returns the number of events still queued (including canceled
// events that have not yet been reaped).
func (k *Kernel) Pending() int { return len(k.heap) }

// Schedule runs fn after delay d (>= 0). A negative delay is treated as
// zero. It returns a Timer that can cancel the callback.
func (k *Kernel) Schedule(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// At runs fn at absolute virtual time t. If t is in the past it runs at the
// current time (after already queued events for that instant).
func (k *Kernel) At(t Time, fn func()) *Timer {
	if t < k.now {
		t = k.now
	}
	ev := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	k.push(ev)
	return &Timer{k: k, ev: ev}
}

// Ticker repeatedly invokes a callback at a fixed interval until stopped.
type Ticker struct {
	k        *Kernel
	interval Time
	fn       func()
	timer    *Timer
	stopped  bool
}

// Every schedules fn to run first after start, then every interval.
// Interval must be positive.
func (k *Kernel) Every(start, interval Time, fn func()) (*Ticker, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("sim: ticker interval must be positive, got %v", interval)
	}
	t := &Ticker{k: k, interval: interval, fn: fn}
	t.timer = k.Schedule(start, t.tick)
	return t, nil
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped the ticker
		t.timer = t.k.Schedule(t.interval, t.tick)
	}
}

// Stop prevents all future ticks.
func (t *Ticker) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.timer.Cancel()
}

// Step fires the next event. It reports false when the queue is empty or
// the kernel has been stopped.
func (k *Kernel) Step() bool {
	for {
		if k.stopped || len(k.heap) == 0 {
			return false
		}
		ev := k.pop()
		if ev.canceled {
			continue
		}
		if ev.at > k.now {
			k.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		k.executed++
		fn()
		return true
	}
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled for later instants remain queued.
func (k *Kernel) RunUntil(t Time) {
	for !k.stopped {
		ev := k.peek()
		if ev == nil || ev.at > t {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// Stop halts the simulation: no further events fire. Pending events remain
// queued but are never executed.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// peek returns the earliest non-canceled event without firing it, reaping
// canceled events along the way.
func (k *Kernel) peek() *event {
	for len(k.heap) > 0 {
		if k.heap[0].canceled {
			k.pop()
			continue
		}
		return k.heap[0]
	}
	return nil
}

// heap operations: a hand-rolled binary min-heap keyed on (at, seq). A
// manual implementation avoids the interface dispatch of container/heap on
// the hottest path in the simulator.

func (ev *event) less(other *event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

func (k *Kernel) push(ev *event) {
	k.heap = append(k.heap, ev)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.heap[i].less(k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

func (k *Kernel) pop() *event {
	n := len(k.heap)
	top := k.heap[0]
	k.heap[0] = k.heap[n-1]
	k.heap[n-1] = nil
	k.heap = k.heap[:n-1]
	n--
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && k.heap[right].less(k.heap[left]) {
			smallest = right
		}
		if !k.heap[smallest].less(k.heap[i]) {
			break
		}
		k.heap[i], k.heap[smallest] = k.heap[smallest], k.heap[i]
		i = smallest
	}
	return top
}
