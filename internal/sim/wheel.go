package sim

import "math/bits"

// The kernel's event queue is a hierarchical timing wheel: four levels of
// 64 slots each, with geometrically coarser granularity per level, backed
// by a small "near" heap for events at or behind the wheel cursor and an
// overflow heap for events beyond the wheel horizon (~17 s of virtual
// time). The structure delivers events in exactly the same total order as
// a single binary heap keyed on (at, seq) — DESIGN.md §8 gives the
// argument — while making the common push O(1) instead of O(log n).
//
// Layout. Level l covers times whose quotient q_l(t) = t >> shift(l)
// differs from the cursor's by 1..63, where shift(l) = 10 + 6*l; the slot
// index is q_l(t) & 63. Level 0 buckets are therefore 1024 ns wide, level
// 3 buckets ~268 ms. Events at or behind the cursor's level-0 bucket go
// to the near heap, which is the only part ordered eagerly. Each level
// keeps a 64-bit occupancy bitmap so the next non-empty slot is one
// rotate + trailing-zeros away.
//
// Invariants maintained between operations:
//
//   - cur never exceeds the earliest pending event's time, so no event is
//     ever behind the cursor when it is due.
//   - the slot at the cursor's own index is empty at every level: pushes
//     route a quotient difference of zero to a lower level (or the near
//     heap), and advance() drains the cursor slots after every move.
//   - every event in one slot shares one quotient: two quotients in the
//     open window (q_l(cur), q_l(cur)+64) that are congruent mod 64 are
//     equal.
//   - the overflow heap only holds events beyond the top level's horizon
//     of cur: advance() re-files everything a cursor move brings under
//     the horizon before draining slots, so whenever the near heap is
//     non-empty its minimum is the global minimum.
//
// Events are recycled through an intrusive freelist (the same next link
// used by slot chains), so steady-state Schedule/At/Cancel allocate
// nothing; Timer handles carry a generation counter to stay safe across
// recycling.
const (
	wheelLevels    = 4
	wheelSlotBits  = 6
	wheelSlots     = 1 << wheelSlotBits
	wheelSlotMask  = wheelSlots - 1
	wheelBaseShift = 10
)

func wheelShift(level int) uint { return uint(wheelBaseShift + level*wheelSlotBits) }

// slotList is an intrusive singly linked FIFO of events in one wheel slot.
type slotList struct{ head, tail *event }

func (l *slotList) append(ev *event) {
	ev.next = nil
	if l.tail == nil {
		l.head = ev
	} else {
		l.tail.next = ev
	}
	l.tail = ev
}

type timerWheel struct {
	// cur is the wheel cursor: the reference point slot routing is
	// computed against. It only moves forward, and never past a pending
	// event.
	cur Time
	// near holds events at or behind the cursor's level-0 bucket, ordered
	// as a binary min-heap on (at, seq).
	near []*event
	// levels[l][s] chains events whose level-l quotient is congruent to s.
	levels   [wheelLevels][wheelSlots]slotList
	occupied [wheelLevels]uint64
	// overflow holds events beyond the top level's horizon, as a (at, seq)
	// min-heap.
	overflow []*event
	// size counts queued events, including cancelled ones not yet reaped.
	size int
	// free chains recycled events through their next links.
	free *event
}

// push enqueues an event.
func (w *timerWheel) push(ev *event) {
	w.size++
	w.route(ev)
}

// route files ev into the near heap, a wheel slot, or the overflow heap
// according to its distance from the cursor. It does not touch size.
func (w *timerWheel) route(ev *event) {
	t := uint64(ev.at)
	c := uint64(w.cur)
	if t>>wheelBaseShift <= c>>wheelBaseShift {
		heapPush(&w.near, ev)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		shift := wheelShift(l)
		if t>>shift-c>>shift < wheelSlots {
			idx := (t >> shift) & wheelSlotMask
			w.levels[l][idx].append(ev)
			w.occupied[l] |= 1 << idx
			return
		}
	}
	heapPush(&w.overflow, ev)
}

// min returns the earliest queued event without removing it, or nil when
// the queue is empty.
func (w *timerWheel) min() *event {
	for {
		if len(w.near) > 0 {
			return w.near[0]
		}
		if w.size == 0 {
			return nil
		}
		w.advance()
	}
}

// popMin removes and returns the earliest queued event, or nil.
func (w *timerWheel) popMin() *event {
	ev := w.min()
	if ev == nil {
		return nil
	}
	heapPop(&w.near)
	w.size--
	return ev
}

// advance moves the cursor to the next populated instant — the earliest
// slot start across the levels, or the overflow minimum if it is
// earlier — re-files every overflow event the move brought under the
// wheel horizon, and drains the slots at the cursor's new indices
// downward, so the near heap gains the events due first. Each call
// either fills the near heap or moves events strictly closer to it, so
// min() terminates.
func (w *timerWheel) advance() {
	best := Time(1<<63 - 1)
	bestFound := false
	// High levels first: on a tie the coarser slot must cascade before
	// the finer one fires, since the coarse bucket may hold earlier
	// events anywhere inside its wider span.
	for l := wheelLevels - 1; l >= 0; l-- {
		if w.occupied[l] == 0 {
			continue
		}
		if t := w.nextSlotStart(l); t < best {
			best = t
			bestFound = true
		}
	}
	if len(w.overflow) > 0 && (!bestFound || w.overflow[0].at < best) {
		best = w.overflow[0].at
		bestFound = true
	}
	if !bestFound {
		return
	}
	if best > w.cur {
		w.cur = best
	}
	// Re-file every overflow event that now fits under the wheel
	// horizon. This must happen on every cursor move, not only when the
	// overflow minimum leads the wheel: an overflow event whose time
	// falls inside the span of the slot about to be drained (past the
	// slot's start) would otherwise sit unconsulted in the overflow heap
	// while later events from that slot drain into the near heap and
	// fire ahead of it.
	shift := wheelShift(wheelLevels - 1)
	for len(w.overflow) > 0 &&
		uint64(w.overflow[0].at)>>shift-uint64(w.cur)>>shift < wheelSlots {
		w.route(heapPop(&w.overflow))
	}
	w.drainCursorSlots()
}

// drainCursorSlots empties the slot at the cursor's index on every level,
// top down, re-routing each event; everything due in the cursor's level-0
// bucket ends up in the near heap.
func (w *timerWheel) drainCursorSlots() {
	for l := wheelLevels - 1; l >= 0; l-- {
		idx := (uint64(w.cur) >> wheelShift(l)) & wheelSlotMask
		bit := uint64(1) << idx
		if w.occupied[l]&bit == 0 {
			continue
		}
		w.occupied[l] &^= bit
		ev := w.levels[l][idx].head
		w.levels[l][idx] = slotList{}
		for ev != nil {
			next := ev.next
			ev.next = nil
			w.route(ev)
			ev = next
		}
	}
}

// nextSlotStart returns the start time of the first occupied slot after
// the cursor at level l. occupied[l] must be non-zero.
func (w *timerWheel) nextSlotStart(l int) Time {
	shift := wheelShift(l)
	q := uint64(w.cur) >> shift
	idx := q & wheelSlotMask
	// Rotate so the slot after the cursor's lands at bit 0; the first set
	// bit's position is then its distance minus one.
	rot := bits.RotateLeft64(w.occupied[l], -int(idx+1))
	d := uint64(bits.TrailingZeros64(rot)) + 1
	return Time((q + d) << shift)
}

// alloc returns a recycled event or a fresh one.
func (w *timerWheel) alloc() *event {
	if ev := w.free; ev != nil {
		w.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{}
}

// recycle returns a fired or reaped event to the freelist. Bumping the
// generation invalidates every outstanding Timer handle to it.
func (w *timerWheel) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	ev.next = w.free
	w.free = ev
}

// event min-heap helpers, keyed on (at, seq); used for both the near and
// the overflow heap. Hand-rolled to avoid container/heap's interface
// dispatch on the hottest kernel path.

func (ev *event) less(other *event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

func heapPush(h *[]*event, ev *event) {
	heap := append(*h, ev)
	*h = heap
	i := len(heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heap[i].less(heap[parent]) {
			break
		}
		heap[i], heap[parent] = heap[parent], heap[i]
		i = parent
	}
}

func heapPop(h *[]*event) *event {
	heap := *h
	n := len(heap)
	top := heap[0]
	heap[0] = heap[n-1]
	heap[n-1] = nil
	heap = heap[:n-1]
	*h = heap
	n--
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && heap[right].less(heap[left]) {
			smallest = right
		}
		if !heap[smallest].less(heap[i]) {
			break
		}
		heap[i], heap[smallest] = heap[smallest], heap[i]
		i = smallest
	}
	return top
}
