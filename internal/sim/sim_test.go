package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	tests := []struct {
		name string
		t    Time
		want float64
		get  func(Time) float64
	}{
		{"seconds", 2 * Second, 2.0, Time.Seconds},
		{"milliseconds", 1500 * Microsecond, 1.5, Time.Milliseconds},
		{"microseconds", 2500 * Nanosecond, 2.5, Time.Microseconds},
		{"half second", 500 * Millisecond, 0.5, Time.Seconds},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.get(tt.t); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want %v", got, 1500*Millisecond)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		t    Time
		want string
	}{
		{2 * Second, "2.000s"},
		{3 * Millisecond, "3.000ms"},
		{7 * Microsecond, "7.000µs"},
		{42, "42ns"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.t), got, tt.want)
		}
	}
}

func TestScheduleOrdering(t *testing.T) {
	k := New(1)
	var order []int
	k.Schedule(30, func() { order = append(order, 3) })
	k.Schedule(10, func() { order = append(order, 1) })
	k.Schedule(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired out of order: %v", order)
	}
	if k.Now() != 30 {
		t.Errorf("final time = %v, want 30", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New(1)
	var hits []Time
	k.Schedule(10, func() {
		hits = append(hits, k.Now())
		k.Schedule(5, func() { hits = append(hits, k.Now()) })
	})
	k.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Errorf("nested schedule produced %v, want [10 15]", hits)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := New(1)
	fired := false
	k.Schedule(-5, func() { fired = true })
	k.Run()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if k.Now() != 0 {
		t.Errorf("clock moved to %v for clamped event", k.Now())
	}
}

func TestAtInPast(t *testing.T) {
	k := New(1)
	var at Time = -1
	k.Schedule(100, func() {
		k.At(50, func() { at = k.Now() })
	})
	k.Run()
	if at != 100 {
		t.Errorf("past event ran at %v, want 100 (current time)", at)
	}
}

func TestTimerCancel(t *testing.T) {
	k := New(1)
	fired := false
	tm := k.Schedule(10, func() { fired = true })
	if !tm.Cancel() {
		t.Error("Cancel returned false on pending timer")
	}
	if tm.Cancel() {
		t.Error("second Cancel returned true")
	}
	k.Run()
	if fired {
		t.Error("canceled timer fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	k := New(1)
	tm := k.Schedule(10, func() {})
	k.Run()
	if tm.Cancel() {
		t.Error("Cancel after fire returned true")
	}
}

func TestTimerAt(t *testing.T) {
	k := New(1)
	tm := k.Schedule(25, func() {})
	if tm.At() != 25 {
		t.Errorf("Timer.At() = %v, want 25", tm.At())
	}
	var zero Timer
	if zero.At() != 0 {
		t.Error("zero Timer.At() != 0")
	}
	if zero.Cancel() {
		t.Error("zero Timer.Cancel() returned true")
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v, want [10 20]", fired)
	}
	if k.Now() != 25 {
		t.Errorf("clock = %v after RunUntil(25)", k.Now())
	}
	k.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("remaining events did not fire: %v", fired)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	k := New(1)
	fired := false
	k.Schedule(25, func() { fired = true })
	k.RunUntil(25)
	if !fired {
		t.Error("event at exactly the RunUntil bound did not fire")
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	count := 0
	k.Schedule(10, func() { count++; k.Stop() })
	k.Schedule(20, func() { count++ })
	k.Run()
	if count != 1 {
		t.Errorf("events after Stop fired, count=%d", count)
	}
	if !k.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestTicker(t *testing.T) {
	k := New(1)
	var ticks []Time
	tk, err := k.Every(5, 10, func() { ticks = append(ticks, k.Now()) })
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(36, func() { tk.Stop() })
	k.Run()
	want := []Time{5, 15, 25, 35}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	k := New(1)
	count := 0
	var tk *Ticker
	tk, err := k.Every(0, 10, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if count != 3 {
		t.Errorf("ticker fired %d times, want 3", count)
	}
}

func TestTickerInvalidInterval(t *testing.T) {
	k := New(1)
	if _, err := k.Every(0, 0, func() {}); err == nil {
		t.Error("Every with zero interval did not error")
	}
	if _, err := k.Every(0, -5, func() {}); err == nil {
		t.Error("Every with negative interval did not error")
	}
}

func TestTickerStopNil(t *testing.T) {
	var tk *Ticker
	tk.Stop() // must not panic
}

func TestExecutedAndPending(t *testing.T) {
	k := New(1)
	k.Schedule(1, func() {})
	k.Schedule(2, func() {})
	if k.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", k.Pending())
	}
	k.Run()
	if k.Executed() != 2 {
		t.Errorf("Executed = %d, want 2", k.Executed())
	}
	if k.Pending() != 0 {
		t.Errorf("Pending = %d after Run, want 0", k.Pending())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := New(42)
		var out []Time
		for i := 0; i < 100; i++ {
			d := Time(k.Rand().Intn(1000))
			k.Schedule(d, func() { out = append(out, k.Now()) })
		}
		k.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestHeapProperty checks with random schedules that events always fire in
// nondecreasing time order.
func TestHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := New(7)
		var fired []Time
		for _, d := range delays {
			k.Schedule(Time(d), func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHeapRandomCancel mixes scheduling and canceling and checks the
// survivor set fires exactly once each, in order.
func TestHeapRandomCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		k := New(int64(trial))
		n := 200
		timers := make([]Timer, n)
		firedCount := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			timers[i] = k.Schedule(Time(rng.Intn(5000)), func() { firedCount[i]++ })
		}
		canceled := make(map[int]bool)
		for i := 0; i < n/3; i++ {
			j := rng.Intn(n)
			if timers[j].Cancel() {
				canceled[j] = true
			}
		}
		k.Run()
		for i := 0; i < n; i++ {
			want := 1
			if canceled[i] {
				want = 0
			}
			if firedCount[i] != want {
				t.Fatalf("trial %d: event %d fired %d times, want %d", trial, i, firedCount[i], want)
			}
		}
	}
}

func TestStationFIFOAndRate(t *testing.T) {
	k := New(1)
	st, err := NewStation(k, "nic", 1e6, 0) // 1 op/µs
	if err != nil {
		t.Fatal(err)
	}
	var completions []Time
	for i := 0; i < 5; i++ {
		st.Submit(func() { completions = append(completions, k.Now()) })
	}
	k.Run()
	for i, c := range completions {
		want := Time(i+1) * Microsecond
		if c != want {
			t.Errorf("completion %d at %v, want %v", i, c, want)
		}
	}
	if st.Served() != 5 {
		t.Errorf("Served = %d, want 5", st.Served())
	}
}

func TestStationIdleGap(t *testing.T) {
	k := New(1)
	st, err := NewStation(k, "nic", 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	var first, second Time
	st.Submit(func() { first = k.Now() })
	k.Schedule(10*Microsecond, func() {
		st.Submit(func() { second = k.Now() })
	})
	k.Run()
	if first != Microsecond {
		t.Errorf("first completion at %v, want 1µs", first)
	}
	if second != 11*Microsecond {
		t.Errorf("second completion at %v, want 11µs (idle server restarts clean)", second)
	}
}

func TestStationWeighted(t *testing.T) {
	k := New(1)
	st, err := NewStation(k, "nic", 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	var done Time
	st.SubmitWeighted(0.5, func() { done = k.Now() })
	k.Run()
	if done != 500*Nanosecond {
		t.Errorf("weighted op completed at %v, want 500ns", done)
	}
}

func TestStationZeroAndNegativeWeight(t *testing.T) {
	k := New(1)
	st, _ := NewStation(k, "nic", 1e6, 0)
	var times []Time
	st.SubmitWeighted(0, func() { times = append(times, k.Now()) })
	st.SubmitWeighted(-3, func() { times = append(times, k.Now()) })
	k.Run()
	for _, tm := range times {
		if tm != 0 {
			t.Errorf("zero-weight op completed at %v, want 0", tm)
		}
	}
}

func TestStationSetRate(t *testing.T) {
	k := New(1)
	st, _ := NewStation(k, "nic", 1e6, 0)
	if err := st.SetRate(2e6); err != nil {
		t.Fatal(err)
	}
	var done Time
	st.Submit(func() { done = k.Now() })
	k.Run()
	if done != 500*Nanosecond {
		t.Errorf("op after SetRate completed at %v, want 500ns", done)
	}
	if err := st.SetRate(0); err == nil {
		t.Error("SetRate(0) did not error")
	}
}

func TestStationInvalid(t *testing.T) {
	k := New(1)
	if _, err := NewStation(k, "x", 0, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewStation(k, "x", 100, 1.5); err == nil {
		t.Error("jitter >= 1 accepted")
	}
	if _, err := NewStation(k, "x", 100, -0.1); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestStationJitterBounds(t *testing.T) {
	k := New(99)
	st, err := NewStation(k, "nic", 1e6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var prev Time
	n := 1000
	var last Time
	for i := 0; i < n; i++ {
		st.Submit(func() { last = k.Now() })
	}
	k.Run()
	_ = prev
	// Mean service 1µs with ±10% jitter: total duration within [0.9n, 1.1n] µs.
	lo := Time(float64(n) * 0.9 * float64(Microsecond))
	hi := Time(float64(n) * 1.1 * float64(Microsecond))
	if last < lo || last > hi {
		t.Errorf("jittered total %v outside [%v, %v]", last, lo, hi)
	}
}

func TestStationQueueDelay(t *testing.T) {
	k := New(1)
	st, _ := NewStation(k, "nic", 1e6, 0)
	if st.QueueDelay() != 0 {
		t.Error("idle station reports nonzero queue delay")
	}
	st.Submit(nil)
	st.Submit(nil)
	if st.QueueDelay() != 2*Microsecond {
		t.Errorf("QueueDelay = %v, want 2µs", st.QueueDelay())
	}
	k.Run()
	if st.QueueDelay() != 0 {
		t.Error("drained station reports nonzero queue delay")
	}
}

// TestStationThroughputProperty: for any positive rate and op count, a
// saturated station's measured throughput equals its configured rate.
func TestStationThroughputProperty(t *testing.T) {
	f := func(rateK uint16, nOps uint8) bool {
		rate := float64(rateK%1000+1) * 1000 // 1K..1000K ops/s
		n := int(nOps%100) + 1
		k := New(5)
		st, err := NewStation(k, "s", rate, 0)
		if err != nil {
			return false
		}
		var last Time
		for i := 0; i < n; i++ {
			st.Submit(func() { last = k.Now() })
		}
		k.Run()
		got := float64(n) / last.Seconds()
		rel := (got - rate) / rate
		if rel < 0 {
			rel = -rel
		}
		return rel < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStationAccessors(t *testing.T) {
	k := New(1)
	st, err := NewStation(k, "mynic", 2e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "mynic" {
		t.Errorf("Name = %q", st.Name())
	}
	if got := st.Rate(); got < 1.99e6 || got > 2.01e6 {
		t.Errorf("Rate = %v", got)
	}
}

func TestSubmitPriorityChargesCapacity(t *testing.T) {
	k := New(1)
	st, _ := NewStation(k, "nic", 1e6, 0) // 1µs/op
	// A priority op completes after its own service time...
	var prioAt, bulkAt Time
	st.SubmitPriority(1, func() { prioAt = k.Now() })
	// ...but still pushes back bulk work submitted after it.
	st.Submit(func() { bulkAt = k.Now() })
	k.Run()
	if prioAt != Microsecond {
		t.Errorf("priority completed at %v, want 1µs", prioAt)
	}
	if bulkAt != 2*Microsecond {
		t.Errorf("bulk completed at %v, want 2µs (capacity charged)", bulkAt)
	}
}

func TestSubmitPrioritySerializesAmongPriorities(t *testing.T) {
	k := New(1)
	st, _ := NewStation(k, "nic", 1e6, 0)
	var times []Time
	for i := 0; i < 3; i++ {
		st.SubmitPriority(0.5, func() { times = append(times, k.Now()) })
	}
	k.Run()
	want := []Time{500, 1000, 1500}
	for i := range want {
		if times[i] != want[i]*Nanosecond {
			t.Errorf("priority op %d at %v, want %vns", i, times[i], want[i])
		}
	}
}

func TestSubmitPriorityNegativeWeight(t *testing.T) {
	k := New(1)
	st, _ := NewStation(k, "nic", 1e6, 0)
	var at Time = -1
	st.SubmitPriority(-2, func() { at = k.Now() })
	k.Run()
	if at != 0 {
		t.Errorf("negative-weight priority op at %v, want 0", at)
	}
}

func TestSubmitPriorityJitterBounds(t *testing.T) {
	k := New(7)
	st, _ := NewStation(k, "nic", 1e6, 0.1)
	var last Time
	for i := 0; i < 500; i++ {
		st.SubmitPriority(1, func() { last = k.Now() })
	}
	k.Run()
	lo := Time(float64(500) * 0.9 * float64(Microsecond))
	hi := Time(float64(500) * 1.1 * float64(Microsecond))
	if last < lo || last > hi {
		t.Errorf("jittered priority total %v outside [%v, %v]", last, lo, hi)
	}
}
