package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/haechi-qos/haechi/internal/sim"
)

// The sharded-kernel benchmark lives here rather than next to the
// plain-kernel benchmarks in internal/sim/bench_test.go (where ISSUE 6
// nominally places it) because those files compile into package sim —
// importing shard from there would be an import cycle. The artifact
// (BENCH_shard.json) and the CI wiring treat both files as one suite.

// benchChurn is the sim bench's self-sustaining churn, spread across
// shards: benchFlows chains per shard, each rescheduling itself at the
// simulator's delay scales, with one cross-shard hop (delivered a
// lookahead later, like a one-sided op crossing the fabric) every
// crossEvery firings. Deterministic: per-shard xorshift streams.
const (
	benchShards = 8
	benchFlows  = 256
	crossEvery  = 64
)

var benchDelays = [16]sim.Time{
	1, 3, 700, 900,
	sim.Microsecond, 2 * sim.Microsecond, 5 * sim.Microsecond, 17 * sim.Microsecond,
	40 * sim.Microsecond, 80 * sim.Microsecond, 120 * sim.Microsecond, 300 * sim.Microsecond,
	sim.Millisecond, 4 * sim.Millisecond, sim.Second / 4, 19 * sim.Second,
}

func benchRngNext(rng *uint64) uint64 {
	*rng ^= *rng << 13
	*rng ^= *rng >> 7
	*rng ^= *rng << 17
	return *rng
}

// shardChurn executes ~n events across the group and returns the exact
// count. Every piece of mutable state is per-shard.
func shardChurn(g *Group, n int) uint64 {
	ks := g.Kernels()
	rngs := make([]uint64, len(ks))
	executed := make([]int, len(ks))
	quota := n / len(ks)
	var fire func(s int)
	fire = func(s int) {
		executed[s]++
		if executed[s] > quota {
			return
		}
		d := benchDelays[benchRngNext(&rngs[s])&15]
		if executed[s]%crossEvery == 0 {
			dst := (s + 1) % len(ks)
			g.Post(s, dst, ks[s].Now()+sim.Microsecond+d, func() { fire(dst) })
			return
		}
		ks[s].Schedule(d, fire1(fire, s))
	}
	for s := range ks {
		rngs[s] = 0x9e3779b97f4a7c15 ^ uint64(s)<<32
		for i := 0; i < benchFlows; i++ {
			ks[s].Schedule(benchDelays[benchRngNext(&rngs[s])&15], fire1(fire, s))
		}
	}
	// Far beyond the churn's reach; the chains die at their quota.
	g.RunUntil(1 << 50)
	return g.Executed()
}

// fire1 binds the shard index without allocating state the peer owns.
func fire1(fire func(int), s int) func() { return func() { fire(s) } }

// plainChurn runs the same total event load on one bare kernel with no
// coordinator — the reference the artifact's coordination_ratio divides
// by. Cross-shard hops become plain schedules at the same delay.
func plainChurn(n int) uint64 {
	k := sim.New(1)
	rng := uint64(0x9e3779b97f4a7c15)
	executed := 0
	var fire func()
	fire = func() {
		executed++
		if executed > n {
			return
		}
		d := benchDelays[benchRngNext(&rng)&15]
		if executed%crossEvery == 0 {
			d += sim.Microsecond
		}
		k.Schedule(d, fire)
	}
	for i := 0; i < benchShards*benchFlows; i++ {
		k.Schedule(benchDelays[benchRngNext(&rng)&15], fire)
	}
	k.RunUntil(1 << 50)
	return k.Executed()
}

func newBenchGroup(workers int) *Group {
	ks := make([]*sim.Kernel, benchShards)
	for s := range ks {
		ks[s] = sim.New(int64(s) + 1)
	}
	g, err := New(ks, sim.Microsecond, workers)
	if err != nil {
		panic(err)
	}
	return g
}

// BenchmarkShardedKernelEvents measures group throughput per executed
// event at several worker counts: events/sec = 1e9 / (ns/op). On a
// single-core host the >1-worker figures show the coordination
// overhead instead of a speedup; CI records both plus NumCPU in
// BENCH_shard.json so the two cases are distinguishable.
func BenchmarkShardedKernelEvents(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			g := newBenchGroup(workers)
			defer g.Close()
			shardChurn(g, b.N)
		})
	}
}

// TestWriteShardBenchJSON is the CI hook behind the BENCH_shard.json
// artifact: when BENCH_SHARD_JSON names a path, it times a fixed-size
// churn at worker counts 1/2/4/8 and writes the events-per-second and
// speedup-vs-1-worker table, plus NumCPU so a core-bound run (speedup
// ~1/overhead on a single-core runner) is identifiable from the
// artifact alone. Without the env var it skips.
func TestWriteShardBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_SHARD_JSON")
	if path == "" {
		t.Skip("set BENCH_SHARD_JSON=<path> to write the sharded benchmark artifact")
	}
	const n = 2_000_000
	workerCounts := []int{1, 2, 4, 8}
	type point struct {
		Workers      int     `json:"workers"`
		EventsPerSec float64 `json:"events_per_sec"`
		Speedup      float64 `json:"speedup_vs_1_worker"`
		IdleQuanta   uint64  `json:"idle_quanta_total"`
	}
	out := struct {
		Events        uint64 `json:"events"`
		Shards        int    `json:"shards"`
		NumCPU        int    `json:"num_cpu"`
		Quanta        uint64 `json:"quanta"`
		CrossMessages uint64 `json:"cross_messages"`
		// PlainKernelEventsPerSec is the same event load on one bare
		// kernel, and CoordinationRatio is the 1-worker group's
		// throughput relative to it — the quantum protocol's overhead,
		// measured interleaved in the same run so the CI gate can
		// compare it against the committed baseline without
		// cross-machine (or cross-minute) noise. Each rep times group
		// then bare back to back; the ratio is the median over reps.
		PlainKernelEventsPerSec float64 `json:"plain_kernel_events_per_sec"`
		CoordinationRatio       float64 `json:"coordination_ratio"`
		Points                  []point `json:"points"`
	}{Shards: benchShards, NumCPU: runtime.NumCPU()}

	// Warm-up pass.
	func() {
		g := newBenchGroup(1)
		defer g.Close()
		shardChurn(g, n/10)
	}()
	plainChurn(n / 10)
	var base float64
	var coordRatios []float64
	for _, workers := range workerCounts {
		// Best of three: the CI regression gate compares events/sec
		// ratios against a committed baseline, and on a shared runner a
		// single sample carries enough scheduler noise to trip a 20%
		// threshold. The fastest run is the least-perturbed measurement
		// of the same deterministic work.
		var eps float64
		var events, quanta, crossMsgs, idle uint64
		for rep := 0; rep < 3; rep++ {
			g := newBenchGroup(workers)
			start := time.Now()
			ev := shardChurn(g, n)
			v := float64(ev) / time.Since(start).Seconds()
			if v > eps {
				eps = v
			}
			events = ev
			quanta = g.Quanta()
			crossMsgs = g.CrossMessages()
			idle = 0
			for _, q := range g.IdleQuanta() {
				idle += q
			}
			g.Close()
			if workers == 1 {
				start = time.Now()
				pn := plainChurn(n)
				pv := float64(pn) / time.Since(start).Seconds()
				if pv > out.PlainKernelEventsPerSec {
					out.PlainKernelEventsPerSec = pv
				}
				coordRatios = append(coordRatios, v/pv)
			}
		}
		if workers == 1 {
			base = eps
			out.Events = events
			out.Quanta = quanta
			out.CrossMessages = crossMsgs
			sort.Float64s(coordRatios)
			out.CoordinationRatio = coordRatios[len(coordRatios)/2]
		}
		out.Points = append(out.Points, point{
			Workers: workers, EventsPerSec: eps, Speedup: eps / base, IdleQuanta: idle,
		})
		t.Logf("workers=%d: %.2fM ev/s (%.2fx)", workers, eps/1e6, eps/base)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
