package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

// The differential harness mirrors the wheel-vs-reference-heap idiom
// from internal/sim/wheel_test.go: an independently written sequential
// reference coordinator replays the same randomized program, and the
// per-shard firing traces must match exactly — for the reference and
// for the Group at every worker count.

// refCoord is a from-scratch sequential implementation of the quantum
// protocol: one flat pending-message list, shards stepped in index
// order, messages delivered at barriers sorted by (dst, at, seq, src).
// It shares no code with Group beyond sim.Kernel itself.
type refCoord struct {
	ks      []*sim.Kernel
	delta   sim.Time
	pending []refMsg
	seqs    []uint64
	halted  bool
}

type refMsg struct {
	src, dst int
	at       sim.Time
	seq      uint64
	fn       func()
}

func newRefCoord(ks []*sim.Kernel, delta sim.Time) *refCoord {
	return &refCoord{ks: ks, delta: delta, seqs: make([]uint64, len(ks))}
}

func (r *refCoord) Post(src, dst int, at sim.Time, fn func()) {
	r.pending = append(r.pending, refMsg{src: src, dst: dst, at: at, seq: r.seqs[src], fn: fn})
	r.seqs[src]++
}

func (r *refCoord) deliver() {
	sort.Slice(r.pending, func(a, b int) bool {
		m, n := r.pending[a], r.pending[b]
		if m.dst != n.dst {
			return m.dst < n.dst
		}
		if m.at != n.at {
			return m.at < n.at
		}
		if m.seq != n.seq {
			return m.seq < n.seq
		}
		return m.src < n.src
	})
	for _, m := range r.pending {
		r.ks[m.dst].At(m.at, m.fn)
	}
	r.pending = r.pending[:0]
}

func (r *refCoord) RunUntil(t sim.Time) {
	if r.halted {
		return
	}
	for {
		r.deliver()
		for _, k := range r.ks {
			if k.Stopped() {
				r.halted = true
				for _, k := range r.ks {
					k.Stop()
				}
				return
			}
		}
		glb := sim.Time(0)
		ok := false
		for _, k := range r.ks {
			if at, has := k.NextAt(); has && (!ok || at < glb) {
				glb, ok = at, true
			}
		}
		if !ok || glb > t {
			break
		}
		h := glb + r.delta
		if h > t+1 {
			h = t + 1
		}
		for _, k := range r.ks {
			k.RunBefore(h)
		}
	}
	for _, k := range r.ks {
		k.RunUntil(t)
	}
}

// coordinator is the driver-facing surface the randomized program
// needs; Group and refCoord both satisfy it.
type coordinator interface {
	Post(src, dst int, at sim.Time, fn func())
	RunUntil(t sim.Time)
}

type shardFire struct {
	id  int
	at  sim.Time
	rnd int64
}

// shardProgram builds one randomized multi-shard workload on the given
// kernels and returns the per-shard firing logs (filled in as the
// coordinator runs). Every piece of mutable state — logs, id counters,
// RNG — is owned by exactly one shard, so the program is safe under
// concurrent quanta; the logs alone are the observable trace.
func shardProgram(c coordinator, ks []*sim.Kernel, seed int64) []*[]shardFire {
	n := len(ks)
	logs := make([]*[]shardFire, n)
	nextID := make([]int, n)
	for s := range logs {
		logs[s] = new([]shardFire)
	}

	delays := []sim.Time{0, 1, 3, 700, sim.Microsecond, 2 * sim.Microsecond,
		17 * sim.Microsecond, sim.Millisecond / 2, sim.Millisecond}

	// fire runs as an event on shard s and touches only shard-s state
	// (log, id counter, RNG) — the closures created for follow-ups and
	// cross posts capture nothing but ints, so creating a message for a
	// peer shard writes nothing the peer owns.
	var fire func(s, depth int)
	fire = func(s, depth int) {
		k := ks[s]
		id := s*1_000_000 + nextID[s]
		nextID[s]++
		*logs[s] = append(*logs[s], shardFire{id: id, at: k.Now(), rnd: k.Rand().Int63n(1 << 20)})
		if depth >= 5 {
			return
		}
		r := k.Rand()
		for f := r.Intn(3); f > 0; f-- {
			d := delays[r.Intn(len(delays))]
			next := depth + 1
			k.Schedule(d, func() { fire(s, next) })
		}
		if n > 1 && r.Intn(3) == 0 {
			dst := r.Intn(n - 1)
			if dst >= s {
				dst++
			}
			at := k.Now() + sim.Microsecond + sim.Time(r.Intn(3000))
			next := depth + 1
			c.Post(s, dst, at, func() { fire(dst, next) })
		}
	}

	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < n; s++ {
		for i := 0; i < 6; i++ {
			s := s
			ks[s].At(sim.Time(rng.Intn(5000)), func() { fire(s, 0) })
		}
	}
	return logs
}

func makeKernels(n int, seed int64) []*sim.Kernel {
	ks := make([]*sim.Kernel, n)
	for s := range ks {
		ks[s] = sim.New(seed + int64(s)*7919)
	}
	return ks
}

func collectLogs(logs []*[]shardFire) [][]shardFire {
	out := make([][]shardFire, len(logs))
	for s, l := range logs {
		out[s] = *l
	}
	return out
}

func diffLogs(t *testing.T, label string, got, want [][]shardFire) {
	t.Helper()
	for s := range want {
		if !reflect.DeepEqual(got[s], want[s]) {
			n := len(got[s])
			if len(want[s]) < n {
				n = len(want[s])
			}
			for i := 0; i < n; i++ {
				if got[s][i] != want[s][i] {
					t.Fatalf("%s: shard %d fire %d: got %+v, want %+v", label, s, i, got[s][i], want[s][i])
				}
			}
			t.Fatalf("%s: shard %d fired %d events, want %d", label, s, len(got[s]), len(want[s]))
		}
	}
}

// TestGroupMatchesReferenceCoordinator replays 300 randomized
// multi-shard programs on the Group — at worker counts 1, 2, 4 and
// 8 — and on the sequential reference coordinator, requiring the exact
// same per-shard firing traces, timestamps, and RNG draws every time.
func TestGroupMatchesReferenceCoordinator(t *testing.T) {
	const shards = 4
	const horizon = 20 * sim.Millisecond
	for seed := int64(1); seed <= 300; seed++ {
		ks := makeKernels(shards, seed)
		ref := newRefCoord(ks, sim.Microsecond)
		refLogs := shardProgram(ref, ks, seed)
		ref.RunUntil(horizon)
		want := collectLogs(refLogs)

		for _, workers := range []int{1, 2, 4, 8} {
			ks := makeKernels(shards, seed)
			g, err := New(ks, sim.Microsecond, workers)
			if err != nil {
				t.Fatal(err)
			}
			logs := shardProgram(g, ks, seed)
			g.RunUntil(horizon)
			g.Close()
			diffLogs(t, fmt.Sprintf("seed %d workers %d", seed, workers), collectLogs(logs), want)
		}
	}
}

// TestGroupResumeAcrossRunUntil pins that a group can be driven in
// slices (the cluster runs warmup and measurement as separate RunUntil
// calls) with no trace difference from one shot.
func TestGroupResumeAcrossRunUntil(t *testing.T) {
	const shards = 3
	for seed := int64(1); seed <= 50; seed++ {
		ks := makeKernels(shards, seed)
		g, _ := New(ks, sim.Microsecond, 2)
		logs := shardProgram(g, ks, seed)
		g.RunUntil(20 * sim.Millisecond)
		g.Close()
		want := collectLogs(logs)

		ks = makeKernels(shards, seed)
		g, _ = New(ks, sim.Microsecond, 2)
		logs = shardProgram(g, ks, seed)
		for _, cut := range []sim.Time{sim.Microsecond, sim.Millisecond,
			7 * sim.Millisecond, 20 * sim.Millisecond} {
			g.RunUntil(cut)
		}
		g.Close()
		diffLogs(t, fmt.Sprintf("seed %d sliced", seed), collectLogs(logs), want)
		for s, k := range ks {
			if k.Now() != 20*sim.Millisecond {
				t.Fatalf("seed %d: shard %d clock %v, want 20ms", seed, s, k.Now())
			}
		}
	}
}

// TestGroupStopSemantics pins the coordinator stop contract: a shard
// stopping its own kernel halts the whole group at the next barrier
// with the identical trace at every worker count (and identical to the
// reference coordinator), peers having completed the full quantum.
func TestGroupStopSemantics(t *testing.T) {
	const shards = 4
	const stopAt = 5 * sim.Millisecond
	run := func(c coordinator, ks []*sim.Kernel, seed int64) [][]shardFire {
		logs := shardProgram(c, ks, seed)
		ks[1].At(stopAt, func() { ks[1].Stop() })
		c.RunUntil(20 * sim.Millisecond)
		return collectLogs(logs)
	}
	for seed := int64(1); seed <= 50; seed++ {
		ks := makeKernels(shards, seed)
		ref := newRefCoord(ks, sim.Microsecond)
		want := run(ref, ks, seed)

		for _, workers := range []int{1, 2, 8} {
			ks := makeKernels(shards, seed)
			g, _ := New(ks, sim.Microsecond, workers)
			got := run(g, ks, seed)
			diffLogs(t, fmt.Sprintf("seed %d workers %d", seed, workers), got, want)
			if !g.Stopped() {
				t.Fatalf("seed %d: group not halted after shard stop", seed)
			}
			// The halt is sticky and total: nothing fires on any shard
			// afterwards, even through direct kernel access.
			before := g.Executed()
			g.RunUntil(40 * sim.Millisecond)
			for _, k := range ks {
				k.RunUntil(40 * sim.Millisecond)
			}
			if g.Executed() != before {
				t.Fatalf("seed %d: events fired after group halt", seed)
			}
			g.Close()
		}
	}
}

// TestGroupStopKeepsFinalQuantumMessagesQueued verifies the "injected
// but never fired" half of the stop contract directly.
func TestGroupStopKeepsFinalQuantumMessagesQueued(t *testing.T) {
	ks := makeKernels(2, 1)
	g, _ := New(ks, sim.Microsecond, 1)
	delivered := false
	ks[0].At(0, func() {
		g.Post(0, 1, ks[0].Now()+sim.Microsecond, func() { delivered = true })
		ks[0].Stop()
	})
	g.RunUntil(sim.Millisecond)
	g.Close()
	if delivered {
		t.Fatal("message fired after stop")
	}
	if ks[1].Pending() != 1 {
		t.Fatalf("final-quantum message not queued: %d pending on shard 1", ks[1].Pending())
	}
}

// TestGroupExternalStop pins Group.Stop: the next RunUntil is a no-op.
func TestGroupExternalStop(t *testing.T) {
	ks := makeKernels(2, 1)
	g, _ := New(ks, sim.Microsecond, 1)
	fired := 0
	ks[0].At(0, func() { fired++ })
	g.Stop()
	g.RunUntil(sim.Millisecond)
	g.Close()
	if fired != 0 {
		t.Fatal("event fired after external Stop")
	}
}

// TestPostLookaheadViolationPanics pins the guard that keeps silent
// trace corruption impossible: a cross-shard message inside the
// current quantum horizon is a programming error and must panic.
func TestPostLookaheadViolationPanics(t *testing.T) {
	ks := makeKernels(2, 1)
	g, _ := New(ks, sim.Microsecond, 1)
	defer g.Close()
	panicked := ""
	ks[0].At(100, func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = fmt.Sprint(r)
			}
		}()
		g.Post(0, 1, ks[0].Now(), func() {}) // zero-latency: inside the quantum
	})
	g.RunUntil(sim.Millisecond)
	if !strings.Contains(panicked, "lookahead violation") {
		t.Fatalf("expected lookahead-violation panic, got %q", panicked)
	}
}

// TestGroupDiagnosticsDeterministic pins that quantum, idle and
// cross-message counters are part of the deterministic surface.
func TestGroupDiagnosticsDeterministic(t *testing.T) {
	type diag struct {
		quanta, cross uint64
		idle          []uint64
	}
	run := func(workers int) diag {
		ks := makeKernels(4, 7)
		g, _ := New(ks, sim.Microsecond, workers)
		shardProgram(g, ks, 7)
		g.RunUntil(20 * sim.Millisecond)
		defer g.Close()
		return diag{quanta: g.Quanta(), cross: g.CrossMessages(), idle: g.IdleQuanta()}
	}
	want := run(1)
	if want.quanta == 0 || want.cross == 0 {
		t.Fatalf("degenerate program: %+v", want)
	}
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: diagnostics %+v, want %+v", workers, got, want)
		}
	}
}

// TestGroupAgainstSingleKernelUnion replays the union of all shards'
// LOCAL programs — no cross traffic — on one plain kernel and checks
// the sharded run fires the same per-shard event sets. With no
// cross-shard messages sharding is pure partitioning, so the traces
// must agree exactly; this separates "the quantum loop perturbs local
// order" bugs from mailbox bugs.
func TestGroupAgainstSingleKernelUnion(t *testing.T) {
	const shards = 3
	for seed := int64(1); seed <= 100; seed++ {
		// Plain kernel: one kernel per "shard" still, but driven by
		// RunUntil directly — the degenerate 1-worker, infinite-lookahead
		// schedule.
		ks := makeKernels(shards, seed)
		localOnly := func(c coordinator, ks []*sim.Kernel) []*[]shardFire {
			logs := make([]*[]shardFire, shards)
			for s := range logs {
				logs[s] = new([]shardFire)
				s := s
				k := ks[s]
				var chain func(d int) func()
				chain = func(d int) func() {
					return func() {
						*logs[s] = append(*logs[s], shardFire{id: d, at: k.Now(), rnd: k.Rand().Int63n(1 << 20)})
						if d < 200 {
							k.Schedule(sim.Time(1+k.Rand().Intn(900)), chain(d+1))
						}
					}
				}
				k.At(sim.Time(s), chain(0))
			}
			return logs
		}
		wantLogs := localOnly(nil, ks)
		for _, k := range ks {
			k.RunUntil(sim.Millisecond)
		}
		want := collectLogs(wantLogs)

		ks = makeKernels(shards, seed)
		g, _ := New(ks, sim.Microsecond, 4)
		gotLogs := localOnly(g, ks)
		g.RunUntil(sim.Millisecond)
		g.Close()
		diffLogs(t, fmt.Sprintf("seed %d union", seed), collectLogs(gotLogs), want)
	}
}
