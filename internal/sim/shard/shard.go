// Package shard runs several sim.Kernel instances concurrently under a
// conservative synchronization protocol while preserving the exact
// event order a sequential execution would produce.
//
// The model is classic conservative parallel discrete-event simulation
// specialized to the Haechi fabric: every cross-shard interaction is a
// message that travels the simulated wire, and the wire has a fixed
// one-way latency (rdma.FabricConfig.PropagationDelay). That latency is
// the lookahead Δ: an event executing at time τ on one shard can affect
// another shard no earlier than τ+Δ. The group therefore advances in
// quanta — with GLB the earliest pending event time across all shards,
// every shard may freely execute events in [GLB, GLB+Δ) without seeing
// a message the current quantum produces, because any such message
// carries a delivery time ≥ GLB+Δ.
//
// Quantum protocol (Group.RunUntil):
//
//  1. Inject: mailbox messages accumulated during the previous quantum
//     are drained into their destination kernels, per destination in
//     (at, seq, srcShard) order — a total order, since seq is a
//     per-source monotone counter. Injection order fixes the kernels'
//     own tie-breaking sequence numbers, so same-instant delivery
//     order is deterministic.
//  2. Stop check: if any shard's kernel was stopped during the
//     previous quantum, the group halts here — after the injection, so
//     the final quantum's messages are queued (state is complete) but
//     never fire.
//  3. Horizon: h = min(GLB + Δ, t+1), capped so RunUntil(t) fires
//     events at exactly t but nothing later.
//  4. Quantum: every shard runs Kernel.RunBefore(h), concurrently on
//     the worker pool. Shards share no mutable state; cross-shard
//     effects go through Post, whose per-(src,dst) outboxes are
//     single-writer during a quantum. The pool barrier gives a
//     happens-before edge between quanta, so the next quantum's reads
//     see this quantum's writes.
//
// Determinism contract: the events each shard fires, their order, their
// timestamps, and each shard's RNG consumption depend only on the
// program and Δ — never on the worker count. A Group with one worker
// executes the identical schedule with no goroutines at all; the
// differential tests in this package pin a multi-worker Group against
// an independently written sequential reference coordinator on 300
// randomized seeds.
//
// This package is on the short list allowed to use concurrency (via
// internal/parallel) — see DESIGN.md §6 and the parallelimport lint
// rule for the waiver and its justification.
package shard

import (
	"fmt"
	"sort"

	"github.com/haechi-qos/haechi/internal/parallel"
	"github.com/haechi-qos/haechi/internal/sanitize"
	"github.com/haechi-qos/haechi/internal/sim"
)

// message is one cross-shard delivery: fn runs on the destination shard
// at virtual time at. seq orders same-instant messages from one source.
type message struct {
	at  sim.Time
	seq uint64
	src int
	fn  func()
}

// Group coordinates a fixed set of shard kernels. Construct with New;
// drive with RunUntil; route cross-shard work through Post.
type Group struct {
	kernels []*sim.Kernel
	delta   sim.Time
	pool    *parallel.Pool

	// outbox[src][dst] holds messages posted by shard src for shard dst
	// during the current quantum. Each [src][dst] slice has exactly one
	// writer (shard src's goroutine), so no locking is needed; the pool
	// barrier publishes the appends to the draining goroutine.
	outbox [][][]message
	// seq[src] numbers shard src's posts; per-source monotone across
	// the whole run, making (seq, src) a unique mailbox sort key.
	seq []uint64

	// horizon is the current quantum's bound while a quantum is
	// running; Post panics on a delivery time below it (a lookahead
	// violation would mean the message should already have fired).
	horizon sim.Time
	running bool
	stopped bool

	// Diagnostics, all deterministic.
	quanta  uint64
	idle    []uint64 // per-shard quanta that fired zero events
	cross   uint64   // mailbox messages delivered
	scratch []message

	// san, when non-nil, checks mailbox ordering during inject
	// (internal/sanitize). inject runs on the coordinating goroutine
	// between quanta, so the checker needs no locking.
	san *sanitize.Checker
}

// SetSanitizer installs the invariant checker consulted during mailbox
// injection. Nil (the default) disables the checks.
func (g *Group) SetSanitizer(c *sanitize.Checker) { g.san = c }

// New creates a coordinator over the given kernels with lookahead
// delta (the minimum virtual-time latency of any cross-shard message)
// and the given worker-pool size. Workers is pure concurrency: it
// never affects results. workers <= 1 runs every quantum inline.
func New(kernels []*sim.Kernel, delta sim.Time, workers int) (*Group, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("shard: group needs at least one kernel")
	}
	if delta <= 0 {
		return nil, fmt.Errorf("shard: lookahead must be positive, got %v", delta)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(kernels) {
		workers = len(kernels)
	}
	n := len(kernels)
	g := &Group{
		kernels: kernels,
		delta:   delta,
		pool:    parallel.NewPool(workers),
		outbox:  make([][][]message, n),
		seq:     make([]uint64, n),
		idle:    make([]uint64, n),
	}
	for s := range g.outbox {
		g.outbox[s] = make([][]message, n)
	}
	return g, nil
}

// Kernels returns the shard kernels, indexed by shard.
func (g *Group) Kernels() []*sim.Kernel { return g.kernels }

// Delta returns the lookahead.
func (g *Group) Delta() sim.Time { return g.delta }

// Workers returns the worker-pool size.
func (g *Group) Workers() int { return g.pool.Workers() }

// Quanta returns the number of synchronization quanta executed.
func (g *Group) Quanta() uint64 { return g.quanta }

// CrossMessages returns the number of mailbox messages delivered.
func (g *Group) CrossMessages() uint64 { return g.cross }

// IdleQuanta returns, per shard, how many quanta fired zero events on
// that shard — the deterministic proxy for barrier stall: a high count
// means the shard spent most barriers waiting on its peers.
func (g *Group) IdleQuanta() []uint64 {
	out := make([]uint64, len(g.idle))
	copy(out, g.idle)
	return out
}

// Executed returns the total events fired across all shards.
func (g *Group) Executed() uint64 {
	var n uint64
	for _, k := range g.kernels {
		n += k.Executed()
	}
	return n
}

// Post schedules fn on shard dst at absolute virtual time at, on
// behalf of shard src. During a quantum it may only be called from
// shard src's own event handlers (the per-(src,dst) outbox is
// single-writer), and at must be at or beyond the quantum horizon —
// with every cross-shard latency ≥ Δ this holds by construction, and
// Post panics otherwise rather than silently reordering the past.
// Outside a quantum (setup code, between RunUntil calls) the message
// is injected immediately.
func (g *Group) Post(src, dst int, at sim.Time, fn func()) {
	if !g.running {
		g.kernels[dst].At(at, fn)
		g.cross++
		return
	}
	if at < g.horizon {
		panic(fmt.Sprintf("shard: lookahead violation: shard %d posted to shard %d at %v, inside current quantum horizon %v",
			src, dst, at, g.horizon))
	}
	g.outbox[src][dst] = append(g.outbox[src][dst], message{at: at, seq: g.seq[src], src: src, fn: fn})
	g.seq[src]++
}

// Stop halts the group: the current RunUntil (if any) has already
// returned, and subsequent RunUntil calls are no-ops. Pending events
// on every shard remain queued but never fire. To stop from inside the
// simulation, an event handler stops its own shard's kernel instead;
// see RunUntil for how that propagates.
func (g *Group) Stop() { g.stopped = true }

// Stopped reports whether the group has halted, by Stop or by a shard
// kernel stopping.
func (g *Group) Stopped() bool { return g.stopped }

// Close releases the worker pool. The group must not be run afterwards.
func (g *Group) Close() { g.pool.Close() }

// RunUntil advances every shard to virtual time t: events with
// timestamps <= t fire, clocks end at exactly t.
//
// Stop semantics: an event handler may stop its own shard's kernel
// (never a peer's — that would be a cross-shard write). The stop is
// observed at the next barrier; every peer completes the full current
// quantum first, which is deterministic at any worker count because
// shards exchange nothing mid-quantum. The final quantum's mailbox
// messages are injected — so queued state is complete — but nothing
// further fires, no clock is advanced to t, and the group halts:
// subsequent RunUntil calls return immediately. An external Stop on
// the Group behaves the same way from the next RunUntil call on.
func (g *Group) RunUntil(t sim.Time) {
	if g.stopped {
		return
	}
	for {
		g.inject()
		for _, k := range g.kernels {
			if k.Stopped() {
				g.halt()
				return
			}
		}
		glb, ok := g.lowerBound()
		if !ok || glb > t {
			break
		}
		h := glb + g.delta
		if h > t+1 {
			h = t + 1
		}
		g.horizon = h
		g.running = true
		g.pool.Run(len(g.kernels), g.runShard)
		g.running = false
		g.quanta++
	}
	// Every remaining event is beyond t; advance the clocks to t.
	for _, k := range g.kernels {
		k.RunUntil(t)
	}
}

// runShard executes one shard's share of the current quantum.
func (g *Group) runShard(i int) {
	k := g.kernels[i]
	before := k.Executed()
	k.RunBefore(g.horizon)
	if k.Executed() == before {
		g.idle[i]++ // only job i writes idle[i]
	}
}

// lowerBound returns the earliest pending event time across shards.
func (g *Group) lowerBound() (sim.Time, bool) {
	var glb sim.Time
	found := false
	for _, k := range g.kernels {
		if at, ok := k.NextAt(); ok && (!found || at < glb) {
			glb = at
			found = true
		}
	}
	return glb, found
}

// inject drains every mailbox into its destination kernel. For each
// destination the pending messages from all sources are delivered in
// (at, seq, src) order — a strict total order because (seq, src) is
// unique per source — so the destination kernel's tie-breaking
// sequence numbers, and with them the firing order, are independent of
// which goroutines filled the outboxes.
func (g *Group) inject() {
	for dst := range g.kernels {
		pending := g.scratch[:0]
		for src := range g.kernels {
			box := g.outbox[src][dst]
			if len(box) == 0 {
				continue
			}
			pending = append(pending, box...)
			for i := range box {
				box[i].fn = nil // drop the closure refs in the reused backing array
			}
			g.outbox[src][dst] = box[:0]
		}
		if len(pending) == 0 {
			continue
		}
		sort.Slice(pending, func(a, b int) bool {
			if pending[a].at != pending[b].at {
				return pending[a].at < pending[b].at
			}
			if pending[a].seq != pending[b].seq {
				return pending[a].seq < pending[b].seq
			}
			return pending[a].src < pending[b].src
		})
		if g.san != nil {
			g.checkMailbox(dst, pending)
		}
		for i := range pending {
			g.kernels[dst].At(pending[i].at, pending[i].fn)
			pending[i].fn = nil
		}
		g.cross += uint64(len(pending))
		g.scratch = pending[:0]
	}
}

// checkMailbox asserts that a destination's sorted mailbox batch is
// strictly increasing in (at, seq, src) — i.e. every (seq, src) key is
// unique, so delivery order cannot depend on goroutine interleaving —
// and that no message lands in the destination's past (a lookahead
// violation Post's horizon panic did not see, e.g. a message delayed a
// full quantum).
func (g *Group) checkMailbox(dst int, pending []message) {
	now := g.kernels[dst].Now()
	for i := range pending {
		m := &pending[i]
		if m.at < now {
			g.san.Reportf("shard-mailbox", int64(now),
				"message from shard %d to shard %d at %v is in the destination's past",
				m.src, dst, m.at)
		}
		if i == 0 {
			continue
		}
		p := &pending[i-1]
		if m.at < p.at ||
			(m.at == p.at && (m.seq < p.seq || (m.seq == p.seq && m.src <= p.src))) {
			g.san.Reportf("shard-mailbox", int64(now),
				"mailbox for shard %d not strictly (at, seq, src)-ordered: (%v, %d, %d) after (%v, %d, %d)",
				dst, m.at, m.seq, m.src, p.at, p.seq, p.src)
		}
	}
}

// halt stops every kernel and the group, making any bypassing access
// to an individual shard kernel inert as well.
func (g *Group) halt() {
	for _, k := range g.kernels {
		k.Stop()
	}
	g.stopped = true
}
