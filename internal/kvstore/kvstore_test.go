package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/sim"
)

func testStore(t *testing.T, opts Options) (*sim.Kernel, *rdma.Fabric, *Store, *Client) {
	t.Helper()
	k := sim.New(1)
	cfg := rdma.NewDefaultConfig()
	cfg.Jitter = 0
	f, err := rdma.NewFabric(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	server, err := f.AddServer("dn")
	if err != nil {
		t.Fatal(err)
	}
	sd := rdma.NewDispatcher(server)
	store, err := NewStore(server, sd, opts)
	if err != nil {
		t.Fatal(err)
	}
	client, err := f.AddClient("c1")
	if err != nil {
		t.Fatal(err)
	}
	cd := rdma.NewDispatcher(client)
	kv, err := Attach(client, cd, store)
	if err != nil {
		t.Fatal(err)
	}
	return k, f, store, kv
}

func smallOpts() Options { return Options{Capacity: 256, RecordSize: 64} }

func valFor(key uint64) []byte {
	v := make([]byte, 64)
	binary.LittleEndian.PutUint64(v, key^0xABCD)
	return v
}

func TestStoreOptionsValidation(t *testing.T) {
	k := sim.New(1)
	f, _ := rdma.NewFabric(k, rdma.NewDefaultConfig())
	server, _ := f.AddServer("dn")
	if _, err := NewStore(server, nil, Options{Capacity: 0, RecordSize: 64}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewStore(server, nil, Options{Capacity: 16, RecordSize: 0}); err == nil {
		t.Error("zero record size accepted")
	}
}

func TestCapacityRoundsToPowerOfTwo(t *testing.T) {
	k := sim.New(1)
	f, _ := rdma.NewFabric(k, rdma.NewDefaultConfig())
	server, _ := f.AddServer("dn")
	s, err := NewStore(server, nil, Options{Capacity: 100, RecordSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if s.Options().Capacity != 128 {
		t.Errorf("capacity = %d, want 128", s.Options().Capacity)
	}
}

func TestPutGetLocal(t *testing.T) {
	_, _, store, _ := testStore(t, smallOpts())
	for k := uint64(0); k < 100; k++ {
		if err := store.Put(k, valFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 100 {
		t.Errorf("Len = %d, want 100", store.Len())
	}
	for k := uint64(0); k < 100; k++ {
		v, ok := store.Get(k)
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		if !bytes.Equal(v, valFor(k)) {
			t.Fatalf("key %d value mismatch", k)
		}
	}
	if _, ok := store.Get(9999); ok {
		t.Error("missing key found")
	}
}

func TestPutOverwrite(t *testing.T) {
	_, _, store, _ := testStore(t, smallOpts())
	if err := store.Put(5, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(5, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Errorf("Len = %d after overwrite, want 1", store.Len())
	}
	v, _ := store.Get(5)
	if string(v[:6]) != "second" {
		t.Errorf("overwrite lost: %q", v[:6])
	}
}

func TestPutShortValueZeroPadded(t *testing.T) {
	_, _, store, _ := testStore(t, smallOpts())
	_ = store.Put(1, bytes.Repeat([]byte{0xFF}, 64))
	_ = store.Put(1, []byte("x"))
	v, _ := store.Get(1)
	if v[0] != 'x' {
		t.Error("value not stored")
	}
	for i := 1; i < 64; i++ {
		if v[i] != 0 {
			t.Fatalf("byte %d = %x, want 0 (stale data leaked)", i, v[i])
		}
	}
}

func TestPutOversizeValue(t *testing.T) {
	_, _, store, _ := testStore(t, smallOpts())
	if err := store.Put(1, make([]byte, 65)); err == nil {
		t.Error("oversize value accepted")
	}
}

func TestTableFull(t *testing.T) {
	_, _, store, _ := testStore(t, Options{Capacity: 16, RecordSize: 8})
	for k := uint64(0); k < 16; k++ {
		if err := store.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Put(999, []byte{1}); err == nil {
		t.Error("put into full table accepted")
	}
}

func TestPopulate(t *testing.T) {
	_, _, store, _ := testStore(t, smallOpts())
	if err := store.Populate(50, valFor); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 50 {
		t.Errorf("Len = %d", store.Len())
	}
}

func TestOneSidedGetColdAndWarm(t *testing.T) {
	k, _, store, kv := testStore(t, smallOpts())
	if err := store.Populate(100, valFor); err != nil {
		t.Fatal(err)
	}

	var got []byte
	var gotErr error
	err := kv.Get(42, func(v []byte, err error) {
		got = append([]byte(nil), v...)
		gotErr = err
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if !bytes.Equal(got, valFor(42)) {
		t.Error("cold GET returned wrong value")
	}
	if kv.ProbeReads() == 0 {
		t.Error("cold GET did not probe the index")
	}
	if kv.CacheLen() != 1 {
		t.Errorf("CacheLen = %d, want 1", kv.CacheLen())
	}

	probesBefore := kv.ProbeReads()
	got = nil
	_ = kv.Get(42, func(v []byte, err error) { got = append([]byte(nil), v...); gotErr = err })
	k.Run()
	if gotErr != nil || !bytes.Equal(got, valFor(42)) {
		t.Error("warm GET failed")
	}
	if kv.ProbeReads() != probesBefore {
		t.Error("warm GET probed the index; location cache ineffective")
	}
}

func TestOneSidedGetIsSilent(t *testing.T) {
	k, _, store, kv := testStore(t, smallOpts())
	_ = store.Populate(10, valFor)
	kv.PrimeCache(10)
	for i := uint64(0); i < 10; i++ {
		_ = kv.Get(i, func([]byte, error) {})
	}
	k.Run()
	if n := store.Node().Stats().SendsReceived; n != 0 {
		t.Errorf("one-sided GETs generated %d server messages; CPU involved", n)
	}
}

func TestGetNotFound(t *testing.T) {
	k, _, store, kv := testStore(t, smallOpts())
	_ = store.Populate(10, valFor)
	var gotErr error
	called := false
	_ = kv.Get(777, func(v []byte, err error) { called, gotErr = true, err })
	k.Run()
	if !called || gotErr != ErrNotFound {
		t.Errorf("missing key: called=%v err=%v, want ErrNotFound", called, gotErr)
	}
}

func TestGetNilCallback(t *testing.T) {
	_, _, _, kv := testStore(t, smallOpts())
	if err := kv.Get(1, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if err := kv.GetTwoSided(1, nil); err == nil {
		t.Error("nil callback accepted (two-sided)")
	}
	if err := kv.PutTwoSided(1, nil, nil); err == nil {
		t.Error("nil callback accepted (put)")
	}
}

func TestPrimeCache(t *testing.T) {
	k, _, store, kv := testStore(t, smallOpts())
	_ = store.Populate(100, valFor)
	kv.PrimeCache(100)
	if kv.CacheLen() != 100 {
		t.Errorf("CacheLen = %d, want 100", kv.CacheLen())
	}
	// All primed GETs must be single reads: no probes.
	for i := uint64(0); i < 100; i++ {
		_ = kv.Get(i, func([]byte, error) {})
	}
	k.Run()
	if kv.ProbeReads() != 0 {
		t.Errorf("primed client issued %d probe reads", kv.ProbeReads())
	}
	if kv.OneSidedGets() != 100 {
		t.Errorf("OneSidedGets = %d, want 100", kv.OneSidedGets())
	}
}

func TestTwoSidedGetPut(t *testing.T) {
	k, _, _, kv := testStore(t, smallOpts())
	var putErr error = fmt.Errorf("sentinel")
	_ = kv.PutTwoSided(7, []byte("two-sided"), func(err error) { putErr = err })
	k.Run()
	if putErr != nil {
		t.Fatalf("PutTwoSided error: %v", putErr)
	}
	var got []byte
	var getErr error
	_ = kv.GetTwoSided(7, func(v []byte, err error) { got, getErr = v, err })
	k.Run()
	if getErr != nil {
		t.Fatal(getErr)
	}
	if string(got[:9]) != "two-sided" {
		t.Errorf("GetTwoSided = %q", got[:9])
	}
	var missErr error
	_ = kv.GetTwoSided(999, func(v []byte, err error) { missErr = err })
	k.Run()
	if missErr != ErrNotFound {
		t.Errorf("missing two-sided GET err = %v", missErr)
	}
}

func TestTwoSidedUsesServerCPU(t *testing.T) {
	k, _, store, kv := testStore(t, smallOpts())
	_ = store.Populate(10, valFor)
	for i := uint64(0); i < 5; i++ {
		_ = kv.GetTwoSided(i, func([]byte, error) {})
	}
	k.Run()
	if n := store.Node().Stats().SendsReceived; n != 5 {
		t.Errorf("server received %d sends, want 5", n)
	}
}

// TestProbeWraparound forces keys whose probe path wraps past the end of
// the table.
func TestProbeWraparound(t *testing.T) {
	k, _, store, kv := testStore(t, Options{Capacity: 16, RecordSize: 16})
	// Fill the table completely so probes traverse long runs including the
	// wrap point.
	for key := uint64(0); key < 16; key++ {
		if err := store.Put(key, valFor(key)[:16]); err != nil {
			t.Fatal(err)
		}
	}
	for key := uint64(0); key < 16; key++ {
		key := key
		var got []byte
		var gotErr error
		if err := kv.Get(key, func(v []byte, err error) { got, gotErr = append([]byte(nil), v...), err }); err != nil {
			t.Fatal(err)
		}
		k.Run()
		if gotErr != nil {
			t.Fatalf("key %d: %v", key, gotErr)
		}
		if !bytes.Equal(got, valFor(key)[:16]) {
			t.Fatalf("key %d: wrong value", key)
		}
	}
}

// TestGetMissFullTable: a missing key in a full table must terminate (probe
// depth bound) rather than loop forever.
func TestGetMissFullTable(t *testing.T) {
	k, _, store, kv := testStore(t, Options{Capacity: 16, RecordSize: 16})
	for key := uint64(0); key < 16; key++ {
		_ = store.Put(key, valFor(key)[:16])
	}
	var gotErr error
	called := false
	_ = kv.Get(1234, func(v []byte, err error) { called, gotErr = true, err })
	k.Run()
	if !called {
		t.Fatal("probe of full table never terminated")
	}
	if gotErr != ErrNotFound {
		t.Errorf("err = %v, want ErrNotFound", gotErr)
	}
}

// Property test: any set of distinct keys stored then read back one-sided
// returns the exact stored values.
func TestStoreClientRoundTripProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		if len(keys) > 60 {
			keys = keys[:60]
		}
		k, _, store, kv := testStore(t, Options{Capacity: 128, RecordSize: 16})
		seen := map[uint64]bool{}
		var distinct []uint64
		for _, key := range keys {
			if !seen[key] {
				seen[key] = true
				distinct = append(distinct, key)
			}
		}
		for _, key := range distinct {
			if err := store.Put(key, valFor(key)[:16]); err != nil {
				return false
			}
		}
		okAll := true
		for _, key := range distinct {
			key := key
			_ = kv.Get(key, func(v []byte, err error) {
				if err != nil || !bytes.Equal(v, valFor(key)[:16]) {
					okAll = false
				}
			})
		}
		k.Run()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHashKeyDispersion(t *testing.T) {
	// Adjacent keys must not collide into the same slot region en masse.
	buckets := map[uint64]int{}
	const n = 4096
	for k := uint64(0); k < n; k++ {
		buckets[hashKey(k)%64]++
	}
	for b, c := range buckets {
		if c < n/64/2 || c > n/64*2 {
			t.Errorf("bucket %d has %d keys; poor dispersion", b, c)
		}
	}
}

func TestAttachValidation(t *testing.T) {
	k := sim.New(1)
	f, _ := rdma.NewFabric(k, rdma.NewDefaultConfig())
	server, _ := f.AddServer("dn")
	store, err := NewStore(server, nil, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(nil, nil, store); err == nil {
		t.Error("nil node accepted")
	}
	client, _ := f.AddClient("c")
	if _, err := Attach(client, nil, nil); err == nil {
		t.Error("nil store accepted")
	}
	kv, err := Attach(client, nil, store) // nil dispatcher: one-sided only
	if err != nil {
		t.Fatal(err)
	}
	if kv.Node() != client {
		t.Error("Node accessor wrong")
	}
}

func TestDuplicateAttachSameDispatcher(t *testing.T) {
	k := sim.New(1)
	f, _ := rdma.NewFabric(k, rdma.NewDefaultConfig())
	server, _ := f.AddServer("dn")
	store, _ := NewStore(server, nil, smallOpts())
	client, _ := f.AddClient("c")
	d := rdma.NewDispatcher(client)
	if _, err := Attach(client, d, store); err != nil {
		t.Fatal(err)
	}
	// Second attach with the same dispatcher clashes on response kinds.
	if _, err := Attach(client, d, store); err == nil {
		t.Error("duplicate RPC handler registration accepted")
	}
}

func TestServerHandlersIgnoreWrongTypes(t *testing.T) {
	k, f, store, _ := testStore(t, smallOpts())
	// Send raw garbage under the RPC kinds: the store must ignore it.
	client2, _ := f.AddClient("c2")
	qp, _ := f.Connect(client2, store.Node())
	_ = qp.Send(rdma.Message{Kind: "kv.get", Body: "not-a-request"}, 16, nil)
	_ = qp.Send(rdma.Message{Kind: "kv.put", Body: 42}, 16, nil)
	k.Run() // must not panic
}

func TestStoreDispatcherConflict(t *testing.T) {
	k := sim.New(1)
	f, _ := rdma.NewFabric(k, rdma.NewDefaultConfig())
	server, _ := f.AddServer("dn")
	d := rdma.NewDispatcher(server)
	if _, err := NewStore(server, d, smallOpts()); err != nil {
		t.Fatal(err)
	}
	// A second store on the same node clashes on regions.
	if _, err := NewStore(server, d, smallOpts()); err == nil {
		t.Error("second store on one node accepted")
	}
}
