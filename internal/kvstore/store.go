// Package kvstore implements the memory-resident key-value store the
// paper's data node serves (Section II: "The server (data node) implements
// a key-value store using a protocol like Telepathy with one-sided I/Os").
//
// Layout on the data node:
//
//   - an index region of 16-byte slots (8-byte key, 8-byte state word with
//     an occupied bit and the record's data offset), open addressing with
//     linear probing;
//   - a data region of fixed-size records (4 KB by default, the size used
//     throughout the paper's evaluation).
//
// Clients locate a record with one-sided reads of index slots, cache the
// key -> offset mapping (a location cache in the style of FaRM/Telepathy),
// and from then on a GET is exactly one silent one-sided 4 KB READ — the
// access pattern whose QoS Haechi manages. A two-sided RPC path (GET/PUT
// through the server CPU) is provided both for comparison experiments and
// for mutations.
package kvstore

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/rdma"
)

const (
	// slotSize is the byte size of one index slot.
	slotSize = 16
	// occupiedBit marks a slot as holding a record.
	occupiedBit = uint64(1) << 63

	// IndexRegionName and DataRegionName are the registered-region names
	// clients attach to.
	IndexRegionName = "kv/index"
	DataRegionName  = "kv/data"

	// Message kinds for the two-sided RPC path.
	msgGet     = "kv.get"
	msgGetResp = "kv.get.resp"
	msgPut     = "kv.put"
	msgPutResp = "kv.put.resp"
)

// hashKey mixes a key with the splitmix64 finalizer; both store and
// clients must agree on it to compute slot positions.
func hashKey(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Options configures a Store.
type Options struct {
	// Capacity is the number of record slots (rounded up to a power of
	// two). The paper populates 1M records; experiments here default to a
	// smaller table because table size does not influence the fabric
	// timing model (see DESIGN.md).
	Capacity int
	// RecordSize is the value size in bytes; the paper uses 4 KB.
	RecordSize int
}

// NewDefaultOptions returns a 64Ki-record store of 4 KB values.
func NewDefaultOptions() Options {
	return Options{Capacity: 1 << 16, RecordSize: rdma.DataIOSize}
}

// Store is the server-side key-value store.
type Store struct {
	node    *rdma.Node
	opts    Options
	mask    uint64
	index   *rdma.Region
	data    *rdma.Region
	count   int
	puts    uint64
	getRPCs uint64
	scratch []byte

	// primedLoc is the shared prefix of primed key locations (-1 when the
	// key was absent at build time), built on the first PrimeCache call and
	// extended append-only; see primeShared. Sharing one slab across every
	// attached client replaces 10^5 identical per-client maps at fleet
	// scale with a single read-only array.
	primedLoc []int64
}

// primeShared returns the shared primed-location slab covering keys
// [0, n), building the missing suffix from the live index on first use.
// Entries are never rewritten after they are built: a location is stable
// once a record exists (updates are in-place), and a key absent at build
// time stays -1 so later clients resolve it with the same probe sequence
// an early client would have used. Extension appends, so clients holding
// a shorter prefix keep their original backing array.
func (s *Store) primeShared(n int) []int64 {
	for len(s.primedLoc) < n {
		key := uint64(len(s.primedLoc))
		loc := int64(-1)
		if slot, ok, _, _ := s.findSlot(key); ok {
			_, state := s.slotState(slot)
			loc = int64(state &^ occupiedBit)
		}
		s.primedLoc = append(s.primedLoc, loc)
	}
	return s.primedLoc
}

// NewStore registers the store's regions on node and, if disp is non-nil,
// installs the two-sided RPC handlers.
func NewStore(node *rdma.Node, disp *rdma.Dispatcher, opts Options) (*Store, error) {
	if opts.Capacity <= 0 {
		return nil, fmt.Errorf("kvstore: capacity must be positive, got %d", opts.Capacity)
	}
	if opts.RecordSize <= 0 {
		return nil, fmt.Errorf("kvstore: record size must be positive, got %d", opts.RecordSize)
	}
	cap := 1
	for cap < opts.Capacity {
		cap <<= 1
	}
	opts.Capacity = cap

	index, err := node.RegisterRegion(IndexRegionName, cap*slotSize)
	if err != nil {
		return nil, fmt.Errorf("kvstore: registering index: %w", err)
	}
	data, err := node.RegisterRegion(DataRegionName, cap*opts.RecordSize)
	if err != nil {
		return nil, fmt.Errorf("kvstore: registering data: %w", err)
	}
	s := &Store{
		node:  node,
		opts:  opts,
		mask:  uint64(cap - 1),
		index: index,
		data:  data,
	}
	if disp != nil {
		if err := disp.Handle(msgGet, s.handleGet); err != nil {
			return nil, err
		}
		if err := disp.Handle(msgPut, s.handlePut); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Node returns the data node hosting the store.
func (s *Store) Node() *rdma.Node { return s.node }

// Options returns the store's configuration (with Capacity rounded up).
func (s *Store) Options() Options { return s.opts }

// Len returns the number of stored records.
func (s *Store) Len() int { return s.count }

// IndexRegion returns the index region capability for client attach.
func (s *Store) IndexRegion() *rdma.Region { return s.index }

// DataRegion returns the data region capability for client attach.
func (s *Store) DataRegion() *rdma.Region { return s.data }

// slotState reads the state word of slot i.
func (s *Store) slotState(i uint64) (key uint64, state uint64) {
	off := int(i) * slotSize
	key, _ = s.index.Uint64(off)
	state, _ = s.index.Uint64(off + 8)
	return key, state
}

// findSlot returns the slot index holding key, or the first free slot on
// its probe path. ok reports whether the key was found.
func (s *Store) findSlot(key uint64) (slot uint64, ok bool, free uint64, hasFree bool) {
	start := hashKey(key) & s.mask
	for probe := uint64(0); probe <= s.mask; probe++ {
		i := (start + probe) & s.mask
		k, state := s.slotState(i)
		if state&occupiedBit == 0 {
			return 0, false, i, true
		}
		if k == key {
			return i, true, 0, false
		}
	}
	return 0, false, 0, false
}

// Put stores value under key, server-side (used to populate the store and
// by the PUT RPC). The value is copied.
func (s *Store) Put(key uint64, value []byte) error {
	if len(value) > s.opts.RecordSize {
		return fmt.Errorf("kvstore: value of %d bytes exceeds record size %d", len(value), s.opts.RecordSize)
	}
	slot, ok, free, hasFree := s.findSlot(key)
	if !ok {
		if !hasFree {
			return fmt.Errorf("kvstore: table full (%d records)", s.count)
		}
		slot = free
		s.count++
	}
	dataOff := int(slot) * s.opts.RecordSize
	off := int(slot) * slotSize
	if err := s.index.PutUint64(off, key); err != nil {
		return err
	}
	if err := s.index.PutUint64(off+8, occupiedBit|uint64(dataOff)); err != nil {
		return err
	}
	// Store the value zero-padded to the fixed record size.
	if s.scratch == nil {
		s.scratch = make([]byte, s.opts.RecordSize)
	}
	copy(s.scratch, value)
	for i := len(value); i < s.opts.RecordSize; i++ {
		s.scratch[i] = 0
	}
	if err := s.data.CopyIn(dataOff, s.scratch); err != nil {
		return err
	}
	s.puts++
	return nil
}

// Get returns a copy of the record stored under key, server-side.
func (s *Store) Get(key uint64) ([]byte, bool) {
	slot, ok, _, _ := s.findSlot(key)
	if !ok {
		return nil, false
	}
	_, state := s.slotState(slot)
	dataOff := int(state &^ occupiedBit)
	v, err := s.data.CopyOut(dataOff, s.opts.RecordSize)
	if err != nil {
		return nil, false
	}
	return v, true
}

// Populate fills the store with n records whose values are produced by
// valueFn(key); keys are 0..n-1 as in the paper's YCSB load phase.
func (s *Store) Populate(n int, valueFn func(key uint64) []byte) error {
	for k := 0; k < n; k++ {
		if err := s.Put(uint64(k), valueFn(uint64(k))); err != nil {
			return fmt.Errorf("kvstore: populating key %d: %w", k, err)
		}
	}
	return nil
}

// getRequest is the two-sided GET wire format.
type getRequest struct {
	key   uint64
	reqID uint64
}

// getResponse carries the record (or ok=false).
type getResponse struct {
	reqID uint64
	value []byte
	ok    bool
}

type putRequest struct {
	key   uint64
	value []byte
	reqID uint64
}

type putResponse struct {
	reqID uint64
	err   string
}

func (s *Store) handleGet(from *rdma.Node, body any) {
	req, ok := body.(getRequest)
	if !ok {
		return
	}
	v, found := s.Get(req.key)
	s.getRPCs++
	qp, err := s.node.Fabric().Connect(s.node, from)
	if err != nil {
		return
	}
	size := 16
	if found {
		size += len(v)
	}
	_ = qp.Send(rdma.Message{Kind: msgGetResp, Body: getResponse{reqID: req.reqID, value: v, ok: found}}, size, nil)
}

func (s *Store) handlePut(from *rdma.Node, body any) {
	req, ok := body.(putRequest)
	if !ok {
		return
	}
	errStr := ""
	if err := s.Put(req.key, req.value); err != nil {
		errStr = err.Error()
	}
	qp, err := s.node.Fabric().Connect(s.node, from)
	if err != nil {
		return
	}
	_ = qp.Send(rdma.Message{Kind: msgPutResp, Body: putResponse{reqID: req.reqID, err: errStr}}, 24, nil)
}
