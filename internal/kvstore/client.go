package kvstore

import (
	"errors"
	"fmt"

	"github.com/haechi-qos/haechi/internal/rdma"
)

// ErrNotFound is returned when a key has no record.
var ErrNotFound = errors.New("kvstore: key not found")

// probeWindow is the number of index slots fetched per one-sided probe
// read while resolving an uncached key (128 B per probe).
const probeWindow = 8

// Client is the client-side accessor: one-sided GETs against the store's
// registered regions plus a two-sided RPC path. It maintains a location
// cache so a warm GET is exactly one one-sided 4 KB READ.
//
// One-sided completions are not captured in per-operation closures: reads
// of one kind on a QP complete in issue order (every pipeline stage is
// FIFO within a class), so the client keeps a FIFO of pending callbacks
// per I/O kind and hands the fabric one method bound at Attach. A warm
// GET or Update therefore allocates nothing on the client side.
type Client struct {
	node       *rdma.Node
	store      *Store
	qp         *rdma.QP
	index      *rdma.Region
	data       *rdma.Region
	recordSize int
	capacity   uint64
	mask       uint64

	// Key-location cache, split for fleet scale: primed is a read-only
	// prefix shared with every other client of the store ([0, primedN),
	// -1 when absent; primedFound counts the hits), and cache is a lazy
	// per-client overlay holding only locations learned by probing.
	primed      []int64
	primedN     int
	primedFound int
	cache       map[uint64]int

	nextReqID  uint64
	pendingGet map[uint64]func([]byte, error)
	pendingPut map[uint64]func(error)

	// Pending one-sided completions, FIFO per I/O kind, with the bound
	// completion methods handed to the fabric.
	dataPending   fifo[func([]byte, error)]
	probePending  fifo[probeState]
	writePending  fifo[func(error)]
	onDataReadFn  func([]byte)
	onProbeFn     func([]byte)
	onWriteDoneFn func()

	// oneSidedGets counts one-sided data reads issued (probe reads are
	// counted separately); oneSidedPuts counts one-sided record writes.
	oneSidedGets uint64
	oneSidedPuts uint64
	probeReads   uint64
}

// probeState is the continuation of an in-flight index probe read.
type probeState struct {
	key   uint64
	pos   uint64
	depth uint64
	n     uint64
	cb    func([]byte, error)
}

// fifo is a generic queue backed by a reusable slice; pop compacts lazily
// so steady-state traffic stops allocating once the buffer reaches its
// high-water mark.
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifo[T]) pop() T {
	var zero T
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head >= len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

// Attach connects node to store over the fabric. disp is the client-side
// dispatcher used to receive two-sided RPC responses; it may be nil if
// only the one-sided path will be used.
func Attach(node *rdma.Node, disp *rdma.Dispatcher, store *Store) (*Client, error) {
	if node == nil || store == nil {
		return nil, fmt.Errorf("kvstore: Attach requires a node and a store")
	}
	qp, err := node.Fabric().Connect(node, store.node)
	if err != nil {
		return nil, fmt.Errorf("kvstore: connecting %s to store: %w", node.Name(), err)
	}
	c := &Client{
		node:       node,
		store:      store,
		qp:         qp,
		index:      store.index,
		data:       store.data,
		recordSize: store.opts.RecordSize,
		capacity:   uint64(store.opts.Capacity),
		mask:       store.mask,
	}
	c.onDataReadFn = c.onDataRead
	c.onProbeFn = c.onProbe
	c.onWriteDoneFn = c.onWriteDone
	if disp != nil {
		if err := disp.Handle(msgGetResp, c.handleGetResp); err != nil {
			return nil, err
		}
		if err := disp.Handle(msgPutResp, c.handlePutResp); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Node returns the client's node.
func (c *Client) Node() *rdma.Node { return c.node }

// OneSidedGets returns the number of one-sided data READs issued.
func (c *Client) OneSidedGets() uint64 { return c.oneSidedGets }

// OneSidedPuts returns the number of one-sided record WRITEs issued.
func (c *Client) OneSidedPuts() uint64 { return c.oneSidedPuts }

// ProbeReads returns the number of index probe READs issued (cold-cache
// lookups only).
func (c *Client) ProbeReads() uint64 { return c.probeReads }

// CacheLen returns the number of cached key locations.
func (c *Client) CacheLen() int { return c.primedFound + len(c.cache) }

// lookup resolves a key's cached data offset: the probe-learned overlay
// first (a primed key never probes, so the two never overlap), then the
// shared primed prefix.
func (c *Client) lookup(key uint64) (int, bool) {
	if off, ok := c.cache[key]; ok {
		return off, true
	}
	if key < uint64(c.primedN) {
		if loc := c.primed[key]; loc >= 0 {
			return int(loc), true
		}
	}
	return 0, false
}

// learn records a probe-resolved location in the lazy overlay.
func (c *Client) learn(key uint64, off int) {
	if c.cache == nil {
		c.cache = make(map[uint64]int)
	}
	c.cache[key] = off
}

// PrimeCache fills the location cache for keys [0, n) directly from the
// store's index, modelling a client in steady state (the paper's
// measurement phase starts after 30 s of warm-up, by which point every hot
// key's location is cached and a GET is a single one-sided READ).
// The slab itself lives on the Store and is shared by all clients.
func (c *Client) PrimeCache(n int) {
	c.primed = c.store.primeShared(n)
	if n > len(c.primed) {
		n = len(c.primed)
	}
	c.primedN = n
	c.primedFound = 0
	for k := 0; k < n; k++ {
		if c.primed[k] >= 0 {
			c.primedFound++
		}
	}
}

// Get performs a one-sided GET: a cached key costs exactly one silent
// 4 KB READ; an uncached key first probes the index with small one-sided
// reads. The value passed to cb is a view valid at delivery time.
func (c *Client) Get(key uint64, cb func(value []byte, err error)) error {
	if cb == nil {
		return fmt.Errorf("kvstore: Get requires a callback")
	}
	if off, ok := c.lookup(key); ok {
		return c.readData(off, cb)
	}
	start := hashKey(key) & c.mask
	return c.probe(key, start, 0, cb)
}

func (c *Client) readData(off int, cb func([]byte, error)) error {
	err := c.qp.Read(c.data, off, c.recordSize, c.onDataReadFn)
	if err == nil {
		c.dataPending.push(cb)
		c.oneSidedGets++
	}
	return err
}

// onDataRead completes the oldest pending data READ. Data reads on the
// QP complete in issue order, so the head of the FIFO is the matching
// callback. A READ never fails after issue, so push/pop counts balance.
func (c *Client) onDataRead(data []byte) {
	cb := c.dataPending.pop()
	cb(data, nil)
}

// probe reads a window of index slots starting at slot position pos
// (probed slots so far: depth) and either resolves the key, fails with
// ErrNotFound at the first unoccupied slot, or continues probing. The
// continuation state is queued FIFO: probe reads are all control-class
// operations on one QP, so they too complete in issue order even when
// several keys resolve concurrently.
func (c *Client) probe(key uint64, pos, depth uint64, cb func([]byte, error)) error {
	if depth > c.mask {
		cb(nil, ErrNotFound)
		return nil
	}
	// Clamp the window at the region end; the next probe wraps to 0.
	n := uint64(probeWindow)
	if pos+n > c.capacity {
		n = c.capacity - pos
	}
	off := int(pos) * slotSize
	size := int(n) * slotSize
	err := c.qp.Read(c.index, off, size, c.onProbeFn)
	if err == nil {
		c.probePending.push(probeState{key: key, pos: pos, depth: depth, n: n, cb: cb})
		c.probeReads++
	}
	return err
}

func (c *Client) onProbe(raw []byte) {
	st := c.probePending.pop()
	for i := uint64(0); i < st.n; i++ {
		k := leUint64(raw[i*slotSize:])
		state := leUint64(raw[i*slotSize+8:])
		if state&occupiedBit == 0 {
			st.cb(nil, ErrNotFound)
			return
		}
		if k == st.key {
			dataOff := int(state &^ occupiedBit)
			c.learn(st.key, dataOff)
			if err := c.readData(dataOff, st.cb); err != nil {
				st.cb(nil, err)
			}
			return
		}
	}
	next := (st.pos + st.n) & c.mask
	if err := c.probe(st.key, next, st.depth+st.n, st.cb); err != nil {
		st.cb(nil, err)
	}
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Update overwrites an existing record with a one-sided RDMA WRITE of the
// full record (update-in-place, as one-sided KV designs do for fixed-size
// values; inserts of new keys go through the two-sided PUT path because
// the index must be mutated on the server). The key's location must be
// resolvable: cached, or discovered with index probes first.
func (c *Client) Update(key uint64, value []byte, cb func(error)) error {
	if cb == nil {
		return fmt.Errorf("kvstore: Update requires a callback")
	}
	if len(value) > c.recordSize {
		return fmt.Errorf("kvstore: value of %d bytes exceeds record size %d", len(value), c.recordSize)
	}
	if off, ok := c.lookup(key); ok {
		return c.writeData(off, value, cb)
	}
	// Resolve the location with the usual probe path, then write.
	start := hashKey(key) & c.mask
	return c.probe(key, start, 0, func(_ []byte, err error) {
		// The probe path issues a data READ on success; for an update we
		// accept that extra read on the cold path (a real client caches
		// locations long before steady state) and then write.
		if err != nil {
			cb(err)
			return
		}
		off, _ := c.lookup(key)
		if err := c.writeData(off, value, cb); err != nil {
			cb(err)
		}
	})
}

func (c *Client) writeData(off int, value []byte, cb func(error)) error {
	buf := value
	if len(buf) < c.recordSize {
		padded := make([]byte, c.recordSize)
		copy(padded, buf)
		buf = padded
	}
	err := c.qp.Write(c.data, off, buf, c.onWriteDoneFn)
	if err == nil {
		c.writePending.push(cb)
		c.oneSidedPuts++
	}
	return err
}

// onWriteDone completes the oldest pending record WRITE (record writes
// all carry the same size, hence the same class, and complete in issue
// order on the QP).
func (c *Client) onWriteDone() {
	cb := c.writePending.pop()
	cb(nil)
}

// GetTwoSided performs a GET through the server CPU (the conventional RPC
// path used for the two-sided comparison experiments).
func (c *Client) GetTwoSided(key uint64, cb func(value []byte, err error)) error {
	if cb == nil {
		return fmt.Errorf("kvstore: GetTwoSided requires a callback")
	}
	id := c.nextReqID
	c.nextReqID++
	if c.pendingGet == nil {
		c.pendingGet = make(map[uint64]func([]byte, error))
	}
	c.pendingGet[id] = cb
	err := c.qp.Send(rdma.Message{Kind: msgGet, Body: getRequest{key: key, reqID: id}}, 24, nil)
	if err != nil {
		delete(c.pendingGet, id)
	}
	return err
}

// PutTwoSided stores value under key through the server CPU.
func (c *Client) PutTwoSided(key uint64, value []byte, cb func(error)) error {
	if cb == nil {
		return fmt.Errorf("kvstore: PutTwoSided requires a callback")
	}
	id := c.nextReqID
	c.nextReqID++
	if c.pendingPut == nil {
		c.pendingPut = make(map[uint64]func(error))
	}
	c.pendingPut[id] = cb
	buf := make([]byte, len(value))
	copy(buf, value)
	err := c.qp.Send(rdma.Message{Kind: msgPut, Body: putRequest{key: key, value: buf, reqID: id}}, 24+len(buf), nil)
	if err != nil {
		delete(c.pendingPut, id)
	}
	return err
}

func (c *Client) handleGetResp(_ *rdma.Node, body any) {
	resp, ok := body.(getResponse)
	if !ok {
		return
	}
	cb, ok := c.pendingGet[resp.reqID]
	if !ok {
		return
	}
	delete(c.pendingGet, resp.reqID)
	if !resp.ok {
		cb(nil, ErrNotFound)
		return
	}
	cb(resp.value, nil)
}

func (c *Client) handlePutResp(_ *rdma.Node, body any) {
	resp, ok := body.(putResponse)
	if !ok {
		return
	}
	cb, ok := c.pendingPut[resp.reqID]
	if !ok {
		return
	}
	delete(c.pendingPut, resp.reqID)
	if resp.err != "" {
		cb(errors.New(resp.err))
		return
	}
	cb(nil)
}
