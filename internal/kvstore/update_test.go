package kvstore

import (
	"bytes"
	"testing"
)

func TestUpdateWarmCache(t *testing.T) {
	k, _, store, kv := testStore(t, smallOpts())
	if err := store.Populate(50, valFor); err != nil {
		t.Fatal(err)
	}
	kv.PrimeCache(50)

	var updErr error = nil
	called := false
	if err := kv.Update(7, []byte("updated!"), func(err error) { called, updErr = true, err }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !called || updErr != nil {
		t.Fatalf("update callback: called=%v err=%v", called, updErr)
	}
	v, ok := store.Get(7)
	if !ok || string(v[:8]) != "updated!" {
		t.Errorf("server value = %q", v[:8])
	}
	// Zero-padded tail.
	for i := 8; i < len(v); i++ {
		if v[i] != 0 {
			t.Fatalf("tail byte %d = %x", i, v[i])
		}
	}
	if kv.OneSidedPuts() != 1 {
		t.Errorf("OneSidedPuts = %d", kv.OneSidedPuts())
	}
}

func TestUpdateColdCacheResolves(t *testing.T) {
	k, _, store, kv := testStore(t, smallOpts())
	_ = store.Populate(20, valFor)
	var updErr error
	_ = kv.Update(11, []byte("cold"), func(err error) { updErr = err })
	k.Run()
	if updErr != nil {
		t.Fatal(updErr)
	}
	if kv.ProbeReads() == 0 {
		t.Error("cold update did not probe")
	}
	v, _ := store.Get(11)
	if string(v[:4]) != "cold" {
		t.Errorf("value = %q", v[:4])
	}
}

func TestUpdateMissingKey(t *testing.T) {
	k, _, store, kv := testStore(t, smallOpts())
	_ = store.Populate(10, valFor)
	var updErr error
	called := false
	_ = kv.Update(999, []byte("x"), func(err error) { called, updErr = true, err })
	k.Run()
	if !called || updErr != ErrNotFound {
		t.Errorf("missing-key update: called=%v err=%v", called, updErr)
	}
}

func TestUpdateValidation(t *testing.T) {
	_, _, _, kv := testStore(t, smallOpts())
	if err := kv.Update(1, nil, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if err := kv.Update(1, make([]byte, 65), func(error) {}); err == nil {
		t.Error("oversize value accepted")
	}
}

// TestUpdateIsSilent: one-sided updates never touch the server CPU.
func TestUpdateIsSilent(t *testing.T) {
	k, _, store, kv := testStore(t, smallOpts())
	_ = store.Populate(10, valFor)
	kv.PrimeCache(10)
	for i := uint64(0); i < 10; i++ {
		_ = kv.Update(i, []byte{byte(i)}, func(error) {})
	}
	k.Run()
	if n := store.Node().Stats().SendsReceived; n != 0 {
		t.Errorf("one-sided updates generated %d server messages", n)
	}
}

// TestUpdateThenGet round trip through both one-sided paths.
func TestUpdateThenGet(t *testing.T) {
	k, _, store, kv := testStore(t, smallOpts())
	_ = store.Populate(10, valFor)
	kv.PrimeCache(10)
	want := []byte("round-trip-value")
	_ = kv.Update(3, want, func(error) {})
	var got []byte
	_ = kv.Get(3, func(v []byte, err error) { got = append([]byte(nil), v[:len(want)]...) })
	k.Run()
	if !bytes.Equal(got, want) {
		t.Errorf("got %q want %q", got, want)
	}
}
