// Package sanitize implements the dynamic half of the determinism
// contract (DESIGN.md §6, §10): cheap always-on invariant assertions
// that run inside every sanitized simulation, not just in dedicated
// tests. Enabled by cluster.Config.Sanitize (the -sanitize flag on
// haechibench/haechiprofile); when off, the hooks are nil and the hot
// path pays a single pointer comparison and allocates nothing.
//
// The checks are pure observers: they read engine/monitor/kernel state
// that the run already computes and never schedule events, mutate
// state, or allocate on the event path — which is why a sanitized run
// stays byte-identical to an unsanitized one (extended
// TestObservabilityInert). Checked invariants:
//
//   - token conservation per engine period: used + remaining + yielded
//     reservation tokens always equal the admitted reservation;
//   - global-pool floor: the shared pool may only go negative by the
//     in-flight claim window (one batch per client);
//   - reservation floor under admission: aggregate headroom never
//     negative;
//   - (at, seq) monotonicity per kernel: events fire in strictly
//     increasing lexicographic order;
//   - shard mailbox ordering: cross-shard injections are unique,
//     sorted by (at, seq, src), and never in the destination's past;
//   - background-job window bounds: 0 <= outstanding <= window.
//
// Chaos runs (cluster.Config.Chaos, DESIGN.md §12) add failure-aware
// invariants on top:
//
//   - crash-quarantine conservation: tokens held by a crashed client
//     are quarantined, never spent, and released exactly once on
//     restart ("crash-quarantine");
//   - no completion after crash: a crashed engine observes no further
//     I/O completions until it restarts ("post-crash-completion");
//   - rejoin monotonicity: a restarted client's period index resumes
//     strictly past its crash point ("rejoin-monotonic");
//   - reclamation conservation: reservation reclaimed by the failure
//     detector equals what the crashed client held
//     ("reclamation-conservation");
//   - surviving-client reservation floor: clients that did not crash
//     meet their reservation in every window not excused by an
//     injected fault ("reservation-floor-survivor").
//
// Violations are collected (capped), never panic mid-run, and surface
// as an error from cluster.Run — so the deliberately-injected token
// leak in the regression suite fails loudly while production runs stay
// allocation-free.
package sanitize

import (
	"fmt"
	"strings"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Check names the invariant ("token-conservation", "kernel-order",
	// "pool-floor", "reservation-floor", "shard-mailbox", "bg-window",
	// and under chaos "crash-quarantine", "post-crash-completion",
	// "rejoin-monotonic", "reclamation-conservation",
	// "reservation-floor-survivor").
	Check string
	// At is the virtual time (ns) when the breach was observed.
	At int64
	// Detail is a human-readable account with the observed values.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at t=%dns: %s", v.Check, v.At, v.Detail)
}

// maxViolations caps collection: a broken invariant usually trips every
// period, and the first few occurrences carry all the signal.
const maxViolations = 64

// Checker accumulates violations. It is single-threaded like everything
// else inside a kernel: each shard's events run one at a time, and the
// coordinator only reads results between quanta. A nil *Checker is a
// valid no-op receiver so call sites can stay unconditional where the
// hot path does not care.
type Checker struct {
	violations []Violation
	dropped    uint64
}

// New returns an empty checker.
func New() *Checker { return &Checker{} }

// Reportf records a violation. Callers on hot paths must guard with a
// nil check BEFORE building arguments so the sanitize-off run does not
// evaluate (or allocate) them.
func (c *Checker) Reportf(check string, at int64, format string, args ...any) {
	if c == nil {
		return
	}
	if len(c.violations) >= maxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{
		Check:  check,
		At:     at,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Violations returns the recorded breaches in observation order.
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Dropped reports how many breaches exceeded the collection cap.
func (c *Checker) Dropped() uint64 {
	if c == nil {
		return 0
	}
	return c.dropped
}

// Merge concatenates several checkers' violations into one checker, in
// argument order. A sharded cluster gives each shard its own checker —
// shards run concurrently and the package deliberately uses no locking
// (the kernel packages forbid sync imports) — and merges them in shard
// order at the end of the run, which is deterministic because each
// shard's event schedule is. Nil checkers are skipped.
func Merge(cs ...*Checker) *Checker {
	m := New()
	for _, c := range cs {
		if c == nil {
			continue
		}
		m.violations = append(m.violations, c.violations...)
		m.dropped += c.dropped
	}
	if len(m.violations) > maxViolations {
		m.dropped += uint64(len(m.violations) - maxViolations)
		m.violations = m.violations[:maxViolations]
	}
	return m
}

// Err summarizes the recorded violations as one error, or nil when the
// run was clean (or the checker is nil, i.e. sanitizing is off).
func (c *Checker) Err() error {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sanitize: %d invariant violation(s)", len(c.violations))
	if c.dropped > 0 {
		fmt.Fprintf(&b, " (+%d beyond cap)", c.dropped)
	}
	shown := c.violations
	if len(shown) > 3 {
		shown = shown[:3]
	}
	for _, v := range shown {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}
