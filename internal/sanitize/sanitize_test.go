package sanitize

import (
	"fmt"
	"strings"
	"testing"
)

// TestNilCheckerIsInert pins the nil-receiver contract every hook site
// relies on: with sanitizing off the checker pointer is nil and all
// methods are no-ops.
func TestNilCheckerIsInert(t *testing.T) {
	var c *Checker
	c.Reportf("token-conservation", 1, "ignored %d", 42)
	if got := c.Violations(); got != nil {
		t.Errorf("nil checker has violations: %v", got)
	}
	if got := c.Dropped(); got != 0 {
		t.Errorf("nil checker dropped %d", got)
	}
	if err := c.Err(); err != nil {
		t.Errorf("nil checker errs: %v", err)
	}
}

func TestReportfCapsAndCounts(t *testing.T) {
	c := New()
	for i := 0; i < maxViolations+10; i++ {
		c.Reportf("pool-floor", int64(i), "breach %d", i)
	}
	if got := len(c.Violations()); got != maxViolations {
		t.Fatalf("recorded %d violations, want cap %d", got, maxViolations)
	}
	if got := c.Dropped(); got != 10 {
		t.Errorf("dropped %d, want 10", got)
	}
	if v := c.Violations()[0]; v.Check != "pool-floor" || v.At != 0 || v.Detail != "breach 0" {
		t.Errorf("first violation mangled: %+v", v)
	}
	err := c.Err()
	if err == nil {
		t.Fatal("capped checker returned nil error")
	}
	for _, want := range []string{"64 invariant violation(s)", "(+10 beyond cap)", "pool-floor at t=0ns: breach 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestMergeKeepsShardOrder pins what the sharded cluster depends on:
// merging per-shard checkers concatenates violations in argument (shard)
// order, skips nil entries, and re-applies the cap.
func TestMergeKeepsShardOrder(t *testing.T) {
	a, b := New(), New()
	a.Reportf("kernel-order", 5, "shard 0 first")
	a.Reportf("kernel-order", 9, "shard 0 second")
	b.Reportf("shard-mailbox", 2, "shard 1 first")
	m := Merge(a, nil, b)
	got := m.Violations()
	if len(got) != 3 {
		t.Fatalf("merged %d violations, want 3", len(got))
	}
	for i, want := range []string{"shard 0 first", "shard 0 second", "shard 1 first"} {
		if got[i].Detail != want {
			t.Errorf("violation %d = %q, want %q (shard order lost)", i, got[i].Detail, want)
		}
	}

	// Overfull inputs: the merged checker re-caps and accounts for both
	// the pre-merge drops and its own trim.
	x, y := New(), New()
	for i := 0; i < maxViolations+3; i++ {
		x.Reportf("bg-window", int64(i), "x %d", i)
	}
	y.Reportf("bg-window", 0, "y 0")
	m = Merge(x, y)
	if got := len(m.Violations()); got != maxViolations {
		t.Fatalf("merged %d violations, want cap %d", got, maxViolations)
	}
	if got := m.Dropped(); got != 4 {
		t.Errorf("merged dropped = %d, want 4 (3 pre-merge + 1 trimmed)", got)
	}
	if err := Merge().Err(); err != nil {
		t.Errorf("empty merge errs: %v", err)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Check: "token-conservation", At: 1500, Detail: "engine-0: off by 5"}
	want := "token-conservation at t=1500ns: engine-0: off by 5"
	if got := fmt.Sprint(v); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
