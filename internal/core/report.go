package core

// The client report is a single 64-bit word written silently (one-sided
// WRITE) to the client's slot in the monitor's QoS region, exactly as in
// Section II-D: "the number of remaining reservation I/Os for the rest of
// the period and the current value of N_i ... a silent one-sided RDMA
// write of a single 64-bit value". The residual occupies the high 32
// bits, the completed count the low 32 bits.

// PackReport encodes (residual reservation, completed I/Os this period)
// into the 64-bit report word.
func PackReport(residual, completed uint32) uint64 {
	return uint64(residual)<<32 | uint64(completed)
}

// UnpackReport decodes a report word.
func UnpackReport(v uint64) (residual, completed uint32) {
	return uint32(v >> 32), uint32(v)
}

// Reserved report-word encodings for the failure protocol. Honest
// per-period counts never approach 2^31, so flagged words cannot
// collide with regular reports.
const (
	// recoveryFlag marks a restart heartbeat in the completed half of a
	// report word: the flagged word is guaranteed to differ from any
	// seed, regular report, or tombstone, so a restarted client's first
	// write always flips its slot and the monitor's liveness scan
	// reinstates it. The monitor strips the flag before using the count.
	recoveryFlag uint32 = 1 << 31
	// tombstoneWord is what the monitor writes into a suspected client's
	// slot (and its liveness baseline): unreachable by any honest report,
	// so whatever a restarted client writes is observed as a change even
	// if it repeats the exact pre-crash report.
	tombstoneWord uint64 = 0xFFFFFFFF_FFFFFFFF
)

// liveCompleted strips the recovery flag from the completed half of a
// report word.
func liveCompleted(completed uint32) uint32 { return completed &^ recoveryFlag }

// clampUint32 saturates a non-negative int64 into uint32 range.
func clampUint32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(v)
}

// QoS region layout on the data node: the global-token cell followed by
// one report slot per admitted client.
const (
	// QoSRegionName is the registered region holding the token cell and
	// report table.
	QoSRegionName = "haechi/qos"
	// globalTokenOff is the byte offset of the global token cell.
	globalTokenOff = 0
	// reportTableOff is the byte offset of client 0's report slot.
	reportTableOff = 8
	// reportSlotSize is the byte size of one report slot.
	reportSlotSize = 8
)

// reportSlotOffset returns the byte offset of client id's report slot.
func reportSlotOffset(id int) int { return reportTableOff + id*reportSlotSize }
