package core

import (
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/sanitize"
	"github.com/haechi-qos/haechi/internal/sim"
)

// sanitizeHarness attaches one checker to the monitor and every engine.
func sanitizeHarness(h *qosHarness) *sanitize.Checker {
	c := sanitize.New()
	h.mon.SetSanitizer(c)
	for _, e := range h.engines {
		e.SetSanitizer(c)
	}
	return c
}

// TestEngineRestartRecovery is the crash → suspect → restart →
// re-register → reinstated lifecycle: after Restart the engine's
// recovery heartbeat flips its report slot, the monitor reinstates the
// reservation at the next period end, fresh tokens arrive and
// completions resume — all without a single invariant violation.
func TestEngineRestartRecovery(t *testing.T) {
	res := []int64{3000, 3000}
	demand := func(client, period int) int { return 6000 }
	h := newQoSHarness(t, testParams(), res, demand, WithFailureDetection(2))
	san := sanitizeHarness(h)
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	P := testParams().Period
	h.k.RunUntil(2 * P)

	victim := h.engines[0]
	if err := victim.Restart(); err == nil {
		t.Error("Restart on a running engine did not fail")
	}
	victim.Crash()
	victim.Crash() // idempotent
	h.k.RunUntil(6 * P)
	if !h.mon.Suspected(0) {
		t.Fatal("crashed client never suspected")
	}
	if h.mon.SuspectedAt(0) == 0 {
		t.Error("suspicion time not recorded")
	}

	beforeRestart := victim.TotalCompleted()
	if err := victim.Restart(); err != nil {
		t.Fatal(err)
	}
	h.k.RunUntil(9 * P)
	h.mon.Stop()

	if h.mon.Suspected(0) {
		t.Error("restarted client not reinstated")
	}
	if h.mon.FailureRecoveries == 0 {
		t.Error("recovery counter not incremented")
	}
	if h.mon.ReinstatedAt(0) <= h.mon.SuspectedAt(0) {
		t.Error("reinstatement not after suspicion")
	}
	fs := victim.FaultStats()
	if fs.Crashes != 1 || fs.Restarts != 1 {
		t.Errorf("fault transitions: %+v", fs)
	}
	if fs.RejoinIndex == 0 || fs.RejoinAt < fs.RestartAt {
		t.Errorf("rejoin not recorded: %+v", fs)
	}
	if victim.TotalCompleted() <= beforeRestart {
		t.Errorf("completions did not resume after restart: %d -> %d",
			beforeRestart, victim.TotalCompleted())
	}
	// The reinstated reservation is honored again: the last finished
	// period completed at least R.
	log := victim.PeriodLog.Completed
	if len(log) == 0 || int64(log[len(log)-1]) < res[0] {
		t.Errorf("reinstated reservation not met: period log %v", log)
	}
	if err := san.Err(); err != nil {
		t.Errorf("invariant violations through crash/recovery: %v", err)
	}
}

// TestCrashQuarantineConservation: tokens held at crash time are
// quarantined, the conservation identity holds through the crash window,
// and the quarantine is released when the expired period rolls over
// after the restart.
func TestCrashQuarantineConservation(t *testing.T) {
	res := []int64{2000}
	demand := func(client, period int) int { return 1000 }
	h := newQoSHarness(t, testParams(), res, demand)
	san := sanitizeHarness(h)
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	P := testParams().Period
	h.k.RunUntil(P + P/4) // mid period 2, before the X decay yields

	e := h.engines[0]
	e.Crash()
	fs := e.FaultStats()
	if fs.QuarantinedRes != 1000 {
		t.Errorf("quarantined %d reservation tokens, want 1000 (2000 reserved - 1000 demanded)",
			fs.QuarantinedRes)
	}
	h.k.RunUntil(2*P + P/2)
	if err := e.Restart(); err != nil {
		t.Fatal(err)
	}
	h.k.RunUntil(4 * P)
	h.mon.Stop()

	fs = e.FaultStats()
	if fs.QuarantinedRes != 0 || fs.QuarantineReleased != 1000 {
		t.Errorf("quarantine not released at rollover: %+v", fs)
	}
	if err := san.Err(); err != nil {
		t.Errorf("conservation violated through crash window: %v", err)
	}
}

// TestPostCrashCompletionInvariant: a deliberate completion delivered to
// a crashed engine beyond its in-flight window fails the run naming the
// invariant.
func TestPostCrashCompletionInvariant(t *testing.T) {
	res := []int64{2000}
	demand := func(client, period int) int { return 1000 }
	h := newQoSHarness(t, testParams(), res, demand)
	san := sanitizeHarness(h)
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	h.k.RunUntil(testParams().Period)
	h.engines[0].Crash()
	h.engines[0].DebugInjectPostCrashCompletion()
	h.mon.Stop()
	err := san.Err()
	if err == nil {
		t.Fatal("injected post-crash completion not caught")
	}
	if !strings.Contains(err.Error(), "post-crash-completion") {
		t.Errorf("violation does not name the invariant: %v", err)
	}
}

// TestMonitorOutageDegradedMode: while the monitor is paused the engines
// notice the overdue period, degrade to local-token mode (no claims
// against the stale pool, bounded-backoff probes), and resynchronize
// cleanly when the monitor resumes with a fresh period.
func TestMonitorOutageDegradedMode(t *testing.T) {
	res := []int64{3000, 3000}
	demand := func(client, period int) int { return 10000 } // saturating: backlog persists
	h := newQoSHarness(t, testParams(), res, demand)
	san := sanitizeHarness(h)
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	P := testParams().Period
	h.k.RunUntil(2*P + P/2)
	h.mon.Outage(2 * P)
	if !h.mon.Paused() {
		t.Fatal("monitor not paused")
	}
	h.k.RunUntil(3*P + P/2) // deep inside the outage window
	for i, e := range h.engines {
		if !e.Degraded() {
			t.Errorf("engine %d not degraded during outage", i)
		}
	}
	h.k.RunUntil(6 * P)
	h.mon.Stop()

	if h.mon.Paused() {
		t.Error("monitor still paused after the window")
	}
	if n, ns := h.mon.OutageStats(); n != 1 || ns != int64(2*P) {
		t.Errorf("outage stats (%d, %d), want (1, %d)", n, ns, int64(2*P))
	}
	for i, e := range h.engines {
		fs := e.FaultStats()
		if e.Degraded() || fs.DegradedSpells == 0 || fs.DegradedNs == 0 {
			t.Errorf("engine %d degraded window not closed: %+v", i, fs)
		}
		if fs.DegradedProbes == 0 {
			t.Errorf("engine %d issued no backoff probes while degraded", i)
		}
	}
	if err := san.Err(); err != nil {
		t.Errorf("invariant violations through outage: %v", err)
	}
}

// TestOutageGuards: Outage is a no-op on a stopped or already-paused
// monitor and with a non-positive duration.
func TestOutageGuards(t *testing.T) {
	res := []int64{1000}
	demand := func(client, period int) int { return 500 }
	h := newQoSHarness(t, testParams(), res, demand)
	h.mon.Outage(sim.Second) // not started
	if h.mon.Paused() {
		t.Error("outage on a stopped monitor paused it")
	}
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	h.mon.Outage(0)
	if h.mon.Paused() {
		t.Error("zero-duration outage paused the monitor")
	}
	h.mon.Outage(sim.Second)
	h.mon.Outage(sim.Second) // nested: ignored
	if n, _ := h.mon.OutageStats(); n != 1 {
		t.Errorf("nested outage counted: %d", n)
	}
	h.k.RunUntil(2 * sim.Second)
	h.mon.Stop()
}
