package core

import "fmt"

// AdmissionController enforces Definition 2 when a client connects:
//
//   - aggregate capacity: the reservations of all admitted clients must
//     fit in the saturated system throughput, sum(R_i) <= T*C_G;
//   - local capacity: a single client's reservation must be achievable at
//     its maximum individual rate, R_i <= T*C_L (the t=0 instance of
//     R_i - N_i(t) <= (T-t)*C_L).
//
// Both capacities are expressed in I/Os per QoS period.
type AdmissionController struct {
	aggregateCap int64
	localCap     int64
	reserved     int64
	admitted     map[int]int64
}

// NewAdmissionController creates a controller with the given per-period
// capacities (for the paper's testbed: C_G*T = 1570K, C_L*T = 400K).
func NewAdmissionController(aggregateCap, localCap int64) (*AdmissionController, error) {
	if aggregateCap <= 0 || localCap <= 0 {
		return nil, fmt.Errorf("core: admission capacities must be positive, got C_G=%d C_L=%d", aggregateCap, localCap)
	}
	return &AdmissionController{
		aggregateCap: aggregateCap,
		localCap:     localCap,
		admitted:     make(map[int]int64),
	}, nil
}

// ErrAdmission wraps admission failures so callers can distinguish them.
type ErrAdmission struct {
	Reason string
}

func (e *ErrAdmission) Error() string { return "core: admission denied: " + e.Reason }

// Admit checks the client's reservation against both constraints and
// records it. id must be unused.
func (a *AdmissionController) Admit(id int, reservation int64) error {
	if reservation < 0 {
		return &ErrAdmission{Reason: fmt.Sprintf("negative reservation %d", reservation)}
	}
	if _, ok := a.admitted[id]; ok {
		return &ErrAdmission{Reason: fmt.Sprintf("client %d already admitted", id)}
	}
	if reservation > a.localCap {
		return &ErrAdmission{Reason: fmt.Sprintf(
			"local capacity violation: reservation %d exceeds per-client capacity %d (C_L)", reservation, a.localCap)}
	}
	if a.reserved+reservation > a.aggregateCap {
		return &ErrAdmission{Reason: fmt.Sprintf(
			"aggregate capacity violation: total reservation %d would exceed capacity %d (C_G)",
			a.reserved+reservation, a.aggregateCap)}
	}
	a.admitted[id] = reservation
	a.reserved += reservation
	return nil
}

// Release removes a departed client's reservation.
func (a *AdmissionController) Release(id int) {
	if r, ok := a.admitted[id]; ok {
		a.reserved -= r
		delete(a.admitted, id)
	}
}

// Reserved returns the total admitted reservation.
func (a *AdmissionController) Reserved() int64 { return a.reserved }

// Headroom returns the unreserved aggregate capacity.
func (a *AdmissionController) Headroom() int64 { return a.aggregateCap - a.reserved }

// LocalViolation checks the runtime form of the local constraint at time
// fraction elapsed in [0,1]: whether the remaining reservation
// R - completed can still be served at rate C_L in the remaining period.
// It reports by how many I/Os the requirement exceeds what is achievable
// (0 if satisfiable). Experiment 1C/Set 3's burst-pattern reservation
// misses are exactly this quantity going positive mid-period.
func (a *AdmissionController) LocalViolation(reservation, completed int64, elapsed float64) int64 {
	if elapsed < 0 {
		elapsed = 0
	}
	if elapsed > 1 {
		elapsed = 1
	}
	remainingNeed := reservation - completed
	achievable := int64((1 - elapsed) * float64(a.localCap))
	if v := remainingNeed - achievable; v > 0 {
		return v
	}
	return 0
}
