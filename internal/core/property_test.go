package core

import (
	"math/rand"
	"testing"
)

// The property tests run randomized mini-clusters through the full
// protocol and check the invariants that hold for ANY workload:
//
//  1. token gating: per-period completions never exceed the token budget
//     (plus bounded period-boundary carry-over);
//  2. reservation guarantee: feasible, continuously backlogged clients
//     receive their reservation (within the scaled-harness tolerance);
//  3. work conservation: offered demand is served up to capacity.

type propScenario struct {
	res    []int64
	demand []int
}

// genScenario draws a random feasible scenario: 3-8 clients, reservations
// within both admission constraints with headroom for the scaled regime.
func genScenario(rng *rand.Rand) propScenario {
	n := 3 + rng.Intn(6)
	res := make([]int64, n)
	demand := make([]int, n)
	// Keep the total at <= 75% of capacity and each reservation <= 60% of
	// C_L so feasibility is unambiguous (away from the burst edge).
	budget := int64(0.75 * testServerC)
	for i := range res {
		maxR := budget / int64(n-i)
		if cap := int64(0.6 * testClientC); maxR > cap {
			maxR = cap
		}
		if maxR < 0 {
			maxR = 0
		}
		r := rng.Int63n(maxR + 1)
		res[i] = r
		budget -= r
		demand[i] = int(r) + rng.Intn(2000)
	}
	return propScenario{res: res, demand: demand}
}

func runScenario(t *testing.T, sc propScenario) [][]uint64 {
	t.Helper()
	demand := func(client, period int) int { return sc.demand[client] }
	h := newQoSHarness(t, testParams(), sc.res, demand)
	return h.run(3)
}

func TestPropertyTokenGating(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 12; trial++ {
		sc := genScenario(rng)
		logs := runScenario(t, sc)
		for p := 1; p < 3; p++ {
			var sum int64
			for _, log := range logs {
				if p < len(log) {
					sum += int64(log[p])
				}
			}
			slack := int64(len(sc.res)*testParams().SendQueueDepth) + 2*int64(testParams().Batch)
			if sum > testServerC+slack {
				t.Fatalf("trial %d period %d: %d completions exceed budget %d (+%d slack); scenario %+v",
					trial, p, sum, testServerC, slack, sc)
			}
		}
	}
}

func TestPropertyReservationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		sc := genScenario(rng)
		logs := runScenario(t, sc)
		for i, log := range logs {
			if sc.res[i] == 0 {
				continue
			}
			for p := 1; p < len(log); p++ {
				want := min64(sc.res[i], int64(sc.demand[i]))
				if float64(log[p]) < 0.95*float64(want) {
					t.Fatalf("trial %d client %d period %d: %d < guaranteed %d; scenario %+v",
						trial, i, p, log[p], want, sc)
				}
			}
		}
	}
}

func TestPropertyWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		sc := genScenario(rng)
		var offered int64
		for _, d := range sc.demand {
			offered += int64(d)
		}
		logs := runScenario(t, sc)
		var served int64
		periods := 0
		for _, log := range logs {
			for p := 1; p < len(log); p++ {
				served += int64(log[p])
			}
			if len(log)-1 > periods {
				periods = len(log) - 1
			}
		}
		perPeriod := float64(served) / float64(periods)
		bound := float64(min64(offered, testServerC))
		if perPeriod < 0.90*bound {
			t.Fatalf("trial %d: served %.0f/period < 90%% of min(demand,capacity)=%.0f; scenario %+v",
				trial, perPeriod, bound, sc)
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
