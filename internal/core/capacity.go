package core

import (
	"fmt"
	"sort"
)

// CapacityEstimator implements Algorithm 1, Adaptive Capacity Estimation:
// it maintains the per-period token budget Omega_t from the completed-I/O
// totals the clients report.
//
//   - If the clients consumed the entire budget (U >= Omega_t) the
//     capacity may be underestimated: probe upward by eta.
//     (The paper states the trigger as U == Omega_t; completions are
//     token-gated so equality is the steady state, but period-boundary
//     skew can push U a few I/Os past Omega_t — ">=" is the robust
//     reading.)
//   - If U landed between the lower bound and the budget, the system was
//     demand- or capacity-limited below the budget: remember U in the
//     history window W and set Omega to the window mean.
//   - If U fell below the lower bound Omega_prof - SigmaFactor*sigma, the
//     period was idle; ignore it so low-demand periods cannot drag the
//     estimate to an unreasonably low value.
type CapacityEstimator struct {
	profiled   int64
	lowerBound int64
	eta        int64
	windowSize int
	history    []int64
	current    int64
	// underuse tracks Algorithm 1's per-client counters: consecutive
	// periods in which a client used less than its reservation.
	underuse map[int]int
}

// NewCapacityEstimator builds an estimator from a profiling run: profiled
// is Omega_prof in I/Os per QoS period, sigma its standard deviation.
func NewCapacityEstimator(p Params, profiled int64, sigma float64) (*CapacityEstimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if profiled <= 0 {
		return nil, fmt.Errorf("core: profiled capacity must be positive, got %d", profiled)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("core: sigma must be non-negative, got %v", sigma)
	}
	lb := profiled - int64(p.SigmaFactor*sigma)
	if lb < 0 {
		lb = 0
	}
	eta := int64(p.IncrementFraction * float64(profiled))
	if eta < 1 {
		eta = 1
	}
	return &CapacityEstimator{
		profiled:   profiled,
		lowerBound: lb,
		eta:        eta,
		windowSize: p.HistoryWindow,
		current:    profiled,
		underuse:   make(map[int]int),
	}, nil
}

// Current returns Omega_t, the token budget for the current period.
func (e *CapacityEstimator) Current() int64 { return e.current }

// Profiled returns Omega_prof.
func (e *CapacityEstimator) Profiled() int64 { return e.profiled }

// LowerBound returns Omega_min = Omega_prof - SigmaFactor*sigma.
func (e *CapacityEstimator) LowerBound() int64 { return e.lowerBound }

// Eta returns the probe increment.
func (e *CapacityEstimator) Eta() int64 { return e.eta }

// Update consumes one period's total completed I/Os U and returns the new
// estimate Omega_{t+1}.
func (e *CapacityEstimator) Update(total int64) int64 {
	switch {
	case total >= e.current:
		e.current += e.eta
	case total >= e.lowerBound:
		e.history = append(e.history, total)
		if len(e.history) > e.windowSize {
			e.history = e.history[1:]
		}
		var sum int64
		for _, v := range e.history {
			sum += v
		}
		e.current = sum / int64(len(e.history))
	default:
		// Idle period: keep the estimate.
	}
	return e.current
}

// ObserveClientUsage updates Algorithm 1's under-use counters: increment
// for clients whose completed I/Os fell below their reservation, clear
// for the rest. It returns the clients whose streak just reached
// alertAfter (their QoS engines are alerted that they may have
// over-reserved).
func (e *CapacityEstimator) ObserveClientUsage(used map[int]int64, reserved map[int]int64, alertAfter int) []int {
	var alerts []int
	for id, r := range reserved {
		if used[id] < r {
			e.underuse[id]++
			if alertAfter > 0 && e.underuse[id] == alertAfter {
				alerts = append(alerts, id)
			}
		} else {
			e.underuse[id] = 0
		}
	}
	sort.Ints(alerts) // alert delivery order must not depend on map iteration
	return alerts
}

// UnderuseStreak returns the current consecutive under-use count for a
// client.
func (e *CapacityEstimator) UnderuseStreak(id int) int { return e.underuse[id] }
