package core

// Two-sided control messages. Only the data node ever sends these (steps
// T1 and S3 in Fig. 5); the client-to-server direction stays one-sided.
const (
	// msgPeriodStart carries the reservation tokens for a new QoS period
	// (step T1) and doubles as the new-period signal.
	msgPeriodStart = "haechi.period_start"
	// msgReportOn asks clients to begin periodic reporting (step S3).
	msgReportOn = "haechi.report_on"
	// msgAlert warns a client that it consistently under-uses its
	// reservation (Algorithm 1's counter).
	msgAlert = "haechi.alert"
)

// periodStartMsg initializes a client's QoS period.
type periodStartMsg struct {
	// Index is the period number, monotonically increasing.
	Index int
	// Reservation is R_i: the reservation tokens granted this period.
	Reservation int64
	// EndAt is the absolute virtual time the period ends; the engine uses
	// it to schedule its final report.
	EndAt int64
	// Convert enables token returns: when false (Basic Haechi) unused
	// reservation tokens are wasted instead of returned to the pool.
	Convert bool
}

// reportOnMsg enables periodic reporting for the rest of the period.
type reportOnMsg struct {
	Index int
}

// alertMsg tells a client it has under-used its reservation for
// consecutive periods and may have over-reserved.
type alertMsg struct {
	// ConsecutivePeriods is the current length of the under-use streak.
	ConsecutivePeriods int
}

// wire sizes (bytes) of the control messages.
const (
	periodStartMsgSize = 24
	reportOnMsgSize    = 8
	alertMsgSize       = 8
)
