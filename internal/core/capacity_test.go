package core

import (
	"testing"
	"testing/quick"
)

func TestPackUnpackReport(t *testing.T) {
	tests := []struct {
		residual, completed uint32
	}{
		{0, 0},
		{1413, 157000},
		{0xFFFFFFFF, 0xFFFFFFFF},
		{1, 0},
		{0, 1},
	}
	for _, tt := range tests {
		r, c := UnpackReport(PackReport(tt.residual, tt.completed))
		if r != tt.residual || c != tt.completed {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", tt.residual, tt.completed, r, c)
		}
	}
}

func TestPackReportProperty(t *testing.T) {
	f := func(residual, completed uint32) bool {
		r, c := UnpackReport(PackReport(residual, completed))
		return r == residual && c == completed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampUint32(t *testing.T) {
	tests := []struct {
		in   int64
		want uint32
	}{
		{-5, 0},
		{0, 0},
		{42, 42},
		{1 << 40, 0xFFFFFFFF},
	}
	for _, tt := range tests {
		if got := clampUint32(tt.in); got != tt.want {
			t.Errorf("clampUint32(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := NewDefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.Period = 0 },
		func(p *Params) { p.Tick = 0 },
		func(p *Params) { p.Tick = p.Period * 2 },
		func(p *Params) { p.CheckInterval = 0 },
		func(p *Params) { p.ReportInterval = 0 },
		func(p *Params) { p.Batch = 0 },
		func(p *Params) { p.HistoryWindow = 0 },
		func(p *Params) { p.IncrementFraction = 0 },
		func(p *Params) { p.IncrementFraction = 1.5 },
		func(p *Params) { p.SigmaFactor = -1 },
		func(p *Params) { p.MaxClients = 0 },
	}
	for i, mutate := range mutations {
		p := NewDefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestParamsScaled(t *testing.T) {
	p := NewDefaultParams().Scaled(10)
	if p.Period != NewDefaultParams().Period/10 {
		t.Errorf("scaled period = %v", p.Period)
	}
	if p.Tick != NewDefaultParams().Tick/10 {
		t.Errorf("scaled tick = %v", p.Tick)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("scaled params invalid: %v", err)
	}
	// Identity for non-positive factor.
	q := NewDefaultParams().Scaled(0)
	if q.Period != NewDefaultParams().Period {
		t.Error("Scaled(0) changed period")
	}
}

func newTestEstimator(t *testing.T, profiled int64, sigma float64) *CapacityEstimator {
	t.Helper()
	e, err := NewCapacityEstimator(NewDefaultParams(), profiled, sigma)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewCapacityEstimator(NewDefaultParams(), 0, 1); err == nil {
		t.Error("zero profiled accepted")
	}
	if _, err := NewCapacityEstimator(NewDefaultParams(), 100, -1); err == nil {
		t.Error("negative sigma accepted")
	}
	bad := NewDefaultParams()
	bad.Period = 0
	if _, err := NewCapacityEstimator(bad, 100, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestEstimatorInitial(t *testing.T) {
	e := newTestEstimator(t, 1_570_000, 10_000)
	if e.Current() != 1_570_000 {
		t.Errorf("initial = %d", e.Current())
	}
	if e.LowerBound() != 1_570_000-30_000 {
		t.Errorf("lower bound = %d", e.LowerBound())
	}
	if e.Profiled() != 1_570_000 {
		t.Errorf("profiled = %d", e.Profiled())
	}
	if e.Eta() != int64(0.005*1_570_000) {
		t.Errorf("eta = %d", e.Eta())
	}
}

func TestEstimatorLowerBoundClamped(t *testing.T) {
	e := newTestEstimator(t, 100, 1000)
	if e.LowerBound() != 0 {
		t.Errorf("lower bound = %d, want 0", e.LowerBound())
	}
}

func TestEstimatorProbesUpOnSaturation(t *testing.T) {
	e := newTestEstimator(t, 1000, 0)
	// Full consumption -> underestimation suspected -> +eta.
	next := e.Update(1000)
	if next != 1000+e.Eta() {
		t.Errorf("after saturation: %d, want %d", next, 1000+e.Eta())
	}
	// Over-consumption (boundary skew) also probes up.
	next2 := e.Update(next + 3)
	if next2 != next+e.Eta() {
		t.Errorf("after over-consumption: %d, want %d", next2, next+e.Eta())
	}
}

func TestEstimatorHistoryMean(t *testing.T) {
	e := newTestEstimator(t, 1000, 30) // lower bound 910
	e.Update(950)
	if e.Current() != 950 {
		t.Errorf("after one sample: %d, want 950", e.Current())
	}
	e.Update(930)
	if e.Current() != 940 {
		t.Errorf("after two samples: %d, want mean 940", e.Current())
	}
}

func TestEstimatorIgnoresIdlePeriods(t *testing.T) {
	e := newTestEstimator(t, 1000, 10) // lower bound 970
	e.Update(100)                      // far below lower bound: idle period
	if e.Current() != 1000 {
		t.Errorf("idle period changed estimate to %d", e.Current())
	}
}

func TestEstimatorWindowEviction(t *testing.T) {
	p := NewDefaultParams()
	p.HistoryWindow = 3
	e, err := NewCapacityEstimator(p, 1000, 100) // lower bound 700
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int64{900, 800, 700} {
		e.Update(u)
	}
	// History = [900 800 700], mean 800.
	if e.Current() != 800 {
		t.Fatalf("mean = %d, want 800", e.Current())
	}
	e.Update(701)
	// Oldest (900) evicted: [800 700 701], mean 733.
	if e.Current() != 733 {
		t.Errorf("after eviction mean = %d, want 733", e.Current())
	}
}

func TestEstimatorConvergesDownUnderCongestion(t *testing.T) {
	e := newTestEstimator(t, 1000, 100)
	// Capacity silently drops to 850: clients keep reporting 850.
	for i := 0; i < 30; i++ {
		e.Update(850)
	}
	if e.Current() < 840 || e.Current() > 870 {
		t.Errorf("estimate %d did not converge to ≈850", e.Current())
	}
}

func TestEstimatorClimbsWhenFreed(t *testing.T) {
	e := newTestEstimator(t, 1000, 100)
	for i := 0; i < 20; i++ {
		e.Update(850)
	}
	low := e.Current()
	// Congestion ends: clients consume everything offered; the estimate
	// climbs by eta per period.
	for i := 0; i < 5; i++ {
		e.Update(e.Current())
	}
	if e.Current() != low+5*e.Eta() {
		t.Errorf("climb: %d, want %d", e.Current(), low+5*e.Eta())
	}
}

func TestEstimatorUnderuseCounters(t *testing.T) {
	e := newTestEstimator(t, 1000, 0)
	reserved := map[int]int64{1: 100, 2: 100}
	used := map[int]int64{1: 50, 2: 100}
	var alerts []int
	for i := 0; i < 3; i++ {
		alerts = e.ObserveClientUsage(used, reserved, 3)
	}
	if len(alerts) != 1 || alerts[0] != 1 {
		t.Errorf("alerts = %v, want [1]", alerts)
	}
	if e.UnderuseStreak(1) != 3 || e.UnderuseStreak(2) != 0 {
		t.Errorf("streaks = %d,%d", e.UnderuseStreak(1), e.UnderuseStreak(2))
	}
	// Recovery clears the streak.
	used[1] = 100
	e.ObserveClientUsage(used, reserved, 3)
	if e.UnderuseStreak(1) != 0 {
		t.Error("streak not cleared on recovery")
	}
}

// Property: the estimate never falls below the lower bound when fed
// arbitrary usage sequences at or above zero.
func TestEstimatorLowerBoundProperty(t *testing.T) {
	f := func(usages []uint32) bool {
		e, err := NewCapacityEstimator(NewDefaultParams(), 100_000, 1000)
		if err != nil {
			return false
		}
		for _, u := range usages {
			e.Update(int64(u % 200_000))
			if e.Current() < e.LowerBound() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAdmissionValidation(t *testing.T) {
	if _, err := NewAdmissionController(0, 10); err == nil {
		t.Error("zero aggregate accepted")
	}
	if _, err := NewAdmissionController(10, 0); err == nil {
		t.Error("zero local accepted")
	}
}

func TestAdmissionConstraints(t *testing.T) {
	a, err := NewAdmissionController(1_570_000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	// Local violation: one client cannot reserve more than C_L*T.
	if err := a.Admit(0, 500_000); err == nil {
		t.Error("local capacity violation accepted")
	}
	// Fine at the local cap.
	if err := a.Admit(0, 400_000); err != nil {
		t.Errorf("at-cap reservation rejected: %v", err)
	}
	if err := a.Admit(1, 400_000); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit(2, 400_000); err != nil {
		t.Fatal(err)
	}
	// Aggregate violation: 400K*3 + 400K > 1570K.
	if err := a.Admit(3, 400_000); err == nil {
		t.Error("aggregate capacity violation accepted")
	}
	var admErr *ErrAdmission
	if err := a.Admit(3, 400_000); err != nil {
		if !asAdmissionErr(err, &admErr) {
			t.Errorf("error type = %T, want *ErrAdmission", err)
		}
	}
	if a.Reserved() != 1_200_000 {
		t.Errorf("Reserved = %d", a.Reserved())
	}
	if a.Headroom() != 370_000 {
		t.Errorf("Headroom = %d", a.Headroom())
	}
	// Duplicate id.
	if err := a.Admit(0, 10); err == nil {
		t.Error("duplicate id accepted")
	}
	// Negative reservation.
	if err := a.Admit(9, -1); err == nil {
		t.Error("negative reservation accepted")
	}
	// Release frees capacity.
	a.Release(0)
	if err := a.Admit(3, 370_000+400_000-400_000); err != nil {
		t.Errorf("post-release admit failed: %v", err)
	}
	a.Release(42) // unknown id: no-op
}

func asAdmissionErr(err error, target **ErrAdmission) bool {
	e, ok := err.(*ErrAdmission)
	if ok {
		*target = e
	}
	return ok
}

func TestLocalViolation(t *testing.T) {
	a, _ := NewAdmissionController(100, 50)
	// Example 2 of the paper: C_L = 50, client 1 has R=40 and has
	// completed 10 by t=0.5: needs 30 more but only 25 achievable.
	if v := a.LocalViolation(40, 10, 0.5); v != 5 {
		t.Errorf("violation = %d, want 5", v)
	}
	// Satisfiable case.
	if v := a.LocalViolation(40, 30, 0.5); v != 0 {
		t.Errorf("violation = %d, want 0", v)
	}
	// Clamping.
	if v := a.LocalViolation(40, 0, -1); v != 0 {
		t.Errorf("violation at t<0 = %d, want 0 (full period left)", v)
	}
	if v := a.LocalViolation(40, 10, 2); v != 30 {
		t.Errorf("violation at t>1 = %d, want full residual 30", v)
	}
}
