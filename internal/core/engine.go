package core

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/sanitize"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
)

// IOSender performs the actual one-sided data I/O once the engine has a
// token for it (e.g. a kvstore one-sided GET). done must fire exactly once
// at I/O completion.
type IOSender func(key uint64, done func())

// ClientGrant is what admission hands a client: its identity and the
// capabilities needed to participate in the protocol.
type ClientGrant struct {
	// ID is the client's index in the monitor's report table.
	ID int
	// ServerNode is the data node.
	ServerNode *rdma.Node
	// QoSRegion holds the global token cell and report table.
	QoSRegion *rdma.Region
}

// pendingReq is a request waiting for a token.
type pendingReq struct {
	key  uint64
	done func()
}

// Engine is the client-side QoS engine (Section II-D): it admits
// application requests only when backed by a token, manages the
// reservation-token decay (the X counter), claims batched global tokens
// with one-sided FETCH_ADD, and silently reports usage statistics.
type Engine struct {
	params Params
	id     int
	limit  int64

	k         *sim.Kernel
	node      *rdma.Node
	qp        *rdma.QP
	qos       *rdma.Region
	reportOff int
	sender    IOSender

	// Period state.
	periodIndex int
	periodEnd   sim.Time
	reservation int64
	resTokens   int64   // xi_reservation
	localGlobal int64   // claimed, unspent global tokens
	x           float64 // the X counter: upper bound on residual reservation
	dispatched  int64   // token-backed I/Os granted this period
	resUsed     int64   // reservation tokens consumed this period
	completed   int64   // N_i: I/Os completed this period
	faaInFlight bool
	crashed     bool
	// poolExhausted is set when a claim observed a non-positive pool;
	// until a probe sees tokens again, retries read the cell with a
	// zero-delta FETCH_ADD instead of digging it further negative.
	poolExhausted bool
	reporting     bool

	queue []pendingReq
	head  int

	// sendQ holds token-backed I/Os awaiting a send-queue slot; inflight
	// counts I/Os posted to the NIC and not yet completed, bounded by
	// Params.SendQueueDepth.
	sendQ    []pendingReq
	sendHead int
	inflight int

	// inflightDone holds the completion callbacks of posted I/Os in post
	// order. The engine's data I/Os all ride one queue pair in one service
	// class, so completions are FIFO (the IOSender contract) and each
	// completion pops the oldest callback through the bound onIODoneFn —
	// posting an I/O allocates nothing. The FIFO deliberately survives
	// Crash: in-flight I/Os were on the wire and may legally complete.
	inflightDone fnFIFO
	onIODoneFn   func()

	// Bound callbacks and their per-issue state, created once so the
	// steady-state token path (claims, probes, retries, reports) schedules
	// no per-operation closures. faaInFlight guarantees at most one
	// claim/probe outstanding, so faaPI/faaProbe are unambiguous; the
	// jittered retry fires within its own tick, so at most one is
	// outstanding and retryPI is likewise single-slotted.
	reportFn  func()
	onFAAFn   func(int64)
	onProbeFn func(int64)
	retryFn   func()
	faaPI     int
	faaProbe  bool
	retryPI   int

	// convert mirrors the monitor's conversion mode: when true, tokens
	// yielded by the X-counter decay are returned to the global pool
	// with a one-sided FETCH_ADD (+y); when false (Basic Haechi) they
	// are wasted.
	convert bool

	tick             *sim.Ticker
	reportTicker     *sim.Ticker
	finalReportTimer sim.Timer

	// Crash/restart state (fault injection). Tokens held at crash time are
	// quarantined — not vanished — so the per-period conservation identity
	// keeps holding through the crash window; the quarantine is released
	// when the expired period finally rolls over after a restart.
	quarRes            int64 // reservation tokens quarantined at crash
	quarGlobal         int64 // claimed global tokens quarantined at crash
	quarReleased       int64 // cumulative quarantined tokens released at rollover
	crashInflight      int   // I/Os in flight at crash time (may legally complete)
	postCrashDone      int64 // completions observed while crashed
	crashes            int
	restarts           int
	crashAt            sim.Time
	crashPeriod        int // period index current at crash time
	restartAt          sim.Time
	rejoinPending      bool // restarted, waiting for the next period push
	rejoinIndex        int  // period index of the post-restart rejoin
	rejoinAt           sim.Time
	savedOnPeriodStart func(int)

	// Degraded local-token mode: entered when the monitor goes silent (no
	// period push past the grace window). Normal global-pool claims are
	// suppressed — the stale period's pool must not be dug further — and
	// the engine probes the pool on bounded doubling backoff instead,
	// serving demand from whatever local tokens remain.
	degraded       bool
	degradedSince  sim.Time
	degradedNs     int64
	degradedSpells int
	degradedProbes uint64
	probeBackoff   sim.Time
	nextProbeAt    sim.Time

	// OnPeriodStart, if set, is invoked when a new QoS period begins
	// (after tokens are installed); the workload generator hooks it.
	OnPeriodStart func(index int)
	// OnAlert, if set, is invoked when the monitor warns that this client
	// consistently under-uses its reservation.
	OnAlert func(consecutivePeriods int)

	// PeriodLog records completed I/Os per finished period.
	PeriodLog metrics.PeriodLog

	// Trace, when non-nil, records protocol events (claims, probes,
	// yields, reports, throttling).
	Trace *trace.Recorder

	// san, when non-nil, checks token conservation at every period
	// rollover (internal/sanitize). periodYielded tracks reservation
	// tokens yielded within the current period so the per-period
	// identity resUsed + resTokens + periodYielded == reservation stays
	// exact (tokensYielded is cumulative across periods).
	san           *sanitize.Checker
	periodYielded int64

	// Counters.
	totalCompleted  uint64
	totalRequested  uint64
	faaIssued       uint64
	tokensYielded   int64
	reportsSent     uint64
	limitThrottled  uint64
	globalConsumed  int64
	reservationUsed int64
	tokensReturned  int64
}

// NewEngine creates and starts a QoS engine on node for the admitted
// client described by grant. limit is L_i, the per-period request cap
// (0 = unlimited). sender performs the one-sided data I/O. disp is the
// client node's dispatcher, used to receive the monitor's control
// messages.
func NewEngine(params Params, grant ClientGrant, node *rdma.Node, disp *rdma.Dispatcher, limit int64, sender IOSender) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if node == nil || disp == nil || sender == nil {
		return nil, fmt.Errorf("core: NewEngine requires node, dispatcher and sender")
	}
	if grant.ServerNode == nil || grant.QoSRegion == nil {
		return nil, fmt.Errorf("core: NewEngine requires a complete grant (was the client admitted?)")
	}
	if limit < 0 {
		return nil, fmt.Errorf("core: limit must be non-negative, got %d", limit)
	}
	qp, err := node.Fabric().Connect(node, grant.ServerNode)
	if err != nil {
		return nil, fmt.Errorf("core: connecting engine to data node: %w", err)
	}
	e := &Engine{
		params:    params,
		id:        grant.ID,
		limit:     limit,
		k:         node.Kernel(),
		node:      node,
		qp:        qp,
		qos:       grant.QoSRegion,
		reportOff: reportSlotOffset(grant.ID),
		sender:    sender,
	}
	// Handlers are scoped to this engine's data node, so several engines
	// (one per server in a multi-server deployment) can share one client
	// node's dispatcher.
	if err := disp.HandleFrom(msgPeriodStart, grant.ServerNode, e.handlePeriodStart); err != nil {
		return nil, err
	}
	if err := disp.HandleFrom(msgReportOn, grant.ServerNode, e.handleReportOn); err != nil {
		return nil, err
	}
	if err := disp.HandleFrom(msgAlert, grant.ServerNode, e.handleAlert); err != nil {
		return nil, err
	}
	e.onIODoneFn = e.onIODone
	e.reportFn = e.report
	e.onFAAFn = e.onFAA
	e.onProbeFn = e.onProbe
	e.retryFn = e.retryClaim
	e.tick, err = e.k.Every(params.Tick, params.Tick, e.onTick)
	if err != nil {
		return nil, err
	}
	return e, nil
}

// ID returns the client's identity in the monitor's table.
func (e *Engine) ID() int { return e.id }

// Request submits one application I/O. It is served as soon as the engine
// holds a token for it; otherwise it queues ("The I/O sender function in
// the QoS engine will reject I/Os that are not backed by a token").
func (e *Engine) Request(key uint64, done func()) {
	if e.crashed {
		return
	}
	e.totalRequested++
	e.queue = append(e.queue, pendingReq{key: key, done: done})
	e.drain()
}

// Pending returns the number of requests waiting for tokens.
func (e *Engine) Pending() int { return len(e.queue) - e.head }

// ReservationTokens returns the current xi_reservation.
func (e *Engine) ReservationTokens() int64 { return e.resTokens }

// LocalGlobalTokens returns claimed-but-unspent global tokens.
func (e *Engine) LocalGlobalTokens() int64 { return e.localGlobal }

// CompletedThisPeriod returns N_i.
func (e *Engine) CompletedThisPeriod() int64 { return e.completed }

// TotalCompleted returns the lifetime completed count.
func (e *Engine) TotalCompleted() uint64 { return e.totalCompleted }

// PeriodIndex returns the current QoS period number (0 before the first).
func (e *Engine) PeriodIndex() int { return e.periodIndex }

// Stop halts the engine's tickers; queued requests are abandoned.
func (e *Engine) Stop() {
	e.tick.Stop()
	if e.reportTicker != nil {
		e.reportTicker.Stop()
	}
	e.finalReportTimer.Cancel()
}

// Crash simulates a client failure for fault injection: the engine stops
// all protocol activity (ticks, reports, claims) and silently drops its
// queued and future requests. The monitor's failure detection should
// reclaim the client's reservation after its grace window. Held tokens
// move into quarantine so the conservation identity survives the crash
// window; I/Os already posted to the NIC may still complete (they were on
// the wire), but any completion beyond that count is a protocol violation
// (the "post-crash-completion" invariant).
func (e *Engine) Crash() {
	if e.crashed {
		return
	}
	e.crashed = true
	e.crashes++
	e.crashAt = e.k.Now()
	e.crashPeriod = e.periodIndex
	e.Stop()
	if e.degraded {
		e.leaveDegraded()
	}
	e.quarRes += e.resTokens
	e.quarGlobal += e.localGlobal
	e.resTokens = 0
	e.localGlobal = 0
	e.crashInflight = e.inflight
	e.postCrashDone = 0
	e.queue, e.head = nil, 0
	e.sendQ, e.sendHead = nil, 0
	e.savedOnPeriodStart = e.OnPeriodStart
	e.OnPeriodStart = nil
	if e.san != nil && e.periodIndex > 0 {
		// Crash-time conservation: every reservation token of the current
		// period is spent, yielded, or now quarantined.
		if e.resUsed+e.quarRes+e.periodYielded != e.reservation {
			e.san.Reportf("crash-quarantine", int64(e.k.Now()),
				"engine-%d period %d: used %d + quarantined %d + yielded %d != reservation %d",
				e.id, e.periodIndex, e.resUsed, e.quarRes, e.periodYielded, e.reservation)
		}
	}
}

// Restart revives a crashed engine (the recovery half of the chaos
// layer): the engine rejoins with no tokens, treats the stale global pool
// as exhausted until the monitor's next period push resynchronizes it,
// restarts its token-management tick, and writes one recovery heartbeat
// so the monitor's liveness scan reinstates the reservation at the next
// period end. Pre-crash period counters (resUsed, periodYielded) are kept
// until that rollover so the conservation identity — which now includes
// the quarantined tokens — stays exact.
func (e *Engine) Restart() error {
	if !e.crashed {
		return fmt.Errorf("core: Restart requires a crashed engine")
	}
	e.crashed = false
	e.restarts++
	e.restartAt = e.k.Now()
	e.rejoinPending = true
	e.resTokens = 0
	e.localGlobal = 0
	e.x = 0
	e.poolExhausted = true // stale pool: probe, don't claim, until resync
	e.reporting = false
	e.OnPeriodStart = e.savedOnPeriodStart
	e.savedOnPeriodStart = nil
	t, err := e.k.Every(e.params.Tick, e.params.Tick, e.onTick)
	if err != nil {
		return err
	}
	e.tick = t
	// Recovery heartbeat: a flagged report word that cannot collide with
	// any seed, regular report, or tombstone, so the slot is guaranteed
	// to flip and the monitor reinstates the reservation at the next
	// period end (re-registration stays one-sided, like all
	// client-to-server traffic).
	w := PackReport(0, clampUint32(e.completed)|recoveryFlag)
	if err := e.qp.WriteUint64(e.qos, e.reportOff, w, nil); err == nil {
		e.reportsSent++
		e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Report, Actor: e.actor(),
			A: 0, B: e.completed})
	}
	return nil
}

// EngineStats is a snapshot of protocol-overhead counters.
type EngineStats struct {
	TotalRequested  uint64
	TotalCompleted  uint64
	FAAIssued       uint64
	ReportsSent     uint64
	TokensYielded   int64
	TokensReturned  int64
	LimitThrottled  uint64
	ReservationUsed int64
	GlobalConsumed  int64
}

// Stats returns the engine's protocol counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		TotalRequested:  e.totalRequested,
		TotalCompleted:  e.totalCompleted,
		FAAIssued:       e.faaIssued,
		ReportsSent:     e.reportsSent,
		TokensYielded:   e.tokensYielded,
		TokensReturned:  e.tokensReturned,
		LimitThrottled:  e.limitThrottled,
		ReservationUsed: e.reservationUsed,
		GlobalConsumed:  e.globalConsumed,
	}
}

// FaultStats is a snapshot of the engine's crash/recovery and
// degraded-mode accounting (all zero unless faults were injected).
type FaultStats struct {
	// Crashes and Restarts count fault transitions; CrashAt, RestartAt
	// and RejoinAt are the most recent transition times (RejoinAt is when
	// the first post-restart period push arrived, RejoinIndex its period).
	Crashes     int
	Restarts    int
	CrashAt     sim.Time
	CrashPeriod int
	RestartAt   sim.Time
	RejoinAt    sim.Time
	RejoinIndex int
	// QuarantinedRes/QuarantinedGlobal are tokens currently held in
	// crash quarantine; QuarantineReleased is the cumulative count
	// released at period rollovers after restarts.
	QuarantinedRes     int64
	QuarantinedGlobal  int64
	QuarantineReleased int64
	// PostCrashDone counts completions delivered while crashed (bounded
	// by the in-flight window unless the invariant is violated).
	PostCrashDone int64
	// DegradedSpells/DegradedNs/DegradedProbes account local-token mode
	// during monitor silence.
	DegradedSpells int
	DegradedNs     int64
	DegradedProbes uint64
}

// FaultStats returns the engine's crash/recovery counters.
func (e *Engine) FaultStats() FaultStats {
	return FaultStats{
		Crashes:            e.crashes,
		Restarts:           e.restarts,
		CrashAt:            e.crashAt,
		CrashPeriod:        e.crashPeriod,
		RestartAt:          e.restartAt,
		RejoinAt:           e.rejoinAt,
		RejoinIndex:        e.rejoinIndex,
		QuarantinedRes:     e.quarRes,
		QuarantinedGlobal:  e.quarGlobal,
		QuarantineReleased: e.quarReleased,
		PostCrashDone:      e.postCrashDone,
		DegradedSpells:     e.degradedSpells,
		DegradedNs:         e.degradedNs,
		DegradedProbes:     e.degradedProbes,
	}
}

// Crashed reports whether the engine is currently crashed.
func (e *Engine) Crashed() bool { return e.crashed }

// Degraded reports whether the engine is currently in local-token mode.
func (e *Engine) Degraded() bool { return e.degraded }

// drain admits queued requests while tokens allow (Fig. 3 flowchart):
// each admitted request consumes one token — Example 1's accounting, where
// the residual reservation is R minus the demand already admitted — and
// moves to the send queue, which paces actual posting.
func (e *Engine) drain() {
	defer e.pump()
	for e.head < len(e.queue) {
		if e.limit > 0 && e.dispatched >= e.limit {
			// Limit reached: throttle until the next period.
			e.limitThrottled++
			e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.LimitThrottle, Actor: e.actor(), A: e.limit})
			return
		}
		switch {
		case e.resTokens > 0:
			e.resTokens--
			e.resUsed++
			e.reservationUsed++
		case e.localGlobal > 0:
			e.localGlobal--
			e.globalConsumed++
		default:
			// While the pool is known-exhausted, only the tick's jittered
			// retry probes it (step T4: the client waits for returned
			// tokens or the next period); claiming on every arrival would
			// turn the data node's NIC into an atomics hot spot. In
			// degraded mode claims are suppressed entirely — the stale
			// period's pool must not be consumed.
			if !e.poolExhausted && !e.degraded {
				e.ensureFAA()
			}
			return
		}
		req := e.queue[e.head]
		e.queue[e.head] = pendingReq{} // release references
		e.head++
		e.dispatched++
		e.sendQ = append(e.sendQ, req)
	}
	e.queue, e.head = compact(e.queue, e.head)
}

// pump posts token-backed I/Os to the NIC up to the send-queue depth.
func (e *Engine) pump() {
	for e.inflight < e.params.SendQueueDepth && e.sendHead < len(e.sendQ) {
		req := e.sendQ[e.sendHead]
		e.sendQ[e.sendHead] = pendingReq{}
		e.sendHead++
		e.inflight++
		e.fire(req)
	}
	e.sendQ, e.sendHead = compact(e.sendQ, e.sendHead)
}

// compact reclaims the consumed prefix of a FIFO slice.
func compact(q []pendingReq, head int) ([]pendingReq, int) {
	if head == len(q) {
		return q[:0], 0
	}
	if head > 64 && head*2 > len(q) {
		n := copy(q, q[head:])
		return q[:n], 0
	}
	return q, head
}

func (e *Engine) fire(req pendingReq) {
	e.inflightDone.push(req.done)
	e.sender(req.key, e.onIODoneFn)
}

// onIODone completes the oldest in-flight I/O (IOSender completions are
// FIFO per engine: all data I/Os ride one QP in one service class).
func (e *Engine) onIODone() {
	done := e.inflightDone.pop()
	e.inflight--
	if e.crashed {
		// I/Os on the wire at crash time complete at the server
		// regardless, but the dead client cannot observe them; any
		// completion beyond that in-flight count is a protocol
		// violation.
		e.noteCrashedCompletion()
		done()
		return
	}
	e.completed++
	e.totalCompleted++
	done()
	e.pump()
}

// noteCrashedCompletion accounts one I/O completion delivered to a
// crashed engine and checks the no-completion-after-crash invariant:
// only the I/Os in flight at crash time may legally complete.
func (e *Engine) noteCrashedCompletion() {
	e.postCrashDone++
	if e.san != nil && e.postCrashDone > int64(e.crashInflight) {
		e.san.Reportf("post-crash-completion", int64(e.k.Now()),
			"engine-%d: %d completions after crash at t=%d exceed the %d in flight",
			e.id, e.postCrashDone, int64(e.crashAt), e.crashInflight)
	}
}

// DebugInjectPostCrashCompletion simulates a completion delivered to a
// crashed engine beyond its in-flight window — a deliberate break of the
// no-completion-after-crash invariant. It exists only so the sanitizer
// regression test can prove the violation is caught; nothing in the
// protocol calls it.
func (e *Engine) DebugInjectPostCrashCompletion() {
	e.crashInflight = 0
	e.noteCrashedCompletion()
}

// ensureFAA claims a batch of global tokens with a single remote atomic,
// unless a claim is already in flight or no period has started.
func (e *Engine) ensureFAA() {
	if e.faaInFlight || e.periodIndex == 0 {
		return
	}
	e.faaInFlight = true
	e.faaIssued++
	e.faaPI = e.periodIndex
	delta := -e.params.Batch
	e.faaProbe = false
	if e.poolExhausted {
		// Probe only: a zero-delta FETCH_ADD reads the pool without
		// consuming it, so starved clients do not dig the cell negative
		// while waiting for conversion or the next period.
		delta = 0
		e.faaProbe = true
	}
	if err := e.qp.FetchAdd(e.qos, globalTokenOff, delta, e.onFAAFn); err != nil {
		e.faaInFlight = false
	}
}

// onFAA completes a global-token claim or exhaustion probe. faaInFlight
// admits one outstanding FETCH_ADD, so the bound-callback state
// (faaPI, faaProbe) is unambiguous and claiming allocates nothing.
func (e *Engine) onFAA(old int64) {
	e.faaInFlight = false
	if e.faaPI != e.periodIndex {
		// The claim straddled a period boundary: its tokens belonged
		// to the previous period's budget and are void. Re-enter the
		// dispatch path so pending demand claims against the current
		// period instead of stalling until the next tick.
		e.drain()
		return
	}
	if old <= 0 {
		// Step T4: the unreserved capacity is exhausted; wait for
		// the monitor to convert tokens or for the next period. The
		// tick keeps probing while demand is pending.
		e.poolExhausted = true
		e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Probe, Actor: e.actor(), A: old})
		return
	}
	if e.faaProbe {
		// The probe found tokens: switch back to claiming.
		e.poolExhausted = false
		e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Probe, Actor: e.actor(), A: old})
		e.ensureFAA()
		return
	}
	granted := old
	if granted > e.params.Batch {
		granted = e.params.Batch
	} else {
		// Partial batch: the pool is in its conversion-trickle
		// regime. Back off to probing so one fast claim loop cannot
		// camp on the pool and starve other clients of converted
		// tokens (competition for global tokens stays fair).
		e.poolExhausted = true
	}
	e.localGlobal += granted
	e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Claim, Actor: e.actor(), A: old, B: granted})
	e.drain()
}

// onTick is the token-management thread (Section II-D): decay X at rate
// r_i = R_i/T and yield reservation tokens the client is not earning with
// demand; also retry the global-token claim while requests wait.
func (e *Engine) onTick() {
	if e.periodIndex == 0 {
		return
	}
	if !e.degraded && e.k.Now() > e.periodEnd+2*e.params.CheckInterval {
		// The monitor went silent: the period is overdue past the grace
		// window (a fresh push normally lands within a propagation delay
		// of the period end). Degrade to local-token mode — serve from
		// whatever reservation tokens remain, never claim from the stale
		// pool, and probe it on bounded backoff until the next push.
		e.degraded = true
		e.degradedSince = e.k.Now()
		e.degradedSpells++
		e.probeBackoff = e.params.Tick
		e.nextProbeAt = e.k.Now()
	}
	e.x -= float64(e.params.Tick) / float64(e.params.Period) * float64(e.reservation)
	if e.x < 0 {
		e.x = 0
	}
	if xi := int64(e.x); e.resTokens > xi {
		y := e.resTokens - xi
		e.tokensYielded += y
		e.periodYielded += y
		e.resTokens = xi
		returned := int64(0)
		if e.convert {
			// Return the yielded tokens to the global pool (Section
			// II-B: "clients ... return their reservation tokens to the
			// global pool") with a silent one-sided atomic.
			_ = e.qp.FetchAdd(e.qos, globalTokenOff, y, nil)
			e.tokensReturned += y
			returned = y
		}
		e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Yield, Actor: e.actor(), A: y, B: returned})
	}
	if e.degraded {
		if e.Pending() > 0 && e.k.Now() >= e.nextProbeAt {
			e.degradedProbes++
			e.probePool()
			e.probeBackoff *= 2
			if e.probeBackoff > e.params.Period {
				e.probeBackoff = e.params.Period
			}
			e.nextProbeAt = e.k.Now() + e.probeBackoff
		}
		return
	}
	if e.Pending() > 0 && e.resTokens == 0 && e.localGlobal == 0 {
		// Jitter the retry within the tick so competing clients probe the
		// pool in varying order rather than a fixed creation order. The
		// delay is strictly below the tick, so at most one retry is
		// outstanding and the bound retryFn's retryPI slot is unambiguous.
		delay := sim.Time(e.k.Rand().Int63n(int64(e.params.Tick)))
		e.retryPI = e.periodIndex
		e.k.Schedule(delay, e.retryFn)
	}
}

// retryClaim is the tick's jittered claim retry; it re-checks the
// conditions at fire time (the period may have rolled or tokens arrived).
func (e *Engine) retryClaim() {
	if e.retryPI == e.periodIndex && e.Pending() > 0 && e.resTokens == 0 && e.localGlobal == 0 {
		e.ensureFAA()
	}
}

// probePool reads the global-token cell with a zero-delta FETCH_ADD
// without acting on the result — the degraded-mode heartbeat against the
// data node while the monitor is silent.
func (e *Engine) probePool() {
	if e.faaInFlight || e.periodIndex == 0 {
		return
	}
	e.faaInFlight = true
	e.faaIssued++
	if err := e.qp.FetchAdd(e.qos, globalTokenOff, 0, e.onProbeFn); err != nil {
		e.faaInFlight = false
	}
}

// onProbe completes a degraded-mode pool heartbeat.
func (e *Engine) onProbe(old int64) {
	e.faaInFlight = false
	e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Probe, Actor: e.actor(), A: old})
}

// leaveDegraded closes a degraded-mode window and accounts its duration.
func (e *Engine) leaveDegraded() {
	e.degraded = false
	e.degradedNs += int64(e.k.Now() - e.degradedSince)
}

// report writes the packed (residual, completed) word silently to the
// monitor's table. The residual is "the number of remaining reservation
// I/Os for the rest of the period" — the unconsumed reservation tokens,
// exactly Example 1's accounting (R minus the greater of demand and the
// linear entitlement rho).
func (e *Engine) report() {
	w := PackReport(clampUint32(e.resTokens), clampUint32(e.completed))
	if err := e.qp.WriteUint64(e.qos, e.reportOff, w, nil); err == nil {
		e.reportsSent++
		e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Report, Actor: e.actor(),
			A: e.resTokens, B: e.completed})
	}
}

// actor names the engine in trace events.
func (e *Engine) actor() string { return fmt.Sprintf("engine-%d", e.id) }

// SetSanitizer installs the invariant checker consulted at each period
// rollover. Nil (the default) disables the checks; the event path then
// pays one pointer comparison per period and nothing else.
func (e *Engine) SetSanitizer(c *sanitize.Checker) { e.san = c }

// DebugDropReservationTokens silently discards up to n reservation
// tokens without recording them as used or yielded — a deliberate break
// of the conservation identity. It exists only so the sanitizer
// regression test can prove a real token leak is caught; nothing in the
// protocol calls it.
func (e *Engine) DebugDropReservationTokens(n int64) {
	if n > e.resTokens {
		n = e.resTokens
	}
	if n > 0 {
		e.resTokens -= n
	}
}

func (e *Engine) handlePeriodStart(_ *rdma.Node, body any) {
	m, ok := body.(periodStartMsg)
	if !ok || e.crashed {
		return
	}
	if e.san != nil && m.Index <= e.periodIndex {
		// Rejoin monotonicity: the monitor's period pushes arrive in FIFO
		// order per QP and the period counter only ever increments, so a
		// repeated or regressed index means the recovery path replayed a
		// period.
		e.san.Reportf("rejoin-monotonic", int64(e.k.Now()),
			"engine-%d: period push %d not after current period %d",
			e.id, m.Index, e.periodIndex)
	}
	if e.periodIndex > 0 {
		e.PeriodLog.Observe(uint64(e.completed))
		if e.san != nil {
			// Token conservation for the finished period (pre-reset values):
			// every reservation token was either spent on an admitted I/O,
			// yielded by the X-counter decay, quarantined by a crash, or is
			// still held.
			if e.resUsed+e.resTokens+e.periodYielded+e.quarRes != e.reservation {
				e.san.Reportf("token-conservation", int64(e.k.Now()),
					"engine-%d period %d: used %d + held %d + yielded %d + quarantined %d != reservation %d",
					e.id, e.periodIndex, e.resUsed, e.resTokens, e.periodYielded, e.quarRes, e.reservation)
			}
			if e.resTokens < 0 || e.localGlobal < 0 {
				e.san.Reportf("token-conservation", int64(e.k.Now()),
					"engine-%d period %d: negative token balance (reservation %d, global %d)",
					e.id, e.periodIndex, e.resTokens, e.localGlobal)
			}
		}
	}
	if e.degraded {
		e.leaveDegraded()
	}
	if e.quarRes > 0 || e.quarGlobal > 0 {
		// The quarantined tokens' period is over: they expired with it (the
		// monitor re-seeds reservations every period), so release them.
		e.quarReleased += e.quarRes + e.quarGlobal
		e.quarRes, e.quarGlobal = 0, 0
	}
	if e.rejoinPending {
		e.rejoinPending = false
		e.rejoinIndex = m.Index
		e.rejoinAt = e.k.Now()
	}
	e.periodIndex = m.Index
	e.periodEnd = sim.Time(m.EndAt)
	e.convert = m.Convert
	e.reservation = m.Reservation
	e.resTokens = m.Reservation // fresh tokens replace any leftovers
	e.localGlobal = 0           // unspent global tokens expire with the period
	e.x = float64(m.Reservation)
	e.poolExhausted = false
	e.dispatched = 0
	e.resUsed = 0
	e.periodYielded = 0
	e.completed = 0
	e.reporting = false
	if e.reportTicker != nil {
		e.reportTicker.Stop()
		e.reportTicker = nil
	}
	// Schedule the end-of-period report that feeds Algorithm 1 (see
	// DESIGN.md note 1) one check interval before the period closes.
	e.finalReportTimer.Cancel()
	finalAt := sim.Time(m.EndAt) - e.params.CheckInterval
	e.finalReportTimer = e.k.At(finalAt, e.reportFn)
	if e.OnPeriodStart != nil {
		e.OnPeriodStart(m.Index)
	}
	e.drain()
}

func (e *Engine) handleReportOn(_ *rdma.Node, body any) {
	m, ok := body.(reportOnMsg)
	if !ok || e.crashed || m.Index != e.periodIndex || e.reporting {
		return
	}
	e.reporting = true
	e.report()
	t, err := e.k.Every(e.params.ReportInterval, e.params.ReportInterval, func() {
		// Suppress periodic reports in the final check interval: the
		// scheduled end-of-period report covers it, and a tick racing the
		// next period's token push must not overwrite the monitor's
		// freshly seeded report slot with stale last-period statistics.
		if e.reporting && e.k.Now() < e.periodEnd-e.params.CheckInterval {
			e.report()
		}
	})
	if err == nil {
		e.reportTicker = t
	}
}

func (e *Engine) handleAlert(_ *rdma.Node, body any) {
	m, ok := body.(alertMsg)
	if !ok {
		return
	}
	if e.OnAlert != nil {
		e.OnAlert(m.ConsecutivePeriods)
	}
}

// fnFIFO is a queue of callbacks backed by a reusable slice; pop compacts
// lazily so steady-state traffic stops allocating once the buffer reaches
// its high-water mark (the pooled-FIFO idiom shared with sim and rdma).
type fnFIFO struct {
	fns  []func()
	head int
}

func (q *fnFIFO) push(fn func()) { q.fns = append(q.fns, fn) }

func (q *fnFIFO) pop() func() {
	fn := q.fns[q.head]
	q.fns[q.head] = nil
	q.head++
	if q.head >= len(q.fns) {
		q.fns = q.fns[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.fns) {
		n := copy(q.fns, q.fns[q.head:])
		q.fns = q.fns[:n]
		q.head = 0
	}
	return fn
}
