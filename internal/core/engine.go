package core

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/sanitize"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
)

// IOSender performs the actual one-sided data I/O once the engine has a
// token for it (e.g. a kvstore one-sided GET). done must fire exactly once
// at I/O completion.
type IOSender func(key uint64, done func())

// ClientGrant is what admission hands a client: its identity and the
// capabilities needed to participate in the protocol.
type ClientGrant struct {
	// ID is the client's index in the monitor's report table.
	ID int
	// ServerNode is the data node.
	ServerNode *rdma.Node
	// QoSRegion holds the global token cell and report table.
	QoSRegion *rdma.Region
}

// pendingReq is a request waiting for a token.
type pendingReq struct {
	key  uint64
	done func()
}

// Engine is the client-side QoS engine (Section II-D): it admits
// application requests only when backed by a token, manages the
// reservation-token decay (the X counter), claims batched global tokens
// with one-sided FETCH_ADD, and silently reports usage statistics.
type Engine struct {
	params Params
	id     int
	limit  int64

	k         *sim.Kernel
	node      *rdma.Node
	qp        *rdma.QP
	qos       *rdma.Region
	reportOff int
	sender    IOSender

	// Period state.
	periodIndex int
	periodEnd   sim.Time
	reservation int64
	resTokens   int64   // xi_reservation
	localGlobal int64   // claimed, unspent global tokens
	x           float64 // the X counter: upper bound on residual reservation
	dispatched  int64   // token-backed I/Os granted this period
	resUsed     int64   // reservation tokens consumed this period
	completed   int64   // N_i: I/Os completed this period
	faaInFlight bool
	crashed     bool
	// poolExhausted is set when a claim observed a non-positive pool;
	// until a probe sees tokens again, retries read the cell with a
	// zero-delta FETCH_ADD instead of digging it further negative.
	poolExhausted bool
	reporting     bool

	queue []pendingReq
	head  int

	// sendQ holds token-backed I/Os awaiting a send-queue slot; inflight
	// counts I/Os posted to the NIC and not yet completed, bounded by
	// Params.SendQueueDepth.
	sendQ    []pendingReq
	sendHead int
	inflight int

	// convert mirrors the monitor's conversion mode: when true, tokens
	// yielded by the X-counter decay are returned to the global pool
	// with a one-sided FETCH_ADD (+y); when false (Basic Haechi) they
	// are wasted.
	convert bool

	tick             *sim.Ticker
	reportTicker     *sim.Ticker
	finalReportTimer sim.Timer

	// OnPeriodStart, if set, is invoked when a new QoS period begins
	// (after tokens are installed); the workload generator hooks it.
	OnPeriodStart func(index int)
	// OnAlert, if set, is invoked when the monitor warns that this client
	// consistently under-uses its reservation.
	OnAlert func(consecutivePeriods int)

	// PeriodLog records completed I/Os per finished period.
	PeriodLog metrics.PeriodLog

	// Trace, when non-nil, records protocol events (claims, probes,
	// yields, reports, throttling).
	Trace *trace.Recorder

	// san, when non-nil, checks token conservation at every period
	// rollover (internal/sanitize). periodYielded tracks reservation
	// tokens yielded within the current period so the per-period
	// identity resUsed + resTokens + periodYielded == reservation stays
	// exact (tokensYielded is cumulative across periods).
	san           *sanitize.Checker
	periodYielded int64

	// Counters.
	totalCompleted  uint64
	totalRequested  uint64
	faaIssued       uint64
	tokensYielded   int64
	reportsSent     uint64
	limitThrottled  uint64
	globalConsumed  int64
	reservationUsed int64
	tokensReturned  int64
}

// NewEngine creates and starts a QoS engine on node for the admitted
// client described by grant. limit is L_i, the per-period request cap
// (0 = unlimited). sender performs the one-sided data I/O. disp is the
// client node's dispatcher, used to receive the monitor's control
// messages.
func NewEngine(params Params, grant ClientGrant, node *rdma.Node, disp *rdma.Dispatcher, limit int64, sender IOSender) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if node == nil || disp == nil || sender == nil {
		return nil, fmt.Errorf("core: NewEngine requires node, dispatcher and sender")
	}
	if grant.ServerNode == nil || grant.QoSRegion == nil {
		return nil, fmt.Errorf("core: NewEngine requires a complete grant (was the client admitted?)")
	}
	if limit < 0 {
		return nil, fmt.Errorf("core: limit must be non-negative, got %d", limit)
	}
	qp, err := node.Fabric().Connect(node, grant.ServerNode)
	if err != nil {
		return nil, fmt.Errorf("core: connecting engine to data node: %w", err)
	}
	e := &Engine{
		params:    params,
		id:        grant.ID,
		limit:     limit,
		k:         node.Kernel(),
		node:      node,
		qp:        qp,
		qos:       grant.QoSRegion,
		reportOff: reportSlotOffset(grant.ID),
		sender:    sender,
	}
	// Handlers are scoped to this engine's data node, so several engines
	// (one per server in a multi-server deployment) can share one client
	// node's dispatcher.
	if err := disp.HandleFrom(msgPeriodStart, grant.ServerNode, e.handlePeriodStart); err != nil {
		return nil, err
	}
	if err := disp.HandleFrom(msgReportOn, grant.ServerNode, e.handleReportOn); err != nil {
		return nil, err
	}
	if err := disp.HandleFrom(msgAlert, grant.ServerNode, e.handleAlert); err != nil {
		return nil, err
	}
	e.tick, err = e.k.Every(params.Tick, params.Tick, e.onTick)
	if err != nil {
		return nil, err
	}
	return e, nil
}

// ID returns the client's identity in the monitor's table.
func (e *Engine) ID() int { return e.id }

// Request submits one application I/O. It is served as soon as the engine
// holds a token for it; otherwise it queues ("The I/O sender function in
// the QoS engine will reject I/Os that are not backed by a token").
func (e *Engine) Request(key uint64, done func()) {
	if e.crashed {
		return
	}
	e.totalRequested++
	e.queue = append(e.queue, pendingReq{key: key, done: done})
	e.drain()
}

// Pending returns the number of requests waiting for tokens.
func (e *Engine) Pending() int { return len(e.queue) - e.head }

// ReservationTokens returns the current xi_reservation.
func (e *Engine) ReservationTokens() int64 { return e.resTokens }

// LocalGlobalTokens returns claimed-but-unspent global tokens.
func (e *Engine) LocalGlobalTokens() int64 { return e.localGlobal }

// CompletedThisPeriod returns N_i.
func (e *Engine) CompletedThisPeriod() int64 { return e.completed }

// TotalCompleted returns the lifetime completed count.
func (e *Engine) TotalCompleted() uint64 { return e.totalCompleted }

// PeriodIndex returns the current QoS period number (0 before the first).
func (e *Engine) PeriodIndex() int { return e.periodIndex }

// Stop halts the engine's tickers; queued requests are abandoned.
func (e *Engine) Stop() {
	e.tick.Stop()
	if e.reportTicker != nil {
		e.reportTicker.Stop()
	}
	e.finalReportTimer.Cancel()
}

// Crash simulates a client failure for fault-injection tests: the engine
// stops all protocol activity (ticks, reports, claims) and silently drops
// its queued and future requests. The monitor's failure detection should
// reclaim the client's reservation after its grace window.
func (e *Engine) Crash() {
	e.crashed = true
	e.Stop()
	e.queue, e.head = nil, 0
	e.sendQ, e.sendHead = nil, 0
	e.OnPeriodStart = nil
}

// EngineStats is a snapshot of protocol-overhead counters.
type EngineStats struct {
	TotalRequested  uint64
	TotalCompleted  uint64
	FAAIssued       uint64
	ReportsSent     uint64
	TokensYielded   int64
	TokensReturned  int64
	LimitThrottled  uint64
	ReservationUsed int64
	GlobalConsumed  int64
}

// Stats returns the engine's protocol counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		TotalRequested:  e.totalRequested,
		TotalCompleted:  e.totalCompleted,
		FAAIssued:       e.faaIssued,
		ReportsSent:     e.reportsSent,
		TokensYielded:   e.tokensYielded,
		TokensReturned:  e.tokensReturned,
		LimitThrottled:  e.limitThrottled,
		ReservationUsed: e.reservationUsed,
		GlobalConsumed:  e.globalConsumed,
	}
}

// drain admits queued requests while tokens allow (Fig. 3 flowchart):
// each admitted request consumes one token — Example 1's accounting, where
// the residual reservation is R minus the demand already admitted — and
// moves to the send queue, which paces actual posting.
func (e *Engine) drain() {
	defer e.pump()
	for e.head < len(e.queue) {
		if e.limit > 0 && e.dispatched >= e.limit {
			// Limit reached: throttle until the next period.
			e.limitThrottled++
			e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.LimitThrottle, Actor: e.actor(), A: e.limit})
			return
		}
		switch {
		case e.resTokens > 0:
			e.resTokens--
			e.resUsed++
			e.reservationUsed++
		case e.localGlobal > 0:
			e.localGlobal--
			e.globalConsumed++
		default:
			// While the pool is known-exhausted, only the tick's jittered
			// retry probes it (step T4: the client waits for returned
			// tokens or the next period); claiming on every arrival would
			// turn the data node's NIC into an atomics hot spot.
			if !e.poolExhausted {
				e.ensureFAA()
			}
			return
		}
		req := e.queue[e.head]
		e.queue[e.head] = pendingReq{} // release references
		e.head++
		e.dispatched++
		e.sendQ = append(e.sendQ, req)
	}
	e.queue, e.head = compact(e.queue, e.head)
}

// pump posts token-backed I/Os to the NIC up to the send-queue depth.
func (e *Engine) pump() {
	for e.inflight < e.params.SendQueueDepth && e.sendHead < len(e.sendQ) {
		req := e.sendQ[e.sendHead]
		e.sendQ[e.sendHead] = pendingReq{}
		e.sendHead++
		e.inflight++
		e.fire(req)
	}
	e.sendQ, e.sendHead = compact(e.sendQ, e.sendHead)
}

// compact reclaims the consumed prefix of a FIFO slice.
func compact(q []pendingReq, head int) ([]pendingReq, int) {
	if head == len(q) {
		return q[:0], 0
	}
	if head > 64 && head*2 > len(q) {
		n := copy(q, q[head:])
		return q[:n], 0
	}
	return q, head
}

func (e *Engine) fire(req pendingReq) {
	e.sender(req.key, func() {
		e.inflight--
		e.completed++
		e.totalCompleted++
		req.done()
		e.pump()
	})
}

// ensureFAA claims a batch of global tokens with a single remote atomic,
// unless a claim is already in flight or no period has started.
func (e *Engine) ensureFAA() {
	if e.faaInFlight || e.periodIndex == 0 {
		return
	}
	e.faaInFlight = true
	e.faaIssued++
	pi := e.periodIndex
	delta := -e.params.Batch
	if e.poolExhausted {
		// Probe only: a zero-delta FETCH_ADD reads the pool without
		// consuming it, so starved clients do not dig the cell negative
		// while waiting for conversion or the next period.
		delta = 0
	}
	err := e.qp.FetchAdd(e.qos, globalTokenOff, delta, func(old int64) {
		e.faaInFlight = false
		if pi != e.periodIndex {
			// The claim straddled a period boundary: its tokens belonged
			// to the previous period's budget and are void. Re-enter the
			// dispatch path so pending demand claims against the current
			// period instead of stalling until the next tick.
			e.drain()
			return
		}
		if old <= 0 {
			// Step T4: the unreserved capacity is exhausted; wait for
			// the monitor to convert tokens or for the next period. The
			// tick keeps probing while demand is pending.
			e.poolExhausted = true
			e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Probe, Actor: e.actor(), A: old})
			return
		}
		if delta == 0 {
			// The probe found tokens: switch back to claiming.
			e.poolExhausted = false
			e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Probe, Actor: e.actor(), A: old})
			e.ensureFAA()
			return
		}
		granted := old
		if granted > e.params.Batch {
			granted = e.params.Batch
		} else {
			// Partial batch: the pool is in its conversion-trickle
			// regime. Back off to probing so one fast claim loop cannot
			// camp on the pool and starve other clients of converted
			// tokens (competition for global tokens stays fair).
			e.poolExhausted = true
		}
		e.localGlobal += granted
		e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Claim, Actor: e.actor(), A: old, B: granted})
		e.drain()
	})
	if err != nil {
		e.faaInFlight = false
	}
}

// onTick is the token-management thread (Section II-D): decay X at rate
// r_i = R_i/T and yield reservation tokens the client is not earning with
// demand; also retry the global-token claim while requests wait.
func (e *Engine) onTick() {
	if e.periodIndex == 0 {
		return
	}
	e.x -= float64(e.params.Tick) / float64(e.params.Period) * float64(e.reservation)
	if e.x < 0 {
		e.x = 0
	}
	if xi := int64(e.x); e.resTokens > xi {
		y := e.resTokens - xi
		e.tokensYielded += y
		e.periodYielded += y
		e.resTokens = xi
		returned := int64(0)
		if e.convert {
			// Return the yielded tokens to the global pool (Section
			// II-B: "clients ... return their reservation tokens to the
			// global pool") with a silent one-sided atomic.
			_ = e.qp.FetchAdd(e.qos, globalTokenOff, y, nil)
			e.tokensReturned += y
			returned = y
		}
		e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Yield, Actor: e.actor(), A: y, B: returned})
	}
	if e.Pending() > 0 && e.resTokens == 0 && e.localGlobal == 0 {
		// Jitter the retry within the tick so competing clients probe the
		// pool in varying order rather than a fixed creation order.
		delay := sim.Time(e.k.Rand().Int63n(int64(e.params.Tick)))
		pi := e.periodIndex
		e.k.Schedule(delay, func() {
			if pi == e.periodIndex && e.Pending() > 0 && e.resTokens == 0 && e.localGlobal == 0 {
				e.ensureFAA()
			}
		})
	}
}

// report writes the packed (residual, completed) word silently to the
// monitor's table. The residual is "the number of remaining reservation
// I/Os for the rest of the period" — the unconsumed reservation tokens,
// exactly Example 1's accounting (R minus the greater of demand and the
// linear entitlement rho).
func (e *Engine) report() {
	w := PackReport(clampUint32(e.resTokens), clampUint32(e.completed))
	if err := e.qp.WriteUint64(e.qos, e.reportOff, w, nil); err == nil {
		e.reportsSent++
		e.Trace.Record(trace.Event{At: e.k.Now(), Kind: trace.Report, Actor: e.actor(),
			A: e.resTokens, B: e.completed})
	}
}

// actor names the engine in trace events.
func (e *Engine) actor() string { return fmt.Sprintf("engine-%d", e.id) }

// SetSanitizer installs the invariant checker consulted at each period
// rollover. Nil (the default) disables the checks; the event path then
// pays one pointer comparison per period and nothing else.
func (e *Engine) SetSanitizer(c *sanitize.Checker) { e.san = c }

// DebugDropReservationTokens silently discards up to n reservation
// tokens without recording them as used or yielded — a deliberate break
// of the conservation identity. It exists only so the sanitizer
// regression test can prove a real token leak is caught; nothing in the
// protocol calls it.
func (e *Engine) DebugDropReservationTokens(n int64) {
	if n > e.resTokens {
		n = e.resTokens
	}
	if n > 0 {
		e.resTokens -= n
	}
}

func (e *Engine) handlePeriodStart(_ *rdma.Node, body any) {
	m, ok := body.(periodStartMsg)
	if !ok || e.crashed {
		return
	}
	if e.periodIndex > 0 {
		e.PeriodLog.Observe(uint64(e.completed))
		if e.san != nil {
			// Token conservation for the finished period (pre-reset values):
			// every reservation token was either spent on an admitted I/O,
			// yielded by the X-counter decay, or is still held.
			if e.resUsed+e.resTokens+e.periodYielded != e.reservation {
				e.san.Reportf("token-conservation", int64(e.k.Now()),
					"engine-%d period %d: used %d + held %d + yielded %d != reservation %d",
					e.id, e.periodIndex, e.resUsed, e.resTokens, e.periodYielded, e.reservation)
			}
			if e.resTokens < 0 || e.localGlobal < 0 {
				e.san.Reportf("token-conservation", int64(e.k.Now()),
					"engine-%d period %d: negative token balance (reservation %d, global %d)",
					e.id, e.periodIndex, e.resTokens, e.localGlobal)
			}
		}
	}
	e.periodIndex = m.Index
	e.periodEnd = sim.Time(m.EndAt)
	e.convert = m.Convert
	e.reservation = m.Reservation
	e.resTokens = m.Reservation // fresh tokens replace any leftovers
	e.localGlobal = 0           // unspent global tokens expire with the period
	e.x = float64(m.Reservation)
	e.poolExhausted = false
	e.dispatched = 0
	e.resUsed = 0
	e.periodYielded = 0
	e.completed = 0
	e.reporting = false
	if e.reportTicker != nil {
		e.reportTicker.Stop()
		e.reportTicker = nil
	}
	// Schedule the end-of-period report that feeds Algorithm 1 (see
	// DESIGN.md note 1) one check interval before the period closes.
	e.finalReportTimer.Cancel()
	finalAt := sim.Time(m.EndAt) - e.params.CheckInterval
	e.finalReportTimer = e.k.At(finalAt, e.report)
	if e.OnPeriodStart != nil {
		e.OnPeriodStart(m.Index)
	}
	e.drain()
}

func (e *Engine) handleReportOn(_ *rdma.Node, body any) {
	m, ok := body.(reportOnMsg)
	if !ok || e.crashed || m.Index != e.periodIndex || e.reporting {
		return
	}
	e.reporting = true
	e.report()
	t, err := e.k.Every(e.params.ReportInterval, e.params.ReportInterval, func() {
		// Suppress periodic reports in the final check interval: the
		// scheduled end-of-period report covers it, and a tick racing the
		// next period's token push must not overwrite the monitor's
		// freshly seeded report slot with stale last-period statistics.
		if e.reporting && e.k.Now() < e.periodEnd-e.params.CheckInterval {
			e.report()
		}
	})
	if err == nil {
		e.reportTicker = t
	}
}

func (e *Engine) handleAlert(_ *rdma.Node, body any) {
	m, ok := body.(alertMsg)
	if !ok {
		return
	}
	if e.OnAlert != nil {
		e.OnAlert(m.ConsecutivePeriods)
	}
}
