package core

import (
	"testing"

	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/sim"
)

// The integration harness runs the full protocol over a fabric scaled
// down 100x (client NIC 4 KIOPS, server NIC 15.7 KIOPS) with the paper's
// period structure (T = 1 s, 1 ms ticks), so a multi-period run simulates
// in milliseconds of wall time while preserving every capacity ratio.

const (
	testScale   = 100.0
	testServerC = 15_700 // scaled C_G per period
	testClientC = 4_000  // scaled C_L per period
)

func testParams() Params {
	p := NewDefaultParams()
	p.Batch = 50 // scale B with capacity, as the cluster runner does
	// Scale the control-plane intervals with capacity: at 1/100 capacity,
	// per-millisecond control verbs would cost 100x more of the data
	// node's NIC than in the paper; 10 ms intervals restore the paper's
	// control:data cost ratio.
	p.Tick = 10 * sim.Millisecond
	p.CheckInterval = 10 * sim.Millisecond
	p.ReportInterval = 10 * sim.Millisecond
	return p
}

type qosHarness struct {
	t       *testing.T
	k       *sim.Kernel
	f       *rdma.Fabric
	server  *rdma.Node
	mon     *Monitor
	engines []*Engine
	drivers []*burstLoop
	data    *rdma.Region
}

// burstLoop is a minimal closed-loop driver (window outstanding, fixed
// per-period demand) used to exercise engines without importing the
// workload package.
type burstLoop struct {
	e           *Engine
	window      int
	demand      func(period int) int
	target      int
	issued      int
	outstanding int
}

func (b *burstLoop) begin(period int) {
	b.target = b.demand(period)
	b.issued = 0
	b.fill()
}

func (b *burstLoop) fill() {
	for b.outstanding < b.window && b.issued < b.target {
		b.issued++
		b.outstanding++
		b.e.Request(uint64(b.issued), func() {
			b.outstanding--
			b.fill()
		})
	}
}

// newQoSHarness builds a data node plus one engine per reservation; each
// engine's sender performs a real one-sided 4 KB read so NIC contention
// is exercised. demand maps (client, period) to requests per period.
// Demand is posted at period start (the paper's Example-2 burst form).
func newQoSHarness(t *testing.T, params Params, reservations []int64, demand func(client, period int) int, monOpts ...MonitorOption) *qosHarness {
	return newQoSHarnessSigma(t, params, reservations, demand, 400, monOpts...)
}

func newQoSHarnessSigma(t *testing.T, params Params, reservations []int64, demand func(client, period int) int, sigma float64, monOpts ...MonitorOption) *qosHarness {
	t.Helper()
	k := sim.New(11)
	cfg := rdma.NewDefaultConfig().Scaled(testScale)
	cfg.Jitter = 0
	f, err := rdma.NewFabric(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	server, err := f.AddServer("dn")
	if err != nil {
		t.Fatal(err)
	}
	data, err := server.RegisterRegion("data", rdma.DataIOSize)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewCapacityEstimator(params, testServerC, sigma)
	if err != nil {
		t.Fatal(err)
	}
	adm, err := NewAdmissionController(testServerC, testClientC)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(params, server, est, adm, monOpts...)
	if err != nil {
		t.Fatal(err)
	}
	h := &qosHarness{t: t, k: k, f: f, server: server, mon: mon, data: data}
	for i, r := range reservations {
		i := i
		node, err := f.AddClient(clientName(i))
		if err != nil {
			t.Fatal(err)
		}
		disp := rdma.NewDispatcher(node)
		grant, err := mon.Admit(node, r)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := f.Connect(node, server)
		if err != nil {
			t.Fatal(err)
		}
		sender := func(key uint64, done func()) {
			if err := qp.Read(data, 0, rdma.DataIOSize, func([]byte) { done() }); err != nil {
				t.Fatalf("read failed: %v", err)
			}
		}
		eng, err := NewEngine(params, grant, node, disp, 0, sender)
		if err != nil {
			t.Fatal(err)
		}
		drv := &burstLoop{e: eng, window: 1 << 30, demand: func(p int) int { return demand(i, p) }}
		eng.OnPeriodStart = drv.begin
		h.engines = append(h.engines, eng)
		h.drivers = append(h.drivers, drv)
	}
	return h
}

func clientName(i int) string { return "c" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

// run starts the monitor and runs n full periods, returning per-client
// per-period completions harvested from the engines' period logs.
func (h *qosHarness) run(periods int) [][]uint64 {
	if err := h.mon.Start(); err != nil {
		h.t.Fatal(err)
	}
	h.k.RunUntil(sim.Time(periods+1) * h.engines[0].params.Period)
	h.mon.Stop()
	out := make([][]uint64, len(h.engines))
	for i, e := range h.engines {
		out[i] = e.PeriodLog.Completed
	}
	return out
}

func TestEngineValidation(t *testing.T) {
	k := sim.New(1)
	f, _ := rdma.NewFabric(k, rdma.NewDefaultConfig())
	server, _ := f.AddServer("dn")
	client, _ := f.AddClient("c")
	disp := rdma.NewDispatcher(client)
	est, _ := NewCapacityEstimator(NewDefaultParams(), 1000, 0)
	adm, _ := NewAdmissionController(1000, 400)
	mon, _ := NewMonitor(NewDefaultParams(), server, est, adm)
	grant, err := mon.Admit(client, 100)
	if err != nil {
		t.Fatal(err)
	}
	sender := func(uint64, func()) {}
	if _, err := NewEngine(NewDefaultParams(), grant, nil, disp, 0, sender); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := NewEngine(NewDefaultParams(), ClientGrant{}, client, disp, 0, sender); err == nil {
		t.Error("empty grant accepted")
	}
	if _, err := NewEngine(NewDefaultParams(), grant, client, disp, -1, sender); err == nil {
		t.Error("negative limit accepted")
	}
	if _, err := NewEngine(NewDefaultParams(), grant, client, disp, 0, nil); err == nil {
		t.Error("nil sender accepted")
	}
	bad := NewDefaultParams()
	bad.Batch = 0
	if _, err := NewEngine(bad, grant, client, disp, 0, sender); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestMonitorValidation(t *testing.T) {
	k := sim.New(1)
	f, _ := rdma.NewFabric(k, rdma.NewDefaultConfig())
	server, _ := f.AddServer("dn")
	client, _ := f.AddClient("c")
	est, _ := NewCapacityEstimator(NewDefaultParams(), 1000, 0)
	adm, _ := NewAdmissionController(1000, 400)
	if _, err := NewMonitor(NewDefaultParams(), nil, est, adm); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := NewMonitor(NewDefaultParams(), client, est, adm); err == nil {
		t.Error("client node accepted as monitor host")
	}
	bad := NewDefaultParams()
	bad.Period = 0
	if _, err := NewMonitor(bad, server, est, adm); err == nil {
		t.Error("invalid params accepted")
	}
	mon, err := NewMonitor(NewDefaultParams(), server, est, adm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Admit(nil, 10); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := mon.Admit(client, 500); err == nil {
		t.Error("local-capacity-violating reservation accepted")
	}
	if err := mon.Remove(0); err == nil {
		t.Error("removing unknown client succeeded")
	}
	if err := mon.SetReservation(3, 10); err == nil {
		t.Error("SetReservation on unknown client succeeded")
	}
}

// TestReservationsMetWithSufficientDemand is the core guarantee
// (Experiment 2A shape): continuously backlogged clients receive at least
// R_i every period, under both uniform and skewed reservations.
func TestReservationsMetWithSufficientDemand(t *testing.T) {
	cases := []struct {
		name string
		res  []int64
	}{
		{"uniform", []int64{1413, 1413, 1413, 1413, 1413, 1413, 1413, 1413, 1413, 1413}},
		{"zipf", []int64{2361, 2361, 1558, 1558, 1221, 1221, 1027, 1027, 898, 898}}, // ZipfGroupSplit(0.6): 90% of 15700
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			demand := func(client, period int) int { return int(tc.res[client]) + 400 }
			h := newQoSHarness(t, testParams(), tc.res, demand)
			logs := h.run(5)
			for i, log := range logs {
				if len(log) < 4 {
					t.Fatalf("client %d: only %d periods logged", i, len(log))
				}
				// Skip the first period (engines join mid-protocol). The
				// 90%-reserved Zipf point sits exactly at the local-
				// capacity feasibility edge under the burst pattern: the
				// highest-reservation client's late-period catch-up rate
				// marginally exceeds C_L (see EXPERIMENTS.md), so the
				// per-period check carries a 4% tolerance; what must hold
				// strictly is that every client lands near its
				// reservation instead of the bare system's fair share.
				var sum float64
				for p := 1; p < len(log); p++ {
					if float64(log[p]) < 0.96*float64(tc.res[i]) {
						t.Errorf("client %d period %d: completed %d < reservation %d",
							i, p, log[p], tc.res[i])
					}
					sum += float64(log[p])
				}
				mean := sum / float64(len(log)-1)
				if mean < 0.96*float64(tc.res[i]) {
					t.Errorf("client %d: mean completions %.0f below reservation %d", i, mean, tc.res[i])
				}
				fairShare := float64(testServerC) / 10
				if float64(tc.res[i]) > 1.2*fairShare && mean < 1.3*fairShare {
					t.Errorf("client %d: mean %.0f not differentiated above fair share %.0f", i, mean, fairShare)
				}
			}
		})
	}
}

// TestHighThroughputMaintained: with 90% reserved and demand above
// reservation, Haechi keeps the data node near its capacity (the paper
// reports <0.1% loss for uniform reservations).
func TestHighThroughputMaintained(t *testing.T) {
	res := make([]int64, 10)
	for i := range res {
		res[i] = 1413
	}
	demand := func(client, period int) int { return 1413 + 400 }
	h := newQoSHarness(t, testParams(), res, demand)
	logs := h.run(4)
	var total uint64
	periods := 0
	for _, log := range logs {
		for p := 1; p < len(log); p++ {
			total += log[p]
		}
		if len(log)-1 > periods {
			periods = len(log) - 1
		}
	}
	perPeriod := float64(total) / float64(periods)
	if perPeriod < 0.93*testServerC {
		t.Errorf("throughput %.0f/period, want >= 93%% of %d", perPeriod, testServerC)
	}
}

// TestTokenYieldOnInsufficientDemand: a client that stops early returns
// reservation tokens (X-counter decay) and its engine reports shrinking
// residuals.
func TestTokenYieldOnInsufficientDemand(t *testing.T) {
	res := []int64{2000, 2000}
	demand := func(client, period int) int {
		if client == 0 {
			return 500 // far below its reservation
		}
		return 2500
	}
	h := newQoSHarness(t, testParams(), res, demand)
	h.run(3)
	st := h.engines[0].Stats()
	if st.TokensYielded == 0 {
		t.Error("under-demanding client never yielded tokens")
	}
}

// TestTokenConversionWorkConservation (Experiment 2B shape): with
// conversion, other clients consume the under-demanding clients' capacity
// and exceed their reservations; Basic Haechi wastes it.
func TestTokenConversionWorkConservation(t *testing.T) {
	res := []int64{3000, 3000, 2000, 2000, 1400, 1400, 700, 700, 400, 400}
	demand := func(client, period int) int {
		if client < 2 {
			return 600 // C1, C2 under-demand
		}
		return int(res[client]) + 2000
	}

	run := func(opts ...MonitorOption) (total float64, perClient []float64) {
		h := newQoSHarness(t, testParams(), res, demand, opts...)
		logs := h.run(4)
		perClient = make([]float64, len(logs))
		for i, log := range logs {
			for p := 1; p < len(log); p++ {
				perClient[i] += float64(log[p])
			}
			total += perClient[i]
		}
		return total, perClient
	}

	haechiTotal, haechiPer := run()
	basicTotal, basicPer := run(WithoutConversion())

	if haechiTotal <= basicTotal*1.05 {
		t.Errorf("conversion gained too little: haechi=%.0f basic=%.0f", haechiTotal, basicTotal)
	}
	// Clients 2..9 should do strictly better with conversion.
	for i := 2; i < 10; i++ {
		if haechiPer[i] <= basicPer[i] {
			t.Errorf("client %d: conversion %f <= basic %f", i, haechiPer[i], basicPer[i])
		}
	}
	// And should exceed their reservations (3 periods counted).
	for i := 2; i < 10; i++ {
		if haechiPer[i] <= float64(3*res[i]) {
			t.Errorf("client %d did not exceed reservation using converted tokens", i)
		}
	}
}

// TestLimitEnforced: an engine with L_i throttles dispatches to the limit
// each period.
func TestLimitEnforced(t *testing.T) {
	params := testParams()
	k := sim.New(5)
	cfg := rdma.NewDefaultConfig().Scaled(testScale)
	cfg.Jitter = 0
	f, _ := rdma.NewFabric(k, cfg)
	server, _ := f.AddServer("dn")
	data, _ := server.RegisterRegion("data", rdma.DataIOSize)
	est, _ := NewCapacityEstimator(params, testServerC, 50)
	adm, _ := NewAdmissionController(testServerC, testClientC)
	mon, _ := NewMonitor(params, server, est, adm)

	node, _ := f.AddClient("c0")
	disp := rdma.NewDispatcher(node)
	grant, err := mon.Admit(node, 1000)
	if err != nil {
		t.Fatal(err)
	}
	qp, _ := f.Connect(node, server)
	sender := func(key uint64, done func()) {
		_ = qp.Read(data, 0, rdma.DataIOSize, func([]byte) { done() })
	}
	const limit = 1200
	eng, err := NewEngine(params, grant, node, disp, limit, sender)
	if err != nil {
		t.Fatal(err)
	}
	drv := &burstLoop{e: eng, window: 1 << 30, demand: func(int) int { return 3000 }}
	eng.OnPeriodStart = drv.begin
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(4 * params.Period)
	mon.Stop()
	for p, done := range eng.PeriodLog.Completed {
		if done > limit+1 {
			t.Errorf("period %d: completed %d exceeds limit %d", p, done, limit)
		}
	}
	if eng.Stats().LimitThrottled == 0 {
		t.Error("limit never throttled despite excess demand")
	}
}

// TestReportingOnlyAfterOverflow: the reporting machinery stays quiet
// while reservations cover the demand (silence is the point of the
// design), and activates once the global pool is touched.
func TestReportingOnlyAfterOverflow(t *testing.T) {
	res := []int64{3000, 3000}
	// Demand below reservation: pool untouched.
	quiet := func(client, period int) int { return 2000 }
	h := newQoSHarness(t, testParams(), res, quiet)
	h.run(3)
	if h.mon.ReportSignals != 0 {
		t.Errorf("report signal sent %d times with no pool usage", h.mon.ReportSignals)
	}
	// Engines still send exactly one final report per period.
	for i, e := range h.engines {
		st := e.Stats()
		if st.ReportsSent < 2 || st.ReportsSent > 5 {
			t.Errorf("client %d sent %d reports, want one per period", i, st.ReportsSent)
		}
	}

	// Demand above reservation: pool consumed, reporting activates.
	greedy := func(client, period int) int { return 5000 }
	h2 := newQoSHarness(t, testParams(), res, greedy)
	h2.run(3)
	if h2.mon.ReportSignals == 0 {
		t.Error("report signal never sent despite pool consumption")
	}
	if h2.mon.ConversionCount == 0 {
		t.Error("no conversions despite reporting being active")
	}
}

// TestFAABatching: global tokens are claimed in batches, so the number of
// FAAs is roughly consumed/B, not one per I/O.
func TestFAABatching(t *testing.T) {
	res := []int64{1000}
	demand := func(client, period int) int { return 3500 }
	h := newQoSHarness(t, testParams(), res, demand)
	h.run(3)
	st := h.engines[0].Stats()
	if st.GlobalConsumed == 0 {
		t.Fatal("no global tokens consumed")
	}
	maxFAAs := uint64(st.GlobalConsumed)/uint64(testParams().Batch) + // full batches
		3*uint64(testParams().Period/testParams().Tick) // plus at most one probe per tick
	if st.FAAIssued > maxFAAs {
		t.Errorf("FAAs = %d for %d global tokens (batch %d); batching broken",
			st.FAAIssued, st.GlobalConsumed, testParams().Batch)
	}
	if st.FAAIssued*uint64(testParams().Batch) < uint64(st.GlobalConsumed) {
		t.Errorf("consumed %d global tokens with only %d FAAs of %d",
			st.GlobalConsumed, st.FAAIssued, testParams().Batch)
	}
}

// TestTotalTokenGatingInvariant: completions per period never exceed the
// period's token budget Omega (plus boundary carry-over of one window).
func TestTotalTokenGatingInvariant(t *testing.T) {
	res := []int64{1413, 1413, 1413, 1413, 1413, 1413, 1413, 1413, 1413, 1413}
	demand := func(client, period int) int { return 5000 }
	h := newQoSHarness(t, testParams(), res, demand)
	logs := h.run(4)
	periods := 0
	for _, log := range logs {
		if len(log) > periods {
			periods = len(log)
		}
	}
	for p := 1; p < periods; p++ {
		var sum int64
		for _, log := range logs {
			if p < len(log) {
				sum += int64(log[p])
			}
		}
		omega := h.mon.Estimator().Current() // post-run estimate; budget is near testServerC
		slack := int64(10*64 + 2*h.mon.Estimator().Eta())
		if sum > testServerC+slack && sum > omega+slack {
			t.Errorf("period %d: %d completions exceed token budget ≈%d", p, sum, testServerC)
		}
	}
}

// TestMonitorRemoveClient: removed clients stop receiving tokens and the
// pool absorbs their reservation.
func TestMonitorRemoveClient(t *testing.T) {
	res := []int64{2000, 2000}
	demand := func(client, period int) int { return 2500 }
	h := newQoSHarness(t, testParams(), res, demand)
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	h.k.RunUntil(2 * testParams().Period)
	if err := h.mon.Remove(0); err != nil {
		t.Fatal(err)
	}
	before := h.engines[0].TotalCompleted()
	h.k.RunUntil(4 * testParams().Period)
	h.mon.Stop()
	after := h.engines[0].TotalCompleted()
	// The removed client receives no fresh tokens: at most the in-flight
	// period's remainder completes.
	if after-before > 3000 {
		t.Errorf("removed client still completed %d I/Os", after-before)
	}
	if err := h.mon.Remove(0); err == nil {
		t.Error("double Remove succeeded")
	}
}

// TestSetReservation: reservations can be retuned between periods.
func TestSetReservation(t *testing.T) {
	res := []int64{1000, 1000}
	demand := func(client, period int) int { return 4000 }
	h := newQoSHarness(t, testParams(), res, demand)
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	h.k.RunUntil(testParams().Period + testParams().Period/2)
	if err := h.mon.SetReservation(0, 3000); err != nil {
		t.Fatal(err)
	}
	if err := h.mon.SetReservation(0, testClientC*10); err == nil {
		t.Error("local-violating reservation accepted")
	}
	h.k.RunUntil(5 * testParams().Period)
	h.mon.Stop()
	logs := h.engines[0].PeriodLog.Completed
	last := logs[len(logs)-1]
	if int64(last) < 3000 {
		t.Errorf("raised reservation not honored: completed %d < 3000", last)
	}
}

// TestAlerting: a client that persistently under-uses its reservation is
// alerted after the configured streak.
func TestAlerting(t *testing.T) {
	res := []int64{2000, 2000}
	demand := func(client, period int) int {
		if client == 0 {
			return 200
		}
		return 4000
	}
	h := newQoSHarness(t, testParams(), res, demand, WithAlertAfter(2))
	var alerted []int
	h.engines[0].OnAlert = func(streak int) { alerted = append(alerted, streak) }
	h.run(4)
	if len(alerted) == 0 {
		t.Fatal("under-using client never alerted")
	}
	if alerted[0] != 2 {
		t.Errorf("first alert at streak %d, want 2", alerted[0])
	}
}

// TestEngineStopsCleanly and pending counters.
func TestEngineStop(t *testing.T) {
	res := []int64{1000}
	demand := func(client, period int) int { return 100 }
	h := newQoSHarness(t, testParams(), res, demand)
	h.run(2)
	e := h.engines[0]
	e.Stop()
	if e.ID() != 0 {
		t.Errorf("ID = %d", e.ID())
	}
	if e.PeriodIndex() == 0 {
		t.Error("engine never saw a period")
	}
	// Accessors do not panic post-stop.
	_ = e.ReservationTokens()
	_ = e.LocalGlobalTokens()
	_ = e.CompletedThisPeriod()
	_ = e.Pending()
}

// TestMonitorDoubleStart rejects a second Start.
func TestMonitorDoubleStart(t *testing.T) {
	res := []int64{100}
	demand := func(client, period int) int { return 10 }
	h := newQoSHarness(t, testParams(), res, demand)
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.mon.Start(); err == nil {
		t.Error("double Start accepted")
	}
	h.k.RunUntil(testParams().Period * 2)
	h.mon.Stop()
}

// TestCapacityAdaptationUnderInjectedLoad (Experiment Set 4 shape): when
// background load consumes server capacity, the estimator converges down;
// when it stops, the estimator climbs back.
func TestCapacityAdaptationUnderInjectedLoad(t *testing.T) {
	res := []int64{2200, 2200, 1400, 1400, 950, 950, 550, 550, 350, 350} // ~69% of 15.7K
	demand := func(client, period int) int { return int(res[client]) + 2000 }
	h := newQoSHarnessSigma(t, testParams(), res, demand, 1800)
	// Three always-on background streams squeeze the round-robin share
	// available to Haechi's ten clients to ~10/13 of capacity (~11.5K):
	// below the token budget but above the estimator's lower bound, so
	// Algorithm 1 must adapt rather than dismiss the periods as idle.
	var jobs []*rdma.BackgroundJob
	for j := 0; j < 3; j++ {
		job, err := rdma.NewBackgroundJob(h.f, "bg"+string(rune('0'+j)), h.server, 64)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	P := testParams().Period
	h.k.RunUntil(3 * P)
	baseline := h.mon.Estimator().Current()
	for _, job := range jobs {
		job.Start()
	}
	h.k.RunUntil(20 * P)
	congested := h.mon.Estimator().Current()
	if congested >= baseline {
		t.Errorf("estimate did not drop under congestion: %d -> %d", baseline, congested)
	}
	for _, job := range jobs {
		job.Stop()
	}
	h.k.RunUntil(35 * P)
	h.mon.Stop()
	recovered := h.mon.Estimator().Current()
	if recovered <= congested {
		t.Errorf("estimate did not recover after congestion: %d -> %d", congested, recovered)
	}
}
