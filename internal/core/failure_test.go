package core

import (
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

// TestFailureDetectionReclaimsReservation: a crashed client's reservation
// is detected via its static report slot and returned to the pool; the
// surviving clients absorb the freed capacity.
func TestFailureDetectionReclaimsReservation(t *testing.T) {
	res := []int64{3000, 3000, 3000, 3000}
	demand := func(client, period int) int { return 6000 }
	h := newQoSHarness(t, testParams(), res, demand, WithFailureDetection(2))
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	P := testParams().Period
	h.k.RunUntil(2 * P)

	victim := h.engines[0]
	beforeCrash := victim.TotalCompleted()
	victim.Crash()

	h.k.RunUntil(8 * P)
	h.mon.Stop()

	if !h.mon.Suspected(0) {
		t.Fatal("crashed client never suspected")
	}
	if h.mon.FailureSuspicions == 0 {
		t.Error("suspicion counter not incremented")
	}
	// The victim did nothing after the crash.
	if victim.TotalCompleted() > beforeCrash+uint64(testParams().SendQueueDepth) {
		t.Errorf("crashed client kept completing: %d -> %d", beforeCrash, victim.TotalCompleted())
	}
	// Survivors absorb the freed 3000/period: their later periods exceed
	// their reservation by a wide margin.
	for i := 1; i < 4; i++ {
		log := h.engines[i].PeriodLog.Completed
		if len(log) < 6 {
			t.Fatalf("client %d: %d periods", i, len(log))
		}
		last := log[len(log)-1]
		if int64(last) < 3500 {
			t.Errorf("survivor %d last period %d; freed capacity not absorbed", i, last)
		}
	}
}

// TestFailureRecovery: a suspected client that reports again is
// reinstated and receives tokens the next period.
func TestFailureRecovery(t *testing.T) {
	res := []int64{2000, 2000}
	demand := func(client, period int) int { return 4000 }
	h := newQoSHarness(t, testParams(), res, demand, WithFailureDetection(2))
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	P := testParams().Period
	h.k.RunUntil(P / 2)

	// Simulate a long network partition rather than a process crash: the
	// engine's reports stop reaching the monitor. We model it by crashing
	// and later writing a fresh report word directly (the client coming
	// back and reporting).
	h.engines[0].Crash()
	h.k.RunUntil(6 * P)
	if !h.mon.Suspected(0) {
		t.Fatal("client not suspected during partition")
	}
	// The client "returns": its slot changes again.
	grantRegion := h.mon.QoSRegion()
	_ = grantRegion.PutUint64(reportSlotOffset(0), PackReport(123, 456))
	h.k.RunUntil(7 * P)
	if h.mon.Suspected(0) {
		t.Error("client not reinstated after reporting again")
	}
	if h.mon.FailureRecoveries == 0 {
		t.Error("recovery counter not incremented")
	}
	h.mon.Stop()
}

// TestNoFailureDetectionByDefault: without the option, a crashed client
// is never suspected (the paper's base protocol).
func TestNoFailureDetectionByDefault(t *testing.T) {
	res := []int64{2000, 2000}
	demand := func(client, period int) int { return 4000 }
	h := newQoSHarness(t, testParams(), res, demand)
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	h.engines[0].Crash()
	h.k.RunUntil(6 * testParams().Period)
	h.mon.Stop()
	if h.mon.Suspected(0) {
		t.Error("client suspected without failure detection enabled")
	}
}

// TestCrashedEngineIgnoresProtocol: crash drops queued work and ignores
// control messages without panicking.
func TestCrashedEngineIgnoresProtocol(t *testing.T) {
	res := []int64{1000}
	demand := func(client, period int) int { return 500 }
	h := newQoSHarness(t, testParams(), res, demand)
	if err := h.mon.Start(); err != nil {
		t.Fatal(err)
	}
	h.k.RunUntil(testParams().Period / 2)
	e := h.engines[0]
	e.Crash()
	e.Request(1, func() { t.Error("crashed engine served a request") })
	if e.Pending() != 0 {
		t.Errorf("crashed engine queued a request")
	}
	h.k.RunUntil(3 * testParams().Period)
	h.mon.Stop()
	if e.PeriodIndex() > 1 {
		t.Error("crashed engine kept processing period starts")
	}
	_ = sim.Time(0)
}

// TestSuspectedAccessorBounds: out-of-range ids are not suspected.
func TestSuspectedAccessorBounds(t *testing.T) {
	res := []int64{1000}
	demand := func(client, period int) int { return 500 }
	h := newQoSHarness(t, testParams(), res, demand)
	if h.mon.Suspected(-1) || h.mon.Suspected(5) {
		t.Error("out-of-range Suspected returned true")
	}
}

// TestLocalViolationDetection: the spike/burst scenario triggers
// Definition 2's runtime condition for high-reservation clients; a
// feasible uniform scenario does not.
func TestLocalViolationDetection(t *testing.T) {
	// Spike: 3 clients at 2850 (71% of C_L), 7 at 800+share; with burst
	// posting the big clients' catch-up exceeds C_L mid-period.
	res := []int64{2850, 2850, 2850, 800, 800, 800, 800, 800, 800, 800}
	demand := func(client, period int) int { return int(res[client]) + 155 }
	h := newQoSHarness(t, testParams(), res, demand)
	h.run(3)
	if h.mon.LocalViolations == 0 {
		t.Error("spike/burst produced no local-capacity violations")
	}

	uniform := []int64{1413, 1413, 1413, 1413, 1413, 1413, 1413, 1413, 1413, 1413}
	h2 := newQoSHarness(t, testParams(), uniform, func(client, period int) int { return 1570 })
	h2.run(3)
	if h2.mon.LocalViolations != 0 {
		t.Errorf("uniform scenario flagged %d local violations", h2.mon.LocalViolations)
	}
}
