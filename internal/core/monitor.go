package core

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/sanitize"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
)

// monitorClient is the monitor's bookkeeping for one admitted client.
type monitorClient struct {
	id          int
	node        *rdma.Node
	reservation int64
	qp          *rdma.QP // data node -> client, for token pushes
	active      bool
	lastUsage   int64

	// Failure detection: lastWord is the report slot's content at the
	// previous period end; stalePeriods counts consecutive periods
	// without any slot change; suspected marks a client presumed crashed.
	// suspectedAt/reinstatedAt are the most recent transition times
	// (zero if the transition never happened).
	lastWord     uint64
	stalePeriods int
	suspected    bool
	suspectedAt  sim.Time
	reinstatedAt sim.Time
	// violated marks that Definition 2's runtime local-capacity
	// condition failed for this client in the current period.
	violated bool
}

// MonitorOption configures a Monitor.
type MonitorOption func(*Monitor)

// WithoutConversion disables step T2 (token conversion), producing the
// paper's "Basic Haechi" comparison system: unused reservation tokens are
// simply wasted.
func WithoutConversion() MonitorOption {
	return func(m *Monitor) { m.convert = false }
}

// WithAlertAfter sets how many consecutive under-use periods trigger an
// over-reservation alert to the client (0 disables alerts).
func WithAlertAfter(periods int) MonitorOption {
	return func(m *Monitor) { m.alertAfter = periods }
}

// WithFailureDetection makes the monitor treat a client as failed after
// its report slot has been static for gracePeriods consecutive QoS
// periods (its end-of-period report is the heartbeat): the client stops
// receiving reservation tokens and its reservation returns to the pool
// until it reports again. 0 disables detection. This extends the paper
// (which assumes well-behaved clients) to tolerate client crashes without
// stranding reserved capacity.
func WithFailureDetection(gracePeriods int) MonitorOption {
	return func(m *Monitor) { m.failureGrace = gracePeriods }
}

// Monitor is the data-node QoS monitor (Section II-E): per-period token
// generation and dispatch, global-pool monitoring, token conversion, and
// adaptive capacity estimation.
type Monitor struct {
	params Params
	k      *sim.Kernel
	node   *rdma.Node
	region *rdma.Region
	loop   *rdma.QP // loopback verbs on the token cell
	est    *CapacityEstimator
	adm    *AdmissionController

	convert      bool
	alertAfter   int
	failureGrace int

	// clients is a dense value slab indexed by client id: admission only
	// ever appends, nothing retains element pointers across an append, and
	// iteration walks one contiguous array even at fleet scale.
	clients []monitorClient

	running       bool
	periodIndex   int
	periodStart   sim.Time
	omega         int64
	sumRes        int64
	initialGlobal int64
	reporting     bool

	// Outage state (fault injection): while paused the period machine and
	// the check loop are stopped; one-sided client traffic against the QoS
	// region is unaffected (the data node's memory stays served).
	paused      bool
	outages     int
	outageSince sim.Time
	outageNs    int64

	checkTicker *sim.Ticker
	periodTimer sim.Timer

	// OmegaSeries records the estimated capacity per period; UsageSeries
	// the reported total completions per period.
	OmegaSeries metrics.Series
	UsageSeries metrics.Series
	// ConversionCount counts token-conversion writes (step T2).
	ConversionCount uint64
	// ReportSignals counts report-on broadcasts (step S3).
	ReportSignals uint64
	// FailureSuspicions and FailureRecoveries count failure-detection
	// transitions (WithFailureDetection).
	FailureSuspicions uint64
	FailureRecoveries uint64
	// LocalViolations counts client-periods in which Definition 2's
	// runtime local-capacity condition failed (the client could no
	// longer reach its reservation at rate C_L): a diagnostic for
	// burst-pattern reservation misses (Figs. 8(b), 13).
	LocalViolations uint64

	// Trace, when non-nil, records protocol events.
	Trace *trace.Recorder

	// san, when non-nil, checks the pool floor and admission headroom
	// invariants (internal/sanitize). Nil in production runs.
	san *sanitize.Checker
}

// SetSanitizer installs the invariant checker consulted at period starts
// and pool samples. Nil (the default) disables the checks.
func (m *Monitor) SetSanitizer(c *sanitize.Checker) { m.san = c }

// DebugConversion enables conversion tracing (diagnostics only).
var DebugConversion = false

// NewMonitor creates a monitor on the data node. est provides the
// capacity estimate (from profiling); adm enforces admission control.
func NewMonitor(params Params, node *rdma.Node, est *CapacityEstimator, adm *AdmissionController, opts ...MonitorOption) (*Monitor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if node == nil || est == nil || adm == nil {
		return nil, fmt.Errorf("core: NewMonitor requires node, estimator and admission controller")
	}
	if node.Kind() != rdma.ServerNode {
		return nil, fmt.Errorf("core: monitor must run on a server node, got %v", node.Kind())
	}
	region, err := node.RegisterRegion(QoSRegionName, reportTableOff+params.MaxClients*reportSlotSize)
	if err != nil {
		return nil, fmt.Errorf("core: registering QoS region: %w", err)
	}
	loop, err := node.Fabric().Connect(node, node)
	if err != nil {
		return nil, fmt.Errorf("core: creating loopback QP: %w", err)
	}
	m := &Monitor{
		params:  params,
		k:       node.Kernel(),
		node:    node,
		region:  region,
		loop:    loop,
		est:     est,
		adm:     adm,
		convert: true,
	}
	m.OmegaSeries.Name = "omega"
	m.UsageSeries.Name = "usage"
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// QoSRegion returns the region holding the token cell and report table.
func (m *Monitor) QoSRegion() *rdma.Region { return m.region }

// Estimator returns the capacity estimator.
func (m *Monitor) Estimator() *CapacityEstimator { return m.est }

// PeriodIndex returns the current period number.
func (m *Monitor) PeriodIndex() int { return m.periodIndex }

// Admit runs admission control for clientNode with the given reservation
// (step T1's registration) and, on success, returns the client's grant.
func (m *Monitor) Admit(clientNode *rdma.Node, reservation int64) (ClientGrant, error) {
	if clientNode == nil {
		return ClientGrant{}, fmt.Errorf("core: Admit requires a client node")
	}
	id := len(m.clients)
	if id >= m.params.MaxClients {
		return ClientGrant{}, fmt.Errorf("core: report table full (%d clients)", id)
	}
	if err := m.adm.Admit(id, reservation); err != nil {
		return ClientGrant{}, err
	}
	qp, err := m.node.Fabric().Connect(m.node, clientNode)
	if err != nil {
		m.adm.Release(id)
		return ClientGrant{}, err
	}
	m.clients = append(m.clients, monitorClient{
		id:          id,
		node:        clientNode,
		reservation: reservation,
		qp:          qp,
		active:      true,
	})
	return ClientGrant{ID: id, ServerNode: m.node, QoSRegion: m.region}, nil
}

// Remove deactivates a client: it stops receiving tokens and its
// reservation returns to the pool at the next period.
func (m *Monitor) Remove(id int) error {
	if id < 0 || id >= len(m.clients) || !m.clients[id].active {
		return fmt.Errorf("core: no active client %d", id)
	}
	m.clients[id].active = false
	m.adm.Release(id)
	return nil
}

// SetReservation changes a client's reservation starting next period,
// re-running admission control for the delta.
func (m *Monitor) SetReservation(id int, reservation int64) error {
	if id < 0 || id >= len(m.clients) || !m.clients[id].active {
		return fmt.Errorf("core: no active client %d", id)
	}
	m.adm.Release(id)
	if err := m.adm.Admit(id, reservation); err != nil {
		// Restore the previous reservation on failure.
		_ = m.adm.Admit(id, m.clients[id].reservation)
		return err
	}
	m.clients[id].reservation = reservation
	return nil
}

// Start begins the first QoS period and the check-interval loop.
func (m *Monitor) Start() error {
	if m.running {
		return fmt.Errorf("core: monitor already started")
	}
	m.running = true
	t, err := m.k.Every(m.params.CheckInterval, m.params.CheckInterval, m.check)
	if err != nil {
		return err
	}
	m.checkTicker = t
	m.startPeriod()
	return nil
}

// Stop halts the period loop.
func (m *Monitor) Stop() {
	m.running = false
	if m.checkTicker != nil {
		m.checkTicker.Stop()
	}
	m.periodTimer.Cancel()
}

// Outage pauses the monitor process for d of virtual time (fault
// injection): the period machine and the check loop stop, so no tokens
// are pushed, no conversion runs and no liveness is observed until the
// window ends. One-sided client I/O and claims against the data node's
// memory keep being served — only the monitor is down. On resume the
// stale period is closed (harvest, liveness, capacity update) and a
// fresh one starts, resynchronizing every engine's token state.
func (m *Monitor) Outage(d sim.Time) {
	if !m.running || m.paused || d <= 0 {
		return
	}
	m.paused = true
	m.outages++
	m.outageSince = m.k.Now()
	if m.checkTicker != nil {
		m.checkTicker.Stop()
		m.checkTicker = nil
	}
	m.periodTimer.Cancel()
	m.k.Schedule(d, m.resume)
}

// resume ends an outage window: restart the check loop and roll the
// overdue period.
func (m *Monitor) resume() {
	if !m.running || !m.paused {
		return
	}
	m.paused = false
	m.outageNs += int64(m.k.Now() - m.outageSince)
	t, err := m.k.Every(m.params.CheckInterval, m.params.CheckInterval, m.check)
	if err == nil {
		m.checkTicker = t
	}
	m.endPeriod()
}

// Paused reports whether the monitor is currently in an outage window.
func (m *Monitor) Paused() bool { return m.paused }

// OutageStats returns how many outage windows were injected and their
// total closed duration in nanoseconds of virtual time.
func (m *Monitor) OutageStats() (count int, ns int64) { return m.outages, m.outageNs }

// SuspectedAt returns when the client was most recently suspected by
// failure detection (0 if never).
func (m *Monitor) SuspectedAt(id int) sim.Time {
	if id < 0 || id >= len(m.clients) {
		return 0
	}
	return m.clients[id].suspectedAt
}

// ReinstatedAt returns when the client was most recently reinstated by
// failure detection (0 if never).
func (m *Monitor) ReinstatedAt(id int) sim.Time {
	if id < 0 || id >= len(m.clients) {
		return 0
	}
	return m.clients[id].reinstatedAt
}

// startPeriod implements Fig. 5 steps T1: generate Omega tokens, push
// reservations, initialize the global pool.
func (m *Monitor) startPeriod() {
	m.periodIndex++
	m.periodStart = m.k.Now()
	m.omega = m.est.Current()
	m.sumRes = 0
	for i := range m.clients {
		if c := &m.clients[i]; c.active && !c.suspected {
			m.sumRes += c.reservation
		}
	}
	m.initialGlobal = m.omega - m.sumRes
	if m.initialGlobal < 0 {
		// The estimate dropped below the admitted reservations (e.g.
		// under injected congestion); reservations keep their tokens and
		// best-effort capacity is zero.
		m.initialGlobal = 0
	}
	m.reporting = false
	if m.san != nil {
		// Reservation floor under admission: the controller must never
		// admit more reservation than the capacity it believes in, and the
		// per-period budget split must stay non-negative.
		if h := m.adm.Headroom(); h < 0 {
			m.san.Reportf("reservation-floor", int64(m.k.Now()),
				"period %d: admission headroom %d < 0", m.periodIndex, h)
		}
		if m.sumRes < 0 || m.initialGlobal < 0 {
			m.san.Reportf("reservation-floor", int64(m.k.Now()),
				"period %d: negative budget split (sumRes %d, initialGlobal %d)",
				m.periodIndex, m.sumRes, m.initialGlobal)
		}
		// Reclamation conservation: a suspected client's reservation is
		// withheld from the period budget (freeing the capacity for the
		// pool) but stays admitted — it must come back when the client
		// does. Issued plus suspended reservations always equal the
		// admitted total.
		var suspended int64
		for i := range m.clients {
			if c := &m.clients[i]; c.active && c.suspected {
				suspended += c.reservation
			}
		}
		if m.sumRes+suspended != m.adm.Reserved() {
			m.san.Reportf("reclamation-conservation", int64(m.k.Now()),
				"period %d: issued %d + suspended %d != admitted %d",
				m.periodIndex, m.sumRes, suspended, m.adm.Reserved())
		}
	}
	m.Trace.Record(trace.Event{At: m.k.Now(), Kind: trace.PeriodStart, Actor: "monitor",
		A: int64(m.periodIndex), B: m.omega})

	// Seed the report table with (R_i, 0) so conversion before the first
	// client report is conservative, then publish the pool and push
	// tokens.
	for i := range m.clients {
		c := &m.clients[i]
		if !c.active || c.suspected {
			continue
		}
		seed := PackReport(clampUint32(c.reservation), 0)
		_ = m.region.PutUint64(reportSlotOffset(c.id), seed)
		// The seed doubles as the liveness baseline: any report this
		// period makes the slot differ from it (suspected clients keep
		// their previous baseline so a late report flips the slot).
		c.lastWord = seed
		c.violated = false
	}
	_ = m.loop.WriteUint64(m.region, globalTokenOff, uint64(m.initialGlobal), nil)

	endAt := m.periodStart + m.params.Period
	for i := range m.clients {
		c := &m.clients[i]
		if !c.active || c.suspected {
			continue
		}
		_ = c.qp.Send(rdma.Message{Kind: msgPeriodStart, Body: periodStartMsg{
			Index:       m.periodIndex,
			Reservation: c.reservation,
			EndAt:       int64(endAt),
			Convert:     m.convert,
		}}, periodStartMsgSize, nil)
		m.Trace.Record(trace.Event{At: m.k.Now(), Kind: trace.TokenPush, Actor: "monitor",
			A: int64(c.id), B: c.reservation})
	}
	m.periodTimer = m.k.At(endAt, m.endPeriod)
}

// check implements Fig. 5 steps S1-S3 and T2 each check interval: sample
// the pool with a loop-back atomic; on the first decrease signal
// reporting; while reporting, convert unused reservations.
func (m *Monitor) check() {
	if !m.running || m.paused || m.periodIndex == 0 {
		return
	}
	pi := m.periodIndex
	_ = m.loop.FetchAdd(m.region, globalTokenOff, 0, func(old int64) {
		if pi != m.periodIndex || !m.running || m.paused {
			return
		}
		if m.san != nil {
			// Global-pool floor: each client can have at most one claim of
			// -Batch in flight, so the cell can never sink below
			// -(clients × Batch).
			if floor := -int64(len(m.clients)) * m.params.Batch; old < floor {
				m.san.Reportf("pool-floor", int64(m.k.Now()),
					"period %d: pool %d below floor %d (%d clients, batch %d)",
					pi, old, floor, len(m.clients), m.params.Batch)
			}
		}
		if !m.reporting && old < m.initialGlobal {
			m.reporting = true
			m.ReportSignals++
			m.Trace.Record(trace.Event{At: m.k.Now(), Kind: trace.ReportSignal, Actor: "monitor",
				A: int64(pi)})
			for i := range m.clients {
				if c := &m.clients[i]; c.active {
					_ = c.qp.Send(rdma.Message{Kind: msgReportOn, Body: reportOnMsg{Index: pi}}, reportOnMsgSize, nil)
				}
			}
			// Do not cap on this wake-up: the report slots still hold the
			// period-start seeds (R_i, 0), which would wildly overstate L
			// when reporting starts late in the period. Fresh reports
			// land before the next check interval.
			return
		}
		if m.reporting {
			m.detectLocalViolations()
			if m.convert {
				m.capPool(old)
			}
		}
	})
}

// detectLocalViolations evaluates Definition 2's runtime condition for
// each client from its latest report: the residual reservation must be
// servable at the per-client rate C_L in the remaining period,
// R_i − N_i(t) <= (T−t)·C_L. A violation means the client can no longer
// meet its reservation this period no matter what the schedulers do —
// the mechanism behind the paper's Experiment 1C / Set 3 misses. Each
// client is flagged at most once per period.
func (m *Monitor) detectLocalViolations() {
	elapsed := float64(m.k.Now()-m.periodStart) / float64(m.params.Period)
	if elapsed < 0 {
		elapsed = 0
	}
	if elapsed > 1 {
		elapsed = 1
	}
	for i := range m.clients {
		c := &m.clients[i]
		if !c.active || c.suspected || c.violated {
			continue
		}
		w, err := m.region.Uint64(reportSlotOffset(c.id))
		if err != nil {
			continue
		}
		residual, raw := UnpackReport(w)
		completed := liveCompleted(raw)
		// Definition 2 guarantees only continuously backlogged clients; a
		// client still holding reservation tokens has insufficient demand
		// (it is yielding), so a completion shortfall is its own choice,
		// not a capacity violation.
		if int64(residual) > c.reservation/10 {
			continue
		}
		if v := m.adm.LocalViolation(c.reservation, int64(completed), elapsed); v > 0 {
			c.violated = true
			m.LocalViolations++
			m.Trace.Record(trace.Event{At: m.k.Now(), Kind: trace.LocalViolation,
				Actor: "monitor", A: int64(c.id), B: v})
		}
	}
}

// capPool is step T2's safety bound. Token conversion itself is
// client-driven in this implementation — engines return yielded tokens
// with FETCH_ADD(+y), so the pool can only grow by genuinely released
// reservation capacity (Section II-B: "clients ... return their
// reservation tokens to the global pool"). The monitor enforces the
// paper's invariant that "the total number of tokens at any time is
// limited to the server capacity for the rest of the QoS period" by
// capping the pool at max{Omega*(T-t)/T - L, 0}, with L the sum of
// reported residual reservations. The cap only ever lowers the cell — a
// rewrite that raises it would re-mint tokens already claimed (see
// DESIGN.md).
func (m *Monitor) capPool(current int64) {
	elapsed := m.k.Now() - m.periodStart
	if elapsed < 0 {
		elapsed = 0
	}
	if elapsed > m.params.Period {
		elapsed = m.params.Period
	}
	remaining := float64(m.omega) * float64(m.params.Period-elapsed) / float64(m.params.Period)
	var outstanding int64
	for i := range m.clients {
		c := &m.clients[i]
		if !c.active || c.suspected {
			continue
		}
		w, err := m.region.Uint64(reportSlotOffset(c.id))
		if err != nil {
			continue
		}
		residual, _ := UnpackReport(w)
		outstanding += int64(residual)
	}
	bound := int64(remaining) - outstanding
	if bound < 0 {
		bound = 0
	}
	if current > bound {
		m.ConversionCount++
		m.Trace.Record(trace.Event{At: m.k.Now(), Kind: trace.PoolCap, Actor: "monitor",
			A: current, B: bound})
		_ = m.loop.WriteUint64(m.region, globalTokenOff, uint64(bound), nil)
	}
}

// endPeriod is step T3: harvest the final reports, recalibrate capacity
// (Algorithm 1), and roll into the next period.
func (m *Monitor) endPeriod() {
	if !m.running {
		return
	}
	var total int64
	used := make(map[int]int64, len(m.clients))
	reserved := make(map[int]int64, len(m.clients))
	for i := range m.clients {
		c := &m.clients[i]
		if !c.active {
			continue
		}
		w, err := m.region.Uint64(reportSlotOffset(c.id))
		if err != nil {
			continue
		}
		m.observeLiveness(c, w)
		if c.suspected {
			continue
		}
		_, raw := UnpackReport(w)
		// A just-reinstated client's slot may hold its flagged restart
		// heartbeat rather than a regular report; strip the flag before
		// using the count.
		completed := liveCompleted(raw)
		c.lastUsage = int64(completed)
		used[c.id] = int64(completed)
		reserved[c.id] = c.reservation
		total += int64(completed)
	}
	m.UsageSeries.Add(m.k.Now(), float64(total))
	m.OmegaSeries.Add(m.k.Now(), float64(m.omega))
	m.est.Update(total)
	m.Trace.Record(trace.Event{At: m.k.Now(), Kind: trace.CapacityUpdate, Actor: "monitor",
		A: total, B: m.est.Current()})
	if m.alertAfter > 0 {
		for _, id := range m.est.ObserveClientUsage(used, reserved, m.alertAfter) {
			c := &m.clients[id]
			_ = c.qp.Send(rdma.Message{Kind: msgAlert, Body: alertMsg{
				ConsecutivePeriods: m.est.UnderuseStreak(id),
			}}, alertMsgSize, nil)
		}
	} else {
		m.est.ObserveClientUsage(used, reserved, 0)
	}
	m.startPeriod()
}

// ClientUsage returns the last period's reported completions for a client.
func (m *Monitor) ClientUsage(id int) int64 {
	if id < 0 || id >= len(m.clients) {
		return 0
	}
	return m.clients[id].lastUsage
}

// GlobalTokens reads the pool cell locally (diagnostics only).
func (m *Monitor) GlobalTokens() int64 {
	v, _ := m.region.Int64(globalTokenOff)
	return v
}

// observeLiveness updates failure detection from a client's report slot
// at period end. The monitor re-seeds each live client's slot at period
// start, so any report during the period leaves the slot different from
// the seed; a slot still equal to its baseline is a missed heartbeat. A
// suspected client that reports again is immediately reinstated.
func (m *Monitor) observeLiveness(c *monitorClient, word uint64) {
	if m.failureGrace <= 0 {
		return
	}
	if word != c.lastWord {
		c.lastWord = word
		c.stalePeriods = 0
		if c.suspected {
			c.suspected = false
			c.reinstatedAt = m.k.Now()
			m.FailureRecoveries++
			m.Trace.Record(trace.Event{At: m.k.Now(), Kind: trace.FailureRecover, Actor: "monitor",
				A: int64(c.id)})
		}
		return
	}
	c.stalePeriods++
	if !c.suspected && c.stalePeriods >= m.failureGrace {
		c.suspected = true
		c.suspectedAt = m.k.Now()
		m.FailureSuspicions++
		// Tombstone the slot and the liveness baseline: the word is
		// unreachable by any honest report, so whatever a restarted
		// client writes — even a byte-identical repeat of its pre-crash
		// report — is observed as a change and reinstates it. Suspected
		// slots are excluded from harvesting, conversion and violation
		// scans, so the tombstone only ever feeds this comparison.
		_ = m.region.PutUint64(reportSlotOffset(c.id), tombstoneWord)
		c.lastWord = tombstoneWord
		m.Trace.Record(trace.Event{At: m.k.Now(), Kind: trace.FailureSuspect, Actor: "monitor",
			A: int64(c.id)})
	}
}

// Suspected reports whether failure detection currently considers the
// client crashed.
func (m *Monitor) Suspected(id int) bool {
	if id < 0 || id >= len(m.clients) {
		return false
	}
	return m.clients[id].suspected
}
