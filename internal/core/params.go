// Package core implements Haechi, the paper's token-based QoS mechanism
// for one-sided I/O (Section II): a client-side QoS Engine that regulates
// I/Os with reservation tokens and batched global-token claims, and a
// data-node QoS Monitor that dispatches reservation tokens, converts
// unused reservations into global tokens, and adaptively re-estimates
// capacity (Algorithm 1). Admission control enforces the aggregate (C_G)
// and local (C_L) capacity constraints of Definition 2.
//
// All remote interactions use the verbs in internal/rdma exactly as the
// paper prescribes: reservation tokens are pushed with two-sided SENDs at
// period start, global tokens are claimed with one-sided FETCH_ADD,
// client reports are silent one-sided 8-byte WRITEs, and the monitor
// samples and rewrites the global-token cell with loop-back atomics.
package core

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/sim"
)

// Params are the Haechi protocol constants. NewDefaultParams returns the
// paper's implementation values.
type Params struct {
	// Period is the QoS period length T (1 s in the paper).
	Period sim.Time
	// Tick is the client token-management update interval delta (1 ms).
	Tick sim.Time
	// CheckInterval is the monitor's wake-up interval (1 ms).
	CheckInterval sim.Time
	// ReportInterval is the client reporting interval once reporting is
	// signalled (1 ms).
	ReportInterval sim.Time
	// Batch is B, the number of global tokens claimed per FETCH_ADD
	// (1000 in the paper).
	Batch int64
	// HistoryWindow is M, the capacity-history buffer length of
	// Algorithm 1.
	HistoryWindow int
	// IncrementFraction sets eta, Algorithm 1's capacity probe step, as a
	// fraction of the profiled capacity.
	IncrementFraction float64
	// SigmaFactor is the multiplier on sigma for the capacity lower
	// bound Omega_prof - 3*sigma.
	SigmaFactor float64
	// MaxClients bounds the report table size on the data node.
	MaxClients int
	// SendQueueDepth is the engine's RNIC send-queue depth: how many
	// token-backed I/Os may be outstanding at once (the paper's clients
	// keep 64 requests outstanding). Tokens are consumed when an I/O is
	// posted, so the reservation residual tracks started work plus at
	// most this many in-flight operations.
	SendQueueDepth int
}

// NewDefaultParams returns the constants used in the paper's
// implementation (Section II-D/E).
func NewDefaultParams() Params {
	return Params{
		Period:            sim.Second,
		Tick:              sim.Millisecond,
		CheckInterval:     sim.Millisecond,
		ReportInterval:    sim.Millisecond,
		Batch:             1000,
		HistoryWindow:     10,
		IncrementFraction: 0.005,
		SigmaFactor:       3,
		MaxClients:        64,
		SendQueueDepth:    64,
	}
}

// Scaled returns params with the period (and the intervals, keeping their
// ratio to the period) divided by factor; used with rdma.Config.Scaled to
// run fast tests with identical protocol structure.
func (p Params) Scaled(factor float64) Params {
	if factor <= 0 {
		return p
	}
	s := p
	s.Period = sim.Time(float64(p.Period) / factor)
	s.Tick = sim.Time(float64(p.Tick) / factor)
	s.CheckInterval = sim.Time(float64(p.CheckInterval) / factor)
	s.ReportInterval = sim.Time(float64(p.ReportInterval) / factor)
	if s.Tick <= 0 {
		s.Tick = 1
	}
	if s.CheckInterval <= 0 {
		s.CheckInterval = 1
	}
	if s.ReportInterval <= 0 {
		s.ReportInterval = 1
	}
	return s
}

// Validate reports the first invalid parameter, or nil.
func (p Params) Validate() error {
	if p.Period <= 0 {
		return fmt.Errorf("core: Period must be positive, got %v", p.Period)
	}
	if p.Tick <= 0 || p.Tick > p.Period {
		return fmt.Errorf("core: Tick must be in (0, Period], got %v", p.Tick)
	}
	if p.CheckInterval <= 0 || p.CheckInterval > p.Period {
		return fmt.Errorf("core: CheckInterval must be in (0, Period], got %v", p.CheckInterval)
	}
	if p.ReportInterval <= 0 || p.ReportInterval > p.Period {
		return fmt.Errorf("core: ReportInterval must be in (0, Period], got %v", p.ReportInterval)
	}
	if p.Batch <= 0 {
		return fmt.Errorf("core: Batch must be positive, got %d", p.Batch)
	}
	if p.HistoryWindow <= 0 {
		return fmt.Errorf("core: HistoryWindow must be positive, got %d", p.HistoryWindow)
	}
	if p.IncrementFraction <= 0 || p.IncrementFraction > 1 {
		return fmt.Errorf("core: IncrementFraction must be in (0,1], got %v", p.IncrementFraction)
	}
	if p.SigmaFactor < 0 {
		return fmt.Errorf("core: SigmaFactor must be non-negative, got %v", p.SigmaFactor)
	}
	if p.MaxClients <= 0 {
		return fmt.Errorf("core: MaxClients must be positive, got %d", p.MaxClients)
	}
	if p.SendQueueDepth <= 0 {
		return fmt.Errorf("core: SendQueueDepth must be positive, got %d", p.SendQueueDepth)
	}
	return nil
}
