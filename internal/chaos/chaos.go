// Package chaos compiles declarative fault scenarios into deterministic
// virtual-time fault injections. A Scenario is a list of FaultEvents with
// times expressed in QoS periods; the cluster resolves them to absolute
// sim.Time instants at setup and pre-schedules every injection on the
// kernel that owns the faulted component (the client's shard for engine
// crashes, shard 0 for monitor outages), so a chaos run is exactly as
// replayable as a fault-free one — including under sharded execution,
// where the fault's *effects* (recovery heartbeats, reinstated token
// pushes) travel the ordinary cross-shard mailbox paths.
//
// The package holds no clocks, no goroutines and no randomness of its
// own: the only nondeterminism a scenario introduces is the link-storm
// jitter, drawn from the executing kernel's seeded RNG inside the rdma
// fabric (see rdma.Fabric.AddLinkStorm).
package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/haechi-qos/haechi/internal/sim"
)

// Kind enumerates the fault types a scenario can inject.
type Kind int

// Fault kinds.
const (
	// CrashClient halts one client's QoS engine mid-run (Engine.Crash):
	// queued requests are dropped, held tokens move to quarantine, and
	// the monitor's failure detection reclaims the reservation.
	CrashClient Kind = iota + 1
	// RestartClient revives a crashed engine (Engine.Restart): it rejoins
	// with no tokens, writes a recovery heartbeat, and is reinstated by
	// the monitor's liveness scan at the next period end.
	RestartClient
	// MonitorOutage pauses the QoS monitor for the event's duration:
	// no period rollovers, token pushes, or pool refills. Engines notice
	// the overdue period and degrade to local-token mode with
	// bounded-backoff pool probes. One-sided data traffic keeps flowing —
	// only the monitor process is down.
	MonitorOutage
	// DegradeNIC divides a NIC's service rate by Factor for the event's
	// duration (the data node's NIC by default, a client's with Client
	// set).
	DegradeNIC
	// LinkStorm stretches every wire hop by a uniformly drawn extra delay
	// in [0, Extra] while the window is open.
	LinkStorm
	// CongestionBurst runs Jobs closed-loop background jobs (window
	// Window each) against the data node for the event's duration —
	// correlated congestion beyond Set 4's steady load.
	CongestionBurst
)

var kindNames = map[Kind]string{
	CrashClient:     "crash",
	RestartClient:   "restart",
	MonitorOutage:   "outage",
	DegradeNIC:      "degrade",
	LinkStorm:       "jitter",
	CongestionBurst: "burst",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// FaultEvent is one scheduled injection. At and Duration are measured in
// QoS periods from run start (t=0 is the start of the first warm-up
// period); fractional values are allowed and usually preferable — an
// event at an exact period boundary races the boundary's own protocol
// work for the same instant (still deterministically ordered, but harder
// to reason about).
type FaultEvent struct {
	Kind Kind
	// At is the injection instant in periods.
	At float64
	// Duration is the window length in periods (windowed kinds only).
	Duration float64
	// Client is the target client index for CrashClient, RestartClient
	// and client-NIC DegradeNIC; -1 targets the data node (DegradeNIC
	// default).
	Client int
	// Factor divides the NIC rate during a DegradeNIC window.
	Factor float64
	// Extra is the maximum per-hop extra wire delay of a LinkStorm.
	Extra sim.Time
	// Jobs and Window size a CongestionBurst.
	Jobs   int
	Window int
}

// Scenario is a named, immutable list of fault events. Build one with
// Parse or construct it directly and call Validate before use.
type Scenario struct {
	Name   string
	Events []FaultEvent
}

// presets are the named scenarios -chaos accepts directly. set5 is the
// acceptance scenario: one client crashes and recovers, the monitor
// blacks out, and the data node's NIC degrades — all in one run. The
// crash→restart gap spans three period-end liveness scans, enough for
// the default failure-detection grace (2 stale periods) to suspect the
// client and reclaim its reservation before the restart heartbeat lands.
var presets = map[string]string{
	"set5":    "crash@2.25:c=0;restart@5.5:c=0;outage@7.25+1.25;degrade@10.25+1.5:factor=4",
	"crash":   "crash@2.25:c=0;restart@5.5:c=0",
	"outage":  "outage@2.25+1.25",
	"degrade": "degrade@2.25+2:factor=4",
	"jitter":  "jitter@2.25+1:extra=2us",
	"burst":   "burst@2.25+1.5:jobs=3,window=24",
}

// Presets lists the named scenarios in sorted order.
func Presets() []string {
	out := make([]string, 0, len(presets))
	for name := range presets { //lint:ordered keys are sorted before return
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

// sortStrings is a tiny insertion sort: the preset list is single-digit
// sized and this avoids importing sort for one call site.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Parse compiles a scenario spec: either a preset name (see Presets) or
// a ';'-separated event list in the grammar
//
//	kind@START[+DURATION][:key=value,...]
//
// where kind is crash|restart|outage|degrade|jitter|burst, START and
// DURATION are periods (fractional allowed, optional trailing 'p'), and
// the keys are c (client index), factor (NIC rate divisor), extra (max
// storm delay, e.g. 2us), jobs and window (burst sizing). Example:
//
//	crash@2.5:c=0;restart@5:c=0;outage@7+1;degrade@9+2:factor=4
func Parse(spec string) (*Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("chaos: empty scenario spec")
	}
	name := spec
	if expanded, ok := presets[spec]; ok {
		spec = expanded
	} else {
		name = "custom"
	}
	sc := &Scenario{Name: name}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, fmt.Errorf("chaos: event %q: %w", part, err)
		}
		sc.Events = append(sc.Events, ev)
	}
	if len(sc.Events) == 0 {
		return nil, fmt.Errorf("chaos: scenario %q has no events", spec)
	}
	return sc, nil
}

func parseEvent(s string) (FaultEvent, error) {
	ev := FaultEvent{Client: -1}
	head, opts, hasOpts := strings.Cut(s, ":")
	kindStr, when, ok := strings.Cut(head, "@")
	if !ok {
		return ev, fmt.Errorf("missing '@<start>'")
	}
	switch kindStr {
	case "crash":
		ev.Kind = CrashClient
	case "restart":
		ev.Kind = RestartClient
	case "outage":
		ev.Kind = MonitorOutage
	case "degrade":
		ev.Kind = DegradeNIC
		ev.Factor = 4
	case "jitter":
		ev.Kind = LinkStorm
	case "burst":
		ev.Kind = CongestionBurst
		ev.Jobs = 2
		ev.Window = 32
	default:
		return ev, fmt.Errorf("unknown fault kind %q", kindStr)
	}
	start, dur, windowed := strings.Cut(when, "+")
	var err error
	if ev.At, err = parsePeriods(start); err != nil {
		return ev, fmt.Errorf("start: %w", err)
	}
	if windowed {
		if ev.Duration, err = parsePeriods(dur); err != nil {
			return ev, fmt.Errorf("duration: %w", err)
		}
	}
	if hasOpts {
		for _, kv := range strings.Split(opts, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return ev, fmt.Errorf("option %q is not key=value", kv)
			}
			switch key {
			case "c":
				if ev.Client, err = strconv.Atoi(val); err != nil {
					return ev, fmt.Errorf("client index %q: %w", val, err)
				}
			case "factor":
				if ev.Factor, err = strconv.ParseFloat(val, 64); err != nil {
					return ev, fmt.Errorf("factor %q: %w", val, err)
				}
			case "extra":
				if ev.Extra, err = parseDelay(val); err != nil {
					return ev, fmt.Errorf("extra %q: %w", val, err)
				}
			case "jobs":
				if ev.Jobs, err = strconv.Atoi(val); err != nil {
					return ev, fmt.Errorf("jobs %q: %w", val, err)
				}
			case "window":
				if ev.Window, err = strconv.Atoi(val); err != nil {
					return ev, fmt.Errorf("window %q: %w", val, err)
				}
			default:
				return ev, fmt.Errorf("unknown option %q", key)
			}
		}
	}
	return ev, ev.check()
}

// parsePeriods parses a period count: a float with an optional trailing
// 'p' ("2.5", "2.5p").
func parsePeriods(s string) (float64, error) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "p"))
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad period count %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative period count %v", v)
	}
	return v, nil
}

// delayUnits, longest suffix first so "us" is tried before "s".
var delayUnits = []struct {
	suffix string
	unit   sim.Time
}{
	{"ns", sim.Nanosecond},
	{"us", sim.Microsecond},
	{"ms", sim.Millisecond},
	{"s", sim.Second},
}

// parseDelay parses a simulated duration with an ns/us/ms/s suffix.
func parseDelay(s string) (sim.Time, error) {
	s = strings.TrimSpace(s)
	for _, u := range delayUnits {
		if num, ok := strings.CutSuffix(s, u.suffix); ok {
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				break
			}
			return sim.Time(v * float64(u.unit)), nil
		}
	}
	return 0, fmt.Errorf("bad duration %q (want e.g. 500ns, 2us, 1ms)", s)
}

// check validates one event's own fields.
func (ev FaultEvent) check() error {
	windowed := ev.Kind == MonitorOutage || ev.Kind == DegradeNIC ||
		ev.Kind == LinkStorm || ev.Kind == CongestionBurst
	if windowed && ev.Duration <= 0 {
		return fmt.Errorf("%s requires '+<duration>'", ev.Kind)
	}
	if !windowed && ev.Duration > 0 {
		return fmt.Errorf("%s takes no duration", ev.Kind)
	}
	switch ev.Kind {
	case CrashClient, RestartClient:
		if ev.Client < 0 {
			return fmt.Errorf("%s requires a client (c=<index>)", ev.Kind)
		}
	case DegradeNIC:
		if ev.Factor <= 1 {
			return fmt.Errorf("degrade factor must be > 1, got %v", ev.Factor)
		}
	case LinkStorm:
		if ev.Extra <= 0 {
			return fmt.Errorf("jitter requires extra=<delay> > 0")
		}
	case CongestionBurst:
		if ev.Jobs <= 0 || ev.Window <= 0 {
			return fmt.Errorf("burst requires jobs > 0 and window > 0, got jobs=%d window=%d", ev.Jobs, ev.Window)
		}
	}
	return nil
}

// Validate checks the scenario against a cluster shape: client indices in
// range, engine faults only when a QoS engine exists (qos), and every
// restart preceded by a crash of the same client.
func (s *Scenario) Validate(clients int, qos bool) error {
	crashed := make([]float64, clients) // last crash instant per client, -1 = never
	for i := range crashed {
		crashed[i] = -1
	}
	for i, ev := range s.Events {
		if err := ev.check(); err != nil {
			return fmt.Errorf("chaos: event %d: %w", i, err)
		}
		switch ev.Kind {
		case CrashClient, RestartClient:
			if !qos {
				return fmt.Errorf("chaos: event %d: %s requires a QoS mode (no engines in bare mode)", i, ev.Kind)
			}
			if ev.Client >= clients {
				return fmt.Errorf("chaos: event %d: client %d out of range (have %d)", i, ev.Client, clients)
			}
			if ev.Kind == CrashClient {
				crashed[ev.Client] = ev.At
			} else {
				if crashed[ev.Client] < 0 || ev.At <= crashed[ev.Client] {
					return fmt.Errorf("chaos: event %d: restart of client %d without a preceding crash", i, ev.Client)
				}
				crashed[ev.Client] = -1
			}
		case MonitorOutage:
			if !qos {
				return fmt.Errorf("chaos: event %d: outage requires a QoS mode (no monitor in bare mode)", i)
			}
		case DegradeNIC:
			if ev.Client >= clients {
				return fmt.Errorf("chaos: event %d: client %d out of range (have %d)", i, ev.Client, clients)
			}
		}
	}
	return nil
}

// String renders the scenario back in the Parse grammar.
func (s *Scenario) String() string {
	var b strings.Builder
	for i, ev := range s.Events {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s@%gp", ev.Kind, ev.At)
		if ev.Duration > 0 {
			fmt.Fprintf(&b, "+%gp", ev.Duration)
		}
		var opts []string
		switch ev.Kind {
		case CrashClient, RestartClient:
			opts = append(opts, fmt.Sprintf("c=%d", ev.Client))
		case DegradeNIC:
			if ev.Client >= 0 {
				opts = append(opts, fmt.Sprintf("c=%d", ev.Client))
			}
			opts = append(opts, fmt.Sprintf("factor=%g", ev.Factor))
		case LinkStorm:
			opts = append(opts, fmt.Sprintf("extra=%dns", int64(ev.Extra)))
		case CongestionBurst:
			opts = append(opts, fmt.Sprintf("jobs=%d,window=%d", ev.Jobs, ev.Window))
		}
		if len(opts) > 0 {
			b.WriteByte(':')
			b.WriteString(strings.Join(opts, ","))
		}
	}
	return b.String()
}

// Counts tallies events by kind for fault reporting.
type Counts struct {
	Crashes  int
	Restarts int
	Outages  int
	Degrades int
	Storms   int
	Bursts   int
}

// Count returns the scenario's per-kind event tally.
func (s *Scenario) Count() Counts {
	var c Counts
	for _, ev := range s.Events {
		switch ev.Kind {
		case CrashClient:
			c.Crashes++
		case RestartClient:
			c.Restarts++
		case MonitorOutage:
			c.Outages++
		case DegradeNIC:
			c.Degrades++
		case LinkStorm:
			c.Storms++
		case CongestionBurst:
			c.Bursts++
		}
	}
	return c
}

// ExcusesSpan reports whether the scenario excuses the given client
// (0-based) from the reservation floor during the period spanning
// [start, end] of absolute simulated time: a window that disturbs the
// whole data path (data-node NIC degradation, link storms, congestion
// bursts) excuses every client while it overlaps the span, plus a
// settling tail after it closes; a client-NIC degradation excuses
// only that client. The tail is one period T for storms and bursts
// (Haechi throttles best-effort on the congestion alert, so
// reservations recover within a period), but an NIC degradation defers
// real service capacity — duration x (1 - 1/factor) periods of work
// queue up and drain only through the reservation headroom — so its
// tail stretches to duration x (factor - 1) periods, a deterministic
// bound on the drain. Monitor outages excuse nothing — reservation tokens
// are pushed ahead of each period and the one-sided data path does not
// need the monitor mid-period, so surviving clients must hold their
// floor through an outage (the layer's showcase invariant). Crash
// windows are handled by the caller, which knows the actual rejoin
// instant. Comparing absolute spans (the caller records each measured
// period's real start and end) keeps the classification exact even when
// an outage stretches a period's wall time. Event times are resolved
// against base (the run's start instant) and period length T, exactly as
// the injections themselves were armed.
func (s *Scenario) ExcusesSpan(client int, start, end, base, T sim.Time) bool {
	for _, ev := range s.Events {
		var affectsClient bool
		switch ev.Kind {
		case DegradeNIC:
			affectsClient = ev.Client < 0 || ev.Client == client
		case LinkStorm, CongestionBurst:
			affectsClient = true
		default:
			continue
		}
		if !affectsClient {
			continue
		}
		tail := T
		if ev.Kind == DegradeNIC && ev.Factor > 1 {
			// Deferred-service drain bound: the window queues up
			// duration*(1-1/factor) periods of full-rate work, which
			// drains only through the admission headroom afterwards.
			tail += sim.Time(ev.Duration * (ev.Factor - 1) * float64(T))
		}
		evStart := base + sim.Time(ev.At*float64(T))
		evEnd := base + sim.Time((ev.At+ev.Duration)*float64(T))
		if evStart <= end && evEnd+tail >= start {
			return true
		}
	}
	return false
}
