package chaos

import (
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

func TestParseCustomSpec(t *testing.T) {
	sc, err := Parse("crash@2.5:c=0; restart@5p:c=0; outage@7+1; degrade@9+2:factor=4; jitter@11+1:extra=2us; burst@12+0.5:jobs=3,window=24")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "custom" || len(sc.Events) != 6 {
		t.Fatalf("scenario %q with %d events", sc.Name, len(sc.Events))
	}
	want := []FaultEvent{
		{Kind: CrashClient, At: 2.5, Client: 0},
		{Kind: RestartClient, At: 5, Client: 0},
		{Kind: MonitorOutage, At: 7, Duration: 1, Client: -1},
		{Kind: DegradeNIC, At: 9, Duration: 2, Client: -1, Factor: 4},
		{Kind: LinkStorm, At: 11, Duration: 1, Client: -1, Extra: 2 * sim.Microsecond},
		{Kind: CongestionBurst, At: 12, Duration: 0.5, Client: -1, Jobs: 3, Window: 24},
	}
	for i, ev := range sc.Events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	if err := sc.Validate(2, true); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	c := sc.Count()
	if c != (Counts{Crashes: 1, Restarts: 1, Outages: 1, Degrades: 1, Storms: 1, Bursts: 1}) {
		t.Errorf("counts %+v", c)
	}
}

func TestParseRoundTrip(t *testing.T) {
	sc, err := Parse("crash@2.5:c=1;outage@7+1.25;degrade@9+2:c=0,factor=4;jitter@11+1:extra=2us")
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(sc.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", sc.String(), err)
	}
	for i, ev := range again.Events {
		if ev != sc.Events[i] {
			t.Errorf("round trip event %d: %+v != %+v", i, ev, sc.Events[i])
		}
	}
}

func TestParsePresets(t *testing.T) {
	for _, name := range Presets() {
		sc, err := Parse(name)
		if err != nil {
			t.Errorf("preset %q: %v", name, err)
			continue
		}
		if sc.Name != name {
			t.Errorf("preset %q parsed with name %q", name, sc.Name)
		}
		if err := sc.Validate(2, true); err != nil {
			t.Errorf("preset %q invalid for a 2-client QoS cluster: %v", name, err)
		}
	}
	// The acceptance scenario combines crash+restart, outage and NIC
	// degradation in one run.
	sc, _ := Parse("set5")
	if c := sc.Count(); c.Crashes != 1 || c.Restarts != 1 || c.Outages != 1 || c.Degrades != 1 {
		t.Errorf("set5 counts %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ spec, wantErr string }{
		{"", "empty"},
		{"flood@2", "unknown fault kind"},
		{"crash@", "bad period count"},
		{"crash@-1:c=0", "negative"},
		{"crash@2", "requires a client"},
		{"crash@2+1:c=0", "takes no duration"},
		{"outage@2", "requires '+<duration>'"},
		{"degrade@2+1:factor=1", "factor must be > 1"},
		{"jitter@2+1", "extra=<delay>"},
		{"jitter@2+1:extra=2parsecs", "bad duration"},
		{"burst@2+1:jobs=0", "jobs > 0"},
		{"crash@2:c=0,badkey=1", "unknown option"},
		{"crash@2:c", "not key=value"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.spec, err, c.wantErr)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		spec, wantErr string
		clients       int
		qos           bool
	}{
		{"crash@2:c=5", "out of range", 2, true},
		{"crash@2:c=0", "requires a QoS mode", 2, false},
		{"outage@2+1", "requires a QoS mode", 2, false},
		{"restart@2:c=0", "without a preceding crash", 2, true},
		{"crash@3:c=0;restart@2:c=0", "without a preceding crash", 2, true},
		{"degrade@2+1:c=9,factor=4", "out of range", 2, true},
	}
	for _, c := range cases {
		sc, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		err = sc.Validate(c.clients, c.qos)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Validate(%q) = %v, want error containing %q", c.spec, err, c.wantErr)
		}
	}
}

func TestExcusesSpan(t *testing.T) {
	sc, err := Parse("outage@3+1;degrade@6.25+1.5:factor=4;degrade@20+1:c=1,factor=2")
	if err != nil {
		t.Fatal(err)
	}
	T := sim.Second
	span := func(p int) (start, end sim.Time) { // period p spans [(p-1)T, pT)
		return sim.Time(p-1) * T, sim.Time(p) * T
	}
	excuses := func(client, p int) bool {
		s, e := span(p)
		return sc.ExcusesSpan(client, s, e, 0, T)
	}
	// Monitor outages excuse nothing: the floor must hold through them.
	if excuses(0, 4) {
		t.Error("outage excused a surviving client")
	}
	// Server-NIC degradation [6.25, 7.75] overlaps periods 7-8, and its
	// settling tail covers the deferred-service drain: T plus
	// duration x (factor-1) = 1 + 1.5*3 = 5.5 periods past the window,
	// so periods up through 14 (ending at 13.25+) are still excused.
	for _, p := range []int{7, 8, 10, 14} {
		if !excuses(0, p) {
			t.Errorf("server degrade window did not excuse period %d", p)
		}
	}
	if excuses(0, 5) || excuses(0, 15) {
		t.Error("server degrade window excused a period outside it")
	}
	// Client-NIC degradation excuses only that client (tail 1+1*1 = 2T).
	if !excuses(1, 21) {
		t.Error("client degrade window did not excuse its own client")
	}
	if excuses(0, 21) {
		t.Error("client degrade window excused another client")
	}
}
