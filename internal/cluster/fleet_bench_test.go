package cluster

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"
)

// TestWriteFleetBenchJSON measures the fleet-scale hot path and writes
// BENCH_fleet.json: aggregate events per wall-second and resident bytes
// per client at 10^3/10^4/10^5 clients, with the QP-context cache model
// off and on. The committed baseline at the repo root is gated by
// scripts/bench_gate.py on two machine-independent quantities:
//
//   - events_per_client_ratio: events/sec at 10^5 clients relative to
//     10^3 (cache off). Per-event cost must stay flat as the per-client
//     working set grows 100x — the SoA-slab claim. Both sides of the
//     ratio run in the same process, so runner speed cancels out.
//   - the per-point simulated event counts, which are deterministic and
//     must match the baseline exactly (any drift is a determinism
//     regression, not noise).
//
// Skips unless BENCH_FLEET_JSON names the output path, so normal `go
// test` runs are unaffected.
func TestWriteFleetBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_FLEET_JSON")
	if path == "" {
		t.Skip("set BENCH_FLEET_JSON=<path> to write the fleet bench artifact")
	}

	type point struct {
		Clients        int     `json:"clients"`
		QPCache        bool    `json:"qp_cache"`
		Events         uint64  `json:"events"`
		EventsPerSec   float64 `json:"events_per_sec"`
		BytesPerClient float64 `json:"bytes_per_client"`
	}

	run := func(clients int, cache bool) point {
		specs := make([]ClientSpec, clients)
		for i := range specs {
			r := int64(0)
			if i < clients/10 {
				r = 1 // thin reserved tier, like Set 6's fleet regime
			}
			specs[i] = ClientSpec{Reservation: r, Demand: ConstantDemand(1)}
		}
		cfg := testConfig(Haechi)
		cfg.Seed = 6
		if cache {
			cfg.Fabric.QPCacheSize = 1024
			cfg.Fabric.QPCacheMissPenalty = 0.25
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		cl, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		start := time.Now()
		res, err := cl.Run(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return point{
			Clients:        clients,
			QPCache:        cache,
			Events:         res.EventsExecuted,
			EventsPerSec:   float64(res.EventsExecuted) / time.Since(start).Seconds(),
			BytesPerClient: float64(after.HeapAlloc-before.HeapAlloc) / float64(clients),
		}
	}

	// Warm-up pass so the first measured point doesn't also pay
	// first-run costs (the ratio's denominator is the smallest fleet).
	run(1_000, false)

	var points []point
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, cache := range []bool{false, true} {
			points = append(points, run(n, cache))
		}
	}

	// The gated ratio compares (10^5, off) against (10^3, off). A single
	// 10^5 rep swings with GC timing, so run the pair interleaved and
	// take the median ratio — the same noise scheme as the wheel/heap
	// speedup.
	const reps = 3
	ratios := []float64{points[4].EventsPerSec / points[0].EventsPerSec}
	for rep := 1; rep < reps; rep++ {
		small := run(1_000, false)
		big := run(100_000, false)
		ratios = append(ratios, big.EventsPerSec/small.EventsPerSec)
	}
	sort.Float64s(ratios)

	doc := map[string]any{
		"points":                  points,
		"events_per_client_ratio": ratios[reps/2],
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		t.Logf("clients=%d cache=%v: %d events, %.2fM ev/s, %.0f B/client",
			p.Clients, p.QPCache, p.Events, p.EventsPerSec/1e6, p.BytesPerClient)
	}
	t.Logf("events_per_client_ratio %.3f (median of %d interleaved reps)", ratios[reps/2], reps)
}
