package cluster

import (
	"testing"

	"github.com/haechi-qos/haechi/internal/core"
	"github.com/haechi-qos/haechi/internal/kvstore"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
	"github.com/haechi-qos/haechi/internal/workload"
)

// testConfig returns a 100x-scaled testbed (server ≈ 15.7 KIOPS) with a
// small store, fast to simulate while preserving the paper's ratios.
func testConfig(mode Mode) Config {
	cfg := NewDefaultConfig()
	cfg.Mode = mode
	cfg.Scale = 100
	cfg.Store = kvstore.Options{Capacity: 1 << 10, RecordSize: 4096}
	cfg.Records = 512
	cfg.Fabric.Jitter = 0.005
	cfg.Sigma = 400
	return cfg
}

const scaledServerC = 15_700

func TestApplyScaleDefaults(t *testing.T) {
	cfg, err := (Config{}).ApplyScale()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != Haechi || cfg.Scale != 1 {
		t.Errorf("defaults not applied: %+v", cfg.Mode)
	}
	if cfg.ProfiledCapacity != 1_570_000 {
		t.Errorf("derived profiled capacity = %d, want 1570000", cfg.ProfiledCapacity)
	}
	if cfg.Sigma != 15_700 {
		t.Errorf("derived sigma = %v", cfg.Sigma)
	}
	if cfg.Records != cfg.Store.Capacity/2 {
		t.Errorf("derived records = %d", cfg.Records)
	}
}

func TestApplyScaleRescalesControlPlane(t *testing.T) {
	cfg := NewDefaultConfig()
	cfg.Scale = 100
	scaled, err := cfg.ApplyScale()
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Fabric.ServerOneSidedRate != 15_700 {
		t.Errorf("server rate = %v", scaled.Fabric.ServerOneSidedRate)
	}
	// Intervals stretched (capped at Period/10) and batch shrunk.
	if scaled.Params.Tick != scaled.Params.Period/10 {
		t.Errorf("tick = %v, want period/10 cap", scaled.Params.Tick)
	}
	if scaled.Params.Batch != 10 {
		t.Errorf("batch = %d, want 10", scaled.Params.Batch)
	}
	if scaled.ProfiledCapacity != 15_700 {
		t.Errorf("profiled = %d", scaled.ProfiledCapacity)
	}
}

func TestApplyScaleValidation(t *testing.T) {
	cfg := NewDefaultConfig()
	cfg.Scale = 0.5
	if _, err := cfg.ApplyScale(); err == nil {
		t.Error("fractional scale accepted")
	}
	cfg = NewDefaultConfig()
	cfg.TwoSided = true // with Haechi mode
	if _, err := cfg.ApplyScale(); err == nil {
		t.Error("two-sided QoS accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testConfig(Haechi), nil); err == nil {
		t.Error("empty specs accepted")
	}
	cfg := testConfig(Haechi)
	cfg.Records = 1 << 20
	if _, err := New(cfg, []ClientSpec{{Reservation: 10}}); err == nil {
		t.Error("records beyond capacity accepted")
	}
	// Admission failure surfaces from New.
	cfg = testConfig(Haechi)
	if _, err := New(cfg, []ClientSpec{{Reservation: 1 << 40}}); err == nil {
		t.Error("over-reservation accepted")
	}
}

func TestModeString(t *testing.T) {
	if Bare.String() != "bare" || Haechi.String() != "haechi" || BasicHaechi.String() != "basic-haechi" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

// TestBareSaturation reproduces Fig. 7's one-sided curve at test scale:
// 10 saturating clients reach ≈ C_G with a fair split.
func TestBareSaturation(t *testing.T) {
	specs := make([]ClientSpec, 10)
	for i := range specs {
		specs[i] = ClientSpec{Pattern: workload.Burst{Window: 64}}
	}
	cl, err := New(testConfig(Bare), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputPerPeriod < 0.95*scaledServerC || res.ThroughputPerPeriod > 1.05*scaledServerC {
		t.Errorf("bare throughput %.0f/period, want ≈%d", res.ThroughputPerPeriod, scaledServerC)
	}
	for _, cr := range res.Clients {
		if cr.MeanPeriod < 0.85*scaledServerC/10 || cr.MeanPeriod > 1.15*scaledServerC/10 {
			t.Errorf("client %d mean %.0f, want ≈ fair share %d", cr.Index, cr.MeanPeriod, scaledServerC/10)
		}
	}
	if len(res.Clients[0].Periods) != 3 {
		t.Errorf("measured %d periods, want 3", len(res.Clients[0].Periods))
	}
}

// TestBareSingleClient reproduces Fig. 6 at test scale: one client caps at
// C_L ≈ 4000/period one-sided.
func TestBareSingleClient(t *testing.T) {
	cl, err := New(testConfig(Bare), []ClientSpec{{Pattern: workload.Burst{Window: 64}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputPerPeriod < 3800 || res.ThroughputPerPeriod > 4100 {
		t.Errorf("single-client throughput %.0f, want ≈4000 (C_L)", res.ThroughputPerPeriod)
	}
}

// TestBareTwoSided reproduces the two-sided curves: single client ≈ 3200,
// four clients ≈ 4300 (server CPU bound).
func TestBareTwoSided(t *testing.T) {
	run := func(n int) float64 {
		cfg := testConfig(Bare)
		cfg.TwoSided = true
		specs := make([]ClientSpec, n)
		for i := range specs {
			specs[i] = ClientSpec{Pattern: workload.Burst{Window: 64}}
		}
		cl, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputPerPeriod
	}
	one := run(1)
	four := run(4)
	if one < 2900 || one > 3500 {
		t.Errorf("1-client two-sided %.0f, want ≈3200", one)
	}
	if four < 4100 || four > 4500 {
		t.Errorf("4-client two-sided %.0f, want ≈4300", four)
	}
}

// TestHaechiMeetsReservations: the end-to-end stack (KV store + engines +
// monitor) meets uniform reservations with <1% throughput loss vs bare.
func TestHaechiMeetsReservations(t *testing.T) {
	reserved := int64(0.9 * scaledServerC / 10) // 1413 per client
	pool := uint64(scaledServerC) - 10*uint64(reserved)
	specs := make([]ClientSpec, 10)
	for i := range specs {
		specs[i] = ClientSpec{
			Reservation: reserved,
			// The paper's Exp 2A demand: reservation plus the whole
			// initial global pool, per client.
			Demand: ConstantDemand(uint64(reserved) + pool),
		}
	}
	cl, err := New(testConfig(Haechi), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range res.Clients {
		if float64(cr.MinPeriod) < 0.98*float64(reserved) {
			t.Errorf("client %d min period %d < reservation %d", cr.Index, cr.MinPeriod, reserved)
		}
	}
	if res.ThroughputPerPeriod < 0.92*scaledServerC {
		t.Errorf("haechi throughput %.0f, want ≥92%% of %d", res.ThroughputPerPeriod, scaledServerC)
	}
	if res.Overhead.NICFraction > 0.05 {
		t.Errorf("QoS overhead %.2f%% of NIC time; want small", 100*res.Overhead.NICFraction)
	}
	if res.Overhead.DataReads == 0 {
		t.Error("no data reads counted")
	}
}

// TestHaechiZipfVsBare (Experiment 2A shape): under Zipf reservations the
// bare system starves high-reservation clients; Haechi fixes them.
func TestHaechiZipfVsBare(t *testing.T) {
	res, err := workload.ZipfGroupSplit(uint64(0.9*scaledServerC), 10, 5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	pool := uint64(scaledServerC) - workload.Sum(res)
	demand := func(i int) DemandFn { return ConstantDemand(res[i] + pool) }

	bareSpecs := make([]ClientSpec, 10)
	qosSpecs := make([]ClientSpec, 10)
	for i := range bareSpecs {
		bareSpecs[i] = ClientSpec{Demand: demand(i)}
		qosSpecs[i] = ClientSpec{Reservation: int64(res[i]), Demand: demand(i)}
	}

	bareCl, err := New(testConfig(Bare), bareSpecs)
	if err != nil {
		t.Fatal(err)
	}
	bareRes, err := bareCl.Run(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The bare system is insensitive to reservations: C1 (highest) misses.
	if float64(bareRes.Clients[0].MeanPeriod) >= float64(res[0]) {
		t.Errorf("bare C1 unexpectedly met its would-be reservation: %.0f >= %d",
			bareRes.Clients[0].MeanPeriod, res[0])
	}

	qosCl, err := New(testConfig(Haechi), qosSpecs)
	if err != nil {
		t.Fatal(err)
	}
	qosRes, err := qosCl.Run(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	fairShare := float64(scaledServerC) / 10
	for _, cr := range qosRes.Clients {
		if cr.Index < 2 {
			// The top Zipf group at 90% reserved sits at the local-
			// capacity feasibility edge under burst (see EXPERIMENTS.md):
			// it reaches ~90% of R, still far above the bare fair share.
			if float64(cr.MinPeriod) < 0.87*float64(cr.Reservation) {
				t.Errorf("haechi client %d min %d below feasibility-edge band of reservation %d",
					cr.Index, cr.MinPeriod, cr.Reservation)
			}
			if cr.MeanPeriod < 1.3*fairShare {
				t.Errorf("haechi client %d mean %.0f not differentiated above fair share %.0f",
					cr.Index, cr.MeanPeriod, fairShare)
			}
			continue
		}
		if float64(cr.MinPeriod) < 0.98*float64(cr.Reservation) {
			t.Errorf("haechi client %d min %d < reservation %d", cr.Index, cr.MinPeriod, cr.Reservation)
		}
	}
}

// TestConversionVsBasic (Experiment 2B shape): when C1, C2 under-demand,
// full Haechi redistributes their tokens; Basic Haechi wastes them.
func TestConversionVsBasic(t *testing.T) {
	res, err := workload.ZipfGroupSplit(uint64(0.9*scaledServerC), 10, 5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	build := func(mode Mode) *Results {
		specs := make([]ClientSpec, 10)
		for i := range specs {
			d := ConstantDemand(res[i] + 1000)
			if i < 2 {
				d = ConstantDemand(res[i] / 3) // insufficient demand
			}
			specs[i] = ClientSpec{Reservation: int64(res[i]), Demand: d}
		}
		cl, err := New(testConfig(mode), specs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := cl.Run(1, 8)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	full := build(Haechi)
	basic := build(BasicHaechi)
	// Work conservation: conversion recovers most of C1/C2's unused
	// reservation for the others (Fig. 11 shape).
	if full.ThroughputPerPeriod <= 1.04*basic.ThroughputPerPeriod {
		t.Errorf("conversion gain too small: full=%.0f basic=%.0f",
			full.ThroughputPerPeriod, basic.ThroughputPerPeriod)
	}
	// Converted tokens are competed for; individual shares vary
	// period-to-period, but broadly the hungry clients gain (Fig. 10) and
	// none does worse than its reservation.
	gainers := 0
	for i := 2; i < 10; i++ {
		if full.Clients[i].Total > basic.Clients[i].Total {
			gainers++
		}
		if int64(full.Clients[i].MinPeriod) < int64(float64(res[i])*0.98) {
			t.Errorf("client %d fell below reservation under conversion: %d < %d",
				i, full.Clients[i].MinPeriod, res[i])
		}
		if float64(full.Clients[i].Total) < 0.95*float64(basic.Clients[i].Total) {
			t.Errorf("client %d lost throughput to conversion: %d vs %d",
				i, full.Clients[i].Total, basic.Clients[i].Total)
		}
	}
	if gainers < 6 {
		t.Errorf("only %d of 8 hungry clients gained from conversion", gainers)
	}
}

// TestLatencyBurstVsConstantRate (Fig. 15 shape): constant-rate requests
// see far lower mean and tail latency than burst.
func TestLatencyBurstVsConstantRate(t *testing.T) {
	res := int64(0.8 * scaledServerC / 10)
	run := func(p workload.Pattern) *Results {
		specs := make([]ClientSpec, 10)
		for i := range specs {
			specs[i] = ClientSpec{
				Reservation: res,
				Demand:      ConstantDemand(uint64(res)),
				Pattern:     p,
			}
		}
		cl, err := New(testConfig(Haechi), specs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := cl.Run(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	burst := run(workload.Burst{})
	cr := run(workload.ConstantRate{})
	if cr.AggregateLatency.Mean >= burst.AggregateLatency.Mean {
		t.Errorf("constant-rate mean %v >= burst mean %v",
			cr.AggregateLatency.Mean, burst.AggregateLatency.Mean)
	}
	if cr.AggregateLatency.P99 >= burst.AggregateLatency.P99 {
		t.Errorf("constant-rate p99 %v >= burst p99 %v",
			cr.AggregateLatency.P99, burst.AggregateLatency.P99)
	}
}

// TestBackgroundJobAndTimeline: congestion mid-run dents the throughput
// timeline (Fig. 16 shape) and the timelines are recorded from t=0.
func TestBackgroundJobAndTimeline(t *testing.T) {
	reserved := int64(0.8 * scaledServerC / 10)
	specs := make([]ClientSpec, 10)
	for i := range specs {
		specs[i] = ClientSpec{Reservation: reserved, Demand: ConstantDemand(uint64(reserved) + 400)}
	}
	cl, err := New(testConfig(Haechi), specs)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		job, err := cl.AddBackgroundJob(string(rune('a'+j)), 64)
		if err != nil {
			t.Fatal(err)
		}
		cl.At(6*cl.Config().Params.Period, job.Start)
	}
	if _, err := cl.AddBackgroundJob("a", 64); err == nil {
		t.Error("duplicate job name accepted")
	}
	res, err := cl.Run(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	var before, after float64
	for _, cr := range res.Clients {
		for p := 1; p < 4; p++ {
			before += float64(cr.Periods[p])
		}
		for p := 7; p < 10; p++ {
			after += float64(cr.Periods[p])
		}
	}
	if after >= before {
		t.Errorf("congestion did not dent throughput: before=%.0f after=%.0f", before, after)
	}
	if res.Clients[0].Timeline.Len() < 10 {
		t.Errorf("timeline too short: %d", res.Clients[0].Timeline.Len())
	}
	if res.OmegaTimeline.Len() == 0 || res.UsageTimeline.Len() == 0 {
		t.Error("monitor timelines missing")
	}
}

// TestProfileCapacity measures Omega_prof ≈ C_G with small sigma.
func TestProfileCapacity(t *testing.T) {
	prof, err := ProfileCapacity(testConfig(Bare), 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if prof.MeanPerPeriod < 0.95*scaledServerC || prof.MeanPerPeriod > 1.05*scaledServerC {
		t.Errorf("profiled %.0f, want ≈%d", prof.MeanPerPeriod, scaledServerC)
	}
	if prof.Sigma < 0 || prof.Sigma > 0.05*scaledServerC {
		t.Errorf("sigma %.1f out of expected range", prof.Sigma)
	}
	if prof.LowerBound(3) >= int64(prof.MeanPerPeriod) {
		t.Error("lower bound not below mean")
	}
	if _, err := ProfileCapacity(testConfig(Bare), 0, 5); err == nil {
		t.Error("zero clients accepted")
	}
}

// TestRunValidation covers bad run arguments.
func TestRunValidation(t *testing.T) {
	cl, err := New(testConfig(Bare), []ClientSpec{{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(-1, 3); err == nil {
		t.Error("negative warmup accepted")
	}
	if _, err := cl.Run(1, 0); err == nil {
		t.Error("zero measure accepted")
	}
}

// TestLimitInCluster: limits hold end to end.
func TestLimitInCluster(t *testing.T) {
	reserved := int64(1000)
	specs := []ClientSpec{{
		Reservation: reserved,
		Limit:       1500,
		Demand:      ConstantDemand(4000),
	}}
	cl, err := New(testConfig(Haechi), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for p, n := range res.Clients[0].Periods {
		if n > 1500+64 {
			t.Errorf("period %d: %d completions exceed limit 1500", p, n)
		}
	}
}

// TestResultsString formats without panicking and contains client rows.
func TestResultsString(t *testing.T) {
	specs := []ClientSpec{{Reservation: 500, Demand: ConstantDemand(600)}}
	cl, err := New(testConfig(Haechi), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if s == "" || len(s) < 20 {
		t.Errorf("String too short: %q", s)
	}
}

// TestScaledParamsStillValid: a scaled config passes core validation and
// produces a working monitor with period structure intact.
func TestScaledParamsStillValid(t *testing.T) {
	cfg, err := testConfig(Haechi).ApplyScale()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Params.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Params.Period != core.NewDefaultParams().Period {
		t.Error("scale must not change the QoS period")
	}
	_ = sim.Time(0)
}

// TestUpdateMix: a YCSB-B-style 5% update mix flows through the same
// token path; updates are one-sided writes at the server.
func TestUpdateMix(t *testing.T) {
	specs := []ClientSpec{{
		Reservation:    2000,
		Demand:         ConstantDemand(2500),
		UpdateFraction: 0.5,
	}}
	cl, err := New(testConfig(Haechi), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Clients[0].MinPeriod) < 0.97*2000 {
		t.Errorf("reservation missed with update mix: %d", res.Clients[0].MinPeriod)
	}
	kv := cl.Clients()[0].KV
	gets, puts := kv.OneSidedGets(), kv.OneSidedPuts()
	total := gets + puts
	frac := float64(puts) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("update fraction = %.2f, want ≈0.5 (gets=%d puts=%d)", frac, gets, puts)
	}
	// Still silent: no server CPU involvement.
	if res.ServerStats.SendsReceived != 0 {
		t.Errorf("update mix generated %d server messages", res.ServerStats.SendsReceived)
	}
}

// TestPoissonPatternInCluster: the extension arrival process works end to
// end under QoS.
func TestPoissonPatternInCluster(t *testing.T) {
	specs := []ClientSpec{{
		Reservation: 2000,
		Demand:      ConstantDemand(2400),
		Pattern:     workload.Poisson{},
	}}
	cl, err := New(testConfig(Haechi), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Open-loop random arrivals: the mean must track the demand.
	if res.Clients[0].MeanPeriod < 2200 || res.Clients[0].MeanPeriod > 2600 {
		t.Errorf("poisson mean %f, want ≈2400", res.Clients[0].MeanPeriod)
	}
}

// TestTracing: the shared recorder captures the protocol's event flow.
func TestTracing(t *testing.T) {
	specs := []ClientSpec{
		{Reservation: 2000, Demand: ConstantDemand(4000)},
		{Reservation: 2000, Demand: ConstantDemand(500)}, // yields
	}
	cl, err := New(testConfig(Haechi), specs)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := cl.EnableTrace(4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.EnableTrace(0); err == nil {
		t.Error("zero-capacity trace accepted")
	}
	if _, err := cl.Run(1, 3); err != nil {
		t.Fatal(err)
	}
	counts := rec.Counts()
	for _, k := range []trace.Kind{trace.PeriodStart, trace.TokenPush, trace.Report,
		trace.CapacityUpdate, trace.Claim, trace.Yield} {
		if counts[k] == 0 {
			t.Errorf("no %v events recorded (counts: %v)", k, counts)
		}
	}
	if rec.Summary() == "trace: empty" {
		t.Error("summary empty")
	}
}

// TestTraceBareModeRejected: tracing needs a monitor.
func TestTraceBareModeRejected(t *testing.T) {
	cl, err := New(testConfig(Bare), []ClientSpec{{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.EnableTrace(128); err == nil {
		t.Error("bare-mode tracing accepted")
	}
}

// TestGoldenDeterminism: identical configurations produce event-for-event
// identical results. Two fresh clusters with the same seed must agree on
// every per-period count; any divergence means nondeterminism leaked into
// the simulation (wall-clock, map iteration into event order, etc.).
func TestGoldenDeterminism(t *testing.T) {
	build := func() *Results {
		res, err := workload.ZipfGroupSplit(uint64(0.9*scaledServerC), 10, 5, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]ClientSpec, 10)
		for i := range specs {
			d := res[i] + 1570
			if i == 1 {
				d = res[i] / 2
			}
			specs[i] = ClientSpec{Reservation: int64(res[i]), Demand: ConstantDemand(d), UpdateFraction: 0.05}
		}
		cl, err := New(testConfig(Haechi), specs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := cl.Run(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(), build()
	if a.TotalCompleted != b.TotalCompleted {
		t.Fatalf("runs diverge: %d vs %d", a.TotalCompleted, b.TotalCompleted)
	}
	for i := range a.Clients {
		for p := range a.Clients[i].Periods {
			if a.Clients[i].Periods[p] != b.Clients[i].Periods[p] {
				t.Fatalf("client %d period %d diverges: %d vs %d",
					i, p, a.Clients[i].Periods[p], b.Clients[i].Periods[p])
			}
		}
		if a.Clients[i].Latency.P99 != b.Clients[i].Latency.P99 {
			t.Fatalf("client %d latency diverges", i)
		}
	}
}
