package cluster

import (
	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/sim"
)

// ShardAssignment records which shard a node landed on.
type ShardAssignment struct {
	Name  string
	Shard int
}

// ShardingReport summarizes a sharded run (Config.Shards > 1). Every
// field is deterministic and part of the byte-identity surface — which
// is why the worker count is deliberately absent: workers are pure
// concurrency and must never show up in Results.
type ShardingReport struct {
	// Shards is the effective shard count (after clamping).
	Shards int
	// Lookahead is the conservative quantum Δ (the fabric's propagation
	// delay).
	Lookahead sim.Time
	// Quanta is the number of synchronization quanta executed.
	Quanta uint64
	// CrossMessages is the number of cross-shard mailbox deliveries.
	CrossMessages uint64
	// PerShardEvents is each shard kernel's fired-event count.
	PerShardEvents []uint64
	// IdleQuanta is, per shard, how many quanta fired zero events there —
	// the deterministic proxy for barrier stall: a high count means the
	// shard mostly waited on its peers at the quantum barrier.
	IdleQuanta []uint64
	// Nodes maps cluster nodes to shards (data node first, then clients
	// in index order).
	Nodes []ShardAssignment
	// Attribution is the per-shard executed-work profile (shard order);
	// Results.Attribution is its sum. Like every other field here it is
	// deterministic and worker-count-independent.
	Attribution []rdma.ExecProfile
}

// runSharded is Run's quantum-coordinated twin: the same warm-up/measure
// protocol, but every per-client action (period boundaries, harvesting,
// measure-window flags) is scheduled on that client's own shard kernel so
// a quantum never writes state owned by another shard. The data-node-side
// pieces (monitor, metrics sampling, server-stat snapshots, background
// jobs) all live on shard 0 and keep using c.kernel directly.
func (c *Cluster) runSharded(warmupPeriods, measurePeriods int) (*Results, error) {
	T := c.cfg.Params.Period
	start := c.kernel.Now()
	c.warmupPeriods = warmupPeriods
	if err := c.armChaos(start); err != nil {
		return nil, err
	}

	byShard := make([][]*Client, len(c.kernels))
	for _, rt := range c.clients {
		s := rt.Node.Shard()
		byShard[s] = append(byShard[s], rt)
	}

	var bareTickers []*sim.Ticker
	if c.cfg.Mode == Bare {
		// One period ticker per shard, driving only that shard's clients.
		// All shards tick at the same virtual instants, so the per-shard
		// period counters advance in lockstep with the unsharded ticker.
		for s, list := range byShard {
			if len(list) == 0 {
				continue
			}
			list := list
			period := 0
			tick, err := c.kernels[s].Every(0, T, func() {
				period++
				for _, rt := range list {
					c.harvest(rt, period)
					rt.Gen.BeginPeriod(rt.Spec.Demand(period))
				}
			})
			if err != nil {
				return nil, err
			}
			bareTickers = append(bareTickers, tick)
		}
	} else {
		if err := c.monitor.Start(); err != nil {
			return nil, err
		}
	}

	var metricsTickers []*sim.Ticker
	if c.registries != nil {
		// One metrics ticker per shard, sampling only that shard's
		// registry from that shard's kernel: every gauge is registered on
		// its owner's shard (see registerMetrics), so sampling reads no
		// cross-shard state and the workers stay unconstrained. All shards
		// tick at the same virtual instants and run to the same horizon,
		// so the per-shard sample timelines coincide and merge cleanly.
		for s, reg := range c.registries {
			k := c.kernels[s]
			reg := reg
			t, err := k.Every(0, c.cfg.Observe.MetricsInterval, func() {
				reg.Sample(k.Now())
			})
			if err != nil {
				return nil, err
			}
			metricsTickers = append(metricsTickers, t)
		}
	}

	warmEnd := start + sim.Time(warmupPeriods)*T
	measureEnd := warmEnd + sim.Time(measurePeriods)*T
	c.kernel.At(warmEnd, func() {
		c.serverStat0 = c.server.Stats()
	})
	for s, list := range byShard {
		if len(list) == 0 {
			continue
		}
		list := list
		c.kernels[s].At(warmEnd, func() {
			for _, rt := range list {
				rt.Gen.Latency.Reset()
				rt.measuring = true
				// The next harvest closes the final warm-up period; skip it.
				rt.skipNext = true
			}
		})
		c.kernels[s].At(measureEnd+T/2, func() {
			for _, rt := range list {
				rt.measuring = false
			}
		})
	}

	c.group.RunUntil(measureEnd + 3*T/4)
	c.group.Close()
	serverStats := c.server.Stats().Sub(c.serverStat0)

	for _, tick := range metricsTickers {
		tick.Stop()
	}
	for _, tick := range bareTickers {
		tick.Stop()
	}
	if c.monitor != nil {
		c.monitor.Stop()
	}
	for _, rt := range c.clients {
		rt.Gen.Stop()
		if rt.Engine != nil {
			rt.Engine.Stop()
		}
	}
	res, err := c.buildResults(measurePeriods, serverStats)
	if err != nil {
		return nil, err
	}
	if ob := c.cfg.Observe; ob != nil && ob.OnResults != nil {
		ob.OnResults(res)
	}
	c.checkChaosInvariants(res)
	// See Run: a sanitized run that broke an invariant fails loudly.
	return res, c.sanErr()
}

// shardingReport assembles the Results entry for a sharded run.
func (c *Cluster) shardingReport() *ShardingReport {
	per := make([]uint64, len(c.kernels))
	for s, k := range c.kernels {
		per[s] = k.Executed()
	}
	sr := &ShardingReport{
		Shards:         len(c.kernels),
		Lookahead:      c.group.Delta(),
		Quanta:         c.group.Quanta(),
		CrossMessages:  c.group.CrossMessages(),
		PerShardEvents: per,
		IdleQuanta:     c.group.IdleQuanta(),
		Attribution:    c.fabric.ExecProfiles(),
	}
	sr.Nodes = append(sr.Nodes, ShardAssignment{Name: c.server.Name(), Shard: c.server.Shard()})
	for _, rt := range c.clients {
		sr.Nodes = append(sr.Nodes, ShardAssignment{Name: rt.Node.Name(), Shard: rt.Node.Shard()})
	}
	return sr
}
