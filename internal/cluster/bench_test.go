package cluster

import (
	"encoding/json"
	"os"
	"sort"
	"testing"
	"time"

	"github.com/haechi-qos/haechi/internal/workload"
)

// TestWriteObserveBenchJSON augments the kernel benchmark artifact with
// the observability overhead figure: a figure-scale sharded run, blind
// vs fully observed (spans + metrics + sanitizer), interleaved reps,
// median of the per-rep events-per-wall-second ratios. CI sets
// BENCH_OBSERVE_JSON to the bench JSON the sim writer just produced;
// this hook reads it back, adds "observe_overhead", and rewrites it so
// scripts/bench_gate.py can compare the ratio against the committed
// BENCH_kernel.json baseline. Without the env var it skips, so normal
// `go test` runs are unaffected.
func TestWriteObserveBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_OBSERVE_JSON")
	if path == "" {
		t.Skip("set BENCH_OBSERVE_JSON=<kernel bench json> to add the observe-overhead figure")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading kernel bench artifact: %v (run TestWriteKernelBenchJSON first)", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}

	run := func(observe bool) float64 {
		specs := make([]ClientSpec, 6)
		for i := range specs {
			specs[i] = ClientSpec{
				Reservation:    1200,
				Demand:         ConstantDemand(1500),
				UpdateFraction: 0.05,
			}
		}
		specs[5].Pattern = workload.Poisson{}
		cfg := testConfig(Haechi)
		cfg.Seed = 42
		cfg.Shards = 4
		if observe {
			cfg.Sanitize = true
			cfg.Observe = &Observe{
				FlightSpans:     4096,
				MetricsInterval: DefaultMetricsInterval(cfg.Params.Period),
			}
		}
		cl, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := cl.Run(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.EventsExecuted) / time.Since(start).Seconds()
	}
	// Warm-up pass so neither side pays first-run costs in the timed reps.
	run(false)
	run(true)
	// Interleave blind and observed reps so a slow phase of a shared
	// runner hits both sides about equally, and take the median ratio —
	// the same noise-robustness scheme as the wheel/heap speedup.
	const reps = 5
	var ratios []float64
	var blind, observed float64
	for rep := 0; rep < reps; rep++ {
		b := run(false)
		o := run(true)
		if b > blind {
			blind = b
		}
		if o > observed {
			observed = o
		}
		ratios = append(ratios, o/b)
	}
	sort.Float64s(ratios)
	doc["observe_events_per_sec"] = observed
	doc["observe_overhead"] = ratios[reps/2]
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("blind %.2fM ev/s, observed %.2fM ev/s, observe_overhead %.3f (median of %d reps)",
		blind/1e6, observed/1e6, ratios[reps/2], reps)
}
