package cluster

import (
	"fmt"
	"strings"

	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
)

// Observe configures the observability layer for a cluster run: per-I/O
// flight-recorder spans and a pull-based metrics registry, both stamped
// and sampled from the simulation clock. Recording is passive — it
// never schedules kernel events of its own — so enabling it does not
// change the simulated outcome (cluster.TestDeterminismByteIdentical
// runs with it on).
type Observe struct {
	// FlightSpans is the span ring capacity: the most recent finished
	// spans are retained for Chrome-trace export, while the per-stage
	// latency histograms cover every span regardless of eviction.
	// 0 disables span recording.
	FlightSpans int
	// MetricsInterval is the registry sampling cadence in virtual time.
	// 0 disables the registry.
	MetricsInterval sim.Time
	// OnResults, when set, receives the Results of each run before
	// Run returns. CLIs use it to capture traces from experiments that
	// construct several clusters internally.
	OnResults func(*Results)
}

// DefaultMetricsInterval returns a sampling cadence of 1/100th of the
// QoS period — fine enough to see within-period dynamics, coarse
// enough to keep exports small.
func DefaultMetricsInterval(period sim.Time) sim.Time {
	iv := period / 100
	if iv <= 0 {
		iv = 1
	}
	return iv
}

// setupObserve attaches the flight recorder and metrics registry per
// the config. Called at the end of New, once all nodes, engines and
// generators exist.
func (c *Cluster) setupObserve() error {
	ob := c.cfg.Observe
	if ob == nil {
		return nil
	}
	if ob.FlightSpans > 0 {
		fr, err := trace.NewFlightRecorder(ob.FlightSpans)
		if err != nil {
			return err
		}
		c.fabric.SetFlightRecorder(fr)
		c.flight = fr
	}
	if ob.MetricsInterval > 0 {
		c.registry = metrics.NewRegistry()
		if err := c.registerMetrics(); err != nil {
			return err
		}
	}
	return nil
}

// registerMetrics registers the standing gauges: kernel health, every
// node's NIC (and the server's CPU), monitor state, per-engine token
// state, and per-client KV and workload progress. Registration order is
// fixed by construction order, so exports are deterministic.
func (c *Cluster) registerMetrics() error {
	reg := c.registry
	// In a sharded run the sim/ gauges sum over every shard kernel
	// (sampling is sequential there; see Config.ShardWorkers).
	kernels := c.kernels
	if kernels == nil {
		kernels = []*sim.Kernel{c.kernel}
	}
	sum := func(per func(*sim.Kernel) float64) func() float64 {
		return func() float64 {
			var n float64
			for _, k := range kernels {
				n += per(k)
			}
			return n
		}
	}
	add := func(name string, fn func() float64) error { return reg.Register(name, fn) }

	if err := add("sim/pending-events", sum(func(k *sim.Kernel) float64 { return float64(k.Pending()) })); err != nil {
		return err
	}
	if err := add("sim/executed-events", sum(func(k *sim.Kernel) float64 { return float64(k.Executed()) })); err != nil {
		return err
	}
	if err := add("sim/cancelled-timers", sum(func(k *sim.Kernel) float64 { return float64(k.Cancelled()) })); err != nil {
		return err
	}
	for _, n := range c.fabric.Nodes() {
		nic := n.NIC()
		if err := add(n.Name()+"/nic/served", func() float64 { return float64(nic.Served()) }); err != nil {
			return err
		}
		if err := add(n.Name()+"/nic/queue-delay-ns", func() float64 { return float64(nic.QueueDelay()) }); err != nil {
			return err
		}
		if cpu := n.CPU(); cpu != nil {
			if err := add(n.Name()+"/cpu/served", func() float64 { return float64(cpu.Served()) }); err != nil {
				return err
			}
		}
	}
	if c.monitor != nil {
		if err := add("monitor/omega", func() float64 { return float64(c.monitor.Estimator().Current()) }); err != nil {
			return err
		}
		if err := add("monitor/conversions", func() float64 { return float64(c.monitor.ConversionCount) }); err != nil {
			return err
		}
	}
	for _, rt := range c.clients {
		rt := rt
		name := rt.Node.Name()
		if rt.Engine != nil {
			if err := add(name+"/engine/pending", func() float64 { return float64(rt.Engine.Pending()) }); err != nil {
				return err
			}
			if err := add(name+"/engine/res-tokens", func() float64 { return float64(rt.Engine.ReservationTokens()) }); err != nil {
				return err
			}
			if err := add(name+"/engine/local-global-tokens", func() float64 { return float64(rt.Engine.LocalGlobalTokens()) }); err != nil {
				return err
			}
		}
		if err := add(name+"/kv/one-sided-gets", func() float64 { return float64(rt.KV.OneSidedGets()) }); err != nil {
			return err
		}
		if err := add(name+"/kv/probe-reads", func() float64 { return float64(rt.KV.ProbeReads()) }); err != nil {
			return err
		}
		if err := add(name+"/workload/inflight", func() float64 { return float64(rt.Gen.Issued() - rt.Gen.Completed()) }); err != nil {
			return err
		}
	}
	if c.flight != nil {
		if err := add("trace/spans-finished", func() float64 { return float64(c.flight.Finished()) }); err != nil {
			return err
		}
	}
	return nil
}

// StageLatency is one tenant's latency summary for one pipeline stage,
// the rows of the per-stage breakdown table.
type StageLatency struct {
	Client  string
	Stage   string
	Summary metrics.Summary
}

// stageRows flattens the flight recorder's per-tenant histograms into
// deterministic rows: tenants sorted by name, stages in pipeline order.
func stageRows(fr *trace.FlightRecorder) []StageLatency {
	var out []StageLatency
	for _, st := range fr.Stages() {
		hs := st.Histograms()
		for i, name := range trace.StageNames {
			out = append(out, StageLatency{Client: st.Actor, Stage: name, Summary: hs[i].Summarize()})
		}
	}
	return out
}

// StageBreakdown renders the per-stage latency table: one row per
// tenant, one mean/p99 cell per pipeline stage. Durations are converted
// back to full-scale equivalents (scaled runs inflate virtual time by
// Scale). Returns "" when span recording was off or captured nothing.
func (r *Results) StageBreakdown() string {
	if len(r.Stages) == 0 {
		return ""
	}
	scale := r.Scale
	if scale <= 0 {
		scale = 1
	}
	cell := func(s metrics.Summary) string {
		if s.Count == 0 {
			return "-"
		}
		mean := sim.Time(float64(s.Mean) / scale)
		p99 := sim.Time(float64(s.P99) / scale)
		return fmt.Sprintf("%v/%v", mean, p99)
	}
	cols := len(trace.StageNames) + 1
	header := append([]string{"client"}, trace.StageNames...)
	rows := [][]string{header}
	row := make([]string, 0, cols)
	for _, sl := range r.Stages {
		if len(row) == 0 {
			row = append(row, sl.Client)
		}
		row = append(row, cell(sl.Summary))
		if len(row) == cols {
			rows = append(rows, row)
			row = make([]string, 0, cols)
		}
	}
	widths := make([]int, cols)
	for _, rw := range rows {
		for i, c := range rw {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString("per-stage latency (mean/p99, full-scale equivalent):\n")
	for _, rw := range rows {
		for i, c := range rw {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
