package cluster

import (
	"fmt"
	"strings"

	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
)

// Observe configures the observability layer for a cluster run: per-I/O
// flight-recorder spans and a pull-based metrics registry, both stamped
// and sampled from the simulation clock. Recording is passive — it
// never schedules kernel events of its own — so enabling it does not
// change the simulated outcome (cluster.TestDeterminismByteIdentical
// runs with it on).
type Observe struct {
	// FlightSpans is the span ring capacity: the most recent finished
	// spans are retained for Chrome-trace export, while the per-stage
	// latency histograms cover every span regardless of eviction.
	// 0 disables span recording.
	FlightSpans int
	// MetricsInterval is the registry sampling cadence in virtual time.
	// 0 disables the registry.
	MetricsInterval sim.Time
	// OnResults, when set, receives the Results of each run before
	// Run returns. CLIs use it to capture traces from experiments that
	// construct several clusters internally. Under a parallel sweep the
	// hook fires concurrently from worker goroutines; implementations
	// must be safe for that (cluster code itself never calls it
	// concurrently for one cluster).
	OnResults func(*Results)
	// RunTag is a caller-chosen index copied verbatim into
	// Results.RunTag (excluded from JSON). Experiments tag each
	// internal cluster run with a deterministic sequence number so an
	// OnResults capturer can order artifacts by run, not by completion
	// time, under parallel sweeps.
	RunTag int
}

// DefaultMetricsInterval returns a sampling cadence of 1/100th of the
// QoS period — fine enough to see within-period dynamics, coarse
// enough to keep exports small.
func DefaultMetricsInterval(period sim.Time) sim.Time {
	iv := period / 100
	if iv <= 0 {
		iv = 1
	}
	return iv
}

// setupObserve attaches the flight recorders and metrics registries per
// the config — one of each per shard (a single instance on the
// single-kernel path), so observed sharded runs keep every recorder
// single-writer at any worker count. Called at the end of New, once all
// nodes, engines and generators exist.
func (c *Cluster) setupObserve() error {
	ob := c.cfg.Observe
	if ob == nil {
		return nil
	}
	shardCount := 1
	if c.kernels != nil {
		shardCount = len(c.kernels)
	}
	if ob.FlightSpans > 0 {
		frs := make([]*trace.FlightRecorder, shardCount)
		for s := range frs {
			fr, err := trace.NewShardFlightRecorder(ob.FlightSpans, s)
			if err != nil {
				return err
			}
			frs[s] = fr
		}
		if err := c.fabric.SetFlightRecorders(frs); err != nil {
			return err
		}
		c.flights = frs
	}
	if ob.MetricsInterval > 0 {
		c.registries = make([]*metrics.Registry, shardCount)
		for s := range c.registries {
			c.registries[s] = metrics.NewRegistry()
		}
		if err := c.registerMetrics(); err != nil {
			return err
		}
	}
	return nil
}

// registerMetrics registers the standing gauges: kernel health, every
// node's NIC (and the server's CPU), monitor state, per-engine token
// state, per-client KV and workload progress, and the flight recorder's
// retention counters. Every gauge is registered on its owner's shard
// registry — the gauge reads state only that shard's kernel writes, and
// only that shard's ticker samples it — so sampling is single-writer
// and single-reader per shard at any worker count. Registration order
// is fixed by construction order, so exports are deterministic; the
// merged registry presents per-shard columns plus summed totals for
// names that exist on several shards (metrics.MergeSharded).
func (c *Cluster) registerMetrics() error {
	regFor := func(s int) *metrics.Registry {
		if s < 0 || s >= len(c.registries) {
			s = 0
		}
		return c.registries[s]
	}
	kernels := c.kernels
	if kernels == nil {
		kernels = []*sim.Kernel{c.kernel}
	}
	// Kernel-health gauges: one set per shard, each sampled from its own
	// kernel. The merged export keeps the historical cross-shard sums
	// under the plain names and adds shard<K>/sim/* columns so shard
	// imbalance is visible directly in the CSV.
	for s, k := range kernels {
		k := k
		reg := c.registries[s]
		if err := reg.Register("sim/pending-events", func() float64 { return float64(k.Pending()) }); err != nil {
			return err
		}
		if err := reg.Register("sim/executed-events", func() float64 { return float64(k.Executed()) }); err != nil {
			return err
		}
		if err := reg.Register("sim/cancelled-timers", func() float64 { return float64(k.Cancelled()) }); err != nil {
			return err
		}
	}
	for _, n := range c.fabric.Nodes() {
		reg := regFor(n.Shard())
		nic := n.NIC()
		if err := reg.Register(n.Name()+"/nic/served", func() float64 { return float64(nic.Served()) }); err != nil {
			return err
		}
		if err := reg.Register(n.Name()+"/nic/queue-delay-ns", func() float64 { return float64(nic.QueueDelay()) }); err != nil {
			return err
		}
		if cpu := n.CPU(); cpu != nil {
			if err := reg.Register(n.Name()+"/cpu/served", func() float64 { return float64(cpu.Served()) }); err != nil {
				return err
			}
		}
	}
	if c.monitor != nil {
		reg := regFor(0) // the monitor lives on the data node's shard
		if err := reg.Register("monitor/omega", func() float64 { return float64(c.monitor.Estimator().Current()) }); err != nil {
			return err
		}
		if err := reg.Register("monitor/conversions", func() float64 { return float64(c.monitor.ConversionCount) }); err != nil {
			return err
		}
	}
	for _, rt := range c.clients {
		rt := rt
		reg := regFor(rt.Node.Shard())
		name := rt.Node.Name()
		if rt.Engine != nil {
			if err := reg.Register(name+"/engine/pending", func() float64 { return float64(rt.Engine.Pending()) }); err != nil {
				return err
			}
			if err := reg.Register(name+"/engine/res-tokens", func() float64 { return float64(rt.Engine.ReservationTokens()) }); err != nil {
				return err
			}
			if err := reg.Register(name+"/engine/local-global-tokens", func() float64 { return float64(rt.Engine.LocalGlobalTokens()) }); err != nil {
				return err
			}
		}
		if err := reg.Register(name+"/kv/one-sided-gets", func() float64 { return float64(rt.KV.OneSidedGets()) }); err != nil {
			return err
		}
		if err := reg.Register(name+"/kv/probe-reads", func() float64 { return float64(rt.KV.ProbeReads()) }); err != nil {
			return err
		}
		if err := reg.Register(name+"/workload/inflight", func() float64 { return float64(rt.Gen.Issued() - rt.Gen.Completed()) }); err != nil {
			return err
		}
	}
	for s, fr := range c.flights {
		fr := fr
		reg := regFor(s)
		if err := reg.Register("trace/spans-finished", func() float64 { return float64(fr.Finished()) }); err != nil {
			return err
		}
		if err := reg.Register("trace/spans-dropped", func() float64 { return float64(fr.Dropped()) }); err != nil {
			return err
		}
	}
	return nil
}

// StageLatency is one tenant's latency summary for one pipeline stage,
// the rows of the per-stage breakdown table.
type StageLatency struct {
	Client  string
	Stage   string
	Summary metrics.Summary
}

// stageRows flattens the flight recorder's per-tenant histograms into
// deterministic rows: tenants sorted by name, stages in pipeline order.
func stageRows(fr *trace.FlightRecorder) []StageLatency {
	var out []StageLatency
	for _, st := range fr.Stages() {
		hs := st.Histograms()
		for i, name := range trace.StageNames {
			out = append(out, StageLatency{Client: st.Actor, Stage: name, Summary: hs[i].Summarize()})
		}
	}
	return out
}

// StageBreakdown renders the per-stage latency table: one row per
// tenant, one mean/p99 cell per pipeline stage. Durations are converted
// back to full-scale equivalents (scaled runs inflate virtual time by
// Scale). Returns "" when span recording was off or captured nothing.
func (r *Results) StageBreakdown() string {
	if len(r.Stages) == 0 {
		return ""
	}
	scale := r.Scale
	if scale <= 0 {
		scale = 1
	}
	cell := func(s metrics.Summary) string {
		if s.Count == 0 {
			return "-"
		}
		mean := sim.Time(float64(s.Mean) / scale)
		p99 := sim.Time(float64(s.P99) / scale)
		return fmt.Sprintf("%v/%v", mean, p99)
	}
	cols := len(trace.StageNames) + 1
	header := append([]string{"client"}, trace.StageNames...)
	rows := [][]string{header}
	row := make([]string, 0, cols)
	for _, sl := range r.Stages {
		if len(row) == 0 {
			row = append(row, sl.Client)
		}
		row = append(row, cell(sl.Summary))
		if len(row) == cols {
			rows = append(rows, row)
			row = make([]string, 0, cols)
		}
	}
	widths := make([]int, cols)
	for _, rw := range rows {
		for i, c := range rw {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString("per-stage latency (mean/p99, full-scale equivalent):\n")
	for _, rw := range rows {
		for i, c := range rw {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
