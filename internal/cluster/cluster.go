package cluster

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/haechi-qos/haechi/internal/chaos"
	"github.com/haechi-qos/haechi/internal/core"
	"github.com/haechi-qos/haechi/internal/kvstore"
	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/sanitize"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/sim/shard"
	"github.com/haechi-qos/haechi/internal/trace"
	"github.com/haechi-qos/haechi/internal/workload"
)

// Client is one tenant's runtime state in the cluster.
type Client struct {
	Spec   ClientSpec
	Node   *rdma.Node
	KV     *kvstore.Client
	Gen    *workload.Generator
	Engine *core.Engine // nil in Bare mode

	// Periods logs completions per period inside the measure window.
	Periods metrics.PeriodLog
	// Timeline records (period start time, completions) for every period
	// from t=0, for the paper's timeline figures.
	Timeline metrics.Series

	measuring  bool
	skipNext   bool
	lastPeriod int

	// Per measured-period bookkeeping parallel to Periods: the absolute
	// period number each entry closed and its real [from, to] span.
	// Monitor outages stretch a period's wall time, so fault reporting
	// must not reconstruct these from index arithmetic.
	periodIdx     []int
	periodFrom    []sim.Time
	periodTo      []sim.Time
	lastHarvestAt sim.Time
}

// Cluster is the assembled testbed.
type Cluster struct {
	cfg     Config
	kernel  *sim.Kernel
	fabric  *rdma.Fabric
	server  *rdma.Node
	store   *kvstore.Store
	monitor *core.Monitor // nil in Bare mode
	clients []*Client

	// Sharded mode (Config.Shards > 1): kernels[s] drives shard s
	// (kernels[0] == kernel) and group is the quantum coordinator.
	// Both nil on the classic single-kernel path.
	kernels []*sim.Kernel
	group   *shard.Group

	bareTicker  *sim.Ticker
	barePeriod  int
	bgJobs      map[string]*rdma.BackgroundJob
	serverStat0 rdma.Stats

	// flights and registries are the observability layer (nil unless
	// cfg.Observe enables them): one flight recorder and one metrics
	// registry per shard (a single entry on the single-kernel path).
	// Each instance is stamped or sampled only from its own shard's
	// kernel — single-writer by construction, like the sanitizer's
	// per-shard checkers — and they merge deterministically into
	// Results at run end; see observe.go and DESIGN.md §11.
	flights    []*trace.FlightRecorder
	registries []*metrics.Registry

	// san holds one invariant checker per shard (one entry total on the
	// single-kernel path), nil unless cfg.Sanitize. Per-shard checkers
	// keep the sanitizer lock-free: shards run concurrently but each
	// checker is only touched by its own shard's events, and the
	// checkers merge in shard order after the run.
	san []*sanitize.Checker

	// sharedKeys is the default scrambled-zipfian chooser, built once and
	// shared by every client that does not bring its own: Next is a pure
	// function of the caller's RNG, so one chooser serves 10^6 tenants
	// (each holds its own rand.Rand) instead of 10^6 identical zeta tables.
	sharedKeys *workload.ScrambledZipfian

	// chaos is the compiled fault scenario (nil unless cfg.Chaos);
	// warmupPeriods and runStart are stashed at Run time so fault
	// reporting can map measured-period indices back to absolute period
	// numbers and resolve scenario event times to absolute instants.
	chaos         *chaos.Scenario
	warmupPeriods int
	runStart      sim.Time
}

// New assembles a cluster for the given tenant specs. In QoS modes every
// client passes admission control before its engine is created.
func New(cfg Config, specs []ClientSpec) (*Cluster, error) {
	cfg, err := cfg.ApplyScale()
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: at least one client spec required")
	}
	if cfg.Params.MaxClients < len(specs) {
		// Fleet runs exceed the default report-table width; the table is
		// sized per admitted client, so growing it does not perturb timing.
		cfg.Params.MaxClients = len(specs)
	}
	k := sim.New(cfg.Seed)
	fabric, err := rdma.NewFabric(k, cfg.Fabric)
	if err != nil {
		return nil, err
	}
	var kernels []*sim.Kernel
	var group *shard.Group
	if shards := cfg.Shards; shards > 1 {
		// Every shard needs at least one node: shard 0 is the data node's,
		// the rest split the clients round-robin.
		if shards > len(specs)+1 {
			shards = len(specs) + 1
		}
		kernels = make([]*sim.Kernel, shards)
		kernels[0] = k
		for s := 1; s < shards; s++ {
			// Distinct deterministic per-shard seeds; shard 0 keeps the
			// config seed so its RNG stream matches the unsharded kernel's.
			kernels[s] = sim.New(cfg.Seed + int64(s)*1_000_003)
		}
		group, err = shard.New(kernels, cfg.Fabric.PropagationDelay, cfg.ShardWorkers)
		if err != nil {
			return nil, err
		}
		assign := func(name string, kind rdma.NodeKind) int {
			// Background initiators ("bg/…") inject at the data node's
			// scheduler directly and must share its kernel.
			if kind == rdma.ServerNode || strings.HasPrefix(name, "bg/") {
				return 0
			}
			// Hash the stable node name, not insertion order: a client must
			// land on the same shard regardless of the order tenants were
			// declared in, or re-ordering a spec list silently reshuffles
			// every placement (and with it the per-shard event streams).
			return 1 + int(fnv32(name)%uint32(shards-1))
		}
		if err := fabric.EnableSharding(kernels, assign, group.Post); err != nil {
			return nil, err
		}
	}
	server, err := fabric.AddServer("datanode")
	if err != nil {
		return nil, err
	}
	serverDisp := rdma.NewDispatcher(server)
	store, err := kvstore.NewStore(server, serverDisp, cfg.Store)
	if err != nil {
		return nil, err
	}
	if cfg.Records > cfg.Store.Capacity {
		return nil, fmt.Errorf("cluster: %d records exceed store capacity %d", cfg.Records, cfg.Store.Capacity)
	}
	if err := store.Populate(cfg.Records, recordValue); err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg:     cfg,
		kernel:  k,
		fabric:  fabric,
		server:  server,
		store:   store,
		bgJobs:  make(map[string]*rdma.BackgroundJob),
		kernels: kernels,
		group:   group,
	}

	if cfg.Sanitize {
		ks := kernels
		if ks == nil {
			ks = []*sim.Kernel{k}
		}
		c.san = make([]*sanitize.Checker, len(ks))
		for s, sk := range ks {
			c.san[s] = sanitize.New()
			armEventOrder(sk, s, c.san[s])
		}
		if group != nil {
			// inject runs on the coordinating goroutine between quanta;
			// the pool barrier orders it against shard 0's quantum work.
			group.SetSanitizer(c.san[0])
		}
	}

	if cfg.Chaos != "" {
		sc, err := chaos.Parse(cfg.Chaos)
		if err != nil {
			return nil, err
		}
		if err := sc.Validate(len(specs), cfg.Mode != Bare); err != nil {
			return nil, err
		}
		c.chaos = sc
		if sc.Count().Crashes > 0 && cfg.FailureGrace == 0 {
			// Crash injection needs failure detection or the crashed
			// reservation stays stranded; default to the shortest grace
			// that tolerates one missed end-of-period report.
			cfg.FailureGrace = 2
			c.cfg.FailureGrace = 2
		}
	}

	if cfg.Mode != Bare {
		est, err := core.NewCapacityEstimator(cfg.Params, cfg.ProfiledCapacity, cfg.Sigma)
		if err != nil {
			return nil, err
		}
		adm, err := core.NewAdmissionController(cfg.ProfiledCapacity, cfg.LocalCapacityPerPeriod())
		if err != nil {
			return nil, err
		}
		var opts []core.MonitorOption
		if cfg.Mode == BasicHaechi {
			opts = append(opts, core.WithoutConversion())
		}
		if cfg.AlertAfter > 0 {
			opts = append(opts, core.WithAlertAfter(cfg.AlertAfter))
		}
		if cfg.FailureGrace > 0 {
			opts = append(opts, core.WithFailureDetection(cfg.FailureGrace))
		}
		c.monitor, err = core.NewMonitor(cfg.Params, server, est, adm, opts...)
		if err != nil {
			return nil, err
		}
		c.monitor.SetSanitizer(c.sanFor(0))
	}

	for i, spec := range specs {
		if err := c.addClient(i, spec); err != nil {
			return nil, fmt.Errorf("cluster: client %d: %w", i, err)
		}
	}
	if c.san != nil {
		// After the nodes exist: the fabric's structural checks (QP-cache
		// occupancy among them) attach per shard like every other checker.
		if err := fabric.SetSanitizers(c.san); err != nil {
			return nil, err
		}
	}
	if err := c.setupObserve(); err != nil {
		return nil, err
	}
	return c, nil
}

// recordValue deterministically fills a record from its key.
func recordValue(key uint64) []byte {
	v := make([]byte, rdma.DataIOSize)
	for i := 0; i < 8; i++ {
		v[i] = byte(key >> (8 * i))
	}
	return v
}

func (c *Cluster) addClient(i int, spec ClientSpec) error {
	node, err := c.fabric.AddClient(fmt.Sprintf("client-%02d", i))
	if err != nil {
		return err
	}
	disp := rdma.NewDispatcher(node)
	kv, err := kvstore.Attach(node, disp, c.store)
	if err != nil {
		return err
	}
	kv.PrimeCache(c.cfg.Records) // steady-state location cache (post warm-up)

	rt := &Client{Spec: spec, Node: node, KV: kv}
	rt.Timeline.Name = fmt.Sprintf("client-%02d", i)

	if spec.Keys == nil {
		if c.sharedKeys == nil {
			n := uint64(c.cfg.Records)
			if n == 0 {
				n = 1
			}
			z, err := workload.NewScrambledZipfian(n)
			if err != nil {
				return err
			}
			c.sharedKeys = z
		}
		rt.Spec.Keys = c.sharedKeys
	}
	if rt.Spec.Demand == nil {
		rt.Spec.Demand = UnlimitedDemand()
	}
	if rt.Spec.Pattern == nil {
		// Finite demand defaults to the paper's QoS-experiment form
		// (whole demand at period start); unlimited demand uses the
		// closed-loop window of the profiling experiments — posting an
		// unbounded demand up front is meaningless.
		if rt.Spec.Demand(1) >= workload.InfiniteDemand {
			rt.Spec.Pattern = workload.Burst{Window: 64}
		} else {
			rt.Spec.Pattern = workload.Burst{}
		}
	}
	if _, isPostAll := rt.Spec.Pattern.(workload.Burst); isPostAll &&
		rt.Spec.Pattern.(workload.Burst).Window <= 0 && rt.Spec.Demand(1) >= workload.InfiniteDemand {
		return fmt.Errorf("unlimited demand cannot use the post-all burst pattern; set Burst{Window: n}")
	}

	// The data path: one-sided GET (or two-sided RPC for the comparison
	// curves), with a fraction of one-sided record WRITEs when the spec
	// requests a YCSB-style update mix. The per-client adapter queues the
	// done callback and hands kv a completion method bound once, so a
	// steady-state I/O allocates no closure. Update state is lazy: a pure
	// GET tenant (the fleet default) carries no per-client RNG or value
	// buffer.
	ad := &ioAdapter{}
	ad.onGetFn = func([]byte, error) { ad.complete() }
	ad.onPutFn = func(error) { ad.complete() }
	var rng *rand.Rand
	var updateValue []byte
	if spec.UpdateFraction > 0 {
		rng = rand.New(rand.NewSource(c.cfg.Seed ^ int64(i)<<17))
		updateValue = make([]byte, c.cfg.Store.RecordSize)
	}
	sender := func(key uint64, done func()) {
		ad.push(done)
		var err error
		switch {
		case c.cfg.TwoSided:
			err = kv.GetTwoSided(key, ad.onGetFn)
		case updateValue != nil && rng.Float64() < spec.UpdateFraction:
			updateValue[0] = byte(key)
			err = kv.Update(key, updateValue, ad.onPutFn)
		default:
			err = kv.Get(key, ad.onGetFn)
		}
		if err != nil {
			// The kv layer never invokes the callback when it returns an
			// error, so the just-pushed done is still the newest entry.
			// Dropping it preserves the old behaviour (errors cannot occur
			// for primed in-range keys).
			ad.unpush()
		}
	}

	var submit workload.Submit
	if c.cfg.Mode == Bare {
		submit = sender
	} else {
		grant, err := c.monitor.Admit(node, spec.Reservation)
		if err != nil {
			return err
		}
		engine, err := core.NewEngine(c.cfg.Params, grant, node, disp, spec.Limit, core.IOSender(sender))
		if err != nil {
			return err
		}
		rt.Engine = engine
		engine.SetSanitizer(c.sanFor(node.Shard()))
		submit = engine.Request
	}

	// The generator lives on the client's own kernel so sharded runs keep
	// each tenant's RNG stream and period events on its shard.
	gen, err := workload.NewGenerator(node.Kernel(), c.cfg.Seed+int64(i)*7919, rt.Spec.Keys, rt.Spec.Pattern, c.cfg.Params.Period, submit)
	if err != nil {
		return err
	}
	rt.Gen = gen

	onPeriod := func(period int) {
		c.harvest(rt, period)
		rt.Gen.BeginPeriod(rt.Spec.Demand(period))
	}
	if c.cfg.Mode == Bare {
		rt.lastPeriod = 0 // driven by the cluster's bare ticker
	} else {
		rt.Engine.OnPeriodStart = onPeriod
	}
	c.clients = append(c.clients, rt)
	return nil
}

// harvest folds the previous period's completions into the client's logs.
func (c *Cluster) harvest(rt *Client, period int) {
	now := rt.Node.Kernel().Now()
	if period <= 1 {
		rt.lastPeriod = period
		rt.lastHarvestAt = now
		return
	}
	done := rt.Gen.TakePeriodCompleted()
	rt.Timeline.Add(now, float64(done))
	if rt.measuring {
		if rt.skipNext {
			rt.skipNext = false
		} else {
			rt.Periods.Observe(done)
			rt.periodIdx = append(rt.periodIdx, period-1)
			rt.periodFrom = append(rt.periodFrom, rt.lastHarvestAt)
			rt.periodTo = append(rt.periodTo, now)
		}
	}
	rt.lastPeriod = period
	rt.lastHarvestAt = now
}

// Kernel exposes the simulation kernel (for scheduling experiment events
// such as congestion onset).
func (c *Cluster) Kernel() *sim.Kernel { return c.kernel }

// Fabric exposes the fabric.
func (c *Cluster) Fabric() *rdma.Fabric { return c.fabric }

// Server returns the data node.
func (c *Cluster) Server() *rdma.Node { return c.server }

// Store returns the KV store.
func (c *Cluster) Store() *kvstore.Store { return c.store }

// Monitor returns the QoS monitor (nil in Bare mode).
func (c *Cluster) Monitor() *core.Monitor { return c.monitor }

// Clients returns the tenants.
func (c *Cluster) Clients() []*Client { return c.clients }

// Config returns the normalized configuration.
func (c *Cluster) Config() Config { return c.cfg }

// AddBackgroundJob registers a named closed-loop background load against
// the data node (stopped; schedule Start/Stop with At).
func (c *Cluster) AddBackgroundJob(name string, window int) (*rdma.BackgroundJob, error) {
	if _, ok := c.bgJobs[name]; ok {
		return nil, fmt.Errorf("cluster: background job %q exists", name)
	}
	job, err := rdma.NewBackgroundJob(c.fabric, name, c.server, window)
	if err != nil {
		return nil, err
	}
	// Background initiators share the data node's shard (see New).
	job.SetSanitizer(c.sanFor(0))
	c.bgJobs[name] = job
	return job, nil
}

// sanFor returns shard s's invariant checker, or nil when sanitizing is
// off (component hooks treat nil as disabled).
func (c *Cluster) sanFor(s int) *sanitize.Checker {
	if c.san == nil {
		return nil
	}
	if s < 0 || s >= len(c.san) {
		s = 0
	}
	return c.san[s]
}

// sanErr merges the per-shard checkers in shard order and summarizes
// any violations; nil when sanitizing is off or the run was clean.
func (c *Cluster) sanErr() error {
	if c.san == nil {
		return nil
	}
	return sanitize.Merge(c.san...).Err()
}

// SanitizeViolations returns the invariant violations recorded so far
// (shard order), empty when sanitizing is off or the run was clean.
func (c *Cluster) SanitizeViolations() []sanitize.Violation {
	if c.san == nil {
		return nil
	}
	return sanitize.Merge(c.san...).Violations()
}

// armEventOrder installs the (at, seq) monotonicity probe on one shard
// kernel: the timing wheel must pop events in strictly increasing
// lexicographic order. The closure owns its own state (one probe per
// kernel) and builds no arguments unless the invariant breaks.
func armEventOrder(k *sim.Kernel, shard int, san *sanitize.Checker) {
	var seen bool
	var lastAt sim.Time
	var lastSeq uint64
	k.SetEventCheck(func(at sim.Time, seq uint64) {
		if seen && (at < lastAt || (at == lastAt && seq <= lastSeq)) {
			san.Reportf("kernel-order", int64(at),
				"shard %d: event (at=%v, seq=%d) fired after (at=%v, seq=%d)",
				shard, at, seq, lastAt, lastSeq)
		}
		seen = true
		lastAt, lastSeq = at, seq
	})
}

// At schedules fn at absolute virtual time t (e.g. congestion onset).
// In a sharded run this is shard 0's kernel — correct for the usual
// experiment events (background-job start/stop touches the data node's
// shard only); fn must not mutate client-shard state.
func (c *Cluster) At(t sim.Time, fn func()) { c.kernel.At(t, fn) }

// FlightRecorder returns the per-I/O span recorder, nil unless enabled
// via Config.Observe. In a sharded run the per-shard recorders are
// merged on each call (deterministically; see trace.MergeFlightRecorders),
// so read it after Run, not per quantum.
func (c *Cluster) FlightRecorder() *trace.FlightRecorder {
	if c.flights == nil {
		return nil
	}
	return trace.MergeFlightRecorders(c.flights...)
}

// Metrics returns the sampled metrics registry, nil unless enabled via
// Config.Observe. In a sharded run the per-shard registries are merged
// on each call; read it after Run, when every shard has sampled the
// same instants.
func (c *Cluster) Metrics() *metrics.Registry {
	if c.registries == nil {
		return nil
	}
	m, err := metrics.MergeSharded(c.registries)
	if err != nil {
		// Shard sample timelines can only diverge mid-quantum; after Run
		// they coincide by construction (identical tickers, one horizon).
		return nil
	}
	return m
}

// EnableTrace attaches a shared protocol-event recorder (ring of the
// given capacity) to the monitor and every engine, and returns it. QoS
// modes only, and unsharded only: the recorder is one ring shared by
// writers on every shard, which the sharded worker pool cannot drive
// without races (the public haechi.go API never shards, so this never
// constrains it).
func (c *Cluster) EnableTrace(capacity int) (*trace.Recorder, error) {
	if c.monitor == nil {
		return nil, fmt.Errorf("cluster: tracing requires a QoS mode")
	}
	if c.group != nil {
		return nil, fmt.Errorf("cluster: the protocol-event recorder is shared across engines and unsupported in sharded runs; use Observe span recording instead")
	}
	rec, err := trace.NewRecorder(capacity)
	if err != nil {
		return nil, err
	}
	c.monitor.Trace = rec
	for _, rt := range c.clients {
		if rt.Engine != nil {
			rt.Engine.Trace = rec
		}
	}
	return rec, nil
}

// ioAdapter bridges one client's kv completions back to workload done
// callbacks without a per-I/O closure. All of a client's data I/Os ride
// one QP in one service class (GETs and record WRITEs are both bulk;
// two-sided responses are served FIFO by the server CPU), so completions
// arrive in issue order and the oldest pending done always matches.
type ioAdapter struct {
	pending []func()
	head    int
	onGetFn func([]byte, error)
	onPutFn func(error)
}

func (a *ioAdapter) push(done func()) { a.pending = append(a.pending, done) }

// unpush removes the most recently pushed entry (issue-error path only).
func (a *ioAdapter) unpush() { a.pending = a.pending[:len(a.pending)-1] }

func (a *ioAdapter) complete() {
	done := a.pending[a.head]
	a.pending[a.head] = nil
	a.head++
	if a.head >= len(a.pending) {
		a.pending = a.pending[:0]
		a.head = 0
	} else if a.head > 64 && a.head*2 > len(a.pending) {
		n := copy(a.pending, a.pending[a.head:])
		a.pending = a.pending[:n]
		a.head = 0
	}
	done()
}

// fnv32 is FNV-1a over the node name, used for stable shard placement.
func fnv32(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h
}
