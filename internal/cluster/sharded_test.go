package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/trace"
	"github.com/haechi-qos/haechi/internal/workload"
)

// shardedRun executes a figure-scale Haechi experiment sharded onto
// per-node kernels and returns the fully serialized Results.
func shardedRun(t *testing.T, mode Mode, shards, workers int) []byte {
	t.Helper()
	specs := make([]ClientSpec, 6)
	for i := range specs {
		specs[i] = ClientSpec{
			Reservation:    1200,
			Demand:         ConstantDemand(1500),
			UpdateFraction: 0.05,
		}
	}
	// One open-loop random-arrival client to exercise the RNG paths.
	specs[5].Pattern = workload.Poisson{}
	cfg := testConfig(mode)
	if mode == Bare {
		for i := range specs {
			specs[i].Reservation = 0
		}
	}
	cfg.Seed = 42
	cfg.Shards = shards
	cfg.ShardWorkers = workers
	cl, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedKernelByteIdentical is the sharded kernel's core
// acceptance property: the worker count is pure concurrency. A
// figure-scale run sharded across 3 kernels must serialize to
// byte-identical Results whether the quanta execute inline (1 worker)
// or on a pool wider than the shard count (8 workers) — every period
// count, latency percentile, timeline point, overhead counter, and the
// ShardingReport itself.
func TestShardedKernelByteIdentical(t *testing.T) {
	base := shardedRun(t, Haechi, 3, 1)
	for _, workers := range []int{2, 8} {
		got := shardedRun(t, Haechi, 3, workers)
		if !bytes.Equal(base, got) {
			t.Errorf("workers=%d diverged from workers=1", workers)
			reportDivergence(t, base, got)
		}
	}
}

// TestShardedKernelByteIdenticalBare covers the bare path, whose period
// boundaries are driven by per-shard tickers instead of QoS engines.
func TestShardedKernelByteIdenticalBare(t *testing.T) {
	base := shardedRun(t, Bare, 3, 1)
	got := shardedRun(t, Bare, 3, 4)
	if !bytes.Equal(base, got) {
		reportDivergence(t, base, got)
	}
}

// TestShardedRunRepeatable pins the sharded path's seed determinism:
// two identical sharded runs serialize byte-identically, exactly like
// TestDeterminismByteIdentical does for the single-kernel path.
func TestShardedRunRepeatable(t *testing.T) {
	a := shardedRun(t, Haechi, 3, 2)
	b := shardedRun(t, Haechi, 3, 2)
	if !bytes.Equal(a, b) {
		reportDivergence(t, a, b)
	}
}

// TestShardedReportShape sanity-checks the ShardingReport: shard count
// clamped to clients+1, the data node and "bg/" initiators on shard 0,
// clients round-robin across the rest, and events conserved (the
// per-shard counts sum to EventsExecuted).
func TestShardedReportShape(t *testing.T) {
	specs := make([]ClientSpec, 4)
	for i := range specs {
		specs[i] = ClientSpec{Reservation: 1200, Demand: ConstantDemand(1500)}
	}
	cfg := testConfig(Haechi)
	cfg.Seed = 9
	cfg.Shards = 64 // clamps to 5
	cl, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AddBackgroundJob("noise", 8); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Sharding
	if sr == nil {
		t.Fatal("sharded run produced no ShardingReport")
	}
	if sr.Shards != len(specs)+1 {
		t.Errorf("Shards = %d, want %d (clamped)", sr.Shards, len(specs)+1)
	}
	if sr.Quanta == 0 || sr.CrossMessages == 0 {
		t.Errorf("expected nonzero quanta (%d) and cross messages (%d)", sr.Quanta, sr.CrossMessages)
	}
	if len(sr.PerShardEvents) != sr.Shards || len(sr.IdleQuanta) != sr.Shards {
		t.Fatalf("per-shard slices sized %d/%d, want %d",
			len(sr.PerShardEvents), len(sr.IdleQuanta), sr.Shards)
	}
	var sum uint64
	for _, n := range sr.PerShardEvents {
		sum += n
	}
	if sum != res.EventsExecuted {
		t.Errorf("per-shard events sum %d != EventsExecuted %d", sum, res.EventsExecuted)
	}
	if sr.Nodes[0].Name != "datanode" || sr.Nodes[0].Shard != 0 {
		t.Errorf("data node assignment = %+v, want shard 0", sr.Nodes[0])
	}
	for i, na := range sr.Nodes[1:] {
		want := 1 + int(fnv32(na.Name)%uint32(sr.Shards-1))
		if na.Shard != want {
			t.Errorf("client %d on shard %d, want %d (stable-ID hash)", i, na.Shard, want)
		}
	}
	// Attribution: one profile per shard, summing to Results.Attribution,
	// with the work the run must have done actually counted.
	if len(sr.Attribution) != sr.Shards {
		t.Fatalf("Attribution has %d profiles, want %d", len(sr.Attribution), sr.Shards)
	}
	var prof rdma.ExecProfile
	for i := range sr.Attribution {
		prof.Add(&sr.Attribution[i])
	}
	if prof != res.Attribution {
		t.Errorf("per-shard attribution sums to %+v, Results.Attribution = %+v", prof, res.Attribution)
	}
	if res.Attribution.Reads == 0 || res.Attribution.FetchAdds == 0 ||
		res.Attribution.SchedDispatches == 0 || res.Attribution.Deliveries == 0 {
		t.Errorf("attribution missing expected work: %+v", res.Attribution)
	}
}

// observedShardedRun executes a figure-scale observed+sanitized sharded
// run and returns the serialized Results, the exported Chrome trace
// bytes, and the exported metrics CSV bytes.
func observedShardedRun(t *testing.T, shards, workers int) (resJSON, traceB, csvB []byte) {
	t.Helper()
	specs := make([]ClientSpec, 6)
	for i := range specs {
		specs[i] = ClientSpec{
			Reservation:    1200,
			Demand:         ConstantDemand(1500),
			UpdateFraction: 0.05,
		}
	}
	specs[5].Pattern = workload.Poisson{}
	cfg := testConfig(Haechi)
	cfg.Seed = 42
	cfg.Shards = shards
	cfg.ShardWorkers = workers
	cfg.Sanitize = true
	cfg.Observe = &Observe{
		FlightSpans:     2048,
		MetricsInterval: DefaultMetricsInterval(cfg.Params.Period),
	}
	cl, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	resJSON, err = json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := trace.WriteChromeTrace(&tb, res.Flight, nil); err != nil {
		t.Fatal(err)
	}
	var cb bytes.Buffer
	if err := res.Metrics.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	return resJSON, tb.Bytes(), cb.Bytes()
}

// TestObservedShardedByteIdentical is the tentpole property of
// shard-parallel observability (and the former clamp's replacement,
// TestShardedObserveForcesSequential): an observed, sanitized, sharded
// run must produce byte-identical Results, Chrome trace, and metrics
// CSV at any worker count. Per-shard recorders are single-writer by
// construction and merge in shard order after the run, so the exports —
// not just the Results — carry no trace of how many workers drove the
// quanta.
func TestObservedShardedByteIdentical(t *testing.T) {
	baseRes, baseTrace, baseCSV := observedShardedRun(t, 4, 1)
	if !bytes.Contains(baseTrace, []byte("shard-1")) {
		t.Error("sharded Chrome trace has no shard-1 process track")
	}
	if !bytes.Contains(baseCSV, []byte("shard1/sim/pending-events")) {
		t.Error("merged metrics CSV has no per-shard sim/ column")
	}
	if !bytes.Contains(baseCSV, []byte(",trace/spans-dropped")) {
		t.Error("merged metrics CSV has no trace/spans-dropped column")
	}
	for _, workers := range []int{2, 8} {
		res, traceB, csvB := observedShardedRun(t, 4, workers)
		if !bytes.Equal(baseRes, res) {
			t.Errorf("workers=%d: Results diverged from workers=1", workers)
			reportDivergence(t, baseRes, res)
		}
		if !bytes.Equal(baseTrace, traceB) {
			t.Errorf("workers=%d: Chrome trace diverged from workers=1", workers)
			reportDivergence(t, baseTrace, traceB)
		}
		if !bytes.Equal(baseCSV, csvB) {
			t.Errorf("workers=%d: metrics CSV diverged from workers=1", workers)
			reportDivergence(t, baseCSV, csvB)
		}
	}
}
