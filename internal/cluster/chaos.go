package cluster

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/chaos"
	"github.com/haechi-qos/haechi/internal/core"
	"github.com/haechi-qos/haechi/internal/sim"
)

// armChaos pre-schedules the compiled fault scenario's injections, each
// on the kernel that owns the faulted component: engine crashes,
// restarts and client-NIC degradations on that client's shard kernel;
// monitor outages, data-node NIC degradations and congestion bursts on
// shard 0 (the data node's); link storms arm windows inside the fabric
// itself. Everything is scheduled before the run starts, so the
// injection instants are part of the deterministic event order, and the
// faults' cross-shard *effects* (a recovery heartbeat WRITE, a
// reinstated token push) travel the ordinary RDMA mailbox paths with the
// usual lookahead — a chaos run needs no new synchronization.
func (c *Cluster) armChaos(start sim.Time) error {
	sc := c.chaos
	if sc == nil {
		return nil
	}
	c.runStart = start
	T := c.cfg.Params.Period
	at := func(p float64) sim.Time { return start + sim.Time(p*float64(T)) }
	for i, ev := range sc.Events {
		switch ev.Kind {
		case chaos.CrashClient:
			eng := c.clients[ev.Client].Engine
			c.clients[ev.Client].Node.Kernel().At(at(ev.At), eng.Crash)
		case chaos.RestartClient:
			eng := c.clients[ev.Client].Engine
			c.clients[ev.Client].Node.Kernel().At(at(ev.At), func() { _ = eng.Restart() })
		case chaos.MonitorOutage:
			d := sim.Time(ev.Duration * float64(T))
			c.kernel.At(at(ev.At), func() { c.monitor.Outage(d) })
		case chaos.DegradeNIC:
			node := c.server
			if ev.Client >= 0 {
				node = c.clients[ev.Client].Node
			}
			st := node.NIC()
			k := node.Kernel()
			d := sim.Time(ev.Duration * float64(T))
			factor := ev.Factor
			k.At(at(ev.At), func() {
				base := st.Rate()
				_ = st.SetRate(base / factor)
				k.Schedule(d, func() { _ = st.SetRate(base) })
			})
		case chaos.LinkStorm:
			if err := c.fabric.AddLinkStorm(at(ev.At), at(ev.At+ev.Duration), ev.Extra); err != nil {
				return err
			}
		case chaos.CongestionBurst:
			for j := 0; j < ev.Jobs; j++ {
				job, err := c.AddBackgroundJob(fmt.Sprintf("chaos-%02d-%02d", i, j), ev.Window)
				if err != nil {
					return err
				}
				c.kernel.At(at(ev.At), job.Start)
				c.kernel.At(at(ev.At+ev.Duration), job.Stop)
			}
		}
	}
	return nil
}

// MissWindow is one measured period in which a client completed fewer
// I/Os than its reservation. Excused windows are those the scenario
// accounts for (the client was crashed, or a whole-path disturbance —
// NIC degradation, link storm, congestion burst — overlapped the
// period); an unexcused miss violates the reservation-floor-survivor
// invariant.
type MissWindow struct {
	// Period is the absolute 1-based period number.
	Period int
	// Completed and Reservation are the period's count and the floor.
	Completed   uint64
	Reservation int64
	// Excused reports whether the scenario excuses the miss.
	Excused bool
}

// ClientFaults is one client's fault and recovery accounting.
type ClientFaults struct {
	Index int
	// Crashes/Restarts count injected transitions; the At fields are the
	// most recent transition instants (0 = never).
	Crashes   int
	Restarts  int
	CrashAt   sim.Time
	RestartAt sim.Time
	// SuspectedAt/ReinstatedAt are the monitor's failure-detection
	// instants for this client (0 = never). ReclamationLatency is
	// SuspectedAt-CrashAt: how long the crashed reservation stayed
	// unreclaimed.
	SuspectedAt        sim.Time
	ReinstatedAt       sim.Time
	ReclamationLatency sim.Time
	// RejoinPeriod is the period in which the restarted engine received
	// its first post-restart token push; RejoinAt its instant.
	RejoinPeriod int
	RejoinAt     sim.Time
	// QuarantineReleased counts crash-quarantined tokens released back
	// through period rollover; QuarantinedRes/Global are tokens still
	// held at run end (a run that ends mid-crash).
	QuarantineReleased int64
	QuarantinedRes     int64
	QuarantinedGlobal  int64
	// PostCrashCompletions counts completions delivered while crashed
	// (legal up to the crash-time in-flight window).
	PostCrashCompletions int64
	// Degraded* account local-token mode during monitor outages.
	DegradedSpells int
	DegradedTime   sim.Time
	DegradedProbes uint64
	// MissWindows lists measured periods below the reservation floor.
	MissWindows []MissWindow `json:",omitempty"`
}

// FaultReport is Results.Faults: the run's injection and recovery
// accounting. Every field is deterministic (part of the byte-identity
// surface).
type FaultReport struct {
	// Scenario is the compiled scenario in canonical grammar form;
	// ScenarioName the preset name ("custom" for inline specs).
	Scenario     string
	ScenarioName string
	// Injected tallies scheduled fault events by kind.
	Injected chaos.Counts
	// MonitorOutages/MonitorOutageTime aggregate completed outage
	// windows; Suspicions/Recoveries are the monitor's failure-detection
	// counters over the whole run.
	MonitorOutages    int
	MonitorOutageTime sim.Time
	Suspicions        uint64
	Recoveries        uint64
	// Clients is the per-client accounting, in client index order.
	Clients []ClientFaults
}

// buildFaults assembles the FaultReport after the run. Runs
// single-threaded (the shard group, if any, is closed), so reading every
// shard's engine state is safe.
func (c *Cluster) buildFaults() *FaultReport {
	sc := c.chaos
	fr := &FaultReport{
		Scenario:     sc.String(),
		ScenarioName: sc.Name,
		Injected:     sc.Count(),
	}
	if c.monitor != nil {
		n, ns := c.monitor.OutageStats()
		fr.MonitorOutages = n
		fr.MonitorOutageTime = sim.Time(ns)
		fr.Suspicions = c.monitor.FailureSuspicions
		fr.Recoveries = c.monitor.FailureRecoveries
	}
	for i, rt := range c.clients {
		cf := ClientFaults{Index: i}
		if rt.Engine != nil {
			fs := rt.Engine.FaultStats()
			cf.Crashes = fs.Crashes
			cf.Restarts = fs.Restarts
			cf.CrashAt = fs.CrashAt
			cf.RestartAt = fs.RestartAt
			cf.RejoinPeriod = fs.RejoinIndex
			cf.RejoinAt = fs.RejoinAt
			cf.QuarantineReleased = fs.QuarantineReleased
			cf.QuarantinedRes = fs.QuarantinedRes
			cf.QuarantinedGlobal = fs.QuarantinedGlobal
			cf.PostCrashCompletions = fs.PostCrashDone
			cf.DegradedSpells = fs.DegradedSpells
			cf.DegradedTime = sim.Time(fs.DegradedNs)
			cf.DegradedProbes = fs.DegradedProbes
			if c.monitor != nil {
				cf.SuspectedAt = c.monitor.SuspectedAt(i)
				cf.ReinstatedAt = c.monitor.ReinstatedAt(i)
				if cf.SuspectedAt > cf.CrashAt && cf.CrashAt > 0 {
					cf.ReclamationLatency = cf.SuspectedAt - cf.CrashAt
				}
			}
			cf.MissWindows = c.missWindows(rt, fs)
		}
		fr.Clients = append(fr.Clients, cf)
	}
	return fr
}

// missWindows scans a client's measured periods for completions below
// the reservation and classifies each miss as excused or not. Each
// measured entry carries the absolute period number and real wall span
// recorded at harvest time (see Cluster.harvest) — monitor outages pause
// rollovers and crashed clients skip harvests entirely, so the spans
// cannot be reconstructed from index arithmetic. Excuse checks compare
// those spans against absolute fault windows.
func (c *Cluster) missWindows(rt *Client, fs core.FaultStats) []MissWindow {
	R := rt.Spec.Reservation
	if R <= 0 {
		return nil
	}
	T := c.cfg.Params.Period
	var out []MissWindow
	for j, done := range rt.Periods.Completed {
		if int64(done) >= R {
			continue
		}
		// Fall back to index arithmetic only if spans were not recorded
		// (never the case for chaos runs, which always pass harvest).
		p := c.warmupPeriods + 1 + j
		from := c.runStart + sim.Time(p-1)*T
		to := from + T
		if j < len(rt.periodIdx) {
			p = rt.periodIdx[j]
			from = rt.periodFrom[j]
			to = rt.periodTo[j]
		}
		mw := MissWindow{Period: p, Completed: done, Reservation: R}
		switch {
		case rt.Spec.Demand(p) < uint64(R):
			// The client did not ask for its floor this period.
			mw.Excused = true
		case crashExcuses(fs, from, to, T):
			mw.Excused = true
		case c.chaos.ExcusesSpan(rt.Engine.ID(), from, to, c.runStart, T):
			mw.Excused = true
		}
		out = append(out, mw)
	}
	return out
}

// crashExcuses reports whether the client's own crash window overlaps
// the measured span [from, to]: from the crash instant through one full
// period past the rejoin (the rejoin period starts with no carried
// tokens), or open-ended if the engine never rejoined (its reservation
// was reclaimed for good). Tracks the most recent crash only — scenarios
// that crash one client repeatedly should space the cycles apart.
func crashExcuses(fs core.FaultStats, from, to, T sim.Time) bool {
	if fs.Crashes == 0 {
		return false
	}
	if to <= fs.CrashAt {
		return false // span ended before the crash
	}
	if fs.RejoinAt == 0 || fs.RejoinAt < fs.CrashAt {
		return true // never rejoined after the most recent crash
	}
	return from <= fs.RejoinAt+T
}

// checkChaosInvariants enforces the post-run failure-aware invariant:
// every unexcused reservation miss in Results.Faults is a
// reservation-floor-survivor violation — surviving clients keep their
// floor through monitor outages and peer crashes, because reservation
// tokens are pushed ahead of each period and the one-sided data path
// never needs the monitor mid-period. Runs single-threaded after the
// run; reports to shard 0's checker.
func (c *Cluster) checkChaosInvariants(res *Results) {
	if res.Faults == nil || c.san == nil {
		return
	}
	san := c.san[0]
	for _, cf := range res.Faults.Clients {
		for _, mw := range cf.MissWindows {
			if mw.Excused {
				continue
			}
			san.Reportf("reservation-floor-survivor", int64(mw.Period),
				"client %d period %d: completed %d < reservation %d with no excusing fault window",
				cf.Index, mw.Period, mw.Completed, mw.Reservation)
		}
	}
}
