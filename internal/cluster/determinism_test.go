package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/haechi-qos/haechi/internal/workload"
)

// TestDeterminismByteIdentical is the runtime twin of haechilint's
// static guarantee: two full experiment runs from the same seed must
// serialize to byte-identical results — every period count, every
// latency percentile, every overhead counter, every timeline point.
// TestGoldenDeterminism spot-checks a few fields; this test closes the
// gap by comparing the entire serialized Results, so nondeterminism
// hiding in any recorded quantity fails loudly.
func TestDeterminismByteIdentical(t *testing.T) {
	run := func() []byte {
		specs := make([]ClientSpec, 6)
		for i := range specs {
			specs[i] = ClientSpec{
				Reservation:    1200,
				Demand:         ConstantDemand(1500),
				UpdateFraction: 0.05,
			}
		}
		// One open-loop random-arrival client to exercise the RNG paths.
		specs[5].Pattern = workload.Poisson{}
		cfg := testConfig(Haechi)
		cfg.Seed = 42
		// Observability on: span recording and metrics sampling must not
		// perturb the event order, and their serialized forms (Stages,
		// Metrics) must themselves be byte-deterministic.
		cfg.Observe = &Observe{
			FlightSpans:     2048,
			MetricsInterval: DefaultMetricsInterval(cfg.Params.Period),
		}
		cl, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		reportDivergence(t, a, b)
	}
}

// TestObservabilityInert proves the flight recorder, the metrics
// sampler, and the runtime invariant sanitizer observe without
// perturbing: the simulated outcome with any of them enabled is
// identical to the outcome without. (The metrics ticker does add kernel
// events, but pure samplers cannot shift any existing event's time or
// order; span recording adds no events at all; the sanitizer only reads
// state the run already computes and schedules nothing.)
func TestObservabilityInert(t *testing.T) {
	run := func(observe, sanitize bool, shards int) []byte {
		specs := make([]ClientSpec, 4)
		for i := range specs {
			specs[i] = ClientSpec{Reservation: 1200, Demand: ConstantDemand(1500)}
		}
		specs[3].Pattern = workload.Poisson{}
		cfg := testConfig(Haechi)
		cfg.Seed = 7
		cfg.Sanitize = sanitize
		cfg.Shards = shards
		if observe {
			cfg.Observe = &Observe{
				FlightSpans:     1024,
				MetricsInterval: DefaultMetricsInterval(cfg.Params.Period),
			}
		}
		cl, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if sanitize {
			if v := cl.SanitizeViolations(); len(v) != 0 {
				t.Fatalf("sanitized run reported violations: %v", v)
			}
		}
		// Strip the observability payloads and the event count (the
		// metrics ticker adds sampling events); everything else — every
		// count, percentile and timeline — must match the blind run. On
		// the sharded path the per-shard tickers also shift the quantum
		// accounting, so the event-volume fields of the ShardingReport
		// are stripped too; the semantic fields (CrossMessages, node
		// assignment, Attribution) must still match exactly.
		res.Stages = nil
		res.Metrics = nil
		res.EventsExecuted = 0
		if res.Sharding != nil {
			res.Sharding.Quanta = 0
			res.Sharding.PerShardEvents = nil
			res.Sharding.IdleQuanta = nil
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	blind := run(false, false, 0)
	if observed := run(true, false, 0); !bytes.Equal(blind, observed) {
		reportDivergence(t, blind, observed)
	}
	if sanitized := run(false, true, 0); !bytes.Equal(blind, sanitized) {
		reportDivergence(t, blind, sanitized)
	}
	// Sharded output differs from unsharded by design; compare the
	// sharded run against its own observed and sanitized twins instead.
	// The observed twin exercises the per-shard recorder/registry path:
	// every instrument is single-writer on its own shard, so turning
	// observability on must leave the sharded outcome untouched too.
	shardedBlind := run(false, false, 3)
	if observed := run(true, false, 3); !bytes.Equal(shardedBlind, observed) {
		reportDivergence(t, shardedBlind, observed)
	}
	if sanitized := run(false, true, 3); !bytes.Equal(shardedBlind, sanitized) {
		reportDivergence(t, shardedBlind, sanitized)
	}
	if both := run(true, true, 3); !bytes.Equal(shardedBlind, both) {
		reportDivergence(t, shardedBlind, both)
	}
}

// reportDivergence fails the test showing context around the first
// differing byte of two serialized Results.
func reportDivergence(t *testing.T, a, b []byte) {
	t.Helper()
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo, hi := max(0, i-60), i+60
	ctx := func(s []byte) string {
		if lo >= len(s) {
			return ""
		}
		return string(s[lo:min(hi, len(s))])
	}
	t.Fatalf("observability/seed mismatch: different serialized results (lengths %d vs %d); first divergence at byte %d:\n  run A: …%s…\n  run B: …%s…",
		len(a), len(b), i, ctx(a), ctx(b))
}

// TestProfileShardedWorkerInvariant pins the parallel sweeper's
// contract at the cluster API: the worker count is pure concurrency and
// can never leak into results. Shard count, by contrast, is part of the
// experiment definition (each shard reseeds), so shards=1 must
// reproduce ProfileCapacity exactly.
func TestProfileShardedWorkerInvariant(t *testing.T) {
	cfg := testConfig(Bare)
	sequential, err := ProfileCapacitySharded(cfg, 4, 8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel8, err := ProfileCapacitySharded(cfg, 4, 8, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sequential != parallel8 {
		t.Errorf("worker count changed the profile: workers=1 %+v, workers=8 %+v",
			sequential, parallel8)
	}
	plain, err := ProfileCapacity(cfg, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	oneShard, err := ProfileCapacitySharded(cfg, 4, 8, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plain != oneShard {
		t.Errorf("shards=1 diverged from ProfileCapacity: %+v vs %+v", plain, oneShard)
	}
}
