package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/haechi-qos/haechi/internal/workload"
)

// TestDeterminismByteIdentical is the runtime twin of haechilint's
// static guarantee: two full experiment runs from the same seed must
// serialize to byte-identical results — every period count, every
// latency percentile, every overhead counter, every timeline point.
// TestGoldenDeterminism spot-checks a few fields; this test closes the
// gap by comparing the entire serialized Results, so nondeterminism
// hiding in any recorded quantity fails loudly.
func TestDeterminismByteIdentical(t *testing.T) {
	run := func() []byte {
		specs := make([]ClientSpec, 6)
		for i := range specs {
			specs[i] = ClientSpec{
				Reservation:    1200,
				Demand:         ConstantDemand(1500),
				UpdateFraction: 0.05,
			}
		}
		// One open-loop random-arrival client to exercise the RNG paths.
		specs[5].Pattern = workload.Poisson{}
		cfg := testConfig(Haechi)
		cfg.Seed = 42
		cl, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo, hi := max(0, i-60), i+60
		ctx := func(s []byte) string {
			if lo >= len(s) {
				return ""
			}
			return string(s[lo:min(hi, len(s))])
		}
		t.Fatalf("same seed, different serialized results (lengths %d vs %d); first divergence at byte %d:\n  run A: …%s…\n  run B: …%s…",
			len(a), len(b), i, ctx(a), ctx(b))
	}
}
