package cluster

import (
	"fmt"
	"strings"

	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/trace"
)

// ClientResult is one tenant's measured outcome.
type ClientResult struct {
	Index       int
	Reservation int64
	// Periods are completions in each measured period.
	Periods []uint64
	// Total is the sum over the measured periods.
	Total uint64
	// MinPeriod and MeanPeriod summarize the per-period counts.
	MinPeriod  uint64
	MeanPeriod float64
	// MetReservation reports whether every measured period reached R_i.
	MetReservation bool
	// Latency summarizes request latency (submission to completion,
	// including token-wait queueing) over the measure window.
	Latency metrics.Summary
	// Timeline is the full per-period completion series from t=0,
	// including warm-up and transition periods (Figs. 16-19).
	Timeline metrics.Series
}

// OverheadReport quantifies Haechi's token-management cost at the data
// node over the measure window (the paper's "negligible overhead" claim).
type OverheadReport struct {
	// FAAs is the number of global-token claims plus monitor pool reads.
	FAAs uint64
	// ControlWrites counts client reports and monitor pool rewrites.
	ControlWrites uint64
	// ControlSends counts two-sided control messages.
	ControlSends uint64
	// DataReads counts one-sided data READs.
	DataReads uint64
	// NICFraction estimates the fraction of data-node NIC service time
	// spent on QoS verbs rather than data I/O.
	NICFraction float64
}

// Results aggregates one run.
type Results struct {
	Mode            Mode
	MeasuredPeriods int
	Clients         []ClientResult
	// TotalCompleted sums completions over clients and measured periods.
	TotalCompleted uint64
	// ThroughputPerPeriod is TotalCompleted / MeasuredPeriods.
	ThroughputPerPeriod float64
	// AggregateLatency merges all clients' latency histograms.
	AggregateLatency metrics.Summary
	// OmegaTimeline and UsageTimeline are the monitor's per-period
	// estimated capacity and reported usage (QoS modes only).
	OmegaTimeline metrics.Series
	UsageTimeline metrics.Series
	// ServerStats is the data node's verb-counter delta over the window.
	ServerStats rdma.Stats
	// Overhead quantifies QoS control cost.
	Overhead OverheadReport
	// Scale echoes the config's scale factor, so latency renderings can
	// convert back to full-scale equivalents.
	Scale float64
	// EventsExecuted is the simulation's total fired-event count at the
	// end of the run (summed over shard kernels in a sharded run). It is
	// fully deterministic (part of the byte-identity surface); dividing
	// it by wall-clock time gives the kernel's events-per-second figure
	// cmd/haechibench reports.
	EventsExecuted uint64
	// Faults is the fault-injection and recovery accounting; nil unless
	// Config.Chaos armed a scenario. Deterministic (part of the
	// byte-identity surface).
	Faults *FaultReport `json:",omitempty"`
	// Sharding summarizes the sharded-kernel run; nil on the classic
	// single-kernel path. Deterministic — it never includes the worker
	// count (workers are pure concurrency; see Config.ShardWorkers).
	Sharding *ShardingReport `json:",omitempty"`
	// Stages is the per-tenant per-stage latency breakdown from the
	// flight recorder; nil unless Config.Observe enabled span recording.
	// In a sharded run the rows come from the merged per-shard
	// recorders (histograms merged per actor, deterministically).
	Stages []StageLatency `json:",omitempty"`
	// Metrics is the sampled registry; nil unless enabled. It marshals
	// deterministically (registration order). In a sharded run it is
	// the merged per-shard registry: summed totals under the plain
	// names plus shard<K>/ columns for per-shard gauges.
	Metrics *metrics.Registry `json:",omitempty"`
	// Flight is the span recorder for trace export (merged across
	// shards in a sharded run). Excluded from JSON: the ring is bounded
	// (eviction order is deterministic but the retained window is an
	// export concern, not a result).
	Flight *trace.FlightRecorder `json:"-"`
	// Attribution is the fabric's executed-work profile summed over
	// shards: per-verb-kind and per-pipeline-stage execution counts.
	// Always present and always deterministic — the counters ride the
	// event sequence itself, so they are identical with observability
	// on or off and at any worker count. Per-shard profiles appear in
	// Sharding.Attribution.
	Attribution rdma.ExecProfile
	// RunTag echoes Config.Observe.RunTag (0 when unset). Excluded from
	// JSON so tagging runs cannot perturb byte-compared results; OnResults
	// capturers use it to order artifacts under parallel sweeps.
	RunTag int `json:"-"`
}

func (c *Cluster) buildResults(measurePeriods int, serverStats rdma.Stats) (*Results, error) {
	res := &Results{
		Mode:            c.cfg.Mode,
		MeasuredPeriods: measurePeriods,
		ServerStats:     serverStats,
		Scale:           c.cfg.Scale,
		EventsExecuted:  c.kernel.Executed(),
	}
	if c.group != nil {
		res.EventsExecuted = c.group.Executed()
		res.Sharding = c.shardingReport()
	}
	if c.chaos != nil {
		res.Faults = c.buildFaults()
	}
	for _, p := range c.fabric.ExecProfiles() {
		p := p
		res.Attribution.Add(&p)
	}
	if ob := c.cfg.Observe; ob != nil {
		res.RunTag = ob.RunTag
	}
	if c.flights != nil {
		// Merge the per-shard recorders in shard order: the span ring in
		// (End, shard) order, the stage histograms per actor. Identity on
		// the single-kernel path.
		fr := trace.MergeFlightRecorders(c.flights...)
		res.Flight = fr
		res.Stages = stageRows(fr)
	}
	if c.registries != nil {
		m, err := metrics.MergeSharded(c.registries)
		if err != nil {
			return nil, err
		}
		res.Metrics = m
	}
	var agg metrics.Histogram
	var totalFAA, totalReports, totalSends uint64
	for i, rt := range c.clients {
		cr := ClientResult{
			Index:       i,
			Reservation: rt.Spec.Reservation,
			Periods:     rt.Periods.Completed,
			Total:       rt.Periods.Total(),
			MinPeriod:   rt.Periods.Min(),
			MeanPeriod:  rt.Periods.Mean(),
			Latency:     rt.Gen.Latency.Summarize(),
			Timeline:    rt.Timeline,
		}
		cr.MetReservation = len(cr.Periods) > 0 && int64(cr.MinPeriod) >= rt.Spec.Reservation
		agg.Merge(&rt.Gen.Latency)
		res.TotalCompleted += cr.Total
		res.Clients = append(res.Clients, cr)
		if rt.Engine != nil {
			st := rt.Engine.Stats()
			totalFAA += st.FAAIssued
			totalReports += st.ReportsSent
		}
	}
	res.ThroughputPerPeriod = float64(res.TotalCompleted) / float64(measurePeriods)
	res.AggregateLatency = agg.Summarize()
	if c.monitor != nil {
		res.OmegaTimeline = c.monitor.OmegaSeries
		res.UsageTimeline = c.monitor.UsageSeries
		totalSends = serverStats.SendsSent // token pushes + signals
		checks := uint64(float64(measurePeriods) * float64(c.cfg.Params.Period/c.cfg.Params.CheckInterval))
		res.Overhead = OverheadReport{
			FAAs:          totalFAA + checks,
			ControlWrites: totalReports + c.monitor.ConversionCount,
			ControlSends:  totalSends,
			DataReads:     serverStats.OneSidedTargeted - totalFAA - checks - totalReports - c.monitor.ConversionCount,
		}
		f := c.cfg.Fabric
		weighted := float64(res.Overhead.FAAs)*f.AtomicWeight +
			float64(res.Overhead.ControlWrites)*f.MinVerbWeight +
			float64(res.Overhead.ControlSends)*f.SendRequestWeight
		capacityUnits := f.ServerOneSidedRate * c.cfg.Params.Period.Seconds() * float64(measurePeriods)
		res.Overhead.NICFraction = weighted / capacityUnits
	}
	return res, nil
}

// String renders a per-client table in the shape of the paper's bar
// charts: reservation, completions, attainment.
func (r *Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s periods=%d total=%d throughput=%.0f/period\n",
		r.Mode, r.MeasuredPeriods, r.TotalCompleted, r.ThroughputPerPeriod)
	for _, cr := range r.Clients {
		met := " "
		if cr.Reservation > 0 {
			if cr.MetReservation {
				met = "met"
			} else {
				met = "MISS"
			}
		}
		fmt.Fprintf(&b, "  C%-2d R=%-9d total=%-10d min/period=%-9d mean/period=%-10.0f %s\n",
			cr.Index+1, cr.Reservation, cr.Total, cr.MinPeriod, cr.MeanPeriod, met)
	}
	if r.Overhead.FAAs > 0 || r.Overhead.ControlWrites > 0 {
		fmt.Fprintf(&b, "  overhead: faa=%d ctrlWrites=%d ctrlSends=%d nicFraction=%.4f%%\n",
			r.Overhead.FAAs, r.Overhead.ControlWrites, r.Overhead.ControlSends, 100*r.Overhead.NICFraction)
	}
	return b.String()
}
