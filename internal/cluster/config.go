// Package cluster wires the full testbed the paper evaluates: one data
// node running the KV store (and, in QoS modes, the Haechi monitor), N
// client nodes each running a workload generator (and, in QoS modes, a
// QoS engine), connected by the simulated RDMA fabric. It runs
// warm-up/measure windows and harvests per-period completions, latency
// histograms, throughput timelines and protocol-overhead counters — the
// raw material for every figure in the paper.
package cluster

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/core"
	"github.com/haechi-qos/haechi/internal/kvstore"
	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/workload"
)

// Mode selects the QoS system under test.
type Mode int

// Modes.
const (
	// Bare is the paper's comparison system: one-sided I/Os with no QoS.
	Bare Mode = iota + 1
	// Haechi is the full protocol.
	Haechi
	// BasicHaechi disables token conversion (Experiment 2B's strawman).
	BasicHaechi
)

func (m Mode) String() string {
	switch m {
	case Bare:
		return "bare"
	case Haechi:
		return "haechi"
	case BasicHaechi:
		return "basic-haechi"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DemandFn maps a period index (1-based) to the number of requests the
// client wants served that period.
type DemandFn func(period int) uint64

// ConstantDemand returns a DemandFn with the same target every period.
func ConstantDemand(n uint64) DemandFn { return func(int) uint64 { return n } }

// UnlimitedDemand keeps the client saturated (profiling experiments).
func UnlimitedDemand() DemandFn { return func(int) uint64 { return workload.InfiniteDemand } }

// ClientSpec describes one tenant.
type ClientSpec struct {
	// Reservation is R_i per period (QoS modes only).
	Reservation int64
	// Limit is L_i per period; 0 = unlimited.
	Limit int64
	// Demand is the per-period request target; nil means unlimited.
	Demand DemandFn
	// Pattern is the temporal request pattern; nil means Burst{} (submit
	// the whole demand at period start, the paper's QoS-experiment form).
	Pattern workload.Pattern
	// Keys selects which records are read; nil means YCSB zipfian over
	// the populated keyspace.
	Keys workload.KeyChooser
	// UpdateFraction is the YCSB-style share of requests issued as
	// one-sided record WRITEs instead of READs (0 = read-only, the
	// paper's workload; 0.05 = YCSB-B).
	UpdateFraction float64
}

// Config assembles a testbed.
type Config struct {
	// Mode selects bare/Haechi/Basic-Haechi.
	Mode Mode
	// Fabric is the performance model; zero value means the
	// paper-calibrated defaults.
	Fabric rdma.Config
	// Params are the Haechi protocol constants; zero value means paper
	// defaults.
	Params core.Params
	// Scale divides all fabric rates by this factor (0 or 1 = full
	// scale) and rescales the control-plane constants to preserve the
	// paper's control:data cost ratios (see ApplyScale).
	Scale float64
	// Store configures the KV store; zero value means defaults.
	Store kvstore.Options
	// Records is the number of records populated (and the keyspace of
	// the default chooser); 0 means the store capacity / 2.
	Records int
	// TwoSided switches the data path to two-sided RPC GETs (the
	// comparison curves of Figs. 6-7). QoS modes require one-sided.
	TwoSided bool
	// ProfiledCapacity is Omega_prof in I/Os per period; 0 derives it
	// from the fabric's server rate.
	ProfiledCapacity int64
	// Sigma is the profiled capacity's standard deviation; 0 derives 1%
	// of the profiled capacity.
	Sigma float64
	// AlertAfter configures under-use alerts (0 = off).
	AlertAfter int
	// FailureGrace enables the monitor's client failure detection: a
	// client whose report slot stays static for this many consecutive
	// periods is suspected crashed and its reservation returns to the
	// pool until it reports again (core.WithFailureDetection). 0 = off,
	// except that a Chaos scenario containing a crash defaults it to 2 —
	// crash injection without detection would strand the reservation.
	FailureGrace int
	// Seed drives all randomness.
	Seed int64
	// Observe enables the observability layer (flight-recorder spans
	// and metrics sampling); nil disables it. See Observe.
	Observe *Observe
	// Chaos is a fault-scenario spec (a chaos.Parse grammar string or a
	// preset name such as "set5"); empty disables fault injection. The
	// scenario compiles to virtual-time injections pre-scheduled on the
	// owning components' kernels at setup, so a chaos run is exactly as
	// deterministic — and, under sharding, as worker-count-independent —
	// as a fault-free one. Results.Faults reports the injection and
	// recovery accounting; with Sanitize on, the failure-aware invariants
	// (crash quarantine, post-crash completions, reservation floor for
	// surviving clients, rejoin monotonicity, reclamation conservation)
	// are enforced throughout.
	Chaos string
	// Sanitize enables the runtime invariant sanitizer
	// (internal/sanitize): token conservation per engine period, the
	// global-pool floor, admission headroom, per-kernel (at, seq) event
	// monotonicity, shard mailbox ordering, and background-job window
	// bounds. The checks are passive reads — a sanitized run is
	// byte-identical to an unsanitized one (TestObservabilityInert) —
	// and violations surface as an error from Run. Off (false), the
	// hooks are nil and the hot path pays one pointer comparison.
	Sanitize bool

	// Shards partitions the cluster onto per-shard simulation kernels
	// that advance concurrently under the conservative quantum protocol
	// (internal/sim/shard): the data node (with the monitor, store and
	// background jobs) on shard 0, clients round-robin across the rest.
	// 0 or 1 runs the classic single-kernel path. Like the profiling
	// shard count, Shards is part of the experiment definition: a
	// sharded run is deterministic and replayable but NOT byte-identical
	// to the unsharded run (cross-shard completions interleave by wire
	// arrival instead of a shared kernel's global tie order, and
	// flow-control credits return one propagation later — see DESIGN.md
	// §9). Clamped to the number of clients + 1.
	Shards int
	// ShardWorkers is the size of the worker pool driving the shards.
	// Pure concurrency: any value produces byte-identical Results
	// (pinned by TestShardedKernelByteIdentical). <= 0 selects
	// GOMAXPROCS. Observability no longer constrains the workers: the
	// flight recorder and metrics registry are per-shard instances,
	// each touched only by its own shard's kernel and merged
	// deterministically at run end (DESIGN.md §11), so observed runs
	// export byte-identical traces and CSVs at any worker count.
	ShardWorkers int
}

// NewDefaultConfig returns a full-scale Haechi testbed configuration.
func NewDefaultConfig() Config {
	return Config{
		Mode:   Haechi,
		Fabric: rdma.NewDefaultConfig(),
		Params: core.NewDefaultParams(),
		Scale:  1,
		Store:  kvstore.NewDefaultOptions(),
		Seed:   1,
	}
}

// ApplyScale normalizes the config: fills zero values with defaults and,
// when Scale > 1, divides the fabric rates by Scale while multiplying the
// control intervals and dividing the FAA batch by the same factor. This
// keeps every dimensionless ratio of the protocol — control-verb cost per
// unit of capacity, tokens per batch relative to the pool, ticks per
// period — equal to the paper's, so scaled runs reproduce full-scale
// shapes quickly.
func (c Config) ApplyScale() (Config, error) {
	if c.Mode == 0 {
		c.Mode = Haechi
	}
	if c.Fabric == (rdma.Config{}) {
		c.Fabric = rdma.NewDefaultConfig()
	}
	if c.Params == (core.Params{}) {
		c.Params = core.NewDefaultParams()
	}
	if c.Store == (kvstore.Options{}) {
		c.Store = kvstore.NewDefaultOptions()
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Scale < 1 {
		return c, fmt.Errorf("cluster: Scale must be >= 1, got %v", c.Scale)
	}
	if c.Scale > 1 {
		s := c.Scale
		c.Fabric = c.Fabric.Scaled(s)
		c.Params.Tick = clampInterval(sim.Time(float64(c.Params.Tick)*s), c.Params.Period)
		c.Params.CheckInterval = clampInterval(sim.Time(float64(c.Params.CheckInterval)*s), c.Params.Period)
		c.Params.ReportInterval = clampInterval(sim.Time(float64(c.Params.ReportInterval)*s), c.Params.Period)
		if b := int64(float64(c.Params.Batch) / s); b >= 1 {
			c.Params.Batch = b
		} else {
			c.Params.Batch = 1
		}
	}
	if c.Records == 0 {
		c.Records = c.Store.Capacity / 2
	}
	if c.ProfiledCapacity == 0 {
		c.ProfiledCapacity = int64(c.Fabric.ServerOneSidedRate * c.Params.Period.Seconds())
	}
	if c.Sigma == 0 {
		c.Sigma = 0.01 * float64(c.ProfiledCapacity)
	}
	if c.TwoSided && c.Mode != Bare {
		return c, fmt.Errorf("cluster: QoS modes require one-sided I/O (Haechi's premise); TwoSided is bare-only")
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("cluster: Shards must be >= 0, got %d", c.Shards)
	}
	if err := c.Fabric.Validate(); err != nil {
		return c, err
	}
	if err := c.Params.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

func clampInterval(v, period sim.Time) sim.Time {
	if v > period/10 {
		v = period / 10
	}
	if v <= 0 {
		v = 1
	}
	return v
}

// LocalCapacityPerPeriod returns C_L*T for the config's fabric.
func (c Config) LocalCapacityPerPeriod() int64 {
	return int64(c.Fabric.ClientOneSidedRate * c.Params.Period.Seconds())
}
