package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestShardPlacementStableIDHash is the regression test for the shard
// assignment fix: placement must be a pure function of the stable client
// name (FNV-1a), not of insertion order. At 2 and 4 shards every client
// lands on 1 + fnv32(name) % (shards-1), the data node stays on shard 0,
// and at 4 shards the layout provably differs from the old
// insertion-order round-robin for at least one client.
func TestShardPlacementStableIDHash(t *testing.T) {
	build := func(shards, clients int) *ShardingReport {
		specs := make([]ClientSpec, clients)
		for i := range specs {
			specs[i] = ClientSpec{Reservation: 1200, Demand: ConstantDemand(1500)}
		}
		cfg := testConfig(Haechi)
		cfg.Seed = 11
		cfg.Shards = shards
		cl, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sharding == nil {
			t.Fatal("sharded run produced no ShardingReport")
		}
		return res.Sharding
	}
	for _, shards := range []int{2, 4} {
		sr := build(shards, 8)
		if sr.Nodes[0].Name != "datanode" || sr.Nodes[0].Shard != 0 {
			t.Errorf("shards=%d: data node on shard %d, want 0", shards, sr.Nodes[0].Shard)
		}
		roundRobin := true
		for i, na := range sr.Nodes[1:] {
			want := 1 + int(fnv32(na.Name)%uint32(shards-1))
			if na.Shard != want {
				t.Errorf("shards=%d: client %q on shard %d, want %d (stable-ID hash)",
					shards, na.Name, na.Shard, want)
			}
			if na.Shard != 1+i%(shards-1) {
				roundRobin = false
			}
		}
		if shards == 4 && roundRobin {
			t.Errorf("shards=4: placement matches insertion-order round-robin exactly; hash assignment not in effect")
		}
	}

	// Placement is insertion-order independent by construction (the hash
	// reads only the name); pin it against two different population sizes,
	// where round-robin would reshuffle the shared prefix of clients.
	a, b := build(4, 8), build(4, 5)
	for i := 1; i < 6; i++ {
		if a.Nodes[i].Name != b.Nodes[i].Name || a.Nodes[i].Shard != b.Nodes[i].Shard {
			t.Errorf("client %q moved shards when the population changed: %d vs %d",
				a.Nodes[i].Name, a.Nodes[i].Shard, b.Nodes[i].Shard)
		}
	}
}

// qpCacheRun is shardedRun with the QP-context connection cache enabled,
// sized to thrash at the test's client count so hits and misses both
// occur on every shard.
func qpCacheRun(t *testing.T, shards, workers int, sanitize bool) []byte {
	t.Helper()
	specs := make([]ClientSpec, 6)
	for i := range specs {
		specs[i] = ClientSpec{Reservation: 1200, Demand: ConstantDemand(1500), UpdateFraction: 0.05}
	}
	cfg := testConfig(Haechi)
	cfg.Seed = 42
	cfg.Shards = shards
	cfg.ShardWorkers = workers
	cfg.Sanitize = sanitize
	cfg.Fabric.QPCacheSize = 4
	cfg.Fabric.QPCacheMissPenalty = 0.25
	cl, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sanitize {
		if v := cl.SanitizeViolations(); len(v) != 0 {
			t.Fatalf("sanitized QP-cache run reported violations: %v", v)
		}
	}
	if res.Attribution.QPCacheMisses == 0 || res.Attribution.QPCacheHits == 0 {
		t.Fatalf("QP cache inert: hits=%d misses=%d", res.Attribution.QPCacheHits, res.Attribution.QPCacheMisses)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestQPCacheShardedByteIdentical extends the worker-invariance contract
// to the QP-cache model: with the connection cache active (hits and
// misses on every shard), Results must stay byte-identical at 1, 2 and 8
// workers, and a sanitized twin must match the unsanitized run.
func TestQPCacheShardedByteIdentical(t *testing.T) {
	base := qpCacheRun(t, 3, 1, false)
	for _, workers := range []int{2, 8} {
		if got := qpCacheRun(t, 3, workers, false); !bytes.Equal(base, got) {
			t.Errorf("workers=%d diverged from workers=1 with QP cache on", workers)
			reportDivergence(t, base, got)
		}
	}
	if got := qpCacheRun(t, 3, 2, true); !bytes.Equal(base, got) {
		t.Errorf("sanitizer perturbed the QP-cache run")
		reportDivergence(t, base, got)
	}
}

// TestQPCacheRepeatable pins seed determinism on the single-kernel path
// with the cache enabled, and that an oversized cache only ever misses
// cold: with capacity above the fleet's distinct (node, QP) context
// count, evictions are impossible, so the miss count is a setup constant
// that must not grow with simulated time.
func TestQPCacheRepeatable(t *testing.T) {
	a := qpCacheRun(t, 0, 0, false)
	b := qpCacheRun(t, 0, 0, false)
	if !bytes.Equal(a, b) {
		reportDivergence(t, a, b)
	}

	coldMisses := func(measure int) uint64 {
		specs := make([]ClientSpec, 4)
		for i := range specs {
			specs[i] = ClientSpec{Reservation: 1200, Demand: ConstantDemand(1500)}
		}
		cfg := testConfig(Haechi)
		cfg.Seed = 5
		cfg.Fabric.QPCacheSize = 4096
		cfg.Fabric.QPCacheMissPenalty = 0.25
		cl, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(1, measure)
		if err != nil {
			t.Fatal(err)
		}
		if res.Attribution.QPCacheMisses == 0 {
			t.Error("expected cold-start misses with an oversized cache")
		}
		if res.Attribution.QPCacheHits == 0 {
			t.Error("expected warm hits with an oversized cache")
		}
		return res.Attribution.QPCacheMisses
	}
	short, long := coldMisses(2), coldMisses(5)
	if short != long {
		t.Errorf("oversized cache missed %d times over 2 periods but %d over 5 — evictions should be impossible",
			short, long)
	}
}

// TestFleetSmoke drives Set 6's 10^5-client configuration end to end —
// sharded onto 2 kernels, sanitized — and checks the run completes and
// conserves per-client completions. It is the CI "Fleet smoke" target;
// locally it runs only with -run TestFleetSmoke (skipped under -short).
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet smoke is not -short")
	}
	const clients = 100_000
	specs := make([]ClientSpec, clients)
	for i := range specs {
		r := int64(0)
		if i < 9000 {
			r = 1 // reserved tier; the rest are best-effort
		}
		specs[i] = ClientSpec{Reservation: r, Demand: ConstantDemand(1)}
	}
	cfg := testConfig(Haechi)
	cfg.Seed = 6
	cfg.Shards = 2
	cfg.Sanitize = true
	cl, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := cl.SanitizeViolations(); len(v) != 0 {
		t.Fatalf("fleet smoke reported violations: %v", v)
	}
	if len(res.Clients) != clients {
		t.Fatalf("results cover %d clients, want %d", len(res.Clients), clients)
	}
	var sum uint64
	for i := range res.Clients {
		sum += res.Clients[i].Total
	}
	if sum != res.TotalCompleted {
		t.Errorf("per-client totals sum to %d, TotalCompleted = %d", sum, res.TotalCompleted)
	}
}
