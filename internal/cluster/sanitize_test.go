package cluster

import (
	"strings"
	"testing"
)

// TestSanitizerCatchesTokenLeak proves the sanitizer's token-conservation
// check is live, not vacuous: silently discarding reservation tokens
// mid-period (Engine.DebugDropReservationTokens, a hook that exists only
// for this test) breaks the per-period identity
// used + held + yielded == reservation, and the sanitized run must fail
// with a token-conservation violation at the next period rollover.
func TestSanitizerCatchesTokenLeak(t *testing.T) {
	specs := make([]ClientSpec, 2)
	for i := range specs {
		// Demand far below the reservation keeps tokens held mid-period,
		// so there is something to leak.
		specs[i] = ClientSpec{Reservation: 1200, Demand: ConstantDemand(100)}
	}
	cfg := testConfig(Haechi)
	cfg.Seed = 11
	cfg.Sanitize = true
	cl, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	// ApplyScale ran inside New; use the normalized period.
	T := cl.Config().Params.Period
	cl.At(T+T/2, func() {
		cl.Clients()[0].Engine.DebugDropReservationTokens(5)
	})
	_, err = cl.Run(1, 2)
	if err == nil {
		t.Fatal("sanitized run with an injected token leak returned no error")
	}
	if !strings.Contains(err.Error(), "token-conservation") {
		t.Errorf("error does not name the broken invariant: %v", err)
	}
	found := false
	for _, v := range cl.SanitizeViolations() {
		if v.Check == "token-conservation" && strings.Contains(v.Detail, "engine-0") {
			found = true
		}
	}
	if !found {
		t.Errorf("no token-conservation violation attributed to engine-0: %v", cl.SanitizeViolations())
	}
}
