package cluster

import (
	"fmt"
	"math"

	"github.com/haechi-qos/haechi/internal/parallel"
)

// ProfileResult is the outcome of the capacity-profiling procedure.
type ProfileResult struct {
	// MeanPerPeriod is Omega_prof: mean completed I/Os per QoS period.
	MeanPerPeriod float64
	// Sigma is the standard deviation across profiled periods.
	Sigma float64
	// Periods is the number of profiled periods.
	Periods int
}

// LowerBound returns Omega_prof - k*sigma.
func (p ProfileResult) LowerBound(k float64) int64 {
	return int64(p.MeanPerPeriod - k*p.Sigma)
}

// ProfileCapacity reproduces the paper's profiling procedure (Section
// II-E): continuous back-to-back one-sided 4 KB reads from nClients
// saturating clients against a bare data node for `periods` QoS periods;
// the per-period completion distribution yields Omega_prof and sigma.
// (The paper profiles 1000 one-period runs; a single long run with
// per-period sampling measures the same distribution.)
func ProfileCapacity(cfg Config, nClients, periods int) (ProfileResult, error) {
	return ProfileCapacitySharded(cfg, nClients, periods, 1, 1)
}

// ProfileCapacitySharded is ProfileCapacity split into `shards`
// independent runs executed on up to `workers` concurrent kernels.
// Shard s profiles its slice of the periods with seed cfg.Seed+s, and
// the per-period samples are concatenated in shard order, so the result
// depends on (cfg, nClients, periods, shards) but never on workers —
// this is closer to the paper's methodology of many independent
// one-period profiling runs, at sweep-level wall-clock cost. shards=1,
// workers=1 is exactly ProfileCapacity.
func ProfileCapacitySharded(cfg Config, nClients, periods, shards, workers int) (ProfileResult, error) {
	if nClients <= 0 || periods <= 0 {
		return ProfileResult{}, fmt.Errorf("cluster: profiling needs clients > 0 and periods > 0")
	}
	if shards <= 0 {
		shards = 1
	}
	if shards > periods {
		shards = periods
	}
	per := periods / shards
	extra := periods % shards
	samples, err := parallel.Map(workers, shards, func(s int) ([]float64, error) {
		n := per
		if s < extra {
			n++
		}
		shardCfg := cfg
		shardCfg.Seed += int64(s)
		return profileRun(shardCfg, nClients, n)
	})
	if err != nil {
		return ProfileResult{}, err
	}
	var totals []float64
	for _, sh := range samples {
		totals = append(totals, sh...)
	}
	var mean float64
	for _, v := range totals {
		mean += v
	}
	mean /= float64(len(totals))
	var varsum float64
	for _, v := range totals {
		varsum += (v - mean) * (v - mean)
	}
	sigma := math.Sqrt(varsum / float64(len(totals)))
	return ProfileResult{MeanPerPeriod: mean, Sigma: sigma, Periods: len(totals)}, nil
}

// profileRun executes one profiling run and returns its per-period
// completion totals across clients.
func profileRun(cfg Config, nClients, periods int) ([]float64, error) {
	cfg.Mode = Bare
	cfg.TwoSided = false
	specs := make([]ClientSpec, nClients)
	for i := range specs {
		specs[i] = ClientSpec{Demand: UnlimitedDemand()}
	}
	cl, err := New(cfg, specs)
	if err != nil {
		return nil, err
	}
	res, err := cl.Run(1, periods)
	if err != nil {
		return nil, err
	}
	totals := make([]float64, 0, periods)
	for p := 0; p < periods; p++ {
		var sum float64
		for _, cr := range res.Clients {
			if p < len(cr.Periods) {
				sum += float64(cr.Periods[p])
			}
		}
		totals = append(totals, sum)
	}
	return totals, nil
}
