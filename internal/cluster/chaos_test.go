package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

// chaosSpecs builds the standard 4-tenant mix used by the chaos tests:
// every client reserves 1200 and demands 5000, so the floor binds every
// period and aggregate demand exceeds capacity (~15700 at Scale 100) —
// the pool drains, reporting mode engages, and a backlog persists
// through fault windows (which is what makes degraded-mode probes fire).
func chaosSpecs() []ClientSpec {
	specs := make([]ClientSpec, 4)
	for i := range specs {
		specs[i] = ClientSpec{Reservation: 1200, Demand: ConstantDemand(5000)}
	}
	return specs
}

// allKindsScenario exercises every fault kind in one run: the set5
// crash/restart/outage/degrade backbone plus a link storm and a
// congestion burst in the gap between recovery and the outage.
const allKindsScenario = "crash@2.25:c=0;restart@5.5:c=0;outage@7.25+1.25;" +
	"degrade@10.25+1.5:factor=4;jitter@5.75+1:extra=2us;burst@6+0.75:jobs=2,window=32"

// TestChaosByteIdentical is the chaos twin of
// TestDeterminismByteIdentical: a sharded run injecting every fault kind
// — client crash and recovery, monitor outage, NIC degradation, link
// storm, congestion burst — must serialize to byte-identical Results
// (including the flight-recorder spans and the FaultReport) at shard
// worker counts 1, 2 and 8. Workers are pure concurrency; a fault
// injection that leaked across the quantum barrier would show up here as
// a divergence. Runs sanitized, so the failure-aware invariants also
// hold at every worker count.
func TestChaosByteIdentical(t *testing.T) {
	run := func(workers int) []byte {
		cfg := testConfig(Haechi)
		cfg.Seed = 42
		cfg.Chaos = allKindsScenario
		cfg.Sanitize = true
		cfg.Shards = 3
		cfg.ShardWorkers = workers
		cfg.Observe = &Observe{
			FlightSpans:     1024,
			MetricsInterval: DefaultMetricsInterval(cfg.Params.Period),
		}
		cl, err := New(cfg, chaosSpecs())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(1, 13)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Faults == nil {
			t.Fatalf("workers=%d: chaos run produced no FaultReport", workers)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	sequential := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !bytes.Equal(sequential, got) {
			t.Errorf("workers=%d diverged from workers=1:", w)
			reportDivergence(t, sequential, got)
		}
	}
}

// TestChaosObservabilityInert proves the observability layer stays inert
// under fault injection: a chaos run with the flight recorder and
// metrics sampling enabled must produce the same simulated outcome —
// every period count, every fault timestamp, every miss classification —
// as the blind chaos run. Crash/restart handling adds engine state
// transitions the recorder did not exist for originally, so this guards
// against probes accidentally coupling into the recovery path.
func TestChaosObservabilityInert(t *testing.T) {
	run := func(observe bool) []byte {
		cfg := testConfig(Haechi)
		cfg.Seed = 7
		cfg.Chaos = "set5"
		cfg.Sanitize = true
		if observe {
			cfg.Observe = &Observe{
				FlightSpans:     1024,
				MetricsInterval: DefaultMetricsInterval(cfg.Params.Period),
			}
		}
		cl, err := New(cfg, chaosSpecs())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(1, 13)
		if err != nil {
			t.Fatal(err)
		}
		res.Stages = nil
		res.Metrics = nil
		res.EventsExecuted = 0
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	blind := run(false)
	if observed := run(true); !bytes.Equal(blind, observed) {
		reportDivergence(t, blind, observed)
	}
}

// TestChaosRecoveryReport runs the acceptance scenario (set5: crash,
// restart, monitor outage, server-NIC degradation) end to end, sanitized,
// and checks the FaultReport tells the full recovery story: the crash
// was detected and the reservation reclaimed, the restart rejoined
// through the recovery heartbeat, the outage pushed the surviving
// engines into degraded local-token mode, and every reservation miss is
// excused by a scenario window.
func TestChaosRecoveryReport(t *testing.T) {
	cfg := testConfig(Haechi)
	cfg.Seed = 3
	cfg.Chaos = "set5"
	cfg.Sanitize = true
	cl, err := New(cfg, chaosSpecs())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(1, 13)
	if err != nil {
		t.Fatalf("sanitized set5 run failed: %v", err)
	}
	fr := res.Faults
	if fr == nil {
		t.Fatal("chaos run produced no FaultReport")
	}
	if fr.ScenarioName != "set5" {
		t.Errorf("scenario name %q", fr.ScenarioName)
	}
	if fr.Injected.Crashes != 1 || fr.Injected.Restarts != 1 || fr.Injected.Outages != 1 || fr.Injected.Degrades != 1 {
		t.Errorf("injected counts %+v", fr.Injected)
	}
	if fr.MonitorOutages != 1 || fr.MonitorOutageTime <= 0 {
		t.Errorf("outage accounting: %d outages, %v total", fr.MonitorOutages, fr.MonitorOutageTime)
	}
	if fr.Suspicions < 1 || fr.Recoveries < 1 {
		t.Errorf("failure detection never fired: %d suspicions, %d recoveries", fr.Suspicions, fr.Recoveries)
	}

	c0 := fr.Clients[0]
	if c0.Crashes != 1 || c0.Restarts != 1 {
		t.Fatalf("client 0 transitions: %+v", c0)
	}
	if c0.CrashAt <= 0 || c0.RestartAt <= c0.CrashAt {
		t.Errorf("crash/restart instants out of order: crash %v, restart %v", c0.CrashAt, c0.RestartAt)
	}
	if c0.SuspectedAt <= c0.CrashAt {
		t.Errorf("suspicion %v not after crash %v", c0.SuspectedAt, c0.CrashAt)
	}
	if c0.ReclamationLatency <= 0 {
		t.Errorf("no reclamation latency recorded: %+v", c0)
	}
	if c0.ReinstatedAt <= c0.RestartAt {
		t.Errorf("reinstatement %v not after restart %v", c0.ReinstatedAt, c0.RestartAt)
	}
	if c0.RejoinAt <= c0.RestartAt || c0.RejoinPeriod <= 0 {
		t.Errorf("engine never rejoined: at %v, period %d", c0.RejoinAt, c0.RejoinPeriod)
	}
	if c0.QuarantinedRes != 0 || c0.QuarantinedGlobal != 0 {
		t.Errorf("tokens still quarantined at run end: res %d, global %d",
			c0.QuarantinedRes, c0.QuarantinedGlobal)
	}

	// The 1.25-period outage far exceeds the degraded-mode trigger
	// (2×CheckInterval), so every engine alive through it must have
	// entered local-token mode at least once and probed for the monitor.
	for i, cf := range fr.Clients[1:] {
		if cf.DegradedSpells < 1 || cf.DegradedTime <= 0 {
			t.Errorf("client %d never degraded through the outage: %+v", i+1, cf)
		}
		if cf.DegradedProbes < 1 {
			t.Errorf("client %d never probed the monitor while degraded", i+1)
		}
		if cf.Crashes != 0 || cf.PostCrashCompletions != 0 {
			t.Errorf("survivor %d has crash accounting: %+v", i+1, cf)
		}
	}

	// Misses may exist (client 0 around its crash, everyone during the
	// factor-4 NIC degradation) but each must be excused — the sanitizer
	// already enforced this (err == nil), so this just pins that the
	// report agrees and that the scenario actually produced some.
	var misses, excused int
	for _, cf := range fr.Clients {
		for _, mw := range cf.MissWindows {
			misses++
			if mw.Excused {
				excused++
			}
		}
	}
	if misses == 0 {
		t.Error("set5 produced no reservation misses; the scenario is not stressing the floor")
	}
	if misses != excused {
		t.Errorf("%d of %d misses unexcused in a clean sanitized run", misses-excused, misses)
	}
	if v := cl.SanitizeViolations(); len(v) != 0 {
		t.Errorf("sanitized run reported violations: %v", v)
	}
}

// TestChaosCatchesPostCrashCompletion proves the no-completion-after-
// crash invariant is live: injecting a completion into a crashed engine
// after its in-flight window drained (DebugInjectPostCrashCompletion, a
// hook that exists only for this test) must fail the sanitized run
// naming the invariant.
func TestChaosCatchesPostCrashCompletion(t *testing.T) {
	cfg := testConfig(Haechi)
	cfg.Seed = 5
	cfg.Chaos = "crash@2.25:c=0"
	cfg.Sanitize = true
	cl, err := New(cfg, chaosSpecs())
	if err != nil {
		t.Fatal(err)
	}
	T := cl.Config().Params.Period
	cl.At(sim.Time(3.5*float64(T)), func() {
		cl.Clients()[0].Engine.DebugInjectPostCrashCompletion()
	})
	_, err = cl.Run(1, 4)
	if err == nil {
		t.Fatal("sanitized run with an injected post-crash completion returned no error")
	}
	if !strings.Contains(err.Error(), "post-crash-completion") {
		t.Errorf("error does not name the broken invariant: %v", err)
	}
}
