package cluster

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/sim"
)

// Run executes the experiment: warmupPeriods QoS periods of warm-up
// (discarded, like the paper's first 30 s), then measurePeriods periods
// whose per-client completions, latencies and throughput are recorded.
// Run is one-shot: it consumes the cluster.
func (c *Cluster) Run(warmupPeriods, measurePeriods int) (*Results, error) {
	if warmupPeriods < 0 || measurePeriods <= 0 {
		return nil, fmt.Errorf("cluster: need warmupPeriods >= 0 and measurePeriods > 0, got %d/%d",
			warmupPeriods, measurePeriods)
	}
	if c.group != nil {
		return c.runSharded(warmupPeriods, measurePeriods)
	}
	k := c.kernel
	T := c.cfg.Params.Period
	start := k.Now()
	c.warmupPeriods = warmupPeriods
	if err := c.armChaos(start); err != nil {
		return nil, err
	}

	if c.cfg.Mode == Bare {
		tick, err := k.Every(0, T, func() {
			c.barePeriod++
			for _, rt := range c.clients {
				c.harvest(rt, c.barePeriod)
				rt.Gen.BeginPeriod(rt.Spec.Demand(c.barePeriod))
			}
		})
		if err != nil {
			return nil, err
		}
		c.bareTicker = tick
	} else {
		if err := c.monitor.Start(); err != nil {
			return nil, err
		}
	}

	var metricsTicker *sim.Ticker
	if c.registries != nil {
		reg := c.registries[0]
		t, err := k.Every(0, c.cfg.Observe.MetricsInterval, func() {
			reg.Sample(k.Now())
		})
		if err != nil {
			return nil, err
		}
		metricsTicker = t
	}

	warmEnd := start + sim.Time(warmupPeriods)*T
	measureEnd := warmEnd + sim.Time(measurePeriods)*T
	k.At(warmEnd, func() {
		c.serverStat0 = c.server.Stats()
		for _, rt := range c.clients {
			rt.Gen.Latency.Reset()
			rt.measuring = true
			// The next harvest closes the final warm-up period; skip it.
			rt.skipNext = true
		}
	})
	// Harvests for period p happen just after the p+1 boundary; stop
	// measuring mid-period so exactly measurePeriods are recorded.
	k.At(measureEnd+T/2, func() {
		for _, rt := range c.clients {
			rt.measuring = false
		}
	})

	k.RunUntil(measureEnd + 3*T/4)
	serverStats := c.server.Stats().Sub(c.serverStat0)

	if metricsTicker != nil {
		metricsTicker.Stop()
	}
	if c.bareTicker != nil {
		c.bareTicker.Stop()
	}
	if c.monitor != nil {
		c.monitor.Stop()
	}
	for _, rt := range c.clients {
		rt.Gen.Stop()
		if rt.Engine != nil {
			rt.Engine.Stop()
		}
	}
	res, err := c.buildResults(measurePeriods, serverStats)
	if err != nil {
		return nil, err
	}
	if ob := c.cfg.Observe; ob != nil && ob.OnResults != nil {
		ob.OnResults(res)
	}
	c.checkChaosInvariants(res)
	// A sanitized run that broke an invariant fails loudly; the results
	// are returned alongside so diagnostics can still inspect them.
	return res, c.sanErr()
}
