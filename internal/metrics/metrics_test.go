package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/haechi-qos/haechi/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Error("empty histogram returned nonzero stats")
	}
}

func TestHistogramSingle(t *testing.T) {
	var h Histogram
	h.Record(1000)
	if h.Count() != 1 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 1000 || h.Min() != 1000 || h.Max() != 1000 {
		t.Errorf("single-sample stats wrong: mean=%v min=%v max=%v", h.Mean(), h.Min(), h.Max())
	}
	for _, p := range []float64{0, 50, 99, 99.9, 100} {
		if got := h.Percentile(p); got != 1000 {
			t.Errorf("Percentile(%v) = %v, want 1000", p, got)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Error("negative sample not clamped")
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	samples := make([]sim.Time, 100000)
	for i := range samples {
		samples[i] = sim.Time(rng.Intn(10_000_000)) // up to 10ms
		h.Record(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		exact := samples[int(p/100*float64(len(samples)))-0]
		got := h.Percentile(p)
		rel := float64(got-exact) / float64(exact)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.05 {
			t.Errorf("Percentile(%v) = %v, exact ≈%v (rel err %.3f)", p, got, exact, rel)
		}
	}
}

func TestHistogramMeanExact(t *testing.T) {
	var h Histogram
	for _, v := range []sim.Time{100, 200, 300} {
		h.Record(v)
	}
	if h.Mean() != 200 {
		t.Errorf("Mean = %v, want 200", h.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(100)
	b.Record(300)
	b.Record(500)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Errorf("merged Count = %d", a.Count())
	}
	if a.Mean() != 300 {
		t.Errorf("merged Mean = %v, want 300", a.Mean())
	}
	if a.Min() != 100 || a.Max() != 500 {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	a.Merge(nil)          // no-op
	a.Merge(&Histogram{}) // empty no-op
	if a.Count() != 3 {
		t.Error("merging nil/empty changed count")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(50)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(sim.Time(i) * sim.Microsecond)
	}
	s := h.Summarize()
	if s.Count != 1000 {
		t.Errorf("summary count = %d", s.Count)
	}
	if s.P99 < 970*sim.Microsecond || s.P99 > 1000*sim.Microsecond {
		t.Errorf("P99 = %v, want ≈990µs", s.P99)
	}
	if s.P999 < s.P99 {
		t.Error("P999 < P99")
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

// Property: percentiles are monotone in p and bounded by [min, max].
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Record(sim.Time(v))
		}
		prev := sim.Time(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := h.Percentile(p)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: bucketLow(bucketIndex(v)) <= v with relative error < 1/64.
func TestBucketRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		v %= 1 << 62
		low := bucketLow(bucketIndex(sim.Time(v)))
		if uint64(low) > v {
			return false
		}
		if v >= subBuckets {
			if float64(v-uint64(low))/float64(v) > 1.0/subBuckets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "tput"
	s.Add(sim.Second, 100)
	s.Add(2*sim.Second, 200)
	s.Add(3*sim.Second, 300)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.MeanOver(sim.Second, 3*sim.Second); got != 150 {
		t.Errorf("MeanOver = %v, want 150", got)
	}
	if got := s.MeanOver(10*sim.Second, 20*sim.Second); got != 0 {
		t.Errorf("MeanOver empty window = %v, want 0", got)
	}
	vals := s.Values()
	if len(vals) != 3 || vals[2] != 300 {
		t.Errorf("Values = %v", vals)
	}
	if s.String() != "tput: 100 200 300" {
		t.Errorf("String = %q", s.String())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Counter = %d, want 5", c.Value())
	}
}

func TestPeriodLog(t *testing.T) {
	var p PeriodLog
	if p.Min() != 0 || p.Mean() != 0 || p.Total() != 0 {
		t.Error("empty PeriodLog stats nonzero")
	}
	for _, c := range []uint64{100, 80, 120} {
		p.Observe(c)
	}
	if p.Total() != 300 {
		t.Errorf("Total = %d", p.Total())
	}
	if p.Min() != 80 {
		t.Errorf("Min = %d", p.Min())
	}
	if p.Mean() != 100 {
		t.Errorf("Mean = %v", p.Mean())
	}
}
