package metrics

import (
	"bytes"
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

// TestMergeSharded pins the merged-registry column layout: single-owner
// names keep their column, multi-owner names get a summed total plus
// per-shard columns in shard order, all in first-appearance order.
func TestMergeSharded(t *testing.T) {
	mk := func(vals map[string][]float64, names ...string) *Registry {
		r := NewRegistry()
		for _, name := range names {
			name := name
			col := vals[name]
			i := 0
			if err := r.Register(name, func() float64 {
				v := col[min(i, len(col)-1)]
				i++
				return v
			}); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	r0 := mk(map[string][]float64{
		"sim/pending": {1, 2},
		"dn/nic":      {10, 20},
	}, "sim/pending", "dn/nic")
	r1 := mk(map[string][]float64{
		"sim/pending": {3, 4},
		"c1/kv":       {100, 200},
	}, "sim/pending", "c1/kv")
	for _, ts := range []sim.Time{5, 9} {
		r0.Sample(ts)
		r1.Sample(ts)
	}

	m, err := MergeSharded([]*Registry{r0, r1})
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"sim/pending", "shard0/sim/pending", "shard1/sim/pending", "dn/nic", "c1/kv"}
	got := m.Names()
	if len(got) != len(wantNames) {
		t.Fatalf("merged names = %v, want %v", got, wantNames)
	}
	for i, w := range wantNames {
		if got[i] != w {
			t.Fatalf("merged names = %v, want %v", got, wantNames)
		}
	}
	check := func(name string, want []float64) {
		s, ok := m.Series(name)
		if !ok {
			t.Fatalf("merged registry missing %q", name)
		}
		for i, v := range s.Values() {
			if v != want[i] {
				t.Errorf("%s values = %v, want %v", name, s.Values(), want)
				return
			}
		}
	}
	check("sim/pending", []float64{4, 6}) // summed total
	check("shard0/sim/pending", []float64{1, 2})
	check("shard1/sim/pending", []float64{3, 4})
	check("dn/nic", []float64{10, 20})
	check("c1/kv", []float64{100, 200})

	// The merged registry is read-only: no new gauges, no new samples.
	if err := m.Register("late", func() float64 { return 0 }); err == nil {
		t.Error("merged registry accepted a new gauge")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Sample on a merged registry did not panic")
			}
		}()
		m.Sample(99)
	}()

	// Identity on a single registry; error on none or on mismatched
	// sampling timelines.
	if one, err := MergeSharded([]*Registry{r0}); err != nil || one != r0 {
		t.Errorf("single-registry merge = (%v, %v), want identity", one, err)
	}
	if _, err := MergeSharded(nil); err == nil {
		t.Error("empty merge did not error")
	}
	r1.Sample(42)
	if _, err := MergeSharded([]*Registry{r0, r1}); err == nil {
		t.Error("mismatched sample timelines did not error")
	}
}

// TestMergeShardedCSV verifies the merged registry exports through the
// standard CSV path with the shard columns in place.
func TestMergeShardedCSV(t *testing.T) {
	r0, r1 := NewRegistry(), NewRegistry()
	_ = r0.Register("sim/x", func() float64 { return 1 })
	_ = r1.Register("sim/x", func() float64 { return 2 })
	r0.Sample(7)
	r1.Sample(7)
	m, err := MergeSharded([]*Registry{r0, r1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "time_ns,sim/x,shard0/sim/x,shard1/sim/x\n7,3,1,2\n"
	if buf.String() != want {
		t.Errorf("merged CSV = %q, want %q", buf.String(), want)
	}
}
