package metrics

import (
	"fmt"
)

// MergeSharded combines per-shard registries (one per shard kernel,
// each sampled only from its own shard) into a single read-only
// registry for export. All inputs must have sampled at identical
// instants — in a sharded run every shard kernel carries the same
// metrics ticker, so the sampling timelines coincide by construction.
//
// Column layout, in first-appearance order (shard 0's registration
// order first, then anything new from shard 1, and so on):
//
//   - a name registered on exactly one shard (node, engine, KV and
//     workload gauges — each lives on its owner's shard) keeps its
//     plain name and that shard's column;
//   - a name registered on several shards (sim/* kernel health,
//     trace/* recorder counters) yields a summed total under the plain
//     name — matching what the old cross-shard summing closures
//     exported — followed by one "shard<K>/<name>" column per owning
//     shard in shard order, so imbalance is visible, not just totals.
//
// The merge is pure column arithmetic in fixed order: deterministic,
// and independent of the worker count that drove the shards. A single
// registry is returned unchanged.
func MergeSharded(regs []*Registry) (*Registry, error) {
	if len(regs) == 0 {
		return nil, fmt.Errorf("metrics: merge: no registries")
	}
	if len(regs) == 1 {
		return regs[0], nil
	}
	base := regs[0].times
	for s, r := range regs[1:] {
		if len(r.times) != len(base) {
			return nil, fmt.Errorf("metrics: merge: shard %d has %d samples, shard 0 has %d",
				s+1, len(r.times), len(base))
		}
		for j := range base {
			if r.times[j] != base[j] {
				return nil, fmt.Errorf("metrics: merge: shard %d sample %d at t=%d, shard 0 at t=%d",
					s+1, j, int64(r.times[j]), int64(base[j]))
			}
		}
	}
	m := NewRegistry()
	m.merged = true
	m.times = base
	type owner struct{ shard, col int }
	owners := make(map[string][]owner)
	var order []string
	for s, r := range regs {
		for i, name := range r.names {
			if _, seen := owners[name]; !seen {
				order = append(order, name)
			}
			owners[name] = append(owners[name], owner{s, i})
		}
	}
	addColumn := func(name string, values []float64) {
		m.index[name] = len(m.names)
		m.names = append(m.names, name)
		m.values = append(m.values, values)
	}
	for _, name := range order {
		os := owners[name]
		if len(os) == 1 {
			addColumn(name, regs[os[0].shard].values[os[0].col])
			continue
		}
		total := make([]float64, len(base))
		for _, o := range os {
			for j, v := range regs[o.shard].values[o.col] {
				total[j] += v
			}
		}
		addColumn(name, total)
		for _, o := range os {
			addColumn(fmt.Sprintf("shard%d/%s", o.shard, name), regs[o.shard].values[o.col])
		}
	}
	return m, nil
}
