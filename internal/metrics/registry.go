package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/haechi-qos/haechi/internal/sim"
)

// Registry is a pull-based metrics registry: components register named
// gauges (a gauge is any func() float64 — counters register a closure
// over their current value), and a sampler calls Sample on a virtual-
// time cadence to snapshot every gauge at once. Samples are stored
// column-per-metric in registration order, so every export — CSV, JSON,
// Series — is deterministic without sorting.
//
// The registry is kernel-package code (single-threaded by contract) and
// does no scheduling of its own; the sampling cadence is owned by
// whoever drives the simulation.
type Registry struct {
	names []string
	index map[string]int
	fns   []func() float64

	times  []sim.Time
	values [][]float64 // values[i] is the column for metric i

	// merged marks a read-only registry built by MergeSharded: its
	// columns have no gauges behind them, so sampling it would corrupt
	// the column lengths.
	merged bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Register adds a gauge under name. Registering a duplicate name or a
// nil function is an error; registering after sampling has started is
// too (columns would have mismatched lengths).
func (r *Registry) Register(name string, fn func() float64) error {
	if name == "" {
		return fmt.Errorf("metrics: registry: empty metric name")
	}
	if fn == nil {
		return fmt.Errorf("metrics: registry: nil gauge for %q", name)
	}
	if _, dup := r.index[name]; dup {
		return fmt.Errorf("metrics: registry: duplicate metric %q", name)
	}
	if r.merged {
		return fmt.Errorf("metrics: registry: cannot register %q on a merged registry", name)
	}
	if len(r.times) > 0 {
		return fmt.Errorf("metrics: registry: cannot register %q after sampling started", name)
	}
	r.index[name] = len(r.names)
	r.names = append(r.names, name)
	r.fns = append(r.fns, fn)
	r.values = append(r.values, nil)
	return nil
}

// RegisterCounter registers a counter's current value as a gauge.
func (r *Registry) RegisterCounter(name string, c *Counter) error {
	return r.Register(name, func() float64 { return float64(c.Value()) })
}

// Names returns the metric names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Samples returns the number of sampling instants recorded.
func (r *Registry) Samples() int { return len(r.times) }

// Sample snapshots every registered gauge at virtual time t. Merged
// registries (MergeSharded) are export-only and must not be sampled.
func (r *Registry) Sample(t sim.Time) {
	if r.merged {
		panic("metrics: registry: cannot sample a merged registry")
	}
	r.times = append(r.times, t)
	for i, fn := range r.fns {
		r.values[i] = append(r.values[i], fn())
	}
}

// Series returns one metric's samples as a Series, or false if the
// name was never registered.
func (r *Registry) Series(name string) (*Series, bool) {
	i, ok := r.index[name]
	if !ok {
		return nil, false
	}
	s := &Series{Name: name}
	for j, t := range r.times {
		s.Add(t, r.values[i][j])
	}
	return s, true
}

// WriteCSV writes all samples in wide format: a "time_ns,<name>,..."
// header, then one row per sampling instant.
func (r *Registry) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "time_ns"); err != nil {
		return err
	}
	for _, name := range r.names {
		if _, err := io.WriteString(w, ","+name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for j, t := range r.times {
		row := strconv.FormatInt(int64(t), 10)
		for i := range r.names {
			row += "," + strconv.FormatFloat(r.values[i][j], 'g', -1, 64)
		}
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// registryJSON is the serialized registry shape: times once, then one
// column per metric in registration order.
type registryJSON struct {
	Times   []sim.Time       `json:"times_ns"`
	Metrics []registryColumn `json:"metrics"`
}

type registryColumn struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// MarshalJSON serializes the registry deterministically (registration
// order, no map iteration), so it is safe to include in byte-compared
// Results.
func (r *Registry) MarshalJSON() ([]byte, error) {
	out := registryJSON{Times: r.times, Metrics: make([]registryColumn, len(r.names))}
	for i, name := range r.names {
		out.Metrics[i] = registryColumn{Name: name, Values: r.values[i]}
	}
	return json.Marshal(out)
}

// WriteJSON writes the registry's JSON form to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r)
}
