package metrics

import (
	"fmt"
	"strings"

	"github.com/haechi-qos/haechi/internal/sim"
)

// Point is one sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// Series records (time, value) samples, e.g. per-period throughput for the
// paper's timeline figures (Figs. 16-19).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// MeanOver averages samples with T in [from, to).
func (s *Series) MeanOver(from, to sim.Time) float64 {
	var sum float64
	var n int
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the series as "name: v1 v2 v3 ...".
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, " %.0f", p.V)
	}
	return b.String()
}

// Counter is a monotonically increasing event count with snapshot support.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// PeriodLog records, for one client, the number of I/Os completed in each
// QoS period — the per-period blocks stacked in the paper's bar charts
// (Figs. 8-10, 13).
type PeriodLog struct {
	Completed []uint64
}

// Observe appends one period's completion count.
func (p *PeriodLog) Observe(count uint64) {
	p.Completed = append(p.Completed, count)
}

// Total sums all recorded periods.
func (p *PeriodLog) Total() uint64 {
	var t uint64
	for _, c := range p.Completed {
		t += c
	}
	return t
}

// Min returns the smallest per-period count (0 for an empty log); the
// reservation-guarantee check is "Min >= R_i" across measured periods.
func (p *PeriodLog) Min() uint64 {
	if len(p.Completed) == 0 {
		return 0
	}
	m := p.Completed[0]
	for _, c := range p.Completed[1:] {
		if c < m {
			m = c
		}
	}
	return m
}

// Mean returns the average per-period count.
func (p *PeriodLog) Mean() float64 {
	if len(p.Completed) == 0 {
		return 0
	}
	return float64(p.Total()) / float64(len(p.Completed))
}
