// Package metrics provides the measurement primitives used by the
// evaluation harness: a log-bucketed latency histogram (average, p99,
// p99.9 as reported in the paper's Fig. 15), time-series recording, and
// per-period completion counters.
package metrics

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/haechi-qos/haechi/internal/sim"
)

// subBucketBits sets histogram precision: 2^6 = 64 sub-buckets per power
// of two, i.e. better than 1.6% relative error — ample for tail latency
// reporting.
const subBucketBits = 6

const subBuckets = 1 << subBucketBits

// Histogram records non-negative durations with logarithmic bucketing.
// The zero value is ready to use.
type Histogram struct {
	counts [64 * subBuckets]uint64
	total  uint64
	sum    float64
	min    sim.Time
	max    sim.Time
}

func bucketIndex(v sim.Time) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - subBucketBits
	return int(u>>uint(exp)) + exp<<subBucketBits
}

// bucketLow returns a representative (lower-bound) value for bucket i.
func bucketLow(i int) sim.Time {
	if i < subBuckets {
		return sim.Time(i)
	}
	exp := i>>subBucketBits - 1
	mant := i & (subBuckets - 1)
	return sim.Time((uint64(subBuckets) + uint64(mant)) << uint(exp))
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v sim.Time) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() sim.Time {
	if h.total == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.total))
}

// Min returns the smallest recorded sample.
func (h *Histogram) Min() sim.Time { return h.min }

// Max returns the largest recorded sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Percentile returns the sample value at quantile p in [0,100]. With no
// samples it returns 0. The result is accurate to the bucket width
// (<1.6%), except that the exact maximum is returned for p spanning the
// last sample.
func (h *Histogram) Percentile(p float64) sim.Time {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if seen == h.total {
				// The rank falls in the final occupied bucket; the true
				// max is known exactly.
				return h.max
			}
			v := bucketLow(i)
			// A bucket lower bound can undershoot the true smallest
			// sample; clamp so results stay within [min, max].
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	*h = Histogram{}
}

// Summary is a compact view of a histogram in the form the paper reports
// (Fig. 15: average, 99%, 99.9% read latency).
type Summary struct {
	Count uint64
	Mean  sim.Time
	P50   sim.Time
	P99   sim.Time
	P999  sim.Time
	Max   sim.Time
}

// Summarize extracts a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.total,
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.max,
	}
}

// String formats the summary for table output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		s.Count, s.Mean, s.P50, s.P99, s.P999, s.Max)
}
