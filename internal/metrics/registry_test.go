package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

func TestRegistryRegisterErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", func() float64 { return 0 }); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register("g", nil); err == nil {
		t.Error("nil gauge accepted")
	}
	if err := r.Register("g", func() float64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("g", func() float64 { return 2 }); err == nil {
		t.Error("duplicate name accepted")
	}
	r.Sample(0)
	if err := r.Register("late", func() float64 { return 3 }); err == nil {
		t.Error("registration after sampling accepted")
	}
}

func TestRegistrySampleAndSeries(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	if err := r.Register("gauge", func() float64 { return v }); err != nil {
		t.Fatal(err)
	}
	var c Counter
	if err := r.RegisterCounter("count", &c); err != nil {
		t.Fatal(err)
	}
	r.Sample(10)
	v = 2.5
	c.Add(7)
	r.Sample(20)
	if r.Samples() != 2 {
		t.Fatalf("Samples() = %d, want 2", r.Samples())
	}
	if got := r.Names(); len(got) != 2 || got[0] != "gauge" || got[1] != "count" {
		t.Errorf("Names() = %v, want registration order [gauge count]", got)
	}
	s, ok := r.Series("gauge")
	if !ok || s.Len() != 2 {
		t.Fatalf("Series(gauge) = %v, %v", s, ok)
	}
	if vals := s.Values(); vals[0] != 1 || vals[1] != 2.5 {
		t.Errorf("gauge values = %v, want [1 2.5]", vals)
	}
	cs, _ := r.Series("count")
	if vals := cs.Values(); vals[0] != 0 || vals[1] != 7 {
		t.Errorf("counter values = %v, want [0 7]", vals)
	}
	if _, ok := r.Series("missing"); ok {
		t.Error("Series returned ok for unregistered name")
	}
}

func TestRegistryCSV(t *testing.T) {
	r := NewRegistry()
	v := 0.5
	_ = r.Register("a", func() float64 { return v })
	_ = r.Register("b", func() float64 { return -3 })
	r.Sample(100)
	v = 1e9
	r.Sample(200)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "time_ns,a,b\n100,0.5,-3\n200,1e+09,-3\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestRegistryJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	_ = r.Register("z/later", func() float64 { return 1 })
	_ = r.Register("a/earlier", func() float64 { return 2 })
	r.Sample(5)
	first, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := json.Marshal(r)
	if !bytes.Equal(first, second) {
		t.Error("two marshals of the same registry differ")
	}
	// Columns stay in registration order, not name order.
	var out struct {
		Times   []int64 `json:"times_ns"`
		Metrics []struct {
			Name   string    `json:"name"`
			Values []float64 `json:"values"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(first, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Metrics) != 2 || out.Metrics[0].Name != "z/later" || out.Metrics[1].Name != "a/earlier" {
		t.Errorf("metrics order = %+v, want registration order", out.Metrics)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != string(first) {
		t.Error("WriteJSON disagrees with MarshalJSON")
	}
}

func TestSeriesMeanOverEmptyWindow(t *testing.T) {
	var empty Series
	if got := empty.MeanOver(0, 100); got != 0 {
		t.Errorf("empty series MeanOver = %v, want 0", got)
	}
	s := Series{Name: "x"}
	s.Add(50, 10)
	// Window covering no samples must not divide by zero.
	if got := s.MeanOver(100, 200); got != 0 {
		t.Errorf("MeanOver(no samples) = %v, want 0", got)
	}
	// [from, to): a point exactly at `to` is excluded, at `from` included.
	if got := s.MeanOver(50, 51); got != 10 {
		t.Errorf("MeanOver inclusive-from = %v, want 10", got)
	}
	if got := s.MeanOver(0, 50); got != 0 {
		t.Errorf("MeanOver exclusive-to = %v, want 0", got)
	}
}

func TestSeriesMeanOverUnsortedSamples(t *testing.T) {
	s := Series{Name: "x"}
	// Samples appended out of time order must still be averaged by the
	// window filter, not by position.
	for _, p := range []Point{{T: 30, V: 3}, {T: 10, V: 1}, {T: 20, V: 2}, {T: 99, V: 100}} {
		s.Add(p.T, p.V)
	}
	if got := s.MeanOver(10, 31); got != 2 {
		t.Errorf("MeanOver(10,31) = %v, want 2", got)
	}
	if got := s.MeanOver(0, sim.Time(1<<40)); got != 26.5 {
		t.Errorf("MeanOver(all) = %v, want 26.5", got)
	}
}

// TestHistogramQuantilesAtBucketBoundaries pins the quantile semantics
// of the log-bucketed histogram at the edges that matter: the linear
// region boundary (64 with subBucketBits=6) and exact powers of two.
func TestHistogramQuantilesAtBucketBoundaries(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(64)
		h.Record(128)
	}
	// Rank 100 of 200 lands in the 64-bucket; 64 is a bucket lower bound,
	// so p50 is exact.
	if got := h.Percentile(50); got != 64 {
		t.Errorf("p50 = %d, want 64", got)
	}
	// Rank 198 lands in the final occupied bucket → reported as max.
	if got := h.Percentile(99); got != 128 {
		t.Errorf("p99 = %d, want 128 (max)", got)
	}
	if h.Percentile(0) != 64 || h.Percentile(100) != 128 {
		t.Errorf("p0/p100 = %d/%d, want 64/128", h.Percentile(0), h.Percentile(100))
	}

	// Values straddling the linear/log boundary stay exact on both sides:
	// 63 is linear, 64 the first log bucket's lower bound.
	var b Histogram
	b.Record(63)
	b.Record(64)
	if got := b.Percentile(50); got != 63 {
		t.Errorf("boundary p50 = %d, want 63", got)
	}
	if got := b.Percentile(100); got != 64 {
		t.Errorf("boundary p100 = %d, want 64", got)
	}

	// Off-boundary values report their bucket's lower bound: with
	// subBucketBits=6 the second octave has width-2 buckets, so 129
	// collapses to 128. (The final occupied bucket reports the exact max
	// and a lone bucket would be clamped to min, so bracket 129 with a
	// smaller and a larger sample to expose the raw lower bound.)
	var c Histogram
	c.Record(1)
	c.Record(129)
	c.Record(129)
	c.Record(1000)
	if got := c.Percentile(50); got != 128 {
		t.Errorf("mid-bucket p50 = %d, want 128 (bucket lower bound)", got)
	}
	if got := c.Percentile(100); got != 1000 {
		t.Errorf("p100 = %d, want exact max 1000", got)
	}
}
