package multiserver

import (
	"math/rand"
	"testing"

	"github.com/haechi-qos/haechi/internal/workload"
)

// scaled capacities: each server 15.7K/period, client NIC 4K/period.
func testConfig(servers int) Config {
	return Config{
		Servers:          servers,
		Scale:            100,
		RecordsPerServer: 128,
		Seed:             5,
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Servers: 0}, []ClientSpec{{}}); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := New(testConfig(2), nil); err == nil {
		t.Error("no clients accepted")
	}
	cfg := testConfig(2)
	cfg.RebalanceStep = 1.5
	if _, err := New(cfg, []ClientSpec{{}}); err == nil {
		t.Error("invalid rebalance step accepted")
	}
	if _, err := New(testConfig(2), []ClientSpec{{TotalReservation: -1}}); err == nil {
		t.Error("negative reservation accepted")
	}
	// Over-subscription fails admission at New: first the client's own
	// NIC bound, then a shard's aggregate bound.
	if _, err := New(testConfig(2), []ClientSpec{{TotalReservation: 1 << 40}}); err == nil {
		t.Error("client-cap violation accepted")
	}
	over := make([]ClientSpec, 9)
	for i := range over {
		over[i] = ClientSpec{TotalReservation: 4000} // 9*2000 = 18000 > 15700 per shard
	}
	if _, err := New(testConfig(2), over); err == nil {
		t.Error("aggregate over-subscription accepted")
	}
}

func TestRunValidation(t *testing.T) {
	mc, err := New(testConfig(2), []ClientSpec{{TotalReservation: 1000, DemandPerPeriod: 1500}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Run(-1, 2); err == nil {
		t.Error("negative warmup accepted")
	}
	if _, err := mc.Run(1, 0); err == nil {
		t.Error("zero measure accepted")
	}
	if _, err := mc.Run(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Run(1, 2); err == nil {
		t.Error("second Run accepted")
	}
}

// TestUniformKeysMeetReservations: with uniformly sharded access, equal
// splits suffice; every client meets its total reservation across two
// servers.
func TestUniformKeysMeetReservations(t *testing.T) {
	specs := make([]ClientSpec, 6)
	for i := range specs {
		specs[i] = ClientSpec{
			TotalReservation: 4000, // 2000 per server; 6*2000=12000 < 15700 each
			DemandPerPeriod:  5000,
			Keys:             &workload.UniformKeys{N: 256},
		}
	}
	mc, err := New(testConfig(2), specs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mc.Run(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, cr := range out.PerClient {
		if len(cr.Periods) != 4 {
			t.Fatalf("client %d: %d periods", i, len(cr.Periods))
		}
		if float64(cr.MinPeriod) < 0.97*float64(cr.TotalReservation) {
			t.Errorf("client %d min %d < total reservation %d", i, cr.MinPeriod, cr.TotalReservation)
		}
	}
}

// skewedKeys draws keys that land on server 0 with the given probability.
type skewedKeys struct {
	servers int
	records int
	hotProb float64
}

func (s *skewedKeys) Next(rng *rand.Rand) uint64 {
	row := uint64(rng.Intn(s.records))
	if rng.Float64() < s.hotProb {
		return row * uint64(s.servers) // shard 0
	}
	return row*uint64(s.servers) + uint64(1+rng.Intn(s.servers-1))
}

// TestSkewNeedsRebalancing: a client whose accesses all hit server 0 can
// only use half of an equally-split reservation; with pTrans-style
// rebalancing the reservation follows the demand and the client recovers.
func TestSkewNeedsRebalancing(t *testing.T) {
	build := func(rebalance int) ([]uint64, []int64, uint64) {
		specs := []ClientSpec{
			{ // the skewed client: everything goes to server 0, within
				// the per-server local capacity (C_L = 4000 at this scale)
				TotalReservation: 3000,
				DemandPerPeriod:  3300,
				Keys:             &skewedKeys{servers: 2, records: 100, hotProb: 1.0},
			},
		}
		// Six pressure clients, each at its NIC-bound maximum total
		// reservation (C_L = 4000 at this scale, 2000 per server),
		// reserve server 0 heavily so its pool cannot cover the skewed
		// client's shortfall.
		for p := 0; p < 6; p++ {
			specs = append(specs, ClientSpec{
				TotalReservation: 4000,
				DemandPerPeriod:  15700,
				Keys:             &workload.UniformKeys{N: 256},
			})
		}
		cfg := testConfig(2)
		cfg.RebalanceEvery = rebalance
		mc, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := mc.Run(2, 8)
		if err != nil {
			t.Fatal(err)
		}
		return out.PerClient[0].Periods, out.PerClient[0].FinalSplit, out.PerClient[0].MinPeriod
	}

	_, staticSplit, staticMin := build(0)
	if staticSplit[0] != 1500 || staticSplit[1] != 1500 {
		t.Fatalf("static split changed: %v", staticSplit)
	}
	// Static split: the skewed client's server-1 tokens are useless; on
	// server 0 it holds only 1500 and competes for leftovers.
	if staticMin >= 3000 {
		t.Fatalf("static split unexpectedly met the reservation: min %d", staticMin)
	}

	periods, split, min := build(2)
	if split[0] <= 2400 {
		t.Errorf("rebalancing did not shift reservation to the hot server: %v", split)
	}
	if split[0]+split[1] != 3000 {
		t.Errorf("rebalancing leaked reservation: %v", split)
	}
	// After convergence the client meets its total reservation.
	last := periods[len(periods)-1]
	if float64(last) < 0.97*3000 {
		t.Errorf("rebalanced client still missing: last period %d", last)
	}
	if min > last {
		t.Errorf("expected convergence over time: min %d, last %d", min, last)
	}
}

// TestServersAccessor and kernel exposure.
func TestAccessors(t *testing.T) {
	mc, err := New(testConfig(3), []ClientSpec{{TotalReservation: 3000, DemandPerPeriod: 3300}})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Servers() != 3 {
		t.Errorf("Servers = %d", mc.Servers())
	}
	if mc.Kernel() == nil {
		t.Error("nil kernel")
	}
}

// TestSplitEqually covers the remainder distribution.
func TestSplitEqually(t *testing.T) {
	parts := splitEqually(10, 3)
	if parts[0] != 4 || parts[1] != 3 || parts[2] != 3 {
		t.Errorf("splitEqually(10,3) = %v", parts)
	}
	var sum int64
	for _, p := range splitEqually(1_000_003, 7) {
		sum += p
	}
	if sum != 1_000_003 {
		t.Errorf("split does not sum: %d", sum)
	}
}
