// Package multiserver extends Haechi to multiple data nodes — the paper's
// stated future work (Section V: "we plan to extend Haechi to
// environments with multiple servers and distributed clients, similar to
// that for conventional distributed storage [bQueue, pShift, pTrans]").
//
// The design follows the cited token-shifting line of work: every data
// node runs an unmodified Haechi monitor over its own capacity; a client
// holds one QoS engine per server, its records are sharded across the
// servers (key mod S), and its total reservation is split into per-server
// reservations. A lightweight rebalancer periodically moves reservation
// between a client's per-server slices toward its observed demand split
// (bounded per round, and only where the target server's admission
// control accepts the shift) — the dynamic token allocation idea of
// pShift/pTrans applied to Haechi's reservations.
package multiserver

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/core"
	"github.com/haechi-qos/haechi/internal/kvstore"
	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/workload"
)

// Config assembles a multi-server testbed.
type Config struct {
	// Servers is the number of data nodes (>= 1).
	Servers int
	// Fabric and Params follow the single-server cluster conventions;
	// zero values take the calibrated defaults.
	Fabric rdma.Config
	Params core.Params
	// Scale divides fabric rates and rescales control constants, as
	// cluster.Config.ApplyScale does.
	Scale float64
	// RecordsPerServer is the number of records populated on each shard.
	RecordsPerServer int
	// RebalanceEvery moves reservations toward observed demand every N
	// periods (0 disables rebalancing — static equal splits).
	RebalanceEvery int
	// RebalanceStep is the fraction of the imbalance corrected per round
	// (0 defaults to 0.5).
	RebalanceStep float64
	// ProfiledPerServer is each node's per-period capacity (0 derives
	// from the fabric rate).
	ProfiledPerServer int64
	// Sigma is the profiled deviation (0 derives 1%).
	Sigma float64
	// Seed drives all randomness.
	Seed int64
}

// ClientSpec describes one distributed client.
type ClientSpec struct {
	// TotalReservation is the client's reservation across the whole
	// cluster, initially split equally over the servers.
	TotalReservation int64
	// DemandPerPeriod is the total requests per period (posted at period
	// start, the QoS burst form).
	DemandPerPeriod uint64
	// Keys chooses keys over the global keyspace
	// [0, Servers*RecordsPerServer); nil means scrambled zipfian.
	Keys workload.KeyChooser
}

// server is one data node: store + monitor.
type server struct {
	node    *rdma.Node
	store   *kvstore.Store
	monitor *core.Monitor
}

// client is one distributed client's runtime state.
type client struct {
	spec    ClientSpec
	node    *rdma.Node
	engines []*core.Engine
	kvs     []*kvstore.Client
	gen     *workload.Generator
	// perServerRes is the current reservation split.
	perServerRes []int64
	// routed counts requests routed to each server since the last
	// rebalance round.
	routed []uint64

	// Periods logs total completions per period once measuring.
	Periods   metrics.PeriodLog
	measuring bool
	skipNext  bool
}

// Cluster is the assembled multi-server testbed.
type Cluster struct {
	cfg     Config
	kernel  *sim.Kernel
	fabric  *rdma.Fabric
	servers []*server
	clients []*client
	ran     bool
}

func (c Config) normalize() (Config, error) {
	if c.Servers <= 0 {
		return c, fmt.Errorf("multiserver: Servers must be positive, got %d", c.Servers)
	}
	if c.Fabric == (rdma.Config{}) {
		c.Fabric = rdma.NewDefaultConfig()
	}
	if c.Params == (core.Params{}) {
		c.Params = core.NewDefaultParams()
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Scale > 1 {
		c.Fabric = c.Fabric.Scaled(c.Scale)
		if b := int64(float64(c.Params.Batch) / c.Scale); b >= 1 {
			c.Params.Batch = b
		} else {
			c.Params.Batch = 1
		}
		stretch := func(v sim.Time) sim.Time {
			v = sim.Time(float64(v) * c.Scale)
			if v > c.Params.Period/10 {
				v = c.Params.Period / 10
			}
			return v
		}
		c.Params.Tick = stretch(c.Params.Tick)
		c.Params.CheckInterval = stretch(c.Params.CheckInterval)
		c.Params.ReportInterval = stretch(c.Params.ReportInterval)
	}
	if c.RecordsPerServer == 0 {
		c.RecordsPerServer = 1024
	}
	if c.RebalanceStep == 0 {
		c.RebalanceStep = 0.5
	}
	if c.RebalanceStep < 0 || c.RebalanceStep > 1 {
		return c, fmt.Errorf("multiserver: RebalanceStep must be in (0,1], got %v", c.RebalanceStep)
	}
	if c.ProfiledPerServer == 0 {
		c.ProfiledPerServer = int64(c.Fabric.ServerOneSidedRate * c.Params.Period.Seconds())
	}
	if c.Sigma == 0 {
		c.Sigma = 0.01 * float64(c.ProfiledPerServer)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if err := c.Fabric.Validate(); err != nil {
		return c, err
	}
	if err := c.Params.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// New assembles the topology: S data nodes, each with a sharded store and
// its own Haechi monitor, plus one node per client holding S engines.
func New(cfg Config, specs []ClientSpec) (*Cluster, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("multiserver: at least one client required")
	}
	k := sim.New(cfg.Seed)
	fabric, err := rdma.NewFabric(k, cfg.Fabric)
	if err != nil {
		return nil, err
	}
	mc := &Cluster{cfg: cfg, kernel: k, fabric: fabric}

	// Keep shard tables at most half full so probes of absent keys
	// terminate quickly.
	storeCap := 1
	for storeCap < cfg.RecordsPerServer*2 {
		storeCap <<= 1
	}
	for s := 0; s < cfg.Servers; s++ {
		node, err := fabric.AddServer(fmt.Sprintf("datanode-%d", s))
		if err != nil {
			return nil, err
		}
		disp := rdma.NewDispatcher(node)
		store, err := kvstore.NewStore(node, disp, kvstore.Options{Capacity: storeCap, RecordSize: rdma.DataIOSize})
		if err != nil {
			return nil, err
		}
		// Shard s holds the global keys k with k mod Servers == s, stored
		// under their global ids.
		val := make([]byte, 64)
		for i := 0; i < cfg.RecordsPerServer; i++ {
			globalKey := uint64(i*cfg.Servers + s)
			if err := store.Put(globalKey, val); err != nil {
				return nil, err
			}
		}
		est, err := core.NewCapacityEstimator(cfg.Params, cfg.ProfiledPerServer, cfg.Sigma)
		if err != nil {
			return nil, err
		}
		adm, err := core.NewAdmissionController(cfg.ProfiledPerServer,
			int64(cfg.Fabric.ClientOneSidedRate*cfg.Params.Period.Seconds()))
		if err != nil {
			return nil, err
		}
		mon, err := core.NewMonitor(cfg.Params, node, est, adm)
		if err != nil {
			return nil, err
		}
		mc.servers = append(mc.servers, &server{node: node, store: store, monitor: mon})
	}

	for i, spec := range specs {
		if err := mc.addClient(i, spec); err != nil {
			return nil, fmt.Errorf("multiserver: client %d: %w", i, err)
		}
	}
	return mc, nil
}

func (mc *Cluster) addClient(i int, spec ClientSpec) error {
	if spec.TotalReservation < 0 {
		return fmt.Errorf("negative reservation")
	}
	cfg := mc.cfg
	// The client initiates all its I/O through one NIC regardless of how
	// many servers it spans: its total reservation is bounded by the
	// local capacity C_L*T, the multi-server form of Definition 2's
	// local constraint.
	clientCap := int64(cfg.Fabric.ClientOneSidedRate * cfg.Params.Period.Seconds())
	if spec.TotalReservation > clientCap {
		return fmt.Errorf("total reservation %d exceeds the client's local capacity %d (C_L*T)",
			spec.TotalReservation, clientCap)
	}
	node, err := mc.fabric.AddClient(fmt.Sprintf("client-%02d", i))
	if err != nil {
		return err
	}
	disp := rdma.NewDispatcher(node)

	cl := &client{
		spec:         spec,
		node:         node,
		perServerRes: splitEqually(spec.TotalReservation, cfg.Servers),
		routed:       make([]uint64, cfg.Servers),
	}
	for s, srv := range mc.servers {
		kv, err := kvstore.Attach(node, nil, srv.store)
		if err != nil {
			return err
		}
		kv.PrimeCache(cfg.RecordsPerServer * cfg.Servers)
		grant, err := srv.monitor.Admit(node, cl.perServerRes[s])
		if err != nil {
			return err
		}
		sender := func(key uint64, done func()) {
			_ = kv.Get(key, func([]byte, error) { done() })
		}
		// Engines register sender-scoped handlers, so all S engines share
		// this client node's dispatcher without clashing.
		eng, err := core.NewEngine(cfg.Params, grant, node, disp, 0, core.IOSender(sender))
		if err != nil {
			return err
		}
		cl.engines = append(cl.engines, eng)
		cl.kvs = append(cl.kvs, kv)
	}

	// The generator posts the client's whole demand; the submit function
	// routes each key to its shard's engine.
	keys := spec.Keys
	if keys == nil {
		z, err := workload.NewScrambledZipfian(uint64(cfg.RecordsPerServer * cfg.Servers))
		if err != nil {
			return err
		}
		keys = z
	}
	submit := func(key uint64, done func()) {
		s := int(key % uint64(cfg.Servers))
		cl.routed[s]++
		cl.engines[s].Request(key, done)
	}
	gen, err := workload.NewGenerator(mc.kernel, cfg.Seed+int64(i)*104729, keys, workload.Burst{}, cfg.Params.Period, submit)
	if err != nil {
		return err
	}
	cl.gen = gen
	// Drive the per-period demand from the first server's period starts.
	cl.engines[0].OnPeriodStart = func(period int) {
		mc.harvest(cl)
		gen.BeginPeriod(spec.DemandPerPeriod)
	}
	mc.clients = append(mc.clients, cl)
	return nil
}

func splitEqually(total int64, n int) []int64 {
	out := make([]int64, n)
	base := total / int64(n)
	rem := total % int64(n)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

func (mc *Cluster) harvest(cl *client) {
	done := cl.gen.TakePeriodCompleted()
	if !cl.measuring {
		return
	}
	if cl.skipNext {
		cl.skipNext = false
		return
	}
	cl.Periods.Observe(done)
}

// rebalance is the pTrans-style reservation shift: move each client's
// per-server reservations toward its observed demand distribution,
// bounded by RebalanceStep per round and by each target monitor's
// admission control.
func (mc *Cluster) rebalance() {
	for _, cl := range mc.clients {
		var total uint64
		for _, r := range cl.routed {
			total += r
		}
		if total == 0 || cl.spec.TotalReservation == 0 {
			continue
		}
		// Two passes conserve the client's total reservation: decreases
		// first (freeing capacity on cold servers), then increases on hot
		// servers bounded by what was actually freed plus any admission
		// headroom; an amount that no hot server accepts is handed back
		// to the slices it was taken from.
		var freed int64
		decreasedFrom := make([]int, 0, len(cl.routed))
		for s := range cl.routed {
			desired := int64(float64(cl.spec.TotalReservation) * float64(cl.routed[s]) / float64(total))
			if desired >= cl.perServerRes[s] {
				continue
			}
			next := cl.perServerRes[s] + int64(float64(desired-cl.perServerRes[s])*mc.cfg.RebalanceStep)
			if next < 0 {
				next = 0
			}
			if err := mc.servers[s].monitor.SetReservation(engineID(cl, s), next); err == nil {
				freed += cl.perServerRes[s] - next
				cl.perServerRes[s] = next
				decreasedFrom = append(decreasedFrom, s)
			}
		}
		for s := range cl.routed {
			if freed <= 0 {
				break
			}
			desired := int64(float64(cl.spec.TotalReservation) * float64(cl.routed[s]) / float64(total))
			if desired <= cl.perServerRes[s] {
				continue
			}
			grow := desired - cl.perServerRes[s]
			if grow > freed {
				grow = freed
			}
			// Binary back-off: try the full grow, then halves, so a
			// partially full server still absorbs what it can.
			for grow > 0 {
				if err := mc.servers[s].monitor.SetReservation(engineID(cl, s), cl.perServerRes[s]+grow); err == nil {
					cl.perServerRes[s] += grow
					freed -= grow
					break
				}
				grow /= 2
			}
		}
		// Return any unplaced amount to the slices it came from so the
		// total reservation is conserved.
		for _, s := range decreasedFrom {
			if freed <= 0 {
				break
			}
			if err := mc.servers[s].monitor.SetReservation(engineID(cl, s), cl.perServerRes[s]+freed); err == nil {
				cl.perServerRes[s] += freed
				freed = 0
			}
		}
		for s := range cl.routed {
			cl.routed[s] = 0
		}
	}
}

// engineID recovers the client's id on server s (admission order is the
// same on every server: client index).
func engineID(cl *client, s int) int {
	return cl.engines[s].ID()
}

// Results summarizes a run.
type Results struct {
	// PerClient holds each client's measured per-period totals.
	PerClient []ClientResult
	// TotalCompleted sums all clients over the measure window.
	TotalCompleted uint64
}

// ClientResult is one client's outcome.
type ClientResult struct {
	TotalReservation int64
	Periods          []uint64
	Total            uint64
	MinPeriod        uint64
	MeanPeriod       float64
	MetReservation   bool
	// FinalSplit is the reservation split after any rebalancing.
	FinalSplit []int64
}

// Run executes warmup + measure periods and returns per-client results.
func (mc *Cluster) Run(warmupPeriods, measurePeriods int) (*Results, error) {
	if mc.ran {
		return nil, fmt.Errorf("multiserver: cluster already ran")
	}
	if warmupPeriods < 0 || measurePeriods <= 0 {
		return nil, fmt.Errorf("multiserver: invalid windows %d/%d", warmupPeriods, measurePeriods)
	}
	mc.ran = true
	for _, srv := range mc.servers {
		if err := srv.monitor.Start(); err != nil {
			return nil, err
		}
	}
	if mc.cfg.RebalanceEvery > 0 {
		interval := sim.Time(mc.cfg.RebalanceEvery) * mc.cfg.Params.Period
		// Rebalance between periods: just before each boundary the routed
		// counters hold the window's demand split.
		if _, err := mc.kernel.Every(interval-mc.cfg.Params.CheckInterval, interval, mc.rebalance); err != nil {
			return nil, err
		}
	}
	T := mc.cfg.Params.Period
	warmEnd := mc.kernel.Now() + sim.Time(warmupPeriods)*T
	measureEnd := warmEnd + sim.Time(measurePeriods)*T
	mc.kernel.At(warmEnd, func() {
		for _, cl := range mc.clients {
			cl.measuring = true
			cl.skipNext = true
		}
	})
	mc.kernel.At(measureEnd+T/2, func() {
		for _, cl := range mc.clients {
			cl.measuring = false
		}
	})
	mc.kernel.RunUntil(measureEnd + 3*T/4)
	for _, srv := range mc.servers {
		srv.monitor.Stop()
	}

	out := &Results{}
	for _, cl := range mc.clients {
		cr := ClientResult{
			TotalReservation: cl.spec.TotalReservation,
			Periods:          cl.Periods.Completed,
			Total:            cl.Periods.Total(),
			MinPeriod:        cl.Periods.Min(),
			MeanPeriod:       cl.Periods.Mean(),
			FinalSplit:       append([]int64(nil), cl.perServerRes...),
		}
		cr.MetReservation = len(cr.Periods) > 0 && int64(cr.MinPeriod) >= cl.spec.TotalReservation
		out.PerClient = append(out.PerClient, cr)
		out.TotalCompleted += cr.Total
	}
	return out, nil
}

// Kernel exposes the simulation kernel.
func (mc *Cluster) Kernel() *sim.Kernel { return mc.kernel }

// Servers returns the number of data nodes.
func (mc *Cluster) Servers() int { return len(mc.servers) }
