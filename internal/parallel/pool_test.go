package parallel

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryJobExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		var calls [64]int32
		for round := 0; round < 10; round++ {
			p.Run(64, func(i int) { atomic.AddInt32(&calls[i], 1) })
		}
		p.Close()
		for i, c := range calls {
			if c != 10 {
				t.Fatalf("workers=%d: job %d ran %d times, want 10", workers, i, c)
			}
		}
	}
}

// TestPoolRunIsABarrier pins the happens-before edge between batches:
// batch N+1's jobs must observe every write made by batch N's jobs.
func TestPoolRunIsABarrier(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 32
	vals := make([]int, n)
	for round := 1; round <= 50; round++ {
		p.Run(n, func(i int) {
			if vals[i] != round-1 {
				panic("barrier violated")
			}
			vals[i] = round
		})
	}
	for i, v := range vals {
		if v != 50 {
			t.Fatalf("vals[%d] = %d, want 50", i, v)
		}
	}
}

func TestPoolSingleWorkerRunsInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var order []int
	p.Run(8, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker pool ran out of order: %v", order)
		}
	}
}

func TestPoolEmptyBatch(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	p.Run(0, func(i int) { t.Fatal("job ran for empty batch") })
}
