package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(workers, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := make([]int, 20)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: got %v, want %v", workers, got, want)
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 16, func(i int) (int, error) {
			switch i {
			case 5:
				return 0, errA
			case 11:
				return 0, errors.New("b")
			}
			return i, nil
		})
		if err != errA {
			t.Fatalf("workers=%d: got %v, want error from index 5", workers, err)
		}
	}
}

// TestMapFailureStillRunsEveryJob pins the run-everything contract:
// a failing job must not change which other jobs execute, at any worker
// count, so side effects (observer hooks, partial results) are identical
// whether the sweep runs sequentially or on a pool.
func TestMapFailureStillRunsEveryJob(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4, 16} {
		var calls [32]int32
		out, err := Map(workers, 32, func(i int) (int, error) {
			atomic.AddInt32(&calls[i], 1)
			if i == 3 {
				return 0, boom
			}
			return i + 1, nil
		})
		if err != boom {
			t.Fatalf("workers=%d: got err %v, want boom", workers, err)
		}
		for i, c := range calls {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
		for i, v := range out {
			want := i + 1
			if i == 3 {
				want = 0
			}
			if v != want {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, want)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	var calls [100]int32
	_, err := Map(8, 100, func(i int) (struct{}, error) {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapWorkerCountDoesNotChangeResults(t *testing.T) {
	run := func(workers int) []string {
		out, err := Map(workers, 37, func(i int) (string, error) {
			return fmt.Sprintf("point-%03d", i*7%37), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 3, 8, 37} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverged from sequential", workers)
		}
	}
}
