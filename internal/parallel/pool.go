package parallel

import (
	"runtime"
	"sync"
)

// Pool is a fixed set of worker goroutines that repeatedly executes
// indexed job batches. It exists for callers that issue many small
// barrier-synchronized rounds — the shard coordinator runs one batch
// per synchronization quantum — where Map's per-call goroutine spawn
// would dominate the work.
//
// The determinism contract matches Map: a batch's side effects depend
// only on (n, job), never on the worker count. Jobs within one batch
// run concurrently and must not share mutable state; Run returns only
// after every job has finished, so the barrier gives callers a
// happens-before edge between consecutive batches.
type Pool struct {
	workers int
	jobs    chan poolJob
	wg      sync.WaitGroup
}

type poolJob struct {
	i    int
	fn   func(i int)
	done *sync.WaitGroup
}

// NewPool starts a pool of the given size. Workers <= 0 selects
// runtime.GOMAXPROCS(0). A pool of 1 spawns no goroutines: Run executes
// inline, making the single-worker path identical to a plain loop.
// Call Close when done with a multi-worker pool.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers == 1 {
		return p
	}
	p.jobs = make(chan poolJob)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				j.fn(j.i)
				j.done.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes job(0) … job(n-1) and returns once all have completed.
// With one worker the jobs run inline, in index order.
func (p *Pool) Run(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		p.jobs <- poolJob{i: i, fn: job, done: &done}
	}
	done.Wait()
}

// Close stops the workers. The pool must not be used afterwards.
// Closing a single-worker pool is a no-op.
func (p *Pool) Close() {
	if p.jobs == nil {
		return
	}
	close(p.jobs)
	p.wg.Wait()
	p.jobs = nil
}
