// Package parallel runs independent simulation points concurrently.
//
// The simulation stack itself is strictly single-threaded and
// deterministic: one kernel, one goroutine, no shared mutable state
// (DESIGN.md §6). Experiment sweeps, however, are embarrassingly
// parallel — each (config, seed) point builds its own kernel, fabric and
// cluster and shares nothing with its neighbours — so the only safe
// concurrency in this codebase lives here, at the boundary ABOVE the
// kernels: a bounded worker pool that runs whole points on separate
// kernels and merges their results by input index.
//
// Determinism contract: Map's output depends only on (n, job), never on
// the worker count or on goroutine scheduling. Results are merged into
// the slot matching the input index, and the reported error is the
// lowest-indexed one, so callers observe exactly what a sequential loop
// would have produced. This package is deliberately excluded from the
// haechilint no-concurrency allowlist; nothing below it (sim, rdma,
// core, kvstore, workload) may import it or spawn goroutines.
package parallel

import (
	"runtime"
	"sync"
)

// Map runs job(0) … job(n-1) on a bounded pool of workers and returns
// the results ordered by input index. Every job runs exactly once even
// if an earlier one fails — so side effects, like the results, are
// identical at every worker count. If any job returns an error, Map
// returns the error of the lowest-indexed failing job (alongside the
// full result slice; a failed job's slot holds whatever value the job
// returned next to its error). Workers <= 0 selects
// runtime.GOMAXPROCS(0). Jobs must be independent: they run
// concurrently and must not share mutable state.
func Map[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		// Sequential fast path: no goroutines, same run-everything
		// semantics as the pool below.
		var firstErr error
		for i := 0; i < n; i++ {
			var err error
			out[i], err = job(i)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return out, firstErr
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
