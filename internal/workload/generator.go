package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/sim"
)

// InfiniteDemand makes a client backlogged for the whole run (used when
// profiling saturation throughput, Experiments 1A/1B).
const InfiniteDemand = uint64(math.MaxUint32)

// Submit delivers one request to the I/O path (the Haechi QoS engine, or
// a bare sender). done must be invoked exactly once, when the I/O
// completes.
type Submit func(key uint64, done func())

// Pattern is a temporal request pattern: how a period's demand is spread
// over the period.
type Pattern interface {
	fmt.Stringer
	newDriver(g *Generator) driver
}

// driver is the per-generator issuing state machine for a pattern.
type driver interface {
	beginPeriod(demand uint64)
	onCompletion()
	stop()
}

// Interface compliance.
var (
	_ Pattern = Burst{}
	_ Pattern = ConstantRate{}
	_ Pattern = Poisson{}
)

// Burst is the paper's burst request pattern. With Window > 0 it is the
// closed-loop form used for saturation profiling (Experiment 1A: "a
// client sends an initial burst of 64 requests ... and subsequently keeps
// 64 requests outstanding at all times"). With Window == 0 the entire
// period demand is submitted at the start of the period, the form the QoS
// experiments assume (Example 2: "all clients send a burst of R_i
// requests at t = 0") — the QoS engine then owns the queueing. Window 0
// requires finite demand (not InfiniteDemand).
type Burst struct {
	// Window is the number of outstanding requests (0 = submit the whole
	// demand up front).
	Window int
}

// String names the pattern.
func (b Burst) String() string {
	if b.Window <= 0 {
		return "burst(all)"
	}
	return fmt.Sprintf("burst(%d)", b.Window)
}

func (b Burst) newDriver(g *Generator) driver {
	if b.Window <= 0 {
		return &burstAllDriver{g: g}
	}
	return &burstDriver{g: g, window: b.Window}
}

// burstAllDriver submits the period's entire demand immediately.
type burstAllDriver struct {
	g *Generator
}

func (d *burstAllDriver) beginPeriod(demand uint64) {
	for i := uint64(0); i < demand; i++ {
		d.g.issue()
	}
}

func (d *burstAllDriver) onCompletion() {}

func (d *burstAllDriver) stop() {}

type burstDriver struct {
	g           *Generator
	window      int
	target      uint64
	issued      uint64
	outstanding int
}

func (d *burstDriver) beginPeriod(demand uint64) {
	d.target = demand
	d.issued = 0
	d.fill()
}

func (d *burstDriver) fill() {
	for d.outstanding < d.window && d.issued < d.target {
		d.issued++
		d.outstanding++
		d.g.issue()
	}
}

func (d *burstDriver) onCompletion() {
	d.outstanding--
	d.fill()
}

func (d *burstDriver) stop() { d.target = 0 }

// ConstantRate is the paper's constant-rate request pattern: the period's
// demand is issued open-loop at equal time intervals across the period.
type ConstantRate struct{}

// String names the pattern.
func (ConstantRate) String() string { return "constant-rate" }

func (ConstantRate) newDriver(g *Generator) driver {
	return &constantRateDriver{g: g}
}

type constantRateDriver struct {
	g      *Generator
	ticker *sim.Ticker
	issued uint64
	target uint64
}

func (d *constantRateDriver) beginPeriod(demand uint64) {
	d.stop()
	if demand == 0 {
		return
	}
	d.issued = 0
	d.target = demand
	interval := d.g.periodLen / sim.Time(demand)
	if interval <= 0 {
		interval = 1
	}
	t, err := d.g.k.Every(0, interval, func() {
		if d.issued >= d.target {
			d.stop()
			return
		}
		d.issued++
		d.g.issue()
	})
	if err == nil {
		d.ticker = t
	}
}

func (d *constantRateDriver) onCompletion() {}

func (d *constantRateDriver) stop() {
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}

// Generator drives one client's workload: it draws keys, issues requests
// according to its pattern, and records completion latency (submission to
// completion, including any token-wait queueing at the QoS engine — the
// paper's Fig. 15 latencies include client-side queueing).
type Generator struct {
	k         *sim.Kernel
	rng       *rand.Rand
	keys      KeyChooser
	submit    Submit
	periodLen sim.Time

	drv driver

	Latency metrics.Histogram

	// In-flight requests live in a slot pool: each slot carries the
	// submission time and a completion callback bound once to the slot
	// index and reused for every request that later occupies the slot.
	// Unlike a FIFO of start times this stays correct when completions
	// cross (multiserver routes one generator's keys to independent
	// engines), and the pool stops allocating once it reaches the
	// high-water outstanding count.
	slots []genSlot
	free  []int32

	issuedTotal         uint64
	completedTotal      uint64
	completedThisPeriod uint64
}

type genSlot struct {
	start  sim.Time
	doneFn func()
}

// NewGenerator builds a generator. periodLen is the QoS period length T.
func NewGenerator(k *sim.Kernel, seed int64, keys KeyChooser, pattern Pattern, periodLen sim.Time, submit Submit) (*Generator, error) {
	if k == nil || keys == nil || pattern == nil || submit == nil {
		return nil, fmt.Errorf("workload: NewGenerator requires kernel, keys, pattern and submit")
	}
	if periodLen <= 0 {
		return nil, fmt.Errorf("workload: period length must be positive, got %v", periodLen)
	}
	g := &Generator{
		k:         k,
		rng:       rand.New(rand.NewSource(seed)),
		keys:      keys,
		submit:    submit,
		periodLen: periodLen,
	}
	g.drv = pattern.newDriver(g)
	return g, nil
}

// BeginPeriod starts a new QoS period with the given demand (number of
// requests the client wants served this period).
func (g *Generator) BeginPeriod(demand uint64) {
	g.drv.beginPeriod(demand)
}

// Stop ceases issuing.
func (g *Generator) Stop() { g.drv.stop() }

// Issued returns the total number of requests submitted.
func (g *Generator) Issued() uint64 { return g.issuedTotal }

// Completed returns the total number of requests completed.
func (g *Generator) Completed() uint64 { return g.completedTotal }

// TakePeriodCompleted returns and resets the completions since the last
// call; the cluster harvests it at each period boundary.
func (g *Generator) TakePeriodCompleted() uint64 {
	c := g.completedThisPeriod
	g.completedThisPeriod = 0
	return c
}

func (g *Generator) issue() {
	key := g.keys.Next(g.rng)
	var s int32
	if n := len(g.free); n > 0 {
		s = g.free[n-1]
		g.free = g.free[:n-1]
	} else {
		s = int32(len(g.slots))
		g.slots = append(g.slots, genSlot{})
		i := s // the bound callback captures the index, not a slot pointer,
		// so pool growth relocating the slab is harmless.
		g.slots[s].doneFn = func() { g.complete(i) }
	}
	g.slots[s].start = g.k.Now()
	g.issuedTotal++
	g.submit(key, g.slots[s].doneFn)
}

func (g *Generator) complete(slot int32) {
	g.Latency.Record(g.k.Now() - g.slots[slot].start)
	g.free = append(g.free, slot)
	g.completedTotal++
	g.completedThisPeriod++
	g.drv.onCompletion()
}

// Poisson is an open-loop pattern with exponentially distributed
// inter-arrival times at rate demand/T — an extension beyond the paper's
// two patterns, for workloads without periodic structure. The period's
// demand sets the mean rate; the actual count per period varies.
type Poisson struct{}

// String names the pattern.
func (Poisson) String() string { return "poisson" }

func (Poisson) newDriver(g *Generator) driver {
	return &poissonDriver{g: g}
}

type poissonDriver struct {
	g       *Generator
	timer   sim.Timer
	rate    float64 // arrivals per nanosecond
	stopped bool
}

func (d *poissonDriver) beginPeriod(demand uint64) {
	d.stop()
	d.stopped = false
	if demand == 0 {
		return
	}
	d.rate = float64(demand) / float64(d.g.periodLen)
	d.schedule()
}

func (d *poissonDriver) schedule() {
	gap := sim.Time(d.g.rng.ExpFloat64() / d.rate)
	if gap < 1 {
		gap = 1
	}
	d.timer = d.g.k.Schedule(gap, func() {
		if d.stopped {
			return
		}
		d.g.issue()
		d.schedule()
	})
}

func (d *poissonDriver) onCompletion() {}

func (d *poissonDriver) stop() {
	d.stopped = true
	d.timer.Cancel()
	d.timer = sim.Timer{}
}
