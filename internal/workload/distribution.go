package workload

import (
	"fmt"
	"math"
)

// UniformSplit divides total I/Os equally among n clients (the paper's
// Uniform demand/reservation distribution); remainders go to the first
// clients so the parts always sum to total.
func UniformSplit(total uint64, n int) []uint64 {
	out := make([]uint64, n)
	if n == 0 {
		return out
	}
	base := total / uint64(n)
	rem := total % uint64(n)
	for i := range out {
		out[i] = base
		if uint64(i) < rem {
			out[i]++
		}
	}
	return out
}

// SpikeSplit builds the paper's Spike distribution: the first high clients
// receive highVal each, the rest lowVal each (Experiment 1C: 3 clients at
// 340K, 7 at 80K; Set 3: 3 at 285K, 7 at 80K).
func SpikeSplit(n, high int, highVal, lowVal uint64) ([]uint64, error) {
	if high < 0 || high > n {
		return nil, fmt.Errorf("workload: spike high count %d outside [0,%d]", high, n)
	}
	out := make([]uint64, n)
	for i := range out {
		if i < high {
			out[i] = highVal
		} else {
			out[i] = lowVal
		}
	}
	return out, nil
}

// ZipfGroupSplit implements the paper's Zipf reservation distribution:
// clients are divided into groups (5 groups for 10 clients), group g's
// share is proportional to 1/(g+1)^exponent (exponent 0.6 in the paper),
// and every client in a group gets the same value. The parts sum to total.
func ZipfGroupSplit(total uint64, n, groups int, exponent float64) ([]uint64, error) {
	if n <= 0 || groups <= 0 || groups > n {
		return nil, fmt.Errorf("workload: invalid zipf grouping n=%d groups=%d", n, groups)
	}
	if n%groups != 0 {
		return nil, fmt.Errorf("workload: %d clients not divisible into %d groups", n, groups)
	}
	perGroup := n / groups
	weights := make([]float64, groups)
	var wsum float64
	for g := range weights {
		weights[g] = 1 / math.Pow(float64(g+1), exponent)
		wsum += weights[g]
	}
	out := make([]uint64, n)
	var assigned uint64
	for g := 0; g < groups; g++ {
		share := uint64(float64(total) * weights[g] / wsum / float64(perGroup))
		for c := 0; c < perGroup; c++ {
			out[g*perGroup+c] = share
			assigned += share
		}
	}
	// Distribute integer-rounding remainder to the first clients.
	i := 0
	for assigned < total {
		out[i%n]++
		assigned++
		i++
	}
	return out, nil
}

// Sum adds up a distribution.
func Sum(parts []uint64) uint64 {
	var t uint64
	for _, p := range parts {
		t += p
	}
	return t
}
