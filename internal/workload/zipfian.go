// Package workload generates the paper's evaluation workloads: YCSB-style
// key choosers (uniform, zipfian, latest), the two temporal request
// patterns (closed-loop burst with a fixed window, open-loop constant
// rate), and the spatial demand/reservation distributions (uniform, spike,
// 5-group Zipf with exponent 0.6).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// zipfTheta is YCSB's default skew constant.
const zipfTheta = 0.99

// Zipfian draws integers in [0, n) with a zipfian distribution using the
// Gray et al. algorithm that YCSB implements ("Quickly generating
// billion-record synthetic databases", SIGMOD '94).
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfian creates a zipfian chooser over [0, n) with skew theta in
// (0, 1); use zipfTheta for YCSB defaults.
func NewZipfian(n uint64, theta float64) (*Zipfian, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: zipfian range must be positive")
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("workload: zipfian theta must be in (0,1), got %v", theta)
	}
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z, nil
}

// zeta computes the generalized harmonic number sum_{i=1}^{n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next zipfian value; 0 is the most popular.
func (z *Zipfian) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// fnvHash64 is the FNV-1a scramble YCSB applies to spread hot zipfian
// ranks across the keyspace.
func fnvHash64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x100000001B3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= prime
		v >>= 8
	}
	return h
}

// ScrambledZipfian is YCSB's scrambled zipfian: zipfian ranks hashed over
// the keyspace so popularity is skewed but not clustered.
type ScrambledZipfian struct {
	z *Zipfian
	n uint64
}

// NewScrambledZipfian creates a scrambled zipfian chooser over [0, n).
func NewScrambledZipfian(n uint64) (*ScrambledZipfian, error) {
	z, err := NewZipfian(n, zipfTheta)
	if err != nil {
		return nil, err
	}
	return &ScrambledZipfian{z: z, n: n}, nil
}

// Next draws the next key.
func (s *ScrambledZipfian) Next(rng *rand.Rand) uint64 {
	return fnvHash64(s.z.Next(rng)) % s.n
}
