package workload

import (
	"fmt"
	"math/rand"
)

// KeyChooser selects which record a request targets.
type KeyChooser interface {
	// Next returns the next key using the supplied random source.
	Next(rng *rand.Rand) uint64
}

// Interface compliance.
var (
	_ KeyChooser = (*UniformKeys)(nil)
	_ KeyChooser = (*ScrambledZipfian)(nil)
	_ KeyChooser = (*LatestKeys)(nil)
	_ KeyChooser = (*SequentialKeys)(nil)
)

// UniformKeys picks keys uniformly from [0, N).
type UniformKeys struct {
	N uint64
}

// Next draws a uniform key.
func (u *UniformKeys) Next(rng *rand.Rand) uint64 {
	return uint64(rng.Int63n(int64(u.N)))
}

// LatestKeys is YCSB's "latest" distribution: a zipfian over recency, so
// key N-1 is hottest.
type LatestKeys struct {
	z *Zipfian
	n uint64
}

// NewLatestKeys creates a latest-distribution chooser over [0, n).
func NewLatestKeys(n uint64) (*LatestKeys, error) {
	z, err := NewZipfian(n, zipfTheta)
	if err != nil {
		return nil, err
	}
	return &LatestKeys{z: z, n: n}, nil
}

// Next draws a recency-skewed key.
func (l *LatestKeys) Next(rng *rand.Rand) uint64 {
	return l.n - 1 - l.z.Next(rng)
}

// SequentialKeys cycles deterministically through [0, N); useful in tests.
type SequentialKeys struct {
	N    uint64
	next uint64
}

// Next returns the next key in sequence.
func (s *SequentialKeys) Next(*rand.Rand) uint64 {
	k := s.next % s.N
	s.next++
	return k
}

// NewChooser builds a chooser by YCSB distribution name: "uniform",
// "zipfian", "latest", or "sequential".
func NewChooser(name string, n uint64) (KeyChooser, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: keyspace must be positive")
	}
	switch name {
	case "uniform":
		return &UniformKeys{N: n}, nil
	case "zipfian":
		return NewScrambledZipfian(n)
	case "latest":
		return NewLatestKeys(n)
	case "sequential":
		return &SequentialKeys{N: n}, nil
	default:
		return nil, fmt.Errorf("workload: unknown key distribution %q", name)
	}
}
