package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/haechi-qos/haechi/internal/sim"
)

func TestZipfianValidation(t *testing.T) {
	if _, err := NewZipfian(0, 0.5); err == nil {
		t.Error("zero range accepted")
	}
	for _, theta := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewZipfian(10, theta); err == nil {
			t.Errorf("theta=%v accepted", theta)
		}
	}
}

func TestZipfianRangeAndSkew(t *testing.T) {
	const n = 1000
	z, err := NewZipfian(n, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next(rng)
		if v >= n {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate: with theta=0.99 over 1000 items, item 0 gets
	// ~13% of mass.
	if float64(counts[0])/draws < 0.08 {
		t.Errorf("rank-0 frequency %.3f too low for zipfian", float64(counts[0])/draws)
	}
	// Monotone-ish decay: first rank beats the 100th by a wide margin.
	if counts[0] < counts[99]*10 {
		t.Errorf("insufficient skew: counts[0]=%d counts[99]=%d", counts[0], counts[99])
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	const n = 1 << 12
	s, err := NewScrambledZipfian(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	seen := map[uint64]int{}
	var maxKey uint64
	for i := 0; i < 100000; i++ {
		k := s.Next(rng)
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		seen[k]++
		if k > maxKey {
			maxKey = k
		}
	}
	// The hot key must not be key 0 (scrambling) and hot mass must exist.
	var hot uint64
	best := 0
	for k, c := range seen {
		if c > best {
			best, hot = c, k
		}
	}
	if hot == 0 {
		t.Error("hottest key is 0; scrambling ineffective")
	}
	if best < 100000/20 {
		t.Errorf("hottest key only %d draws; skew lost in scrambling", best)
	}
	if maxKey < n/2 {
		t.Error("keys not spread across keyspace")
	}
}

func TestLatestKeys(t *testing.T) {
	const n = 1000
	l, err := NewLatestKeys(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLatestKeys(0); err == nil {
		t.Error("zero range accepted")
	}
	rng := rand.New(rand.NewSource(3))
	counts := make(map[uint64]int)
	for i := 0; i < 50000; i++ {
		k := l.Next(rng)
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	if counts[n-1] < counts[0]*5 {
		t.Errorf("latest key not hottest: counts[n-1]=%d counts[0]=%d", counts[n-1], counts[0])
	}
}

func TestSequentialKeys(t *testing.T) {
	s := &SequentialKeys{N: 3}
	want := []uint64{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := s.Next(nil); got != w {
			t.Errorf("draw %d = %d, want %d", i, got, w)
		}
	}
}

func TestUniformKeys(t *testing.T) {
	u := &UniformKeys{N: 100}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if k := u.Next(rng); k >= 100 {
			t.Fatalf("uniform key %d out of range", k)
		}
	}
}

func TestNewChooser(t *testing.T) {
	for _, name := range []string{"uniform", "zipfian", "latest", "sequential"} {
		c, err := NewChooser(name, 100)
		if err != nil || c == nil {
			t.Errorf("NewChooser(%q) failed: %v", name, err)
		}
	}
	if _, err := NewChooser("bogus", 100); err == nil {
		t.Error("unknown chooser accepted")
	}
	if _, err := NewChooser("uniform", 0); err == nil {
		t.Error("zero keyspace accepted")
	}
}

func TestUniformSplit(t *testing.T) {
	parts := UniformSplit(1580_000, 10)
	if Sum(parts) != 1580_000 {
		t.Errorf("sum = %d", Sum(parts))
	}
	for _, p := range parts {
		if p != 158_000 {
			t.Errorf("part = %d, want 158000", p)
		}
	}
	// Remainder handling.
	parts = UniformSplit(10, 3)
	if Sum(parts) != 10 {
		t.Errorf("sum = %d, want 10", Sum(parts))
	}
	if parts[0] != 4 || parts[1] != 3 || parts[2] != 3 {
		t.Errorf("parts = %v", parts)
	}
	if len(UniformSplit(5, 0)) != 0 {
		t.Error("n=0 should give empty slice")
	}
}

func TestSpikeSplit(t *testing.T) {
	parts, err := SpikeSplit(10, 3, 340_000, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	if Sum(parts) != 3*340_000+7*80_000 {
		t.Errorf("sum = %d", Sum(parts))
	}
	if parts[0] != 340_000 || parts[3] != 80_000 || parts[9] != 80_000 {
		t.Errorf("parts = %v", parts)
	}
	if _, err := SpikeSplit(10, 11, 1, 1); err == nil {
		t.Error("high > n accepted")
	}
	if _, err := SpikeSplit(10, -1, 1, 1); err == nil {
		t.Error("negative high accepted")
	}
}

func TestZipfGroupSplit(t *testing.T) {
	total := uint64(1_413_000) // 90% of 1570K
	parts, err := ZipfGroupSplit(total, 10, 5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if Sum(parts) != total {
		t.Errorf("sum = %d, want %d", Sum(parts), total)
	}
	// Paired clients share reservations.
	for g := 0; g < 5; g++ {
		if parts[2*g] < parts[2*g+1] && parts[2*g]+1 < parts[2*g+1] {
			t.Errorf("group %d unequal: %d vs %d", g, parts[2*g], parts[2*g+1])
		}
	}
	// Group shares decay as 1/g^0.6.
	if parts[0] <= parts[2] || parts[2] <= parts[4] || parts[4] <= parts[6] || parts[6] <= parts[8] {
		t.Errorf("group shares not decreasing: %v", parts)
	}
	ratio := float64(parts[0]) / float64(parts[8])
	want := math.Pow(5, 0.6)
	if ratio < want*0.9 || ratio > want*1.1 {
		t.Errorf("C1/C9 ratio = %.2f, want ≈%.2f", ratio, want)
	}
	if _, err := ZipfGroupSplit(100, 10, 3, 0.6); err == nil {
		t.Error("non-divisible grouping accepted")
	}
	if _, err := ZipfGroupSplit(100, 0, 5, 0.6); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ZipfGroupSplit(100, 10, 11, 0.6); err == nil {
		t.Error("groups>n accepted")
	}
}

// Property: ZipfGroupSplit always sums exactly to total.
func TestZipfGroupSplitSumProperty(t *testing.T) {
	f := func(total uint32, groupsRaw uint8) bool {
		groups := int(groupsRaw%5) + 1
		n := groups * 2
		parts, err := ZipfGroupSplit(uint64(total), n, groups, 0.6)
		if err != nil {
			return false
		}
		return Sum(parts) == uint64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// instantSubmit completes every request after a fixed simulated delay.
func instantSubmit(k *sim.Kernel, delay sim.Time) Submit {
	return func(key uint64, done func()) {
		k.Schedule(delay, done)
	}
}

func TestGeneratorValidation(t *testing.T) {
	k := sim.New(1)
	keys := &SequentialKeys{N: 10}
	sub := instantSubmit(k, 1)
	if _, err := NewGenerator(nil, 1, keys, Burst{64}, sim.Second, sub); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := NewGenerator(k, 1, nil, Burst{64}, sim.Second, sub); err == nil {
		t.Error("nil keys accepted")
	}
	if _, err := NewGenerator(k, 1, keys, nil, sim.Second, sub); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := NewGenerator(k, 1, keys, Burst{64}, 0, sub); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewGenerator(k, 1, keys, Burst{64}, sim.Second, nil); err == nil {
		t.Error("nil submit accepted")
	}
}

func TestBurstKeepsWindowOutstanding(t *testing.T) {
	k := sim.New(1)
	outstanding, maxOutstanding := 0, 0
	sub := func(key uint64, done func()) {
		outstanding++
		if outstanding > maxOutstanding {
			maxOutstanding = outstanding
		}
		k.Schedule(10*sim.Microsecond, func() {
			outstanding--
			done()
		})
	}
	g, err := NewGenerator(k, 1, &SequentialKeys{N: 100}, Burst{Window: 8}, sim.Second, sub)
	if err != nil {
		t.Fatal(err)
	}
	g.BeginPeriod(100)
	k.Run()
	if g.Completed() != 100 {
		t.Errorf("Completed = %d, want 100", g.Completed())
	}
	if maxOutstanding != 8 {
		t.Errorf("max outstanding = %d, want 8 (window)", maxOutstanding)
	}
}

func TestBurstDefaultWindow(t *testing.T) {
	k := sim.New(1)
	g, err := NewGenerator(k, 1, &SequentialKeys{N: 10}, Burst{}, sim.Second, instantSubmit(k, 1))
	if err != nil {
		t.Fatal(err)
	}
	g.BeginPeriod(10)
	k.Run()
	if g.Completed() != 10 {
		t.Errorf("Completed = %d", g.Completed())
	}
}

func TestBurstIdlesAfterDemand(t *testing.T) {
	k := sim.New(1)
	g, _ := NewGenerator(k, 1, &SequentialKeys{N: 100}, Burst{Window: 4}, sim.Second, instantSubmit(k, sim.Microsecond))
	g.BeginPeriod(20)
	k.Run()
	if g.Issued() != 20 {
		t.Errorf("Issued = %d, want exactly the demand", g.Issued())
	}
}

func TestConstantRateSpacing(t *testing.T) {
	k := sim.New(1)
	var submitTimes []sim.Time
	sub := func(key uint64, done func()) {
		submitTimes = append(submitTimes, k.Now())
		k.Schedule(1, done)
	}
	g, err := NewGenerator(k, 1, &SequentialKeys{N: 100}, ConstantRate{}, sim.Second, sub)
	if err != nil {
		t.Fatal(err)
	}
	g.BeginPeriod(10)
	k.RunUntil(sim.Second)
	if len(submitTimes) != 10 {
		t.Fatalf("issued %d, want 10", len(submitTimes))
	}
	want := sim.Second / 10
	for i := 1; i < len(submitTimes); i++ {
		gap := submitTimes[i] - submitTimes[i-1]
		if gap != want {
			t.Errorf("gap %d = %v, want %v", i, gap, want)
		}
	}
}

func TestConstantRateZeroDemand(t *testing.T) {
	k := sim.New(1)
	g, _ := NewGenerator(k, 1, &SequentialKeys{N: 100}, ConstantRate{}, sim.Second, instantSubmit(k, 1))
	g.BeginPeriod(0)
	k.RunUntil(sim.Second)
	if g.Issued() != 0 {
		t.Errorf("zero demand issued %d requests", g.Issued())
	}
}

func TestConstantRateNewPeriodResets(t *testing.T) {
	k := sim.New(1)
	g, _ := NewGenerator(k, 1, &SequentialKeys{N: 100}, ConstantRate{}, 10*sim.Millisecond, instantSubmit(k, 1))
	g.BeginPeriod(5)
	k.RunUntil(10 * sim.Millisecond)
	g.BeginPeriod(5)
	k.RunUntil(20 * sim.Millisecond)
	if g.Issued() != 10 {
		t.Errorf("Issued = %d across two periods, want 10", g.Issued())
	}
	if got := g.TakePeriodCompleted(); got != 10 {
		// Both periods' completions were not harvested in between.
		t.Errorf("TakePeriodCompleted = %d, want 10", got)
	}
	if got := g.TakePeriodCompleted(); got != 0 {
		t.Errorf("second TakePeriodCompleted = %d, want 0", got)
	}
}

func TestGeneratorLatencyRecorded(t *testing.T) {
	k := sim.New(1)
	g, _ := NewGenerator(k, 1, &SequentialKeys{N: 10}, Burst{Window: 1}, sim.Second, instantSubmit(k, 5*sim.Microsecond))
	g.BeginPeriod(4)
	k.Run()
	if g.Latency.Count() != 4 {
		t.Errorf("latency samples = %d, want 4", g.Latency.Count())
	}
	if g.Latency.Mean() != 5*sim.Microsecond {
		t.Errorf("latency mean = %v, want 5µs", g.Latency.Mean())
	}
}

func TestGeneratorStop(t *testing.T) {
	k := sim.New(1)
	g, _ := NewGenerator(k, 1, &SequentialKeys{N: 100}, ConstantRate{}, sim.Second, instantSubmit(k, 1))
	g.BeginPeriod(1000)
	k.RunUntil(100 * sim.Millisecond)
	issued := g.Issued()
	g.Stop()
	k.RunUntil(sim.Second)
	if g.Issued() > issued+1 {
		t.Errorf("generator kept issuing after Stop: %d -> %d", issued, g.Issued())
	}
}

func TestPatternStrings(t *testing.T) {
	if (Burst{64}).String() != "burst(64)" {
		t.Error("Burst.String wrong")
	}
	if (ConstantRate{}).String() != "constant-rate" {
		t.Error("ConstantRate.String wrong")
	}
}

func TestPoissonRate(t *testing.T) {
	k := sim.New(8)
	g, err := NewGenerator(k, 3, &SequentialKeys{N: 100}, Poisson{}, sim.Second, instantSubmit(k, 1))
	if err != nil {
		t.Fatal(err)
	}
	g.BeginPeriod(10_000)
	k.RunUntil(sim.Second)
	issued := g.Issued()
	if issued < 9_000 || issued > 11_000 {
		t.Errorf("poisson issued %d in one period, want ≈10000", issued)
	}
}

func TestPoissonZeroDemandAndStop(t *testing.T) {
	k := sim.New(8)
	g, _ := NewGenerator(k, 3, &SequentialKeys{N: 10}, Poisson{}, sim.Second, instantSubmit(k, 1))
	g.BeginPeriod(0)
	k.RunUntil(sim.Second / 2)
	if g.Issued() != 0 {
		t.Errorf("zero-demand poisson issued %d", g.Issued())
	}
	g.BeginPeriod(100_000)
	k.RunUntil(sim.Second*3/4 - sim.Millisecond)
	g.Stop()
	at := g.Issued()
	k.RunUntil(sim.Second)
	if g.Issued() > at {
		t.Errorf("poisson kept issuing after Stop: %d -> %d", at, g.Issued())
	}
}

func TestPoissonNewPeriodRestarts(t *testing.T) {
	k := sim.New(8)
	g, _ := NewGenerator(k, 3, &SequentialKeys{N: 10}, Poisson{}, 100*sim.Millisecond, instantSubmit(k, 1))
	g.BeginPeriod(1000)
	k.RunUntil(100 * sim.Millisecond)
	first := g.Issued()
	g.BeginPeriod(1000)
	k.RunUntil(200 * sim.Millisecond)
	if g.Issued() <= first {
		t.Error("second period issued nothing")
	}
	if (Poisson{}).String() != "poisson" {
		t.Error("Poisson.String wrong")
	}
}

// TestPoissonInterArrivalProperty: the empirical CV of inter-arrival
// times is near 1 (exponential), distinguishing it from constant-rate.
func TestPoissonInterArrivalProperty(t *testing.T) {
	k := sim.New(8)
	var times []sim.Time
	sub := func(key uint64, done func()) {
		times = append(times, k.Now())
		k.Schedule(1, done)
	}
	g, _ := NewGenerator(k, 9, &SequentialKeys{N: 10}, Poisson{}, sim.Second, sub)
	g.BeginPeriod(20_000)
	k.RunUntil(sim.Second)
	if len(times) < 1000 {
		t.Fatalf("too few arrivals: %d", len(times))
	}
	var gaps []float64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, float64(times[i]-times[i-1]))
	}
	var mean, varsum float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(varsum/float64(len(gaps))) / mean
	if cv < 0.8 || cv > 1.2 {
		t.Errorf("inter-arrival CV = %.2f, want ≈1 (exponential)", cv)
	}
}
