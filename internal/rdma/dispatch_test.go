package rdma

import (
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

// dispatchBed builds a client-bound dispatcher plus two servers with
// connected QPs, the multi-server client shape the scoped routes serve.
func dispatchBed(t *testing.T) (*sim.Kernel, *Dispatcher, *Node, *Node, *QP, *QP) {
	t.Helper()
	k := sim.New(7)
	cfg := NewDefaultConfig()
	cfg.Jitter = 0
	f, err := NewFabric(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := f.AddServer("s1")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.AddServer("s2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.AddClient("c")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(c)
	qp1, err := f.Connect(s1, c)
	if err != nil {
		t.Fatal(err)
	}
	qp2, err := f.Connect(s2, c)
	if err != nil {
		t.Fatal(err)
	}
	return k, d, s1, s2, qp1, qp2
}

// TestDispatcherScopedPrecedence: a sender-scoped handler wins over the
// catch-all for the same kind; unscoped senders fall through to it.
func TestDispatcherScopedPrecedence(t *testing.T) {
	k, d, s1, _, qp1, qp2 := dispatchBed(t)
	var scoped, catchall int
	if err := d.HandleFrom("x", s1, func(*Node, any) { scoped++ }); err != nil {
		t.Fatal(err)
	}
	if err := d.Handle("x", func(*Node, any) { catchall++ }); err != nil {
		t.Fatal(err)
	}
	_ = qp1.Send(Message{Kind: "x", Body: 1}, 8, nil) // scoped wins
	_ = qp2.Send(Message{Kind: "x", Body: 2}, 8, nil) // falls through
	k.Run()
	if scoped != 1 || catchall != 1 {
		t.Errorf("scoped/catchall = %d/%d, want 1/1", scoped, catchall)
	}
}

// TestDispatcherUnhandle covers catch-all unregistration: delivery
// stops, repeat removal reports false, and the kind can be re-bound.
func TestDispatcherUnhandle(t *testing.T) {
	k, d, _, _, qp1, _ := dispatchBed(t)
	var first, second int
	if err := d.Handle("x", func(*Node, any) { first++ }); err != nil {
		t.Fatal(err)
	}
	_ = qp1.Send(Message{Kind: "x"}, 8, nil)
	k.Run()

	if !d.Unhandle("x") {
		t.Error("Unhandle of a registered kind reported false")
	}
	if d.Unhandle("x") {
		t.Error("repeat Unhandle reported true")
	}
	if d.Unhandle("never-bound") {
		t.Error("Unhandle of an unknown kind reported true")
	}
	_ = qp1.Send(Message{Kind: "x"}, 8, nil) // now unrouted: dropped
	k.Run()

	if err := d.Handle("x", func(*Node, any) { second++ }); err != nil {
		t.Fatalf("re-register after Unhandle: %v", err)
	}
	_ = qp1.Send(Message{Kind: "x"}, 8, nil)
	k.Run()
	if first != 1 || second != 1 {
		t.Errorf("first/second handler counts = %d/%d, want 1/1", first, second)
	}
}

// TestDispatcherUnhandleFrom covers scoped unregistration: only the
// removed sender's route disappears, removal is idempotent, and the
// (kind, sender) slot can be re-bound.
func TestDispatcherUnhandleFrom(t *testing.T) {
	k, d, s1, s2, qp1, qp2 := dispatchBed(t)
	var from1, from2, rebound int
	if err := d.HandleFrom("x", s1, func(*Node, any) { from1++ }); err != nil {
		t.Fatal(err)
	}
	if err := d.HandleFrom("x", s2, func(*Node, any) { from2++ }); err != nil {
		t.Fatal(err)
	}

	if !d.UnhandleFrom("x", s1) {
		t.Error("UnhandleFrom of a registered route reported false")
	}
	if d.UnhandleFrom("x", s1) {
		t.Error("repeat UnhandleFrom reported true")
	}
	if d.UnhandleFrom("never-bound", s1) {
		t.Error("UnhandleFrom of an unknown kind reported true")
	}
	_ = qp1.Send(Message{Kind: "x"}, 8, nil) // s1 route removed: dropped
	_ = qp2.Send(Message{Kind: "x"}, 8, nil) // s2 route intact
	k.Run()
	if from1 != 0 || from2 != 1 {
		t.Errorf("from1/from2 = %d/%d, want 0/1", from1, from2)
	}

	if err := d.HandleFrom("x", s1, func(*Node, any) { rebound++ }); err != nil {
		t.Fatalf("re-register after UnhandleFrom: %v", err)
	}
	// Removing the last scoped route for a kind clears the kind entry.
	if !d.UnhandleFrom("x", s2) {
		t.Error("UnhandleFrom of the second route reported false")
	}
	_ = qp1.Send(Message{Kind: "x"}, 8, nil)
	k.Run()
	if rebound != 1 {
		t.Errorf("rebound handler count = %d, want 1", rebound)
	}
}

// TestDispatcherDropsUnrouted: non-Message payloads and unknown kinds
// are silently dropped, like a recv completion the application ignores.
func TestDispatcherDropsUnrouted(t *testing.T) {
	k, d, _, _, qp1, _ := dispatchBed(t)
	var handled int
	if err := d.Handle("known", func(*Node, any) { handled++ }); err != nil {
		t.Fatal(err)
	}
	_ = qp1.Send("bare string payload", 8, nil)
	_ = qp1.Send(Message{Kind: "unknown"}, 8, nil)
	_ = qp1.Send(Message{Kind: "known"}, 8, nil)
	k.Run()
	if handled != 1 {
		t.Errorf("handled = %d, want 1", handled)
	}
}
