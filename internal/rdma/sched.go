package rdma

// opFIFO is a queue of flow operations backed by a reusable slice; pop
// compacts lazily so steady-state traffic stops allocating once the
// buffer reaches its high-water mark. It is the building block for the
// per-QP pipeline-stage queues and the scheduler's per-initiator queues.
type opFIFO struct {
	ops  []flowOp
	head int
}

func (q *opFIFO) push(op flowOp) { q.ops = append(q.ops, op) }

func (q *opFIFO) empty() bool { return q.head >= len(q.ops) }

func (q *opFIFO) size() int { return len(q.ops) - q.head }

func (q *opFIFO) pop() flowOp {
	op := q.ops[q.head]
	q.ops[q.head] = flowOp{}
	q.head++
	if q.head >= len(q.ops) {
		q.ops = q.ops[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.ops) {
		n := copy(q.ops, q.ops[q.head:])
		q.ops = q.ops[:n]
		q.head = 0
	}
	return op
}

// dataQueue is one initiator's FIFO of bulk operations awaiting service at
// a target NIC. The target's scheduler serves non-empty queues round-robin,
// modelling RNIC arbitration across queue pairs: concurrent clients share
// the NIC's processing equally, exactly the behaviour the paper measures
// ("C_G will be divided equally among the clients", Example 2 / Exp. 1C).
type dataQueue struct {
	opFIFO
	inRing bool
	// release is invoked after each serviced op (flow-control credit
	// return at the initiator).
	release func()
}

// rrScheduler arbitrates a node's bulk service among per-initiator queues.
// The operation in service is parked in current/currentQ and completed by
// the bound onServedFn callback, so dispatching allocates nothing per op.
type rrScheduler struct {
	node      *Node
	ring      []*dataQueue
	next      int
	inService bool

	current    flowOp
	currentQ   *dataQueue
	onServedFn func()
}

// newDataQueue creates a queue to be served by this node's scheduler.
func newDataQueue(release func()) *dataQueue {
	return &dataQueue{release: release}
}

// enqueue adds an operation and kicks the scheduler.
func (s *rrScheduler) enqueue(q *dataQueue, op flowOp) {
	q.push(op)
	if !q.inRing {
		q.inRing = true
		s.ring = append(s.ring, q)
	}
	s.pump()
}

// pump dispatches the next operation round-robin when the server is free.
func (s *rrScheduler) pump() {
	if s.inService || len(s.ring) == 0 {
		return
	}
	if s.next >= len(s.ring) {
		s.next = 0
	}
	q := s.ring[s.next]
	op := q.pop()
	if q.empty() {
		q.inRing = false
		s.ring = append(s.ring[:s.next], s.ring[s.next+1:]...)
		// next now points at the following queue already.
	} else {
		s.next++
	}
	s.inService = true
	s.node.prof.SchedDispatches++
	if op.span != nil {
		op.span.Service = s.node.k.Now()
	}
	s.current = op
	s.currentQ = q
	// Service begins now, so the QP-context touch happens here (opFunc
	// injections carry no QP context and touch nothing).
	w := op.weight
	if op.kind != opFunc {
		w += s.node.qpPenalty(op.qp.id)
	}
	s.node.nic.SubmitWeighted(w, s.onServedFn)
}

// onServed completes the operation in service: it applies the memory
// effect at the target, schedules the completion delivery back to the
// initiator, returns the flow-control credit, and serves the next op.
func (s *rrScheduler) onServed() {
	op := s.current
	q := s.currentQ
	s.current = flowOp{}
	s.currentQ = nil
	if op.kind == opFunc {
		s.node.prof.countKind(opFunc)
		if op.applyFn != nil {
			op.applyFn()
		}
		if op.completeFn != nil {
			// opFunc injectors (background jobs) are always same-shard:
			// their private initiators are assigned to the target's shard.
			// The per-op bound completion needs no arrival horizon under a
			// link storm: nothing pops a FIFO on this path.
			f := s.node.fabric
			s.node.k.Schedule(f.cfg.PropagationDelay+f.wireExtra(s.node.k), op.completeFn)
		}
	} else {
		op.qp.serveOp(op)
	}
	if q.release != nil {
		q.release()
	}
	s.inService = false
	s.pump()
}
