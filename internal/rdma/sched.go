package rdma

// dataQueue is one initiator's FIFO of bulk operations awaiting service at
// a target NIC. The target's scheduler serves non-empty queues round-robin,
// modelling RNIC arbitration across queue pairs: concurrent clients share
// the NIC's processing equally, exactly the behaviour the paper measures
// ("C_G will be divided equally among the clients", Example 2 / Exp. 1C).
type dataQueue struct {
	ops    []flowOp
	head   int
	inRing bool
	// release is invoked after each serviced op (flow-control credit
	// return at the initiator).
	release func()
}

func (q *dataQueue) push(op flowOp) { q.ops = append(q.ops, op) }

func (q *dataQueue) empty() bool { return q.head >= len(q.ops) }

func (q *dataQueue) pop() flowOp {
	op := q.ops[q.head]
	q.ops[q.head] = flowOp{}
	q.head++
	if q.head >= len(q.ops) {
		q.ops = q.ops[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.ops) {
		n := copy(q.ops, q.ops[q.head:])
		q.ops = q.ops[:n]
		q.head = 0
	}
	return op
}

// rrScheduler arbitrates a node's bulk service among per-initiator queues.
type rrScheduler struct {
	node      *Node
	ring      []*dataQueue
	next      int
	inService bool
}

// newDataQueue creates a queue to be served by this node's scheduler.
func newDataQueue(release func()) *dataQueue {
	return &dataQueue{release: release}
}

// enqueue adds an operation and kicks the scheduler.
func (s *rrScheduler) enqueue(q *dataQueue, op flowOp) {
	q.push(op)
	if !q.inRing {
		q.inRing = true
		s.ring = append(s.ring, q)
	}
	s.pump()
}

// pump dispatches the next operation round-robin when the server is free.
func (s *rrScheduler) pump() {
	if s.inService || len(s.ring) == 0 {
		return
	}
	if s.next >= len(s.ring) {
		s.next = 0
	}
	q := s.ring[s.next]
	op := q.pop()
	if q.empty() {
		q.inRing = false
		s.ring = append(s.ring[:s.next], s.ring[s.next+1:]...)
		// next now points at the following queue already.
	} else {
		s.next++
	}
	s.inService = true
	k := s.node.fabric.k
	prop := s.node.fabric.cfg.PropagationDelay
	if op.span != nil {
		op.span.Service = k.Now()
	}
	s.node.nic.SubmitWeighted(op.weight, func() {
		if op.apply != nil {
			op.apply()
		}
		if op.complete != nil {
			k.Schedule(prop, op.complete)
		}
		if q.release != nil {
			q.release()
		}
		s.inService = false
		s.pump()
	})
}
