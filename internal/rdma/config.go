// Package rdma simulates an RDMA fabric with verbs-like semantics: nodes
// with NIC processing stations, registered memory regions, queue pairs, and
// one-sided READ / WRITE / FETCH_ADD / CMP_SWAP plus two-sided SEND verbs.
//
// The performance model encodes the two first-order facts Haechi depends
// on, both measured by the paper on ConnectX-3 hardware (Experiments 1A
// and 1B):
//
//   - a per-client initiator cap: one client saturates at ~400 KIOPS of
//     4 KB one-sided reads (~327 KIOPS two-sided), and
//   - a data-node aggregate cap: the server NIC sustains ~1570 KIOPS of
//     one-sided 4 KB operations, while the two-sided RPC path is limited
//     by the server CPU to ~430 KIOPS.
//
// Each cap is a FIFO single-server queueing station (sim.Station); an
// operation is charged a service weight at the initiator NIC and at the
// target NIC (and, for two-sided operations, at the target CPU). One-sided
// verbs never touch the target CPU — they are "silent", which is exactly
// the property that motivates Haechi.
package rdma

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/sim"
)

// DataIOSize is the payload size whose transfer costs weight 1.0 at a NIC
// station; the paper's experiments use 4 KB records throughout.
const DataIOSize = 4096

// Config sets the fabric's performance model. NewDefaultConfig returns the
// values calibrated to the paper's Chameleon measurements.
type Config struct {
	// ClientOneSidedRate is the rate, in 4 KB one-sided operations per
	// second, at which a single client NIC can initiate verbs. This is the
	// paper's local capacity C_L (Fig. 6: ~400 KIOPS).
	ClientOneSidedRate float64

	// ClientTwoSidedRate is the per-client initiation rate for two-sided
	// operations (Fig. 6: ~327 KIOPS, about 20% below one-sided).
	ClientTwoSidedRate float64

	// ServerOneSidedRate is the aggregate rate at which the data node NIC
	// services incoming one-sided 4 KB operations. This is the paper's
	// global capacity C_G (Fig. 7: ~1570 KIOPS).
	ServerOneSidedRate float64

	// ServerTwoSidedRate is the aggregate rate at which the data node CPU
	// services two-sided requests (Fig. 7: ~430 KIOPS).
	ServerTwoSidedRate float64

	// PropagationDelay is the one-way wire latency between any two nodes.
	PropagationDelay sim.Time

	// Jitter is the fractional service-time jitter applied at every
	// station; it makes profiled capacity a distribution (the paper's
	// sigma) instead of a constant. 0 disables jitter.
	Jitter float64

	// AtomicWeight is the service weight of an 8-byte FETCH_ADD or
	// CMP_SWAP relative to a 4 KB transfer.
	AtomicWeight float64

	// MinVerbWeight floors the size-proportional weight of small WRITEs
	// and SENDs (doorbells, reports, token pushes are not free).
	MinVerbWeight float64

	// SendRequestWeight is the NIC weight of the request half of a
	// two-sided operation (a small SEND that must still be processed by
	// the target NIC before reaching the CPU).
	SendRequestWeight float64

	// ControlSizeCutoff is the largest transfer, in bytes, that takes the
	// NIC's latency-priority path. Atomics and transfers at or below the
	// cutoff model verbs on dedicated control QPs: NIC arbitration
	// schedules them ahead of queued bulk transfers (their processing
	// time still consumes NIC capacity). Larger transfers queue FIFO.
	ControlSizeCutoff int

	// FlowControlWindow is the per-QP credit window for bulk transfers:
	// at most this many data operations from one QP may be queued or in
	// service at the target NIC; the excess waits at the initiator. This
	// models InfiniBand's end-to-end credits, which keep server-side
	// queues shallow — the mechanism behind the paper's local-capacity
	// effects (Experiment 1C / Set 3: a late-period catch-up is limited
	// by the client rate C_L, not by draining a deep server backlog).
	// 0 disables flow control. Control verbs are exempt (own QPs).
	FlowControlWindow int

	// QPCacheSize models the RNIC's on-chip connection cache (ICM/QP
	// context cache): each node keeps at most this many QP contexts hot.
	// Touching a QP that is not cached evicts the least recently used
	// context and charges QPCacheMissPenalty extra service weight for the
	// fetch from host memory — the RDMAvisor/Storm scalability effect,
	// where per-QP service time degrades once the active QP count
	// exceeds the cache. 0 disables the model (infinite cache); the
	// default keeps it off so the calibrated small-testbed model is
	// unchanged.
	QPCacheSize int

	// QPCacheMissPenalty is the extra service weight (relative to a 4 KB
	// transfer) charged at a NIC for a QP-context cache miss.
	QPCacheMissPenalty float64
}

// NewDefaultConfig returns the performance model calibrated to the paper's
// testbed (Table I hardware, Figs. 6-7 measurements).
func NewDefaultConfig() Config {
	return Config{
		ClientOneSidedRate: 400e3,
		ClientTwoSidedRate: 327e3,
		ServerOneSidedRate: 1570e3,
		ServerTwoSidedRate: 430e3,
		PropagationDelay:   sim.Microsecond,
		Jitter:             0.01,
		AtomicWeight:       0.25,
		MinVerbWeight:      0.05,
		SendRequestWeight:  0.15,
		ControlSizeCutoff:  512,
		FlowControlWindow:  64,
	}
}

// Scaled returns a copy of the config with every rate divided by factor.
// Scaling preserves every ratio the experiments depend on while letting
// tests run orders of magnitude faster.
func (c Config) Scaled(factor float64) Config {
	if factor <= 0 {
		factor = 1
	}
	s := c
	s.ClientOneSidedRate /= factor
	s.ClientTwoSidedRate /= factor
	s.ServerOneSidedRate /= factor
	s.ServerTwoSidedRate /= factor
	return s
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	check := func(name string, v float64) error {
		if v <= 0 {
			return fmt.Errorf("rdma: config field %s must be positive, got %v", name, v)
		}
		return nil
	}
	if err := check("ClientOneSidedRate", c.ClientOneSidedRate); err != nil {
		return err
	}
	if err := check("ClientTwoSidedRate", c.ClientTwoSidedRate); err != nil {
		return err
	}
	if err := check("ServerOneSidedRate", c.ServerOneSidedRate); err != nil {
		return err
	}
	if err := check("ServerTwoSidedRate", c.ServerTwoSidedRate); err != nil {
		return err
	}
	if c.PropagationDelay < 0 {
		return fmt.Errorf("rdma: PropagationDelay must be non-negative, got %v", c.PropagationDelay)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("rdma: Jitter must be in [0,1), got %v", c.Jitter)
	}
	if err := check("AtomicWeight", c.AtomicWeight); err != nil {
		return err
	}
	if err := check("MinVerbWeight", c.MinVerbWeight); err != nil {
		return err
	}
	if err := check("SendRequestWeight", c.SendRequestWeight); err != nil {
		return err
	}
	if c.ControlSizeCutoff < 0 {
		return fmt.Errorf("rdma: ControlSizeCutoff must be non-negative, got %d", c.ControlSizeCutoff)
	}
	if c.FlowControlWindow < 0 {
		return fmt.Errorf("rdma: FlowControlWindow must be non-negative, got %d", c.FlowControlWindow)
	}
	if c.QPCacheSize < 0 {
		return fmt.Errorf("rdma: QPCacheSize must be non-negative, got %d", c.QPCacheSize)
	}
	if c.QPCacheMissPenalty < 0 {
		return fmt.Errorf("rdma: QPCacheMissPenalty must be non-negative, got %v", c.QPCacheMissPenalty)
	}
	if c.QPCacheSize > 0 && c.QPCacheMissPenalty == 0 {
		return fmt.Errorf("rdma: QPCacheSize %d without a QPCacheMissPenalty has no effect; set a positive penalty", c.QPCacheSize)
	}
	return nil
}

// isControl reports whether a transfer of the given size takes the NIC's
// latency-priority path.
func (c Config) isControl(size int) bool { return size <= c.ControlSizeCutoff }

// sizeWeight converts a payload size to a NIC service weight relative to a
// 4 KB transfer, floored at MinVerbWeight.
func (c Config) sizeWeight(size int) float64 {
	w := float64(size) / DataIOSize
	if w < c.MinVerbWeight {
		w = c.MinVerbWeight
	}
	return w
}
