package rdma

import (
	"encoding/binary"
	"fmt"

	"github.com/haechi-qos/haechi/internal/sim"
)

// QP is a queue pair: a unidirectional verb channel from an initiator node
// to a target node. Verbs submitted on a QP are processed FIFO at each
// station they traverse, so per-QP ordering matches RDMA reliable
// connection semantics.
//
// One-sided verbs (Read, Write, FetchAdd, CompareSwap) never involve the
// target CPU: their memory effects are applied by the simulated target NIC
// at its service-completion instant. Two-sided Sends are handed to the
// target CPU (for servers) and delivered to the node's receive handler.
type QP struct {
	fabric    *Fabric
	initiator *Node
	target    *Node

	// Credit-based flow control for bulk transfers (see
	// Config.FlowControlWindow): inFlight counts data operations admitted
	// to the target and not yet serviced; waiting holds operations that
	// arrived at the wire without a credit. serverQ is this QP's queue in
	// the target's round-robin scheduler.
	window   int
	inFlight int
	waiting  []flowOp
	serverQ  *dataQueue
}

// flowOp is a data operation waiting for a flow-control credit. weight is
// the target-side service weight; initWeight the initiator-side one.
type flowOp struct {
	weight     float64
	initWeight float64
	apply      func()
	complete   func()
}

// Initiator returns the initiating node.
func (qp *QP) Initiator() *Node { return qp.initiator }

// Target returns the target node.
func (qp *QP) Target() *Node { return qp.target }

func (qp *QP) checkRegion(r *Region) error {
	if r == nil {
		return fmt.Errorf("rdma: %s->%s: nil region", qp.initiator.name, qp.target.name)
	}
	if r.owner != qp.target {
		return fmt.Errorf("rdma: %s->%s: region %q is owned by %s, not the QP target",
			qp.initiator.name, qp.target.name, r.name, r.owner.name)
	}
	return nil
}

// loopback reports whether this QP targets its own node (e.g. the QoS
// monitor manipulating the global token cell through its own NIC).
func (qp *QP) loopback() bool { return qp.initiator == qp.target }

// submitNIC routes an operation to a NIC station. Control operations
// (atomics and small transfers) take the priority path: they are
// arbitrated ahead of queued bulk transfers, as separate QPs are on a
// real RNIC, while still consuming station capacity.
func submitNIC(st *sim.Station, weight float64, control bool, done func()) {
	if control {
		st.SubmitPriority(weight, done)
		return
	}
	st.SubmitWeighted(weight, done)
}

// initiate charges the initiator NIC, then after propagation charges the
// target NIC and applies the op, then after propagation delivers the
// completion. For loopback QPs the op traverses the NIC once and skips the
// wire.
func (qp *QP) initiate(initWeight, targetWeight float64, control bool, apply func(), complete func()) {
	k := qp.fabric.k
	prop := qp.fabric.cfg.PropagationDelay
	if qp.loopback() {
		submitNIC(qp.initiator.nic, targetWeight, control, func() {
			apply()
			if complete != nil {
				complete()
			}
		})
		return
	}
	if control {
		qp.initiator.nic.SubmitPriority(initWeight, func() {
			k.Schedule(prop, func() {
				qp.target.nic.SubmitPriority(targetWeight, func() {
					apply()
					if complete != nil {
						k.Schedule(prop, complete)
					}
				})
			})
		})
		return
	}
	qp.admitData(flowOp{
		weight:     targetWeight,
		initWeight: initWeight,
		apply:      apply,
		complete:   complete,
	})
}

// admitData applies per-QP flow control at the initiator, before the
// sending NIC transmits: a posted WQE consumes no NIC processing until a
// credit is available, so late bursts of queued work still pay the
// per-operation initiator cost (the local capacity C_L) when they finally
// transmit — matching real credit-based flow control.
func (qp *QP) admitData(op flowOp) {
	if qp.serverQ == nil {
		qp.serverQ = newDataQueue(qp.releaseCredit)
	}
	if qp.window > 0 && qp.inFlight >= qp.window {
		qp.waiting = append(qp.waiting, op)
		return
	}
	qp.transmit(op)
}

// transmit runs the credit-holding pipeline: initiator NIC service, wire,
// then the target's round-robin scheduler.
func (qp *QP) transmit(op flowOp) {
	qp.inFlight++
	k := qp.fabric.k
	prop := qp.fabric.cfg.PropagationDelay
	qp.initiator.nic.SubmitWeighted(op.initWeight, func() {
		k.Schedule(prop, func() {
			qp.target.sched.enqueue(qp.serverQ, op)
		})
	})
}

// releaseCredit returns one flow-control credit after a serviced op and
// admits the next waiting operation, if any.
func (qp *QP) releaseCredit() {
	qp.inFlight--
	if len(qp.waiting) > 0 {
		next := qp.waiting[0]
		qp.waiting[0] = flowOp{}
		qp.waiting = qp.waiting[1:]
		qp.transmit(next)
	}
}

// Read performs a one-sided RDMA READ of size bytes at off in region r.
// The callback receives a view of the target memory valid at delivery
// time; callers that retain the data across further simulation must copy.
func (qp *QP) Read(r *Region, off, size int, cb func(data []byte)) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, size); err != nil {
		return err
	}
	w := qp.fabric.cfg.sizeWeight(size)
	qp.initiator.stats.Reads++
	qp.initiator.stats.BytesRead += uint64(size)
	qp.target.stats.OneSidedTargeted++
	qp.initiate(w, w, qp.fabric.cfg.isControl(size), func() {}, func() {
		cb(r.bytes(off, size))
	})
	return nil
}

// Write performs a one-sided RDMA WRITE of data at off in region r. The
// data is captured at call time; cb (optional) fires when the initiator
// observes completion. Haechi's silent reports are 8-byte Writes.
func (qp *QP) Write(r *Region, off int, data []byte, cb func()) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, len(data)); err != nil {
		return err
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	w := qp.fabric.cfg.sizeWeight(len(buf))
	qp.initiator.stats.Writes++
	qp.initiator.stats.BytesWritten += uint64(len(buf))
	qp.target.stats.OneSidedTargeted++
	qp.initiate(w, w, qp.fabric.cfg.isControl(len(buf)), func() {
		copy(r.buf[off:], buf)
	}, cb)
	return nil
}

// WriteUint64 writes an 8-byte little-endian value; this is the wire
// format of Haechi client reports.
func (qp *QP) WriteUint64(r *Region, off int, v uint64, cb func()) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return qp.Write(r, off, b[:], cb)
}

// FetchAdd performs a one-sided atomic FETCH_ADD on the 8-byte cell at
// off: the callback receives the value before the add. Haechi clients
// claim batched global tokens with FetchAdd(-B).
func (qp *QP) FetchAdd(r *Region, off int, delta int64, cb func(old int64)) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, 8); err != nil {
		return err
	}
	w := qp.fabric.cfg.AtomicWeight
	qp.initiator.stats.FetchAdds++
	qp.target.stats.OneSidedTargeted++
	var old int64
	qp.initiate(w, w, true, func() {
		old = int64(binary.LittleEndian.Uint64(r.buf[off:]))
		binary.LittleEndian.PutUint64(r.buf[off:], uint64(old+delta))
	}, func() {
		if cb != nil {
			cb(old)
		}
	})
	return nil
}

// CompareSwap performs a one-sided atomic CMP_SWAP on the 8-byte cell at
// off: if the cell equals expect it is set to swap; the callback receives
// the value before the operation. The QoS monitor samples the global token
// cell with CompareSwap(v, v) loopbacks.
func (qp *QP) CompareSwap(r *Region, off int, expect, swap int64, cb func(old int64)) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, 8); err != nil {
		return err
	}
	w := qp.fabric.cfg.AtomicWeight
	qp.initiator.stats.CompareSwaps++
	qp.target.stats.OneSidedTargeted++
	var old int64
	qp.initiate(w, w, true, func() {
		old = int64(binary.LittleEndian.Uint64(r.buf[off:]))
		if old == expect {
			binary.LittleEndian.PutUint64(r.buf[off:], uint64(swap))
		}
	}, func() {
		if cb != nil {
			cb(old)
		}
	})
	return nil
}

// Send performs a two-sided operation carrying payload with the given wire
// size. For a server target the message is processed by the target NIC and
// then the target CPU before delivery to the receive handler — this is the
// path whose cost one-sided I/O avoids. For a client target (e.g. the
// monitor pushing reservation tokens) the message is delivered after the
// wire and the initiator-side costs only. cb (optional) fires at the
// initiator once the message has been delivered.
func (qp *QP) Send(payload any, size int, cb func()) error {
	if size < 0 {
		return fmt.Errorf("rdma: %s->%s: negative send size %d", qp.initiator.name, qp.target.name, size)
	}
	if qp.target.recv == nil {
		return fmt.Errorf("rdma: %s->%s: target has no receive handler", qp.initiator.name, qp.target.name)
	}
	f := qp.fabric
	k := f.k
	prop := f.cfg.PropagationDelay

	initWeight := f.cfg.sizeWeight(size)
	if qp.initiator.kind == ClientNode {
		// Two-sided operations cost measurably more at the client than
		// one-sided ones (Fig. 6); the surcharge is derived from the
		// calibrated rates.
		initWeight += f.twoSidedExtraWeight()
	}
	qp.initiator.stats.SendsSent++
	qp.target.stats.SendsReceived++

	deliver := func() {
		qp.target.recv(qp.initiator, payload)
		if cb != nil {
			k.Schedule(prop, cb)
		}
	}
	control := f.cfg.isControl(size)
	submitNIC(qp.initiator.nic, initWeight, control, func() {
		k.Schedule(prop, func() {
			if qp.target.kind == ServerNode {
				submitNIC(qp.target.nic, f.cfg.SendRequestWeight, true, func() {
					qp.target.cpu.Submit(deliver)
				})
			} else {
				// A client receiving a SEND pays its NIC the
				// size-proportional cost (a 4 KB RPC reply is real work;
				// a token push is nearly free).
				submitNIC(qp.target.nic, f.cfg.sizeWeight(size), control, deliver)
			}
		})
	})
	return nil
}
