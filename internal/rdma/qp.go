package rdma

import (
	"encoding/binary"
	"fmt"

	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
)

// QP is a queue pair: a unidirectional verb channel from an initiator node
// to a target node. Verbs submitted on a QP are processed FIFO at each
// station they traverse, so per-QP ordering matches RDMA reliable
// connection semantics.
//
// One-sided verbs (Read, Write, FetchAdd, CompareSwap) never involve the
// target CPU: their memory effects are applied by the simulated target NIC
// at its service-completion instant. Two-sided Sends are handed to the
// target CPU (for servers) and delivered to the node's receive handler.
//
// Verbs are represented as plain flowOp values that move through per-QP
// per-stage FIFOs; every pipeline stage completes through a callback
// bound once at Connect. This exploits the FIFO ordering each stage
// already guarantees (stations are FIFO within a class, the wire is a
// constant delay, the kernel breaks ties by scheduling order), so posting
// a verb allocates no per-operation closures — the only per-op
// allocations left are the payload copy a WRITE semantically requires
// and the optional flight-recorder span.
type QP struct {
	fabric    *Fabric
	id        int
	initiator *Node
	target    *Node

	// cross marks a QP whose initiator and target live on different
	// shard kernels. Such a QP splits its pipeline at the wire: the
	// initiator-side stages run on the initiator's kernel, the
	// target-side stages on the target's, and every wire hop (arrival,
	// completion delivery, credit return) travels through the shard
	// coordinator's mailboxes as a message carrying the flowOp by value
	// — the shared per-stage wire/deliver FIFOs are bypassed, since two
	// kernels may not touch one FIFO concurrently. The mailbox hop costs
	// one closure allocation per wire crossing; same-shard QPs keep the
	// allocation-free FIFO path unchanged.
	cross bool

	// Credit-based flow control for bulk transfers (see
	// Config.FlowControlWindow): inFlight counts data operations admitted
	// to the target and not yet serviced; waiting holds operations that
	// arrived at the wire without a credit. serverQ is this QP's queue in
	// the target's round-robin scheduler.
	window   int
	inFlight int
	waiting  opFIFO
	serverQ  *dataQueue

	// Pipeline-stage FIFOs. Control-class and bulk-class operations each
	// traverse their own initiator-NIC and wire stages (the two classes
	// complete out of order relative to each other, but FIFO within a
	// class); the remaining queues cover the target-side and delivery
	// stages. deliver is shared by every op kind: each push is paired
	// with scheduling one propagation-delayed event, so events pop in
	// push order.
	ctrlInit  opFIFO // awaiting initiator-NIC priority completion
	ctrlWire  opFIFO // on the wire toward the target (control class)
	ctrlServe opFIFO // awaiting target-NIC priority completion
	bulkInit  opFIFO // awaiting initiator-NIC bulk completion
	bulkWire  opFIFO // on the wire toward the target (bulk class)
	sendBulk  opFIFO // bulk SENDs awaiting a client target's NIC
	sendSrv   opFIFO // SENDs awaiting a server target's NIC
	sendCPU   opFIFO // SENDs awaiting a server target's CPU
	loopCtrl  opFIFO // loopback control ops at the initiator NIC
	loopBulk  opFIFO // loopback bulk ops at the initiator NIC
	deliver   opFIFO // completions awaiting delivery at the initiator

	// Wire arrival horizons. The FIFO pipeline pairs each wire push with
	// one delayed event, which is only correct while arrivals happen in
	// push order — guaranteed when the wire is a constant delay, but not
	// under a link-jitter storm, whose random extra could reorder two
	// hops. Each wire direction therefore clamps its arrival time to be
	// no earlier than the previous arrival on the same wire. Each horizon
	// has a single writer kernel: ctrlWireAt and bulkWireAt are written
	// only on the initiator's kernel (ctrlInitDone/bulkInitDone),
	// backWireAt only on the target's (serveOp/sendDeliver). With no
	// storm armed the clamp never binds (arrivals are already
	// non-decreasing), so the event sequence is unchanged.
	ctrlWireAt sim.Time
	bulkWireAt sim.Time
	backWireAt sim.Time

	// Kernel-timer callbacks (wire arrivals, completion delivery), bound
	// once at Connect. Station-stage completions need no per-QP closures:
	// they dispatch through (qp id, stage) tags resolved by one bound
	// function per node (see Node.dispatchTag).
	ctrlArriveFn func()
	bulkArriveFn func()
	deliverFn    func()
}

func (qp *QP) bindStages() {
	qp.ctrlArriveFn = qp.ctrlArrive
	qp.bulkArriveFn = qp.bulkArrive
	qp.deliverFn = qp.deliverNext
}

// Station-stage identifiers for tag dispatch: a tag packs the queue
// pair's dense id above stageBits bits of stage.
const (
	stageCtrlInit  uint32 = iota // initiator NIC finished a control op
	stageCtrlServe               // target NIC finished a control op
	stageBulkInit                // initiator NIC finished a bulk op
	stageSendBulk                // client target NIC finished a bulk SEND
	stageSendSrv                 // server target NIC finished a SEND header
	stageSendCPU                 // server target CPU finished a SEND
	stageLoopCtrl                // loopback control op traversed the NIC
	stageLoopBulk                // loopback bulk op traversed the NIC
)

const (
	stageBits = 4
	stageMask = 1<<stageBits - 1
)

// tag packs this QP's id with a stage for station dispatch.
func (qp *QP) tag(stage uint32) uint32 { return uint32(qp.id)<<stageBits | stage }

// opKind tags the operation a flowOp value carries through the pipeline.
type opKind uint8

const (
	// opFunc is a raw apply/complete pair used by injection paths (e.g.
	// background jobs) that enqueue directly at a target scheduler.
	opFunc opKind = iota
	opRead
	opWrite
	opFetchAdd
	opCompareSwap
	opSend
)

// flowOp is one verb moving through the pipeline. It is a value type:
// stage FIFOs copy it, so the struct carries everything a stage needs —
// the routing class, the target memory range, the payload, the result of
// an atomic, and the caller's completion callback. span, when non-nil, is
// the flight-recorder span tracking the op.
type flowOp struct {
	kind    opKind
	control bool
	qp      *QP

	// weight is the target-side service weight; initWeight the
	// initiator-side one.
	weight     float64
	initWeight float64

	region *Region
	off    int
	size   int
	buf    []byte // WRITE payload, captured at call time (large writes)

	// inline holds small WRITE payloads (up to 8 bytes — Haechi's silent
	// reports and token pushes) by value, so the hot reporting path posts
	// no heap buffer; inlineLen > 0 means inline is the payload and buf
	// is nil.
	inline    [8]byte
	inlineLen uint8

	delta  int64 // FETCH_ADD
	expect int64 // CMP_SWAP
	swap   int64
	result int64 // atomic result, filled at apply time

	payload any // SEND payload

	readCB func(data []byte)
	u64CB  func(old int64)
	doneCB func()

	applyFn    func() // opFunc only
	completeFn func()

	span *trace.Span
}

// needsDeliver reports whether the op schedules a completion delivery
// back at the initiator after its memory effect is applied. READs and
// atomics always deliver (the old value or the data travels back);
// WRITEs and SENDs only when the caller asked for a completion callback.
func (op *flowOp) needsDeliver() bool {
	switch op.kind {
	case opRead, opFetchAdd, opCompareSwap:
		return true
	case opWrite, opSend:
		return op.doneCB != nil
	}
	return false
}

// apply performs the op's memory effect at the target; for atomics the
// pre-operation value is stored in op.result for delivery.
func (op *flowOp) apply() {
	switch op.kind {
	case opWrite:
		if op.inlineLen > 0 {
			copy(op.region.buf[op.off:], op.inline[:op.inlineLen])
		} else {
			copy(op.region.buf[op.off:], op.buf)
		}
	case opFetchAdd:
		old := int64(binary.LittleEndian.Uint64(op.region.buf[op.off:]))
		binary.LittleEndian.PutUint64(op.region.buf[op.off:], uint64(old+op.delta))
		op.result = old
	case opCompareSwap:
		old := int64(binary.LittleEndian.Uint64(op.region.buf[op.off:]))
		if old == op.expect {
			binary.LittleEndian.PutUint64(op.region.buf[op.off:], uint64(op.swap))
		}
		op.result = old
	}
}

// invokeCB runs the caller's completion callback.
func (op *flowOp) invokeCB() {
	switch op.kind {
	case opRead:
		// Cross-shard READs snapshot the target memory into buf at serve
		// time (see serveOp): the live region view belongs to the target's
		// shard and must not be read a propagation later from the
		// initiator's. Same-shard READs keep the zero-copy view.
		if op.buf != nil {
			op.readCB(op.buf)
		} else {
			op.readCB(op.region.bytes(op.off, op.size))
		}
	case opFetchAdd, opCompareSwap:
		if op.u64CB != nil {
			op.u64CB(op.result)
		}
	case opWrite, opSend:
		if op.doneCB != nil {
			op.doneCB()
		}
	}
}

// Initiator returns the initiating node.
func (qp *QP) Initiator() *Node { return qp.initiator }

// ID returns the queue pair's fabric-wide creation-order id.
func (qp *QP) ID() int { return qp.id }

// beginSpan starts a flight-recorder span for a verb posted on this QP,
// or returns nil when recording is off.
func (qp *QP) beginSpan(op trace.Op, control bool) *trace.Span {
	fr := qp.initiator.flight // the initiator's shard begins the span
	if fr == nil {
		return nil
	}
	return fr.Begin(op, control, qp.initiator.name, qp.target.name, qp.id, qp.initiator.k.Now())
}

// Target returns the target node.
func (qp *QP) Target() *Node { return qp.target }

func (qp *QP) checkRegion(r *Region) error {
	if r == nil {
		return fmt.Errorf("rdma: %s->%s: nil region", qp.initiator.name, qp.target.name)
	}
	if r.owner != qp.target {
		return fmt.Errorf("rdma: %s->%s: region %q is owned by %s, not the QP target",
			qp.initiator.name, qp.target.name, r.name, r.owner.name)
	}
	return nil
}

// loopback reports whether this QP targets its own node (e.g. the QoS
// monitor manipulating the global token cell through its own NIC).
func (qp *QP) loopback() bool { return qp.initiator == qp.target }

// initiate charges the initiator NIC, then after propagation charges the
// target NIC and applies the op, then after propagation delivers the
// completion. For loopback QPs the op traverses the NIC once and skips the
// wire.
//
// When the op carries a span the pipeline stamps the span's stage
// timestamps. Stamps happen strictly inside callbacks the pipeline runs
// anyway and the span is finished at the memory-effect instant when the
// op needs no delivery — recording never schedules an event of its own,
// so the kernel's event sequence is identical with tracing on or off.
func (qp *QP) initiate(op flowOp) {
	if qp.loopback() {
		pen := qp.initiator.qpPenalty(qp.id)
		if op.control {
			qp.loopCtrl.push(op)
			qp.initiator.nic.SubmitPriorityTagged(op.weight+pen, qp.tag(stageLoopCtrl))
		} else {
			qp.loopBulk.push(op)
			qp.initiator.nic.SubmitTagged(op.weight+pen, qp.tag(stageLoopBulk))
		}
		return
	}
	if op.control {
		qp.ctrlInit.push(op)
		qp.initiator.nic.SubmitPriorityTagged(op.initWeight+qp.initiator.qpPenalty(qp.id), qp.tag(stageCtrlInit))
		return
	}
	qp.admitData(op)
}

// ctrlInitDone: a control op finished initiator-NIC service; put it on
// the wire. Cross-shard, the wire hop is a mailbox message carrying the
// op by value to the target's kernel.
func (qp *QP) ctrlInitDone() {
	op := qp.ctrlInit.pop()
	k := qp.initiator.k
	qp.initiator.prof.InitNICDone++
	if op.span != nil {
		op.span.InitDone = k.Now()
	}
	at := qp.wireAt(k, &qp.ctrlWireAt)
	if qp.cross {
		qp.postToTarget(op, at, (*QP).ctrlArriveOp)
		return
	}
	qp.ctrlWire.push(op)
	k.At(at, qp.ctrlArriveFn)
}

// wireAt computes a wire hop's arrival time — propagation plus any
// storm-drawn extra — clamped to the given direction's arrival horizon
// so arrivals stay in push order (see the horizon fields). Cross-shard
// the returned time is always ≥ now+PropagationDelay, the coordinator's
// lookahead, so the hop remains a legal mailbox message under storms.
func (qp *QP) wireAt(k *sim.Kernel, horizon *sim.Time) sim.Time {
	at := k.Now() + qp.fabric.cfg.PropagationDelay + qp.fabric.wireExtra(k)
	if at < *horizon {
		at = *horizon
	}
	*horizon = at
	return at
}

// ctrlArrive: a control op reached the target (same-shard FIFO path).
func (qp *QP) ctrlArrive() { qp.ctrlArriveOp(qp.ctrlWire.pop()) }

// ctrlArriveOp charges the target NIC's priority path for an arrived
// control op. Runs on the target's kernel.
func (qp *QP) ctrlArriveOp(op flowOp) {
	qp.target.prof.WireArrivals++
	if op.span != nil {
		op.span.Arrived = qp.target.k.Now()
	}
	qp.noteArrival(op)
	if op.kind == opSend {
		qp.sendTargetSubmit(op)
		return
	}
	qp.ctrlServe.push(op)
	qp.target.nic.SubmitPriorityTagged(op.weight+qp.target.qpPenalty(qp.id), qp.tag(stageCtrlServe))
}

// noteArrival counts an op against the target's verb stats. Same-shard
// QPs count at post time (the historical and still-default accounting
// instant); cross-shard QPs must count here, on the target's shard, so
// the counters have a single writer.
func (qp *QP) noteArrival(op flowOp) {
	if !qp.cross {
		return
	}
	if op.kind == opSend {
		qp.target.stats.SendsReceived++
	} else {
		qp.target.stats.OneSidedTargeted++
	}
}

// postToTarget sends op across the wire to the target's shard; arrive
// is the target-side stage to resume at.
func (qp *QP) postToTarget(op flowOp, at sim.Time, arrive func(*QP, flowOp)) {
	qp.initiator.prof.MailboxPosts++
	qp.fabric.post(qp.initiator.shard, qp.target.shard, at, func() { arrive(qp, op) })
}

// ctrlServed: the target NIC finished a control-class op — either a
// one-sided verb (apply its effect) or a SEND to a client target
// (deliver it).
func (qp *QP) ctrlServed() {
	op := qp.ctrlServe.pop()
	if op.kind == opSend {
		qp.sendDeliver(op)
		return
	}
	qp.serveOp(op)
}

// serveOp applies a one-sided op's memory effect at target-service
// completion and schedules the completion delivery back to the initiator.
// Shared by the control path, the bulk scheduler path, and (without the
// propagation hop) the loopback path.
func (qp *QP) serveOp(op flowOp) {
	k := qp.target.k
	qp.target.prof.countKind(op.kind)
	if op.span != nil {
		op.span.Served = k.Now()
		if !op.needsDeliver() {
			// The span ends here; fold it into the target's shard recorder
			// (this code runs on the target's kernel).
			qp.target.flight.Finish(op.span)
		}
	}
	if qp.cross && op.kind == opRead {
		// Snapshot the data now; invokeCB prefers buf (never otherwise
		// set for a READ) over the live region view.
		op.buf = append([]byte(nil), op.region.bytes(op.off, op.size)...)
	}
	op.apply()
	if qp.cross {
		// One message back across the wire does both halves of the return
		// hop: the flow-control credit (held by every non-control data op;
		// same-shard QPs release it at the serve instant through the
		// scheduler, but cross-shard the release must run on the
		// initiator's kernel, one propagation later — the ACK travels the
		// wire) and, when the op delivers, the completion callback.
		holdsCredit := !op.control
		deliver := op.needsDeliver()
		if !holdsCredit && !deliver {
			return
		}
		qp.postToInitiator(op, qp.wireAt(k, &qp.backWireAt), holdsCredit, deliver)
		return
	}
	if op.needsDeliver() {
		qp.deliver.push(op)
		k.At(qp.wireAt(k, &qp.backWireAt), qp.deliverFn)
	}
}

// postToInitiator sends the serviced op's return hop to the initiator's
// shard.
func (qp *QP) postToInitiator(op flowOp, at sim.Time, credit, deliver bool) {
	qp.target.prof.MailboxPosts++
	qp.fabric.post(qp.target.shard, qp.initiator.shard, at, func() {
		if credit {
			qp.releaseCredit()
		}
		if deliver {
			qp.deliverOp(op)
		}
	})
}

// deliverNext completes the oldest delivered op at the initiator
// (same-shard FIFO path).
func (qp *QP) deliverNext() { qp.deliverOp(qp.deliver.pop()) }

// deliverOp completes op at the initiator. Runs on the initiator's
// kernel.
func (qp *QP) deliverOp(op flowOp) {
	qp.initiator.prof.Deliveries++
	if op.span != nil {
		op.span.Done = qp.initiator.k.Now()
		qp.initiator.flight.Finish(op.span)
	}
	op.invokeCB()
}

// loopCtrlServed / loopBulkServed: a loopback op traversed the NIC once;
// its effect and completion happen at the same instant, with no wire.
func (qp *QP) loopCtrlServed() { qp.loopServe(qp.loopCtrl.pop()) }

func (qp *QP) loopBulkServed() { qp.loopServe(qp.loopBulk.pop()) }

func (qp *QP) loopServe(op flowOp) {
	k := qp.initiator.k // loopback QPs are never cross-shard
	qp.initiator.prof.Loopbacks++
	qp.initiator.prof.countKind(op.kind)
	if op.span != nil {
		op.span.Served = k.Now()
		if !op.needsDeliver() {
			qp.initiator.flight.Finish(op.span)
		}
	}
	op.apply()
	if op.needsDeliver() {
		if op.span != nil {
			op.span.Done = k.Now()
			qp.initiator.flight.Finish(op.span)
		}
		op.invokeCB()
	}
}

// admitData applies per-QP flow control at the initiator, before the
// sending NIC transmits: a posted WQE consumes no NIC processing until a
// credit is available, so late bursts of queued work still pay the
// per-operation initiator cost (the local capacity C_L) when they finally
// transmit — matching real credit-based flow control.
func (qp *QP) admitData(op flowOp) {
	if qp.serverQ == nil {
		if qp.cross {
			// The scheduler must not call back into initiator-side state
			// from the target's kernel; the credit returns by mailbox
			// message instead (see serveOp).
			qp.serverQ = newDataQueue(nil)
		} else {
			qp.serverQ = newDataQueue(qp.releaseCredit)
		}
	}
	if qp.window > 0 && qp.inFlight >= qp.window {
		qp.waiting.push(op)
		return
	}
	qp.transmit(op)
}

// transmit runs the credit-holding pipeline: initiator NIC service, wire,
// then the target's round-robin scheduler.
func (qp *QP) transmit(op flowOp) {
	qp.inFlight++
	qp.initiator.prof.CreditGrants++
	if op.span != nil {
		op.span.Credit = qp.initiator.k.Now()
	}
	qp.bulkInit.push(op)
	qp.initiator.nic.SubmitTagged(op.initWeight+qp.initiator.qpPenalty(qp.id), qp.tag(stageBulkInit))
}

// bulkInitDone: a bulk-class op (data transfer or bulk SEND) finished
// initiator-NIC service; put it on the wire.
func (qp *QP) bulkInitDone() {
	op := qp.bulkInit.pop()
	k := qp.initiator.k
	qp.initiator.prof.InitNICDone++
	if op.span != nil {
		op.span.InitDone = k.Now()
	}
	at := qp.wireAt(k, &qp.bulkWireAt)
	if qp.cross {
		qp.postToTarget(op, at, (*QP).bulkArriveOp)
		return
	}
	qp.bulkWire.push(op)
	k.At(at, qp.bulkArriveFn)
}

// bulkArrive: a bulk-class op reached the target (same-shard FIFO path).
func (qp *QP) bulkArrive() { qp.bulkArriveOp(qp.bulkWire.pop()) }

// bulkArriveOp routes an arrived bulk-class op: data ops queue at the
// target's round-robin scheduler; bulk SENDs go to the target NIC
// directly (they are not flow-controlled). Runs on the target's kernel.
func (qp *QP) bulkArriveOp(op flowOp) {
	qp.target.prof.WireArrivals++
	if op.span != nil {
		op.span.Arrived = qp.target.k.Now()
	}
	qp.noteArrival(op)
	if op.kind == opSend {
		qp.sendTargetSubmit(op)
		return
	}
	qp.target.sched.enqueue(qp.serverQ, op)
}

// releaseCredit returns one flow-control credit after a serviced op and
// admits the next waiting operation, if any.
func (qp *QP) releaseCredit() {
	qp.inFlight--
	if !qp.waiting.empty() {
		qp.transmit(qp.waiting.pop())
	}
}

// sendTargetSubmit charges the target-side stations for an arrived SEND.
// A server target processes the request header on its NIC priority path
// and then hands the message to the CPU; a client target pays its NIC
// the size-proportional cost and delivers directly.
func (qp *QP) sendTargetSubmit(op flowOp) {
	f := qp.fabric
	pen := qp.target.qpPenalty(qp.id)
	if qp.target.kind == ServerNode {
		qp.sendSrv.push(op)
		qp.target.nic.SubmitPriorityTagged(f.cfg.SendRequestWeight+pen, qp.tag(stageSendSrv))
		return
	}
	// A client receiving a SEND pays its NIC the size-proportional cost
	// (a 4 KB RPC reply is real work; a token push is nearly free).
	w := f.cfg.sizeWeight(op.size) + pen
	if op.control {
		qp.ctrlServe.push(op)
		qp.target.nic.SubmitPriorityTagged(w, qp.tag(stageCtrlServe))
		return
	}
	qp.sendBulk.push(op)
	qp.target.nic.SubmitTagged(w, qp.tag(stageSendBulk))
}

func (qp *QP) sendSrvServed() {
	op := qp.sendSrv.pop()
	qp.sendCPU.push(op)
	// The CPU is not a QP-context station: no connection-cache charge.
	qp.target.cpu.SubmitTagged(1, qp.tag(stageSendCPU))
}

func (qp *QP) sendCPUServed() { qp.sendDeliver(qp.sendCPU.pop()) }

func (qp *QP) sendBulkServed() { qp.sendDeliver(qp.sendBulk.pop()) }

// sendDeliver hands an arrived SEND to the target's receive handler and,
// when the sender asked for a completion callback, schedules it back at
// the initiator after propagation.
func (qp *QP) sendDeliver(op flowOp) {
	k := qp.target.k
	qp.target.prof.countKind(opSend)
	if op.span != nil {
		op.span.Served = k.Now()
		if op.doneCB == nil {
			qp.target.flight.Finish(op.span)
		}
	}
	qp.target.recv(qp.initiator, op.payload)
	if op.doneCB == nil {
		return
	}
	if qp.cross {
		qp.postToInitiator(op, qp.wireAt(k, &qp.backWireAt), false, true)
		return
	}
	qp.deliver.push(op)
	k.At(qp.wireAt(k, &qp.backWireAt), qp.deliverFn)
}

// Read performs a one-sided RDMA READ of size bytes at off in region r.
// The callback receives a view of the target memory valid at delivery
// time; callers that retain the data across further simulation must copy.
func (qp *QP) Read(r *Region, off, size int, cb func(data []byte)) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, size); err != nil {
		return err
	}
	w := qp.fabric.cfg.sizeWeight(size)
	qp.initiator.stats.Reads++
	qp.initiator.stats.BytesRead += uint64(size)
	if !qp.cross { // cross-shard: counted at arrival, on the target's shard
		qp.target.stats.OneSidedTargeted++
	}
	control := qp.fabric.cfg.isControl(size)
	qp.initiate(flowOp{
		kind:       opRead,
		control:    control,
		qp:         qp,
		weight:     w,
		initWeight: w,
		region:     r,
		off:        off,
		size:       size,
		readCB:     cb,
		span:       qp.beginSpan(trace.OpRead, control),
	})
	return nil
}

// Write performs a one-sided RDMA WRITE of data at off in region r. The
// data is captured at call time; cb (optional) fires when the initiator
// observes completion. Haechi's silent reports are 8-byte Writes.
func (qp *QP) Write(r *Region, off int, data []byte, cb func()) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, len(data)); err != nil {
		return err
	}
	w := qp.fabric.cfg.sizeWeight(len(data))
	qp.initiator.stats.Writes++
	qp.initiator.stats.BytesWritten += uint64(len(data))
	if !qp.cross { // cross-shard: counted at arrival, on the target's shard
		qp.target.stats.OneSidedTargeted++
	}
	control := qp.fabric.cfg.isControl(len(data))
	op := flowOp{
		kind:       opWrite,
		control:    control,
		qp:         qp,
		weight:     w,
		initWeight: w,
		region:     r,
		off:        off,
		doneCB:     cb,
		span:       qp.beginSpan(trace.OpWrite, control),
	}
	// The payload is captured at call time either inline (small writes —
	// the report/token hot path, no heap buffer) or into a fresh buffer.
	if len(data) <= len(op.inline) {
		op.inlineLen = uint8(copy(op.inline[:], data))
	} else {
		op.buf = make([]byte, len(data))
		copy(op.buf, data)
	}
	qp.initiate(op)
	return nil
}

// WriteUint64 writes an 8-byte little-endian value; this is the wire
// format of Haechi client reports.
func (qp *QP) WriteUint64(r *Region, off int, v uint64, cb func()) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return qp.Write(r, off, b[:], cb)
}

// FetchAdd performs a one-sided atomic FETCH_ADD on the 8-byte cell at
// off: the callback receives the value before the add. Haechi clients
// claim batched global tokens with FetchAdd(-B).
func (qp *QP) FetchAdd(r *Region, off int, delta int64, cb func(old int64)) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, 8); err != nil {
		return err
	}
	w := qp.fabric.cfg.AtomicWeight
	qp.initiator.stats.FetchAdds++
	if !qp.cross { // cross-shard: counted at arrival, on the target's shard
		qp.target.stats.OneSidedTargeted++
	}
	qp.initiate(flowOp{
		kind:       opFetchAdd,
		control:    true,
		qp:         qp,
		weight:     w,
		initWeight: w,
		region:     r,
		off:        off,
		delta:      delta,
		u64CB:      cb,
		span:       qp.beginSpan(trace.OpFetchAdd, true),
	})
	return nil
}

// CompareSwap performs a one-sided atomic CMP_SWAP on the 8-byte cell at
// off: if the cell equals expect it is set to swap; the callback receives
// the value before the operation. The QoS monitor samples the global token
// cell with CompareSwap(v, v) loopbacks.
func (qp *QP) CompareSwap(r *Region, off int, expect, swap int64, cb func(old int64)) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, 8); err != nil {
		return err
	}
	w := qp.fabric.cfg.AtomicWeight
	qp.initiator.stats.CompareSwaps++
	if !qp.cross { // cross-shard: counted at arrival, on the target's shard
		qp.target.stats.OneSidedTargeted++
	}
	qp.initiate(flowOp{
		kind:       opCompareSwap,
		control:    true,
		qp:         qp,
		weight:     w,
		initWeight: w,
		region:     r,
		off:        off,
		expect:     expect,
		swap:       swap,
		u64CB:      cb,
		span:       qp.beginSpan(trace.OpCompareSwap, true),
	})
	return nil
}

// Send performs a two-sided operation carrying payload with the given wire
// size. For a server target the message is processed by the target NIC and
// then the target CPU before delivery to the receive handler — this is the
// path whose cost one-sided I/O avoids. For a client target (e.g. the
// monitor pushing reservation tokens) the message is delivered after the
// wire and the initiator-side costs only. cb (optional) fires at the
// initiator once the message has been delivered.
func (qp *QP) Send(payload any, size int, cb func()) error {
	if size < 0 {
		return fmt.Errorf("rdma: %s->%s: negative send size %d", qp.initiator.name, qp.target.name, size)
	}
	if qp.target.recv == nil {
		return fmt.Errorf("rdma: %s->%s: target has no receive handler", qp.initiator.name, qp.target.name)
	}
	f := qp.fabric

	initWeight := f.cfg.sizeWeight(size)
	if qp.initiator.kind == ClientNode {
		// Two-sided operations cost measurably more at the client than
		// one-sided ones (Fig. 6); the surcharge is derived from the
		// calibrated rates.
		initWeight += f.twoSidedExtraWeight()
	}
	qp.initiator.stats.SendsSent++
	if !qp.cross { // cross-shard: counted at arrival, on the target's shard
		qp.target.stats.SendsReceived++
	}

	control := f.cfg.isControl(size)
	op := flowOp{
		kind:       opSend,
		control:    control,
		qp:         qp,
		initWeight: initWeight,
		size:       size,
		payload:    payload,
		doneCB:     cb,
		span:       qp.beginSpan(trace.OpSend, control),
	}
	// SENDs are not flow-controlled: they enter the class's initiator-NIC
	// stage directly.
	pen := qp.initiator.qpPenalty(qp.id)
	if control {
		qp.ctrlInit.push(op)
		qp.initiator.nic.SubmitPriorityTagged(initWeight+pen, qp.tag(stageCtrlInit))
	} else {
		qp.bulkInit.push(op)
		qp.initiator.nic.SubmitTagged(initWeight+pen, qp.tag(stageBulkInit))
	}
	return nil
}
