package rdma

import (
	"encoding/binary"
	"fmt"

	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
)

// QP is a queue pair: a unidirectional verb channel from an initiator node
// to a target node. Verbs submitted on a QP are processed FIFO at each
// station they traverse, so per-QP ordering matches RDMA reliable
// connection semantics.
//
// One-sided verbs (Read, Write, FetchAdd, CompareSwap) never involve the
// target CPU: their memory effects are applied by the simulated target NIC
// at its service-completion instant. Two-sided Sends are handed to the
// target CPU (for servers) and delivered to the node's receive handler.
type QP struct {
	fabric    *Fabric
	id        int
	initiator *Node
	target    *Node

	// Credit-based flow control for bulk transfers (see
	// Config.FlowControlWindow): inFlight counts data operations admitted
	// to the target and not yet serviced; waiting holds operations that
	// arrived at the wire without a credit. serverQ is this QP's queue in
	// the target's round-robin scheduler.
	window   int
	inFlight int
	waiting  []flowOp
	serverQ  *dataQueue
}

// flowOp is a data operation waiting for a flow-control credit. weight is
// the target-side service weight; initWeight the initiator-side one.
// span, when non-nil, is the flight-recorder span tracking the op.
type flowOp struct {
	weight     float64
	initWeight float64
	apply      func()
	complete   func()
	span       *trace.Span
}

// Initiator returns the initiating node.
func (qp *QP) Initiator() *Node { return qp.initiator }

// ID returns the queue pair's fabric-wide creation-order id.
func (qp *QP) ID() int { return qp.id }

// beginSpan starts a flight-recorder span for a verb posted on this QP,
// or returns nil when recording is off.
func (qp *QP) beginSpan(op trace.Op, control bool) *trace.Span {
	fr := qp.fabric.flight
	if fr == nil {
		return nil
	}
	return fr.Begin(op, control, qp.initiator.name, qp.target.name, qp.id, qp.fabric.k.Now())
}

// Target returns the target node.
func (qp *QP) Target() *Node { return qp.target }

func (qp *QP) checkRegion(r *Region) error {
	if r == nil {
		return fmt.Errorf("rdma: %s->%s: nil region", qp.initiator.name, qp.target.name)
	}
	if r.owner != qp.target {
		return fmt.Errorf("rdma: %s->%s: region %q is owned by %s, not the QP target",
			qp.initiator.name, qp.target.name, r.name, r.owner.name)
	}
	return nil
}

// loopback reports whether this QP targets its own node (e.g. the QoS
// monitor manipulating the global token cell through its own NIC).
func (qp *QP) loopback() bool { return qp.initiator == qp.target }

// submitNIC routes an operation to a NIC station. Control operations
// (atomics and small transfers) take the priority path: they are
// arbitrated ahead of queued bulk transfers, as separate QPs are on a
// real RNIC, while still consuming station capacity.
func submitNIC(st *sim.Station, weight float64, control bool, done func()) {
	if control {
		st.SubmitPriority(weight, done)
		return
	}
	st.SubmitWeighted(weight, done)
}

// initiate charges the initiator NIC, then after propagation charges the
// target NIC and applies the op, then after propagation delivers the
// completion. For loopback QPs the op traverses the NIC once and skips the
// wire.
//
// When sp is non-nil the pipeline stamps the span's stage timestamps.
// Stamps happen strictly inside callbacks the pipeline runs anyway and
// the span is finished at the memory-effect instant when the caller
// supplied no completion — recording never schedules an event of its
// own, so the kernel's event sequence is identical with tracing on or
// off.
func (qp *QP) initiate(initWeight, targetWeight float64, control bool, sp *trace.Span, apply func(), complete func()) {
	k := qp.fabric.k
	prop := qp.fabric.cfg.PropagationDelay
	if sp != nil {
		fr := qp.fabric.flight
		origApply, origComplete := apply, complete
		if origComplete != nil {
			apply = func() {
				sp.Served = k.Now()
				origApply()
			}
			complete = func() {
				sp.Done = k.Now()
				fr.Finish(sp)
				origComplete()
			}
		} else {
			apply = func() {
				sp.Served = k.Now()
				fr.Finish(sp)
				origApply()
			}
		}
	}
	if qp.loopback() {
		submitNIC(qp.initiator.nic, targetWeight, control, func() {
			apply()
			if complete != nil {
				complete()
			}
		})
		return
	}
	if control {
		qp.initiator.nic.SubmitPriority(initWeight, func() {
			if sp != nil {
				sp.InitDone = k.Now()
			}
			k.Schedule(prop, func() {
				if sp != nil {
					sp.Arrived = k.Now()
				}
				qp.target.nic.SubmitPriority(targetWeight, func() {
					apply()
					if complete != nil {
						k.Schedule(prop, complete)
					}
				})
			})
		})
		return
	}
	qp.admitData(flowOp{
		weight:     targetWeight,
		initWeight: initWeight,
		apply:      apply,
		complete:   complete,
		span:       sp,
	})
}

// admitData applies per-QP flow control at the initiator, before the
// sending NIC transmits: a posted WQE consumes no NIC processing until a
// credit is available, so late bursts of queued work still pay the
// per-operation initiator cost (the local capacity C_L) when they finally
// transmit — matching real credit-based flow control.
func (qp *QP) admitData(op flowOp) {
	if qp.serverQ == nil {
		qp.serverQ = newDataQueue(qp.releaseCredit)
	}
	if qp.window > 0 && qp.inFlight >= qp.window {
		qp.waiting = append(qp.waiting, op)
		return
	}
	qp.transmit(op)
}

// transmit runs the credit-holding pipeline: initiator NIC service, wire,
// then the target's round-robin scheduler.
func (qp *QP) transmit(op flowOp) {
	qp.inFlight++
	k := qp.fabric.k
	prop := qp.fabric.cfg.PropagationDelay
	if op.span != nil {
		op.span.Credit = k.Now()
	}
	qp.initiator.nic.SubmitWeighted(op.initWeight, func() {
		if op.span != nil {
			op.span.InitDone = k.Now()
		}
		k.Schedule(prop, func() {
			if op.span != nil {
				op.span.Arrived = k.Now()
			}
			qp.target.sched.enqueue(qp.serverQ, op)
		})
	})
}

// releaseCredit returns one flow-control credit after a serviced op and
// admits the next waiting operation, if any.
func (qp *QP) releaseCredit() {
	qp.inFlight--
	if len(qp.waiting) > 0 {
		next := qp.waiting[0]
		qp.waiting[0] = flowOp{}
		qp.waiting = qp.waiting[1:]
		qp.transmit(next)
	}
}

// Read performs a one-sided RDMA READ of size bytes at off in region r.
// The callback receives a view of the target memory valid at delivery
// time; callers that retain the data across further simulation must copy.
func (qp *QP) Read(r *Region, off, size int, cb func(data []byte)) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, size); err != nil {
		return err
	}
	w := qp.fabric.cfg.sizeWeight(size)
	qp.initiator.stats.Reads++
	qp.initiator.stats.BytesRead += uint64(size)
	qp.target.stats.OneSidedTargeted++
	control := qp.fabric.cfg.isControl(size)
	sp := qp.beginSpan(trace.OpRead, control)
	qp.initiate(w, w, control, sp, func() {}, func() {
		cb(r.bytes(off, size))
	})
	return nil
}

// Write performs a one-sided RDMA WRITE of data at off in region r. The
// data is captured at call time; cb (optional) fires when the initiator
// observes completion. Haechi's silent reports are 8-byte Writes.
func (qp *QP) Write(r *Region, off int, data []byte, cb func()) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, len(data)); err != nil {
		return err
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	w := qp.fabric.cfg.sizeWeight(len(buf))
	qp.initiator.stats.Writes++
	qp.initiator.stats.BytesWritten += uint64(len(buf))
	qp.target.stats.OneSidedTargeted++
	control := qp.fabric.cfg.isControl(len(buf))
	sp := qp.beginSpan(trace.OpWrite, control)
	qp.initiate(w, w, control, sp, func() {
		copy(r.buf[off:], buf)
	}, cb)
	return nil
}

// WriteUint64 writes an 8-byte little-endian value; this is the wire
// format of Haechi client reports.
func (qp *QP) WriteUint64(r *Region, off int, v uint64, cb func()) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return qp.Write(r, off, b[:], cb)
}

// FetchAdd performs a one-sided atomic FETCH_ADD on the 8-byte cell at
// off: the callback receives the value before the add. Haechi clients
// claim batched global tokens with FetchAdd(-B).
func (qp *QP) FetchAdd(r *Region, off int, delta int64, cb func(old int64)) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, 8); err != nil {
		return err
	}
	w := qp.fabric.cfg.AtomicWeight
	qp.initiator.stats.FetchAdds++
	qp.target.stats.OneSidedTargeted++
	var old int64
	sp := qp.beginSpan(trace.OpFetchAdd, true)
	qp.initiate(w, w, true, sp, func() {
		old = int64(binary.LittleEndian.Uint64(r.buf[off:]))
		binary.LittleEndian.PutUint64(r.buf[off:], uint64(old+delta))
	}, func() {
		if cb != nil {
			cb(old)
		}
	})
	return nil
}

// CompareSwap performs a one-sided atomic CMP_SWAP on the 8-byte cell at
// off: if the cell equals expect it is set to swap; the callback receives
// the value before the operation. The QoS monitor samples the global token
// cell with CompareSwap(v, v) loopbacks.
func (qp *QP) CompareSwap(r *Region, off int, expect, swap int64, cb func(old int64)) error {
	if err := qp.checkRegion(r); err != nil {
		return err
	}
	if err := r.checkRange(off, 8); err != nil {
		return err
	}
	w := qp.fabric.cfg.AtomicWeight
	qp.initiator.stats.CompareSwaps++
	qp.target.stats.OneSidedTargeted++
	var old int64
	sp := qp.beginSpan(trace.OpCompareSwap, true)
	qp.initiate(w, w, true, sp, func() {
		old = int64(binary.LittleEndian.Uint64(r.buf[off:]))
		if old == expect {
			binary.LittleEndian.PutUint64(r.buf[off:], uint64(swap))
		}
	}, func() {
		if cb != nil {
			cb(old)
		}
	})
	return nil
}

// Send performs a two-sided operation carrying payload with the given wire
// size. For a server target the message is processed by the target NIC and
// then the target CPU before delivery to the receive handler — this is the
// path whose cost one-sided I/O avoids. For a client target (e.g. the
// monitor pushing reservation tokens) the message is delivered after the
// wire and the initiator-side costs only. cb (optional) fires at the
// initiator once the message has been delivered.
func (qp *QP) Send(payload any, size int, cb func()) error {
	if size < 0 {
		return fmt.Errorf("rdma: %s->%s: negative send size %d", qp.initiator.name, qp.target.name, size)
	}
	if qp.target.recv == nil {
		return fmt.Errorf("rdma: %s->%s: target has no receive handler", qp.initiator.name, qp.target.name)
	}
	f := qp.fabric
	k := f.k
	prop := f.cfg.PropagationDelay

	initWeight := f.cfg.sizeWeight(size)
	if qp.initiator.kind == ClientNode {
		// Two-sided operations cost measurably more at the client than
		// one-sided ones (Fig. 6); the surcharge is derived from the
		// calibrated rates.
		initWeight += f.twoSidedExtraWeight()
	}
	qp.initiator.stats.SendsSent++
	qp.target.stats.SendsReceived++

	control := f.cfg.isControl(size)
	fr := f.flight
	sp := qp.beginSpan(trace.OpSend, control)
	done := cb
	if sp != nil && cb != nil {
		done = func() {
			sp.Done = k.Now()
			fr.Finish(sp)
			cb()
		}
	}
	deliver := func() {
		if sp != nil {
			sp.Served = k.Now()
			if cb == nil {
				fr.Finish(sp)
			}
		}
		qp.target.recv(qp.initiator, payload)
		if done != nil {
			k.Schedule(prop, done)
		}
	}
	submitNIC(qp.initiator.nic, initWeight, control, func() {
		if sp != nil {
			sp.InitDone = k.Now()
		}
		k.Schedule(prop, func() {
			if sp != nil {
				sp.Arrived = k.Now()
			}
			if qp.target.kind == ServerNode {
				submitNIC(qp.target.nic, f.cfg.SendRequestWeight, true, func() {
					qp.target.cpu.Submit(deliver)
				})
			} else {
				// A client receiving a SEND pays its NIC the
				// size-proportional cost (a 4 KB RPC reply is real work;
				// a token push is nearly free).
				submitNIC(qp.target.nic, f.cfg.sizeWeight(size), control, deliver)
			}
		})
	})
	return nil
}
