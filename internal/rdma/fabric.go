package rdma

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/sanitize"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
)

// Slab chunk sizes: nodes and queue pairs are allocated out of fixed-size
// chunks so element pointers stay stable while the arrays stay dense —
// struct-of-arrays locality at fleet scale (10^5+ clients) without the
// per-object heap litter of one allocation per node/QP.
const (
	nodeChunkSize = 256
	qpChunkSize   = 512
)

// NodeKind distinguishes the two roles in the performance model.
type NodeKind int

// Node kinds.
const (
	// ClientNode initiates verbs; its NIC station is calibrated to the
	// per-client caps (C_L).
	ClientNode NodeKind = iota + 1
	// ServerNode is a data node: its NIC station is calibrated to the
	// aggregate one-sided cap (C_G) and its CPU station to the two-sided
	// RPC cap.
	ServerNode
)

func (k NodeKind) String() string {
	switch k {
	case ClientNode:
		return "client"
	case ServerNode:
		return "server"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a machine attached to the fabric. Nodes live in the fabric's
// slab chunks — never hold one by value; the *Node returned at creation
// is stable for the fabric's lifetime.
type Node struct {
	fabric *Fabric
	name   string
	kind   NodeKind
	// id is the node's dense creation-order index (background-job
	// initiators included); it indexes fabric-wide per-node arrays.
	id int

	// k is the kernel every event local to this node runs on. Without
	// sharding it is the fabric's kernel; under EnableSharding it is the
	// node's shard kernel. All of the node's stations are built on it.
	k     *sim.Kernel
	shard int

	// nic processes every verb that transits this node (initiations and,
	// for servers, incoming one-sided targets).
	nic *sim.Station
	// cpu processes two-sided requests; nil for client nodes (client-side
	// receive processing is folded into the initiator weight, see Send).
	cpu *sim.Station

	recv    func(from *Node, payload any)
	regions map[string]*Region
	stats   Stats
	// sched arbitrates incoming bulk operations round-robin across
	// initiators (per-QP fairness).
	sched rrScheduler

	// flight is this node's shard's flight recorder (nil when recording
	// is off). Cached per node so the hot stamping sites index nothing:
	// every stamp runs on the node's own kernel, so each recorder keeps
	// a single writer even when shards run concurrently.
	flight *trace.FlightRecorder
	// prof is this node's shard's attribution profile (always non-nil).
	// Same single-writer argument: every increment runs on the node's
	// kernel.
	prof *ExecProfile
	// san is this node's shard's invariant checker (nil when sanitizing
	// is off); structural fabric invariants report here.
	san *sanitize.Checker

	// qpCache models the NIC's connection cache (Config.QPCacheSize);
	// disabled (zero capacity) by default.
	qpCache qpCache
}

// ID returns the node's dense creation-order index.
func (n *Node) ID() int { return n.id }

// qpPenalty charges one QP-context touch at this node's NIC and returns
// the extra service weight the touch costs: 0 on a cache hit (or with
// the model disabled), the configured miss penalty when the context must
// be fetched from host memory.
func (n *Node) qpPenalty(qpID int) float64 {
	c := &n.qpCache
	if c.cap == 0 {
		return 0
	}
	if c.touch(qpID) {
		n.prof.QPCacheHits++
		return 0
	}
	n.prof.QPCacheMisses++
	if n.san != nil && (c.used > c.cap || len(c.slot) != c.used) {
		n.san.Reportf("qp-cache", int64(n.k.Now()),
			"node %s: qp cache occupancy %d (map %d) exceeds capacity %d",
			n.name, c.used, len(c.slot), c.cap)
	}
	return c.penalty
}

// dispatchTag resolves a station completion tag — (queue pair, stage)
// packed into 32 bits — to the tagged stage handler. One bound instance
// per node replaces the eight per-QP completion closures the pipeline
// stages used to hold, so connecting a queue pair no longer allocates
// per-stage callbacks and station completions dispatch through a dense
// table instead of per-object funcs.
func (n *Node) dispatchTag(tag uint32) {
	qp := n.fabric.qps[tag>>stageBits]
	switch tag & stageMask {
	case stageCtrlInit:
		qp.ctrlInitDone()
	case stageCtrlServe:
		qp.ctrlServed()
	case stageBulkInit:
		qp.bulkInitDone()
	case stageSendBulk:
		qp.sendBulkServed()
	case stageSendSrv:
		qp.sendSrvServed()
	case stageSendCPU:
		qp.sendCPUServed()
	case stageLoopCtrl:
		qp.loopCtrlServed()
	case stageLoopBulk:
		qp.loopBulkServed()
	}
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Fabric returns the fabric the node is attached to.
func (n *Node) Fabric() *Fabric { return n.fabric }

// Kernel returns the kernel the node's events run on: the fabric kernel,
// or the node's shard kernel when sharding is enabled. Components owned
// by one node (engines, generators, the monitor) must schedule on this
// kernel, never on Fabric.Kernel directly.
func (n *Node) Kernel() *sim.Kernel { return n.k }

// Shard returns the node's shard index; 0 when sharding is disabled.
func (n *Node) Shard() int { return n.shard }

// Kind returns the node kind.
func (n *Node) Kind() NodeKind { return n.kind }

// Stats returns a snapshot of the node's verb counters.
func (n *Node) Stats() Stats { return n.stats }

// NIC exposes the node's NIC station (e.g. to adjust rates in fault or
// congestion scenarios).
func (n *Node) NIC() *sim.Station { return n.nic }

// CPU exposes the node's two-sided processing station; nil for client
// nodes.
func (n *Node) CPU() *sim.Station { return n.cpu }

// SetRecvHandler installs the handler invoked when a two-sided SEND is
// delivered to this node. For server nodes the handler runs after CPU
// processing; for client nodes it runs on NIC delivery.
func (n *Node) SetRecvHandler(h func(from *Node, payload any)) { n.recv = h }

// RegisterRegion registers size bytes of memory under name and returns the
// region capability. Registering a duplicate name is an error.
func (n *Node) RegisterRegion(name string, size int) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("rdma: node %s: region %q size must be positive, got %d", n.name, name, size)
	}
	if _, ok := n.regions[name]; ok {
		return nil, fmt.Errorf("rdma: node %s: region %q already registered", n.name, name)
	}
	r := &Region{name: name, owner: n, buf: make([]byte, size)}
	n.regions[name] = r
	return r, nil
}

// Region looks up a registered region by name.
func (n *Node) Region(name string) (*Region, bool) {
	r, ok := n.regions[name]
	return r, ok
}

// Fabric is the simulated network: it owns the nodes and the performance
// model and schedules all verb processing on the simulation kernel.
type Fabric struct {
	k     *sim.Kernel
	cfg   Config
	nodes []*Node

	// nodeChunks and qpChunks are the slab backing stores for nodes and
	// queue pairs (see the chunk-size constants); byName indexes nodes for
	// O(1) duplicate detection and lookup, and qps indexes queue pairs by
	// their dense 1-based id (qps[0] is nil) for tag dispatch. All four
	// grow only during setup: on a sharded fabric, nodes and connections
	// must exist before the run starts (the assignment is fixed at
	// EnableSharding time), so concurrent shard kernels only ever read
	// these slices.
	nodeChunks [][]Node
	qpChunks   [][]QP
	byName     map[string]*Node
	qps        []*QP

	// flights holds one flight recorder per shard (one entry when
	// unsharded), or nil when recording is off. Each recorder receives
	// spans only from code running on its shard's kernel — Begin on the
	// initiator's shard, Finish on the shard of the stamping site — so
	// concurrent shards never share a recorder. Recording only stamps
	// timestamps inside callbacks the fabric executes anyway, so the
	// kernel event sequence is unchanged (DESIGN.md §7, §11).
	flights []*trace.FlightRecorder
	// profs holds one attribution profile per shard (one entry when
	// unsharded); always non-nil. See ExecProfile.
	profs []*ExecProfile
	// qpSeq numbers queue pairs in creation order; the id is the span
	// track within the initiator's process in Chrome trace exports
	// (fabric-wide unique, so sharded exports can use it as a thread id
	// directly).
	qpSeq int

	// Sharded mode (see EnableSharding): shardKernels[s] drives shard s,
	// assign maps a node name to its shard, and post hands a cross-shard
	// event to the coordinator's mailboxes. All nil when unsharded.
	shardKernels []*sim.Kernel
	assign       func(name string, kind NodeKind) int
	post         func(src, dst int, at sim.Time, fn func())

	// storms holds armed link-jitter windows (see AddLinkStorm).
	// Immutable once the run starts; empty in every non-chaos run.
	storms []wireStorm
}

// NewFabric creates a fabric on kernel k with the given performance model.
func NewFabric(k *sim.Kernel, cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Fabric{
		k:      k,
		cfg:    cfg,
		profs:  []*ExecProfile{{}},
		byName: make(map[string]*Node),
		qps:    []*QP{nil},
	}, nil
}

// Kernel returns the simulation kernel driving this fabric. Under
// sharding this is shard 0's kernel (the one NewFabric was given);
// per-node work must use Node.Kernel instead.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Sharded reports whether EnableSharding has been called.
func (f *Fabric) Sharded() bool { return f.shardKernels != nil }

// EnableSharding switches the fabric to sharded mode: each node is
// built on the shard kernel assign selects for it, and cross-shard
// verb traffic is routed through post (the shard coordinator's mailbox
// Post) instead of being scheduled directly — the wire latency
// PropagationDelay is the coordinator's lookahead, so every cross-shard
// hop is a legal mailbox message by construction. kernels[0] must be
// the kernel NewFabric was given. Must be called before any node is
// added; the assignment is then fixed for the fabric's lifetime, which
// keeps a sharded run replayable from its config alone.
func (f *Fabric) EnableSharding(kernels []*sim.Kernel, assign func(name string, kind NodeKind) int, post func(src, dst int, at sim.Time, fn func())) error {
	if len(f.nodes) > 0 {
		return fmt.Errorf("rdma: EnableSharding must be called before nodes are added (%d exist)", len(f.nodes))
	}
	if len(kernels) == 0 || assign == nil || post == nil {
		return fmt.Errorf("rdma: EnableSharding requires kernels, an assignment, and a post function")
	}
	if kernels[0] != f.k {
		return fmt.Errorf("rdma: EnableSharding: kernels[0] must be the fabric's kernel")
	}
	f.shardKernels = kernels
	f.assign = assign
	f.post = post
	f.profs = make([]*ExecProfile, len(kernels))
	for s := range f.profs {
		f.profs[s] = &ExecProfile{}
	}
	return nil
}

// SetFlightRecorder attaches (or, with nil, detaches) a single flight
// recorder that will receive a span for every verb initiated from now
// on. On a sharded fabric with more than one shard this would give the
// recorder concurrent writers; use SetFlightRecorders there.
func (f *Fabric) SetFlightRecorder(fr *trace.FlightRecorder) {
	if fr == nil {
		f.flights = nil
	} else {
		f.flights = []*trace.FlightRecorder{fr}
	}
	f.reattachFlights()
}

// SetFlightRecorders attaches one flight recorder per shard. Each
// recorder is only ever touched by code running on its shard's kernel
// (spans begin on the initiator's recorder and finish on the recorder
// of the shard executing the final stamp), so shards may run
// concurrently without locks.
func (f *Fabric) SetFlightRecorders(frs []*trace.FlightRecorder) error {
	want := 1
	if f.shardKernels != nil {
		want = len(f.shardKernels)
	}
	if len(frs) != want {
		return fmt.Errorf("rdma: SetFlightRecorders: got %d recorders for %d shards", len(frs), want)
	}
	f.flights = frs
	f.reattachFlights()
	return nil
}

// reattachFlights refreshes each node's cached shard recorder.
func (f *Fabric) reattachFlights() {
	for _, n := range f.nodes {
		n.flight = f.flightFor(n.shard)
	}
}

// flightFor returns shard s's recorder, or nil when recording is off.
func (f *Fabric) flightFor(s int) *trace.FlightRecorder {
	if f.flights == nil {
		return nil
	}
	if len(f.flights) == 1 {
		return f.flights[0]
	}
	return f.flights[s]
}

// FlightRecorder returns the attached flight recorder (shard 0's in a
// sharded run), or nil.
func (f *Fabric) FlightRecorder() *trace.FlightRecorder {
	if f.flights == nil {
		return nil
	}
	return f.flights[0]
}

// ExecProfiles returns a copy of the per-shard attribution profiles in
// shard order (a single entry when unsharded). The counters are always
// on — they increment alongside event execution and are exactly as
// deterministic as the event sequence itself.
func (f *Fabric) ExecProfiles() []ExecProfile {
	out := make([]ExecProfile, len(f.profs))
	for s, p := range f.profs {
		out[s] = *p
	}
	return out
}

// Config returns the fabric's performance model.
func (f *Fabric) Config() Config { return f.cfg }

// Nodes returns all nodes attached to the fabric.
func (f *Fabric) Nodes() []*Node { return f.nodes }

// AddClient attaches a client node.
func (f *Fabric) AddClient(name string) (*Node, error) {
	return f.addNode(name, ClientNode)
}

// AddServer attaches a data node.
func (f *Fabric) AddServer(name string) (*Node, error) {
	return f.addNode(name, ServerNode)
}

func (f *Fabric) addNode(name string, kind NodeKind) (*Node, error) {
	if _, ok := f.byName[name]; ok {
		return nil, fmt.Errorf("rdma: node %q already exists", name)
	}
	if kind != ClientNode && kind != ServerNode {
		return nil, fmt.Errorf("rdma: unknown node kind %v", kind)
	}
	shard := 0
	k := f.k
	if f.shardKernels != nil {
		s := f.assign(name, kind)
		if s < 0 || s >= len(f.shardKernels) {
			return nil, fmt.Errorf("rdma: node %q assigned to shard %d, have %d shards", name, s, len(f.shardKernels))
		}
		shard = s
		k = f.shardKernels[s]
	}
	// Allocate the node out of the current slab chunk; chunks never grow
	// past their fixed capacity, so &chunk[i] stays valid forever.
	if len(f.nodeChunks) == 0 || len(f.nodeChunks[len(f.nodeChunks)-1]) == nodeChunkSize {
		f.nodeChunks = append(f.nodeChunks, make([]Node, 0, nodeChunkSize))
	}
	chunk := &f.nodeChunks[len(f.nodeChunks)-1]
	*chunk = append(*chunk, Node{
		fabric:  f,
		name:    name,
		kind:    kind,
		id:      len(f.byName),
		k:       k,
		shard:   shard,
		regions: make(map[string]*Region),
	})
	n := &(*chunk)[len(*chunk)-1]
	n.flight = f.flightFor(n.shard)
	n.prof = f.profs[n.shard]
	n.sched.node = n
	n.sched.onServedFn = n.sched.onServed
	n.qpCache.init(f.cfg.QPCacheSize, f.cfg.QPCacheMissPenalty)
	var err error
	switch kind {
	case ClientNode:
		n.nic, err = sim.NewStation(n.k, name+"/nic", f.cfg.ClientOneSidedRate, f.cfg.Jitter)
	case ServerNode:
		n.nic, err = sim.NewStation(n.k, name+"/nic", f.cfg.ServerOneSidedRate, f.cfg.Jitter)
		if err == nil {
			n.cpu, err = sim.NewStation(n.k, name+"/cpu", f.cfg.ServerTwoSidedRate, f.cfg.Jitter)
		}
	}
	if err != nil {
		*chunk = (*chunk)[:len(*chunk)-1]
		return nil, err
	}
	dispatch := n.dispatchTag
	n.nic.SetDispatch(dispatch)
	if n.cpu != nil {
		n.cpu.SetDispatch(dispatch)
	}
	f.byName[name] = n
	f.nodes = append(f.nodes, n)
	return n, nil
}

// NodeByName returns the node with the given name, if any (background-job
// initiators included).
func (f *Fabric) NodeByName(name string) (*Node, bool) {
	n, ok := f.byName[name]
	return n, ok
}

// SetSanitizers attaches one invariant checker per shard (a single entry
// when unsharded) to the fabric's structural checks, or detaches them
// with nil. Must be called after the nodes exist and before the run
// starts.
func (f *Fabric) SetSanitizers(cs []*sanitize.Checker) error {
	want := 1
	if f.shardKernels != nil {
		want = len(f.shardKernels)
	}
	if cs != nil && len(cs) != want {
		return fmt.Errorf("rdma: SetSanitizers: got %d checkers for %d shards", len(cs), want)
	}
	for _, n := range f.nodes {
		if cs == nil {
			n.san = nil
		} else {
			n.san = cs[n.shard]
		}
	}
	return nil
}

// Connect creates a queue pair from initiator to target. Queue pairs are
// slab-allocated and indexed by their dense id for tag dispatch; on a
// sharded fabric all connections must be made before the run starts (the
// index is then read concurrently by the shard kernels).
func (f *Fabric) Connect(initiator, target *Node) (*QP, error) {
	if initiator == nil || target == nil {
		return nil, fmt.Errorf("rdma: Connect requires two non-nil nodes")
	}
	if initiator.fabric != f || target.fabric != f {
		return nil, fmt.Errorf("rdma: Connect across fabrics (%s -> %s)", initiator.name, target.name)
	}
	f.qpSeq++
	if len(f.qpChunks) == 0 || len(f.qpChunks[len(f.qpChunks)-1]) == qpChunkSize {
		f.qpChunks = append(f.qpChunks, make([]QP, 0, qpChunkSize))
	}
	chunk := &f.qpChunks[len(f.qpChunks)-1]
	*chunk = append(*chunk, QP{
		fabric:    f,
		id:        f.qpSeq,
		initiator: initiator,
		target:    target,
		window:    f.cfg.FlowControlWindow,
		cross:     initiator.shard != target.shard && f.post != nil,
	})
	qp := &(*chunk)[len(*chunk)-1]
	qp.bindStages()
	f.qps = append(f.qps, qp)
	return qp, nil
}

// wireStorm is a jitter window on every wire hop: while the virtual
// clock is inside [from, to) each hop pays a uniformly drawn extra delay
// in [0, extra] on top of PropagationDelay. Storms are armed before the
// run starts and never mutated afterwards, so concurrent shard kernels
// may read the slice without synchronization; the random draw itself
// always comes from the executing kernel's own RNG, which keeps sharded
// runs byte-replayable.
type wireStorm struct {
	from, to sim.Time
	extra    sim.Time
}

// AddLinkStorm arms a link-jitter storm: between from and to every wire
// hop is stretched by a per-hop uniform extra delay in [0, extra]. Must
// be called before the run starts (fault scenarios compile their storms
// at cluster setup).
func (f *Fabric) AddLinkStorm(from, to, extra sim.Time) error {
	if extra <= 0 {
		return fmt.Errorf("rdma: link storm extra delay must be positive, got %v", extra)
	}
	if to <= from {
		return fmt.Errorf("rdma: link storm window [%v, %v) is empty", from, to)
	}
	f.storms = append(f.storms, wireStorm{from: from, to: to, extra: extra})
	return nil
}

// wireExtra returns the extra wire delay active at k.Now(), drawing from
// the executing kernel's RNG. With no storms armed it returns 0 without
// touching the RNG, so runs without chaos keep their exact event and
// random sequences.
func (f *Fabric) wireExtra(k *sim.Kernel) sim.Time {
	if len(f.storms) == 0 {
		return 0
	}
	now := k.Now()
	var extra sim.Time
	for _, s := range f.storms {
		if now >= s.from && now < s.to {
			extra += sim.Time(k.Rand().Int63n(int64(s.extra) + 1))
		}
	}
	return extra
}

// twoSidedExtraWeight is the additional initiation cost of a two-sided
// operation at a client NIC, derived from the calibrated one- and
// two-sided per-client rates: a closed-loop two-sided 4 KB GET should cost
// ClientOneSidedRate/ClientTwoSidedRate service units end to end.
func (f *Fabric) twoSidedExtraWeight() float64 {
	w := f.cfg.ClientOneSidedRate/f.cfg.ClientTwoSidedRate - 1
	if w < 0 {
		w = 0
	}
	return w
}
