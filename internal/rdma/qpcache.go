package rdma

// qpCache models a NIC's on-chip QP-context (connection) cache as an LRU
// over queue-pair ids: touching a cached context is free, touching an
// uncached one evicts the least recently used entry and costs the
// configured miss penalty (the context fetch from host memory). This is
// the RNIC scalability effect RDMAvisor and Storm measure — one-sided
// throughput collapses once the active connection count outgrows the
// cache — which the calibrated small-testbed model otherwise lacks.
//
// The cache is struct-of-arrays: the recency list is an intrusive doubly
// linked list over pre-allocated slot arrays, with a single map from QP
// id to slot. Touches are O(1) and allocation-free in steady state, and
// every touch happens on the owning node's kernel, so per-node caches
// need no locks even when shards run concurrently and the hit/miss
// sequence is exactly as deterministic as the event sequence.
type qpCache struct {
	cap     int
	penalty float64
	used    int

	slot map[int]int32 // qp id -> slot
	ids  []int         // slot -> qp id
	prev []int32       // recency list, -1 terminated
	next []int32
	head int32 // most recently used
	tail int32 // least recently used
}

// init sizes the cache; capacity <= 0 disables it (every touch hits).
// Slot storage grows lazily with the node's actual working set rather
// than preallocating the full capacity: a fleet client's NIC only ever
// holds its own handful of contexts, and the capacity is shared model
// configuration, so eager sizing would charge every one of 10^5 nodes
// for the server's working set.
func (c *qpCache) init(capacity int, penalty float64) {
	c.cap = capacity
	c.penalty = penalty
	if capacity <= 0 {
		return
	}
	c.slot = make(map[int]int32)
	c.head, c.tail = -1, -1
}

// touch marks the QP's context used now and reports whether it was
// already cached.
func (c *qpCache) touch(id int) bool {
	if s, ok := c.slot[id]; ok {
		if s != c.head {
			c.unlink(s)
			c.pushFront(s)
		}
		return true
	}
	var s int32
	if c.used < c.cap {
		s = int32(c.used)
		c.used++
		if int(s) == len(c.ids) {
			// Grows only while the working set grows; steady state —
			// whether all-resident or thrashing through evictions —
			// stays allocation-free.
			c.ids = append(c.ids, 0)
			c.prev = append(c.prev, 0)
			c.next = append(c.next, 0)
		}
	} else {
		s = c.tail
		c.unlink(s)
		delete(c.slot, c.ids[s])
	}
	c.ids[s] = id
	c.slot[id] = s
	c.pushFront(s)
	return false
}

func (c *qpCache) unlink(s int32) {
	p, n := c.prev[s], c.next[s]
	if p >= 0 {
		c.next[p] = n
	} else {
		c.head = n
	}
	if n >= 0 {
		c.prev[n] = p
	} else {
		c.tail = p
	}
}

func (c *qpCache) pushFront(s int32) {
	c.prev[s] = -1
	c.next[s] = c.head
	if c.head >= 0 {
		c.prev[c.head] = s
	}
	c.head = s
	if c.tail < 0 {
		c.tail = s
	}
}
