package rdma

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

// TestFleetHotPathNoAlloc pins the tentpole claim of the fleet-scale
// refactor: with 10^5 clients each running a closed loop of one-sided
// 4 KB READs, the steady-state data path allocates nothing per operation.
// Nodes and queue pairs live in slab chunks, pipeline stages complete
// through tag dispatch instead of per-op closures, and every queue
// involved compacts in place — so after warm-up, Mallocs stays flat while
// hundreds of thousands of READs execute.
func TestFleetHotPathNoAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet no-alloc run is not -short")
	}
	const clients = 100_000
	k := sim.New(1)
	f, err := NewFabric(k, NewDefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	server, err := f.AddServer("datanode")
	if err != nil {
		t.Fatal(err)
	}
	const regionSize = 1 << 20
	region, err := server.RegisterRegion("records", regionSize)
	if err != nil {
		t.Fatal(err)
	}

	var reads uint64
	for i := 0; i < clients; i++ {
		node, err := f.AddClient(fmt.Sprintf("client-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		qp, err := f.Connect(node, server)
		if err != nil {
			t.Fatal(err)
		}
		off := (i * DataIOSize) % regionSize
		// One bound completion per client, created at setup and reused by
		// every iteration of its closed loop.
		var loop func([]byte)
		loop = func([]byte) {
			reads++
			if err := qp.Read(region, off, DataIOSize, loop); err != nil {
				t.Error(err)
			}
		}
		if err := qp.Read(region, off, DataIOSize, loop); err != nil {
			t.Fatal(err)
		}
	}

	// Warm-up: let every FIFO reach its high-water mark and the server
	// scheduler visit every queue at least once (10^5 4 KB READs at the
	// server's ~1.57M ops/sec take ~64 virtual ms per full round).
	k.RunUntil(200 * sim.Millisecond)
	warmReads := reads
	if warmReads == 0 {
		t.Fatal("no reads completed during warm-up")
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	k.RunUntil(300 * sim.Millisecond)
	runtime.ReadMemStats(&after)

	window := reads - warmReads
	if window < 50_000 {
		t.Fatalf("measure window completed only %d reads", window)
	}
	perOp := float64(after.Mallocs-before.Mallocs) / float64(window)
	if perOp > 0.01 {
		t.Errorf("steady state allocates %.4f objects/op over %d reads (want 0)", perOp, window)
	}
}
