package rdma

import "fmt"

// BackgroundJob injects closed-loop one-sided 4 KB I/O load at a server
// outside of any QoS control, reproducing the paper's Set-4 methodology:
// "each client node starts a background communication job [that] generates
// burst I/Os to the data node", silently consuming capacity that Haechi's
// adaptive capacity estimator must detect.
//
// Each job owns a private initiator node with per-client characteristics
// (a separate process with its own QP context), so starting and stopping a
// job changes only the load on the target server.
type BackgroundJob struct {
	fabric      *Fabric
	target      *Node
	initiator   *Node
	queue       *dataQueue
	window      int
	running     bool
	outstanding int
	completed   uint64
}

// NewBackgroundJob creates a stopped job that keeps window one-sided reads
// outstanding against target while running.
func NewBackgroundJob(f *Fabric, name string, target *Node, window int) (*BackgroundJob, error) {
	if target == nil || target.kind != ServerNode {
		return nil, fmt.Errorf("rdma: background job %q: target must be a server node", name)
	}
	if window <= 0 {
		return nil, fmt.Errorf("rdma: background job %q: window must be positive, got %d", name, window)
	}
	initiator, err := f.addNode("bg/"+name, ClientNode)
	if err != nil {
		return nil, err
	}
	// Background initiators are an injection mechanism, not topology:
	// remove them from the public node list so experiments iterate only
	// real cluster nodes.
	f.nodes = f.nodes[:len(f.nodes)-1]
	return &BackgroundJob{
		fabric:    f,
		target:    target,
		initiator: initiator,
		queue:     newDataQueue(nil),
		window:    window,
	}, nil
}

// Start begins (or resumes) injecting load.
func (b *BackgroundJob) Start() {
	if b.running {
		return
	}
	b.running = true
	for b.outstanding < b.window {
		b.issue()
	}
}

// Stop ceases issuing new I/Os; in-flight ones drain naturally.
func (b *BackgroundJob) Stop() { b.running = false }

// Running reports whether the job is injecting load.
func (b *BackgroundJob) Running() bool { return b.running }

// Completed returns the number of background I/Os finished so far.
func (b *BackgroundJob) Completed() uint64 { return b.completed }

func (b *BackgroundJob) issue() {
	b.outstanding++
	k := b.fabric.k
	prop := b.fabric.cfg.PropagationDelay
	b.initiator.nic.SubmitWeighted(1, func() {
		k.Schedule(prop, func() {
			b.target.sched.enqueue(b.queue, flowOp{weight: 1, complete: func() {
				b.outstanding--
				b.completed++
				if b.running {
					b.issue()
				}
			}})
		})
	})
}
