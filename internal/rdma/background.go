package rdma

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/sanitize"
)

// BackgroundJob injects closed-loop one-sided 4 KB I/O load at a server
// outside of any QoS control, reproducing the paper's Set-4 methodology:
// "each client node starts a background communication job [that] generates
// burst I/Os to the data node", silently consuming capacity that Haechi's
// adaptive capacity estimator must detect.
//
// Each job owns a private initiator node with per-client characteristics
// (a separate process with its own QP context), so starting and stopping a
// job changes only the load on the target server.
type BackgroundJob struct {
	fabric      *Fabric
	target      *Node
	initiator   *Node
	queue       *dataQueue
	window      int
	running     bool
	outstanding int
	completed   uint64

	// Pipeline-stage callbacks, bound once at construction. Background
	// I/Os all take the same three-stage path (initiator NIC, wire,
	// target scheduler) and each stage is FIFO, so the job needs no
	// per-operation state and issuing an I/O allocates nothing.
	onInitFn   func()
	onArriveFn func()
	onDoneFn   func()

	// san, when non-nil, checks the closed-loop window bound
	// 0 <= outstanding <= window (internal/sanitize).
	san *sanitize.Checker
}

// SetSanitizer installs the invariant checker consulted after every
// issue and completion. Nil (the default) disables the checks.
func (b *BackgroundJob) SetSanitizer(c *sanitize.Checker) { b.san = c }

// checkWindow asserts the closed-loop invariant. Callers nil-check san
// first so the sanitize-off path costs one pointer comparison.
func (b *BackgroundJob) checkWindow() {
	if b.outstanding < 0 || b.outstanding > b.window {
		b.san.Reportf("bg-window", int64(b.initiator.k.Now()),
			"background job %s: outstanding %d outside [0, %d]",
			b.initiator.name, b.outstanding, b.window)
	}
}

// NewBackgroundJob creates a stopped job that keeps window one-sided reads
// outstanding against target while running.
func NewBackgroundJob(f *Fabric, name string, target *Node, window int) (*BackgroundJob, error) {
	if target == nil || target.kind != ServerNode {
		return nil, fmt.Errorf("rdma: background job %q: target must be a server node", name)
	}
	if window <= 0 {
		return nil, fmt.Errorf("rdma: background job %q: window must be positive, got %d", name, window)
	}
	initiator, err := f.addNode("bg/"+name, ClientNode)
	if err != nil {
		return nil, err
	}
	// Background initiators are an injection mechanism, not topology:
	// remove them from the public node list so experiments iterate only
	// real cluster nodes.
	f.nodes = f.nodes[:len(f.nodes)-1]
	b := &BackgroundJob{
		fabric:    f,
		target:    target,
		initiator: initiator,
		queue:     newDataQueue(nil),
		window:    window,
	}
	b.onInitFn = b.onInit
	b.onArriveFn = b.onArrive
	b.onDoneFn = b.onDone
	return b, nil
}

// Start begins (or resumes) injecting load.
func (b *BackgroundJob) Start() {
	if b.running {
		return
	}
	b.running = true
	for b.outstanding < b.window {
		b.issue()
	}
}

// Stop ceases issuing new I/Os; in-flight ones drain naturally.
func (b *BackgroundJob) Stop() { b.running = false }

// Running reports whether the job is injecting load.
func (b *BackgroundJob) Running() bool { return b.running }

// Completed returns the number of background I/Os finished so far.
func (b *BackgroundJob) Completed() uint64 { return b.completed }

func (b *BackgroundJob) issue() {
	b.outstanding++
	if b.san != nil {
		b.checkWindow()
	}
	b.initiator.nic.SubmitWeighted(1, b.onInitFn)
}

// onInit: the initiator NIC transmitted one background I/O; cross the
// wire. Background initiators share the target's shard (the cluster's
// assignment pins "bg/"-prefixed nodes there), so the hop is a plain
// same-kernel schedule even in a sharded run.
func (b *BackgroundJob) onInit() {
	// onArrive enqueues a fresh flowOp rather than popping a FIFO, so a
	// storm-jittered arrival needs no ordering horizon here.
	b.initiator.k.Schedule(b.fabric.cfg.PropagationDelay+b.fabric.wireExtra(b.initiator.k), b.onArriveFn)
}

// onArrive: the I/O reached the target; queue it at the round-robin
// scheduler as a raw unit-weight operation.
func (b *BackgroundJob) onArrive() {
	b.target.sched.enqueue(b.queue, flowOp{kind: opFunc, weight: 1, completeFn: b.onDoneFn})
}

// onDone: the target serviced the I/O and the completion propagated back.
func (b *BackgroundJob) onDone() {
	b.outstanding--
	b.completed++
	if b.san != nil {
		b.checkWindow()
	}
	if b.running {
		b.issue()
	}
}
