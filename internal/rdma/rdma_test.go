package rdma

import (
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

// testFabric returns a fabric with no jitter and the paper-calibrated
// rates, plus a connected client and server.
func testFabric(t *testing.T) (*sim.Kernel, *Fabric, *Node, *Node) {
	t.Helper()
	k := sim.New(1)
	cfg := NewDefaultConfig()
	cfg.Jitter = 0
	f, err := NewFabric(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	server, err := f.AddServer("dn")
	if err != nil {
		t.Fatal(err)
	}
	client, err := f.AddClient("c1")
	if err != nil {
		t.Fatal(err)
	}
	return k, f, client, server
}

func TestConfigValidate(t *testing.T) {
	base := NewDefaultConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero client 1-sided", func(c *Config) { c.ClientOneSidedRate = 0 }},
		{"zero client 2-sided", func(c *Config) { c.ClientTwoSidedRate = 0 }},
		{"zero server 1-sided", func(c *Config) { c.ServerOneSidedRate = 0 }},
		{"zero server 2-sided", func(c *Config) { c.ServerTwoSidedRate = 0 }},
		{"negative prop", func(c *Config) { c.PropagationDelay = -1 }},
		{"jitter 1", func(c *Config) { c.Jitter = 1 }},
		{"negative jitter", func(c *Config) { c.Jitter = -0.1 }},
		{"zero atomic weight", func(c *Config) { c.AtomicWeight = 0 }},
		{"zero min verb weight", func(c *Config) { c.MinVerbWeight = 0 }},
		{"zero send req weight", func(c *Config) { c.SendRequestWeight = 0 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := base
			m.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestConfigScaled(t *testing.T) {
	c := NewDefaultConfig().Scaled(10)
	if c.ClientOneSidedRate != 40e3 || c.ServerOneSidedRate != 157e3 {
		t.Errorf("Scaled(10) rates wrong: %+v", c)
	}
	// Ratios preserved.
	d := NewDefaultConfig()
	if c.ServerOneSidedRate/c.ClientOneSidedRate != d.ServerOneSidedRate/d.ClientOneSidedRate {
		t.Error("Scaled changed rate ratio")
	}
	// Non-positive factor is identity.
	e := NewDefaultConfig().Scaled(0)
	if e.ClientOneSidedRate != d.ClientOneSidedRate {
		t.Error("Scaled(0) modified rates")
	}
}

func TestConfigSizeWeight(t *testing.T) {
	c := NewDefaultConfig()
	if w := c.sizeWeight(4096); w != 1.0 {
		t.Errorf("sizeWeight(4096) = %v, want 1", w)
	}
	if w := c.sizeWeight(8); w != c.MinVerbWeight {
		t.Errorf("sizeWeight(8) = %v, want floor %v", w, c.MinVerbWeight)
	}
	if w := c.sizeWeight(8192); w != 2.0 {
		t.Errorf("sizeWeight(8192) = %v, want 2", w)
	}
}

func TestDuplicateNodeAndRegion(t *testing.T) {
	_, f, _, server := testFabric(t)
	if _, err := f.AddClient("c1"); err == nil {
		t.Error("duplicate node name accepted")
	}
	if _, err := server.RegisterRegion("r", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := server.RegisterRegion("r", 64); err == nil {
		t.Error("duplicate region name accepted")
	}
	if _, err := server.RegisterRegion("bad", 0); err == nil {
		t.Error("zero-size region accepted")
	}
	if r, ok := server.Region("r"); !ok || r.Name() != "r" {
		t.Error("Region lookup failed")
	}
	if _, ok := server.Region("missing"); ok {
		t.Error("missing region lookup succeeded")
	}
}

func TestNodeKindString(t *testing.T) {
	if ClientNode.String() != "client" || ServerNode.String() != "server" {
		t.Error("NodeKind.String wrong")
	}
	if NodeKind(99).String() != "NodeKind(99)" {
		t.Error("unknown NodeKind.String wrong")
	}
}

func TestReadRoundTrip(t *testing.T) {
	k, f, client, server := testFabric(t)
	r, err := server.RegisterRegion("data", 8192)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("haechi-token-qos")
	if err := r.CopyIn(100, want); err != nil {
		t.Fatal(err)
	}
	qp, err := f.Connect(client, server)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var doneAt sim.Time
	err = qp.Read(r, 100, len(want), func(data []byte) {
		got = append([]byte(nil), data...)
		doneAt = k.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if string(got) != string(want) {
		t.Errorf("Read returned %q, want %q", got, want)
	}
	if doneAt <= 0 {
		t.Error("Read completed instantaneously")
	}
}

func TestReadLatencyModel(t *testing.T) {
	k, f, client, server := testFabric(t)
	r, _ := server.RegisterRegion("data", DataIOSize)
	qp, _ := f.Connect(client, server)
	var doneAt sim.Time
	if err := qp.Read(r, 0, DataIOSize, func([]byte) { doneAt = k.Now() }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// Expected: client NIC 1/400K = 2.5µs + prop 1µs + server NIC
	// 1/1570K ≈ 0.637µs + prop 1µs ≈ 5.14µs.
	want := sim.Time(2500 + 1000 + 637 + 1000)
	tol := sim.Time(10)
	if doneAt < want-tol || doneAt > want+tol {
		t.Errorf("unloaded Read latency = %v, want ≈%v", doneAt, want)
	}
}

func TestWriteAppliesAtServer(t *testing.T) {
	k, f, client, server := testFabric(t)
	r, _ := server.RegisterRegion("data", 64)
	qp, _ := f.Connect(client, server)
	payload := []byte{1, 2, 3, 4}
	if err := qp.Write(r, 8, payload, nil); err != nil {
		t.Fatal(err)
	}
	payload[0] = 99 // caller reuses its buffer: must not affect the write
	k.Run()
	got, _ := r.CopyOut(8, 4)
	if got[0] != 1 || got[3] != 4 {
		t.Errorf("Write result %v, want [1 2 3 4]", got)
	}
}

func TestWriteUint64(t *testing.T) {
	k, f, client, server := testFabric(t)
	r, _ := server.RegisterRegion("data", 64)
	qp, _ := f.Connect(client, server)
	done := false
	if err := qp.WriteUint64(r, 16, 0xDEADBEEF12345678, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !done {
		t.Error("completion callback not invoked")
	}
	v, err := r.Uint64(16)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF12345678 {
		t.Errorf("Uint64 = %x", v)
	}
}

func TestFetchAddSemantics(t *testing.T) {
	k, f, client, server := testFabric(t)
	r, _ := server.RegisterRegion("tokens", 8)
	if err := r.PutInt64(0, 500); err != nil {
		t.Fatal(err)
	}
	qp, _ := f.Connect(client, server)
	var olds []int64
	for i := 0; i < 3; i++ {
		if err := qp.FetchAdd(r, 0, -200, func(old int64) { olds = append(olds, old) }); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	// FAA returns the pre-add value and may drive the cell negative,
	// exactly the semantics Haechi's batched token claim relies on.
	want := []int64{500, 300, 100}
	for i := range want {
		if olds[i] != want[i] {
			t.Errorf("FAA %d returned %d, want %d", i, olds[i], want[i])
		}
	}
	v, _ := r.Int64(0)
	if v != -100 {
		t.Errorf("cell after 3 FAA(-200) = %d, want -100", v)
	}
}

func TestCompareSwap(t *testing.T) {
	k, f, client, server := testFabric(t)
	r, _ := server.RegisterRegion("cell", 8)
	_ = r.PutInt64(0, 42)
	qp, _ := f.Connect(client, server)

	var old1, old2 int64
	_ = qp.CompareSwap(r, 0, 42, 100, func(old int64) { old1 = old })
	_ = qp.CompareSwap(r, 0, 42, 200, func(old int64) { old2 = old })
	k.Run()
	if old1 != 42 {
		t.Errorf("first CAS old = %d, want 42", old1)
	}
	if old2 != 100 {
		t.Errorf("second CAS old = %d, want 100 (first swap applied)", old2)
	}
	v, _ := r.Int64(0)
	if v != 100 {
		t.Errorf("cell = %d, want 100 (second CAS must not swap)", v)
	}
}

func TestLoopbackAtomic(t *testing.T) {
	k, f, _, server := testFabric(t)
	r, _ := server.RegisterRegion("cell", 8)
	_ = r.PutInt64(0, 7)
	qp, err := f.Connect(server, server)
	if err != nil {
		t.Fatal(err)
	}
	var at sim.Time
	var old int64
	_ = qp.FetchAdd(r, 0, 1, func(o int64) { old, at = o, k.Now() })
	k.Run()
	if old != 7 {
		t.Errorf("loopback FAA old = %d, want 7", old)
	}
	// Loopback skips the wire: only one NIC service (0.25 weight).
	if at > 2*sim.Microsecond {
		t.Errorf("loopback atomic took %v, expected sub-2µs", at)
	}
}

func TestVerbValidation(t *testing.T) {
	k, f, client, server := testFabric(t)
	r, _ := server.RegisterRegion("data", 64)
	foreign, _ := client.RegisterRegion("local", 64)
	qp, _ := f.Connect(client, server)

	if err := qp.Read(nil, 0, 8, func([]byte) {}); err == nil {
		t.Error("Read of nil region accepted")
	}
	if err := qp.Read(foreign, 0, 8, func([]byte) {}); err == nil {
		t.Error("Read of region not owned by target accepted")
	}
	if err := qp.Read(r, 60, 8, func([]byte) {}); err == nil {
		t.Error("out-of-range Read accepted")
	}
	if err := qp.Write(r, -1, []byte{1}, nil); err == nil {
		t.Error("negative-offset Write accepted")
	}
	if err := qp.FetchAdd(r, 61, 1, nil); err == nil {
		t.Error("out-of-range FetchAdd accepted")
	}
	if err := qp.CompareSwap(r, 64, 0, 1, nil); err == nil {
		t.Error("out-of-range CompareSwap accepted")
	}
	if err := qp.Send("x", -1, nil); err == nil {
		t.Error("negative-size Send accepted")
	}
	if err := qp.Send("x", 8, nil); err == nil {
		t.Error("Send to node without recv handler accepted")
	}
	k.Run()
}

func TestRegionLocalAccessors(t *testing.T) {
	_, _, _, server := testFabric(t)
	r, _ := server.RegisterRegion("data", 32)
	if err := r.PutInt64(0, -5); err != nil {
		t.Fatal(err)
	}
	v, err := r.Int64(0)
	if err != nil || v != -5 {
		t.Errorf("Int64 = %d, %v", v, err)
	}
	if _, err := r.Int64(25); err == nil {
		t.Error("out-of-range Int64 accepted")
	}
	if err := r.PutUint64(8, 9); err != nil {
		t.Fatal(err)
	}
	u, _ := r.Uint64(8)
	if u != 9 {
		t.Errorf("Uint64 = %d", u)
	}
	if _, err := r.CopyOut(30, 4); err == nil {
		t.Error("out-of-range CopyOut accepted")
	}
	if err := r.CopyIn(30, []byte{1, 2, 3, 4}); err == nil {
		t.Error("out-of-range CopyIn accepted")
	}
	if r.Size() != 32 || r.Owner() != server {
		t.Error("Size/Owner wrong")
	}
}

func TestSendToServerUsesCPU(t *testing.T) {
	k, f, client, server := testFabric(t)
	var gotFrom *Node
	var gotPayload any
	server.SetRecvHandler(func(from *Node, payload any) {
		gotFrom, gotPayload = from, payload
	})
	qp, _ := f.Connect(client, server)
	delivered := false
	if err := qp.Send("hello", 32, func() { delivered = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if gotFrom != client || gotPayload != "hello" {
		t.Errorf("recv got (%v, %v)", gotFrom, gotPayload)
	}
	if !delivered {
		t.Error("Send completion not invoked")
	}
	if server.Stats().SendsReceived != 1 {
		t.Errorf("server SendsReceived = %d", server.Stats().SendsReceived)
	}
	if server.cpu.Served() != 1 {
		t.Errorf("server CPU served %d ops, want 1 (two-sided must hit CPU)", server.cpu.Served())
	}
}

func TestSendToClientSkipsCPU(t *testing.T) {
	k, f, client, server := testFabric(t)
	got := false
	client.SetRecvHandler(func(from *Node, payload any) { got = true })
	qp, _ := f.Connect(server, client)
	if err := qp.Send([]int64{100}, 8, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !got {
		t.Error("client did not receive token push")
	}
}

func TestOneSidedSkipsServerCPU(t *testing.T) {
	k, f, client, server := testFabric(t)
	r, _ := server.RegisterRegion("data", DataIOSize)
	qp, _ := f.Connect(client, server)
	for i := 0; i < 10; i++ {
		if err := qp.Read(r, 0, DataIOSize, func([]byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if served := server.cpu.Served(); served != 0 {
		t.Errorf("one-sided reads consumed %d CPU services; silence violated", served)
	}
	if server.Stats().OneSidedTargeted != 10 {
		t.Errorf("OneSidedTargeted = %d, want 10", server.Stats().OneSidedTargeted)
	}
}

func TestConnectValidation(t *testing.T) {
	k1 := sim.New(1)
	cfg := NewDefaultConfig()
	f1, _ := NewFabric(k1, cfg)
	f2, _ := NewFabric(sim.New(2), cfg)
	a, _ := f1.AddClient("a")
	b, _ := f2.AddServer("b")
	if _, err := f1.Connect(a, b); err == nil {
		t.Error("cross-fabric Connect accepted")
	}
	if _, err := f1.Connect(nil, a); err == nil {
		t.Error("nil Connect accepted")
	}
}

func TestFabricInvalidConfig(t *testing.T) {
	cfg := NewDefaultConfig()
	cfg.Jitter = 2
	if _, err := NewFabric(sim.New(1), cfg); err == nil {
		t.Error("NewFabric accepted invalid config")
	}
}

// closedLoopThroughput drives n clients, each keeping window one-sided 4 KB
// reads outstanding for dur, and returns total and per-client completions.
func closedLoopThroughput(t *testing.T, n, window int, dur sim.Time, twoSided bool) (total uint64, per []uint64) {
	t.Helper()
	k := sim.New(7)
	cfg := NewDefaultConfig()
	cfg.Jitter = 0
	f, err := NewFabric(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	server, _ := f.AddServer("dn")
	r, _ := server.RegisterRegion("data", DataIOSize)
	server.SetRecvHandler(func(from *Node, payload any) {
		// Two-sided GET: reply with the 4 KB record; the client's
		// continuation rides in the payload.
		qp, _ := f.Connect(server, from)
		_ = qp.Send(payload, DataIOSize, nil)
	})

	per = make([]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		c, _ := f.AddClient(nodeName(i))
		c.SetRecvHandler(func(from *Node, payload any) {
			payload.(func())()
		})
		qp, _ := f.Connect(c, server)
		var issue func()
		issue = func() {
			if twoSided {
				var onReply func()
				onReply = func() {
					per[i]++
					issue()
				}
				_ = qp.Send(onReply, 32, nil)
			} else {
				_ = qp.Read(r, 0, DataIOSize, func([]byte) {
					per[i]++
					issue()
				})
			}
		}
		for w := 0; w < window; w++ {
			issue()
		}
	}
	k.RunUntil(dur)
	for _, p := range per {
		total += p
	}
	return total, per
}

func nodeName(i int) string { return string(rune('a'+i%26)) + "-client" }

// TestSingleClientSaturation reproduces the Fig. 6 calibration point: one
// client with 64 outstanding one-sided reads reaches ~400 KIOPS.
func TestSingleClientSaturation(t *testing.T) {
	total, _ := closedLoopThroughput(t, 1, 64, sim.Second, false)
	if total < 390_000 || total > 410_000 {
		t.Errorf("single-client one-sided throughput = %d, want ≈400K", total)
	}
}

// TestServerSaturation reproduces the Fig. 7 calibration point: ten burst
// clients saturate the server at ~1570 KIOPS, shared ~equally.
func TestServerSaturation(t *testing.T) {
	total, per := closedLoopThroughput(t, 10, 64, sim.Second, false)
	if total < 1_500_000 || total > 1_600_000 {
		t.Errorf("10-client one-sided throughput = %d, want ≈1570K", total)
	}
	for i, p := range per {
		if p < 140_000 || p > 175_000 {
			t.Errorf("client %d got %d I/Os, want ≈157K (fair FIFO share)", i, p)
		}
	}
}

// TestScalingKnee: throughput grows ~linearly to 4 clients, then saturates.
func TestScalingKnee(t *testing.T) {
	t2, _ := closedLoopThroughput(t, 2, 64, sim.Second/2, false)
	t4, _ := closedLoopThroughput(t, 4, 64, sim.Second/2, false)
	t8, _ := closedLoopThroughput(t, 8, 64, sim.Second/2, false)
	if float64(t2)*2 < 1.45e6/2*0.9 {
		// 2 clients * 400K = 800K < C_G: linear region.
		if t2 < uint64(0.95*800_000/2) {
			t.Errorf("2-client throughput %d below linear expectation", t2)
		}
	}
	if float64(t8) > float64(t4)*1.1 {
		t.Errorf("throughput still rising past the knee: 4->%d, 8->%d", t4, t8)
	}
}

// TestTwoSidedSaturation reproduces the two-sided curve of Fig. 7: a
// single client reaches ~320 KIOPS and the server CPU caps the aggregate
// at ~430 KIOPS regardless of client count.
func TestTwoSidedSaturation(t *testing.T) {
	t1, _ := closedLoopThroughput(t, 1, 64, sim.Second/2, true)
	t4, _ := closedLoopThroughput(t, 4, 64, sim.Second/2, true)
	one := float64(t1) * 2
	four := float64(t4) * 2
	if one < 290_000 || one > 345_000 {
		t.Errorf("single-client two-sided throughput = %.0f, want ≈320K", one)
	}
	if four < 400_000 || four > 450_000 {
		t.Errorf("4-client two-sided throughput = %.0f, want ≈430K", four)
	}
}

func TestBackgroundJob(t *testing.T) {
	k := sim.New(3)
	cfg := NewDefaultConfig()
	cfg.Jitter = 0
	f, _ := NewFabric(k, cfg)
	server, _ := f.AddServer("dn")
	if _, err := NewBackgroundJob(f, "j", nil, 64); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := NewBackgroundJob(f, "j", server, 0); err == nil {
		t.Error("zero window accepted")
	}
	job, err := NewBackgroundJob(f, "j1", server, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Nodes()) != 1 {
		t.Errorf("background initiator leaked into node list: %d nodes", len(f.Nodes()))
	}
	job.Start()
	job.Start() // idempotent
	if !job.Running() {
		t.Error("job not running after Start")
	}
	k.RunUntil(sim.Second / 2)
	done := job.Completed()
	if done < 190_000 || done > 210_000 {
		t.Errorf("background job completed %d in 0.5s, want ≈200K (client-NIC capped)", done)
	}
	job.Stop()
	k.RunUntil(sim.Second)
	after := job.Completed()
	if after-done > 64 {
		t.Errorf("job completed %d I/Os after Stop, want <= window", after-done)
	}
}

func TestStatsSubAndString(t *testing.T) {
	a := Stats{Reads: 10, Writes: 5, FetchAdds: 3, SendsSent: 2, BytesRead: 100}
	b := Stats{Reads: 4, Writes: 1, FetchAdds: 1, SendsSent: 1, BytesRead: 40}
	d := a.Sub(b)
	if d.Reads != 6 || d.Writes != 4 || d.FetchAdds != 2 || d.SendsSent != 1 || d.BytesRead != 60 {
		t.Errorf("Sub = %+v", d)
	}
	if a.Initiated() != 20 {
		t.Errorf("Initiated = %d, want 20", a.Initiated())
	}
	if s := a.String(); s == "" {
		t.Error("empty String()")
	}
}
