package rdma

import (
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
)

// TestFlightSpansThroughPipeline drives one bulk Read and one atomic
// through a real fabric and checks every stage timestamp lands in
// pipeline order: posted → credit → initiator NIC → wire → target queue
// → target service → completion.
func TestFlightSpansThroughPipeline(t *testing.T) {
	k, f, client, server := testFabric(t)
	fr, err := trace.NewFlightRecorder(16)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFlightRecorder(fr)
	if f.FlightRecorder() != fr {
		t.Fatal("FlightRecorder accessor disagrees")
	}
	r, err := server.RegisterRegion("data", DataIOSize)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := f.Connect(client, server)
	if err != nil {
		t.Fatal(err)
	}
	if qp.ID() <= 0 {
		t.Errorf("QP id = %d, want positive", qp.ID())
	}
	var readDone, atomicDone bool
	if err := qp.Read(r, 0, DataIOSize, func([]byte) { readDone = true }); err != nil {
		t.Fatal(err)
	}
	if err := qp.FetchAdd(r, 0, 1, func(int64) { atomicDone = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !readDone || !atomicDone {
		t.Fatalf("completions: read=%v atomic=%v", readDone, atomicDone)
	}
	if fr.Started() != 2 || fr.Finished() != 2 {
		t.Fatalf("started/finished = %d/%d, want 2/2", fr.Started(), fr.Finished())
	}

	var data, ctrl *trace.Span
	for _, sp := range fr.Spans() {
		sp := sp
		if sp.Control {
			ctrl = &sp
		} else {
			data = &sp
		}
	}
	if data == nil || ctrl == nil {
		t.Fatal("missing data or control span")
	}
	if data.Op != trace.OpRead || ctrl.Op != trace.OpFetchAdd {
		t.Errorf("ops = %v/%v, want read/fetch-add", data.Op, ctrl.Op)
	}
	if data.Initiator != "c1" || data.Target != "dn" || data.QP != qp.ID() {
		t.Errorf("data span endpoints = %s→%s qp=%d", data.Initiator, data.Target, data.QP)
	}

	// Data path visits every stage, in order, with real time spent on the
	// NIC and the wire.
	stamps := []struct {
		name string
		at   sim.Time
	}{
		{"posted", data.Posted}, {"credit", data.Credit},
		{"init-done", data.InitDone}, {"arrived", data.Arrived},
		{"service", data.Service}, {"served", data.Served}, {"done", data.Done},
	}
	for i, s := range stamps {
		if s.at == trace.Unset {
			t.Fatalf("data span stage %s never stamped", s.name)
		}
		if i > 0 && s.at < stamps[i-1].at {
			t.Errorf("stage %s (%d) precedes %s (%d)", s.name, s.at, stamps[i-1].name, stamps[i-1].at)
		}
	}
	if data.InitDone <= data.Posted {
		t.Error("initiator NIC took no virtual time")
	}
	if data.Arrived <= data.InitDone {
		t.Error("propagation took no virtual time")
	}
	if data.End() != data.Done {
		t.Errorf("End() = %d, want Done %d", data.End(), data.Done)
	}

	// The atomic rides the priority path: no credit wait, no weighted
	// target-service stage, but the remaining stamps are still ordered.
	if ctrl.Credit != trace.Unset || ctrl.Service != trace.Unset {
		t.Error("control span stamped data-only stages")
	}
	for _, s := range []sim.Time{ctrl.Posted, ctrl.InitDone, ctrl.Arrived, ctrl.Served, ctrl.Done} {
		if s == trace.Unset {
			t.Fatal("control span missing a stamp")
		}
	}
	if !(ctrl.Posted <= ctrl.InitDone && ctrl.InitDone < ctrl.Arrived &&
		ctrl.Arrived <= ctrl.Served && ctrl.Served <= ctrl.Done) {
		t.Errorf("control stamps out of order: %+v", ctrl)
	}

	// Only the data span feeds the stage histograms.
	st := fr.Stages()
	if len(st) != 1 || st[0].Actor != "c1" || st[0].Total.Count() != 1 {
		t.Errorf("stages = %+v, want one c1 entry with one data span", st)
	}
}

// TestFlightSendSpan covers the two-sided path, including a nil
// completion callback (span must finish at delivery).
func TestFlightSendSpan(t *testing.T) {
	k, f, client, server := testFabric(t)
	fr, err := trace.NewFlightRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFlightRecorder(fr)
	var got int
	server.SetRecvHandler(func(from *Node, payload any) { got++ })
	qp, err := f.Connect(client, server)
	if err != nil {
		t.Fatal(err)
	}
	if err := qp.Send("hello", DataIOSize, nil); err != nil {
		t.Fatal(err)
	}
	var cbRan bool
	if err := qp.Send("again", 64, func() { cbRan = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got != 2 || !cbRan {
		t.Fatalf("received %d sends, cb=%v", got, cbRan)
	}
	if fr.Finished() != 2 {
		t.Fatalf("finished %d spans, want 2", fr.Finished())
	}
	for _, sp := range fr.Spans() {
		if sp.Op != trace.OpSend {
			t.Errorf("op = %v, want send", sp.Op)
		}
		if sp.End() == trace.Unset || sp.End() < sp.Posted {
			t.Errorf("send span never finished cleanly: %+v", sp)
		}
	}
}
