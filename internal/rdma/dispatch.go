package rdma

import "fmt"

// Message is the envelope for two-sided SENDs when several protocols share
// one node (e.g. the KV store RPC handler and the Haechi QoS monitor both
// live on the data node).
type Message struct {
	Kind string
	Body any
}

// Dispatcher routes incoming Messages to per-kind handlers, optionally
// scoped by sender (a multi-server client runs one QoS engine per data
// node on the same client node; each engine handles only its own
// monitor's messages). Bind it to a node once; register handlers before
// or after binding.
type Dispatcher struct {
	node     *Node
	handlers map[string]func(from *Node, body any)
	scoped   map[string]map[*Node]func(from *Node, body any)
}

// NewDispatcher creates a dispatcher bound to n.
func NewDispatcher(n *Node) *Dispatcher {
	d := &Dispatcher{
		node:     n,
		handlers: make(map[string]func(from *Node, body any)),
		scoped:   make(map[string]map[*Node]func(from *Node, body any)),
	}
	n.SetRecvHandler(d.dispatch)
	return d
}

// Handle registers a handler for messages of the given kind from any
// sender. Registering a duplicate kind is an error.
func (d *Dispatcher) Handle(kind string, h func(from *Node, body any)) error {
	if _, ok := d.handlers[kind]; ok {
		return fmt.Errorf("rdma: node %s: handler for %q already registered", d.node.name, kind)
	}
	d.handlers[kind] = h
	return nil
}

// HandleFrom registers a handler for messages of the given kind sent by
// the specific node. Sender-scoped handlers take precedence over Handle's
// catch-all for the same kind.
func (d *Dispatcher) HandleFrom(kind string, from *Node, h func(from *Node, body any)) error {
	if from == nil {
		return fmt.Errorf("rdma: node %s: HandleFrom requires a sender", d.node.name)
	}
	byFrom, ok := d.scoped[kind]
	if !ok {
		byFrom = make(map[*Node]func(from *Node, body any))
		d.scoped[kind] = byFrom
	}
	if _, dup := byFrom[from]; dup {
		return fmt.Errorf("rdma: node %s: handler for %q from %s already registered", d.node.name, kind, from.name)
	}
	byFrom[from] = h
	return nil
}

// Unhandle removes the catch-all handler for kind. It reports whether a
// handler was registered. Sender-scoped handlers are unaffected.
func (d *Dispatcher) Unhandle(kind string) bool {
	if _, ok := d.handlers[kind]; !ok {
		return false
	}
	delete(d.handlers, kind)
	return true
}

// UnhandleFrom removes the sender-scoped handler for kind from the given
// node (e.g. a multi-server client tearing down one per-server QoS
// engine). It reports whether a handler was registered.
func (d *Dispatcher) UnhandleFrom(kind string, from *Node) bool {
	byFrom, ok := d.scoped[kind]
	if !ok {
		return false
	}
	if _, ok := byFrom[from]; !ok {
		return false
	}
	delete(byFrom, from)
	if len(byFrom) == 0 {
		delete(d.scoped, kind)
	}
	return true
}

func (d *Dispatcher) dispatch(from *Node, payload any) {
	msg, ok := payload.(Message)
	if !ok {
		// Unrouted payloads are dropped; a real RNIC would complete the
		// recv with an unknown-format buffer the application ignores.
		return
	}
	if byFrom, ok := d.scoped[msg.Kind]; ok {
		if h, ok := byFrom[from]; ok {
			h(from, msg.Body)
			return
		}
	}
	if h, ok := d.handlers[msg.Kind]; ok {
		h(from, msg.Body)
	}
}
