package rdma

import (
	"encoding/binary"
	"fmt"
)

// Region is a registered memory region on a node, addressable by remote
// one-sided verbs. In a real system the owner would exchange an rkey with
// its peers; in the simulation the *Region value itself is the capability.
//
// All multi-byte cells use little-endian layout, matching x86 hosts.
type Region struct {
	name  string
	owner *Node
	buf   []byte
}

// Name returns the region's diagnostic name.
func (r *Region) Name() string { return r.name }

// Size returns the region length in bytes.
func (r *Region) Size() int { return len(r.buf) }

// Owner returns the node the region is registered on.
func (r *Region) Owner() *Node { return r.owner }

// checkRange validates an access window.
func (r *Region) checkRange(off, size int) error {
	if off < 0 || size < 0 || off+size > len(r.buf) {
		return fmt.Errorf("rdma: region %q: access [%d,%d) outside [0,%d)",
			r.name, off, off+size, len(r.buf))
	}
	return nil
}

// bytes returns a view of the region. Callers must not retain the view
// across simulation events if the region may be concurrently written.
func (r *Region) bytes(off, size int) []byte { return r.buf[off : off+size] }

// Int64 reads the 8-byte little-endian cell at off. It is a local
// (owner-side CPU) access with no simulated cost; remote access must go
// through a QP verb.
func (r *Region) Int64(off int) (int64, error) {
	if err := r.checkRange(off, 8); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(r.buf[off:])), nil
}

// PutInt64 writes the 8-byte little-endian cell at off locally.
func (r *Region) PutInt64(off int, v int64) error {
	if err := r.checkRange(off, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(r.buf[off:], uint64(v))
	return nil
}

// Uint64 reads the 8-byte cell at off as unsigned.
func (r *Region) Uint64(off int) (uint64, error) {
	if err := r.checkRange(off, 8); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(r.buf[off:]), nil
}

// PutUint64 writes the 8-byte cell at off as unsigned.
func (r *Region) PutUint64(off int, v uint64) error {
	if err := r.checkRange(off, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(r.buf[off:], v)
	return nil
}

// CopyIn copies data into the region at off locally (owner-side).
func (r *Region) CopyIn(off int, data []byte) error {
	if err := r.checkRange(off, len(data)); err != nil {
		return err
	}
	copy(r.buf[off:], data)
	return nil
}

// CopyOut copies size bytes from the region at off into a fresh slice.
func (r *Region) CopyOut(off, size int) ([]byte, error) {
	if err := r.checkRange(off, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, r.buf[off:])
	return out, nil
}
