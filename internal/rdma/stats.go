package rdma

import "fmt"

// Stats counts the verbs a node initiated or was targeted by. Haechi's
// "negligible token-management overhead" claim is quantified from these
// counters: the atomics, control writes, and sends attributable to QoS
// versus the data-path reads.
type Stats struct {
	// Initiator-side counters.
	Reads        uint64
	Writes       uint64
	FetchAdds    uint64
	CompareSwaps uint64
	SendsSent    uint64
	BytesRead    uint64
	BytesWritten uint64

	// Target-side counters.
	OneSidedTargeted uint64
	SendsReceived    uint64
}

// Initiated returns the total number of verbs this node initiated.
func (s Stats) Initiated() uint64 {
	return s.Reads + s.Writes + s.FetchAdds + s.CompareSwaps + s.SendsSent
}

// Sub returns the counter-wise difference s - other; use it to measure a
// window between two snapshots.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Reads:            s.Reads - other.Reads,
		Writes:           s.Writes - other.Writes,
		FetchAdds:        s.FetchAdds - other.FetchAdds,
		CompareSwaps:     s.CompareSwaps - other.CompareSwaps,
		SendsSent:        s.SendsSent - other.SendsSent,
		BytesRead:        s.BytesRead - other.BytesRead,
		BytesWritten:     s.BytesWritten - other.BytesWritten,
		OneSidedTargeted: s.OneSidedTargeted - other.OneSidedTargeted,
		SendsReceived:    s.SendsReceived - other.SendsReceived,
	}
}

// String summarizes the counters.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d faa=%d cas=%d sends=%d recv=%d targeted=%d",
		s.Reads, s.Writes, s.FetchAdds, s.CompareSwaps, s.SendsSent, s.SendsReceived, s.OneSidedTargeted)
}
