package rdma

import (
	"math/rand"
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

// TestRoundRobinFairness: initiators with always-full pipelines share the
// target equally regardless of how unequal their posted backlogs are.
func TestRoundRobinFairness(t *testing.T) {
	k := sim.New(2)
	cfg := NewDefaultConfig()
	cfg.Jitter = 0
	f, _ := NewFabric(k, cfg)
	server, _ := f.AddServer("dn")
	r, _ := server.RegisterRegion("data", DataIOSize)

	counts := make([]uint64, 4)
	for i := 0; i < 4; i++ {
		i := i
		c, _ := f.AddClient(nodeName(i))
		qp, _ := f.Connect(c, server)
		// Client i posts i+1 times more work per completion, but keeps a
		// closed loop so its pipeline is always busy.
		var issue func()
		issue = func() {
			_ = qp.Read(r, 0, DataIOSize, func([]byte) {
				counts[i]++
				issue()
			})
		}
		for w := 0; w < 16*(i+1); w++ {
			issue()
		}
	}
	k.RunUntil(sim.Second / 2)
	for i := 1; i < 4; i++ {
		ratio := float64(counts[i]) / float64(counts[0])
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("client %d got %.2fx of client 0's service (%v); RR should equalize", i, ratio, counts)
		}
	}
}

// TestFlowControlBoundsServerQueue: the per-QP credit window caps how much
// of one initiator's work can sit past its NIC at once, so the server-side
// backlog stays shallow even when the initiator posts a deep burst.
func TestFlowControlBoundsServerQueue(t *testing.T) {
	k := sim.New(3)
	cfg := NewDefaultConfig()
	cfg.Jitter = 0
	cfg.FlowControlWindow = 8
	f, _ := NewFabric(k, cfg)
	server, _ := f.AddServer("dn")
	r, _ := server.RegisterRegion("data", DataIOSize)
	c, _ := f.AddClient("c")
	qp, _ := f.Connect(c, server)

	for i := 0; i < 1000; i++ {
		if err := qp.Read(r, 0, DataIOSize, func([]byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	// Step through the simulation and watch the QP's in-flight counter.
	for k.Step() {
		if qp.inFlight > 8 {
			t.Fatalf("inFlight = %d exceeds window 8 at %v", qp.inFlight, k.Now())
		}
	}
	if qp.inFlight != 0 {
		t.Errorf("inFlight = %d after drain", qp.inFlight)
	}
	if qp.waiting.size() != 0 {
		t.Errorf("waiting = %d after drain", qp.waiting.size())
	}
}

// TestFlowControlDisabled: window 0 admits everything immediately.
func TestFlowControlDisabled(t *testing.T) {
	k := sim.New(3)
	cfg := NewDefaultConfig()
	cfg.Jitter = 0
	cfg.FlowControlWindow = 0
	f, _ := NewFabric(k, cfg)
	server, _ := f.AddServer("dn")
	r, _ := server.RegisterRegion("data", DataIOSize)
	c, _ := f.AddClient("c")
	qp, _ := f.Connect(c, server)
	done := 0
	for i := 0; i < 100; i++ {
		_ = qp.Read(r, 0, DataIOSize, func([]byte) { done++ })
	}
	k.Run()
	if done != 100 {
		t.Errorf("completed %d of 100 with flow control off", done)
	}
}

// TestControlBypassesDataBacklog: an atomic issued behind a deep data
// backlog completes in microseconds (priority path), not after the
// backlog drains.
func TestControlBypassesDataBacklog(t *testing.T) {
	k := sim.New(4)
	cfg := NewDefaultConfig()
	cfg.Jitter = 0
	f, _ := NewFabric(k, cfg)
	server, _ := f.AddServer("dn")
	data, _ := server.RegisterRegion("data", DataIOSize)
	cell, _ := server.RegisterRegion("cell", 8)
	c, _ := f.AddClient("c")
	qp, _ := f.Connect(c, server)
	for i := 0; i < 500; i++ {
		_ = qp.Read(data, 0, DataIOSize, func([]byte) {})
	}
	var atomicDone sim.Time
	_ = qp.FetchAdd(cell, 0, 1, func(int64) { atomicDone = k.Now() })
	k.Run()
	// 500 reads take ~1.25ms at the client NIC alone; the atomic must not
	// wait for them.
	if atomicDone > 200*sim.Microsecond {
		t.Errorf("atomic completed at %v; control path not prioritized", atomicDone)
	}
}

// TestDataQueueCompaction exercises the ring queue's pop/compact paths
// with random push/pop interleavings.
func TestDataQueueCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := newDataQueue(nil)
	pushed, popped := 0, 0
	for i := 0; i < 10000; i++ {
		if q.empty() || rng.Intn(2) == 0 {
			q.push(flowOp{weight: float64(pushed)})
			pushed++
		} else {
			op := q.pop()
			if int(op.weight) != popped {
				t.Fatalf("FIFO violated: got %v want %d", op.weight, popped)
			}
			popped++
		}
	}
	for !q.empty() {
		op := q.pop()
		if int(op.weight) != popped {
			t.Fatalf("FIFO violated in drain: got %v want %d", op.weight, popped)
		}
		popped++
	}
	if popped != pushed {
		t.Errorf("popped %d != pushed %d", popped, pushed)
	}
}

// TestDispatcherHandleFrom covers sender-scoped routing.
func TestDispatcherHandleFrom(t *testing.T) {
	k := sim.New(5)
	cfg := NewDefaultConfig()
	cfg.Jitter = 0
	f, _ := NewFabric(k, cfg)
	s1, _ := f.AddServer("s1")
	s2, _ := f.AddServer("s2")
	c, _ := f.AddClient("c")
	d := NewDispatcher(c)

	var from1, from2, catchall int
	if err := d.HandleFrom("x", s1, func(*Node, any) { from1++ }); err != nil {
		t.Fatal(err)
	}
	if err := d.HandleFrom("x", s2, func(*Node, any) { from2++ }); err != nil {
		t.Fatal(err)
	}
	if err := d.HandleFrom("x", s1, func(*Node, any) {}); err == nil {
		t.Error("duplicate scoped handler accepted")
	}
	if err := d.HandleFrom("x", nil, func(*Node, any) {}); err == nil {
		t.Error("nil sender accepted")
	}
	if err := d.Handle("y", func(*Node, any) { catchall++ }); err != nil {
		t.Fatal(err)
	}
	if err := d.Handle("y", func(*Node, any) {}); err == nil {
		t.Error("duplicate catch-all accepted")
	}

	qp1, _ := f.Connect(s1, c)
	qp2, _ := f.Connect(s2, c)
	_ = qp1.Send(Message{Kind: "x", Body: 1}, 8, nil)
	_ = qp2.Send(Message{Kind: "x", Body: 2}, 8, nil)
	_ = qp1.Send(Message{Kind: "y", Body: 3}, 8, nil)
	_ = qp1.Send("unrouted", 8, nil) // non-Message payload: dropped
	_ = qp1.Send(Message{Kind: "z", Body: 4}, 8, nil)
	k.Run()
	if from1 != 1 || from2 != 1 || catchall != 1 {
		t.Errorf("routing counts = %d/%d/%d, want 1/1/1", from1, from2, catchall)
	}
}
