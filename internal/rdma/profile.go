package rdma

// ExecProfile attributes executed fabric work to event kinds and
// pipeline stages, one profile per shard (one total when unsharded).
// The counters increment inside the same callbacks that execute the
// work, on the owning node's kernel — single-writer per shard, no
// locks — and they are exactly as deterministic as the event sequence:
// independent of worker count, identical with observability on or off
// (recording adds no fabric events). They are the measurement half of
// profile-driven kernel optimization: a run's Results rank which
// stations, stages, and verb kinds actually executed the most work, so
// hot-path effort can follow real counts rather than guesses.
//
// Per-kind counters count target-side executions (the memory-effect or
// hand-off instant); per-stage counters count stage completions along
// the pipeline, so e.g. InitNICDone/WireArrivals expose how much
// initiator-NIC and wire traffic a workload generated regardless of
// which verbs it used.
type ExecProfile struct {
	// Executed operations by kind, counted where the effect applies:
	// the target's shard for remote verbs, the initiator's for
	// loopbacks, the hosting node's for injected opFuncs.
	Reads        uint64
	Writes       uint64
	FetchAdds    uint64
	CompareSwaps uint64
	Sends        uint64
	Funcs        uint64

	// Pipeline-stage completion counts.
	CreditGrants    uint64 // flow-control credits granted at transmit
	InitNICDone     uint64 // initiator-NIC service completions (both classes)
	WireArrivals    uint64 // wire arrivals at the target
	SchedDispatches uint64 // round-robin scheduler dispatches
	Deliveries      uint64 // completion deliveries at the initiator
	Loopbacks       uint64 // loopback serves (single-NIC path)
	MailboxPosts    uint64 // cross-shard mailbox messages posted

	// QP connection-cache behaviour (Config.QPCacheSize); both zero when
	// the model is disabled. A miss charges QPCacheMissPenalty extra
	// service weight at the touching NIC. Omitted from JSON when zero so
	// cache-off Results stay byte-identical to pre-cache goldens.
	QPCacheHits   uint64 `json:",omitempty"`
	QPCacheMisses uint64 `json:",omitempty"`
}

// countKind tallies one executed operation of kind k.
func (p *ExecProfile) countKind(k opKind) {
	switch k {
	case opRead:
		p.Reads++
	case opWrite:
		p.Writes++
	case opFetchAdd:
		p.FetchAdds++
	case opCompareSwap:
		p.CompareSwaps++
	case opSend:
		p.Sends++
	case opFunc:
		p.Funcs++
	}
}

// Add folds another profile into p (used to merge per-shard profiles
// in shard order).
func (p *ExecProfile) Add(o *ExecProfile) {
	p.Reads += o.Reads
	p.Writes += o.Writes
	p.FetchAdds += o.FetchAdds
	p.CompareSwaps += o.CompareSwaps
	p.Sends += o.Sends
	p.Funcs += o.Funcs
	p.CreditGrants += o.CreditGrants
	p.InitNICDone += o.InitNICDone
	p.WireArrivals += o.WireArrivals
	p.SchedDispatches += o.SchedDispatches
	p.Deliveries += o.Deliveries
	p.Loopbacks += o.Loopbacks
	p.MailboxPosts += o.MailboxPosts
	p.QPCacheHits += o.QPCacheHits
	p.QPCacheMisses += o.QPCacheMisses
}
