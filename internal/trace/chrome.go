package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/haechi-qos/haechi/internal/sim"
)

// chromeEvent is one entry of the Chrome trace_event format, the JSON
// understood by Perfetto and chrome://tracing. Timestamps and durations
// are in microseconds (fractional, so nanosecond resolution survives).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func chromeUS(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// pidTable assigns stable integer pids to track names in order of first
// appearance (spans and events are visited in their deterministic
// recorded order, so the numbering is deterministic too).
type pidTable struct {
	ids   map[string]int
	names []string
	base  int // first assigned pid minus one (sharded export reserves low pids for shards)
}

func (p *pidTable) id(name string) int {
	if id, ok := p.ids[name]; ok {
		return id
	}
	if p.ids == nil {
		p.ids = make(map[string]int)
	}
	id := p.base + len(p.names) + 1 // pid 0 renders oddly in some viewers
	p.ids[name] = id
	p.names = append(p.names, name)
	return id
}

// WriteChromeTrace renders the recorder's retained spans (and, when rec
// is non-nil, its protocol events as instant markers) as Chrome
// trace_event JSON. Each initiator node becomes a process track and
// each QP a thread within it; every data span emits one enclosing slice
// for the whole verb plus one nested slice per pipeline stage, so a
// burst tenant's widening target-queue slices are directly visible in
// Perfetto. Control spans emit a single slice.
//
// For a merged sharded recorder (MergeFlightRecorders over > 1 shard)
// the layout changes: each shard becomes a process track ("shard-K",
// pid K+1) and each QP a named thread within it (QP ids are
// fabric-unique), so quantum-parallel shards render side by side and
// cross-shard verbs are visible as slices whose target lives on another
// track. Unsharded output is unchanged.
func WriteChromeTrace(w io.Writer, fr *FlightRecorder, rec *Recorder) error {
	sharded := fr.Sharded()
	var pids pidTable
	if sharded {
		pids.base = fr.ShardCount() // reserve pids 1..shards for shard tracks
	}
	type threadKey struct{ pid, tid int }
	var threadMeta []chromeEvent
	seenThread := make(map[threadKey]bool)
	var events []chromeEvent
	for _, sp := range fr.Spans() {
		var pid int
		if sharded {
			pid = sp.Shard + 1
			tk := threadKey{pid, sp.QP}
			if !seenThread[tk] {
				seenThread[tk] = true
				threadMeta = append(threadMeta, chromeEvent{
					Name: "thread_name",
					Ph:   "M",
					Pid:  pid,
					Tid:  sp.QP,
					Args: map[string]any{"name": sp.Initiator},
				})
			}
		} else {
			pid = pids.id(sp.Initiator)
		}
		cat := "data"
		if sp.Control {
			cat = "control"
		}
		events = append(events, chromeEvent{
			Name: sp.Op.String(),
			Cat:  cat,
			Ph:   "X",
			Ts:   chromeUS(sp.Posted),
			Dur:  chromeUS(sp.End() - sp.Posted),
			Pid:  pid,
			Tid:  sp.QP,
			Args: map[string]any{"span": sp.ID, "target": sp.Target},
		})
		if sp.Control {
			continue
		}
		stages := []struct {
			name     string
			from, to sim.Time
		}{
			{"credit-wait", sp.Posted, sp.Credit},
			{"init-nic", sp.Credit, sp.InitDone},
			{"wire", sp.InitDone, sp.Arrived},
			{"target-queue", sp.Arrived, sp.Service},
			{"target-service", sp.Service, sp.Served},
			{"deliver", sp.Served, sp.Done},
		}
		for _, st := range stages {
			if st.from < 0 || st.to < 0 {
				continue
			}
			events = append(events, chromeEvent{
				Name: st.name,
				Cat:  "stage",
				Ph:   "X",
				Ts:   chromeUS(st.from),
				Dur:  chromeUS(st.to - st.from),
				Pid:  pid,
				Tid:  sp.QP,
			})
		}
	}
	if rec != nil {
		for _, ev := range rec.Events() {
			events = append(events, chromeEvent{
				Name: ev.Kind.String(),
				Cat:  "protocol",
				Ph:   "i",
				S:    "t",
				Ts:   chromeUS(ev.At),
				Pid:  pids.id(ev.Actor),
				Args: map[string]any{"A": ev.A, "B": ev.B},
			})
		}
	}
	meta := make([]chromeEvent, 0, fr.ShardCount()+len(pids.names)+len(threadMeta))
	if sharded {
		for s := 0; s < fr.ShardCount(); s++ {
			meta = append(meta, chromeEvent{
				Name: "process_name",
				Ph:   "M",
				Pid:  s + 1,
				Args: map[string]any{"name": fmt.Sprintf("shard-%d", s)},
			})
		}
	}
	for i, name := range pids.names {
		meta = append(meta, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pids.base + i + 1,
			Args: map[string]any{"name": name},
		})
	}
	meta = append(meta, threadMeta...)
	return json.NewEncoder(w).Encode(chromeTrace{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ns",
	})
}
