package trace

import (
	"fmt"
	"sort"

	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/sim"
)

// StageStats aggregates per-stage latency histograms for every data
// span posted by one initiator. Unlike the span ring, which keeps only
// the most recent spans for export, the histograms cover every finished
// span — the per-stage breakdown is exact regardless of ring capacity.
type StageStats struct {
	Actor string

	CreditWait    metrics.Histogram
	InitNIC       metrics.Histogram
	Wire          metrics.Histogram
	TargetQueue   metrics.Histogram
	TargetService metrics.Histogram
	Delivery      metrics.Histogram
	Total         metrics.Histogram
}

// Histograms returns the stage histograms in StageNames order.
func (s *StageStats) Histograms() []*metrics.Histogram {
	return []*metrics.Histogram{
		&s.CreditWait,
		&s.InitNIC,
		&s.Wire,
		&s.TargetQueue,
		&s.TargetService,
		&s.Delivery,
		&s.Total,
	}
}

func (s *StageStats) record(sp *Span) {
	hs := s.Histograms()
	for i, d := range sp.StageDurations() {
		if d >= 0 {
			hs[i].Record(d)
		}
	}
}

// FlightRecorder collects finished spans into a bounded ring and folds
// every finished data span into per-initiator stage histograms. All
// methods are nil-safe so instrumented code needs no recorder checks at
// call sites, and nothing here ever touches the kernel's event queue:
// a run with a recorder attached executes the exact same event
// sequence as a run without one.
type FlightRecorder struct {
	ring     []Span
	next     int
	wrapped  bool
	nextID   uint64
	started  uint64
	finished uint64
	stats    map[string]*StageStats
}

// NewFlightRecorder creates a recorder keeping the last capacity
// finished spans.
func NewFlightRecorder(capacity int) (*FlightRecorder, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: flight recorder capacity must be positive, got %d", capacity)
	}
	return &FlightRecorder{
		ring:  make([]Span, capacity),
		stats: make(map[string]*StageStats),
	}, nil
}

// Begin starts a span for a verb posted at virtual time at. It returns
// nil on a nil recorder, so instrumentation sites guard with a single
// `if sp != nil` per stamp.
func (f *FlightRecorder) Begin(op Op, control bool, initiator, target string, qp int, at sim.Time) *Span {
	if f == nil {
		return nil
	}
	f.nextID++
	f.started++
	return &Span{
		ID:        f.nextID,
		Op:        op,
		Control:   control,
		Initiator: initiator,
		Target:    target,
		QP:        qp,
		Posted:    at,
		Credit:    Unset,
		InitDone:  Unset,
		Arrived:   Unset,
		Service:   Unset,
		Served:    Unset,
		Done:      Unset,
	}
}

// Finish records a completed span: it is copied into the ring and, for
// data spans, its stage durations feed the initiator's histograms.
func (f *FlightRecorder) Finish(sp *Span) {
	if f == nil || sp == nil {
		return
	}
	f.finished++
	f.ring[f.next] = *sp
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.wrapped = true
	}
	if !sp.Control {
		st := f.stats[sp.Initiator]
		if st == nil {
			st = &StageStats{Actor: sp.Initiator}
			f.stats[sp.Initiator] = st
		}
		st.record(sp)
	}
}

// Started returns the number of spans begun.
func (f *FlightRecorder) Started() uint64 {
	if f == nil {
		return 0
	}
	return f.started
}

// Finished returns the number of spans finished (spans still in flight
// when the simulation ends are never finished and stay out of the
// ring).
func (f *FlightRecorder) Finished() uint64 {
	if f == nil {
		return 0
	}
	return f.finished
}

// Capacity returns the ring size.
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Spans returns the retained spans in finish order, oldest first.
func (f *FlightRecorder) Spans() []Span {
	if f == nil {
		return nil
	}
	if !f.wrapped {
		out := make([]Span, f.next)
		copy(out, f.ring[:f.next])
		return out
	}
	out := make([]Span, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// Stages returns the per-initiator stage statistics sorted by actor
// name, for deterministic iteration and rendering.
func (f *FlightRecorder) Stages() []*StageStats {
	if f == nil {
		return nil
	}
	actors := make([]string, 0, len(f.stats))
	for a := range f.stats {
		actors = append(actors, a)
	}
	sort.Strings(actors)
	out := make([]*StageStats, len(actors))
	for i, a := range actors {
		out[i] = f.stats[a]
	}
	return out
}
