package trace

import (
	"fmt"
	"sort"

	"github.com/haechi-qos/haechi/internal/metrics"
	"github.com/haechi-qos/haechi/internal/sim"
)

// StageStats aggregates per-stage latency histograms for every data
// span posted by one initiator. Unlike the span ring, which keeps only
// the most recent spans for export, the histograms cover every finished
// span — the per-stage breakdown is exact regardless of ring capacity.
type StageStats struct {
	Actor string

	CreditWait    metrics.Histogram
	InitNIC       metrics.Histogram
	Wire          metrics.Histogram
	TargetQueue   metrics.Histogram
	TargetService metrics.Histogram
	Delivery      metrics.Histogram
	Total         metrics.Histogram
}

// Histograms returns the stage histograms in StageNames order.
func (s *StageStats) Histograms() []*metrics.Histogram {
	return []*metrics.Histogram{
		&s.CreditWait,
		&s.InitNIC,
		&s.Wire,
		&s.TargetQueue,
		&s.TargetService,
		&s.Delivery,
		&s.Total,
	}
}

func (s *StageStats) record(sp *Span) {
	hs := s.Histograms()
	for i, d := range sp.StageDurations() {
		if d >= 0 {
			hs[i].Record(d)
		}
	}
}

// FlightRecorder collects finished spans into a bounded ring and folds
// every finished data span into per-initiator stage histograms. All
// methods are nil-safe so instrumented code needs no recorder checks at
// call sites, and nothing here ever touches the kernel's event queue:
// a run with a recorder attached executes the exact same event
// sequence as a run without one.
type FlightRecorder struct {
	ring     []Span
	next     int
	wrapped  bool
	nextID   uint64
	started  uint64
	finished uint64
	stats    map[string]*StageStats

	// shard/idBase identify a per-shard recorder: span IDs are offset by
	// idBase so they stay unique after merging, and every span is stamped
	// with the shard it began on. Both zero on the unsharded path.
	shard  int
	idBase uint64
	// shards > 1 marks a recorder produced by MergeFlightRecorders; the
	// Chrome exporter switches to one process track per shard.
	shards int
}

// NewFlightRecorder creates a recorder keeping the last capacity
// finished spans.
func NewFlightRecorder(capacity int) (*FlightRecorder, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: flight recorder capacity must be positive, got %d", capacity)
	}
	return &FlightRecorder{
		ring:  make([]Span, capacity),
		stats: make(map[string]*StageStats),
	}, nil
}

// NewShardFlightRecorder creates shard s's recorder in a sharded run.
// Each shard's recorder is touched only by code running on that shard's
// kernel — single-writer by construction, no locks — and span IDs get a
// per-shard base (shard<<56) so they remain unique after the merge.
// Shard 0's IDs match the unsharded numbering exactly.
func NewShardFlightRecorder(capacity, s int) (*FlightRecorder, error) {
	if s < 0 {
		return nil, fmt.Errorf("trace: shard index must be non-negative, got %d", s)
	}
	fr, err := NewFlightRecorder(capacity)
	if err != nil {
		return nil, err
	}
	fr.shard = s
	fr.idBase = uint64(s) << 56
	return fr, nil
}

// Begin starts a span for a verb posted at virtual time at. It returns
// nil on a nil recorder, so instrumentation sites guard with a single
// `if sp != nil` per stamp.
func (f *FlightRecorder) Begin(op Op, control bool, initiator, target string, qp int, at sim.Time) *Span {
	if f == nil {
		return nil
	}
	f.nextID++
	f.started++
	return &Span{
		ID:        f.idBase + f.nextID,
		Shard:     f.shard,
		Op:        op,
		Control:   control,
		Initiator: initiator,
		Target:    target,
		QP:        qp,
		Posted:    at,
		Credit:    Unset,
		InitDone:  Unset,
		Arrived:   Unset,
		Service:   Unset,
		Served:    Unset,
		Done:      Unset,
	}
}

// Finish records a completed span: it is copied into the ring and, for
// data spans, its stage durations feed the initiator's histograms.
func (f *FlightRecorder) Finish(sp *Span) {
	if f == nil || sp == nil {
		return
	}
	f.finished++
	f.ring[f.next] = *sp
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.wrapped = true
	}
	if !sp.Control {
		st := f.stats[sp.Initiator]
		if st == nil {
			st = &StageStats{Actor: sp.Initiator}
			f.stats[sp.Initiator] = st
		}
		st.record(sp)
	}
}

// Started returns the number of spans begun.
func (f *FlightRecorder) Started() uint64 {
	if f == nil {
		return 0
	}
	return f.started
}

// Finished returns the number of spans finished (spans still in flight
// when the simulation ends are never finished and stay out of the
// ring).
func (f *FlightRecorder) Finished() uint64 {
	if f == nil {
		return 0
	}
	return f.finished
}

// Dropped returns the number of finished spans evicted from the ring
// (finished minus retained). Histograms still cover evicted spans; only
// the per-span export window loses them.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	retained := uint64(f.next)
	if f.wrapped {
		retained = uint64(len(f.ring))
	}
	return f.finished - retained
}

// Shard returns the shard index this recorder records for (0 on the
// unsharded path).
func (f *FlightRecorder) Shard() int {
	if f == nil {
		return 0
	}
	return f.shard
}

// Sharded reports whether this recorder was produced by merging more
// than one per-shard recorder.
func (f *FlightRecorder) Sharded() bool { return f != nil && f.shards > 1 }

// ShardCount returns the number of per-shard recorders merged into this
// one (1 for a plain recorder).
func (f *FlightRecorder) ShardCount() int {
	if f == nil || f.shards == 0 {
		return 1
	}
	return f.shards
}

// Capacity returns the ring size.
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Spans returns the retained spans in finish order, oldest first.
func (f *FlightRecorder) Spans() []Span {
	if f == nil {
		return nil
	}
	if !f.wrapped {
		out := make([]Span, f.next)
		copy(out, f.ring[:f.next])
		return out
	}
	out := make([]Span, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// merge folds another actor's stage statistics into s.
func (s *StageStats) merge(o *StageStats) {
	hs := s.Histograms()
	for i, h := range o.Histograms() {
		hs[i].Merge(h)
	}
}

// MergeFlightRecorders combines per-shard recorders into one read-only
// recorder, deterministically and independent of the worker count that
// drove the shards:
//
//   - retained spans are k-way merged in (End, shard) order — End is
//     nondecreasing within a shard because Finish runs at the span's
//     final stamp, so preserving each shard's finish order and breaking
//     cross-shard ties by shard index yields a total order;
//   - per-actor stage histograms merge via Histogram.Merge (an actor's
//     spans may finish on different shards: delivery finishes on the
//     initiator's recorder, serve-only completions on the target's);
//   - started/finished counters sum across shards.
//
// The result must not receive further Begin/Finish calls; it exists for
// export (Spans, Stages, Chrome trace). A single recorder is returned
// unchanged.
func MergeFlightRecorders(frs ...*FlightRecorder) *FlightRecorder {
	if len(frs) == 1 {
		return frs[0]
	}
	m := &FlightRecorder{
		stats:  make(map[string]*StageStats),
		shards: len(frs),
	}
	spans := make([][]Span, len(frs))
	total := 0
	for i, f := range frs {
		spans[i] = f.Spans()
		total += len(spans[i])
		m.started += f.Started()
		m.finished += f.Finished()
	}
	ring := make([]Span, 0, total)
	idx := make([]int, len(frs))
	for len(ring) < total {
		best := -1
		for s := range frs {
			if idx[s] >= len(spans[s]) {
				continue
			}
			if best < 0 || spans[s][idx[s]].End() < spans[best][idx[best]].End() {
				best = s
			}
		}
		ring = append(ring, spans[best][idx[best]])
		idx[best]++
	}
	m.ring = ring
	m.wrapped = len(ring) > 0 // Spans() reads the whole ring from next=0
	for _, f := range frs {
		for _, st := range f.Stages() { // sorted by actor: deterministic
			dst := m.stats[st.Actor]
			if dst == nil {
				dst = &StageStats{Actor: st.Actor}
				m.stats[st.Actor] = dst
			}
			dst.merge(st)
		}
	}
	return m
}

// Stages returns the per-initiator stage statistics sorted by actor
// name, for deterministic iteration and rendering.
func (f *FlightRecorder) Stages() []*StageStats {
	if f == nil {
		return nil
	}
	actors := make([]string, 0, len(f.stats))
	for a := range f.stats {
		actors = append(actors, a)
	}
	sort.Strings(actors)
	out := make([]*StageStats, len(actors))
	for i, a := range actors {
		out[i] = f.stats[a]
	}
	return out
}
