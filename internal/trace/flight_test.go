package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

func TestFlightRecorderValidation(t *testing.T) {
	if _, err := NewFlightRecorder(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewFlightRecorder(-3); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	if sp := fr.Begin(OpRead, false, "a", "b", 1, 0); sp != nil {
		t.Error("nil recorder returned a span")
	}
	fr.Finish(nil) // must not panic
	if fr.Started() != 0 || fr.Finished() != 0 || fr.Capacity() != 0 {
		t.Error("nil recorder counters non-zero")
	}
	if fr.Spans() != nil || fr.Stages() != nil {
		t.Error("nil recorder returned data")
	}
}

func TestFlightRingEvictionKeepsHistogramsExact(t *testing.T) {
	fr, err := NewFlightRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		sp := fr.Begin(OpRead, false, "c1", "dn", 1, 0)
		sp.Done = 100
		fr.Finish(sp)
	}
	if fr.Started() != 6 || fr.Finished() != 6 {
		t.Fatalf("started/finished = %d/%d, want 6/6", fr.Started(), fr.Finished())
	}
	spans := fr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(i + 3); sp.ID != want { // oldest-first: IDs 3..6
			t.Errorf("span %d has ID %d, want %d", i, sp.ID, want)
		}
	}
	// Eviction must not touch the per-stage histograms: all 6 counted.
	st := fr.Stages()
	if len(st) != 1 || st[0].Actor != "c1" {
		t.Fatalf("stages = %+v, want one entry for c1", st)
	}
	if st[0].Total.Count() != 6 {
		t.Errorf("total histogram count = %d, want 6 (must survive ring eviction)", st[0].Total.Count())
	}
}

func TestFlightStagesSortedAndControlExcluded(t *testing.T) {
	fr, err := NewFlightRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, actor := range []string{"zeta", "alpha"} {
		sp := fr.Begin(OpWrite, false, actor, "dn", 1, 0)
		sp.Done = 50
		fr.Finish(sp)
	}
	ctrl := fr.Begin(OpFetchAdd, true, "omega", "dn", 2, 0)
	ctrl.Done = 10
	fr.Finish(ctrl)
	st := fr.Stages()
	if len(st) != 2 {
		t.Fatalf("got %d stage actors, want 2 (control spans excluded)", len(st))
	}
	if st[0].Actor != "alpha" || st[1].Actor != "zeta" {
		t.Errorf("actors = [%s %s], want sorted [alpha zeta]", st[0].Actor, st[1].Actor)
	}
}

func TestSpanStageDurations(t *testing.T) {
	sp := &Span{
		Posted: 100, Credit: 110, InitDone: 150, Arrived: 160,
		Service: 200, Served: 240, Done: 250,
	}
	want := []int64{10, 40, 10, 40, 40, 10, 150}
	got := sp.StageDurations()
	if len(got) != len(StageNames) {
		t.Fatalf("StageDurations len %d != StageNames len %d", len(got), len(StageNames))
	}
	for i, w := range want {
		if int64(got[i]) != w {
			t.Errorf("%s = %d, want %d", StageNames[i], int64(got[i]), w)
		}
	}
	// A control span (stages skipped) reports Unset for them and still
	// has a total.
	cp := &Span{Posted: 100, Credit: Unset, InitDone: 120, Arrived: 130,
		Service: Unset, Served: 150, Done: 160}
	if cp.CreditWait() != Unset || cp.TargetQueue() != Unset {
		t.Error("skipped stages not Unset")
	}
	if cp.Total() != 60 {
		t.Errorf("control total = %d, want 60", int64(cp.Total()))
	}
}

func TestWriteChromeTrace(t *testing.T) {
	fr, err := NewFlightRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	sp := fr.Begin(OpRead, false, "c1", "dn", 1, 100)
	sp.Credit, sp.InitDone, sp.Arrived, sp.Service, sp.Served, sp.Done = 110, 150, 160, 200, 240, 250
	fr.Finish(sp)
	cp := fr.Begin(OpFetchAdd, true, "c1", "dn", 1, 300)
	cp.InitDone, cp.Arrived, cp.Served, cp.Done = 320, 330, 350, 360
	fr.Finish(cp)
	rec, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	rec.Record(Event{At: 500, Kind: Claim, Actor: "engine-0", A: 1, B: 2})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fr, rec); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 2 metadata tracks (c1, engine-0) + data span (1 whole + 6 stages)
	// + 1 control span + 1 instant event.
	if len(out.TraceEvents) != 11 {
		t.Fatalf("got %d events, want 11", len(out.TraceEvents))
	}
	var whole *int
	counts := map[string]int{}
	for i, ev := range out.TraceEvents {
		counts[ev.Ph]++
		if ev.Ph == "X" && ev.Cat == "data" {
			whole = &[]int{i}[0]
		}
	}
	if counts["M"] != 2 || counts["X"] != 8 || counts["i"] != 1 {
		t.Errorf("phase counts = %v, want M=2 X=8 i=1", counts)
	}
	if whole == nil {
		t.Fatal("no enclosing data span event")
	}
	// Every stage slice must nest within its enclosing span.
	enc := out.TraceEvents[*whole]
	for _, ev := range out.TraceEvents {
		if ev.Cat != "stage" {
			continue
		}
		if ev.Pid != enc.Pid || ev.Tid != enc.Tid {
			t.Errorf("stage %s on track %d/%d, want %d/%d", ev.Name, ev.Pid, ev.Tid, enc.Pid, enc.Tid)
		}
		if ev.Ts < enc.Ts || ev.Ts+ev.Dur > enc.Ts+enc.Dur+1e-9 {
			t.Errorf("stage %s [%v,%v] escapes span [%v,%v]", ev.Name, ev.Ts, ev.Ts+ev.Dur, enc.Ts, enc.Ts+enc.Dur)
		}
	}
	// Export is deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, fr, rec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renders of the same recorder differ")
	}
}

// TestKindsRoundTrip guards trace.Kinds() and Kind.String() against a
// Kind constant added without a name or without a Kinds() entry.
func TestKindsRoundTrip(t *testing.T) {
	kinds := Kinds()
	if len(kinds) == 0 {
		t.Fatal("no kinds declared")
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no String() name", uint8(k))
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	// The value one past the last declared kind must hit the fallback;
	// if it doesn't, a named Kind exists that Kinds() fails to list.
	next := kinds[len(kinds)-1] + 1
	if !strings.HasPrefix(next.String(), "Kind(") {
		t.Errorf("Kind %d = %q is named but missing from Kinds()", uint8(next), next.String())
	}
}

// TestSummaryIncludesAllObservedKinds pins the Summary fix: events of a
// kind beyond the last declared constant must still be counted (the old
// loop `for k := PeriodStart; k <= LocalViolation; k++` dropped them).
func TestSummaryIncludesAllObservedKinds(t *testing.T) {
	r, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	future := LocalViolation + 1
	r.Record(Event{Kind: future})
	r.Record(Event{Kind: Claim})
	sum := r.Summary()
	if !strings.Contains(sum, "claim=1") {
		t.Errorf("summary %q missing claim=1", sum)
	}
	if !strings.Contains(sum, future.String()+"=1") {
		t.Errorf("summary %q dropped kind beyond LocalViolation", sum)
	}
	// Sorted by kind value: claim (5) renders before the future kind.
	if strings.Index(sum, "claim=1") > strings.Index(sum, future.String()+"=1") {
		t.Errorf("summary %q not in kind order", sum)
	}
}

// TestMergeFlightRecorders pins the deterministic merge of per-shard
// recorders: spans in (End, shard) order with unique per-shard ID
// bases, counters summed, and an actor's histograms folded together
// even when its spans finished on different shards.
func TestMergeFlightRecorders(t *testing.T) {
	newShard := func(s int) *FlightRecorder {
		fr, err := NewShardFlightRecorder(4, s)
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	finish := func(fr *FlightRecorder, actor string, done int64) *Span {
		sp := fr.Begin(OpRead, false, actor, "dn", 1, 0)
		sp.Done = sim.Time(done)
		fr.Finish(sp)
		return sp
	}
	fr0, fr1, fr2 := newShard(0), newShard(1), newShard(2)
	finish(fr0, "c1", 100)
	finish(fr0, "c1", 300)
	finish(fr1, "c2", 100) // ties with fr0's first span: shard 0 wins
	finish(fr1, "c1", 200) // c1 span finished on another shard
	finish(fr2, "c3", 50)

	m := MergeFlightRecorders(fr0, fr1, fr2)
	if m.Started() != 5 || m.Finished() != 5 {
		t.Errorf("started/finished = %d/%d, want 5/5", m.Started(), m.Finished())
	}
	if !m.Sharded() || m.ShardCount() != 3 {
		t.Errorf("Sharded()/ShardCount() = %v/%d, want true/3", m.Sharded(), m.ShardCount())
	}
	spans := m.Spans()
	if len(spans) != 5 {
		t.Fatalf("merged %d spans, want 5", len(spans))
	}
	wantOrder := []struct {
		end   int64
		shard int
	}{{50, 2}, {100, 0}, {100, 1}, {200, 1}, {300, 0}}
	ids := map[uint64]bool{}
	for i, sp := range spans {
		w := wantOrder[i]
		if int64(sp.End()) != w.end || sp.Shard != w.shard {
			t.Errorf("span %d = end %d shard %d, want end %d shard %d",
				i, int64(sp.End()), sp.Shard, w.end, w.shard)
		}
		if ids[sp.ID] {
			t.Errorf("duplicate merged span ID %d", sp.ID)
		}
		ids[sp.ID] = true
		if want := uint64(sp.Shard) << 56; sp.ID&^(uint64(1)<<56-1) != want {
			t.Errorf("span ID %#x missing shard-%d base", sp.ID, sp.Shard)
		}
	}
	st := m.Stages()
	if len(st) != 3 {
		t.Fatalf("merged stages for %d actors, want 3", len(st))
	}
	if st[0].Actor != "c1" || st[0].Total.Count() != 3 {
		t.Errorf("c1 merged histogram count = %d, want 3 (spans from two shards)", st[0].Total.Count())
	}
	// Identity on a single recorder: no copy, no shard marking.
	if got := MergeFlightRecorders(fr0); got != fr0 || got.Sharded() {
		t.Error("single-recorder merge is not the identity")
	}
}

// TestFlightRecorderDropped pins the eviction counter the
// trace/spans-dropped gauge exports.
func TestFlightRecorderDropped(t *testing.T) {
	fr, err := NewFlightRecorder(2)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Dropped() != 0 {
		t.Errorf("fresh recorder Dropped() = %d, want 0", fr.Dropped())
	}
	for i := 0; i < 5; i++ {
		sp := fr.Begin(OpWrite, false, "c1", "dn", 1, 0)
		sp.Done = 10
		fr.Finish(sp)
	}
	if fr.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3 (5 finished, ring of 2)", fr.Dropped())
	}
}

// TestWriteChromeTraceSharded verifies the sharded export shape: one
// process track per shard (pid = shard+1) with shard-K process_name
// metadata, spans on their beginning shard's track, and per-QP
// thread_name metadata naming the initiator.
func TestWriteChromeTraceSharded(t *testing.T) {
	fr0, err := NewShardFlightRecorder(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	fr1, err := NewShardFlightRecorder(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp := fr0.Begin(OpRead, false, "c1", "dn", 7, 100)
	sp.Done = 150
	fr0.Finish(sp)
	sp = fr1.Begin(OpWrite, false, "c2", "dn", 9, 120)
	sp.Done = 180
	fr1.Finish(sp)
	m := MergeFlightRecorders(fr0, fr1)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("sharded trace is not valid JSON: %v", err)
	}
	procs := map[int]string{}
	threads := map[[2]int]string{}
	spanTracks := map[string][2]int{}
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procs[ev.Pid] = ev.Args.Name
		case ev.Ph == "M" && ev.Name == "thread_name":
			threads[[2]int{ev.Pid, ev.Tid}] = ev.Args.Name
		case ev.Ph == "X":
			spanTracks[ev.Name] = [2]int{ev.Pid, ev.Tid}
		}
	}
	if procs[1] != "shard-0" || procs[2] != "shard-1" {
		t.Errorf("process tracks = %v, want pid 1 -> shard-0, pid 2 -> shard-1", procs)
	}
	if got := spanTracks["READ"]; got != [2]int{1, 7} {
		t.Errorf("c1 span on track %v, want pid 1 tid 7 (shard 0, QP 7)", got)
	}
	if got := spanTracks["WRITE"]; got != [2]int{2, 9} {
		t.Errorf("c2 span on track %v, want pid 2 tid 9 (shard 1, QP 9)", got)
	}
	if threads[[2]int{1, 7}] != "c1" || threads[[2]int{2, 9}] != "c2" {
		t.Errorf("thread names = %v, want QP tracks named after initiators", threads)
	}
}
