package trace

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/sim"
)

// Op classifies the verb a Span records.
type Op uint8

// Span operations, one per RDMA verb the fabric simulates.
const (
	OpRead Op = iota + 1
	OpWrite
	OpFetchAdd
	OpCompareSwap
	OpSend
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpCompareSwap:
		return "CMP_SWAP"
	case OpSend:
		return "SEND"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Unset marks a pipeline stage a span never reached (or that does not
// exist on its path; control verbs skip the credit stage, for example).
const Unset sim.Time = -1

// Span follows one verb through the fabric pipeline. Every timestamp is
// stamped from the simulation kernel clock inside a callback the fabric
// would execute anyway, so recording spans never adds, removes, or
// reorders kernel events — the event sequence with tracing on is
// identical to the sequence with tracing off (DESIGN.md §7).
//
// Data-path stages, in order:
//
//	Posted   — verb posted at the initiator
//	Credit   — flow-control credit acquired, WQE handed to the NIC
//	InitDone — initiator NIC finished serving the WQE
//	Arrived  — after propagation, op entered the target's RR scheduler
//	Service  — target scheduler dispatched the op to the target NIC
//	Served   — target NIC finished service; memory effect applied
//	Done     — completion delivered back at the initiator
//
// Control verbs (atomics, small writes, sends) skip Credit/Service:
// they take the priority path straight through both NICs.
type Span struct {
	ID        uint64
	Op        Op
	Control   bool
	Initiator string
	Target    string
	QP        int
	// Shard is the shard index of the recorder that began the span (the
	// initiator's shard); 0 on the unsharded path. Sharded Chrome export
	// groups spans into one process track per shard by this field.
	Shard int

	Posted   sim.Time
	Credit   sim.Time
	InitDone sim.Time
	Arrived  sim.Time
	Service  sim.Time
	Served   sim.Time
	Done     sim.Time
}

// StageNames lists the per-stage latency components of a data span, in
// pipeline order, followed by the end-to-end total. The slice is
// parallel to Span.StageDurations and StageStats.Histograms.
var StageNames = []string{
	"credit-wait",
	"init-nic",
	"wire",
	"target-queue",
	"target-service",
	"deliver",
	"total",
}

// End returns the last timestamp the span reached.
func (s *Span) End() sim.Time {
	for _, t := range []sim.Time{s.Done, s.Served, s.Service, s.Arrived, s.InitDone, s.Credit} {
		if t >= 0 {
			return t
		}
	}
	return s.Posted
}

// stage returns the duration from to-from when both ends were stamped,
// else Unset.
func stage(from, to sim.Time) sim.Time {
	if from < 0 || to < 0 {
		return Unset
	}
	return to - from
}

// CreditWait is the time from posting until a flow-control credit was
// available (Haechi's queueing at the initiator happens above this, in
// the engine's token gate; this measures the fabric window).
func (s *Span) CreditWait() sim.Time { return stage(s.Posted, s.Credit) }

// InitNIC is the initiator NIC queueing+service time.
func (s *Span) InitNIC() sim.Time { return stage(s.Credit, s.InitDone) }

// Wire is the propagation delay to the target.
func (s *Span) Wire() sim.Time { return stage(s.InitDone, s.Arrived) }

// TargetQueue is the wait in the target's round-robin scheduler before
// dispatch — the component that dominates for bursty tenants (Fig. 13).
func (s *Span) TargetQueue() sim.Time { return stage(s.Arrived, s.Service) }

// TargetService is the target NIC queueing+service time.
func (s *Span) TargetService() sim.Time { return stage(s.Service, s.Served) }

// Delivery is the completion propagation back to the initiator.
func (s *Span) Delivery() sim.Time { return stage(s.Served, s.Done) }

// Total is the end-to-end latency from posting to the last stamped
// stage.
func (s *Span) Total() sim.Time { return s.End() - s.Posted }

// StageDurations returns the durations parallel to StageNames; entries
// are Unset for stages the span did not traverse.
func (s *Span) StageDurations() []sim.Time {
	return []sim.Time{
		s.CreditWait(),
		s.InitNIC(),
		s.Wire(),
		s.TargetQueue(),
		s.TargetService(),
		s.Delivery(),
		s.Total(),
	}
}
