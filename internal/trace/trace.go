// Package trace records structured protocol events into a fixed-size
// ring buffer, for debugging and analyzing Haechi runs: token pushes and
// claims, yields and returns, pool caps, reports, capacity updates,
// throttling, and failure-detection transitions. Recording is optional
// and nil-safe — components hold a *Recorder that may be nil — and adds
// a single branch when disabled.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/haechi-qos/haechi/internal/sim"
)

// Kind classifies a protocol event.
type Kind uint8

// Event kinds. A and B in Event carry kind-specific values as noted.
const (
	// PeriodStart: a new QoS period at the monitor. A=period index,
	// B=token budget Omega.
	PeriodStart Kind = iota + 1
	// TokenPush: reservation tokens pushed to a client. A=client id,
	// B=R_i.
	TokenPush
	// ReportSignal: the monitor broadcast "begin reporting". A=period.
	ReportSignal
	// Report: a client wrote its report. A=residual, B=completed.
	Report
	// Claim: a client's FETCH_ADD claim returned. A=old pool value,
	// B=tokens granted.
	Claim
	// Probe: a zero-delta pool probe returned. A=old pool value.
	Probe
	// Yield: the X-counter decay reclaimed tokens at a client. A=tokens
	// yielded, B=tokens returned to the pool (0 in Basic mode).
	Yield
	// PoolCap: the monitor lowered the pool to the capacity bound.
	// A=previous value, B=bound written.
	PoolCap
	// CapacityUpdate: Algorithm 1 produced a new estimate. A=reported
	// usage U, B=Omega for the next period.
	CapacityUpdate
	// LimitThrottle: a client hit its per-period limit. A=limit.
	LimitThrottle
	// FailureSuspect / FailureRecover: failure-detection transitions.
	// A=client id.
	FailureSuspect
	FailureRecover
	// LocalViolation: Definition 2's runtime local-capacity condition
	// failed for a client mid-period — its residual reservation can no
	// longer be served at C_L in the time left. A=client id, B=shortfall.
	LocalViolation
)

// Kinds lists every declared event kind in declaration order. Summary
// and other by-kind renderings must not hardcode the range of declared
// kinds (a Kind added after the last constant would silently vanish);
// they either iterate observed kinds or use this list.
func Kinds() []Kind {
	return []Kind{
		PeriodStart, TokenPush, ReportSignal, Report, Claim, Probe,
		Yield, PoolCap, CapacityUpdate, LimitThrottle, FailureSuspect,
		FailureRecover, LocalViolation,
	}
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case PeriodStart:
		return "period-start"
	case TokenPush:
		return "token-push"
	case ReportSignal:
		return "report-signal"
	case Report:
		return "report"
	case Claim:
		return "claim"
	case Probe:
		return "probe"
	case Yield:
		return "yield"
	case PoolCap:
		return "pool-cap"
	case CapacityUpdate:
		return "capacity-update"
	case LimitThrottle:
		return "limit-throttle"
	case FailureSuspect:
		return "failure-suspect"
	case FailureRecover:
		return "failure-recover"
	case LocalViolation:
		return "local-violation"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded protocol event.
type Event struct {
	At   sim.Time
	Kind Kind
	// Actor identifies the emitting component ("monitor", "engine-3").
	Actor string
	// A and B carry kind-specific values (see the Kind constants).
	A, B int64
}

// String formats the event for dumps.
func (e Event) String() string {
	return fmt.Sprintf("%-12v %-15s %-10s A=%d B=%d", e.At, e.Kind, e.Actor, e.A, e.B)
}

// Recorder is a fixed-capacity ring buffer of events. The zero value is
// unusable; construct with NewRecorder. A nil *Recorder is a valid no-op
// target for Record.
type Recorder struct {
	buf     []Event
	next    int
	wrapped bool
	total   uint64
}

// NewRecorder creates a recorder keeping the most recent capacity events.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: capacity must be positive, got %d", capacity)
	}
	return &Recorder{buf: make([]Event, capacity)}, nil
}

// Record appends an event, evicting the oldest when full. Safe on a nil
// receiver.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.buf[r.next] = ev
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// Total returns the number of events ever recorded (including evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns retained events of the given kinds, chronological.
func (r *Recorder) Filter(kinds ...Kind) []Event {
	var out []Event
	for _, ev := range r.Events() {
		for _, k := range kinds {
			if ev.Kind == k {
				out = append(out, ev)
				break
			}
		}
	}
	return out
}

// Counts tallies retained events by kind.
func (r *Recorder) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, ev := range r.Events() {
		out[ev.Kind]++
	}
	return out
}

// Dump writes the retained events to w, one per line.
func (r *Recorder) Dump(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders per-kind counts on one line. It iterates the kinds
// actually observed, in sorted order, so events of kinds declared after
// LocalViolation (or not declared at all) still appear.
func (r *Recorder) Summary() string {
	counts := r.Counts()
	if len(counts) == 0 {
		return "trace: empty"
	}
	kinds := make([]Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	return "trace: " + strings.Join(parts, " ")
}
