package trace

import (
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/sim"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewRecorder(-5); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: Claim}) // must not panic
	if r.Total() != 0 || r.Events() != nil {
		t.Error("nil recorder not empty")
	}
}

func TestRecordAndOrder(t *testing.T) {
	r, err := NewRecorder(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Record(Event{At: sim.Time(i), Kind: Claim, A: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.A != int64(i) {
			t.Errorf("event %d out of order: %v", i, ev)
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d", r.Total())
	}
}

func TestRingEviction(t *testing.T) {
	r, _ := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: sim.Time(i), Kind: Probe, A: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// Oldest retained is 6.
	for i, ev := range evs {
		if ev.A != int64(6+i) {
			t.Errorf("event %d = %v, want A=%d", i, ev, 6+i)
		}
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d", r.Total())
	}
}

func TestFilterAndCounts(t *testing.T) {
	r, _ := NewRecorder(16)
	r.Record(Event{Kind: Claim})
	r.Record(Event{Kind: Yield})
	r.Record(Event{Kind: Claim})
	r.Record(Event{Kind: PoolCap})
	claims := r.Filter(Claim)
	if len(claims) != 2 {
		t.Errorf("Filter(Claim) = %d", len(claims))
	}
	both := r.Filter(Claim, Yield)
	if len(both) != 3 {
		t.Errorf("Filter(Claim,Yield) = %d", len(both))
	}
	counts := r.Counts()
	if counts[Claim] != 2 || counts[Yield] != 1 || counts[PoolCap] != 1 {
		t.Errorf("Counts = %v", counts)
	}
}

func TestKindStrings(t *testing.T) {
	for k := PeriodStart; k <= FailureRecover; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Error("unknown kind format wrong")
	}
}

func TestDumpAndSummary(t *testing.T) {
	r, _ := NewRecorder(8)
	if r.Summary() != "trace: empty" {
		t.Errorf("empty summary = %q", r.Summary())
	}
	r.Record(Event{At: sim.Microsecond, Kind: Claim, Actor: "engine-1", A: 100, B: 50})
	r.Record(Event{At: 2 * sim.Microsecond, Kind: PeriodStart, Actor: "monitor", A: 1, B: 15700})
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "claim") || !strings.Contains(out, "engine-1") {
		t.Errorf("dump missing fields: %q", out)
	}
	sum := r.Summary()
	if !strings.Contains(sum, "period-start=1") || !strings.Contains(sum, "claim=1") {
		t.Errorf("summary = %q", sum)
	}
}
