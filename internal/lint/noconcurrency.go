package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Noconcurrency enforces the kernel's single-thread discipline: every
// event handler runs to completion before the next fires, so components
// need no locking — and must not introduce goroutines, channels, or sync
// primitives, which would make event interleaving scheduler-dependent.
// Packages are exempted only by leaving the kernel allowlist
// (KernelPackages) deliberately.
var Noconcurrency = &Analyzer{
	Name: "noconcurrency",
	Doc: "forbids go statements, channel operations, select, and sync imports " +
		"inside the single-threaded kernel packages",
	Run: runNoconcurrency,
}

func runNoconcurrency(p *Package) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, p.diag("noconcurrency", pos, format, args...))
	}
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil &&
				(path == "sync" || path == "sync/atomic") {
				report(spec.Pos(), "import of %q in a single-threaded kernel package; "+
					"the kernel runs one event at a time and needs no synchronization", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				report(n.Pos(), "go statement spawns a goroutine inside the single-threaded kernel; "+
					"schedule an event on the sim.Kernel instead")
			case *ast.SendStmt:
				report(n.Pos(), "channel send inside the single-threaded kernel; "+
					"deliver results through direct calls or scheduled events")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					report(n.Pos(), "channel receive inside the single-threaded kernel; "+
						"deliver results through direct calls or scheduled events")
				}
			case *ast.SelectStmt:
				report(n.Pos(), "select statement inside the single-threaded kernel")
			case *ast.ChanType:
				report(n.Pos(), "channel type inside the single-threaded kernel; "+
					"event ordering must come from the kernel queue, not channel scheduling")
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						report(n.Pos(), "range over a channel inside the single-threaded kernel")
					}
				}
			}
			return true
		})
	}
	return out
}
