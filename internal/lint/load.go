package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loader parses and type-checks packages using only the standard
// library: module-internal imports are resolved against packages the
// loader has already checked, standard-library imports go through the
// source importer. No go/packages, no export data, no network.
type Loader struct {
	fset    *token.FileSet
	std     types.ImporterFrom
	checked map[string]*types.Package
}

// NewLoader returns a loader with an empty package cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		checked: make(map[string]*types.Package),
	}
}

// Fset returns the loader's file set (shared by every loaded package).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom, consulting the loader's own
// cache before falling back to the standard-library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if tp, ok := l.checked[path]; ok {
		return tp, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	f, err := os.Open(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// LoadModule loads every package under root (the module root), skipping
// testdata, vendor, and hidden directories, and _test.go files. Packages
// are type-checked in dependency order; the result is sorted by
// module-relative path.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := discoverPackageDirs(root)
	if err != nil {
		return nil, err
	}

	pkgs := make(map[string]*Package, len(dirs)) // by rel
	for _, rel := range dirs {
		p, err := l.parseDir(root, rel, modPath)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs[rel] = p
		}
	}

	order, err := topoSort(pkgs, modPath)
	if err != nil {
		return nil, err
	}
	for _, p := range order {
		if err := l.check(p); err != nil {
			return nil, err
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Rel < order[j].Rel })
	return order, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. Used to load analyzer test fixtures.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	p, err := l.parseFiles(dir, importPath, ".")
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if err := l.check(p); err != nil {
		return nil, err
	}
	return p, nil
}

func discoverPackageDirs(root string) ([]string, error) {
	var rels []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rels = append(rels, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	return rels, nil
}

func (l *Loader) parseDir(root, rel, modPath string) (*Package, error) {
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + rel
	}
	return l.parseFiles(filepath.Join(root, filepath.FromSlash(rel)), importPath, rel)
}

// parseFiles parses the non-test Go files in dir; it returns nil (no
// error) when the directory contains none.
func (l *Loader) parseFiles(dir, importPath, rel string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: importPath, Rel: rel, Fset: l.fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if p.Name == "" {
			p.Name = f.Name.Name
		} else if p.Name != f.Name.Name {
			return nil, fmt.Errorf("lint: %s: mixed packages %s and %s", dir, p.Name, f.Name.Name)
		}
		p.Files = append(p.Files, f)
	}
	if len(p.Files) == 0 {
		return nil, nil
	}
	return p, nil
}

func (p *Package) imports() []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// topoSort orders packages so every module-internal dependency precedes
// its importers.
func topoSort(pkgs map[string]*Package, modPath string) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(pkgs))
	var order []*Package
	var visit func(p *Package, chain []string) error
	visit = func(p *Package, chain []string) error {
		switch state[p.Path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, p.Path), " -> "))
		}
		state[p.Path] = visiting
		for _, imp := range p.imports() {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep, append(chain, p.Path)); err != nil {
					return err
				}
			} else if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				return fmt.Errorf("lint: %s imports %s, which is not in the module tree", p.Path, imp)
			}
		}
		state[p.Path] = done
		order = append(order, p)
		return nil
	}
	rels := make([]string, 0, len(pkgs))
	for rel := range pkgs {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		if err := visit(pkgs[rel], nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check type-checks p and registers it for import by later packages.
func (l *Loader) check(p *Package) error {
	conf := types.Config{Importer: l}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(p.Path, l.fset, p.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", p.Path, err)
	}
	p.Types = tpkg
	p.Info = info
	l.checked[p.Path] = tpkg
	return nil
}
