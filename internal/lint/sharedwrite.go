package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Sharedwrite enforces single-writer ownership of package-level state:
// no function reachable from a parallel worker body (arguments to
// parallel.Pool.Run / parallel.Map) or from kernel event code (any
// function in KernelPackages — kernel events execute on pool workers
// during sharded quanta) may write a package-level variable, unless the
// variable carries an entry in the sharedwrite allowlist declaring who
// the single writer is and why that is safe (DESIGN.md §10).
var Sharedwrite = NewSharedwrite(SharedWriteAllowlist)

// SharedWriteAllowlist declares single-writer ownership for
// package-level variables that are legitimately written from
// worker-reachable code. Key format: "<module-relative package>.<var>",
// e.g. "internal/core.DebugConversion"; the value is the rationale.
// Every entry must match at least one reachable write — stale entries
// are themselves findings. Currently empty: the module keeps all
// worker-reachable state in struct fields owned by a single kernel.
var SharedWriteAllowlist = map[string]string{}

// NewSharedwrite builds the analyzer against a specific allowlist
// (tests use private lists; the shipped Sharedwrite uses
// SharedWriteAllowlist).
func NewSharedwrite(allow map[string]string) *Analyzer {
	return &Analyzer{
		Name: "sharedwrite",
		Doc: "forbids writes to package-level state from code reachable from " +
			"parallel worker bodies or kernel event code unless the variable has " +
			"a single-writer allowlist entry",
		RunModule: func(m *Module) []Diagnostic { return runSharedwrite(m, allow) },
	}
}

func runSharedwrite(m *Module, allow map[string]string) []Diagnostic {
	g := m.Graph()

	var kernelRoots []*FuncNode
	for _, n := range g.Nodes {
		if n.Obj == nil || !matchAny(KernelPackages, n.Pkg.Rel) {
			continue
		}
		if n.Obj.Name() == "init" && n.Obj.Type().(*types.Signature).Recv() == nil {
			continue // package init runs once, single-threaded, before any worker
		}
		kernelRoots = append(kernelRoots, n)
	}
	reached := g.reach([]rootSet{
		{reason: "parallel worker bodies", nodes: g.WorkerRoots()},
		{reason: "kernel event code", nodes: kernelRoots},
	})

	var out []Diagnostic
	used := make(map[string]bool)
	for _, n := range g.Nodes {
		reason, ok := reached[n]
		if !ok {
			continue
		}
		body := n.Body()
		if body == nil {
			continue
		}
		p := n.Pkg
		check := func(lhs ast.Expr) {
			v := packageLevelVar(p, lhs)
			if v == nil {
				return
			}
			owner := m.PackageOf(v.Pkg())
			if owner == nil {
				return // outside the module (stdlib)
			}
			key := owner.Rel + "." + v.Name()
			if _, ok := allow[key]; ok {
				used[key] = true
				return
			}
			out = append(out, p.diag("sharedwrite", lhs.Pos(),
				"write to package-level variable %s from %s (reachable from %s); "+
					"declare single-writer ownership in the sharedwrite allowlist or move the write (DESIGN.md §10)",
				key, n.describe(), reason))
		}
		ast.Inspect(body, func(x ast.Node) bool {
			switch st := x.(type) {
			case *ast.FuncLit:
				return false // nested literals are their own (reachable) nodes
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					check(lhs)
				}
			case *ast.IncDecStmt:
				check(st.X)
			}
			return true
		})
	}

	keys := make([]string, 0, len(allow))
	for key := range allow {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if used[key] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      token.Position{Filename: "(sharedwrite allowlist)", Line: 1, Column: 1},
			Analyzer: "sharedwrite",
			Message:  "allowlist entry \"" + key + "\" matched no reachable write; delete the stale entry",
			Pkg:      ".",
		})
	}
	SortDiagnostics(out)
	return out
}

// packageLevelVar resolves an assignment target to the package-level
// variable it mutates: the base identifier of the expression (unwrapping
// selectors, indexes, derefs) when that identifier names a package-scope
// var. Writes through pointers held in locals are not attributed — a
// documented soundness caveat (DESIGN.md §10).
func packageLevelVar(p *Package, lhs ast.Expr) *types.Var {
	for {
		switch v := lhs.(type) {
		case *ast.ParenExpr:
			lhs = v.X
		case *ast.IndexExpr:
			lhs = v.X
		case *ast.SelectorExpr:
			// Qualified reference to another package's variable
			// (pkg.Var = x): the selector itself names the var.
			if obj, ok := p.Info.Uses[v.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj
			}
			lhs = v.X
		case *ast.StarExpr:
			lhs = v.X
		case *ast.Ident:
			obj, ok := p.Info.Uses[v].(*types.Var)
			if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
				return nil
			}
			return obj
		default:
			return nil
		}
	}
}
