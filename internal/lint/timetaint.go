package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Timetaint tracks wall-clock and global-rand derived values
// interprocedurally into kernel event scheduling. The per-file walltime
// and globalrand analyzers flag the call sites themselves, but a waived
// package (cmd/haechibench may read time.Now) can launder a wall-clock
// value through helper functions into Kernel.Schedule/At/Every/
// RunUntil/RunBefore — which would silently break replayability.
// Timetaint has no waivers: it runs module-wide and follows values
// through any number of calls via two function summaries (taints its
// return value; forwards a parameter into a sink), computed to a
// fixpoint over the module callgraph. The intraprocedural propagation
// is flow-insensitive; values laundered through struct fields or
// captured closure variables are not tracked (DESIGN.md §10).
var Timetaint = &Analyzer{
	Name: "timetaint",
	Doc: "forbids wall-clock/global-rand derived values from reaching kernel " +
		"event scheduling, through any number of calls and waived packages",
	RunModule: runTimetaint,
}

// kernelSinkMethods are the scheduling entry points of a type named
// Kernel (name-matched so fixtures can model the kernel).
var kernelSinkMethods = map[string]bool{
	"Schedule":  true,
	"At":        true,
	"Every":     true,
	"RunUntil":  true,
	"RunBefore": true,
}

type taintSummary struct {
	// returnsTaint: some return value derives from a taint source.
	returnsTaint bool
	// paramToSink[i]: parameter i flows into a kernel scheduling sink
	// (directly or through further calls). Computed for declared
	// functions only — literals are invoked through values the analysis
	// does not resolve.
	paramToSink []bool
}

type taintEnv struct {
	g   *Callgraph
	sum map[*FuncNode]*taintSummary
}

func runTimetaint(m *Module) []Diagnostic {
	g := m.Graph()
	e := &taintEnv{g: g, sum: make(map[*FuncNode]*taintSummary, len(g.Nodes))}
	for _, n := range g.Nodes {
		s := &taintSummary{}
		if n.Obj != nil {
			if sig, ok := n.Obj.Type().(*types.Signature); ok {
				s.paramToSink = make([]bool, sig.Params().Len())
			}
		}
		e.sum[n] = s
	}

	// Summary fixpoint: bits only flip false->true, so iterating until a
	// full pass changes nothing terminates.
	for {
		changed := false
		for _, n := range g.Nodes {
			if n.Body() == nil {
				continue
			}
			s := e.sum[n]
			rt, _ := e.analyze(n, -1, nil)
			if rt && !s.returnsTaint {
				s.returnsTaint = true
				changed = true
			}
			for i := range s.paramToSink {
				if s.paramToSink[i] {
					continue
				}
				if _, rs := e.analyze(n, i, nil); rs {
					s.paramToSink[i] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	var out []Diagnostic
	for _, n := range g.Nodes {
		if n.Body() == nil {
			continue
		}
		p := n.Pkg
		e.analyze(n, -1, func(pos token.Pos, format string, args ...any) {
			out = append(out, p.diag("timetaint", pos, format, args...))
		})
	}
	SortDiagnostics(out)
	return out
}

// analyze runs the flow-insensitive taint pass over n's body. seedParam
// seeds one parameter as tainted (-1 for none). With report set, a final
// pass over the stable taint set emits diagnostics at sink call sites.
func (e *taintEnv) analyze(n *FuncNode, seedParam int, report func(pos token.Pos, format string, args ...any)) (returnsTaint, reachesSink bool) {
	body := n.Body()
	p := n.Pkg
	tainted := make(map[*types.Var]bool)
	var namedResults []*types.Var
	if n.Obj != nil {
		sig := n.Obj.Type().(*types.Signature)
		if seedParam >= 0 && seedParam < sig.Params().Len() {
			tainted[sig.Params().At(seedParam)] = true
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if r := sig.Results().At(i); r.Name() != "" {
				namedResults = append(namedResults, r)
			}
		}
	}

	var exprTainted func(expr ast.Expr) bool
	exprTainted = func(expr ast.Expr) bool {
		switch v := expr.(type) {
		case *ast.Ident:
			obj, ok := p.Info.Uses[v].(*types.Var)
			return ok && tainted[obj]
		case *ast.SelectorExpr:
			return exprTainted(v.X)
		case *ast.CallExpr:
			if isTaintSource(p, v) {
				return true
			}
			if callee := e.calleeNode(p, v); callee != nil && e.sum[callee].returnsTaint {
				return true
			}
			// Method call on a tainted receiver (time.Now().UnixNano())
			// or pass-through of a tainted argument (conversions, min/max).
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && exprTainted(sel.X) {
				return true
			}
			for _, arg := range v.Args {
				if exprTainted(arg) {
					return true
				}
			}
			return false
		case *ast.BinaryExpr:
			return exprTainted(v.X) || exprTainted(v.Y)
		case *ast.ParenExpr:
			return exprTainted(v.X)
		case *ast.UnaryExpr:
			return exprTainted(v.X)
		case *ast.StarExpr:
			return exprTainted(v.X)
		case *ast.IndexExpr:
			return exprTainted(v.X)
		case *ast.SliceExpr:
			return exprTainted(v.X)
		case *ast.TypeAssertExpr:
			return exprTainted(v.X)
		case *ast.KeyValueExpr:
			return exprTainted(v.Value)
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				if exprTainted(elt) {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	markTarget := func(lhs ast.Expr) bool {
		base := lhs
		for {
			switch v := base.(type) {
			case *ast.ParenExpr:
				base = v.X
			case *ast.IndexExpr:
				base = v.X
			case *ast.SelectorExpr:
				base = v.X
			case *ast.StarExpr:
				base = v.X
			default:
				id, ok := base.(*ast.Ident)
				if !ok {
					return false
				}
				obj, _ := p.Info.Uses[id].(*types.Var)
				if obj == nil {
					obj, _ = p.Info.Defs[id].(*types.Var)
				}
				if obj == nil || tainted[obj] {
					return false
				}
				tainted[obj] = true
				return true
			}
		}
	}

	// checkCalls scans one statement tree for sink reachability against
	// the current taint set, reporting when asked.
	checkCalls := func(x ast.Node, rep bool) {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return
		}
		if method, ok := sinkCall(p, call); ok {
			for _, arg := range call.Args {
				if exprTainted(arg) {
					reachesSink = true
					if rep {
						report(call.Pos(),
							"wall-clock/global-rand derived value flows into Kernel.%s; "+
								"event times must come from the kernel clock or a seeded RNG", method)
					}
					break
				}
			}
			return
		}
		callee := e.calleeNode(p, call)
		if callee == nil {
			return
		}
		ps := e.sum[callee].paramToSink
		for i, arg := range call.Args {
			if i >= len(ps) || !ps[i] {
				continue
			}
			if exprTainted(arg) {
				reachesSink = true
				if rep {
					report(call.Pos(),
						"wall-clock/global-rand derived value flows into kernel scheduling via %s; "+
							"event times must come from the kernel clock or a seeded RNG", callee.describe())
				}
				break
			}
		}
	}

	pass := func(rep bool) bool {
		changedLocal := false
		ast.Inspect(body, func(x ast.Node) bool {
			switch st := x.(type) {
			case *ast.FuncLit:
				return false // separate node; captured-var taint untracked
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
					if exprTainted(st.Rhs[0]) {
						for _, lhs := range st.Lhs {
							if markTarget(lhs) {
								changedLocal = true
							}
						}
					}
				} else {
					for i, rhs := range st.Rhs {
						if i < len(st.Lhs) && exprTainted(rhs) {
							if markTarget(st.Lhs[i]) {
								changedLocal = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, val := range st.Values {
					if !exprTainted(val) {
						continue
					}
					if len(st.Values) == 1 && len(st.Names) > 1 {
						for _, name := range st.Names {
							if markTarget(name) {
								changedLocal = true
							}
						}
					} else if i < len(st.Names) {
						if markTarget(st.Names[i]) {
							changedLocal = true
						}
					}
				}
			case *ast.RangeStmt:
				if exprTainted(st.X) {
					if st.Key != nil && markTarget(st.Key) {
						changedLocal = true
					}
					if st.Value != nil && markTarget(st.Value) {
						changedLocal = true
					}
				}
			case *ast.ReturnStmt:
				if len(st.Results) == 0 {
					for _, r := range namedResults {
						if tainted[r] {
							returnsTaint = true
						}
					}
				}
				for _, res := range st.Results {
					if exprTainted(res) {
						returnsTaint = true
					}
				}
			}
			checkCalls(x, rep)
			return true
		})
		return changedLocal
	}

	for pass(false) {
	}
	if report != nil {
		reachesSink = false
		pass(true)
	}
	return returnsTaint, reachesSink
}

// calleeNode resolves a call to the module function it statically
// invokes (named function, method, or immediately-invoked literal).
func (e *taintEnv) calleeNode(p *Package, call *ast.CallExpr) *FuncNode {
	return e.g.funcValue(p, call.Fun)
}

// isTaintSource matches calls that introduce wall-clock or global-rand
// values: the walltime analyzer's banned time functions, and top-level
// math/rand draws that are not the approved seeded constructors.
func isTaintSource(p *Package, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch path := fn.Pkg().Path(); path {
	case "time":
		_, banned := bannedWalltime[fn.Name()]
		return banned
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return false // methods on a plumbed, seeded *rand.Rand
		}
		name := fn.Name()
		return !sourceConstructors[name] && name != "NewZipf" && name != "New"
	}
	return false
}

// sinkCall matches method calls Schedule/At/Every/RunUntil/RunBefore on
// a receiver type named Kernel.
func sinkCall(p *Package, call *ast.CallExpr) (method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	fn, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || !kernelSinkMethods[fn.Name()] {
		return "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || namedTypeName(sig.Recv().Type()) != "Kernel" {
		return "", false
	}
	return fn.Name(), true
}
