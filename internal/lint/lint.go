// Package lint implements haechilint, the static-analysis suite that
// machine-checks the determinism contract of the simulated-RDMA stack
// (DESIGN.md, "Determinism contract").
//
// The whole reproduction rests on the promise that the fabric is a
// deterministic discrete-event simulation: every experiment is exactly
// replayable from a seed. One stray time.Now, global math/rand call, or
// unordered map iteration in a scheduling path silently breaks that, so
// this package turns the contract into a machine-checked invariant.
//
// The suite is stdlib-only (go/parser, go/ast, go/types); it adds no
// module dependencies and runs offline. Nine analyzers ship by default.
// Six are per-file syntactic checks:
//
//   - walltime: wall-clock time is forbidden; simulated time comes from
//     the sim.Kernel clock.
//   - globalrand: the process-global math/rand source is forbidden;
//     randomness flows through the kernel RNG or an explicitly seeded
//     *rand.Rand.
//   - maporder: map iteration whose body schedules events, appends
//     results, sends on channels, or accumulates floats must sort its
//     keys first or carry a //lint:ordered justification.
//   - noconcurrency: the single-threaded kernel packages may not use
//     goroutines, channels, or sync primitives.
//   - floateq: ==/!= between floating-point operands in QoS/capacity
//     math is rounding-order fragile (exact-zero sentinel checks are
//     exempt).
//   - parallelimport: internal/parallel (the worker pool) may only be
//     imported by the documented orchestration waivers.
//
// Three are whole-module interprocedural checks built on a conservative
// callgraph (DESIGN.md §10):
//
//   - sharedwrite: no write to package-level state from code reachable
//     from parallel worker bodies or kernel event code, unless the
//     variable carries a single-writer allowlist entry.
//   - timetaint: no wall-clock / global-rand derived value may flow —
//     through any number of calls, including waived packages — into
//     kernel event scheduling (Kernel.Schedule/At/Every/RunUntil/
//     RunBefore).
//   - waiverdrift: every Exclude waiver in the active rule set must be
//     live (match a package where the analyzer actually reports);
//     dead or over-broad waivers are findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Pkg is the module-relative path of the package the diagnostic is
	// attributed to ("." for module-level findings such as waiverdrift).
	// Pattern filtering in cmd/haechilint keys on it.
	Pkg string
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check over a type-checked package (Run) or over the
// whole module at once (RunModule). Exactly one of the two is set.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
	// RunModule runs once per lint invocation with every package loaded;
	// interprocedural analyzers (sharedwrite, timetaint, waiverdrift)
	// live here. Implementations must return diagnostics already sorted
	// (SortDiagnostics) so output never depends on map iteration order.
	RunModule func(*Module) []Diagnostic
}

// Package is a parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the full import path; Rel is the module-relative directory
	// ("." for the module root).
	Path string
	Rel  string
	Name string
	Fset *token.FileSet

	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

func (p *Package) diag(analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
		Pkg:      p.Rel,
	}
}

// file returns the AST file containing pos.
func (p *Package) file(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// orderedAnnotation is the escape hatch for maporder: a justified,
// deliberately unordered map iteration.
const orderedAnnotation = "lint:ordered"

// hasOrderedAnnotation reports whether a //lint:ordered comment is
// attached to the statement at pos: trailing on the same line, or on the
// line directly above it.
func (p *Package) hasOrderedAnnotation(pos token.Pos) bool {
	f := p.file(pos)
	if f == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, orderedAnnotation) {
				continue
			}
			at := p.Fset.Position(c.Pos()).Line
			if at == line || at == line-1 {
				return true
			}
		}
	}
	return false
}

// parentMap records each node's syntactic parent within a file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	m := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}

// Rule scopes an analyzer to part of the module tree.
type Rule struct {
	Analyzer *Analyzer
	// Include lists module-relative path prefixes the analyzer applies
	// to; empty means every package.
	Include []string
	// Exclude lists module-relative path prefixes exempted from the
	// analyzer. Every entry is a standing, documented waiver.
	Exclude []string
}

// Applies reports whether the rule covers the package at module-relative
// path rel.
func (r Rule) Applies(rel string) bool {
	if matchAny(r.Exclude, rel) {
		return false
	}
	return len(r.Include) == 0 || matchAny(r.Include, rel)
}

func matchAny(prefixes []string, rel string) bool {
	for _, pfx := range prefixes {
		if rel == pfx || strings.HasPrefix(rel, pfx+"/") {
			return true
		}
	}
	return false
}

// KernelPackages lists the single-threaded discrete-event packages: code
// here runs entirely inside sim.Kernel event handlers, so it needs no
// locking — and must not introduce any concurrency. The noconcurrency
// rule now covers the whole module (anything NOT listed here is also
// single-threaded unless it carries a documented waiver in
// DefaultRules); the list remains the canonical statement of which
// packages form the kernel proper.
var KernelPackages = []string{
	"internal/sim",
	"internal/rdma",
	"internal/core",
	"internal/kvstore",
	"internal/workload",
	"internal/experiments",
	"internal/multiserver",
	"internal/metrics",
	"internal/cluster",
	"internal/trace",
}

// Module bundles every loaded package with the active rule set for the
// whole-module analyzers. The callgraph is built on first use and shared
// across analyzers.
type Module struct {
	// Packages is sorted by Rel (the loader's order).
	Packages []*Package
	// Rules is the rule set the run was invoked with; waiverdrift audits
	// it.
	Rules []Rule

	graph   *Callgraph
	pkgOf   map[*types.Package]*Package
	pkgInit bool
}

// NewModule prepares pkgs for module-level analysis under rules.
func NewModule(pkgs []*Package, rules []Rule) *Module {
	return &Module{Packages: pkgs, Rules: rules}
}

// Graph returns the module callgraph, building it on first call.
func (m *Module) Graph() *Callgraph {
	if m.graph == nil {
		m.graph = buildCallgraph(m.Packages)
	}
	return m.graph
}

// PackageOf maps a type-checker package back to the loaded *Package, or
// nil for packages outside the module (stdlib).
func (m *Module) PackageOf(tp *types.Package) *Package {
	if !m.pkgInit {
		m.pkgOf = make(map[*types.Package]*Package, len(m.Packages))
		for _, p := range m.Packages {
			m.pkgOf[p.Types] = p
		}
		m.pkgInit = true
	}
	return m.pkgOf[tp]
}

// DefaultRules is the shipped haechilint configuration. Scope waivers:
//
//   - walltime excludes cmd/haechibench: it measures the real runtime of
//     the tool itself (how long a simulation takes to execute), not
//     simulated time, so wall-clock use there is correct.
//   - noconcurrency covers the entire module, with two standing waivers
//     (DESIGN.md §6): internal/parallel is the one deliberate
//     concurrency boundary (the sweep runner that executes independent
//     kernels on worker goroutines and merges results by input index),
//     and cmd/haechibench keeps an atomic events counter fed by Observe
//     callbacks that fire concurrently under parallel sweeps.
//   - parallelimport scopes that boundary: only the orchestration
//     layers that drive whole kernels from outside may import
//     internal/parallel — internal/experiments (parameter sweeps),
//     internal/cluster (the profiling fan-out), and internal/sim/shard
//     (the sharded-kernel coordinator, whose quantum protocol keeps
//     results byte-identical at any worker count). See DESIGN.md §6.
//
// The three interprocedural analyzers (sharedwrite, timetaint,
// waiverdrift) run module-wide with no waivers: sharedwrite's escape
// hatch is its own allowlist (DESIGN.md §10), timetaint deliberately
// sees through the walltime waiver, and waiverdrift audits this very
// rule set.
func DefaultRules() []Rule {
	return []Rule{
		{Analyzer: Walltime, Exclude: []string{"cmd/haechibench"}},
		{Analyzer: Globalrand},
		{Analyzer: Maporder},
		{Analyzer: Noconcurrency, Exclude: []string{"internal/parallel", "cmd/haechibench"}},
		{Analyzer: Floateq, Include: []string{".", "internal"}},
		{Analyzer: Parallelimport, Exclude: []string{
			"internal/experiments", "internal/cluster", "internal/sim/shard",
		}},
		{Analyzer: Sharedwrite},
		{Analyzer: Timetaint},
		{Analyzer: Waiverdrift},
	}
}

// Analyzers returns the nine shipped analyzers, unscoped.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Walltime, Globalrand, Maporder, Noconcurrency, Floateq, Parallelimport,
		Sharedwrite, Timetaint, Waiverdrift,
	}
}

// Run applies every rule to every package it covers and returns the
// diagnostics sorted by position. Per-package analyzers run on each
// package their rule covers; module analyzers run once over everything
// (they see waived packages too) and their diagnostics are then filtered
// by rule scope on the attributed package.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	m := NewModule(pkgs, rules)
	var out []Diagnostic
	for _, r := range rules {
		switch {
		case r.Analyzer.Run != nil:
			for _, p := range pkgs {
				if r.Applies(p.Rel) {
					out = append(out, r.Analyzer.Run(p)...)
				}
			}
		case r.Analyzer.RunModule != nil:
			for _, d := range r.Analyzer.RunModule(m) {
				if r.Applies(d.Pkg) {
					out = append(out, d)
				}
			}
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer,
// message — a total order, so output never depends on map iteration or
// traversal order anywhere upstream.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
