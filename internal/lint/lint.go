// Package lint implements haechilint, the static-analysis suite that
// machine-checks the determinism contract of the simulated-RDMA stack
// (DESIGN.md, "Determinism contract").
//
// The whole reproduction rests on the promise that the fabric is a
// deterministic discrete-event simulation: every experiment is exactly
// replayable from a seed. One stray time.Now, global math/rand call, or
// unordered map iteration in a scheduling path silently breaks that, so
// this package turns the contract into a machine-checked invariant.
//
// The suite is stdlib-only (go/parser, go/ast, go/types); it adds no
// module dependencies and runs offline. Six analyzers ship by default:
//
//   - walltime: wall-clock time is forbidden; simulated time comes from
//     the sim.Kernel clock.
//   - globalrand: the process-global math/rand source is forbidden;
//     randomness flows through the kernel RNG or an explicitly seeded
//     *rand.Rand.
//   - maporder: map iteration whose body schedules events, appends
//     results, sends on channels, or accumulates floats must sort its
//     keys first or carry a //lint:ordered justification.
//   - noconcurrency: the single-threaded kernel packages may not use
//     goroutines, channels, or sync primitives.
//   - floateq: ==/!= between floating-point operands in QoS/capacity
//     math is rounding-order fragile (exact-zero sentinel checks are
//     exempt).
//   - parallelimport: internal/parallel (the worker pool) may only be
//     imported by the documented orchestration waivers.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
}

// Package is a parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the full import path; Rel is the module-relative directory
	// ("." for the module root).
	Path string
	Rel  string
	Name string
	Fset *token.FileSet

	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

func (p *Package) diag(analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// file returns the AST file containing pos.
func (p *Package) file(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// orderedAnnotation is the escape hatch for maporder: a justified,
// deliberately unordered map iteration.
const orderedAnnotation = "lint:ordered"

// hasOrderedAnnotation reports whether a //lint:ordered comment is
// attached to the statement at pos: trailing on the same line, or on the
// line directly above it.
func (p *Package) hasOrderedAnnotation(pos token.Pos) bool {
	f := p.file(pos)
	if f == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, orderedAnnotation) {
				continue
			}
			at := p.Fset.Position(c.Pos()).Line
			if at == line || at == line-1 {
				return true
			}
		}
	}
	return false
}

// parentMap records each node's syntactic parent within a file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	m := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}

// Rule scopes an analyzer to part of the module tree.
type Rule struct {
	Analyzer *Analyzer
	// Include lists module-relative path prefixes the analyzer applies
	// to; empty means every package.
	Include []string
	// Exclude lists module-relative path prefixes exempted from the
	// analyzer. Every entry is a standing, documented waiver.
	Exclude []string
}

// Applies reports whether the rule covers the package at module-relative
// path rel.
func (r Rule) Applies(rel string) bool {
	if matchAny(r.Exclude, rel) {
		return false
	}
	return len(r.Include) == 0 || matchAny(r.Include, rel)
}

func matchAny(prefixes []string, rel string) bool {
	for _, pfx := range prefixes {
		if rel == pfx || strings.HasPrefix(rel, pfx+"/") {
			return true
		}
	}
	return false
}

// KernelPackages lists the single-threaded discrete-event packages: code
// here runs entirely inside sim.Kernel event handlers, so it needs no
// locking — and must not introduce any concurrency. The noconcurrency
// rule now covers the whole module (anything NOT listed here is also
// single-threaded unless it carries a documented waiver in
// DefaultRules); the list remains the canonical statement of which
// packages form the kernel proper.
var KernelPackages = []string{
	"internal/sim",
	"internal/rdma",
	"internal/core",
	"internal/kvstore",
	"internal/workload",
	"internal/experiments",
	"internal/multiserver",
	"internal/metrics",
	"internal/cluster",
	"internal/trace",
}

// DefaultRules is the shipped haechilint configuration. Scope waivers:
//
//   - walltime excludes cmd/haechibench: it measures the real runtime of
//     the tool itself (how long a simulation takes to execute), not
//     simulated time, so wall-clock use there is correct.
//   - noconcurrency covers the entire module, with two standing waivers
//     (DESIGN.md §6): internal/parallel is the one deliberate
//     concurrency boundary (the sweep runner that executes independent
//     kernels on worker goroutines and merges results by input index),
//     and cmd/haechibench keeps an atomic events counter fed by Observe
//     callbacks that fire concurrently under parallel sweeps.
//   - parallelimport scopes that boundary: only the orchestration
//     layers that drive whole kernels from outside may import
//     internal/parallel — internal/experiments (parameter sweeps),
//     internal/cluster (the profiling fan-out), and internal/sim/shard
//     (the sharded-kernel coordinator, whose quantum protocol keeps
//     results byte-identical at any worker count). See DESIGN.md §6.
func DefaultRules() []Rule {
	return []Rule{
		{Analyzer: Walltime, Exclude: []string{"cmd/haechibench"}},
		{Analyzer: Globalrand},
		{Analyzer: Maporder},
		{Analyzer: Noconcurrency, Exclude: []string{"internal/parallel", "cmd/haechibench"}},
		{Analyzer: Floateq, Include: []string{".", "internal"}},
		{Analyzer: Parallelimport, Exclude: []string{
			"internal/experiments", "internal/cluster", "internal/sim/shard",
		}},
	}
}

// Analyzers returns the six shipped analyzers, unscoped.
func Analyzers() []*Analyzer {
	return []*Analyzer{Walltime, Globalrand, Maporder, Noconcurrency, Floateq, Parallelimport}
}

// Run applies every rule to every package it covers and returns the
// diagnostics sorted by position.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		for _, r := range rules {
			if r.Applies(p.Rel) {
				out = append(out, r.Analyzer.Run(p)...)
			}
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
