package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Floateq flags ==/!= between floating-point operands in the QoS and
// capacity math: token counts, capacity estimates, and rates accumulate
// rounding, so exact comparison silently turns into a seed-dependent
// branch. Comparisons against an exact-zero constant are exempt — the
// float zero value is exact and the tree uses it as an "unset" sentinel
// (e.g. Config.Sigma == 0).
var Floateq = &Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= between floating-point operands (exact-zero sentinel " +
		"checks are exempt); compare against a tolerance instead",
	Run: runFloateq,
}

func runFloateq(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.TypeOf(be.X)) && !isFloat(p.Info.TypeOf(be.Y)) {
				return true
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			out = append(out, p.diag("floateq", be.OpPos,
				"floating-point %s is rounding-order fragile; compare against a tolerance "+
					"(only the exact zero sentinel may be compared directly)", be.Op))
			return true
		})
	}
	return out
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time numeric constant equal
// to exactly zero.
func isZeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
