package lint

import (
	"go/ast"
	"go/types"
)

// bannedWalltime maps forbidden time-package functions to the simulated
// replacement. Durations and constants (time.Duration, time.Millisecond)
// are allowed — only the functions that read or wait on the machine
// clock break replayability.
var bannedWalltime = map[string]string{
	"Now":       "sim.Kernel.Now",
	"Since":     "arithmetic on sim.Time",
	"Until":     "arithmetic on sim.Time",
	"Sleep":     "sim.Kernel.Schedule",
	"After":     "sim.Kernel.Schedule",
	"AfterFunc": "sim.Kernel.Schedule",
	"NewTimer":  "sim.Kernel.Schedule",
	"NewTicker": "sim.Kernel.Every",
	"Tick":      "sim.Kernel.Every",
}

// Walltime forbids reading or waiting on the machine clock in simulation
// code: one time.Now in a scheduling path makes runs unreplayable.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "forbids wall-clock time (time.Now/Since/Sleep/After/NewTimer/...); " +
		"simulated time must come from the sim.Kernel clock",
	Run: runWalltime,
}

func runWalltime(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if repl, banned := bannedWalltime[fn.Name()]; banned {
				out = append(out, p.diag("walltime", sel.Pos(),
					"time.%s reads the wall clock and breaks replayability; use %s", fn.Name(), repl))
			}
			return true
		})
	}
	return out
}
