package lint

// A conservative whole-module callgraph over the stdlib-only loader.
// Nodes are declared functions/methods plus every function literal;
// edges are "may call": a function reference anywhere in a body counts
// as a call, because a referenced function value can be invoked later
// through a variable, field, or map the analysis cannot see through.
// That over-approximation is what makes reachability (sharedwrite) and
// summary propagation (timetaint) sound for the patterns this module
// actually uses; the residual blind spots are documented in DESIGN.md
// §10.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncNode is one callgraph node: a declared function/method, or a
// single function literal (literals get their own node so worker bodies
// passed to parallel.Pool/parallel.Map can be roots).
type FuncNode struct {
	Pkg  *Package
	Obj  *types.Func   // nil for function literals
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions

	edges []*FuncNode // deduplicated, in first-reference order
}

// Body returns the function body, or nil for bodiless declarations.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Pos is the declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// describe names the node for diagnostics.
func (n *FuncNode) describe() string {
	if n.Obj != nil {
		return n.Obj.Name()
	}
	return fmt.Sprintf("func literal at line %d", n.Pkg.Fset.Position(n.Lit.Pos()).Line)
}

// Callgraph is the module-wide graph. Nodes is deterministic: packages
// in loader order (sorted by Rel), files in parse order, declarations in
// position order.
type Callgraph struct {
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// initRefs lists, per package, the function nodes referenced from
	// package-level variable initializers. Such functions (init-time
	// registered callbacks, e.g. the experiments registry) become
	// reachable as soon as any function of the package does.
	initRefs map[*Package][]*FuncNode
}

func buildCallgraph(pkgs []*Package) *Callgraph {
	g := &Callgraph{
		byObj:    make(map[*types.Func]*FuncNode),
		byLit:    make(map[*ast.FuncLit]*FuncNode),
		initRefs: make(map[*Package][]*FuncNode),
	}
	// Pass 1: create every node so cross-package references resolve.
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				switch d := x.(type) {
				case *ast.FuncDecl:
					fn, _ := p.Info.Defs[d.Name].(*types.Func)
					n := &FuncNode{Pkg: p, Obj: fn, Decl: d}
					g.Nodes = append(g.Nodes, n)
					if fn != nil {
						g.byObj[fn] = n
					}
				case *ast.FuncLit:
					n := &FuncNode{Pkg: p, Lit: d}
					g.Nodes = append(g.Nodes, n)
					g.byLit[d] = n
				}
				return true
			})
		}
	}
	// Pass 2: edges from each node's immediate body (nested literals are
	// their own nodes and get an edge instead of inlined references),
	// plus the per-package initializer reference lists.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, _ := p.Info.Defs[d.Name].(*types.Func)
					if n := g.byObj[fn]; n != nil && d.Body != nil {
						g.collectEdges(p, d.Body, n)
					}
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, val := range vs.Values {
							g.collectInitRefs(p, val)
						}
					}
				}
			}
		}
	}
	return g
}

// collectEdges adds an edge from n to every function referenced in body,
// stopping at nested function literals (edge to the literal node, whose
// own body is walked when the literal's node is processed — which
// happens here too, recursively, since literal nodes never appear as
// top-level decls).
func (g *Callgraph) collectEdges(p *Package, body ast.Node, n *FuncNode) {
	seen := make(map[*FuncNode]bool)
	add := func(t *FuncNode) {
		if t != nil && t != n && !seen[t] {
			seen[t] = true
			n.edges = append(n.edges, t)
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			lit := g.byLit[v]
			add(lit)
			if lit != nil {
				g.collectEdges(p, v.Body, lit)
			}
			return false
		case *ast.Ident:
			if fn, ok := p.Info.Uses[v].(*types.Func); ok {
				add(g.byObj[fn])
			}
		}
		return true
	})
}

// collectInitRefs records function references inside a package-level
// variable initializer expression.
func (g *Callgraph) collectInitRefs(p *Package, expr ast.Expr) {
	ast.Inspect(expr, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			lit := g.byLit[v]
			if lit != nil {
				g.initRefs[p] = append(g.initRefs[p], lit)
				g.collectEdges(p, v.Body, lit)
			}
			return false
		case *ast.Ident:
			if fn, ok := p.Info.Uses[v].(*types.Func); ok {
				if t := g.byObj[fn]; t != nil {
					g.initRefs[p] = append(g.initRefs[p], t)
				}
			}
		}
		return true
	})
}

// WorkerRoots returns the function nodes passed as worker bodies at
// parallel.Pool.Run / parallel.Map call sites anywhere in the module
// (any package whose import path ends in "parallel" counts, so fixtures
// can model the pool). Arguments whose function value the analysis
// cannot resolve (an arbitrary expression yielding a func) are skipped —
// a documented soundness caveat; the module passes literals, named
// functions, and bound methods only.
func (g *Callgraph) WorkerRoots() []*FuncNode {
	var roots []*FuncNode
	seen := make(map[*FuncNode]bool)
	for _, n := range g.Nodes {
		body := n.Body()
		if body == nil {
			continue
		}
		p := n.Pkg
		ast.Inspect(body, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok && x != ast.Node(n.Lit) {
				return false // nested literal: scanned as its own node
			}
			call, ok := x.(*ast.CallExpr)
			if !ok || !isParallelWorkerCall(p, call) {
				return true
			}
			for _, arg := range call.Args {
				t := g.funcValue(p, arg)
				if t != nil && !seen[t] {
					seen[t] = true
					roots = append(roots, t)
				}
			}
			return true
		})
	}
	return roots
}

// funcValue resolves an expression to a callgraph node when the
// expression statically denotes a function: a literal, a named function,
// or a (possibly bound) method.
func (g *Callgraph) funcValue(p *Package, expr ast.Expr) *FuncNode {
	switch v := expr.(type) {
	case *ast.FuncLit:
		return g.byLit[v]
	case *ast.Ident:
		if fn, ok := p.Info.Uses[v].(*types.Func); ok {
			return g.byObj[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[v.Sel].(*types.Func); ok {
			return g.byObj[fn]
		}
	case *ast.ParenExpr:
		return g.funcValue(p, v.X)
	}
	return nil
}

// isParallelWorkerCall matches parallel.Map(...) and (*parallel.Pool).Run(...).
func isParallelWorkerCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || pathBase(fn.Pkg().Path()) != "parallel" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return fn.Name() == "Map"
	}
	return fn.Name() == "Run" && namedTypeName(sig.Recv().Type()) == "Pool"
}

// rootSet seeds a reachability walk; reason labels diagnostics.
type rootSet struct {
	reason string
	nodes  []*FuncNode
}

// reach walks edges breadth-first from the root sets and returns every
// node reached, tagged with the reason of the first root set to reach it
// (deterministic: sets and their nodes are visited in order). Reaching
// any function of a package also reaches the functions referenced from
// that package's var initializers (init-registered callbacks).
func (g *Callgraph) reach(sets []rootSet) map[*FuncNode]string {
	reached := make(map[*FuncNode]string)
	pkgSeen := make(map[*Package]bool)
	var queue []*FuncNode
	visit := func(n *FuncNode, reason string) {
		if n == nil {
			return
		}
		if _, ok := reached[n]; ok {
			return
		}
		reached[n] = reason
		queue = append(queue, n)
	}
	for _, s := range sets {
		for _, n := range s.nodes {
			visit(n, s.reason)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		reason := reached[n]
		if !pkgSeen[n.Pkg] {
			pkgSeen[n.Pkg] = true
			for _, t := range g.initRefs[n.Pkg] {
				visit(t, reason)
			}
		}
		for _, t := range n.edges {
			visit(t, reason)
		}
	}
	return reached
}

// namedTypeName returns the name of the (possibly pointer-wrapped) named
// type, or "".
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
