package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `for range` over a map when the loop body is
// order-sensitive: it schedules simulation events, sends or appends
// results, or accumulates floating-point values. Go randomizes map
// iteration order per run, so any of those turns a replayable simulation
// into a different one each execution. Sort the keys into a slice first,
// or — when the order provably cannot matter (e.g. the result is sorted
// immediately afterwards) — annotate the loop with `//lint:ordered
// <why>` on or directly above the for statement.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration whose body schedules events, appends/sends results, " +
		"or accumulates floats; sort keys first or annotate with //lint:ordered",
	Run: runMaporder,
}

// schedulingMethods are method names that enqueue work on the
// simulation kernel; calling one per map entry makes the event order
// map-order dependent. A callback argument is also required, which
// distinguishes Kernel.At(t, fn) from getters like Timer.At().
var schedulingMethods = map[string]bool{
	"Schedule": true,
	"At":       true,
	"Every":    true,
}

func runMaporder(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if p.hasOrderedAnnotation(rs.For) {
				return true
			}
			if hazard := mapLoopHazard(p, rs, sortedAfter(p, parents, rs)); hazard != "" {
				out = append(out, p.diag("maporder", rs.For,
					"map iteration order is randomized per run, and this loop body %s; "+
						"sort the keys into a slice first or annotate with //lint:ordered <why>", hazard))
			}
			return true
		})
	}
	return out
}

// mapLoopHazard describes the first order-sensitive operation found in
// the body of a map-range loop, or "" if the body is order-neutral.
// sorted holds slices that are sorted immediately after the loop;
// appending to those is the sanctioned collect-then-sort idiom.
func mapLoopHazard(p *Package, rs *ast.RangeStmt, sorted map[types.Object]bool) string {
	var hazard string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && schedulingMethods[sel.Sel.Name] &&
				p.Info.Selections[sel] != nil && // a method call, not a package function
				hasFuncArg(p, n) {
				hazard = "schedules simulation events (." + sel.Sel.Name + ")"
			}
		case *ast.SendStmt:
			hazard = "sends on a channel"
		case *ast.AssignStmt:
			hazard = assignHazard(p, rs, n, sorted)
		}
		return hazard == ""
	})
	return hazard
}

// assignHazard classifies an assignment inside a map-range body:
// appending to a slice that outlives the loop, or compound float
// accumulation (rounding makes float addition order-dependent; exact
// integer accumulation is commutative and fine).
func assignHazard(p *Package, rs *ast.RangeStmt, as *ast.AssignStmt, sorted map[types.Object]bool) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if isFloat(p.Info.TypeOf(lhs)) {
				return "accumulates floating-point values"
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			if !isAppendCall(p, rhs) || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil || sorted[obj] {
				continue
			}
			if obj.Pos() < rs.Body.Pos() || obj.Pos() > rs.Body.End() {
				return "appends to a slice declared outside the loop"
			}
		}
	}
	return ""
}

// sortedAfter collects the slices passed to sort/slices calls in the
// statements immediately following the map-range loop: `for k := range m
// { keys = append(keys, k) }; sort.Strings(keys)` is the canonical
// deterministic iteration idiom and must not be flagged.
func sortedAfter(p *Package, parents map[ast.Node]ast.Node, rs *ast.RangeStmt) map[types.Object]bool {
	var stmts []ast.Stmt
	switch blk := parents[rs].(type) {
	case *ast.BlockStmt:
		stmts = blk.List
	case *ast.CaseClause:
		stmts = blk.Body
	case *ast.CommClause:
		stmts = blk.Body
	default:
		return nil
	}
	idx := -1
	for i, s := range stmts {
		if s == ast.Stmt(rs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	sorted := make(map[types.Object]bool)
	for _, s := range stmts[idx+1:] {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			break
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !isSortCall(p, call.Fun) {
			break
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := p.Info.ObjectOf(id); obj != nil {
				sorted[obj] = true
				continue
			}
		}
		break
	}
	return sorted
}

// isSortCall reports whether fun selects a function from package sort or
// slices.
func isSortCall(p *Package, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "sort" || path == "slices"
}

// hasFuncArg reports whether any argument of the call is a function
// value (the callback being scheduled).
func hasFuncArg(p *Package, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := p.Info.TypeOf(arg); t != nil {
			if _, ok := t.Underlying().(*types.Signature); ok {
				return true
			}
		}
	}
	return false
}

func isAppendCall(p *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
