package lint_test

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/lint"
)

// TestParallelimport drives the analyzer over in-memory sources. It
// reads only the files' import declarations, so no type-checking is
// needed — which also lets the fixture import the module path without
// the test loader having to resolve it.
func TestParallelimport(t *testing.T) {
	const bad = `package fixture

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/parallel"
)

var _ = fmt.Sprint
var _ = parallel.Map
`
	const good = `package fixture

import "fmt"

var _ = fmt.Sprint
`
	run := func(src string) []lint.Diagnostic {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		p := &lint.Package{Path: "fixture", Rel: "internal/kvstore", Name: "fixture", Fset: fset}
		p.Files = append(p.Files, f)
		return lint.Parallelimport.Run(p)
	}

	diags := run(bad)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "parallelimport" {
		t.Errorf("analyzer = %q", diags[0].Analyzer)
	}
	if !strings.Contains(diags[0].Message, "internal/parallel") ||
		!strings.Contains(diags[0].Message, "DESIGN.md") {
		t.Errorf("message %q should name the import and point at the waiver list", diags[0].Message)
	}
	if diags[0].Pos.Line != 6 {
		t.Errorf("diagnostic at line %d, want 6", diags[0].Pos.Line)
	}

	if diags := run(good); len(diags) != 0 {
		t.Errorf("clean file produced diagnostics: %v", diags)
	}
}

// TestParallelimportDefaultScope pins the shipped waiver list: the rule
// must exclude exactly the orchestration packages documented in
// DESIGN.md §6 and apply everywhere else.
func TestParallelimportDefaultScope(t *testing.T) {
	var rule *lint.Rule
	for _, r := range lint.DefaultRules() {
		if r.Analyzer == lint.Parallelimport {
			r := r
			rule = &r
		}
	}
	if rule == nil {
		t.Fatal("parallelimport missing from DefaultRules")
	}
	for _, rel := range []string{"internal/experiments", "internal/cluster", "internal/sim/shard"} {
		if rule.Applies(rel) {
			t.Errorf("rule applies to waived package %s", rel)
		}
	}
	for _, rel := range []string{"internal/sim", "internal/rdma", "internal/core", "internal/kvstore", "cmd/haechibench"} {
		if !rule.Applies(rel) {
			t.Errorf("rule does not apply to %s", rel)
		}
	}
}
