package lint

import (
	"strconv"
	"strings"
)

// Parallelimport confines the module's one concurrency primitive:
// internal/parallel (the worker pool and sweep runner) may only be
// imported by the short list of orchestration layers that drive whole
// kernels from outside — the experiment sweeps, the cluster's profiling
// fan-out, and the sharded-kernel coordinator. Everything else runs
// inside a single kernel's event loop, where pulling in the pool would
// reintroduce exactly the scheduler-dependent interleaving the
// noconcurrency rule exists to forbid. Each excluded package is a
// standing, documented waiver (DESIGN.md §6).
var Parallelimport = &Analyzer{
	Name: "parallelimport",
	Doc: "forbids importing internal/parallel outside the documented " +
		"orchestration waivers (experiment sweeps, cluster profiling, shard coordinator)",
	Run: runParallelimport,
}

func runParallelimport(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "internal/parallel" || strings.HasSuffix(path, "/internal/parallel") {
				out = append(out, p.diag("parallelimport", spec.Pos(),
					"import of %q outside the documented concurrency waivers; "+
						"simulation code runs single-threaded inside a kernel — orchestrate "+
						"parallelism from the waived packages (DESIGN.md §6) or stay sequential", path))
			}
		}
	}
	return out
}
