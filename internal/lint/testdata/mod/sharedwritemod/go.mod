module sharedwritemod

go 1.22
