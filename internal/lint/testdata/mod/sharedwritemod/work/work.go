// Package work seeds sharedwrite violations: package-level writes
// reachable from worker bodies, directly and through a helper, plus an
// allowlisted variable and a sequential-only write that must stay
// silent.
package work

import "sharedwritemod/parallel"

var counter int // written directly from a Pool.Run worker body
var total int   // written via a helper called from the worker body
var allowed int // allowlisted in the analyzer test: stays silent there
var safe int    // written only from sequential code: always silent

func bump() { total++ }

// Sweep fans work out; the literals below are worker roots.
func Sweep(p *parallel.Pool) {
	p.Run(4, func(i int) {
		counter++
		bump()
	})
	_ = parallel.Map(2, 4, func(i int) error {
		allowed = i
		return nil
	})
}

// Sequential is not reachable from any worker body.
func Sequential() { safe = 1 }
