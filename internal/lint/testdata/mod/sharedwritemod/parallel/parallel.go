// Package parallel models the real worker pool's API surface so the
// sharedwrite analyzer can find worker roots by shape (a package whose
// import path ends in "parallel" exposing Map and Pool.Run).
package parallel

// Pool is a fixed-size worker pool.
type Pool struct{ workers int }

// NewPool returns a pool of n workers.
func NewPool(n int) *Pool { return &Pool{workers: n} }

// Run executes job(0..n-1) on the pool workers.
func (p *Pool) Run(n int, job func(int)) {
	for i := 0; i < n; i++ {
		job(i)
	}
}

// Map runs job(0..n-1) on up to workers goroutines.
func Map(workers, n int, job func(int) error) error {
	for i := 0; i < n; i++ {
		if err := job(i); err != nil {
			return err
		}
	}
	return nil
}
