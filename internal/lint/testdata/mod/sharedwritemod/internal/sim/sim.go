// Package sim sits at a KernelPackages path: every function here is a
// kernel-event root, so its package-level write is a finding even
// though no worker references it.
package sim

// Clock is package-level kernel state with two potential writers once
// kernels run on pool workers.
var Clock int64

// Advance is kernel event code writing package state.
func Advance(d int64) { Clock += d }
