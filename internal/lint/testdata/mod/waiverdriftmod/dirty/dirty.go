// Package dirty earns its walltime waiver: the analyzer reports here,
// so an exclude covering it is live.
package dirty

import "time"

// Uptime reads the wall clock.
func Uptime(start time.Time) time.Duration { return time.Since(start) }
