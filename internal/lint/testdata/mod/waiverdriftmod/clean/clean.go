// Package clean produces no walltime findings: excluding it is
// over-broad and waiverdrift must say so.
package clean

// Add is determinism-safe arithmetic.
func Add(a, b int64) int64 { return a + b }
