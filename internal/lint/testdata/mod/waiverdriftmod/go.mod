module waiverdriftmod

go 1.22
