module timetaintmod

go 1.22
