// Package sim models the kernel's scheduling API surface: timetaint
// matches sinks by method name on a receiver type named Kernel.
package sim

// Time is simulated time.
type Time int64

// Kernel is the fixture stand-in for the event kernel.
type Kernel struct{ now Time }

// Now returns the simulated clock (never tainted).
func (k *Kernel) Now() Time { return k.now }

// Schedule queues fn after d.
func (k *Kernel) Schedule(d Time, fn func()) { _ = fn }

// At queues fn at t.
func (k *Kernel) At(t Time, fn func()) { _ = fn }
