// Package waived stands in for a package with a walltime waiver (like
// cmd/haechibench): it may read the wall clock, but the value it leaks
// through its API is still tainted — timetaint follows it across the
// package boundary.
package waived

import "time"

// Stamp leaks a wall-clock reading to callers.
func Stamp() int64 { return time.Now().UnixNano() }
