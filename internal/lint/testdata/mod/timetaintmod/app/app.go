// Package app launders tainted values into kernel scheduling: through
// two function calls (jitter -> delay), out of a waived package
// (waived.Stamp), via a helper that forwards a parameter to a sink
// (post), and from a global-rand draw. The clean call keyed off the
// kernel clock must stay silent.
package app

import (
	"math/rand"

	"timetaintmod/sim"
	"timetaintmod/waived"
)

func jitter() int64 { return waived.Stamp() / 2 }

func delay() sim.Time { return sim.Time(jitter()) }

func spin() int64 { return rand.Int63() }

// Arm schedules events; three of the four calls receive tainted times.
func Arm(k *sim.Kernel) {
	k.Schedule(delay(), func() {})
	k.At(k.Now()+5, func() {})
	post(k, delay())
	k.Schedule(sim.Time(spin()%10), func() {})
}

func post(k *sim.Kernel, t sim.Time) { k.At(t, func() {}) }
