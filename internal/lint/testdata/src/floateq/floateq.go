// Package fixture seeds float-equality violations for the floateq
// analyzer.
package fixture

// Bad branches on exact float equality.
func Bad(omega, usage float64) bool {
	if omega == usage {
		return true
	}
	return usage != 0.5
}

// Good compares against the zero sentinel or a tolerance.
func Good(sigma, eps float64) bool {
	if sigma == 0 { // unset sentinel: exact, and exempt
		return false
	}
	d := sigma - 1
	if d < 0 {
		d = -d
	}
	return d < eps
}
