// Package fixture seeds concurrency violations for the noconcurrency
// analyzer.
package fixture

import "sync"

// Bad smuggles scheduler-dependent interleaving into kernel code.
func Bad(fns []func()) int {
	var mu sync.Mutex
	done := make(chan int, len(fns))
	for _, fn := range fns {
		go func() {
			mu.Lock()
			defer mu.Unlock()
			fn()
			done <- 1
		}()
	}
	total := 0
	for range fns {
		total += <-done
	}
	return total
}

// Good runs callbacks synchronously, one at a time.
func Good(fns []func()) int {
	for _, fn := range fns {
		fn()
	}
	return len(fns)
}
