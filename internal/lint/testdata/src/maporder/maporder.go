// Package fixture seeds unordered-map-iteration hazards for the
// maporder analyzer.
package fixture

import "sort"

type kernel struct{}

func (kernel) Schedule(d int, fn func()) {}

// BadSchedule makes simulation event order depend on map order.
func BadSchedule(k kernel, m map[int]func()) {
	for d, fn := range m {
		k.Schedule(d, fn)
	}
}

// BadAppend collects results in map order.
func BadAppend(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// BadFloat accumulates rounding in map order.
func BadFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// BadSend publishes results in map order.
func BadSend(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v
	}
}

// GoodSorted uses the canonical collect-then-sort idiom.
func GoodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodAnnotated is exempt: the justification rides on the loop.
func GoodAnnotated(m map[string]int) []int {
	var vals []int
	//lint:ordered the caller treats the result as an unordered set
	for _, v := range m {
		vals = append(vals, v)
	}
	return vals
}

// GoodIntSum is order-neutral: integer accumulation is exact.
func GoodIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

type timer struct{}

func (timer) At() int { return 0 }

// GoodGetter calls an At getter — no callback argument, so nothing is
// scheduled.
func GoodGetter(m map[string]int, t timer) int {
	n := 0
	for range m {
		n += t.At()
	}
	return n
}
