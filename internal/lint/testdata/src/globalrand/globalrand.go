// Package fixture seeds global-randomness violations for the globalrand
// analyzer.
package fixture

import "math/rand"

// Bad draws from the process-global source.
func Bad(n int) int {
	x := rand.Intn(n)
	rand.Shuffle(n, func(i, j int) {})
	return x + int(rand.Int63())
}

// BadNew hides the seed behind an opaque source value.
func BadNew(src rand.Source) *rand.Rand {
	return rand.New(src)
}

// Good plumbs an explicitly seeded generator.
func Good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// GoodParam draws from a generator the caller seeded.
func GoodParam(rng *rand.Rand) float64 {
	return rng.Float64()
}
