// Package fixture seeds wall-clock violations for the walltime analyzer.
package fixture

import "time"

// Bad reads and waits on the machine clock.
func Bad() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	timer := time.NewTimer(time.Second)
	timer.Stop()
	return time.Since(start)
}

// Good sticks to duration arithmetic, which is allowed.
func Good() time.Duration {
	d := 3 * time.Millisecond
	return d.Round(time.Microsecond)
}
