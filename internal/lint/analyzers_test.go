package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/haechi-qos/haechi/internal/lint"
)

func loadFixture(t *testing.T, name string) *lint.Package {
	t.Helper()
	ld := lint.NewLoader()
	p, err := ld.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return p
}

// TestAnalyzersOnFixtures runs every analyzer over its seeded fixture
// package and asserts the exact diagnostics: count, line, and message.
// The fixtures also contain clean counterparts (sorted iteration,
// seeded RNGs, //lint:ordered annotations, zero-sentinel comparisons)
// that must stay silent.
func TestAnalyzersOnFixtures(t *testing.T) {
	type want struct {
		line int
		msg  string
	}
	tests := []struct {
		analyzer *lint.Analyzer
		want     []want
	}{
		{
			analyzer: lint.Walltime,
			want: []want{
				{8, "time.Now reads the wall clock and breaks replayability; use sim.Kernel.Now"},
				{9, "time.Sleep reads the wall clock and breaks replayability; use sim.Kernel.Schedule"},
				{10, "time.NewTimer reads the wall clock and breaks replayability; use sim.Kernel.Schedule"},
				{12, "time.Since reads the wall clock and breaks replayability; use arithmetic on sim.Time"},
			},
		},
		{
			analyzer: lint.Globalrand,
			want: []want{
				{9, "math/rand.Intn draws from the process-global source and is not replayable; use the kernel RNG (sim.Kernel.Rand) or a seeded *rand.Rand"},
				{10, "math/rand.Shuffle draws from the process-global source and is not replayable; use the kernel RNG (sim.Kernel.Rand) or a seeded *rand.Rand"},
				{11, "math/rand.Int63 draws from the process-global source and is not replayable; use the kernel RNG (sim.Kernel.Rand) or a seeded *rand.Rand"},
				{16, "rand.New without a direct rand.NewSource(seed) argument hides the seed; construct the source inline from an explicit seed"},
			},
		},
		{
			analyzer: lint.Maporder,
			want: []want{
				{13, "map iteration order is randomized per run, and this loop body schedules simulation events (.Schedule); sort the keys into a slice first or annotate with //lint:ordered <why>"},
				{21, "map iteration order is randomized per run, and this loop body appends to a slice declared outside the loop; sort the keys into a slice first or annotate with //lint:ordered <why>"},
				{30, "map iteration order is randomized per run, and this loop body accumulates floating-point values; sort the keys into a slice first or annotate with //lint:ordered <why>"},
				{38, "map iteration order is randomized per run, and this loop body sends on a channel; sort the keys into a slice first or annotate with //lint:ordered <why>"},
			},
		},
		{
			analyzer: lint.Noconcurrency,
			want: []want{
				{5, `import of "sync" in a single-threaded kernel package; the kernel runs one event at a time and needs no synchronization`},
				{10, "channel type inside the single-threaded kernel; event ordering must come from the kernel queue, not channel scheduling"},
				{12, "go statement spawns a goroutine inside the single-threaded kernel; schedule an event on the sim.Kernel instead"},
				{16, "channel send inside the single-threaded kernel; deliver results through direct calls or scheduled events"},
				{21, "channel receive inside the single-threaded kernel; deliver results through direct calls or scheduled events"},
			},
		},
		{
			analyzer: lint.Floateq,
			want: []want{
				{7, "floating-point == is rounding-order fragile; compare against a tolerance (only the exact zero sentinel may be compared directly)"},
				{10, "floating-point != is rounding-order fragile; compare against a tolerance (only the exact zero sentinel may be compared directly)"},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.analyzer.Name, func(t *testing.T) {
			p := loadFixture(t, tt.analyzer.Name)
			diags := tt.analyzer.Run(p)
			lint.SortDiagnostics(diags)
			if len(diags) != len(tt.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(tt.want), renderDiags(diags))
			}
			wantFile := tt.analyzer.Name + ".go"
			for i, d := range diags {
				if filepath.Base(d.Pos.Filename) != wantFile {
					t.Errorf("diag %d in file %s, want %s", i, d.Pos.Filename, wantFile)
				}
				if d.Analyzer != tt.analyzer.Name {
					t.Errorf("diag %d attributed to %q, want %q", i, d.Analyzer, tt.analyzer.Name)
				}
				if d.Pos.Line != tt.want[i].line {
					t.Errorf("diag %d at line %d, want %d (%s)", i, d.Pos.Line, tt.want[i].line, d.Message)
				}
				if d.Message != tt.want[i].msg {
					t.Errorf("diag %d message:\n got %q\nwant %q", i, d.Message, tt.want[i].msg)
				}
			}
		})
	}
}

func renderDiags(ds []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDiagnosticString covers the file:line:col rendering used by the CLI.
func TestDiagnosticString(t *testing.T) {
	p := loadFixture(t, "floateq")
	diags := lint.Floateq.Run(p)
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "floateq.go:7:") || !strings.Contains(s, ": floateq: ") {
		t.Errorf("unexpected rendering %q", s)
	}
}

// TestRuleApplies covers include/exclude prefix scoping.
func TestRuleApplies(t *testing.T) {
	tests := []struct {
		rule Rule
		rel  string
		want bool
	}{
		{Rule{}, "internal/sim", true},
		{Rule{Include: []string{"internal"}}, "internal/sim", true},
		{Rule{Include: []string{"internal"}}, "cmd/haechikv", false},
		{Rule{Include: []string{"internal/sim"}}, "internal/simx", false},
		{Rule{Include: []string{"."}}, ".", true},
		{Rule{Include: []string{"."}}, "internal/sim", false},
		{Rule{Exclude: []string{"cmd/haechibench"}}, "cmd/haechibench", false},
		{Rule{Exclude: []string{"cmd/haechibench"}}, "cmd/haechikv", true},
		{Rule{Include: []string{"cmd"}, Exclude: []string{"cmd/haechibench"}}, "cmd/haechibench", false},
	}
	for _, tt := range tests {
		if got := tt.rule.Applies(tt.rel); got != tt.want {
			t.Errorf("Rule{Include:%v Exclude:%v}.Applies(%q) = %v, want %v",
				tt.rule.Include, tt.rule.Exclude, tt.rel, got, tt.want)
		}
	}
}

// Rule is re-exported for the table above.
type Rule = lint.Rule

// TestDefaultRulesWaivers pins the shipped scope decisions: the
// wall-clock waiver for haechibench (it times the real tool run) and the
// kernel allowlist driving noconcurrency.
func TestDefaultRulesWaivers(t *testing.T) {
	byName := make(map[string]lint.Rule)
	for _, r := range lint.DefaultRules() {
		byName[r.Analyzer.Name] = r
	}
	if len(byName) != 9 {
		t.Fatalf("expected 9 default rules, got %d", len(byName))
	}
	for _, name := range []string{"sharedwrite", "timetaint", "waiverdrift"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing default rule for %s", name)
		}
		if len(r.Include) != 0 || len(r.Exclude) != 0 {
			t.Errorf("%s must run module-wide with no waivers (include %v exclude %v)",
				name, r.Include, r.Exclude)
		}
	}
	if byName["walltime"].Applies("cmd/haechibench") {
		t.Error("walltime must waive cmd/haechibench (it measures real tool runtime)")
	}
	if !byName["walltime"].Applies("internal/sim") {
		t.Error("walltime must cover internal/sim")
	}
	if byName["noconcurrency"].Applies("cmd/haechibench") {
		t.Error("noconcurrency is scoped to kernel packages, not cmd tools")
	}
	for _, kp := range lint.KernelPackages {
		if !byName["noconcurrency"].Applies(kp) {
			t.Errorf("noconcurrency must cover kernel package %s", kp)
		}
	}
	if !byName["floateq"].Applies("internal/core") {
		t.Error("floateq must cover internal/core")
	}
}

// TestLoadDirErrors: loading a missing or empty directory fails cleanly.
func TestLoadDirErrors(t *testing.T) {
	ld := lint.NewLoader()
	if _, err := ld.LoadDir(filepath.Join("testdata", "no-such-dir"), "fixture/missing"); err == nil {
		t.Error("missing directory accepted")
	}
	if _, err := ld.LoadDir("testdata", "fixture/empty"); err == nil {
		t.Error("directory without Go files accepted")
	}
}
