package lint_test

import (
	"path/filepath"
	"sort"
	"testing"

	"github.com/haechi-qos/haechi/internal/lint"
)

// loadFixtureModule loads a mini-module from testdata/mod/<name> (each
// has its own go.mod, so the module loader exercises the same path the
// CLI uses on the real tree).
func loadFixtureModule(t *testing.T, name string) []*lint.Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "mod", name))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", name, err)
	}
	return pkgs
}

type wantDiag struct {
	file string // base name; "" for synthetic positions
	line int
	msg  string
}

func checkDiags(t *testing.T, analyzer string, diags []lint.Diagnostic, want []wantDiag) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(want), renderDiags(diags))
	}
	for i, d := range diags {
		if d.Analyzer != analyzer {
			t.Errorf("diag %d attributed to %q, want %q", i, d.Analyzer, analyzer)
		}
		if got := filepath.Base(d.Pos.Filename); got != want[i].file {
			t.Errorf("diag %d in file %s, want %s", i, got, want[i].file)
		}
		if d.Pos.Line != want[i].line {
			t.Errorf("diag %d at line %d, want %d (%s)", i, d.Pos.Line, want[i].line, d.Message)
		}
		if d.Message != want[i].msg {
			t.Errorf("diag %d message:\n got %q\nwant %q", i, d.Message, want[i].msg)
		}
	}
}

// TestSharedwriteFixture: direct worker write, interprocedural write
// through a helper, a Map worker write, and a kernel-package write are
// all findings; the sequential-only write is not.
func TestSharedwriteFixture(t *testing.T) {
	pkgs := loadFixtureModule(t, "sharedwritemod")
	m := lint.NewModule(pkgs, nil)
	diags := lint.Sharedwrite.RunModule(m)
	const tail = "; declare single-writer ownership in the sharedwrite allowlist or move the write (DESIGN.md §10)"
	checkDiags(t, "sharedwrite", diags, []wantDiag{
		{"sim.go", 11, "write to package-level variable internal/sim.Clock from Advance (reachable from kernel event code)" + tail},
		{"work.go", 14, "write to package-level variable work.total from bump (reachable from parallel worker bodies)" + tail},
		{"work.go", 19, "write to package-level variable work.counter from func literal at line 18 (reachable from parallel worker bodies)" + tail},
		{"work.go", 23, "write to package-level variable work.allowed from func literal at line 22 (reachable from parallel worker bodies)" + tail},
	})
}

// TestSharedwriteAllowlist: an allowlist entry silences its variable,
// and a stale entry is itself a finding.
func TestSharedwriteAllowlist(t *testing.T) {
	pkgs := loadFixtureModule(t, "sharedwritemod")
	m := lint.NewModule(pkgs, nil)
	an := lint.NewSharedwrite(map[string]string{
		"work.allowed": "single writer: the Map body owns it during the sweep",
		"work.ghost":   "stale entry that must be reported",
	})
	diags := an.RunModule(m)
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4:\n%s", len(diags), renderDiags(diags))
	}
	staleMsg := `allowlist entry "work.ghost" matched no reachable write; delete the stale entry`
	var sawStale bool
	for _, d := range diags {
		if d.Pos.Filename == "(sharedwrite allowlist)" {
			sawStale = true
			if d.Message != staleMsg {
				t.Errorf("stale-entry message %q, want %q", d.Message, staleMsg)
			}
			continue
		}
		if filepath.Base(d.Pos.Filename) == "work.go" && d.Pos.Line == 23 {
			t.Errorf("allowlisted write still reported: %s", d.String())
		}
	}
	if !sawStale {
		t.Errorf("stale allowlist entry not reported:\n%s", renderDiags(diags))
	}
}

// TestTimetaintFixture: taint through two calls, out of a waived
// package, via a parameter-forwarding helper, and from a global-rand
// draw; the kernel-clock call stays silent.
func TestTimetaintFixture(t *testing.T) {
	pkgs := loadFixtureModule(t, "timetaintmod")
	m := lint.NewModule(pkgs, nil)
	diags := lint.Timetaint.RunModule(m)
	const tail = "; event times must come from the kernel clock or a seeded RNG"
	checkDiags(t, "timetaint", diags, []wantDiag{
		{"app.go", 23, "wall-clock/global-rand derived value flows into Kernel.Schedule" + tail},
		{"app.go", 25, "wall-clock/global-rand derived value flows into kernel scheduling via post" + tail},
		{"app.go", 26, "wall-clock/global-rand derived value flows into Kernel.Schedule" + tail},
	})
}

// TestWaiverdriftFixture: a live waiver is silent, an over-broad one
// and a dead one are findings.
func TestWaiverdriftFixture(t *testing.T) {
	pkgs := loadFixtureModule(t, "waiverdriftmod")
	rules := []lint.Rule{
		{Analyzer: lint.Walltime, Exclude: []string{"dirty", "clean", "ghost"}},
		{Analyzer: lint.Waiverdrift},
	}
	m := lint.NewModule(pkgs, rules)
	diags := lint.Waiverdrift.RunModule(m)
	checkDiags(t, "waiverdrift", diags, []wantDiag{
		{"(waivers)", 1, `walltime waiver "clean" is unused: the analyzer finds nothing in the excluded packages; narrow or delete it`},
		{"(waivers)", 1, `walltime waiver "ghost" matches no package in the module; delete the stale exclude`},
	})
}

// TestRunDiagnosticOrder pins the ordering satellite: lint.Run output
// is totally ordered by (file, line, col, analyzer, message), so two
// runs render identically even though analyzers and the loader iterate
// maps internally.
func TestRunDiagnosticOrder(t *testing.T) {
	pkgs := loadFixtureModule(t, "sharedwritemod")
	rules := lint.DefaultRules()
	first := lint.Run(pkgs, rules)
	if len(first) == 0 {
		t.Fatal("expected findings on the sharedwrite fixture module")
	}
	sorted := sort.SliceIsSorted(first, func(i, j int) bool {
		a, b := first[i], first[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if !sorted {
		t.Fatalf("diagnostics not sorted:\n%s", renderDiags(first))
	}
	for run := 0; run < 3; run++ {
		again := lint.Run(loadFixtureModule(t, "sharedwritemod"), lint.DefaultRules())
		if renderDiags(again) != renderDiags(first) {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", run, renderDiags(again), renderDiags(first))
		}
	}
}

// TestFixtureModulesTypeCheck: every mini-module under testdata/mod
// must load and type-check — fixtures that rot stop proving anything.
func TestFixtureModulesTypeCheck(t *testing.T) {
	names := []string{"sharedwritemod", "timetaintmod", "waiverdriftmod"}
	for _, name := range names {
		if pkgs := loadFixtureModule(t, name); len(pkgs) == 0 {
			t.Errorf("fixture module %s loaded no packages", name)
		}
	}
}
