package lint

import (
	"go/ast"
	"go/types"
)

// Globalrand forbids the process-global math/rand source. Every random
// draw must be attributable to an experiment seed: use the kernel RNG
// (sim.Kernel.Rand) or a *rand.Rand constructed from an explicit seed,
// as workload and cluster already do.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc: "forbids top-level math/rand functions and un-seeded rand.New; " +
		"randomness must flow through the kernel RNG or an explicitly seeded *rand.Rand",
	Run: runGlobalrand,
}

// sourceConstructors are the explicit-seed source builders accepted as
// the direct argument of rand.New.
var sourceConstructors = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalrand(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on a plumbed *rand.Rand are the approved path
			}
			switch name := fn.Name(); {
			case sourceConstructors[name] || name == "NewZipf":
				// NewZipf takes the *rand.Rand it will draw from.
			case name == "New":
				if !seededRandNew(p, sel, parents) {
					out = append(out, p.diag("globalrand", sel.Pos(),
						"rand.New without a direct rand.NewSource(seed) argument hides the seed; "+
							"construct the source inline from an explicit seed"))
				}
			default:
				out = append(out, p.diag("globalrand", sel.Pos(),
					"%s.%s draws from the process-global source and is not replayable; "+
						"use the kernel RNG (sim.Kernel.Rand) or a seeded *rand.Rand", path, name))
			}
			return true
		})
	}
	return out
}

// seededRandNew reports whether sel (a use of rand.New) is called
// directly with an explicit-seed source constructor, e.g.
// rand.New(rand.NewSource(seed)).
func seededRandNew(p *Package, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node) bool {
	call, ok := parents[sel].(*ast.CallExpr)
	if !ok || call.Fun != sel || len(call.Args) == 0 {
		return false
	}
	argCall, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	argSel, ok := argCall.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[argSel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil &&
		(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") &&
		sourceConstructors[fn.Name()]
}
