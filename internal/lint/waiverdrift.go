package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// Waiverdrift audits the active rule set itself: every Exclude entry is
// a standing waiver, and waivers rot. A waiver is dead when it matches
// no package in the module (the waived code moved or was deleted), and
// over-broad when the excluded packages would produce no findings anyway
// (the waived construct is gone, so the exemption now covers future
// violations for free). Both are findings: shrinking a waiver is always
// safe, and keeping the inventory minimal is what makes the committed
// lint_waivers.json diff in CI meaningful. Only per-package analyzers
// are audited — the module-wide analyzers take no waivers by policy.
var Waiverdrift = &Analyzer{
	Name: "waiverdrift",
	Doc: "reports dead waivers (exclude matches no package) and over-broad " +
		"waivers (the excluded packages produce no findings)",
	RunModule: runWaiverdrift,
}

func runWaiverdrift(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, r := range m.Rules {
		if r.Analyzer.Run == nil {
			continue
		}
		for _, excl := range r.Exclude {
			matched, live := false, false
			for _, p := range m.Packages {
				if p.Rel != excl && !strings.HasPrefix(p.Rel, excl+"/") {
					continue
				}
				matched = true
				if len(r.Analyzer.Run(p)) > 0 {
					live = true
					break
				}
			}
			switch {
			case !matched:
				out = append(out, waiverDiag(r.Analyzer.Name, excl,
					"matches no package in the module; delete the stale exclude"))
			case !live:
				out = append(out, waiverDiag(r.Analyzer.Name, excl,
					"is unused: the analyzer finds nothing in the excluded packages; narrow or delete it"))
			}
		}
	}
	SortDiagnostics(out)
	return out
}

func waiverDiag(analyzer, excl, why string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: "(waivers)", Line: 1, Column: 1},
		Analyzer: "waiverdrift",
		Message:  fmt.Sprintf("%s waiver %q %s", analyzer, excl, why),
		Pkg:      ".",
	}
}
