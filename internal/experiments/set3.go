package experiments

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/parallel"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/workload"
)

// spikeReservations builds Set 3's reservation distribution: 3 clients at
// 285K, 7 at 80K (scaled), ~90% of capacity.
func (o Options) spikeReservations() ([]int64, error) {
	high := o.Clients * 3 / 10
	if high == 0 {
		high = 1
	}
	parts, err := workload.SpikeSplit(o.Clients, high,
		uint64(285_000/o.Scale), uint64(80_000/o.Scale))
	if err != nil {
		return nil, err
	}
	return toInt64(parts), nil
}

// Fig13to15 reproduces Experiment Set 3: Spike reservations under the
// burst and constant-rate request patterns — per-client completions
// (Fig. 13), data-node throughput (Fig. 14), and read latency (Fig. 15).
func Fig13to15(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	res, err := o.spikeReservations()
	if err != nil {
		return nil, err
	}
	demand := o.demandRPlusShare(res)

	type outcome struct {
		name string
		res  *cluster.Results
	}
	patterns := []struct {
		name    string
		pattern workload.Pattern
	}{
		{"burst", workload.Burst{}},
		{"constant-rate", workload.ConstantRate{}},
	}
	outcomes, err := parallel.Map(o.workers(), len(patterns), func(pi int) (outcome, error) {
		pc := patterns[pi]
		specs := o.qosSpecs(res, demand)
		for i := range specs {
			specs[i].Pattern = pc.pattern
		}
		out, err := o.tagged(pi).runQoS(cluster.Haechi, specs, nil)
		if err != nil {
			return outcome{}, err
		}
		return outcome{pc.name, out}, nil
	})
	if err != nil {
		return nil, err
	}

	t13 := &Table{
		Title:  "Fig. 13 — completed I/Os per client (spike reservations)",
		Header: []string{"client", "reservation", "burst", "constant-rate", "burst meets R", "const meets R"},
	}
	for i := range res {
		t13.AddRow(fmt.Sprintf("C%d", i+1),
			count(float64(res[i]), o.Scale),
			count(outcomes[0].res.Clients[i].MeanPeriod, o.Scale),
			count(outcomes[1].res.Clients[i].MeanPeriod, o.Scale),
			meets(outcomes[0].res.Clients[i].MinPeriod, res[i]),
			meets(outcomes[1].res.Clients[i].MinPeriod, res[i]))
	}

	capacity := float64(o.capacityPerPeriod())
	t14 := &Table{
		Title:  "Fig. 14 — data node throughput",
		Header: []string{"pattern", "throughput/period", "drop vs capacity"},
	}
	for _, oc := range outcomes {
		t14.AddRow(oc.name, count(oc.res.ThroughputPerPeriod, o.Scale),
			fmt.Sprintf("%.1f%%", 100*(1-oc.res.ThroughputPerPeriod/capacity)))
	}

	t15 := &Table{
		Title:  "Fig. 15 — read request latency",
		Header: []string{"pattern", "average", "p99", "p99.9"},
	}
	for _, oc := range outcomes {
		lat := oc.res.AggregateLatency
		t15.AddRow(oc.name, scaledLatency(lat.Mean, o.Scale), scaledLatency(lat.P99, o.Scale), scaledLatency(lat.P999, o.Scale))
	}

	return &Report{
		ID:      "fig13",
		Caption: "Burst vs constant-rate requests with Spike reservations (Figs. 13-15)",
		Tables:  []*Table{t13, t14, t15},
		Notes: []string{
			"expected: with burst requests the high-reservation clients C1-C3 miss their reservation",
			"(local capacity C_L limits late-period catch-up) and throughput drops ~13%;",
			"constant-rate meets and surpasses every reservation with ~1% drop and far lower latency",
		},
	}, nil
}

// scaledLatency converts simulated latency to full-scale-equivalent units
// (a scaled run's service times are Scale x longer, so latencies divide
// back by Scale for paper-comparable values).
func scaledLatency(v sim.Time, scale float64) string {
	return sim.Time(float64(v) / scale).String()
}
