package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"github.com/haechi-qos/haechi/internal/cluster"
)

// goldenIDs covers experiment Sets 1-5: saturation and latency curves
// (Set 1: fig6-8), reservation attainment and conversion (Set 2:
// fig9-12), isolation (Set 3: fig13), over/under-provisioning (Set 4:
// fig16/18) and the failure scenario (Set 5). Every cluster run each
// experiment performs reports its Results through the Observe hook; the
// concatenated, RunTag-ordered JSON is the byte-identity surface the
// hot-path refactors must preserve.
var goldenIDs = []string{
	"fig6", "fig7", "fig8", // Set 1
	"fig9", "fig10", "fig12", // Set 2
	"fig13",          // Set 3
	"fig16", "fig18", // Set 4
	"set5", // Set 5
}

// goldenOptions shrinks the runs (the shapes, not the dimensions, are
// what the differential pins): high scale divisor, short windows, few
// clients. Parallel exercises the sweep machinery; Shards stays 0 —
// shard placement is part of the experiment definition and PR 10
// deliberately changed it from insertion-order to stable-ID hashing.
func goldenOptions(capture func(*cluster.Results)) Options {
	return Options{
		Scale:          100,
		WarmupPeriods:  1,
		MeasurePeriods: 2,
		Clients:        10, // the paper's testbed width; reservations are sized per client against C_L
		Records:        512,
		Seed:           42,
		Parallel:       4,
		Observe:        &cluster.Observe{OnResults: capture},
	}
}

// TestGoldenResultsByteIdentical replays Sets 1-5 and compares every
// cluster run's Results JSON against the goldens generated at the seed
// commit (before the struct-of-arrays/batched-station refactor).
// Regenerate with HAECHI_UPDATE_GOLDEN=1 after an intentional
// model-behavior change — and say why in the commit.
func TestGoldenResultsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden differential is not -short")
	}
	update := os.Getenv("HAECHI_UPDATE_GOLDEN") != ""
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			var mu sync.Mutex
			var runs []*cluster.Results
			opts := goldenOptions(func(res *cluster.Results) {
				mu.Lock()
				runs = append(runs, res)
				mu.Unlock()
			})
			if _, err := Run(id, opts); err != nil {
				t.Fatalf("running %s: %v", id, err)
			}
			sort.SliceStable(runs, func(i, j int) bool { return runs[i].RunTag < runs[j].RunTag })
			var buf bytes.Buffer
			for _, res := range runs {
				fmt.Fprintf(&buf, "run %d mode=%s\n", res.RunTag, res.Mode)
				b, err := json.MarshalIndent(res, "", " ")
				if err != nil {
					t.Fatalf("marshaling run %d: %v", res.RunTag, err)
				}
				buf.Write(b)
				buf.WriteByte('\n')
			}
			path := filepath.Join("testdata", "golden", id+".json")
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d runs, %d bytes)", path, len(runs), buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (regenerate with HAECHI_UPDATE_GOLDEN=1): %v", path, err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				got := filepath.Join(t.TempDir(), id+".json")
				os.WriteFile(got, buf.Bytes(), 0o644)
				t.Fatalf("%s: Results diverged from the seed-commit golden (%d runs, got %d bytes want %d); inspect with diff %s %s",
					id, len(runs), buf.Len(), len(want), path, got)
			}
		})
	}
}
