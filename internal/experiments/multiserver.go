package experiments

import (
	"fmt"
	"math/rand"

	"github.com/haechi-qos/haechi/internal/multiserver"
	"github.com/haechi-qos/haechi/internal/parallel"
	"github.com/haechi-qos/haechi/internal/workload"
)

// hotShardKeys routes every access to shard 0 of `servers` shards.
type hotShardKeys struct {
	servers int
	records int
}

// Next draws a shard-0 key.
func (h *hotShardKeys) Next(rng *rand.Rand) uint64 {
	return uint64(rng.Intn(h.records)) * uint64(h.servers)
}

// MultiServer evaluates the paper's stated future work (Section V):
// Haechi across several data nodes with per-node monitors.
//
// Panel 1 sweeps the cluster size with uniformly sharded tenants: total
// throughput should scale with the number of data nodes.
//
// Panel 2 compares a skew-bound tenant (all accesses on one shard) under
// a static equal reservation split vs. pTrans-style periodic rebalancing:
// static strands half the reservation on the cold shard; rebalancing
// follows the demand.
func MultiServer(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "multiserver",
		Caption: "Multi-server Haechi with reservation rebalancing (extension, paper §V)",
	}

	perServer := o.capacityPerPeriod()
	perClientCap := o.localCapacityPerPeriod()

	// Panel 1: scaling. Twelve saturating tenants; each reserves its
	// share of 70% of the cluster, bounded by its own NIC (C_L).
	const tenants = 12
	t1 := &Table{
		Title:  fmt.Sprintf("cluster scaling: %d uniformly-sharded saturating tenants", tenants),
		Header: []string{"servers", "total reservation", "throughput/period", "all reservations met"},
	}
	serverCounts := []int{1, 2, 4}
	scaleOuts, err := parallel.Map(o.workers(), len(serverCounts), func(si int) (*multiserver.Results, error) {
		servers := serverCounts[si]
		perTenant := perServer * int64(servers) * 7 / (10 * tenants)
		if cap := perClientCap * 55 / 100; perTenant > cap {
			perTenant = cap
		}
		specs := make([]multiserver.ClientSpec, tenants)
		for i := range specs {
			specs[i] = multiserver.ClientSpec{
				TotalReservation: perTenant,
				DemandPerPeriod:  uint64(perClientCap), // saturate the client NIC
				Keys:             &workload.UniformKeys{N: 1024},
			}
		}
		mc, err := multiserver.New(multiserver.Config{
			Servers:          servers,
			Scale:            o.Scale,
			RecordsPerServer: 512,
			Seed:             o.Seed,
		}, specs)
		if err != nil {
			return nil, err
		}
		return mc.Run(o.WarmupPeriods, o.MeasurePeriods)
	})
	if err != nil {
		return nil, err
	}
	for si, servers := range serverCounts {
		perTenant := perServer * int64(servers) * 7 / (10 * tenants)
		if cap := perClientCap * 55 / 100; perTenant > cap {
			perTenant = cap
		}
		out := scaleOuts[si]
		met := "yes"
		for _, cr := range out.PerClient {
			if float64(cr.MinPeriod) < 0.97*float64(cr.TotalReservation) {
				met = fmt.Sprintf("MISS (min %d of %d)", cr.MinPeriod, cr.TotalReservation)
				break
			}
		}
		t1.AddRow(fmt.Sprintf("%d", servers),
			count(float64(perTenant)*tenants, o.Scale),
			count(float64(out.TotalCompleted)/float64(o.MeasurePeriods), o.Scale),
			met)
	}
	rep.Tables = append(rep.Tables, t1)

	// Panel 2: skew + rebalancing on 2 servers. Pressure tenants reserve
	// the hot shard nearly fully so the pool cannot cover the skew.
	t2 := &Table{
		Title:  "skew-bound tenant (all demand on shard 0 of 2)",
		Header: []string{"rebalancing", "final split", "min/period", "meets total R"},
	}
	skewRes := perClientCap * 3 / 4
	rebalances := []int{0, 2}
	skewOuts, err := parallel.Map(o.workers(), len(rebalances), func(ri int) (*multiserver.Results, error) {
		specs := []multiserver.ClientSpec{
			{
				TotalReservation: skewRes,
				DemandPerPeriod:  uint64(skewRes) + uint64(skewRes)/10,
				Keys:             &hotShardKeys{servers: 2, records: 512},
			},
		}
		// Six pressure tenants, each at its NIC-bound maximum reservation
		// (C_L), fill the hot shard so its pool cannot cover the skew.
		for p := 0; p < 6; p++ {
			specs = append(specs, multiserver.ClientSpec{
				TotalReservation: perClientCap,
				DemandPerPeriod:  uint64(perServer),
				Keys:             &workload.UniformKeys{N: 1024},
			})
		}
		mc, err := multiserver.New(multiserver.Config{
			Servers:          2,
			Scale:            o.Scale,
			RecordsPerServer: 512,
			RebalanceEvery:   rebalances[ri],
			Seed:             o.Seed,
		}, specs)
		if err != nil {
			return nil, err
		}
		return mc.Run(o.WarmupPeriods, o.MeasurePeriods+4)
	})
	if err != nil {
		return nil, err
	}
	for ri, rebalance := range rebalances {
		out := skewOuts[ri]
		cr := out.PerClient[0]
		label := "off"
		if rebalance > 0 {
			label = fmt.Sprintf("every %d periods", rebalance)
		}
		t2.AddRow(label,
			fmt.Sprintf("%v", cr.FinalSplit),
			count(float64(cr.MinPeriod), o.Scale),
			meets(cr.Periods[len(cr.Periods)-1], skewRes))
	}
	rep.Tables = append(rep.Tables, t2)
	rep.Notes = append(rep.Notes,
		"expected: throughput scales with server count and reservations hold at every size;",
		"the skew-bound tenant misses under a static split (half its reservation is stranded on",
		"the cold shard) and converges to its total reservation with rebalancing enabled")
	return rep, nil
}
