package experiments

import (
	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/parallel"
)

// Limits exercises the L_i mechanism the paper describes but does not
// evaluate (Section II-B: "It may also have a specified limit L_i equal
// to the maximum number of I/Os it should receive in the period"): a
// runaway tenant is swept through limit values while a victim tenant's
// attainment is recorded. This is an extension experiment.
func Limits(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	capacity := o.capacityPerPeriod()
	runawayRes := capacity / 10
	victimRes := capacity * 4 / 10
	if victimRes > o.localCapacityPerPeriod()*9/10 {
		victimRes = o.localCapacityPerPeriod() * 9 / 10
	}

	t := &Table{
		Title: "runaway tenant limit sweep (reservation 10% of C_G, demand 3x capacity)",
		Header: []string{"limit", "runaway/period", "victim/period", "victim meets R",
			"best-effort/period", "total"},
	}
	limitFracs := []float64{0, 0.5, 0.25, 0.125}
	outs, err := parallel.Map(o.workers(), len(limitFracs), func(i int) (*cluster.Results, error) {
		limit := int64(float64(capacity) * limitFracs[i])
		specs := []cluster.ClientSpec{
			{ // the runaway: huge demand, optionally capped
				Reservation: runawayRes,
				Limit:       limit,
				Demand:      cluster.ConstantDemand(uint64(capacity) * 3),
			},
			{ // the victim: a large reservation with matching demand
				Reservation: victimRes,
				Demand:      cluster.ConstantDemand(uint64(victimRes) + uint64(victimRes)/10),
			},
			{ // a best-effort tenant that absorbs what the limit frees
				Demand: cluster.ConstantDemand(uint64(capacity)),
			},
		}
		return o.tagged(i).runQoS(cluster.Haechi, specs, nil)
	})
	if err != nil {
		return nil, err
	}
	for i, limitFrac := range limitFracs {
		limit := int64(float64(capacity) * limitFrac)
		out := outs[i]
		label := "none"
		if limit > 0 {
			label = count(float64(limit), o.Scale)
		}
		t.AddRow(label,
			count(out.Clients[0].MeanPeriod, o.Scale),
			count(out.Clients[1].MeanPeriod, o.Scale),
			meets(out.Clients[1].MinPeriod, victimRes),
			count(out.Clients[2].MeanPeriod, o.Scale),
			count(out.ThroughputPerPeriod, o.Scale))
	}
	return &Report{
		ID:      "limits",
		Caption: "Limit enforcement (extension; the paper describes but does not evaluate L_i)",
		Tables:  []*Table{t},
		Notes: []string{
			"expected: the victim's reservation holds at every limit setting (limits and",
			"reservations are independent); with only three clients each is bounded by its own",
			"NIC (C_L), so the tightest limit leaves capacity idle — the paper's note that 'the",
			"system will idle if all clients having requests have reached their limits'",
		},
	}, nil
}
