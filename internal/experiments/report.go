// Package experiments reproduces every table and figure of the paper's
// evaluation (Section III). Each experiment is a function from Options to
// a Report: the same rows/series the paper plots, printed as aligned
// tables. The cmd/haechibench binary and the repository's benchmarks are
// thin wrappers over this package; EXPERIMENTS.md records the outcomes.
package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table is one printable result table (one figure panel or table).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Report is one experiment's full output.
type Report struct {
	// ID is the experiment key, e.g. "fig6".
	ID string
	// Caption describes what the paper artifact shows.
	Caption string
	// Tables hold the regenerated rows/series.
	Tables []*Table
	// Notes record expected-shape commentary and any caveats.
	Notes []string
}

// String renders the whole report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Caption)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// kiops formats a per-period I/O count as full-scale-equivalent KIOPS.
func kiops(perPeriod float64, scale float64) string {
	return fmt.Sprintf("%.0fK", perPeriod*scale/1000)
}

// count formats a raw count with the scale factor applied back, so all
// reports read in the paper's units regardless of the run scale.
func count(v float64, scale float64) string {
	scaled := v * scale
	switch {
	case scaled >= 1e6:
		return fmt.Sprintf("%.2fM", scaled/1e6)
	case scaled >= 1e3:
		return fmt.Sprintf("%.0fK", scaled/1e3)
	default:
		return fmt.Sprintf("%.0f", scaled)
	}
}

// csvEscape quotes a cell if needed (commas or quotes).
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteCSV writes each table of the report as a CSV file in dir, named
// <id>_<n>.csv, and returns the file paths. The textual tables remain the
// primary artifact; CSV is for plotting.
func (r *Report) WriteCSV(dir string) ([]string, error) {
	var paths []string
	for i, t := range r.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", r.ID, i+1))
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		w := bufio.NewWriter(f)
		writeRow := func(cells []string) {
			for j, c := range cells {
				if j > 0 {
					w.WriteByte(',')
				}
				w.WriteString(csvEscape(c))
			}
			w.WriteByte('\n')
		}
		fmt.Fprintf(w, "# %s\n", t.Title)
		writeRow(t.Header)
		for _, row := range t.Rows {
			writeRow(row)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return paths, err
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
