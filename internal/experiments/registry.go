package experiments

import (
	"fmt"
	"sort"
)

// Func runs one experiment.
type Func func(Options) (*Report, error)

// registry maps experiment ids to their functions.
var registry = map[string]Func{
	"config":      TableI,
	"fig6":        Fig6,
	"fig7":        Fig7,
	"fig8":        Fig8,
	"fig9":        Fig9,
	"fig10":       Fig10and11,
	"fig12":       Fig12,
	"fig13":       Fig13to15,
	"fig16":       Fig16and17,
	"fig18":       Fig18and19,
	"ablation":    Ablation,
	"limits":      Limits,
	"multiserver": MultiServer,
	"set5":        Set5,
	"set6":        Set6,
}

// aliases map alternative names (paper figure/experiment numbering) onto
// registry ids.
var aliases = map[string]string{
	"tablei": "config",
	"1a":     "fig6",
	"1b":     "fig7",
	"1c":     "fig8",
	"2a":     "fig9",
	"2b":     "fig10",
	"fig11":  "fig10",
	"2c":     "fig12",
	"3":      "fig13",
	"fig14":  "fig13",
	"fig15":  "fig13",
	"4over":  "fig16",
	"fig17":  "fig16",
	"4under": "fig18",
	"fig19":  "fig18",
	"chaos":  "set5",
	"5":      "set5",
	"fleet":  "set6",
	"6":      "set6",
}

// Order is the canonical execution order for -all runs.
var Order = []string{
	"config", "fig6", "fig7", "fig8", "fig9", "fig10", "fig12", "fig13", "fig16", "fig18", "set5", "set6", "ablation", "limits", "multiserver",
}

// Lookup resolves an experiment id (or alias) to its function.
func Lookup(id string) (Func, error) {
	if canonical, ok := aliases[id]; ok {
		id = canonical
	}
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, Known())
	}
	return f, nil
}

// Known lists all experiment ids.
func Known() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Report, error) {
	f, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return f(o)
}

// RunAll executes every experiment in Order.
func RunAll(o Options) ([]*Report, error) {
	var out []*Report
	for _, id := range Order {
		rep, err := Run(id, o)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
