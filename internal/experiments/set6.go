package experiments

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/parallel"
	"github.com/haechi-qos/haechi/internal/workload"
)

// Set 6 — fleet scale. The paper's testbed stops at 10 clients; this set
// asks what happens to token QoS when the tenant population grows toward
// datacenter fleet sizes (10^3-10^6): how the reservation-miss rate moves
// as reservations thin out to a reserved tier plus a best-effort tier,
// what fraction of the data-node NIC the token-distribution protocol
// itself consumes per completed I/O, how fairly the pool splits across
// the best-effort tier, and how much the RNIC's finite QP-context cache
// (Config.QPCacheSize; the RDMAvisor/Storm scalability effect) costs once
// the fleet outgrows it.
const (
	// fleetQPCacheSize is the modelled on-chip QP-context capacity for the
	// cache-on runs: a few thousand contexts, the order reported for
	// ConnectX-class NICs, so the 10^4+ fleets actually thrash it.
	fleetQPCacheSize = 1024
	// fleetQPCachePenalty is the extra NIC service weight of a context
	// miss, in 4 KB-transfer units: a ~1 KB ICM fetch over PCIe stalls
	// the pipeline for roughly a quarter of a 4 KB wire transfer.
	fleetQPCachePenalty = 0.25
)

// fleetCounts expands the option's client count into the sweep: decades
// from 1000 up to and including the configured width. Counts at or below
// 1000 run a single point, so the default options stay fast.
func fleetCounts(max int) []int {
	if max <= 1000 {
		return []int{max}
	}
	var out []int
	for n := 1000; n < max; n *= 10 {
		out = append(out, n)
	}
	return append(out, max)
}

// Set6 runs the fleet-scale sweep: client counts from fleetCounts, each
// with the QP-context cache off and on.
func Set6(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	counts := fleetCounts(o.Clients)

	type fleetPoint struct {
		clients int
		cache   bool
		res     []int64
		out     *cluster.Results
	}
	runs := make([]fleetPoint, 0, 2*len(counts))
	for _, n := range counts {
		runs = append(runs,
			fleetPoint{clients: n, cache: false},
			fleetPoint{clients: n, cache: true})
	}
	points, err := parallel.Map(o.workers(), len(runs), func(ri int) (fleetPoint, error) {
		pt := runs[ri]
		oc := o
		oc.Clients = pt.clients
		// 60% of capacity reserved, split evenly: beyond ~10^4 tenants the
		// split degenerates into a reserved tier (R_i = 1) and a
		// best-effort tier (R_i = 0) — the fleet regime under test.
		res := toInt64(workload.UniformSplit(uint64(6*oc.capacityPerPeriod()/10), pt.clients))
		share := oc.demandRPlusShare(res)
		specs := oc.qosSpecs(res, func(i int) uint64 {
			// Every tenant wants at least one I/O per period, so the
			// best-effort tier competes for the pool instead of idling.
			if d := share(i); d > 0 {
				return d
			}
			return 1
		})
		out, err := oc.tagged(ri).runQoS(cluster.Haechi, specs, func(cfg *cluster.Config) {
			if pt.cache {
				cfg.Fabric.QPCacheSize = fleetQPCacheSize
				cfg.Fabric.QPCacheMissPenalty = fleetQPCachePenalty
			}
		})
		if err != nil {
			return fleetPoint{}, err
		}
		pt.res = res
		pt.out = out
		return pt, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Set 6 — token QoS at fleet scale",
		Header: []string{"clients", "qp-cache", "completed/period", "res-miss",
			"fairness", "ctrl-verbs/IO", "nic-ctrl", "cache-hit", "events/client"},
	}
	for _, pt := range points {
		t.AddRow(fmt.Sprintf("%d", pt.clients),
			onOff(pt.cache),
			count(pt.out.ThroughputPerPeriod, o.Scale),
			fmt.Sprintf("%.1f%%", 100*reservationMissRate(pt.res, pt.out)),
			fmt.Sprintf("%.3f", bestEffortFairness(pt.res, pt.out)),
			fmt.Sprintf("%.2f", controlVerbsPerIO(pt.out)),
			fmt.Sprintf("%.1f%%", 100*pt.out.Overhead.NICFraction),
			cacheHitRate(pt.out),
			fmt.Sprintf("%.0f", float64(pt.out.EventsExecuted)/float64(pt.clients)))
	}

	return &Report{
		ID:      "set6",
		Caption: "Fleet scale: reservation attainment, token-distribution overhead and QP-cache pressure vs client count (Set 6)",
		Tables:  []*Table{t},
		Notes: []string{
			"expected: reservations hold while the reserved tier fits capacity; the best-effort tier",
			"splits the pool near-evenly (fairness ~1); control verbs per completed I/O grow with the",
			"fleet (per-tenant period messages amortize over fewer data I/Os each); with the QP-context",
			"cache on, fleets beyond its capacity pay the miss penalty and aggregate throughput drops —",
			"the RNIC connection-scalability wall the small-testbed calibration cannot see",
		},
	}, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// reservationMissRate is the fraction of reserved clients (R_i > 0) that
// missed their reservation in at least one measured period.
func reservationMissRate(res []int64, out *cluster.Results) float64 {
	var reserved, missed int
	for i, r := range res {
		if r <= 0 {
			continue
		}
		reserved++
		if !out.Clients[i].MetReservation {
			missed++
		}
	}
	if reserved == 0 {
		return 0
	}
	return float64(missed) / float64(reserved)
}

// bestEffortFairness is Jain's index over the unreserved tier's total
// completions (all clients when every tenant holds a reservation): 1.0 is
// a perfectly even pool split, 1/n a single client holding everything.
func bestEffortFairness(res []int64, out *cluster.Results) float64 {
	var xs []float64
	for i, r := range res {
		if r <= 0 {
			xs = append(xs, float64(out.Clients[i].Total))
		}
	}
	if len(xs) == 0 {
		for i := range res {
			xs = append(xs, float64(out.Clients[i].Total))
		}
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// controlVerbsPerIO is the token-distribution overhead ratio: QoS control
// operations (global-token FAAs, report/pool writes, period messages) per
// completed data I/O.
func controlVerbsPerIO(out *cluster.Results) float64 {
	if out.TotalCompleted == 0 {
		return 0
	}
	ctrl := out.Overhead.FAAs + out.Overhead.ControlWrites + out.Overhead.ControlSends
	return float64(ctrl) / float64(out.TotalCompleted)
}

// cacheHitRate renders the QP-context cache hit rate, "-" when disabled.
func cacheHitRate(out *cluster.Results) string {
	hits, misses := out.Attribution.QPCacheHits, out.Attribution.QPCacheMisses
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
}
