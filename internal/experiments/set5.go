package experiments

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/chaos"
	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/parallel"
	"github.com/haechi-qos/haechi/internal/sim"
)

// set5Periods returns the measure-window length for the fault-injection
// experiment: the acceptance scenario's last fault window closes at 11.75
// periods, so the window is at least 13 periods (one settling period
// past the final degradation).
func (o Options) set5Periods() int {
	if o.MeasurePeriods < 13 {
		return 13
	}
	return o.MeasurePeriods
}

// shiftScenario re-times a scenario so its event clocks start at the
// measure window rather than run start: every preset is authored
// assuming period 0 is the first measured period, while cluster chaos
// times count from run start (warm-up included).
func (o Options) shiftScenario(spec string) (string, error) {
	sc, err := chaos.Parse(spec)
	if err != nil {
		return "", err
	}
	shifted := &chaos.Scenario{Name: sc.Name, Events: make([]chaos.FaultEvent, len(sc.Events))}
	for i, ev := range sc.Events {
		ev.At += float64(o.WarmupPeriods)
		shifted.Events[i] = ev
	}
	return shifted.String(), nil
}

// chaosRun runs full Haechi under a fault scenario with the sanitizer
// forced on: the run fails loudly unless every failure-aware invariant —
// crash quarantine conservation, no completions after crash, rejoin
// monotonicity, reclamation conservation, and the reservation floor for
// surviving clients — holds throughout.
func (o Options) chaosRun(scenario string) (*cluster.Results, error) {
	res, err := o.reservations("uniform", 0.8)
	if err != nil {
		return nil, err
	}
	specs := o.qosSpecs(res, o.demandRPlusPool(res))
	cfg := o.baseConfig(cluster.Haechi)
	shifted, err := o.shiftScenario(scenario)
	if err != nil {
		return nil, err
	}
	cfg.Chaos = shifted
	cfg.Sanitize = true
	cl, err := cluster.New(cfg, specs)
	if err != nil {
		return nil, err
	}
	return cl.Run(o.WarmupPeriods, o.set5Periods())
}

// faultTable renders the per-client fault and recovery accounting of a
// chaos run.
func (o Options) faultTable(title string, out *cluster.Results) *Table {
	t := &Table{
		Title: title,
		Header: []string{"client", "R", "crashes", "reclaimed after", "rejoin period",
			"degraded spells", "degraded time", "probes", "misses (excused)"},
	}
	for _, cf := range out.Faults.Clients {
		reclaim, rejoin := "-", "-"
		if cf.ReclamationLatency > 0 {
			reclaim = cf.ReclamationLatency.String()
		}
		if cf.RejoinPeriod > 0 {
			rejoin = fmt.Sprintf("%d", cf.RejoinPeriod)
		}
		excused := 0
		for _, mw := range cf.MissWindows {
			if mw.Excused {
				excused++
			}
		}
		t.AddRow(
			fmt.Sprintf("C%d", cf.Index+1),
			count(float64(out.Clients[cf.Index].Reservation), o.Scale),
			fmt.Sprintf("%d", cf.Crashes),
			reclaim,
			rejoin,
			fmt.Sprintf("%d", cf.DegradedSpells),
			cf.DegradedTime.String(),
			fmt.Sprintf("%d", cf.DegradedProbes),
			fmt.Sprintf("%d (%d)", len(cf.MissWindows), excused),
		)
	}
	return t
}

// survivorMeans is phaseMeans excluding one (crashed) client: the mean
// per-period throughput of the surviving tenants before and after the
// switch instant.
func survivorMeans(out *cluster.Results, crashed int, switchAt sim.Time) (before, after float64) {
	totals := make(map[int]float64)
	var times []sim.Time
	first := -1
	for ci, cr := range out.Clients {
		if ci == crashed {
			continue
		}
		if first < 0 {
			first = ci
		}
		for i, p := range cr.Timeline.Points {
			totals[i] += p.V
			if ci == first {
				times = append(times, p.T)
			}
		}
	}
	var sumB, sumA float64
	var nB, nA int
	for i, tt := range times {
		if tt <= switchAt {
			sumB += totals[i]
			nB++
		} else {
			sumA += totals[i]
			nA++
		}
	}
	if nB > 0 {
		before = sumB / float64(nB)
	}
	if nA > 0 {
		after = sumA / float64(nA)
	}
	return before, after
}

// Set5 runs the fault-injection experiments: deterministic chaos
// scenarios against full Haechi with the failure-aware sanitizer on.
// Three runs: the acceptance scenario (client crash and recovery, a
// monitor outage, data-node NIC degradation in one run), a
// crash-without-restart run isolating reservation reclamation, and a
// wire-disturbance run (link storm plus congestion burst) proving the
// floor holds through fabric-level chaos.
func Set5(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "set5",
		Caption: "Set 5: fault injection and recovery — crash/restart, monitor outage, NIC degradation (chaos layer)",
	}
	scenarios := []struct{ label, spec string }{
		{"acceptance (set5 preset: crash+restart, outage, degrade)", "set5"},
		{"reclamation (crash, never restarts)", "crash@2.25:c=0"},
		{"wire disturbance (link storm + congestion burst)", "jitter@3+2:extra=2us;burst@3+2:jobs=2,window=32"},
	}
	points, err := parallel.Map(o.workers(), len(scenarios), func(i int) (*cluster.Results, error) {
		return o.tagged(i).chaosRun(scenarios[i].spec)
	})
	if err != nil {
		return nil, err
	}
	T := o.baseConfig(cluster.Haechi).Params.Period
	for i, sc := range scenarios {
		out := points[i]
		fr := out.Faults
		rep.Tables = append(rep.Tables, o.faultTable(fmt.Sprintf("(%s)", sc.label), out))
		note := fmt.Sprintf("%s: scenario %q", sc.label, fr.Scenario)
		if fr.MonitorOutages > 0 {
			note += fmt.Sprintf("; %d monitor outage(s) totaling %v", fr.MonitorOutages, fr.MonitorOutageTime)
		}
		if fr.Suspicions > 0 {
			note += fmt.Sprintf("; %d suspicion(s), %d reinstatement(s)", fr.Suspicions, fr.Recoveries)
		}
		rep.Notes = append(rep.Notes, note)
	}

	// The reclamation run: survivors absorb the crashed client's
	// reservation, so their combined throughput (total capacity minus the
	// crashed tenant's share) steps up once the failure detector reclaims
	// it — the aggregate alone would hide this, the run is capacity-bound.
	crashAt := sim.Time(float64(o.WarmupPeriods)+2.25) * T
	before, after := survivorMeans(points[1], 0, crashAt)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"reclamation: surviving clients' throughput %s -> %s after the crash (reclaimed reservation redistributed)",
		count(before, o.Scale), count(after, o.Scale)))
	rep.Notes = append(rep.Notes,
		"every run is sanitized: crash quarantine conservation, no completions after crash, rejoin",
		"monotonicity, reclamation conservation and the surviving-client reservation floor held throughout")
	return rep, nil
}
