package experiments

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/parallel"
	"github.com/haechi-qos/haechi/internal/workload"
)

// TableI reports the simulated testbed configuration, standing in for the
// paper's Table I (Chameleon hardware).
func TableI(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	cfg, err := o.baseConfig(cluster.Bare).ApplyScale()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Simulated testbed configuration (substitutes Table I)",
		Header: []string{"parameter", "value"},
	}
	f := cfg.Fabric
	t.AddRow("paper testbed", "11x Chameleon servers, Xeon E5-2670v3, ConnectX-3, InfiniBand")
	t.AddRow("substitute", "discrete-event simulated fabric (internal/rdma)")
	t.AddRow("scale divisor", fmt.Sprintf("%.0f", o.Scale))
	t.AddRow("client 1-sided rate (C_L)", fmt.Sprintf("%.0f IOPS (full-scale %.0fK)", f.ClientOneSidedRate, f.ClientOneSidedRate*o.Scale/1000))
	t.AddRow("client 2-sided rate", fmt.Sprintf("%.0f IOPS (full-scale %.0fK)", f.ClientTwoSidedRate, f.ClientTwoSidedRate*o.Scale/1000))
	t.AddRow("server 1-sided rate (C_G)", fmt.Sprintf("%.0f IOPS (full-scale %.0fK)", f.ServerOneSidedRate, f.ServerOneSidedRate*o.Scale/1000))
	t.AddRow("server 2-sided rate", fmt.Sprintf("%.0f IOPS (full-scale %.0fK)", f.ServerTwoSidedRate, f.ServerTwoSidedRate*o.Scale/1000))
	t.AddRow("propagation delay", f.PropagationDelay.String())
	t.AddRow("service jitter", fmt.Sprintf("%.1f%%", 100*f.Jitter))
	t.AddRow("record size", "4096 B")
	t.AddRow("records populated", fmt.Sprintf("%d", cfg.Records))
	t.AddRow("QoS period T", cfg.Params.Period.String())
	t.AddRow("tick / check / report", fmt.Sprintf("%v / %v / %v", cfg.Params.Tick, cfg.Params.CheckInterval, cfg.Params.ReportInterval))
	t.AddRow("FAA batch B", fmt.Sprintf("%d", cfg.Params.Batch))
	return &Report{
		ID:      "config",
		Caption: "Testbed configuration (Table I substitute)",
		Tables:  []*Table{t},
	}, nil
}

// Fig6 reproduces Experiment 1A: the saturation throughput of each client
// run one at a time, one-sided vs two-sided.
func Fig6(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Per-client saturation throughput (burst-64, one client at a time)",
		Header: []string{"client", "1-sided", "2-sided", "2-sided/1-sided"},
	}
	points, err := parallel.Map(o.workers(), o.Clients, func(c int) ([2]float64, error) {
		one, err := o.tagged(2*c).saturationRun(1, false, o.Seed+int64(c))
		if err != nil {
			return [2]float64{}, err
		}
		two, err := o.tagged(2*c+1).saturationRun(1, true, o.Seed+int64(c))
		if err != nil {
			return [2]float64{}, err
		}
		return [2]float64{one, two}, nil
	})
	if err != nil {
		return nil, err
	}
	var sum1, sum2 float64
	for c, pt := range points {
		one, two := pt[0], pt[1]
		sum1 += one
		sum2 += two
		t.AddRow(fmt.Sprintf("C%d", c+1), kiops(one, o.Scale), kiops(two, o.Scale),
			fmt.Sprintf("%.2f", two/one))
	}
	return &Report{
		ID:      "fig6",
		Caption: "Throughput of clients run separately with 1-sided and 2-sided I/Os (Fig. 6)",
		Tables:  []*Table{t},
		Notes: []string{
			fmt.Sprintf("mean 1-sided %s, mean 2-sided %s (paper: ~400K and ~327K, 2-sided ~20%% lower)",
				kiops(sum1/float64(o.Clients), o.Scale), kiops(sum2/float64(o.Clients), o.Scale)),
		},
	}, nil
}

// Fig7 reproduces Experiment 1B: system throughput versus the number of
// concurrently active clients.
func Fig7(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Data node throughput vs number of active clients (burst-64)",
		Header: []string{"clients", "1-sided", "2-sided"},
	}
	points, err := parallel.Map(o.workers(), o.Clients, func(i int) ([2]float64, error) {
		n := i + 1
		one, err := o.tagged(2*i).saturationRun(n, false, o.Seed)
		if err != nil {
			return [2]float64{}, err
		}
		two, err := o.tagged(2*i+1).saturationRun(n, true, o.Seed)
		if err != nil {
			return [2]float64{}, err
		}
		return [2]float64{one, two}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range points {
		t.AddRow(fmt.Sprintf("%d", i+1), kiops(pt[0], o.Scale), kiops(pt[1], o.Scale))
	}
	return &Report{
		ID:      "fig7",
		Caption: "Data node throughput versus number of active clients (Fig. 7)",
		Tables:  []*Table{t},
		Notes: []string{
			"expected shape: 1-sided grows ~linearly to 4 clients then saturates ~1570K;",
			"2-sided flattens almost immediately at ~430K (server CPU bound)",
		},
	}, nil
}

// saturationRun measures bare-system throughput per period with n
// saturating burst-64 clients.
func (o Options) saturationRun(n int, twoSided bool, seed int64) (float64, error) {
	cfg := o.baseConfig(cluster.Bare)
	cfg.TwoSided = twoSided
	cfg.Seed = seed
	specs := make([]cluster.ClientSpec, n)
	for i := range specs {
		specs[i] = cluster.ClientSpec{Pattern: workload.Burst{Window: 64}}
	}
	cl, err := cluster.New(cfg, specs)
	if err != nil {
		return 0, err
	}
	res, err := cl.Run(o.WarmupPeriods, o.MeasurePeriods)
	if err != nil {
		return 0, err
	}
	return res.ThroughputPerPeriod, nil
}

// Fig8 reproduces Experiment 1C: bare-system I/O completions under three
// demand-distribution x request-pattern combinations.
func Fig8(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	total := uint64(1_580_000 / o.Scale) // the paper's 1580K total demand
	uniform := workload.UniformSplit(total, o.Clients)
	high := o.Clients * 3 / 10
	spikeHigh := uint64(340_000 / o.Scale)
	spikeLow := uint64(80_000 / o.Scale)
	spike, err := workload.SpikeSplit(o.Clients, high, spikeHigh, spikeLow)
	if err != nil {
		return nil, err
	}

	cases := []struct {
		name    string
		demands []uint64
		pattern workload.Pattern
	}{
		{"(a) uniform demand, burst", uniform, workload.Burst{Window: 64}},
		{"(b) spike demand, burst", spike, workload.Burst{Window: 64}},
		{"(c) spike demand, constant-rate", spike, workload.ConstantRate{}},
	}

	rep := &Report{
		ID:      "fig8",
		Caption: "I/O completions with different demand distributions and request patterns (Fig. 8)",
	}
	runs, err := parallel.Map(o.workers(), len(cases), func(ci int) (*cluster.Results, error) {
		tc := cases[ci]
		specs := make([]cluster.ClientSpec, o.Clients)
		for i := range specs {
			d := tc.demands[i]
			specs[i] = cluster.ClientSpec{
				Demand:  cluster.ConstantDemand(d),
				Pattern: tc.pattern,
			}
		}
		cl, err := cluster.New(o.tagged(ci).baseConfig(cluster.Bare), specs)
		if err != nil {
			return nil, err
		}
		return cl.Run(o.WarmupPeriods, o.MeasurePeriods)
	})
	if err != nil {
		return nil, err
	}
	for ci, tc := range cases {
		res := runs[ci]
		t := &Table{
			Title:  tc.name,
			Header: []string{"client", "demand/period", "completed/period", "attainment"},
		}
		for i, cr := range res.Clients {
			t.AddRow(fmt.Sprintf("C%d", i+1),
				count(float64(tc.demands[i]), o.Scale),
				count(cr.MeanPeriod, o.Scale),
				fmt.Sprintf("%.0f%%", 100*cr.MeanPeriod/float64(tc.demands[i])))
		}
		t.AddRow("total", count(float64(total), o.Scale), count(res.ThroughputPerPeriod, o.Scale),
			fmt.Sprintf("%.0f%%", 100*res.ThroughputPerPeriod/float64(total)))
		rep.Tables = append(rep.Tables, t)
	}
	rep.Notes = append(rep.Notes,
		"expected: (a) everyone meets ~158K, total ~1570K; (b) C1-C3 miss 340K (~278K), total drops ~1380K;",
		"(c) C1-C3 near 340K again, total recovers ~1564K (local capacity C_L is the mechanism)")
	return rep, nil
}
