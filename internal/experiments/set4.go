package experiments

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/parallel"
	"github.com/haechi-qos/haechi/internal/rdma"
	"github.com/haechi-qos/haechi/internal/sim"
)

// congestionPoint is one Set-4 adaptation run: the results and the
// instant the background load toggled.
type congestionPoint struct {
	out      *cluster.Results
	switchAt sim.Time
}

// set4Periods returns the timeline length for the adaptation experiments:
// the estimator needs its history window to converge, so the window is at
// least 24 periods with the load change at the midpoint (the paper uses a
// 30 s timeline with the change at 15 s).
func (o Options) set4Periods() int {
	if o.MeasurePeriods < 24 {
		return 24
	}
	return o.MeasurePeriods
}

// congestionRun runs Haechi with background jobs toggled at the midpoint.
// startCongested controls whether the background load runs in the first
// half (underestimation recovery) or the second half (overestimation).
func (o Options) congestionRun(dist string, startCongested bool) (*cluster.Results, sim.Time, error) {
	res, err := o.reservations(dist, 0.8)
	if err != nil {
		return nil, 0, err
	}
	specs := o.qosSpecs(res, o.demandRPlusPool(res))
	cfg := o.baseConfig(cluster.Haechi)
	// The adaptation experiments need a capacity lower bound loose enough
	// to admit the congested operating point; the paper's sigma from 1000
	// hardware profiling runs plays this role (see DESIGN.md).
	cfg.Sigma = 0.08 * float64(o.capacityPerPeriod())
	cl, err := cluster.New(cfg, specs)
	if err != nil {
		return nil, 0, err
	}

	periods := o.set4Periods()
	T := cl.Config().Params.Period
	switchAt := sim.Time(o.WarmupPeriods+periods/2) * T
	// Two background streams take ~2/12 of the round-robin service —
	// about 15% of capacity, within the paper's constraint that the
	// background "does not consume more than 20% of the capacity" (the
	// unreserved fraction), so reservations stay feasible while the
	// estimator must adapt.
	var jobs []*rdma.BackgroundJob
	for j := 0; j < 2; j++ {
		job, err := cl.AddBackgroundJob(fmt.Sprintf("bg-%02d", j), 32)
		if err != nil {
			return nil, 0, err
		}
		jobs = append(jobs, job)
	}
	if startCongested {
		for _, j := range jobs {
			j.Start()
		}
		cl.At(switchAt, func() {
			for _, j := range jobs {
				j.Stop()
			}
		})
	} else {
		cl.At(switchAt, func() {
			for _, j := range jobs {
				j.Start()
			}
		})
	}
	out, err := cl.Run(o.WarmupPeriods, periods)
	if err != nil {
		return nil, 0, err
	}
	return out, switchAt, nil
}

// timelineTable renders per-period total and C1 throughput around the
// load change.
func (o Options) timelineTable(title string, out *cluster.Results, switchAt sim.Time) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"period end", "total/period", "C1/period", "omega", "phase"},
	}
	// Align series by period index using C1's timeline.
	c1 := out.Clients[0].Timeline
	totals := make(map[int]float64)
	for _, cr := range out.Clients {
		for i, p := range cr.Timeline.Points {
			totals[i] += p.V
		}
	}
	omega := map[int]float64{}
	for i, p := range out.OmegaTimeline.Points {
		omega[i] = p.V
	}
	for i, p := range c1.Points {
		phase := "baseline"
		if p.T > switchAt {
			phase = "after change"
		}
		om := ""
		if v, ok := omega[i]; ok {
			om = count(v, o.Scale)
		}
		t.AddRow(p.T.String(), count(totals[i], o.Scale), count(p.V, o.Scale), om, phase)
	}
	return t
}

// phaseMeans summarizes a timeline before/after the switch.
func phaseMeans(out *cluster.Results, switchAt sim.Time) (before, after float64) {
	var sumB, sumA float64
	var nB, nA int
	totals := make(map[int]float64)
	var times []sim.Time
	for ci, cr := range out.Clients {
		for i, p := range cr.Timeline.Points {
			totals[i] += p.V
			if ci == 0 {
				times = append(times, p.T)
			}
		}
	}
	for i, tt := range times {
		if tt <= switchAt {
			sumB += totals[i]
			nB++
		} else {
			sumA += totals[i]
			nA++
		}
	}
	if nB > 0 {
		before = sumB / float64(nB)
	}
	if nA > 0 {
		after = sumA / float64(nA)
	}
	return before, after
}

// Fig16and17 reproduces the capacity-overestimation experiment: background
// congestion begins mid-run; the estimator adjusts downward and
// high-reservation clients recover their QoS (Figs. 16, 17).
func Fig16and17(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig16",
		Caption: "Effect of increased network congestion: overestimation handling (Figs. 16, 17)",
	}
	dists := []string{"uniform", "zipf"}
	points, err := parallel.Map(o.workers(), len(dists), func(di int) (congestionPoint, error) {
		out, switchAt, err := o.tagged(di).congestionRun(dists[di], false)
		return congestionPoint{out: out, switchAt: switchAt}, err
	})
	if err != nil {
		return nil, err
	}
	for di, dist := range dists {
		out, switchAt := points[di].out, points[di].switchAt
		rep.Tables = append(rep.Tables, o.timelineTable(
			fmt.Sprintf("(%s reservations, congestion starts at %v)", dist, switchAt), out, switchAt))
		before, after := phaseMeans(out, switchAt)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: mean throughput %s -> %s after congestion onset", dist,
			count(before, o.Scale), count(after, o.Scale)))
	}
	rep.Notes = append(rep.Notes,
		"expected: throughput steps down at onset; with Zipf reservations C1 initially misses its",
		"reservation, then recovers over a few periods as the estimate converges downward (Fig. 17b)")
	return rep, nil
}

// Fig18and19 reproduces the capacity-underestimation experiment: initial
// congestion disappears mid-run; the estimator climbs by eta per period
// (Figs. 18, 19).
func Fig18and19(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig18",
		Caption: "Effect of decreased network congestion: underestimation handling (Figs. 18, 19)",
	}
	dists := []string{"uniform", "zipf"}
	points, err := parallel.Map(o.workers(), len(dists), func(di int) (congestionPoint, error) {
		out, switchAt, err := o.tagged(di).congestionRun(dists[di], true)
		return congestionPoint{out: out, switchAt: switchAt}, err
	})
	if err != nil {
		return nil, err
	}
	for di, dist := range dists {
		out, switchAt := points[di].out, points[di].switchAt
		rep.Tables = append(rep.Tables, o.timelineTable(
			fmt.Sprintf("(%s reservations, congestion stops at %v)", dist, switchAt), out, switchAt))
		before, after := phaseMeans(out, switchAt)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: mean throughput %s -> %s after congestion stops", dist,
			count(before, o.Scale), count(after, o.Scale)))
	}
	rep.Notes = append(rep.Notes,
		"expected: throughput ramps up after the congestion stops as Omega climbs by eta per period;",
		"reservations are met throughout; extra capacity flows to low-reservation clients first (Zipf)")
	return rep, nil
}
