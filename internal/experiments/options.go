package experiments

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/kvstore"
)

// Options control experiment size. The defaults run each experiment at
// 1/10 capacity with short windows — fast, with the paper's shapes
// intact. cmd/haechibench exposes flags for full-scale, full-length runs.
type Options struct {
	// Scale divides all fabric rates (1 = the paper's full rates). All
	// reported numbers are multiplied back by Scale so they read in
	// paper units.
	Scale float64
	// WarmupPeriods and MeasurePeriods set the run windows (the paper
	// uses 30 + 30 displayed of 120 measured).
	WarmupPeriods  int
	MeasurePeriods int
	// Clients is the number of client nodes (the paper's testbed has 10).
	Clients int
	// Records is the KV store population (the paper loads 1M 4 KB
	// records; the default keeps memory modest — record count does not
	// influence the timing model).
	Records int
	// Seed drives all randomness.
	Seed int64
	// Parallel is the number of independent cluster runs an experiment
	// may execute concurrently (each on its own kernel). 0 or 1 runs
	// sequentially. Results are merged by sweep index, so the output is
	// identical at any worker count; see internal/parallel. When
	// Parallel > 1 and Observe is set, the OnResults hook must be safe
	// for concurrent use and its invocation order is not deterministic.
	Parallel int
	// Observe, when non-nil, enables the observability layer (per-I/O
	// flight-recorder spans, metrics sampling) on every cluster the
	// experiment constructs. Use its OnResults hook to capture each
	// run's Results — experiments that compare modes run several
	// clusters internally, and each one reports through the hook.
	Observe *cluster.Observe
	// Shards partitions every cluster the experiment builds onto
	// per-shard simulation kernels (see cluster.Config.Shards). Like
	// Scale, it is part of the experiment definition: sharded output is
	// deterministic but differs from unsharded output.
	Shards int
	// ShardWorkers drives the sharded kernels concurrently (see
	// cluster.Config.ShardWorkers). Pure concurrency — output is
	// identical at any value.
	ShardWorkers int
	// Sanitize enables the runtime invariant sanitizer on every cluster
	// the experiment constructs (see cluster.Config.Sanitize). The
	// checks are passive: results are byte-identical with it on or off,
	// but an invariant breach fails the run.
	Sanitize bool
	// Chaos injects a fault scenario (an internal/chaos grammar string or
	// preset name) into every cluster the experiment constructs; empty
	// disables injection. Scenario times count fractional QoS periods
	// from run start, so pick them against WarmupPeriods+MeasurePeriods.
	// Injection is deterministic: a chaos run replays byte-identically
	// like a fault-free one. Set 5 ignores this and supplies its own
	// scenarios.
	Chaos string
}

// NewDefaultOptions returns the fast defaults.
func NewDefaultOptions() Options {
	return Options{
		Scale:          10,
		WarmupPeriods:  2,
		MeasurePeriods: 5,
		Clients:        10,
		Records:        4096,
		Seed:           42,
	}
}

// PaperOptions returns the paper's dimensions: full rates, 30 warm-up
// periods and 30 displayed periods, 10 clients.
func PaperOptions() Options {
	return Options{
		Scale:          1,
		WarmupPeriods:  30,
		MeasurePeriods: 30,
		Clients:        10,
		Records:        1 << 16,
		Seed:           42,
	}
}

// validate normalizes zero values.
func (o Options) validate() (Options, error) {
	if o.Scale == 0 {
		o.Scale = 10
	}
	if o.Scale < 1 {
		return o, fmt.Errorf("experiments: Scale must be >= 1, got %v", o.Scale)
	}
	if o.WarmupPeriods == 0 {
		o.WarmupPeriods = 2
	}
	if o.MeasurePeriods == 0 {
		o.MeasurePeriods = 5
	}
	if o.Clients == 0 {
		o.Clients = 10
	}
	if o.Records == 0 {
		o.Records = 4096
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Parallel < 0 {
		return o, fmt.Errorf("experiments: Parallel must be >= 0, got %d", o.Parallel)
	}
	if o.Shards < 0 {
		return o, fmt.Errorf("experiments: Shards must be >= 0, got %d", o.Shards)
	}
	return o, nil
}

// tagged returns a copy of the options whose Observe is cloned with
// RunTag set to run. Every experiment tags each internal cluster run
// with a deterministic sequence number, so an OnResults capturer can
// order artifacts by run index even when a parallel sweep completes
// runs out of order. No-op when Observe is nil.
func (o Options) tagged(run int) Options {
	if o.Observe == nil {
		return o
	}
	ob := *o.Observe
	ob.RunTag = run
	o.Observe = &ob
	return o
}

// workers returns the worker count for parallel.Map sweeps.
func (o Options) workers() int {
	if o.Parallel <= 1 {
		return 1
	}
	return o.Parallel
}

// baseConfig builds the cluster config for this option set.
func (o Options) baseConfig(mode cluster.Mode) cluster.Config {
	cfg := cluster.NewDefaultConfig()
	cfg.Mode = mode
	cfg.Scale = o.Scale
	storeCap := 1
	for storeCap < o.Records {
		storeCap <<= 1
	}
	cfg.Store = kvstore.Options{Capacity: storeCap, RecordSize: 4096}
	cfg.Records = o.Records
	cfg.Seed = o.Seed
	cfg.Observe = o.Observe
	cfg.Shards = o.Shards
	cfg.ShardWorkers = o.ShardWorkers
	cfg.Sanitize = o.Sanitize
	cfg.Chaos = o.Chaos
	return cfg
}

// capacityPerPeriod returns the scaled C_G per QoS period (the token
// budget the paper's experiments size reservations against: 1570K at
// full scale).
func (o Options) capacityPerPeriod() int64 {
	return int64(1_570_000 / o.Scale)
}

// localCapacityPerPeriod returns the scaled C_L per period (400K at full
// scale).
func (o Options) localCapacityPerPeriod() int64 {
	return int64(400_000 / o.Scale)
}
