package experiments

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/parallel"
	"github.com/haechi-qos/haechi/internal/workload"
)

// reservations builds the paper's two reservation distributions over a
// reserved fraction of the capacity.
func (o Options) reservations(dist string, reservedFraction float64) ([]int64, error) {
	total := uint64(reservedFraction * float64(o.capacityPerPeriod()))
	switch dist {
	case "uniform":
		parts := workload.UniformSplit(total, o.Clients)
		return toInt64(parts), nil
	case "zipf":
		groups := 5
		if o.Clients%groups != 0 {
			groups = o.Clients
		}
		parts, err := workload.ZipfGroupSplit(total, o.Clients, groups, 0.6)
		if err != nil {
			return nil, err
		}
		return toInt64(parts), nil
	default:
		return nil, fmt.Errorf("experiments: unknown reservation distribution %q", dist)
	}
}

func toInt64(parts []uint64) []int64 {
	out := make([]int64, len(parts))
	for i, p := range parts {
		out[i] = int64(p)
	}
	return out
}

// qosSpecs builds client specs for a QoS run: reservation R_i and demand
// R_i + pool (the paper's Experiment 2A demand model), posted at period
// start.
func (o Options) qosSpecs(res []int64, demandFor func(i int) uint64) []cluster.ClientSpec {
	specs := make([]cluster.ClientSpec, len(res))
	for i := range specs {
		specs[i] = cluster.ClientSpec{
			Reservation: res[i],
			Demand:      cluster.ConstantDemand(demandFor(i)),
			Pattern:     workload.Burst{},
		}
	}
	return specs
}

// demandRPlusPool is the Experiment 2A demand: reservation plus the whole
// initial global pool.
func (o Options) demandRPlusPool(res []int64) func(i int) uint64 {
	pool := o.capacityPerPeriod() - sumInt64(res)
	if pool < 0 {
		pool = 0
	}
	return func(i int) uint64 { return uint64(res[i] + pool) }
}

// demandRPlusShare gives each client its reservation plus an equal share
// of the initial pool, so aggregate demand equals the capacity — the
// sizing Sets 2C and 3 rely on (clients idle once their demand is done,
// exposing the local-capacity effects of Figs. 12-14).
func (o Options) demandRPlusShare(res []int64) func(i int) uint64 {
	pool := o.capacityPerPeriod() - sumInt64(res)
	if pool < 0 {
		pool = 0
	}
	share := pool / int64(len(res))
	return func(i int) uint64 { return uint64(res[i] + share) }
}

func sumInt64(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}

// runQoS builds and runs a cluster in the given mode.
func (o Options) runQoS(mode cluster.Mode, specs []cluster.ClientSpec, mutate func(*cluster.Config)) (*cluster.Results, error) {
	cfg := o.baseConfig(mode)
	if mutate != nil {
		mutate(&cfg)
	}
	cl, err := cluster.New(cfg, specs)
	if err != nil {
		return nil, err
	}
	return cl.Run(o.WarmupPeriods, o.MeasurePeriods)
}

// Fig9 reproduces Experiment 2A: Haechi vs the bare system with all
// clients sufficiently backlogged, under Uniform and Zipf reservations.
func Fig9(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig9",
		Caption: "Completed I/Os with sufficient demand: reservation vs Haechi vs bare (Fig. 9)",
	}
	dists := []string{"uniform", "zipf"}
	type fig9Point struct {
		res       []int64
		qos, bare *cluster.Results
	}
	points, err := parallel.Map(o.workers(), len(dists), func(di int) (fig9Point, error) {
		res, err := o.reservations(dists[di], 0.9)
		if err != nil {
			return fig9Point{}, err
		}
		demand := o.demandRPlusPool(res)
		qos, err := o.tagged(2*di).runQoS(cluster.Haechi, o.qosSpecs(res, demand), nil)
		if err != nil {
			return fig9Point{}, err
		}
		bareSpecs := o.qosSpecs(res, demand)
		for i := range bareSpecs {
			bareSpecs[i].Reservation = 0
		}
		bare, err := o.tagged(2*di+1).runQoS(cluster.Bare, bareSpecs, nil)
		if err != nil {
			return fig9Point{}, err
		}
		return fig9Point{res: res, qos: qos, bare: bare}, nil
	})
	if err != nil {
		return nil, err
	}
	for di, dist := range dists {
		res, qos, bare := points[di].res, points[di].qos, points[di].bare
		t := &Table{
			Title:  fmt.Sprintf("(%s reservation distribution, 90%% reserved)", dist),
			Header: []string{"client", "reservation", "haechi", "bare", "haechi meets R"},
		}
		for i := range res {
			t.AddRow(fmt.Sprintf("C%d", i+1),
				count(float64(res[i]), o.Scale),
				count(qos.Clients[i].MeanPeriod, o.Scale),
				count(bare.Clients[i].MeanPeriod, o.Scale),
				meets(qos.Clients[i].MinPeriod, res[i]))
		}
		t.AddRow("total", count(float64(sumInt64(res)), o.Scale),
			count(qos.ThroughputPerPeriod, o.Scale),
			count(bare.ThroughputPerPeriod, o.Scale),
			fmt.Sprintf("loss %.2f%%", 100*(1-qos.ThroughputPerPeriod/bare.ThroughputPerPeriod)))
		rep.Tables = append(rep.Tables, t)
	}
	rep.Notes = append(rep.Notes,
		"expected: bare splits capacity equally regardless of reservation (Zipf high-R clients miss);",
		"Haechi meets the uniform reservations in full; under Zipf the top group reaches ~90% of R",
		"(the 90%-reserved burst point sits at the local-capacity feasibility edge: the late-period",
		"catch-up rate needed exceeds C_L — the same physics the paper uses to explain Figs. 8b/13;",
		"see EXPERIMENTS.md) while remaining far above the bare system's fair share")
	return rep, nil
}

// meets renders a reservation-attainment flag: "yes" when every measured
// period reached the reservation, otherwise the attainment percentage.
func meets(minPeriod uint64, reservation int64) string {
	if reservation <= 0 || int64(minPeriod) >= reservation {
		return "yes"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(minPeriod)/float64(reservation))
}

// Fig10and11 reproduces Experiment 2B: clients C1 and C2 have demand below
// their reservation; token conversion (Haechi) vs Basic Haechi vs bare.
func Fig10and11(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig10",
		Caption: "Completed I/Os when C1, C2 demand < reservation: token conversion (Figs. 10, 11)",
	}
	dists := []string{"uniform", "zipf"}
	type fig10Point struct {
		res                 []int64
		haechi, basic, bare *cluster.Results
	}
	points, err := parallel.Map(o.workers(), len(dists), func(di int) (fig10Point, error) {
		res, err := o.reservations(dists[di], 0.9)
		if err != nil {
			return fig10Point{}, err
		}
		full := o.demandRPlusPool(res)
		demand := func(i int) uint64 {
			if i < 2 {
				return uint64(res[i]) / 2 // C1, C2 stop early
			}
			return full(i)
		}
		haechi, err := o.tagged(3*di).runQoS(cluster.Haechi, o.qosSpecs(res, demand), nil)
		if err != nil {
			return fig10Point{}, err
		}
		basic, err := o.tagged(3*di+1).runQoS(cluster.BasicHaechi, o.qosSpecs(res, demand), nil)
		if err != nil {
			return fig10Point{}, err
		}
		bareSpecs := o.qosSpecs(res, demand)
		for i := range bareSpecs {
			bareSpecs[i].Reservation = 0
		}
		bare, err := o.tagged(3*di+2).runQoS(cluster.Bare, bareSpecs, nil)
		if err != nil {
			return fig10Point{}, err
		}
		return fig10Point{res: res, haechi: haechi, basic: basic, bare: bare}, nil
	})
	if err != nil {
		return nil, err
	}
	for di, dist := range dists {
		res, haechi, basic, bare := points[di].res, points[di].haechi, points[di].basic, points[di].bare

		t := &Table{
			Title:  fmt.Sprintf("(%s reservation distribution; C1, C2 at 50%% demand)", dist),
			Header: []string{"client", "reservation", "basic haechi", "haechi", "gain"},
		}
		for i := range res {
			gain := haechi.Clients[i].MeanPeriod - basic.Clients[i].MeanPeriod
			t.AddRow(fmt.Sprintf("C%d", i+1),
				count(float64(res[i]), o.Scale),
				count(basic.Clients[i].MeanPeriod, o.Scale),
				count(haechi.Clients[i].MeanPeriod, o.Scale),
				count(gain, o.Scale))
		}
		rep.Tables = append(rep.Tables, t)

		t11 := &Table{
			Title:  fmt.Sprintf("Fig. 11 — total throughput (%s)", dist),
			Header: []string{"system", "throughput/period"},
		}
		t11.AddRow("basic haechi", count(basic.ThroughputPerPeriod, o.Scale))
		t11.AddRow("haechi", count(haechi.ThroughputPerPeriod, o.Scale))
		t11.AddRow("bare", count(bare.ThroughputPerPeriod, o.Scale))
		rep.Tables = append(rep.Tables, t11)
	}
	rep.Notes = append(rep.Notes,
		"expected: Basic Haechi wastes C1/C2's unused tokens; Haechi converts them so C3-C10 exceed",
		"their reservations and total throughput approaches the bare system (work conservation)")
	return rep, nil
}

// Fig12 reproduces Experiment 2C: throughput as the reserved fraction of
// capacity sweeps 50-90% under Uniform and Zipf reservations.
func Fig12(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Haechi throughput vs reserved capacity fraction",
		Header: []string{"reserved %", "uniform", "zipf"},
	}
	fracs := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	dists := []string{"uniform", "zipf"}
	// One grid point per (fraction, distribution) pair, row-major.
	points, err := parallel.Map(o.workers(), len(fracs)*len(dists), func(i int) (float64, error) {
		frac, dist := fracs[i/len(dists)], dists[i%len(dists)]
		res, err := o.reservations(dist, frac)
		if err != nil {
			return 0, err
		}
		out, err := o.tagged(i).runQoS(cluster.Haechi, o.qosSpecs(res, o.demandRPlusShare(res)), nil)
		if err != nil {
			return 0, err
		}
		return out.ThroughputPerPeriod, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, frac := range fracs {
		row := []string{fmt.Sprintf("%.0f%%", 100*frac)}
		for di := range dists {
			row = append(row, count(points[fi*len(dists)+di], o.Scale))
		}
		t.AddRow(row...)
	}
	return &Report{
		ID:      "fig12",
		Caption: "Throughput with varying reserved capacity and reservation distributions (Fig. 12)",
		Tables:  []*Table{t},
		Notes: []string{
			"expected: uniform stays near C_G across the sweep; zipf approaches uniform at low reserved",
			"fractions and drops as reserved % grows (global pool exhausts; low-R clients idle; the tail",
			"is limited by C_L with <4 active clients)",
		},
	}, nil
}
