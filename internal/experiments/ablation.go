package experiments

import (
	"fmt"

	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/core"
	"github.com/haechi-qos/haechi/internal/parallel"
	"github.com/haechi-qos/haechi/internal/sim"
)

// Ablation sweeps the protocol's design constants one at a time on a
// fixed workload (Zipf reservations at 90%, C1/C2 with insufficient
// demand — the scenario that exercises claims, yields, conversion and
// reporting together) and reports throughput, reservation attainment and
// token-management overhead. This is not a paper artifact; it quantifies
// the design choices DESIGN.md calls out:
//
//   - B, the FAA batch size (the paper picks 1000 to amortize atomics);
//   - the monitor check / client report interval (1 ms in the paper);
//   - the engine's RNIC send-queue depth (64 outstanding in the paper);
//   - the fabric's per-QP flow-control window.
func Ablation(o Options) (*Report, error) {
	o, err := o.validate()
	if err != nil {
		return nil, err
	}
	res, err := o.reservations("zipf", 0.9)
	if err != nil {
		return nil, err
	}
	full := o.demandRPlusPool(res)
	demand := func(i int) uint64 {
		if i < 2 {
			return uint64(res[i]) / 2
		}
		return full(i)
	}

	// run tags each sweep point with a globally unique run index so
	// artifact capture stays ordered: batches take 0-3, intervals 4-6,
	// depths 7-9 and the flow-control combos 10-12.
	run := func(tag int, mutate func(*cluster.Config)) (*cluster.Results, error) {
		return o.tagged(tag).runQoS(cluster.Haechi, o.qosSpecs(res, demand), mutate)
	}
	row := func(t *Table, label string, out *cluster.Results) {
		var worstHungry float64 = 2
		for i := 2; i < len(out.Clients); i++ {
			if a := float64(out.Clients[i].MinPeriod) / float64(res[i]); a < worstHungry {
				worstHungry = a
			}
		}
		t.AddRow(label,
			count(out.ThroughputPerPeriod, o.Scale),
			fmt.Sprintf("%.0f%%", 100*worstHungry),
			fmt.Sprintf("%.3f%%", 100*out.Overhead.NICFraction),
			fmt.Sprintf("%d", out.Overhead.FAAs))
	}
	header := []string{"value", "throughput", "worst attainment", "qos NIC overhead", "atomics"}

	rep := &Report{
		ID:      "ablation",
		Caption: "Design-choice ablations (extension, not a paper artifact)",
	}

	// 1. FAA batch size. Values are expressed relative to the paper's
	// B=1000 at full scale and divided by Scale like everything else.
	// cluster.New applies the scale divisor to Batch, so setting the
	// full-scale value here sweeps the intended effective batch.
	tb := &Table{Title: "FAA batch size B, full-scale value (paper: 1000)", Header: header}
	batches := []int64{1 * int64(o.Scale), 100, 1000, 10000}
	batchOuts, err := parallel.Map(o.workers(), len(batches), func(i int) (*cluster.Results, error) {
		b := batches[i]
		return run(i, func(c *cluster.Config) { c.Params.Batch = b })
	})
	if err != nil {
		return nil, err
	}
	for i, b := range batches {
		row(tb, fmt.Sprintf("B=%d", b), batchOuts[i])
	}
	rep.Tables = append(rep.Tables, tb)

	// 2. Check/report interval.
	// Intervals are stretched by the scale divisor inside cluster.New
	// (capped at T/10), so sweep pre-scale values and label the
	// effective result.
	ti := &Table{Title: "monitor check + client report interval (paper: 1 ms full-scale)", Header: header}
	intervals := []sim.Time{200 * sim.Microsecond, sim.Millisecond, 4 * sim.Millisecond}
	intervalOuts, err := parallel.Map(o.workers(), len(intervals), func(i int) (*cluster.Results, error) {
		iv := intervals[i]
		return run(len(batches)+i, func(c *cluster.Config) {
			c.Params.CheckInterval = iv
			c.Params.ReportInterval = iv
			c.Params.Tick = iv
		})
	})
	if err != nil {
		return nil, err
	}
	for i, iv := range intervals {
		effective := sim.Time(float64(iv) * o.Scale)
		if cap := core.NewDefaultParams().Period / 10; effective > cap {
			effective = cap
		}
		row(ti, effective.String(), intervalOuts[i])
	}
	rep.Tables = append(rep.Tables, ti)

	// 3. Send queue depth.
	ts := &Table{Title: "engine send-queue depth (paper: 64 outstanding)", Header: header}
	depths := []int{8, 64, 512}
	depthOuts, err := parallel.Map(o.workers(), len(depths), func(i int) (*cluster.Results, error) {
		d := depths[i]
		return run(len(batches)+len(intervals)+i, func(c *cluster.Config) { c.Params.SendQueueDepth = d })
	})
	if err != nil {
		return nil, err
	}
	for i, d := range depths {
		row(ts, fmt.Sprintf("depth=%d", d), depthOuts[i])
	}
	rep.Tables = append(rep.Tables, ts)

	// 4. Flow-control window, on the Set-3 spike/burst workload where it
	// decides whether late-period catch-up is C_L-limited (window on) or
	// served from deep pre-posted server queues (window off): with flow
	// control disabled the spike clients' reservation miss disappears,
	// hiding the local-capacity physics the paper measures.
	spikeRes, err := o.spikeReservations()
	if err != nil {
		return nil, err
	}
	spikeDemand := o.demandRPlusShare(spikeRes)
	tf := &Table{
		Title:  "send-queue depth x flow-control window on the spike/burst workload",
		Header: []string{"value", "throughput", "C1 attainment", "qos NIC overhead", "atomics"},
	}
	combos := []struct {
		depth, window int
	}{
		{64, 64},   // defaults: both bound outstanding work
		{2048, 64}, // deep send queue, credits still bound the server queue
		{2048, 0},  // nothing bounds the server queue: deep pre-posted
		// backlogs drain at full server rate late in the period, hiding
		// the local-capacity (C_L) physics behind Figs. 8(b)/13
	}
	comboOuts, err := parallel.Map(o.workers(), len(combos), func(i int) (*cluster.Results, error) {
		combo := combos[i]
		return o.tagged(len(batches)+len(intervals)+len(depths)+i).runQoS(cluster.Haechi, o.qosSpecs(spikeRes, spikeDemand),
			func(c *cluster.Config) {
				c.Params.SendQueueDepth = combo.depth
				c.Fabric.FlowControlWindow = combo.window
			})
	})
	if err != nil {
		return nil, err
	}
	for i, combo := range combos {
		out := comboOuts[i]
		tf.AddRow(fmt.Sprintf("depth=%d window=%d", combo.depth, combo.window),
			count(out.ThroughputPerPeriod, o.Scale),
			fmt.Sprintf("%.0f%%", 100*float64(out.Clients[0].MinPeriod)/float64(spikeRes[0])),
			fmt.Sprintf("%.3f%%", 100*out.Overhead.NICFraction),
			fmt.Sprintf("%d", out.Overhead.FAAs))
	}
	rep.Tables = append(rep.Tables, tf)

	rep.Notes = append(rep.Notes,
		"expected: tiny B inflates atomics and overhead; very coarse intervals slow conversion",
		"(lower throughput with insufficient-demand clients); shallow send queues limit per-client",
		"throughput; flow control off lets deep server queues mask the local-capacity effects")
	return rep, nil
}
