package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fastOptions shrinks every experiment for CI: heavy scaling, short
// windows, fewer clients where the shape survives.
func fastOptions() Options {
	return Options{
		Scale:          100,
		WarmupPeriods:  1,
		MeasurePeriods: 3,
		Clients:        10,
		Records:        256,
		Seed:           7,
	}
}

func TestOptionsValidate(t *testing.T) {
	o, err := (Options{}).validate()
	if err != nil {
		t.Fatal(err)
	}
	if o.Scale != 10 || o.Clients != 10 || o.MeasurePeriods != 5 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if _, err := (Options{Scale: 0.5}).validate(); err == nil {
		t.Error("fractional scale accepted")
	}
}

func TestPaperOptions(t *testing.T) {
	o := PaperOptions()
	if o.Scale != 1 || o.WarmupPeriods != 30 || o.MeasurePeriods != 30 {
		t.Errorf("paper options wrong: %+v", o)
	}
}

func TestLookupAndAliases(t *testing.T) {
	for _, id := range Known() {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%q) failed: %v", id, err)
		}
	}
	for alias := range aliases {
		if _, err := Lookup(alias); err != nil {
			t.Errorf("alias %q unresolved: %v", alias, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := Run("nope", fastOptions()); err == nil {
		t.Error("Run with unknown id succeeded")
	}
}

func TestOrderCoversRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range Order {
		seen[id] = true
	}
	for id := range registry {
		if !seen[id] {
			t.Errorf("experiment %q missing from Order", id)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "t", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	s := tb.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "--") {
		t.Errorf("table render missing pieces: %q", s)
	}
	rep := &Report{ID: "x", Caption: "c", Tables: []*Table{tb}, Notes: []string{"n"}}
	if out := rep.String(); !strings.Contains(out, "=== x: c ===") || !strings.Contains(out, "note: n") {
		t.Errorf("report render wrong: %q", out)
	}
}

func TestCountFormatting(t *testing.T) {
	if got := count(1570, 1000); got != "1.57M" {
		t.Errorf("count = %q", got)
	}
	if got := count(157, 10); got != "2K" { // 1570 -> rounds to 2K
		t.Errorf("count = %q", got)
	}
	if got := count(5, 10); got != "50" {
		t.Errorf("count = %q", got)
	}
	if got := kiops(157, 100); got != "16K" {
		t.Errorf("kiops = %q", got)
	}
}

func TestTableIExperiment(t *testing.T) {
	rep, err := TableI(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "config" || len(rep.Tables) != 1 {
		t.Errorf("unexpected report: %+v", rep.ID)
	}
	if !strings.Contains(rep.String(), "C_G") {
		t.Error("config table missing capacity rows")
	}
}

// parsePercent parses an attainment cell like "93%".
func parsePercent(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("unparseable percent %q", s)
	}
	return v
}

// parseK converts report cell values like "157K"/"1.57M"/"830" to floats.
func parseK(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(s)
	mult := 1.0
	if strings.HasSuffix(s, "M") {
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	} else if strings.HasSuffix(s, "K") {
		mult, s = 1e3, strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q", s)
	}
	return v * mult
}

func TestFig6Shape(t *testing.T) {
	o := fastOptions()
	o.Clients = 3 // fewer single-client runs
	rep, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Tables[0].Rows {
		one := parseK(t, row[1])
		two := parseK(t, row[2])
		if one < 380e3 || one > 420e3 {
			t.Errorf("%s: 1-sided %v, want ≈400K", row[0], one)
		}
		if two >= one {
			t.Errorf("%s: 2-sided %v not below 1-sided %v", row[0], two, one)
		}
		if two < 0.7*one {
			t.Errorf("%s: 2-sided %v too far below 1-sided", row[0], two)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	o := fastOptions()
	rep, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != o.Clients {
		t.Fatalf("rows = %d", len(rows))
	}
	last1 := parseK(t, rows[len(rows)-1][1])
	first1 := parseK(t, rows[0][1])
	if last1 < 1.45e6 || last1 > 1.65e6 {
		t.Errorf("10-client 1-sided %v, want ≈1570K", last1)
	}
	if first1 > 0.3*last1 {
		t.Errorf("1-client %v not in linear region", first1)
	}
	// Knee: 4 -> 10 clients gains little.
	at4 := parseK(t, rows[3][1])
	if last1 > 1.15*at4 {
		t.Errorf("no saturation knee: 4 clients %v vs 10 clients %v", at4, last1)
	}
	// Two-sided saturates early.
	two10 := parseK(t, rows[len(rows)-1][2])
	if two10 < 380e3 || two10 > 480e3 {
		t.Errorf("10-client 2-sided %v, want ≈430K", two10)
	}
}

func TestFig8Shape(t *testing.T) {
	rep, err := Fig8(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("want 3 panels, got %d", len(rep.Tables))
	}
	totalOf := func(tb *Table) float64 {
		last := tb.Rows[len(tb.Rows)-1]
		return parseK(t, last[2])
	}
	uniform, spikeBurst, spikeConst := totalOf(rep.Tables[0]), totalOf(rep.Tables[1]), totalOf(rep.Tables[2])
	if uniform < 1.45e6 {
		t.Errorf("uniform burst total %v, want ≈1570K", uniform)
	}
	if spikeBurst >= 0.95*uniform {
		t.Errorf("spike burst total %v did not drop vs uniform %v", spikeBurst, uniform)
	}
	if spikeConst < 0.97*uniform {
		t.Errorf("spike constant-rate total %v did not recover (uniform %v)", spikeConst, uniform)
	}
	// C1 under spike burst misses its 340K target.
	c1 := parseK(t, rep.Tables[1].Rows[0][2])
	if c1 >= 330e3 {
		t.Errorf("spike-burst C1 %v unexpectedly met its demand", c1)
	}
	// ...but approaches it with constant-rate.
	c1c := parseK(t, rep.Tables[2].Rows[0][2])
	if c1c < 320e3 {
		t.Errorf("spike-const C1 %v too low, want ≈332K", c1c)
	}
}

func TestFig9Shape(t *testing.T) {
	rep, err := Fig9(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("want uniform+zipf tables")
	}
	// Zipf table: all but the top group meet their reservation in full;
	// the top group sits at the burst feasibility edge (>=85% of R, and
	// far better than the bare fair share — see EXPERIMENTS.md).
	zipf := rep.Tables[1]
	for i, row := range zipf.Rows[:len(zipf.Rows)-1] {
		if i < 2 {
			if row[4] != "yes" && parsePercent(t, row[4]) < 85 {
				t.Errorf("%s: top-group attainment too low: %v", row[0], row[4])
			}
			continue
		}
		if row[4] != "yes" {
			t.Errorf("%s: haechi did not meet reservation: %v", row[0], row[4])
		}
	}
	c1res := parseK(t, zipf.Rows[0][1])
	c1bare := parseK(t, zipf.Rows[0][3])
	if c1bare >= c1res {
		t.Errorf("bare C1 %v met reservation %v; insensitivity expected", c1bare, c1res)
	}
}

func TestFig10Shape(t *testing.T) {
	rep, err := Fig10and11(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 2 per-client tables + 2 totals tables.
	if len(rep.Tables) != 4 {
		t.Fatalf("want 4 tables, got %d", len(rep.Tables))
	}
	for _, idx := range []int{1, 3} { // totals tables
		tb := rep.Tables[idx]
		basic := parseK(t, tb.Rows[0][1])
		haechi := parseK(t, tb.Rows[1][1])
		if haechi <= basic*1.02 {
			t.Errorf("%s: conversion gain too small: basic %v haechi %v", tb.Title, basic, haechi)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	rep, err := Fig12(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("want 5 sweep rows")
	}
	// Uniform stays high across the sweep.
	for _, row := range rows {
		u := parseK(t, row[1])
		if u < 1.35e6 {
			t.Errorf("uniform at %s: %v, want near capacity", row[0], u)
		}
	}
	// Zipf at 90% reserved is below zipf at 50%.
	z50 := parseK(t, rows[0][2])
	z90 := parseK(t, rows[4][2])
	if z90 >= z50 {
		t.Errorf("zipf did not drop with reserved fraction: 50%%=%v 90%%=%v", z50, z90)
	}
}

func TestFig13to15Shape(t *testing.T) {
	rep, err := Fig13to15(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("want fig13+fig14+fig15 tables")
	}
	t13 := rep.Tables[0]
	// C1 (285K) misses under burst, meets under constant-rate.
	if t13.Rows[0][4] == "yes" {
		t.Error("burst: C1 unexpectedly met its reservation (local capacity should bite)")
	}
	if cell := t13.Rows[0][5]; cell != "yes" && parsePercent(t, cell) < 97 {
		// Allow the scaled harness's ~2% period-boundary carry-over.
		t.Errorf("constant-rate: C1 missed its reservation: %v", cell)
	}
	// Throughput drop larger for burst.
	t14 := rep.Tables[1]
	burstTput := parseK(t, t14.Rows[0][1])
	constTput := parseK(t, t14.Rows[1][1])
	if burstTput >= constTput {
		t.Errorf("burst throughput %v not below constant-rate %v", burstTput, constTput)
	}
}

func TestFig16to19Shape(t *testing.T) {
	o := fastOptions()
	o.MeasurePeriods = 24
	over, err := Fig16and17(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(over.Tables) != 2 {
		t.Fatalf("want 2 timelines")
	}
	// Congestion onset must dent throughput (the notes carry the means).
	foundDrop := false
	for _, n := range over.Notes {
		if strings.Contains(n, "->") {
			foundDrop = true
		}
	}
	if !foundDrop {
		t.Error("overestimation notes missing phase means")
	}

	under, err := Fig18and19(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(under.Tables) != 2 {
		t.Fatalf("want 2 timelines")
	}
}

func TestRunAllFast(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	o := fastOptions()
	o.Clients = 10
	reps, err := RunAll(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(Order) {
		t.Errorf("got %d reports, want %d", len(reps), len(Order))
	}
	for _, rep := range reps {
		if rep.String() == "" {
			t.Errorf("%s: empty report", rep.ID)
		}
	}
}

func TestLimitsShape(t *testing.T) {
	rep, err := Limits(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("want 4 sweep rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row[3] != "yes" {
			t.Errorf("limit %s: victim missed its reservation (%s)", row[0], row[3])
		}
	}
	// The tightest limit caps the runaway at (about) the limit value.
	tight := rows[len(rows)-1]
	limit := parseK(t, tight[0])
	runaway := parseK(t, tight[1])
	if runaway > 1.05*limit {
		t.Errorf("runaway %v exceeds limit %v", runaway, limit)
	}
	// And far below its unlimited throughput.
	unlimited := parseK(t, rows[0][1])
	if runaway > 0.6*unlimited {
		t.Errorf("limit ineffective: %v vs unlimited %v", runaway, unlimited)
	}
}

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	o := fastOptions()
	o.MeasurePeriods = 2
	rep, err := Ablation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 4 {
		t.Fatalf("want 4 ablation tables, got %d", len(rep.Tables))
	}
	// Batch sweep: overhead decreases monotonically with B.
	batch := rep.Tables[0].Rows
	prev := 1e9
	for _, row := range batch {
		ov := parsePercent(t, row[3])
		if ov > prev*1.2 {
			t.Errorf("overhead not decreasing with B: %v", row)
		}
		prev = ov
	}
	// Flow control: disabling it (last row) raises C1's attainment vs the
	// default (first row).
	fc := rep.Tables[3].Rows
	withFC := parsePercent(t, fc[0][2])
	without := parsePercent(t, fc[len(fc)-1][2])
	if without <= withFC {
		t.Errorf("flow control off (%v%%) should beat on (%v%%) for C1 under spike/burst", without, withFC)
	}
}

func TestMultiServerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	o := fastOptions()
	rep, err := MultiServer(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("want 2 panels, got %d", len(rep.Tables))
	}
	// Scaling: throughput grows with server count.
	rows := rep.Tables[0].Rows
	t1 := parseK(t, rows[0][2])
	t4 := parseK(t, rows[len(rows)-1][2])
	if t4 < 2*t1 {
		t.Errorf("no scaling: 1 server %v vs 4 servers %v", t1, t4)
	}
	for _, row := range rows {
		if row[3] != "yes" {
			t.Errorf("servers=%s: reservations missed: %s", row[0], row[3])
		}
	}
	// Skew panel: static split misses, rebalancing meets.
	skew := rep.Tables[1].Rows
	if skew[0][3] == "yes" {
		t.Error("static split unexpectedly met the skewed reservation")
	}
	if cell := skew[1][3]; cell != "yes" && parsePercent(t, cell) < 96 {
		t.Errorf("rebalancing did not recover the skewed reservation: %s", cell)
	}
}

func TestWriteCSV(t *testing.T) {
	rep := &Report{ID: "demo", Tables: []*Table{
		{Title: "t1", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"with,comma", `with"quote`}}},
		{Title: "t2", Header: []string{"x"}, Rows: [][]string{{"9"}}},
	}}
	dir := t.TempDir()
	paths, err := rep.WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "a,b") || !strings.Contains(got, `"with,comma","with""quote"`) {
		t.Errorf("csv content:\n%s", got)
	}
	if _, err := rep.WriteCSV(filepath.Join(dir, "missing", "nested")); err == nil {
		t.Error("write into missing dir succeeded")
	}
}

// TestParallelSweepByteIdentical pins the sweep runner's determinism
// contract end to end: an experiment rendered from a parallel sweep is
// byte-for-byte the report the sequential sweep produces. Fig12 is the
// widest sweep (a two-dimensional grid flattened row-major), so it
// exercises the index-merge the hardest.
func TestParallelSweepByteIdentical(t *testing.T) {
	render := func(parallel int) string {
		o := fastOptions()
		o.Parallel = parallel
		rep, err := Fig12(o)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	sequential := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != sequential {
			t.Errorf("Parallel=%d report diverged from sequential:\n--- parallel\n%s\n--- sequential\n%s",
				workers, got, sequential)
		}
	}
}
