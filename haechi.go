// Package haechi is a reproduction of "Haechi: A Token-based QoS
// Mechanism for One-sided I/Os in RDMA based Storage System" (Liu &
// Varman, ICDCS 2021): a work-conserving, token-based QoS layer that
// guarantees per-tenant throughput reservations and limits for silent
// one-sided RDMA I/O against a memory-resident key-value store.
//
// The package wires the full system of the paper over a deterministic
// simulated RDMA fabric (see DESIGN.md for the substitution rationale):
//
//   - a data node hosting the KV store and the Haechi QoS monitor
//     (per-period token generation, reservation pushes, global-pool
//     monitoring, token conversion, adaptive capacity estimation), and
//   - one node per tenant running a workload generator behind a Haechi
//     QoS engine (token-gated admission, batched global-token claims via
//     one-sided FETCH_ADD, silent usage reports).
//
// Quick start:
//
//	sys, err := haechi.New(haechi.Config{}, []haechi.Tenant{
//	    {Name: "gold", Reservation: 400_000, DemandPerPeriod: 500_000},
//	    {Name: "silver", Reservation: 200_000, DemandPerPeriod: 500_000},
//	})
//	...
//	report, err := sys.Run()
//	fmt.Println(report)
//
// All I/O counts are per QoS period (1 s by default), expressed at the
// configured Scale (Scale 10 divides the fabric's rates by 10; reported
// numbers stay in the scaled units).
package haechi

import (
	"fmt"
	"io"
	"time"

	"github.com/haechi-qos/haechi/internal/cluster"
	"github.com/haechi-qos/haechi/internal/kvstore"
	"github.com/haechi-qos/haechi/internal/sim"
	"github.com/haechi-qos/haechi/internal/trace"
	"github.com/haechi-qos/haechi/internal/workload"
)

// Mode selects the QoS system variant.
type Mode string

// Modes.
const (
	// ModeHaechi is the full protocol (default).
	ModeHaechi Mode = "haechi"
	// ModeBasic disables token conversion (the paper's Basic Haechi).
	ModeBasic Mode = "basic"
	// ModeBare disables QoS entirely (the paper's comparison system).
	ModeBare Mode = "bare"
)

// Pattern names a temporal request pattern.
type Pattern string

// Patterns.
const (
	// PatternBurst submits each period's whole demand at the period start
	// (the paper's QoS-experiment burst).
	PatternBurst Pattern = "burst"
	// PatternBurst64 is the closed-loop saturation pattern (64
	// outstanding requests).
	PatternBurst64 Pattern = "burst64"
	// PatternConstantRate spaces the demand evenly over the period.
	PatternConstantRate Pattern = "constant-rate"
)

// Tenant describes one client of the storage service.
type Tenant struct {
	// Name labels the tenant in reports.
	Name string
	// Reservation is R_i: the minimum I/Os guaranteed per QoS period
	// (ignored in ModeBare).
	Reservation int64
	// Limit is L_i: the maximum I/Os admitted per period (0 = none).
	Limit int64
	// DemandPerPeriod is how many requests the tenant issues each period;
	// 0 means saturating demand (forces PatternBurst64).
	DemandPerPeriod uint64
	// Pattern is the request pattern; empty selects PatternBurst (or
	// PatternBurst64 for saturating demand).
	Pattern Pattern
	// KeyDistribution selects which records are read: "zipfian"
	// (default), "uniform", "latest" or "sequential".
	KeyDistribution string
	// UpdateFraction is the share of requests issued as one-sided record
	// writes instead of reads, in [0,1] (0 = read-only, the paper's
	// workload; 0.05 ≈ YCSB-B, 0.5 ≈ YCSB-A). Updates flow through the
	// same token path.
	UpdateFraction float64
}

// Config assembles a Haechi system.
type Config struct {
	// Mode selects haechi/basic/bare; empty means ModeHaechi.
	Mode Mode
	// Scale divides the paper-calibrated fabric rates (1 = full scale;
	// 0 defaults to 10 for laptop-fast runs).
	Scale float64
	// WarmupPeriods and MeasurePeriods set the run windows; zero values
	// default to 2 and 5.
	WarmupPeriods  int
	MeasurePeriods int
	// Records is the KV store population (default 4096).
	Records int
	// Seed drives all randomness (default 1).
	Seed int64
	// TraceEvents, when positive, records the last N protocol events
	// (token pushes, claims, yields, pool caps, reports, capacity
	// updates); inspect them after Run with TraceSummary and DumpTrace.
	TraceEvents int
	// FlightSpans, when positive, records a pipeline span for every
	// I/O (the last N are retained for WriteChromeTrace; the per-stage
	// breakdown covers all of them). Works in every mode.
	FlightSpans int
	// MetricsInterval, when positive, samples a metrics registry
	// (kernel, NIC, engine, KV gauges) every interval of virtual time;
	// export after Run with WriteMetricsCSV.
	MetricsInterval time.Duration
	// Chaos injects a deterministic fault scenario: a preset name (such
	// as "set5") or a grammar string like
	// "crash@2.25:c=0;restart@5.5:c=0;outage@7.25+1.25". Event times
	// count fractional QoS periods from run start (warm-up included);
	// clients are indexed in tenant order. Empty disables injection.
	// The run stays fully deterministic, Report.FaultSummary describes
	// what was injected and recovered, and the failure-aware invariants
	// are enforced throughout (a violation fails Run).
	Chaos string
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeHaechi
	}
	if c.Scale == 0 {
		c.Scale = 10
	}
	if c.WarmupPeriods == 0 {
		c.WarmupPeriods = 2
	}
	if c.MeasurePeriods == 0 {
		c.MeasurePeriods = 5
	}
	if c.Records == 0 {
		c.Records = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// System is an assembled cluster ready to run.
type System struct {
	cfg     Config
	names   []string
	cluster *cluster.Cluster
	rec     *trace.Recorder
	results *cluster.Results
	ran     bool
}

// New builds a system: one data node plus one node per tenant. In QoS
// modes each tenant passes admission control (aggregate and local
// capacity constraints); a violation fails construction.
func New(cfg Config, tenants []Tenant) (*System, error) {
	cfg = cfg.withDefaults()
	if len(tenants) == 0 {
		return nil, fmt.Errorf("haechi: at least one tenant required")
	}
	ccfg := cluster.NewDefaultConfig()
	switch cfg.Mode {
	case ModeHaechi:
		ccfg.Mode = cluster.Haechi
	case ModeBasic:
		ccfg.Mode = cluster.BasicHaechi
	case ModeBare:
		ccfg.Mode = cluster.Bare
	default:
		return nil, fmt.Errorf("haechi: unknown mode %q", cfg.Mode)
	}
	ccfg.Scale = cfg.Scale
	ccfg.Seed = cfg.Seed
	storeCap := 1
	for storeCap < cfg.Records {
		storeCap <<= 1
	}
	ccfg.Store = kvstore.Options{Capacity: storeCap, RecordSize: 4096}
	ccfg.Records = cfg.Records
	if cfg.FlightSpans > 0 || cfg.MetricsInterval > 0 {
		ccfg.Observe = &cluster.Observe{
			FlightSpans:     cfg.FlightSpans,
			MetricsInterval: sim.Time(cfg.MetricsInterval),
		}
	}
	if cfg.Chaos != "" {
		// Chaos runs always sanitize: fault injection without the
		// failure-aware invariants would hide exactly the bugs the
		// scenarios exist to expose.
		ccfg.Chaos = cfg.Chaos
		ccfg.Sanitize = true
	}

	var names []string
	var specs []cluster.ClientSpec
	for i, t := range tenants {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("tenant-%d", i+1)
		}
		names = append(names, name)
		spec, err := tenantSpec(t, cfg)
		if err != nil {
			return nil, fmt.Errorf("haechi: tenant %q: %w", name, err)
		}
		specs = append(specs, spec)
	}
	cl, err := cluster.New(ccfg, specs)
	if err != nil {
		return nil, fmt.Errorf("haechi: %w", err)
	}
	sys := &System{cfg: cfg, names: names, cluster: cl}
	if cfg.TraceEvents > 0 {
		if cfg.Mode == ModeBare {
			return nil, fmt.Errorf("haechi: tracing requires a QoS mode")
		}
		rec, err := cl.EnableTrace(cfg.TraceEvents)
		if err != nil {
			return nil, fmt.Errorf("haechi: %w", err)
		}
		sys.rec = rec
	}
	return sys, nil
}

// TraceSummary returns per-kind counts of the recorded protocol events
// ("trace: empty" when tracing is off or nothing ran yet).
func (s *System) TraceSummary() string {
	return s.rec.Summary()
}

// DumpTrace writes the retained protocol events to w, one per line.
// A no-op when tracing is off.
func (s *System) DumpTrace(w io.Writer) error {
	if s.rec == nil {
		return nil
	}
	return s.rec.Dump(w)
}

func tenantSpec(t Tenant, cfg Config) (cluster.ClientSpec, error) {
	spec := cluster.ClientSpec{
		Reservation:    t.Reservation,
		Limit:          t.Limit,
		UpdateFraction: t.UpdateFraction,
	}
	if t.Reservation < 0 || t.Limit < 0 {
		return spec, fmt.Errorf("negative reservation or limit")
	}
	if t.UpdateFraction < 0 || t.UpdateFraction > 1 {
		return spec, fmt.Errorf("update fraction %v outside [0,1]", t.UpdateFraction)
	}
	if t.DemandPerPeriod == 0 {
		spec.Demand = cluster.UnlimitedDemand()
	} else {
		spec.Demand = cluster.ConstantDemand(t.DemandPerPeriod)
	}
	pattern := t.Pattern
	if pattern == "" {
		if t.DemandPerPeriod == 0 {
			pattern = PatternBurst64
		} else {
			pattern = PatternBurst
		}
	}
	switch pattern {
	case PatternBurst:
		if t.DemandPerPeriod == 0 {
			return spec, fmt.Errorf("saturating demand requires %q or %q", PatternBurst64, PatternConstantRate)
		}
		spec.Pattern = workload.Burst{}
	case PatternBurst64:
		spec.Pattern = workload.Burst{Window: 64}
	case PatternConstantRate:
		if t.DemandPerPeriod == 0 {
			return spec, fmt.Errorf("constant-rate requires a finite demand")
		}
		spec.Pattern = workload.ConstantRate{}
	default:
		return spec, fmt.Errorf("unknown pattern %q", pattern)
	}
	if t.KeyDistribution != "" {
		keys, err := workload.NewChooser(t.KeyDistribution, uint64(cfg.Records))
		if err != nil {
			return spec, err
		}
		spec.Keys = keys
	}
	return spec, nil
}

// ScheduleCongestion injects background one-sided load against the data
// node between the given periods (1-based, relative to the start of the
// measure window; stopPeriod 0 = never stops). jobs closed-loop streams of
// the given window size are started. Must be called before Run.
func (s *System) ScheduleCongestion(startPeriod, stopPeriod, jobs, window int) error {
	if s.ran {
		return fmt.Errorf("haechi: system already ran")
	}
	if jobs <= 0 || window <= 0 {
		return fmt.Errorf("haechi: jobs and window must be positive")
	}
	T := s.cluster.Config().Params.Period
	base := sim.Time(s.cfg.WarmupPeriods) * T
	for j := 0; j < jobs; j++ {
		job, err := s.cluster.AddBackgroundJob(fmt.Sprintf("congestion-%d-%d-%d", startPeriod, stopPeriod, j), window)
		if err != nil {
			return err
		}
		s.cluster.At(base+sim.Time(startPeriod-1)*T, job.Start)
		if stopPeriod > 0 {
			s.cluster.At(base+sim.Time(stopPeriod-1)*T, job.Stop)
		}
	}
	return nil
}

// Run executes the configured warm-up and measure windows and returns the
// report. Run consumes the system.
func (s *System) Run() (*Report, error) {
	if s.ran {
		return nil, fmt.Errorf("haechi: system already ran")
	}
	s.ran = true
	res, err := s.cluster.Run(s.cfg.WarmupPeriods, s.cfg.MeasurePeriods)
	if err != nil {
		return nil, err
	}
	s.results = res
	return buildReport(s, res), nil
}

// WriteChromeTrace writes the recorded I/O spans (and protocol events,
// when TraceEvents is on) as Chrome trace_event JSON — open the file in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Requires FlightSpans
// and a completed Run.
func (s *System) WriteChromeTrace(w io.Writer) error {
	if s.results == nil || s.results.Flight == nil {
		return fmt.Errorf("haechi: no spans recorded (set Config.FlightSpans and call Run first)")
	}
	return trace.WriteChromeTrace(w, s.results.Flight, s.rec)
}

// WriteMetricsCSV writes the sampled metrics registry as CSV. Requires
// MetricsInterval and a completed Run.
func (s *System) WriteMetricsCSV(w io.Writer) error {
	if s.results == nil || s.results.Metrics == nil {
		return fmt.Errorf("haechi: no metrics sampled (set Config.MetricsInterval and call Run first)")
	}
	return s.results.Metrics.WriteCSV(w)
}

// StageBreakdown renders the per-tenant per-stage latency table from
// the recorded spans, or "" when FlightSpans is off or Run has not
// completed.
func (s *System) StageBreakdown() string {
	if s.results == nil {
		return ""
	}
	return s.results.StageBreakdown()
}

// Latency summarizes request latency (submission to completion, including
// any token-wait queueing at the engine).
type Latency struct {
	Mean time.Duration
	P50  time.Duration
	P99  time.Duration
	P999 time.Duration
	Max  time.Duration
}

// TenantResult is one tenant's measured outcome.
type TenantResult struct {
	Name        string
	Reservation int64
	// PerPeriod lists completed I/Os in each measured period.
	PerPeriod []uint64
	// Total, MinPeriod and MeanPeriod summarize PerPeriod.
	Total      uint64
	MinPeriod  uint64
	MeanPeriod float64
	// MetReservation reports whether every measured period reached the
	// reservation.
	MetReservation bool
	// Latency is the tenant's request-latency summary.
	Latency Latency
}

// Report is a run's outcome.
type Report struct {
	Mode            Mode
	MeasuredPeriods int
	Tenants         []TenantResult
	// TotalCompleted and ThroughputPerPeriod aggregate all tenants.
	TotalCompleted      uint64
	ThroughputPerPeriod float64
	// QoSOverheadFraction estimates the share of data-node NIC time spent
	// on token management (QoS modes only).
	QoSOverheadFraction float64
	// EstimatedCapacity is the monitor's final per-period capacity
	// estimate (QoS modes only).
	EstimatedCapacity int64
	// FaultSummary describes the injected fault scenario and its
	// recovery accounting ("" unless Config.Chaos was set).
	FaultSummary string
}

func buildReport(s *System, res *cluster.Results) *Report {
	rep := &Report{
		Mode:                s.cfg.Mode,
		MeasuredPeriods:     res.MeasuredPeriods,
		TotalCompleted:      res.TotalCompleted,
		ThroughputPerPeriod: res.ThroughputPerPeriod,
		QoSOverheadFraction: res.Overhead.NICFraction,
	}
	if mon := s.cluster.Monitor(); mon != nil {
		rep.EstimatedCapacity = mon.Estimator().Current()
	}
	if fr := res.Faults; fr != nil {
		rep.FaultSummary = fmt.Sprintf("scenario %q", fr.Scenario)
		if fr.MonitorOutages > 0 {
			rep.FaultSummary += fmt.Sprintf("; %d monitor outage(s) totaling %v",
				fr.MonitorOutages, fr.MonitorOutageTime)
		}
		if fr.Suspicions > 0 {
			rep.FaultSummary += fmt.Sprintf("; %d crash suspicion(s), %d reinstatement(s)",
				fr.Suspicions, fr.Recoveries)
		}
		for _, cf := range fr.Clients {
			if cf.Crashes > 0 {
				rep.FaultSummary += fmt.Sprintf("; %s crashed %dx", s.names[cf.Index], cf.Crashes)
				if cf.RejoinPeriod > 0 {
					rep.FaultSummary += fmt.Sprintf(" (rejoined period %d)", cf.RejoinPeriod)
				}
			}
		}
	}
	for i, cr := range res.Clients {
		rep.Tenants = append(rep.Tenants, TenantResult{
			Name:           s.names[i],
			Reservation:    cr.Reservation,
			PerPeriod:      cr.Periods,
			Total:          cr.Total,
			MinPeriod:      cr.MinPeriod,
			MeanPeriod:     cr.MeanPeriod,
			MetReservation: cr.MetReservation,
			Latency: Latency{
				Mean: toDuration(cr.Latency.Mean),
				P50:  toDuration(cr.Latency.P50),
				P99:  toDuration(cr.Latency.P99),
				P999: toDuration(cr.Latency.P999),
				Max:  toDuration(cr.Latency.Max),
			},
		})
	}
	return rep
}

func toDuration(t sim.Time) time.Duration { return time.Duration(int64(t)) }

// String renders the report as a table.
func (r *Report) String() string {
	out := fmt.Sprintf("mode=%s periods=%d throughput=%.0f/period", r.Mode, r.MeasuredPeriods, r.ThroughputPerPeriod)
	if r.EstimatedCapacity > 0 {
		out += fmt.Sprintf(" capacity≈%d", r.EstimatedCapacity)
	}
	out += "\n"
	for _, t := range r.Tenants {
		flag := ""
		if t.Reservation > 0 {
			if t.MetReservation {
				flag = "  [reservation met]"
			} else {
				flag = "  [RESERVATION MISSED]"
			}
		}
		out += fmt.Sprintf("  %-12s R=%-9d min=%-9d mean=%-11.0f p99=%v%s\n",
			t.Name, t.Reservation, t.MinPeriod, t.MeanPeriod, t.Latency.P99, flag)
	}
	if r.QoSOverheadFraction > 0 {
		out += fmt.Sprintf("  qos overhead: %.3f%% of data-node NIC time\n", 100*r.QoSOverheadFraction)
	}
	if r.FaultSummary != "" {
		out += fmt.Sprintf("  faults: %s\n", r.FaultSummary)
	}
	return out
}

// Capacity describes the simulated testbed's calibrated limits at a given
// scale, in I/Os per second.
type Capacity struct {
	// PerClientOneSided is C_L.
	PerClientOneSided float64
	// AggregateOneSided is C_G.
	AggregateOneSided float64
	// AggregateTwoSided is the server-CPU-bound RPC rate.
	AggregateTwoSided float64
}

// DefaultCapacity returns the paper-calibrated capacities divided by
// scale, for sizing reservations.
func DefaultCapacity(scale float64) Capacity {
	if scale <= 0 {
		scale = 10
	}
	return Capacity{
		PerClientOneSided: 400e3 / scale,
		AggregateOneSided: 1570e3 / scale,
		AggregateTwoSided: 430e3 / scale,
	}
}
